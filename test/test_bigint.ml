module B = Yoso_bigint.Bigint

let st = Random.State.make [| 0xB16 |]

let big = Alcotest.testable B.pp B.equal
let check_b = Alcotest.check big

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let test_int_roundtrip () =
  List.iter
    (fun x -> Alcotest.(check int) "roundtrip" x (B.to_int (B.of_int x)))
    [ 0; 1; -1; 42; -42; 1 lsl 30; (1 lsl 30) - 1; (1 lsl 60) + 12345;
      -((1 lsl 59) + 7); max_int / 2 ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "999999999"; "1000000000"; "123456789012345678901234567890";
      "-98765432109876543210987654321" ]

let test_string_against_int () =
  for _ = 1 to 100 do
    let x = Random.State.int st 1_000_000_000 - 500_000_000 in
    Alcotest.(check string) "matches int printing" (string_of_int x)
      (B.to_string (B.of_int x))
  done

let test_hex () =
  check_b "hex ff" (B.of_int 255) (B.of_hex "ff");
  check_b "hex FF" (B.of_int 255) (B.of_hex "FF");
  Alcotest.(check string) "to_hex" "deadbeef" (B.to_hex (B.of_hex "deadbeef"));
  Alcotest.(check string) "zero hex" "0" (B.to_hex B.zero)

let test_bytes_be () =
  let v = B.of_hex "0102030405" in
  Alcotest.(check string) "to_bytes" "\x01\x02\x03\x04\x05" (B.to_bytes_be v);
  check_b "roundtrip" v (B.of_bytes_be (B.to_bytes_be v));
  Alcotest.(check string) "zero bytes" "" (B.to_bytes_be B.zero)

(* decode a test-local hex string into raw bytes, independently of the
   library under test, so the vectors below really are pinned *)
let bytes_of_hex h =
  let h = if String.length h mod 2 = 1 then "0" ^ h else h in
  String.init (String.length h / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

let test_golden_vectors () =
  (* decimal / hex / byte encodings pinned while the library stored
     30-bit limbs; the canonical big-endian form (and to_hex/of_hex)
     must survive the switch to 62-bit limbs and any future width
     change.  The values straddle both limb widths' boundaries. *)
  let vectors =
    [
      ("0", "0");
      ("1", "1");
      ("255", "ff");
      ("256", "100");
      ("1073741823", "3fffffff") (* 2^30 - 1: old limb max *);
      ("1073741824", "40000000") (* 2^30: old limb boundary *);
      ("1152921504606846975", "fffffffffffffff");
      ("4611686018427387903", "3fffffffffffffff") (* 2^62 - 1: new limb max *);
      ("4611686018427387904", "4000000000000000") (* 2^62 *);
      ("18446744073709551616", "10000000000000000") (* 2^64 *);
      ( "340282366920938463463374607431768211455" (* 2^128 - 1 *),
        String.concat "" (List.init 32 (fun _ -> "f")) );
      ( "57896044618658097711785492504343953926634992332820282019728792003956564819949",
        "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed" )
      (* 2^255 - 19 *);
    ]
  in
  List.iter
    (fun (dec, hex) ->
      let v = B.of_string dec in
      Alcotest.(check string) ("to_hex " ^ dec) hex (B.to_hex v);
      check_b ("of_hex " ^ hex) v (B.of_hex hex);
      Alcotest.(check string) ("to_string " ^ dec) dec (B.to_string v);
      if not (B.is_zero v) then begin
        Alcotest.(check string) ("to_bytes_be " ^ dec) (bytes_of_hex hex)
          (B.to_bytes_be v);
        check_b ("of_bytes_be " ^ dec) v (B.of_bytes_be (bytes_of_hex hex));
        (* leading zero bytes are absorbed on decode, never produced *)
        check_b ("padded decode " ^ dec) v
          (B.of_bytes_be ("\000\000" ^ bytes_of_hex hex))
      end)
    vectors;
  (* a multi-limb pattern whose byte image is obvious by eye *)
  let hex = "0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20" in
  Alcotest.(check string) "pattern bytes"
    "\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f\x10\x11\x12\x13\x14\x15\x16\x17\x18\x19\x1a\x1b\x1c\x1d\x1e\x1f\x20"
    (B.to_bytes_be (B.of_hex hex))

let test_bad_inputs () =
  Alcotest.check_raises "empty string" (Invalid_argument "Bigint.of_string: empty")
    (fun () -> ignore (B.of_string ""));
  Alcotest.check_raises "bad digit" (Invalid_argument "Bigint.of_string: bad digit")
    (fun () -> ignore (B.of_string "12x4"))

(* ------------------------------------------------------------------ *)
(* Arithmetic vs native ints (small values)                            *)
(* ------------------------------------------------------------------ *)

let rand_small () = Random.State.int st 2_000_001 - 1_000_000

let test_arith_matches_int () =
  for _ = 1 to 1000 do
    let a = rand_small () and b = rand_small () in
    Alcotest.(check int) "add" (a + b) (B.to_int (B.add (B.of_int a) (B.of_int b)));
    Alcotest.(check int) "sub" (a - b) (B.to_int (B.sub (B.of_int a) (B.of_int b)));
    Alcotest.(check int) "mul" (a * b) (B.to_int (B.mul (B.of_int a) (B.of_int b)));
    if b <> 0 then begin
      Alcotest.(check int) "div" (a / b) (B.to_int (B.div (B.of_int a) (B.of_int b)));
      Alcotest.(check int) "rem" (a mod b) (B.to_int (B.rem (B.of_int a) (B.of_int b)))
    end
  done

let test_compare_matches_int () =
  for _ = 1 to 500 do
    let a = rand_small () and b = rand_small () in
    Alcotest.(check int) "compare sign" (compare a b)
      (B.compare (B.of_int a) (B.of_int b))
  done

(* ------------------------------------------------------------------ *)
(* Algebraic properties on big values                                  *)
(* ------------------------------------------------------------------ *)

let rand_big bits = B.random_bits st bits

let test_divmod_invariant () =
  for _ = 1 to 300 do
    let a = rand_big (64 + Random.State.int st 400) in
    let b = B.add B.one (rand_big (1 + Random.State.int st 200)) in
    let q, r = B.divmod a b in
    check_b "a = b*q + r" a (B.add (B.mul b q) r);
    Alcotest.(check bool) "0 <= r" true (B.sign r >= 0);
    Alcotest.(check bool) "r < b" true (B.compare r b < 0)
  done

let test_divmod_signs () =
  let t a b q r =
    let q', r' = B.divmod (B.of_int a) (B.of_int b) in
    Alcotest.(check int) "q" q (B.to_int q');
    Alcotest.(check int) "r" r (B.to_int r')
  in
  t 7 2 3 1;
  t (-7) 2 (-3) (-1);
  t 7 (-2) (-3) 1;
  t (-7) (-2) 3 (-1);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_erem () =
  Alcotest.(check int) "erem of negative" 1 (B.to_int (B.erem (B.of_int (-7)) (B.of_int 2)));
  Alcotest.(check int) "erem positive" 1 (B.to_int (B.erem (B.of_int 7) (B.of_int 2)))

let test_karatsuba_consistency () =
  (* exercise the Karatsuba path (>= 16 limbs of 62 bits = 992 bits)
     and check against a distributive-split computation *)
  for _ = 1 to 10 do
    let a = rand_big 1100 and b = rand_big 1300 in
    let half = B.shift_right a 550 in
    let low = B.sub a (B.shift_left half 550) in
    let expect = B.add (B.shift_left (B.mul half b) 550) (B.mul low b) in
    check_b "karatsuba = split schoolbook" expect (B.mul a b)
  done

let test_karatsuba_threshold_boundary () =
  (* the schoolbook/Karatsuba cutover sits at 16 limbs = 992 bits;
     products whose operands straddle that line from both sides must
     agree with an exact closed form.  (2^k - 1)^2 and
     (2^k + 1)(2^k - 1) are independent oracles: no multiplication
     needed to state the expected value. *)
  List.iter
    (fun k ->
      let pk = B.shift_left B.one k in
      let x = B.sub pk B.one in
      let sq_expect =
        B.add (B.sub (B.shift_left B.one (2 * k)) (B.shift_left B.one (k + 1))) B.one
      in
      check_b (Printf.sprintf "(2^%d-1)^2" k) sq_expect (B.mul x x);
      check_b
        (Printf.sprintf "(2^%d+1)(2^%d-1)" k k)
        (B.sub (B.shift_left B.one (2 * k)) B.one)
        (B.mul (B.add pk B.one) x))
    [ 900; 930; 991; 992; 993; 1054; 1100; 1984; 1985 ];
  (* random operands at 15 / 16 / 17 limbs, crossed: split one operand
     and recombine — the split pieces take a different recursion path
     than the whole product, so a boundary bug cannot cancel out *)
  let sizes = [ 925; 930; 991; 992; 993; 1053; 1054; 1060 ] in
  List.iter
    (fun abits ->
      List.iter
        (fun bbits ->
          let a = rand_big abits and b = rand_big bbits in
          let k = abits / 2 in
          let hi = B.shift_right a k in
          let lo = B.sub a (B.shift_left hi k) in
          let expect = B.add (B.shift_left (B.mul hi b) k) (B.mul lo b) in
          check_b
            (Printf.sprintf "split product %dx%d" abits bbits)
            expect (B.mul a b))
        sizes)
    sizes

let test_shifts () =
  for _ = 1 to 100 do
    let a = rand_big 200 in
    let k = Random.State.int st 120 in
    check_b "shl = mul 2^k" (B.mul a (B.pow B.two k)) (B.shift_left a k);
    check_b "shr = div 2^k" (B.div a (B.pow B.two k)) (B.shift_right a k)
  done

let test_pow () =
  check_b "2^100" (B.of_string "1267650600228229401496703205376") (B.pow B.two 100);
  check_b "x^0" B.one (B.pow (B.of_int 12345) 0);
  Alcotest.check_raises "neg exponent"
    (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
      ignore (B.pow B.two (-1)))

let test_bit_length () =
  Alcotest.(check int) "0" 0 (B.bit_length B.zero);
  Alcotest.(check int) "1" 1 (B.bit_length B.one);
  Alcotest.(check int) "255" 8 (B.bit_length (B.of_int 255));
  Alcotest.(check int) "256" 9 (B.bit_length (B.of_int 256));
  Alcotest.(check int) "2^100" 101 (B.bit_length (B.pow B.two 100))

(* ------------------------------------------------------------------ *)
(* Modular arithmetic                                                  *)
(* ------------------------------------------------------------------ *)

let test_powmod () =
  (* 2^10 mod 1000 = 24 *)
  Alcotest.(check int) "2^10 mod 1000" 24
    (B.to_int (B.powmod B.two (B.of_int 10) (B.of_int 1000)));
  (* Fermat on a known prime *)
  let p = B.of_string "1000000007" in
  for _ = 1 to 20 do
    let a = B.add B.one (B.random_below st (B.sub p B.one)) in
    check_b "fermat" B.one (B.powmod a (B.sub p B.one) p)
  done;
  check_b "mod one" B.zero (B.powmod (B.of_int 5) (B.of_int 3) B.one)

let test_gcd () =
  Alcotest.(check int) "gcd 12 18" 6 (B.to_int (B.gcd (B.of_int 12) (B.of_int 18)));
  Alcotest.(check int) "gcd 0 5" 5 (B.to_int (B.gcd B.zero (B.of_int 5)));
  for _ = 1 to 100 do
    let a = rand_big 100 and b = rand_big 100 in
    let g = B.gcd a b in
    if not (B.is_zero g) then begin
      Alcotest.(check bool) "g | a" true (B.is_zero (B.rem a g));
      Alcotest.(check bool) "g | b" true (B.is_zero (B.rem b g))
    end
  done

let test_extended_gcd () =
  for _ = 1 to 100 do
    let a = rand_big 150 and b = rand_big 150 in
    let g, x, y = B.extended_gcd a b in
    check_b "bezout" g (B.add (B.mul a x) (B.mul b y));
    check_b "matches gcd" (B.gcd a b) g
  done

let test_invmod () =
  let m = B.of_string "1000000007" in
  for _ = 1 to 50 do
    let a = B.add B.one (B.random_below st (B.sub m B.one)) in
    let ai = B.invmod a m in
    check_b "a * a^-1 = 1 mod m" B.one (B.mulmod a ai m);
    Alcotest.(check bool) "canonical range" true (B.sign ai >= 0 && B.compare ai m < 0)
  done;
  Alcotest.check_raises "non-coprime" Division_by_zero (fun () ->
      ignore (B.invmod (B.of_int 6) (B.of_int 9)))

let test_factorial () =
  Alcotest.(check int) "0!" 1 (B.to_int (B.factorial 0));
  Alcotest.(check int) "5!" 120 (B.to_int (B.factorial 5));
  check_b "20!" (B.of_string "2432902008176640000") (B.factorial 20);
  check_b "30!" (B.of_string "265252859812191058636308480000000") (B.factorial 30)

(* ------------------------------------------------------------------ *)
(* Primality                                                           *)
(* ------------------------------------------------------------------ *)

let test_primality_known () =
  let prime s = Alcotest.(check bool) (s ^ " prime") true (B.is_probable_prime st (B.of_string s)) in
  let composite s =
    Alcotest.(check bool) (s ^ " composite") false (B.is_probable_prime st (B.of_string s))
  in
  prime "2";
  prime "3";
  prime "104729";
  prime "1000000007";
  prime "170141183460469231731687303715884105727" (* 2^127 - 1 *);
  composite "0";
  composite "1";
  composite "4";
  composite "561" (* Carmichael *);
  composite "1000000008";
  composite "170141183460469231731687303715884105725"

let test_random_prime () =
  List.iter
    (fun bits ->
      let p = B.random_prime st ~bits in
      Alcotest.(check int) "bit length" bits (B.bit_length p);
      Alcotest.(check bool) "is prime" true (B.is_probable_prime st p))
    [ 16; 32; 64; 128 ]

let test_random_safe_prime () =
  let p = B.random_safe_prime st ~bits:24 in
  let q = B.shift_right (B.sub p B.one) 1 in
  Alcotest.(check bool) "p prime" true (B.is_probable_prime st p);
  Alcotest.(check bool) "q prime" true (B.is_probable_prime st q)

let test_random_below () =
  let bound = B.of_int 1000 in
  for _ = 1 to 200 do
    let v = B.random_below st bound in
    Alcotest.(check bool) "in range" true (B.sign v >= 0 && B.compare v bound < 0)
  done

(* ------------------------------------------------------------------ *)
(* Montgomery engine                                                   *)
(* ------------------------------------------------------------------ *)

let random_odd_modulus bits =
  let m = B.add (B.shift_left B.one (bits - 1)) (B.random_bits st (bits - 1)) in
  if B.is_even m then B.add m B.one else m

let test_mont_matches_naive () =
  List.iter
    (fun bits ->
      let m = random_odd_modulus bits in
      let ctx = B.Mont.create m in
      for _ = 1 to 25 do
        let b = B.random_bits st (bits + 17) in
        let e = B.random_bits st bits in
        check_b "mont = naive" (B.powmod_naive b e m) (B.Mont.powmod ctx b e)
      done)
    [ 512; 1024 ]

let test_mont_dispatch_matches_naive () =
  (* the public powmod picks a backend by modulus shape; whatever it
     picks must agree with the reference loop *)
  for _ = 1 to 50 do
    let bits = 2 + Random.State.int st 200 in
    let m = B.add (B.random_bits st bits) B.two in
    let b = B.random_bits st (bits + 9) in
    let e = B.random_bits st 80 in
    check_b "dispatch = naive" (B.powmod_naive b e m) (B.powmod b e m)
  done

let test_mont_fixed_base () =
  List.iter
    (fun bits ->
      let m = random_odd_modulus bits in
      let ctx = B.Mont.create m in
      let base = B.random_bits st (bits - 1) in
      let fb = B.Mont.fixed_base ctx base in
      (* growing exponents force the table to extend across calls *)
      List.iter
        (fun ebits ->
          let e = B.random_bits st ebits in
          check_b "fixed = generic" (B.Mont.powmod ctx base e)
            (B.Mont.fixed_powmod fb e))
        [ 4; 30; 64; 200; 700 ])
    [ 512; 1024 ]

let test_mont_edge_cases () =
  let m = random_odd_modulus 256 in
  let ctx = B.Mont.create m in
  let b = B.random_bits st 200 in
  check_b "e = 0" B.one (B.Mont.powmod ctx b B.zero);
  check_b "e = 1" (B.erem b m) (B.Mont.powmod ctx b B.one);
  check_b "base = 0 mod m" B.zero (B.Mont.powmod ctx (B.mul m B.two) (B.of_int 5));
  check_b "negative base" (B.powmod_naive (B.neg b) (B.of_int 7) m)
    (B.Mont.powmod ctx (B.neg b) (B.of_int 7));
  check_b "roundtrip" (B.erem b m) (B.Mont.of_mont ctx (B.Mont.to_mont ctx b));
  let x = B.random_below st m and y = B.random_below st m in
  check_b "mulmod agrees" (B.mulmod x y m)
    (B.Mont.of_mont ctx
       (B.Mont.mulmod ctx (B.Mont.to_mont ctx x) (B.Mont.to_mont ctx y)));
  Alcotest.check_raises "even modulus"
    (Invalid_argument "Bigint.Mont.create: modulus must be odd and >= 3") (fun () ->
      ignore (B.Mont.create (B.of_int 100)));
  Alcotest.check_raises "modulus 1"
    (Invalid_argument "Bigint.Mont.create: modulus must be odd and >= 3") (fun () ->
      ignore (B.Mont.create B.one));
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Bigint.Mont.powmod: negative exponent") (fun () ->
      ignore (B.Mont.powmod ctx b (B.of_int (-1))))

let test_mont_backend_equality () =
  (* the 62-bit wide kernel, the retired 30-bit kernel kept as an
     oracle (Mont.Narrow) and the naive square-and-multiply loop must
     agree bit-for-bit; 2048 bits covers moduli well past every bench
     shape.  Full-width exponents drive the sliding-window ladder
     through long windows and zero runs. *)
  List.iter
    (fun bits ->
      let m = random_odd_modulus bits in
      let wide = B.Mont.create m in
      let narrow = B.Mont.Narrow.create m in
      let iters = if bits >= 2048 then 3 else 8 in
      for _ = 1 to iters do
        let b = B.random_bits st (bits + 11) in
        let e = B.random_bits st bits in
        let expect = B.powmod_naive b e m in
        check_b "wide = naive" expect (B.Mont.powmod wide b e);
        check_b "narrow = naive" expect (B.Mont.Narrow.powmod narrow b e)
      done;
      (* structured exponents stress the ladder's first-window fill and
         trailing-zero handling: all-ones spans, exact powers of two,
         single bits far apart *)
      List.iter
        (fun e ->
          let b = B.random_bits st bits in
          check_b "structured exponent"
            (B.Mont.Narrow.powmod narrow b e)
            (B.Mont.powmod wide b e))
        [
          B.zero; B.one; B.two; B.of_int 31; B.of_int 32; B.of_int 33;
          B.sub (B.shift_left B.one 64) B.one;
          B.shift_left B.one 64;
          B.of_hex "8000000000000001";
          B.add (B.shift_left B.one 200) B.one;
        ];
      (* Montgomery-domain product parity on canonical operands *)
      for _ = 1 to 5 do
        let x = B.random_below st m and y = B.random_below st m in
        check_b "mulmod wide = reference" (B.mulmod x y m)
          (B.Mont.of_mont wide
             (B.Mont.mulmod wide (B.Mont.to_mont wide x) (B.Mont.to_mont wide y)))
      done)
    [ 512; 1024; 2048 ]

(* ------------------------------------------------------------------ *)
(* QCheck                                                              *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Multi-exponentiation                                                *)
(* ------------------------------------------------------------------ *)

(* both kernels against the naive product of independent powmods, on
   random 512/1024-bit bases and exponents, small and large batches *)
let test_multiexp_matches_naive () =
  List.iter
    (fun bits ->
      let m = random_odd_modulus bits in
      let ctx = B.Mont.create m in
      List.iter
        (fun npairs ->
          let pairs =
            Array.init npairs (fun _ ->
                (B.random_bits st (bits + 13), B.random_bits st bits))
          in
          let expect = B.Multiexp.naive ctx pairs in
          check_b "straus = naive" expect (B.Multiexp.straus ctx pairs);
          check_b "pippenger = naive" expect (B.Multiexp.pippenger ctx pairs);
          check_b "run = naive" expect (B.Multiexp.run ctx pairs))
        [ 1; 3; 33; 80 ])
    [ 512; 1024 ]

(* short exponents exercise the narrow-window Straus path and the
   Pippenger window-choice heuristic *)
let test_multiexp_short_exponents () =
  let m = random_odd_modulus 512 in
  let ctx = B.Mont.create m in
  List.iter
    (fun ebits ->
      let pairs =
        Array.init 24 (fun _ -> (B.random_bits st 512, B.random_bits st ebits))
      in
      let expect = B.Multiexp.naive ctx pairs in
      check_b "straus short" expect (B.Multiexp.straus ctx pairs);
      check_b "pippenger short" expect (B.Multiexp.pippenger ctx pairs))
    [ 5; 31; 64 ]

let test_multiexp_edge_cases () =
  let m = random_odd_modulus 512 in
  let ctx = B.Mont.create m in
  check_b "empty product" B.one (B.Multiexp.run ctx [||]);
  check_b "all zero exponents" B.one
    (B.Multiexp.run ctx [| (B.of_int 7, B.zero); (B.of_int 11, B.zero) |]);
  (* zero base annihilates the product *)
  check_b "zero base" B.zero
    (B.Multiexp.straus ctx [| (B.zero, B.of_int 3); (B.of_int 5, B.of_int 2) |]);
  (* negative exponents go through the inverse; compare against the
     explicitly inverted naive form *)
  let b1 = random_odd_modulus 300 and b2 = random_odd_modulus 200 in
  let e1 = B.random_bits st 100 and e2 = B.random_bits st 100 in
  let pairs = [| (b1, B.neg e1); (b2, e2) |] in
  let expect =
    B.mulmod (B.powmod (B.invmod b1 m) e1 m) (B.powmod b2 e2 m) m
  in
  check_b "negative exponent straus" expect (B.Multiexp.straus ctx pairs);
  check_b "negative exponent pippenger" expect (B.Multiexp.pippenger ctx pairs);
  check_b "negative exponent naive" expect (B.Multiexp.naive ctx pairs)

let arb_big =
  QCheck.map
    (fun (bits, seed) ->
      let st = Random.State.make [| seed |] in
      B.random_bits st (bits mod 300))
    QCheck.(pair small_nat int)

let qcheck_props =
  [
    QCheck.Test.make ~count:300 ~name:"add commutes" (QCheck.pair arb_big arb_big)
      (fun (a, b) -> B.equal (B.add a b) (B.add b a));
    QCheck.Test.make ~count:300 ~name:"mul commutes" (QCheck.pair arb_big arb_big)
      (fun (a, b) -> B.equal (B.mul a b) (B.mul b a));
    QCheck.Test.make ~count:200 ~name:"mul distributes"
      (QCheck.triple arb_big arb_big arb_big) (fun (a, b, c) ->
        B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)));
    QCheck.Test.make ~count:300 ~name:"sub then add roundtrips"
      (QCheck.pair arb_big arb_big) (fun (a, b) -> B.equal a (B.add (B.sub a b) b));
    QCheck.Test.make ~count:300 ~name:"string roundtrip" arb_big (fun a ->
        B.equal a (B.of_string (B.to_string a)));
    QCheck.Test.make ~count:300 ~name:"bytes roundtrip" arb_big (fun a ->
        B.equal a (B.of_bytes_be (B.to_bytes_be a)));
    (* the big-endian encoding is canonical: no leading zero byte ever,
       so equal values have equal encodings (the wire codec rejects
       padded magnitudes on this basis) *)
    QCheck.Test.make ~count:300 ~name:"bytes canonical: no leading zero" arb_big
      (fun a ->
        let s = B.to_bytes_be a in
        String.length s = 0 || s.[0] <> '\000');
    QCheck.Test.make ~count:300 ~name:"zero padding is absorbed" arb_big (fun a ->
        let m = B.abs a in
        B.equal m (B.of_bytes_be ("\000\000\000" ^ B.to_bytes_be m)));
    QCheck.Test.make ~count:300 ~name:"encoding length = ceil(bits/8)" arb_big
      (fun a ->
        String.length (B.to_bytes_be a) = (B.bit_length a + 7) / 8);
    QCheck.Test.make ~count:200 ~name:"divmod invariant" (QCheck.pair arb_big arb_big)
      (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul b q) r) && B.compare (B.abs r) (B.abs b) < 0);
    (* random operand widths across the Karatsuba cutover (16 limbs =
       992 bits): the split identity must hold no matter which side of
       the threshold each recursive product lands on *)
    QCheck.Test.make ~count:40 ~name:"mul consistent across karatsuba boundary"
      QCheck.(triple (int_range 900 1100) (int_range 900 1100) int)
      (fun (abits, bbits, seed) ->
        let st = Random.State.make [| seed |] in
        let a = B.random_bits st abits and b = B.random_bits st bbits in
        let k = 1 + (abs seed mod 900) in
        let hi = B.shift_right a k in
        let lo = B.sub a (B.shift_left hi k) in
        B.equal (B.mul a b) (B.add (B.shift_left (B.mul hi b) k) (B.mul lo b)));
    (* both Montgomery kernels on a shared random odd modulus: the
       62-bit and 30-bit backends are independent implementations, so
       agreement is a strong correctness vote for each *)
    QCheck.Test.make ~count:60 ~name:"mont wide = narrow on random moduli"
      QCheck.(triple (int_range 8 320) int int)
      (fun (bits, mseed, vseed) ->
        let mst = Random.State.make [| mseed |] in
        let m = B.add (B.shift_left B.one (bits - 1)) (B.random_bits mst (bits - 1)) in
        let m = if B.is_even m then B.add m B.one else m in
        let vst = Random.State.make [| vseed |] in
        let b = B.random_bits vst (bits + 7) in
        let e = B.random_bits vst (bits + 1) in
        B.equal
          (B.Mont.powmod (B.Mont.create m) b e)
          (B.Mont.Narrow.powmod (B.Mont.Narrow.create m) b e));
  ]

let () =
  Alcotest.run "bigint"
    [
      ( "conversions",
        [
          Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "string vs int" `Quick test_string_against_int;
          Alcotest.test_case "hex" `Quick test_hex;
          Alcotest.test_case "bytes be" `Quick test_bytes_be;
          Alcotest.test_case "golden vectors" `Quick test_golden_vectors;
          Alcotest.test_case "bad inputs" `Quick test_bad_inputs;
        ] );
      ( "arithmetic",
        [
          Alcotest.test_case "matches int" `Quick test_arith_matches_int;
          Alcotest.test_case "compare" `Quick test_compare_matches_int;
          Alcotest.test_case "divmod invariant" `Quick test_divmod_invariant;
          Alcotest.test_case "divmod signs" `Quick test_divmod_signs;
          Alcotest.test_case "erem" `Quick test_erem;
          Alcotest.test_case "karatsuba" `Quick test_karatsuba_consistency;
          Alcotest.test_case "karatsuba threshold boundary" `Quick
            test_karatsuba_threshold_boundary;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "bit_length" `Quick test_bit_length;
        ] );
      ( "modular",
        [
          Alcotest.test_case "powmod" `Quick test_powmod;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "extended gcd" `Quick test_extended_gcd;
          Alcotest.test_case "invmod" `Quick test_invmod;
          Alcotest.test_case "factorial" `Quick test_factorial;
        ] );
      ( "primality",
        [
          Alcotest.test_case "known values" `Quick test_primality_known;
          Alcotest.test_case "random prime" `Quick test_random_prime;
          Alcotest.test_case "safe prime" `Quick test_random_safe_prime;
          Alcotest.test_case "random below" `Quick test_random_below;
        ] );
      ( "montgomery",
        [
          Alcotest.test_case "matches naive 512/1024" `Quick test_mont_matches_naive;
          Alcotest.test_case "dispatch matches naive" `Quick test_mont_dispatch_matches_naive;
          Alcotest.test_case "fixed base" `Quick test_mont_fixed_base;
          Alcotest.test_case "edge cases" `Quick test_mont_edge_cases;
          Alcotest.test_case "backend equality 512/1024/2048" `Quick
            test_mont_backend_equality;
        ] );
      ( "multiexp",
        [
          Alcotest.test_case "matches naive 512/1024" `Quick test_multiexp_matches_naive;
          Alcotest.test_case "short exponents" `Quick test_multiexp_short_exponents;
          Alcotest.test_case "edge cases" `Quick test_multiexp_edge_cases;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props);
    ]
