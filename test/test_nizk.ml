module B = Yoso_bigint.Bigint
module P = Yoso_paillier.Paillier
module Transcript = Yoso_nizk.Transcript
module Sigma = Yoso_nizk.Sigma
module Ideal = Yoso_nizk.Ideal

let st = Random.State.make [| 0x512A |]
let pk, sk = P.keygen ~bits:128 ~rng:st ()

let sample_unit () =
  let rec go () =
    let r = B.random_below st pk.P.n in
    if B.is_zero r || not (B.is_one (B.gcd r pk.P.n)) then go () else r
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Transcript                                                          *)
(* ------------------------------------------------------------------ *)

let test_transcript_deterministic () =
  let mk () =
    let ts = Transcript.create ~label:"test" in
    Transcript.absorb ts ~label:"x" "hello";
    Transcript.absorb_bigint ts ~label:"y" (B.of_int 42);
    Transcript.challenge_bytes ts ~label:"c" 32
  in
  Alcotest.(check string) "same absorptions, same challenge" (mk ()) (mk ())

let test_transcript_order_sensitive () =
  let chal absorb_order =
    let ts = Transcript.create ~label:"test" in
    List.iter (fun (l, v) -> Transcript.absorb ts ~label:l v) absorb_order;
    Transcript.challenge_bytes ts ~label:"c" 16
  in
  Alcotest.(check bool) "order matters" true
    (chal [ ("a", "1"); ("b", "2") ] <> chal [ ("b", "2"); ("a", "1") ])

let test_transcript_framing_injective () =
  (* "ab" + "c" must differ from "a" + "bc" *)
  let chal parts =
    let ts = Transcript.create ~label:"test" in
    List.iter (fun v -> Transcript.absorb ts ~label:"d" v) parts;
    Transcript.challenge_bytes ts ~label:"c" 16
  in
  Alcotest.(check bool) "no concat ambiguity" true (chal [ "ab"; "c" ] <> chal [ "a"; "bc" ])

let test_transcript_ratchet () =
  let ts = Transcript.create ~label:"test" in
  Transcript.absorb ts ~label:"x" "data";
  let c1 = Transcript.challenge_bytes ts ~label:"c" 16 in
  let c2 = Transcript.challenge_bytes ts ~label:"c" 16 in
  Alcotest.(check bool) "subsequent challenges differ" true (c1 <> c2)

let test_transcript_clone () =
  let ts = Transcript.create ~label:"test" in
  Transcript.absorb ts ~label:"x" "data";
  let ts' = Transcript.clone ts in
  Alcotest.(check string) "clone agrees"
    (Transcript.challenge_bytes ts ~label:"c" 16)
    (Transcript.challenge_bytes ts' ~label:"c" 16)

let test_challenge_bigint_bits () =
  let ts = Transcript.create ~label:"test" in
  let v = Transcript.challenge_bigint ts ~label:"c" ~bits:40 in
  Alcotest.(check bool) "within 40 bits" true (B.bit_length v <= 40)

(* ------------------------------------------------------------------ *)
(* Plaintext-knowledge sigma proofs                                    *)
(* ------------------------------------------------------------------ *)

let test_ptk_roundtrip () =
  for _ = 1 to 10 do
    let m = B.random_below st pk.P.n in
    let r = sample_unit () in
    let c = P.encrypt_with pk ~r m in
    let proof = Sigma.Plaintext_knowledge.prove pk ~rng:st ~m ~r ~c in
    Alcotest.(check bool) "verifies" true (Sigma.Plaintext_knowledge.verify pk ~c proof)
  done

let test_ptk_rejects_wrong_ciphertext () =
  let m = B.random_below st pk.P.n in
  let r = sample_unit () in
  let c = P.encrypt_with pk ~r m in
  let proof = Sigma.Plaintext_knowledge.prove pk ~rng:st ~m ~r ~c in
  let c' = P.encrypt pk ~rng:st m in
  Alcotest.(check bool) "different ciphertext rejected" false
    (Sigma.Plaintext_knowledge.verify pk ~c:c' proof)

let test_ptk_rejects_tampered_proof () =
  let m = B.random_below st pk.P.n in
  let r = sample_unit () in
  let c = P.encrypt_with pk ~r m in
  let proof = Sigma.Plaintext_knowledge.prove pk ~rng:st ~m ~r ~c in
  let bad = { proof with Sigma.Plaintext_knowledge.z_m = B.add proof.Sigma.Plaintext_knowledge.z_m B.one } in
  Alcotest.(check bool) "tampered z_m rejected" false
    (Sigma.Plaintext_knowledge.verify pk ~c bad);
  let bad2 = { proof with Sigma.Plaintext_knowledge.a = B.add proof.Sigma.Plaintext_knowledge.a B.one } in
  Alcotest.(check bool) "tampered a rejected" false
    (Sigma.Plaintext_knowledge.verify pk ~c bad2)

let test_ptk_rejects_wrong_witness_proof () =
  (* prover lies about m: resulting proof must not verify *)
  let m = B.random_below st pk.P.n in
  let r = sample_unit () in
  let c = P.encrypt_with pk ~r m in
  let proof = Sigma.Plaintext_knowledge.prove pk ~rng:st ~m:(B.add m B.one) ~r ~c in
  Alcotest.(check bool) "wrong witness rejected" false
    (Sigma.Plaintext_knowledge.verify pk ~c proof)

let test_ptk_size () =
  Alcotest.(check int) "4|N| bits" (4 * 128) (Sigma.Plaintext_knowledge.size_bits pk)

(* ------------------------------------------------------------------ *)
(* Multiplication sigma proofs                                         *)
(* ------------------------------------------------------------------ *)

let mult_instance () =
  let a = B.random_below st pk.P.n in
  let b = B.random_below st pk.P.n in
  let r = sample_unit () in
  let c_a = P.encrypt pk ~rng:st a in
  let c_b = P.encrypt_with pk ~r b in
  let c_c = P.scalar_mul pk b c_a in
  (a, b, r, c_a, c_b, c_c)

let test_mult_roundtrip () =
  for _ = 1 to 5 do
    let _, b, r, c_a, c_b, c_c = mult_instance () in
    let proof = Sigma.Multiplication.prove pk ~rng:st ~b ~r ~c_a ~c_b ~c_c in
    Alcotest.(check bool) "verifies" true
      (Sigma.Multiplication.verify pk ~c_a ~c_b ~c_c proof);
    (* plaintext of c_c really is a*b *)
    let a = P.decrypt sk c_a in
    Alcotest.(check bool) "c_c = a*b" true
      (B.equal (P.decrypt sk c_c) (B.erem (B.mul a b) pk.P.n))
  done

let test_mult_rejects_wrong_product () =
  let _, b, r, c_a, c_b, _ = mult_instance () in
  (* claim a different product ciphertext *)
  let c_c_bad = P.encrypt pk ~rng:st (B.of_int 999) in
  let proof = Sigma.Multiplication.prove pk ~rng:st ~b ~r ~c_a ~c_b ~c_c:c_c_bad in
  Alcotest.(check bool) "wrong product rejected" false
    (Sigma.Multiplication.verify pk ~c_a ~c_b ~c_c:c_c_bad proof)

let test_mult_rejects_swapped_statement () =
  let _, b, r, c_a, c_b, c_c = mult_instance () in
  let proof = Sigma.Multiplication.prove pk ~rng:st ~b ~r ~c_a ~c_b ~c_c in
  Alcotest.(check bool) "swapped statement rejected" false
    (Sigma.Multiplication.verify pk ~c_a:c_b ~c_b:c_a ~c_c proof)

let test_mult_rejects_negative_response () =
  let _, b, r, c_a, c_b, c_c = mult_instance () in
  let proof = Sigma.Multiplication.prove pk ~rng:st ~b ~r ~c_a ~c_b ~c_c in
  let bad = { proof with Sigma.Multiplication.z = B.neg B.one } in
  Alcotest.(check bool) "negative z rejected" false
    (Sigma.Multiplication.verify pk ~c_a ~c_b ~c_c bad)

(* ------------------------------------------------------------------ *)
(* Ideal NIZK                                                          *)
(* ------------------------------------------------------------------ *)

let test_ideal_honest () =
  let proof = Ideal.prove ~relation:"reenc" ~statement:"stmt" ~witness_ok:true in
  Alcotest.(check bool) "honest proof verifies" true
    (Ideal.verify ~relation:"reenc" ~statement:"stmt" proof)

let test_ideal_forge_rejected () =
  let proof = Ideal.forge ~relation:"reenc" ~statement:"stmt" in
  Alcotest.(check bool) "forged proof rejected" false
    (Ideal.verify ~relation:"reenc" ~statement:"stmt" proof)

let test_ideal_binding () =
  let proof = Ideal.prove ~relation:"reenc" ~statement:"stmt" ~witness_ok:true in
  Alcotest.(check bool) "different statement rejected" false
    (Ideal.verify ~relation:"reenc" ~statement:"other" proof);
  Alcotest.(check bool) "different relation rejected" false
    (Ideal.verify ~relation:"decrypt" ~statement:"stmt" proof)

let test_ideal_failed_witness () =
  let proof = Ideal.prove ~relation:"reenc" ~statement:"stmt" ~witness_ok:false in
  Alcotest.(check bool) "failed witness check rejected" false
    (Ideal.verify ~relation:"reenc" ~statement:"stmt" proof)

let () =
  Alcotest.run "nizk"
    [
      ( "transcript",
        [
          Alcotest.test_case "deterministic" `Quick test_transcript_deterministic;
          Alcotest.test_case "order sensitive" `Quick test_transcript_order_sensitive;
          Alcotest.test_case "injective framing" `Quick test_transcript_framing_injective;
          Alcotest.test_case "ratchet" `Quick test_transcript_ratchet;
          Alcotest.test_case "clone" `Quick test_transcript_clone;
          Alcotest.test_case "challenge bits" `Quick test_challenge_bigint_bits;
        ] );
      ( "plaintext-knowledge",
        [
          Alcotest.test_case "roundtrip" `Quick test_ptk_roundtrip;
          Alcotest.test_case "wrong ciphertext" `Quick test_ptk_rejects_wrong_ciphertext;
          Alcotest.test_case "tampered proof" `Quick test_ptk_rejects_tampered_proof;
          Alcotest.test_case "wrong witness" `Quick test_ptk_rejects_wrong_witness_proof;
          Alcotest.test_case "size" `Quick test_ptk_size;
        ] );
      ( "multiplication",
        [
          Alcotest.test_case "roundtrip" `Quick test_mult_roundtrip;
          Alcotest.test_case "wrong product" `Quick test_mult_rejects_wrong_product;
          Alcotest.test_case "swapped statement" `Quick test_mult_rejects_swapped_statement;
          Alcotest.test_case "negative response" `Quick test_mult_rejects_negative_response;
        ] );
      ( "ideal",
        [
          Alcotest.test_case "honest" `Quick test_ideal_honest;
          Alcotest.test_case "forge" `Quick test_ideal_forge_rejected;
          Alcotest.test_case "binding" `Quick test_ideal_binding;
          Alcotest.test_case "failed witness" `Quick test_ideal_failed_witness;
        ] );
    ]
