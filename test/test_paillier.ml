module B = Yoso_bigint.Bigint
module P = Yoso_paillier.Paillier
module T = Yoso_paillier.Threshold

let st = Random.State.make [| 0xFA11 |]

let big = Alcotest.testable B.pp B.equal
let check_b = Alcotest.check big

(* key generation is the slow part; share one keypair across tests *)
let pk, sk = P.keygen ~bits:128 ~rng:st ()
let tpk5, tshares5 = T.keygen ~bits:128 ~n:5 ~t:2 ~rng:st ()

let rand_msg () = B.random_below st pk.P.n

(* ------------------------------------------------------------------ *)
(* Base Paillier                                                       *)
(* ------------------------------------------------------------------ *)

let test_enc_dec_roundtrip () =
  for _ = 1 to 20 do
    let m = rand_msg () in
    check_b "dec(enc(m)) = m" m (P.decrypt sk (P.encrypt pk ~rng:st m))
  done;
  check_b "zero" B.zero (P.decrypt sk (P.encrypt pk ~rng:st B.zero));
  check_b "N-1" (B.sub pk.P.n B.one) (P.decrypt sk (P.encrypt pk ~rng:st (B.sub pk.P.n B.one)))

let test_additive_homomorphism () =
  for _ = 1 to 10 do
    let m1 = rand_msg () and m2 = rand_msg () in
    let c = P.add pk (P.encrypt pk ~rng:st m1) (P.encrypt pk ~rng:st m2) in
    check_b "sum" (B.erem (B.add m1 m2) pk.P.n) (P.decrypt sk c)
  done

let test_scalar_mul () =
  for _ = 1 to 10 do
    let m = rand_msg () and s = rand_msg () in
    let c = P.scalar_mul pk s (P.encrypt pk ~rng:st m) in
    check_b "scalar" (B.erem (B.mul s m) pk.P.n) (P.decrypt sk c)
  done

let test_linear_combination () =
  let ms = List.init 4 (fun _ -> rand_msg ()) in
  let coeffs = List.init 4 (fun _ -> B.random_below st (B.of_int 1000)) in
  let cts = List.map (P.encrypt pk ~rng:st) ms in
  let c = P.linear_combination pk cts coeffs in
  let expected =
    B.erem (List.fold_left2 (fun acc m k -> B.add acc (B.mul m k)) B.zero ms coeffs) pk.P.n
  in
  check_b "TEval" expected (P.decrypt sk c)

let test_rerandomize () =
  let m = rand_msg () in
  let c = P.encrypt pk ~rng:st m in
  let c' = P.rerandomize pk ~rng:st c in
  Alcotest.(check bool) "ciphertext changed" false (B.equal (P.raw c) (P.raw c'));
  check_b "plaintext unchanged" m (P.decrypt sk c')

let test_deterministic_encrypt () =
  let m = rand_msg () in
  let r = B.of_int 12345 in
  let c1 = P.encrypt_with pk ~r m and c2 = P.encrypt_with pk ~r m in
  check_b "deterministic" (P.raw c1) (P.raw c2)

let test_ciphertexts_randomized () =
  let m = rand_msg () in
  let c1 = P.encrypt pk ~rng:st m and c2 = P.encrypt pk ~rng:st m in
  Alcotest.(check bool) "fresh randomness" false (B.equal (P.raw c1) (P.raw c2))

let test_wrong_key_rejected () =
  let pk2, _ = P.keygen ~bits:64 ~rng:st () in
  let c = P.encrypt pk ~rng:st (rand_msg ()) in
  Alcotest.check_raises "decrypt wrong key"
    (Invalid_argument "Paillier.decrypt: ciphertext under a different key") (fun () ->
      let _, sk2 = P.keygen ~bits:64 ~rng:st () in
      ignore (P.decrypt sk2 c));
  Alcotest.check_raises "add wrong key"
    (Invalid_argument "Paillier.add: ciphertext under a different key") (fun () ->
      ignore (P.add pk2 c c))

(* ------------------------------------------------------------------ *)
(* Threshold scheme                                                    *)
(* ------------------------------------------------------------------ *)

let tmsg () = B.random_below st tpk5.T.pk.P.n

let partials ?(who = [ 0; 1; 2; 3; 4 ]) shares ct =
  List.map (fun i -> T.partial_decrypt tpk5 shares.(i) ct) who

let test_threshold_roundtrip () =
  for _ = 1 to 5 do
    let m = tmsg () in
    let ct = T.encrypt tpk5 ~rng:st m in
    check_b "t+1 partials decrypt" m (T.combine tpk5 (partials tshares5 ct ~who:[ 0; 1; 2 ]));
    check_b "different subset" m (T.combine tpk5 (partials tshares5 ct ~who:[ 4; 2; 1 ]));
    check_b "all partials" m (T.combine tpk5 (partials tshares5 ct))
  done

let test_threshold_too_few () =
  let ct = T.encrypt tpk5 ~rng:st (tmsg ()) in
  Alcotest.check_raises "too few" (Invalid_argument "Threshold.combine: 2 partials, need 3")
    (fun () -> ignore (T.combine tpk5 (partials tshares5 ct ~who:[ 0; 1 ])))

let test_threshold_duplicates_ignored () =
  let m = tmsg () in
  let ct = T.encrypt tpk5 ~rng:st m in
  let ps = partials tshares5 ct ~who:[ 0; 0; 1; 2 ] in
  (* duplicate index 0 must not be counted twice, so this has only 3
     distinct partials and succeeds *)
  check_b "dedup" m (T.combine tpk5 ps)

let test_threshold_after_eval () =
  let m1 = tmsg () and m2 = tmsg () in
  let ct = T.eval tpk5 [ T.encrypt tpk5 ~rng:st m1; T.encrypt tpk5 ~rng:st m2 ] [ B.of_int 3; B.of_int 5 ] in
  let expected = B.erem (B.add (B.mul (B.of_int 3) m1) (B.mul (B.of_int 5) m2)) tpk5.T.pk.P.n in
  check_b "decrypt after eval" expected (T.combine tpk5 (partials tshares5 ct ~who:[ 1; 3; 4 ]))

let reshare_all shares epoch =
  (* every party reshapes; recipients combine the same sender subset *)
  let msgs = Array.map (fun s -> T.reshare tpk5 s ~rng:st) shares in
  Array.init 5 (fun j ->
      let subshares = List.init 5 (fun i -> (i + 1, msgs.(i).(j))) in
      T.recombine_share tpk5 ~index:(j + 1) ~epoch subshares)

let test_key_rerandomization () =
  let m = tmsg () in
  let ct = T.encrypt tpk5 ~rng:st m in
  let shares1 = reshare_all tshares5 1 in
  check_b "epoch 1 decrypts" m (T.combine tpk5 (partials shares1 ct ~who:[ 0; 2; 4 ]));
  (* a second epoch *)
  let shares2 = reshare_all shares1 2 in
  check_b "epoch 2 decrypts" m (T.combine tpk5 (partials shares2 ct ~who:[ 1; 2; 3 ]));
  (* old and new shares are different values *)
  Alcotest.(check bool) "shares refreshed" false
    (B.equal (T.unsafe_share ~index:1 ~epoch:0 ~value:B.zero).T.value tshares5.(0).T.value
     && true);
  Alcotest.(check bool) "share value changed" false
    (B.equal tshares5.(0).T.value shares1.(0).T.value)

let test_rerandomization_partial_subset () =
  (* only t+1 = 3 parties reshare: still enough *)
  let m = tmsg () in
  let ct = T.encrypt tpk5 ~rng:st m in
  let msgs = Array.map (fun s -> T.reshare tpk5 s ~rng:st) tshares5 in
  let shares1 =
    Array.init 5 (fun j ->
        let subshares = List.map (fun i -> (i + 1, msgs.(i).(j))) [ 0; 2; 3 ] in
        T.recombine_share tpk5 ~index:(j + 1) ~epoch:1 subshares)
  in
  check_b "subset reshare decrypts" m (T.combine tpk5 (partials shares1 ct ~who:[ 0; 1; 4 ]))

let test_mixed_epoch_rejected () =
  let ct = T.encrypt tpk5 ~rng:st (tmsg ()) in
  let shares1 = reshare_all tshares5 1 in
  let mixed =
    [ T.partial_decrypt tpk5 tshares5.(0) ct;
      T.partial_decrypt tpk5 shares1.(1) ct;
      T.partial_decrypt tpk5 shares1.(2) ct ]
  in
  Alcotest.check_raises "mixed epochs"
    (Invalid_argument "Threshold.combine: partials from different epochs") (fun () ->
      ignore (T.combine tpk5 mixed))

let test_sim_partial_decrypt () =
  let m_real = tmsg () and m_target = tmsg () in
  let ct = T.encrypt tpk5 ~rng:st m_real in
  (* corrupt = parties 4,5; honest = 1,2,3 *)
  let honest = [ tshares5.(0); tshares5.(1); tshares5.(2) ] in
  let sims = T.sim_partial_decrypt tpk5 ct ~m:m_target ~honest in
  check_b "TDec on simulated partials returns target" m_target (T.combine tpk5 sims);
  (* sanity: without simulation the same parties decrypt the real value *)
  check_b "real partials return real plaintext" m_real
    (T.combine tpk5 (partials tshares5 ct ~who:[ 0; 1; 2 ]))

let test_sim_not_enough_honest () =
  let ct = T.encrypt tpk5 ~rng:st (tmsg ()) in
  Alcotest.check_raises "not enough honest"
    (Invalid_argument "Threshold.sim_partial_decrypt: not enough honest shares")
    (fun () ->
      ignore (T.sim_partial_decrypt tpk5 ct ~m:B.zero ~honest:[ tshares5.(0) ]))

let test_keygen_validation () =
  Alcotest.check_raises "t >= n" (Invalid_argument "Threshold.keygen: need 0 <= t < n")
    (fun () -> ignore (T.keygen ~bits:64 ~n:3 ~t:3 ~rng:st ()))

let test_threshold_t0 () =
  (* degenerate single-party "threshold" *)
  let tpk, shares = T.keygen ~bits:64 ~n:2 ~t:0 ~rng:st () in
  let m = B.random_below st tpk.T.pk.P.n in
  let ct = T.encrypt tpk ~rng:st m in
  check_b "t=0" m (T.combine tpk [ T.partial_decrypt tpk shares.(0) ct ])

let test_reference_matches_ctx () =
  (* full encrypt -> tpdec -> combine through both backends must give
     bit-identical intermediate and final values *)
  let tpk, shares = T.keygen ~bits:96 ~n:5 ~t:2 ~rng:st () in
  let pk = tpk.T.pk in
  let pctx = P.context pk in
  let tctx = T.context tpk in
  for _ = 1 to 5 do
    let m = B.random_below st pk.P.n in
    let r = P.sample_unit pk ~rng:st in
    let ct_ref = P.Reference.encrypt_with pk ~r m in
    let ct_ctx = P.Ctx.encrypt_with pctx ~r m in
    check_b "encrypt" (P.raw ct_ref) (P.raw ct_ctx);
    let subset = [ 1; 3; 5 ] in
    let parts_ref =
      List.map (fun i -> T.Reference.partial_decrypt tpk shares.(i - 1) ct_ref) subset
    in
    let parts_ctx =
      List.map (fun i -> T.Ctx.partial_decrypt tctx shares.(i - 1) ct_ctx) subset
    in
    Alcotest.(check bool) "partials equal" true (parts_ref = parts_ctx);
    check_b "combine ref" m (T.Reference.combine tpk parts_ref);
    check_b "combine ctx" m (T.Ctx.combine tctx parts_ctx)
  done

let test_g_pow_table_matches_closed_form () =
  let pk, _ = P.keygen ~bits:96 ~rng:st () in
  let ctx = P.context pk in
  check_b "m = 0" (P.Ctx.g_pow ctx B.zero) (P.Ctx.g_pow_table ctx B.zero);
  for _ = 1 to 20 do
    let m = B.random_below st pk.P.n in
    check_b "table = closed form" (P.Ctx.g_pow ctx m) (P.Ctx.g_pow_table ctx m)
  done

let () =
  Alcotest.run "paillier"
    [
      ( "base",
        [
          Alcotest.test_case "roundtrip" `Quick test_enc_dec_roundtrip;
          Alcotest.test_case "additive" `Quick test_additive_homomorphism;
          Alcotest.test_case "scalar mul" `Quick test_scalar_mul;
          Alcotest.test_case "linear combination" `Quick test_linear_combination;
          Alcotest.test_case "rerandomize" `Quick test_rerandomize;
          Alcotest.test_case "deterministic" `Quick test_deterministic_encrypt;
          Alcotest.test_case "randomized" `Quick test_ciphertexts_randomized;
          Alcotest.test_case "wrong key" `Quick test_wrong_key_rejected;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "roundtrip" `Quick test_threshold_roundtrip;
          Alcotest.test_case "too few" `Quick test_threshold_too_few;
          Alcotest.test_case "duplicates" `Quick test_threshold_duplicates_ignored;
          Alcotest.test_case "after eval" `Quick test_threshold_after_eval;
          Alcotest.test_case "key rerandomization" `Quick test_key_rerandomization;
          Alcotest.test_case "partial-subset reshare" `Quick test_rerandomization_partial_subset;
          Alcotest.test_case "mixed epochs" `Quick test_mixed_epoch_rejected;
          Alcotest.test_case "SimTPDec" `Quick test_sim_partial_decrypt;
          Alcotest.test_case "SimTPDec too few" `Quick test_sim_not_enough_honest;
          Alcotest.test_case "keygen validation" `Quick test_keygen_validation;
          Alcotest.test_case "t = 0" `Quick test_threshold_t0;
        ] );
    ( "backends",
        [
          Alcotest.test_case "reference = ctx" `Quick test_reference_matches_ctx;
          Alcotest.test_case "g_pow table = closed form" `Quick
            test_g_pow_table_matches_closed_form;
        ] );
    ]
