module F = Yoso_field.Field.Fp
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Offline = Yoso_mpc.Offline
module Faults = Yoso_runtime.Faults
module Gen = Yoso_circuit.Generators
module Board = Yoso_net.Board
module Meter = Yoso_net.Meter
module Cost = Yoso_runtime.Cost
module Factory = Yoso_factory.Factory
module Depot = Yoso_factory.Depot

(* ------------------------------------------------------------------ *)
(* Golden transcripts: the produce/consume session split (and the
   start/prepare_batch/assemble stepper underneath Offline.run) must
   not move a single byte of the pre-split protocol's transcript.
   These constants were captured on the unsplit implementation.       *)
(* ------------------------------------------------------------------ *)

let test_golden_wide_mul () =
  let params = Params.create ~n:16 ~t:4 ~k:4 () in
  let circuit = Gen.wide_mul_reduced ~width:8 ~depth:2 ~clients:2 in
  let inputs c = Array.init 16 (fun i -> F.of_int ((c + 2) * (i + 3))) in
  let r =
    Protocol.execute ~params ~config:(Protocol.config ~seed:0xFAC7 ()) ~circuit ~inputs ()
  in
  Alcotest.(check int) "digest" 2383187397470843671 r.Protocol.transcript.Board.digest;
  Alcotest.(check int) "frames" 387 r.Protocol.transcript.Board.frames;
  Alcotest.(check int) "frame bytes" 5610596 r.Protocol.transcript.Board.frame_bytes

let test_golden_random_dag () =
  let params = Params.create ~n:8 ~t:2 ~k:2 () in
  let circuit = Gen.random_dag ~gates:24 ~clients:2 ~mul_fraction:0.5 ~seed:3 in
  let st = Random.State.make [| 0xBEE5 |] in
  let fixed = Array.init 2 (fun _ -> Array.init 2 (fun _ -> F.random st)) in
  let r =
    Protocol.execute ~params
      ~config:(Protocol.config ~seed:0xBEE5 ())
      ~circuit ~inputs:(fun c -> fixed.(c)) ()
  in
  Alcotest.(check int) "digest" 42606884155835885 r.Protocol.transcript.Board.digest;
  Alcotest.(check int) "frames" 299 r.Protocol.transcript.Board.frames

(* the stepper path is the same committees in the same order: draining
   start/prepare_batch through assemble must reproduce run exactly *)
let test_stepper_equals_run () =
  let params = Params.create ~n:8 ~t:2 ~k:2 () in
  let circuit = Gen.wide_mul_reduced ~width:4 ~depth:2 ~clients:2 in
  let inputs c = Array.init 8 (fun i -> F.of_int ((c + 1) * (i + 2))) in
  let digest_of consume_via_stepper =
    let s =
      Protocol.open_session ~params
        ~config:(Protocol.config ~seed:0x57E9 ())
        ~circuit ()
    in
    Fun.protect
      ~finally:(fun () -> Protocol.close_session s)
      (fun () ->
        let prep =
          if consume_via_stepper then begin
            let st = Protocol.start_stream s in
            let rec drain acc =
              match Offline.prepare_batch st with
              | Some item -> drain (item :: acc)
              | None -> List.rev acc
            in
            Offline.assemble (Protocol.session_layout s) (drain [])
          end
          else Protocol.produce s
        in
        let r = Protocol.consume s (Offline.source_of prep) ~inputs in
        (r.Protocol.transcript.Board.digest, r.Protocol.outputs))
  in
  let d1, o1 = digest_of false and d2, o2 = digest_of true in
  Alcotest.(check int) "stepper digest == one-shot digest" d1 d2;
  Alcotest.(check bool) "outputs equal" true (o1 = o2)

(* ------------------------------------------------------------------ *)
(* Streaming: per-circuit bytes and outputs equal independent runs     *)
(* ------------------------------------------------------------------ *)

let stream_params = Params.create ~n:8 ~t:2 ~k:2 ()

let stream_jobs n =
  Array.init n (fun j ->
      {
        Factory.circuit = Gen.wide_mul_reduced ~width:4 ~depth:2 ~clients:2;
        inputs =
          (fun c -> Array.init 8 (fun i -> F.of_int ((c + 2) * (i + 3) * (j + 1))));
      })

let test_stream_matches_oneshot () =
  let jobs = stream_jobs 3 in
  let opts =
    { Offline.default_opts with Offline.audit_triples = true; packed_reenc = true }
  in
  let r =
    Factory.stream ~params:stream_params
      ~config:(Protocol.config ~seed:0xFAC7 ~offline:opts ())
      ~jobs ()
  in
  Alcotest.(check int) "one result per job" 3 (List.length r.Factory.results);
  List.iter
    (fun cr ->
      let j = cr.Factory.index in
      let one =
        Protocol.execute ~params:stream_params
          ~config:(Protocol.config ~seed:cr.Factory.seed ~offline:opts ())
          ~circuit:jobs.(j).Factory.circuit ~inputs:jobs.(j).Factory.inputs ()
      in
      Alcotest.(check int)
        (Printf.sprintf "digest c%d" j)
        one.Protocol.transcript.Board.digest
        cr.Factory.report.Protocol.transcript.Board.digest;
      Alcotest.(check bool)
        (Printf.sprintf "outputs c%d" j)
        true
        (cr.Factory.report.Protocol.outputs = one.Protocol.outputs);
      Alcotest.(check bool)
        (Printf.sprintf "correct c%d" j)
        true
        (Protocol.check cr.Factory.report jobs.(j).Factory.circuit
           ~inputs:jobs.(j).Factory.inputs))
    r.Factory.results;
  (* refill attribution covers every produced batch of every circuit *)
  Alcotest.(check bool) "refill bytes attributed" true (Meter.refill_total r.Factory.meter > 0);
  (* offline traffic is remapped into the factory phase dimension *)
  Alcotest.(check bool) "factory phase populated" true
    (Cost.elements r.Factory.cost ~phase:"factory" > 0);
  Alcotest.(check int) "offline phase empty after remap" 0
    (Cost.elements r.Factory.cost ~phase:"offline")

(* the depot schedule (draw order and bytes) must not depend on the
   worker-domain count or the depot capacity *)
let test_stream_deterministic () =
  let run ~domains ~capacity =
    let r =
      Factory.stream ~params:stream_params
        ~config:(Protocol.config ~seed:0xD07 ~domains ())
        ?capacity ~jobs:(stream_jobs 3) ()
    in
    ( List.map
        (fun cr -> cr.Factory.report.Protocol.transcript.Board.digest)
        r.Factory.results,
      r.Factory.depot.Depot.draw_log )
  in
  let d1, log1 = run ~domains:1 ~capacity:None in
  let d2, log2 = run ~domains:2 ~capacity:None in
  let d3, log3 = run ~domains:1 ~capacity:(Some 40) in
  Alcotest.(check bool) "digests at 2 domains" true (d1 = d2);
  Alcotest.(check bool) "digests at tight depot" true (d1 = d3);
  Alcotest.(check bool) "draw log at 2 domains" true (log1 = log2);
  Alcotest.(check bool) "draw log at tight depot" true (log1 = log3)

(* a depot smaller than one circuit forces the producer to pause at
   the next circuit boundary; results must be unchanged.  Circuit 0's
   input callback stalls its online phase, so the producer reliably
   reaches [reserve] while circuit 0's material (far above a
   12-unit watermark) still sits in the depot. *)
let test_stream_backpressure () =
  let jobs = stream_jobs 4 in
  jobs.(0) <-
    {
      jobs.(0) with
      Factory.inputs =
        (fun c ->
          Unix.sleepf 0.08;
          jobs.(1).Factory.inputs c);
    };
  let r =
    Factory.stream ~params:stream_params
      ~config:(Protocol.config ~seed:0xBACC ())
      ~capacity:12 ~low:2 ~jobs ()
  in
  Alcotest.(check bool) "producer throttled" true
    (r.Factory.depot.Depot.producer_blocks > 0);
  Alcotest.(check bool) "consumer waited on refills" true
    (r.Factory.depot.Depot.consumer_blocks > 0);
  Alcotest.(check int) "everything drained" 0 r.Factory.depot.Depot.final_occupancy;
  List.iter
    (fun cr ->
      Alcotest.(check bool)
        (Printf.sprintf "correct c%d" cr.Factory.index)
        true
        (Protocol.check cr.Factory.report jobs.(cr.Factory.index).Factory.circuit
           ~inputs:jobs.(cr.Factory.index).Factory.inputs))
    r.Factory.results

(* ------------------------------------------------------------------ *)
(* Depot unit behavior                                                 *)
(* ------------------------------------------------------------------ *)

let test_depot_producer_blocks () =
  let d : int Depot.t = Depot.create ~capacity:4 ~low:1 () in
  Depot.put d ~circuit:0 ~kind:"x" ~units:4 41;
  let passed = Atomic.make false in
  let prod =
    Domain.spawn (fun () ->
        Depot.reserve d;
        Atomic.set passed true)
  in
  Unix.sleepf 0.05;
  Alcotest.(check bool) "reserve blocked at high watermark" false (Atomic.get passed);
  Alcotest.(check int) "slot intact" 41 (Depot.draw d ~circuit:0 ~kind:"x");
  Domain.join prod;
  Alcotest.(check bool) "reserve resumed after drain to low" true (Atomic.get passed);
  let s = Depot.stats d in
  Alcotest.(check int) "block counted" 1 s.Depot.producer_blocks

let test_depot_consumer_blocks () =
  let d : int Depot.t = Depot.create ~capacity:8 () in
  let got = Atomic.make 0 in
  let cons = Domain.spawn (fun () -> Atomic.set got (Depot.draw d ~circuit:2 ~kind:"y")) in
  Unix.sleepf 0.05;
  Alcotest.(check int) "draw blocked on empty slot" 0 (Atomic.get got);
  Depot.put d ~circuit:2 ~kind:"y" ~units:1 7;
  Domain.join cons;
  Alcotest.(check int) "draw returned the slot" 7 (Atomic.get got);
  let s = Depot.stats d in
  Alcotest.(check int) "block counted" 1 s.Depot.consumer_blocks

let test_depot_close_and_poison () =
  let d : int Depot.t = Depot.create ~capacity:4 () in
  Depot.put d ~circuit:0 ~kind:"x" ~units:1 1;
  Depot.close d;
  Alcotest.(check int) "deposited slots still drain" 1 (Depot.draw d ~circuit:0 ~kind:"x");
  Alcotest.check_raises "missing slot raises after close" Depot.Closed (fun () ->
      ignore (Depot.draw d ~circuit:0 ~kind:"x"));
  let p : int Depot.t = Depot.create ~capacity:4 () in
  Depot.fail p (Failure "producer died");
  Alcotest.check_raises "poison propagates" (Failure "producer died") (fun () ->
      ignore (Depot.draw p ~circuit:0 ~kind:"x"))

let test_depot_validation () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Depot.create: capacity must be >= 1") (fun () ->
      ignore (Depot.create ~capacity:0 () : int Depot.t));
  Alcotest.check_raises "low < capacity"
    (Invalid_argument "Depot.create: need 0 <= low < capacity") (fun () ->
      ignore (Depot.create ~low:4 ~capacity:4 () : int Depot.t))

(* ------------------------------------------------------------------ *)
(* Triple audits end to end                                            *)
(* ------------------------------------------------------------------ *)

let audit_opts verify =
  { Offline.default_opts with Offline.audit_triples = true; audit_verify = verify }

let run_audited ?(tamper = []) verify =
  let params = Params.create ~n:8 ~t:2 ~k:2 () in
  let circuit = Gen.wide_mul_reduced ~width:4 ~depth:2 ~clients:2 in
  let inputs c = Array.init 8 (fun i -> F.of_int ((c + 3) * (i + 1))) in
  Protocol.execute ~params
    ~config:
      (Protocol.config ~seed:0xA0D1
         ~offline:{ (audit_opts verify) with Offline.audit_tamper = tamper }
         ())
    ~circuit ~inputs ()

(* the verifier strategy is CPU-local: RLC aggregation and per-proof
   checks accept the same runs and produce the same bytes *)
let test_audit_verify_strategy_local () =
  let a = run_audited `Each and b = run_audited `Batched in
  Alcotest.(check int) "digests equal" a.Protocol.transcript.Board.digest
    b.Protocol.transcript.Board.digest;
  Alcotest.(check bool) "outputs equal" true (a.Protocol.outputs = b.Protocol.outputs)

let test_audit_catches_tampered_triple () =
  List.iter
    (fun verify ->
      match run_audited ~tamper:[ 2 ] verify with
      | _ -> Alcotest.fail "tampered triple audit passed"
      | exception Faults.Protocol_failure f ->
        Alcotest.(check string) "audit step blamed" "beaver: batch product-proof audit"
          f.Faults.f_step;
        Alcotest.(check string) "audit committee" "Off-Audit" f.Faults.f_committee)
    [ `Each; `Batched ]

let () =
  Alcotest.run "factory"
    [
      ( "golden",
        [
          Alcotest.test_case "wide_mul n=16" `Quick test_golden_wide_mul;
          Alcotest.test_case "random_dag n=8" `Quick test_golden_random_dag;
          Alcotest.test_case "stepper == run" `Quick test_stepper_equals_run;
        ] );
      ( "stream",
        [
          Alcotest.test_case "matches one-shot" `Quick test_stream_matches_oneshot;
          Alcotest.test_case "deterministic" `Quick test_stream_deterministic;
          Alcotest.test_case "backpressure" `Quick test_stream_backpressure;
        ] );
      ( "depot",
        [
          Alcotest.test_case "producer blocks" `Quick test_depot_producer_blocks;
          Alcotest.test_case "consumer blocks" `Quick test_depot_consumer_blocks;
          Alcotest.test_case "close and poison" `Quick test_depot_close_and_poison;
          Alcotest.test_case "validation" `Quick test_depot_validation;
        ] );
      ( "audit",
        [
          Alcotest.test_case "verify strategy local" `Quick test_audit_verify_strategy_local;
          Alcotest.test_case "tamper caught" `Quick test_audit_catches_tampered_triple;
        ] );
    ]
