(* Socket transport: envelope codec, EINTR-safe socket I/O, the
   bulletin-board daemon, and the sim/loopback equivalence the whole
   design rests on — same seeds through the in-process board and
   through forked processes over real sockets must yield identical
   transcripts. *)

module F = Yoso_field.Field.Fp
module Wire = Yoso_net.Wire
module Meter = Yoso_net.Meter
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Gen = Yoso_circuit.Generators
module Envelope = Yoso_transport.Envelope
module Sockio = Yoso_transport.Sockio
module Runner = Yoso_transport.Runner
module Policy = Yoso_transport.Transport_policy
module Chaos = Yoso_transport.Chaos
module Topology = Yoso_transport.Topology
module Board = Yoso_net.Board
module Role = Yoso_runtime.Role

(* ------------------------------------------------------------------ *)
(* Wire frame cap                                                      *)
(* ------------------------------------------------------------------ *)

let with_cap cap f =
  let saved = !Wire.max_frame_len in
  Wire.max_frame_len := cap;
  Fun.protect ~finally:(fun () -> Wire.max_frame_len := saved) f

let test_frame_cap () =
  let msg =
    { Wire.step = "cap"; items = [ Wire.Field_elements (Array.init 8 F.of_int) ] }
  in
  let payload_len = String.length (Wire.encode_message msg) in
  let frame = Wire.to_frame msg in
  (* one byte over the cap: structured rejection, not an allocation *)
  with_cap (payload_len - 1) (fun () ->
      match Wire.of_frame frame with
      | _ -> Alcotest.fail "frame one byte over cap must be rejected"
      | exception Wire.Decode_error e ->
        Alcotest.(check bool) "mentions cap" true
          (String.length e > 0 && String.index_opt e 'm' <> None));
  (* exactly at the cap: decodes *)
  with_cap payload_len (fun () ->
      let m = Wire.of_frame frame in
      Alcotest.(check string) "step survives" "cap" m.Wire.step)

(* ------------------------------------------------------------------ *)
(* Envelope codec                                                      *)
(* ------------------------------------------------------------------ *)

let sample_msgs =
  [
    Envelope.Hello { slot = 3; nslots = 16; seed = 0xC0FFEE };
    Envelope.Start;
    Envelope.Post { seq = 0; slot = 3; frame = "frame-zero" };
    Envelope.Deliver { seq = 0; slot = 3; frame = "frame-zero" };
    Envelope.Post { seq = 12345; slot = 0; frame = String.make 600 '\x7f' };
    Envelope.Peer_down { slot = 7 };
    Envelope.Report { slot = 1; json = "{\"digest\":42}" };
    Envelope.Shutdown;
    Envelope.Subscribe { slot = 2; full_of = [ 3; 4; 7 ] };
    Envelope.Deliver_batch
      [
        Envelope.Full { seq = 9; slot = 1; frame = "full-frame-bytes" };
        Envelope.Digest
          { seq = 10; slot = 2; csum = Wire.checksum "other"; len = 5 };
        Envelope.Digest { seq = 11; slot = 3; csum = max_int; len = 0 };
      ];
  ]

let msg_eq a b =
  Format.asprintf "%a" Envelope.pp_msg a = Format.asprintf "%a" Envelope.pp_msg b

let test_envelope_roundtrip () =
  List.iter
    (fun m ->
      let st = Envelope.stream () in
      Envelope.feed st (Envelope.encode m);
      (match Envelope.next st with
      | Some m' -> Alcotest.(check bool) "roundtrip" true (msg_eq m m')
      | None -> Alcotest.fail "complete envelope did not decode");
      Alcotest.(check (option reject)) "nothing left" None
        (Option.map (fun _ -> ()) (Envelope.next st)))
    sample_msgs

(* an envelope split at every byte boundary still decodes *)
let test_envelope_split_every_boundary () =
  let wire = String.concat "" (List.map Envelope.encode sample_msgs) in
  for split = 0 to String.length wire do
    let st = Envelope.stream () in
    Envelope.feed st (String.sub wire 0 split);
    let got = ref [] in
    let drain () =
      let rec go () =
        match Envelope.next st with
        | Some m ->
          got := m :: !got;
          go ()
        | None -> ()
      in
      go ()
    in
    drain ();
    Envelope.feed st (String.sub wire split (String.length wire - split));
    drain ();
    let got = List.rev !got in
    Alcotest.(check int)
      (Printf.sprintf "split at %d: count" split)
      (List.length sample_msgs) (List.length got);
    List.iter2
      (fun a b -> Alcotest.(check bool) "msg equal" true (msg_eq a b))
      sample_msgs got
  done

let test_envelope_byte_at_a_time () =
  let wire = String.concat "" (List.map Envelope.encode sample_msgs) in
  let st = Envelope.stream () in
  let got = ref [] in
  String.iter
    (fun c ->
      Envelope.feed st (String.make 1 c);
      match Envelope.next st with Some m -> got := m :: !got | None -> ())
    wire;
  Alcotest.(check int) "all decoded" (List.length sample_msgs) (List.length !got)

let test_envelope_rejections () =
  (* body over the stream's cap is rejected from the header alone *)
  let st = Envelope.stream ~max_body:16 () in
  let big = Envelope.encode (Envelope.Report { slot = 0; json = String.make 64 'j' }) in
  Envelope.feed st (String.sub big 0 Envelope.header_len);
  (match Envelope.next st with
  | exception Envelope.Envelope_error _ -> ()
  | _ -> Alcotest.fail "oversized body must be rejected at the header");
  (* corrupted checksum *)
  let st = Envelope.stream () in
  let e = Bytes.of_string (Envelope.encode Envelope.Start) in
  let last = Bytes.length e - 1 in
  Bytes.set e last (Char.chr (Char.code (Bytes.get e last) lxor 1));
  Envelope.feed st (Bytes.to_string e);
  (match Envelope.next st with
  | exception Envelope.Envelope_error _ -> ()
  | _ -> Alcotest.fail "checksum corruption must be detected");
  (* bad magic *)
  let st = Envelope.stream () in
  Envelope.feed st "XXXXXXXX";
  match Envelope.next st with
  | exception Envelope.Envelope_error _ -> ()
  | _ -> Alcotest.fail "bad magic must be rejected"

(* ------------------------------------------------------------------ *)
(* Sockio: chunked delivery, deadlines, closed peers                   *)
(* ------------------------------------------------------------------ *)

(* write a payload through a socketpair in randomly sized chunks and
   read it back in randomly sized chunks: every chunking reassembles
   the identical bytes.  Interleaved (write some, read some) so the
   payload can exceed the kernel socket buffer. *)
let test_sockio_random_chunks () =
  let st = Random.State.make [| 0x50C7 |] in
  for round = 1 to 25 do
    let len = 1 + Random.State.int st 65536 in
    let payload =
      String.init len (fun i -> Char.chr ((i * 131 + round) land 0xff))
    in
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_nonblock a;
    let wrote = ref 0 and got = Buffer.create len in
    (* writer is nonblocking + select-driven inside write_all, reader
       drains concurrently from this same loop *)
    while !wrote < len || Buffer.length got < len do
      if !wrote < len then begin
        let chunk = min (1 + Random.State.int st 4096) (len - !wrote) in
        Sockio.write_all ~deadline:(Sockio.deadline_after 5000.) a
          (String.sub payload !wrote chunk);
        wrote := !wrote + chunk
      end;
      while Buffer.length got < !wrote do
        let want = min (1 + Random.State.int st 4096) (!wrote - Buffer.length got) in
        Buffer.add_string got
          (Sockio.read_exactly ~deadline:(Sockio.deadline_after 5000.) b want)
      done
    done;
    Alcotest.(check bool)
      (Printf.sprintf "round %d: %d bytes intact" round len)
      true
      (String.equal payload (Buffer.contents got));
    Unix.close a;
    Unix.close b
  done

(* every envelope chunking still decodes when carried over a real
   socketpair rather than fed to the stream directly *)
let test_sockio_envelope_over_socketpair () =
  let wire = String.concat "" (List.map Envelope.encode sample_msgs) in
  let st = Random.State.make [| 0xE2E |] in
  for _ = 1 to 10 do
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let off = ref 0 in
    while !off < String.length wire do
      let chunk = min (1 + Random.State.int st 13) (String.length wire - !off) in
      Sockio.write_all a (String.sub wire !off chunk);
      off := !off + chunk
    done;
    let stream = Envelope.stream () in
    let got = ref [] in
    while List.length !got < List.length sample_msgs do
      let k = max 1 (Envelope.needed stream) in
      Envelope.feed stream
        (Sockio.read_exactly ~deadline:(Sockio.deadline_after 5000.) b k);
      let rec drain () =
        match Envelope.next stream with
        | Some m ->
          got := m :: !got;
          drain ()
        | None -> ()
      in
      drain ()
    done;
    List.iter2
      (fun x y -> Alcotest.(check bool) "socketpair msg" true (msg_eq x y))
      sample_msgs (List.rev !got);
    Unix.close a;
    Unix.close b
  done

let test_sockio_deadline_and_close () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* nothing to read: the deadline must fire, not hang *)
  (match Sockio.read_exactly ~deadline:(Sockio.deadline_after 50.) b 4 with
  | _ -> Alcotest.fail "read from silent peer must time out"
  | exception Sockio.Timeout -> ());
  (* peer closes: EOF surfaces as Closed, even mid-message *)
  Sockio.write_all a "ab";
  Unix.close a;
  (match Sockio.read_exactly ~deadline:(Sockio.deadline_after 1000.) b 4 with
  | _ -> Alcotest.fail "truncated stream must raise Closed"
  | exception Sockio.Closed -> ());
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Sim vs loopback equivalence                                         *)
(* ------------------------------------------------------------------ *)

let params8 = Params.create ~n:8 ~t:2 ~k:2 ()
let circuit = Gen.dot_product ~len:4
let inputs c = Array.init 4 (fun i -> F.of_int ((c * 10) + i + 1))

(* the one legitimate difference between the reports is the transport
   label; normalize it away and demand byte equality on the rest *)
let relabel ~from:a ~to_:b json =
  let na = Printf.sprintf "\"transport\":%S" a in
  let nb = Printf.sprintf "\"transport\":%S" b in
  let rec find i =
    if i + String.length na > String.length json then None
    else if String.sub json i (String.length na) = na then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> json
  | Some i ->
    String.sub json 0 i ^ nb
    ^ String.sub json (i + String.length na)
        (String.length json - i - String.length na)

let equivalence_case ?topology ?plan ~name ~adversary ~seed () =
  let sim_config = Protocol.config ~adversary ?plan ~seed () in
  let sim_r = Protocol.execute ~params:params8 ~config:sim_config ~circuit ~inputs () in
  let sim_json = Protocol.report_json sim_r in
  let child ~slot:_ ~link =
    let config = Protocol.config ~adversary ?plan ~seed ~transport:"unix" ~link () in
    Protocol.report_json (Protocol.execute ~params:params8 ~config ~circuit ~inputs ())
  in
  let meter = Meter.create () in
  let res =
    Runner.run ~meter ~deadline_ms:10_000. ?topology ~nslots:8 ~seed ~child ()
  in
  Alcotest.(check int) (name ^ ": all reported") 8 (List.length res.Runner.reports);
  Alcotest.(check bool) (name ^ ": unanimous") true res.Runner.agree;
  Alcotest.(check (list int)) (name ^ ": nobody down") [] res.Runner.down;
  let loop_json = match res.Runner.reports with (_, j) :: _ -> j | [] -> "{}" in
  (* full report equality modulo the transport label: same posts, same
     meter totals, same blames, same transcript digest *)
  Alcotest.(check string)
    (name ^ ": report byte-identical to sim")
    sim_json
    (relabel ~from:"unix" ~to_:"sim" loop_json);
  (* daemon-side accounting saw every physically shipped frame *)
  Alcotest.(check int)
    (name ^ ": every frame crossed the wire")
    sim_r.Protocol.transcript.Yoso_net.Board.frames
    res.Runner.stats.Yoso_transport.Daemon.frames_in;
  (* under routing the delivery bytes live in the subscription rows,
     so the conn row's sent side may legitimately be empty *)
  let is_routed = match topology with Some t -> t.Topology.routed | None -> false in
  Alcotest.(check bool)
    (name ^ ": per-connection bytes recorded")
    true
    (List.length (Meter.connections meter) = 8
    && List.for_all
         (fun (_, (s, r)) -> r > 0 && (is_routed || s > 0))
         (Meter.connections meter));
  (match topology with
  | Some topo when topo.Topology.routed ->
    (* routing actually suppressed traffic, and the daemon's stitched
       digest chain equals the board transcript every member reports *)
    Alcotest.(check bool) (name ^ ": digest records flowed") true
      (res.Runner.stats.Yoso_transport.Daemon.digests_out > 0);
    Alcotest.(check bool) (name ^ ": deliveries batched") true
      (res.Runner.stats.Yoso_transport.Daemon.batches_out > 0);
    Alcotest.(check bool) (name ^ ": bytes suppressed") true
      (res.Runner.stats.Yoso_transport.Daemon.suppressed_bytes > 0);
    Alcotest.(check int) (name ^ ": daemon digest = sim digest")
      sim_r.Protocol.transcript.Board.digest
      res.Runner.stats.Yoso_transport.Daemon.digest;
    Alcotest.(check int) (name ^ ": shards recorded")
      topo.Topology.shards res.Runner.stats.Yoso_transport.Daemon.shards;
    Alcotest.(check bool) (name ^ ": routed bytes attributed per subscription")
      true
      (List.length (Meter.routes meter) = 8 && Meter.routing_ratio meter < 1.0)
  | _ -> ())

let test_equivalence_fault_free () =
  equivalence_case ~name:"fault-free" ~adversary:Params.no_adversary ~seed:0xE8 ()

let test_equivalence_faulty () =
  let adversary = { Params.malicious = 1; passive = 0; fail_stop = 1 } in
  equivalence_case ~name:"faulty"
    ~adversary
    ~plan:(Yoso_runtime.Faults.random ~seed:0xBAD)
    ~seed:0xE9 ()

let test_equivalence_routed_fault_free () =
  equivalence_case
    ~topology:(Topology.routed ~nslots:8 ())
    ~name:"routed fault-free" ~adversary:Params.no_adversary ~seed:0xE8 ()

let test_equivalence_routed_faulty () =
  let adversary = { Params.malicious = 1; passive = 0; fail_stop = 1 } in
  equivalence_case
    ~topology:(Topology.routed ~nslots:8 ())
    ~name:"routed faulty" ~adversary
    ~plan:(Yoso_runtime.Faults.random ~seed:0xBAD)
    ~seed:0xE9 ()

let test_equivalence_routed_sharded () =
  equivalence_case
    ~topology:(Topology.routed ~shards:3 ~nslots:8 ())
    ~name:"routed+sharded" ~adversary:Params.no_adversary ~seed:0xEA ()

(* ------------------------------------------------------------------ *)
(* Crash drill: a member dies mid-round                                *)
(* ------------------------------------------------------------------ *)

let test_crash_mid_round () =
  let seed = 0xDEAD in
  let child ~slot:_ ~link =
    let config = Protocol.config ~seed ~transport:"unix" ~link () in
    match Protocol.execute ~params:params8 ~config ~circuit ~inputs () with
    | r -> Protocol.report_json r
    | exception Yoso_runtime.Faults.Protocol_failure f ->
      Printf.sprintf "{\"protocol_failure\":\"%s/%s\"}" f.Yoso_runtime.Faults.f_phase
        f.Yoso_runtime.Faults.f_step
  in
  let res =
    Runner.run ~deadline_ms:10_000. ~crash:(3, 2) ~nslots:8 ~seed ~child ()
  in
  (* no hang: the run completed, the dead slot was noticed, everyone
     else agreed on a report that blames the silence *)
  Alcotest.(check bool) "daemon did not time out" false
    res.Runner.stats.Yoso_transport.Daemon.timed_out;
  Alcotest.(check (list int)) "slot 3 detected down" [ 3 ] res.Runner.down;
  Alcotest.(check int) "seven survivors reported" 7 (List.length res.Runner.reports);
  Alcotest.(check bool) "survivors unanimous" true res.Runner.agree;
  (match List.assoc_opt 3 res.Runner.children with
  | Some (Unix.WEXITED 13) -> ()
  | other ->
    Alcotest.failf "crash slot: expected exit 13, got %s"
      (match other with
      | Some (Unix.WEXITED c) -> Printf.sprintf "exit %d" c
      | Some (Unix.WSIGNALED s) -> Printf.sprintf "signal %d" s
      | Some (Unix.WSTOPPED s) -> Printf.sprintf "stopped %d" s
      | None -> "no status"));
  let report = match res.Runner.reports with (_, j) :: _ -> j | [] -> "{}" in
  match Runner.json_int_field report ~field:"faults_detected" with
  | Some fd -> Alcotest.(check bool) "silence blamed" true (fd > 0)
  | None -> Alcotest.failf "no faults_detected in report: %s" report

(* ------------------------------------------------------------------ *)
(* Retry policy: jitter bounds, determinism, elapsed budget            *)
(* ------------------------------------------------------------------ *)

let test_backoff_bounds () =
  let r = { Policy.connect_retry with base_ms = 10.; cap_ms = 80. } in
  for attempt = 1 to 12 do
    let cap = Float.min r.Policy.cap_ms (r.Policy.base_ms *. (2. ** float_of_int (attempt - 1))) in
    for seed = 0 to 20 do
      let s = Policy.backoff_ms r ~seed ~attempt in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d seed %d in [0, %g)" attempt seed cap)
        true
        (s >= 0. && s < cap)
    done;
    (* stateless: same (seed, attempt) always draws the same sleep *)
    Alcotest.(check (float 0.))
      "deterministic"
      (Policy.backoff_ms r ~seed:7 ~attempt)
      (Policy.backoff_ms r ~seed:7 ~attempt)
  done;
  (* without jitter: the capped exponential ladder itself *)
  let d = { r with Policy.jitter = false } in
  Alcotest.(check (float 0.)) "ladder 1" 10. (Policy.backoff_ms d ~seed:0 ~attempt:1);
  Alcotest.(check (float 0.)) "ladder 3" 40. (Policy.backoff_ms d ~seed:0 ~attempt:3);
  Alcotest.(check (float 0.)) "ladder capped" 80. (Policy.backoff_ms d ~seed:0 ~attempt:9);
  match Policy.backoff_ms r ~seed:0 ~attempt:0 with
  | _ -> Alcotest.fail "attempt 0 must be rejected"
  | exception Invalid_argument _ -> ()

(* the loop must give up when the next sleep would cross the elapsed
   budget — doubling backoff cannot overshoot a round deadline *)
let test_connect_retry_elapsed_cap () =
  let dead =
    Unix.ADDR_UNIX
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "yoso-nonexistent-%d.sock" (Unix.getpid ())))
  in
  let retry =
    { Policy.attempts = 50; base_ms = 40.; cap_ms = 200.; max_elapsed_ms = 150.; jitter = false }
  in
  let t0 = Unix.gettimeofday () in
  (match Sockio.connect_with_retry ~retry dead with
  | _ -> Alcotest.fail "connect to a dead path must fail"
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (* 40 + 80 = 120 <= 150, but the third sleep (160) would cross the
     budget: the loop bails long before the 50-attempt count *)
  Alcotest.(check bool)
    (Printf.sprintf "gave up within budget (%.0f ms)" elapsed_ms)
    true (elapsed_ms < 1_000.)

(* ------------------------------------------------------------------ *)
(* Recovery drills: daemon kill+restart, forced client disconnects     *)
(* ------------------------------------------------------------------ *)

let chaos_child ~seed ~slot:_ ~link =
  let config = Protocol.config ~seed ~transport:"unix" ~link () in
  match Protocol.execute ~params:params8 ~config ~circuit ~inputs () with
  | r -> Protocol.report_json r
  | exception Yoso_runtime.Faults.Protocol_failure f ->
    Printf.sprintf "{\"protocol_failure\":\"%s/%s\"}" f.Yoso_runtime.Faults.f_phase
      f.Yoso_runtime.Faults.f_step

let with_journal f =
  let path = Filename.temp_file "yoso-drill" ".wal" in
  let sweep () =
    List.iter
      (fun q -> try Sys.remove q with Sys_error _ -> ())
      (path :: List.init 8 (fun k -> Printf.sprintf "%s.shard%d" path (k + 1)))
  in
  Fun.protect ~finally:sweep
    (fun () ->
      Sys.remove path;
      f path)

(* the surviving run's transcript must be byte-identical to the
   fault-free sim run at equal seeds, and nobody may be blamed *)
let check_against_sim ~name ~seed res =
  let sim_config = Protocol.config ~seed () in
  let sim_json =
    Protocol.report_json (Protocol.execute ~params:params8 ~config:sim_config ~circuit ~inputs ())
  in
  Alcotest.(check int) (name ^ ": all reported") 8 (List.length res.Runner.reports);
  Alcotest.(check bool) (name ^ ": unanimous") true res.Runner.agree;
  Alcotest.(check (list int)) (name ^ ": zero blames for reconnectors") [] res.Runner.down;
  Alcotest.(check bool) (name ^ ": daemon did not time out") false
    res.Runner.stats.Yoso_transport.Daemon.timed_out;
  let report = match res.Runner.reports with (_, j) :: _ -> j | [] -> "{}" in
  Alcotest.(check string)
    (name ^ ": report byte-identical to fault-free sim")
    sim_json
    (relabel ~from:"unix" ~to_:"sim" report);
  Alcotest.(check (option int)) (name ^ ": no faults detected") (Some 0)
    (Runner.json_int_field report ~field:"faults_detected")

let sim_frames ~seed =
  let sim_config = Protocol.config ~seed () in
  let r = Protocol.execute ~params:params8 ~config:sim_config ~circuit ~inputs () in
  r.Protocol.transcript.Yoso_net.Board.frames

let test_daemon_kill_restart () =
  if not Sys.unix then () (* the drill forks; skip where it cannot *)
  else begin
    let seed = 0xC4A5 in
    let frames = sim_frames ~seed in
    Alcotest.(check bool) "enough frames to kill mid-run" true (frames > 4);
    with_journal (fun journal ->
        let chaos = Chaos.create { Chaos.none with Chaos.kill_at = [ frames / 2 ] } in
        let res =
          Runner.run ~journal ~chaos ~nslots:8 ~seed ~child:(chaos_child ~seed) ()
        in
        Alcotest.(check int) "daemon died exactly once" 1 res.Runner.restarts;
        Alcotest.(check bool) "journal recovered the board" true
          (res.Runner.stats.Yoso_transport.Daemon.recovered_frames >= frames / 2);
        Alcotest.(check bool) "every client reconnected" true
          (res.Runner.stats.Yoso_transport.Daemon.reconnects >= 8);
        check_against_sim ~name:"kill+restart" ~seed res)
  end

let test_forced_disconnects () =
  if not Sys.unix then ()
  else begin
    let seed = 0x5E7E in
    let frames = sim_frames ~seed in
    (* roughly one forced disconnect per protocol phase *)
    let sever_at = [ (frames / 6, 1); ((frames / 2) + (frames / 8), 2); (5 * frames / 6, 3) ] in
    let chaos = Chaos.create { Chaos.none with Chaos.sever_at } in
    let res = Runner.run ~chaos ~nslots:8 ~seed ~child:(chaos_child ~seed) () in
    Alcotest.(check int) "daemon never died" 0 res.Runner.restarts;
    Alcotest.(check bool) "severed clients reconnected" true
      (res.Runner.stats.Yoso_transport.Daemon.reconnects >= 3);
    Alcotest.(check bool) "catch-up replay happened" true
      (res.Runner.stats.Yoso_transport.Daemon.replayed_frames > 0);
    check_against_sim ~name:"forced disconnects" ~seed res
  end

(* kill+restart on the routed, sharded path: per-shard journals must
   stitch back into the one board, and routed members must come out
   with the same report as the fault-free sim run *)
let test_sharded_kill_restart () =
  if not Sys.unix then ()
  else begin
    let seed = 0xC4A6 in
    let topology = Topology.routed ~shards:2 ~nslots:8 () in
    let frames = sim_frames ~seed in
    with_journal (fun journal ->
        let chaos = Chaos.create { Chaos.none with Chaos.kill_at = [ frames / 2 ] } in
        let res =
          Runner.run ~journal ~chaos ~topology ~nslots:8 ~seed
            ~child:(chaos_child ~seed) ()
        in
        Alcotest.(check int) "daemon died exactly once" 1 res.Runner.restarts;
        Alcotest.(check int) "two shards" 2 res.Runner.stats.Yoso_transport.Daemon.shards;
        Alcotest.(check bool) "stitched journals recovered the board" true
          (res.Runner.stats.Yoso_transport.Daemon.recovered_frames >= frames / 2);
        Alcotest.(check bool) "shard 1 journal exists" true
          (Sys.file_exists (journal ^ ".shard1"));
        Alcotest.(check bool) "every client reconnected" true
          (res.Runner.stats.Yoso_transport.Daemon.reconnects >= 8);
        check_against_sim ~name:"sharded kill+restart" ~seed res;
        (* the restarted daemon's digest chain covers the whole run *)
        let report = match res.Runner.reports with (_, j) :: _ -> j | [] -> "{}" in
        Alcotest.(check (option int)) "daemon digest = member digest"
          (Some res.Runner.stats.Yoso_transport.Daemon.digest)
          (Runner.json_int_field report ~field:"digest"))
  end

(* forced disconnects while routing: reconnect catch-up (legacy full
   replay) must splice cleanly into a routed delivery stream *)
let test_routed_forced_disconnects () =
  if not Sys.unix then ()
  else begin
    let seed = 0x5E7F in
    let topology = Topology.routed ~nslots:8 () in
    let frames = sim_frames ~seed in
    let sever_at = [ (frames / 5, 2); (2 * frames / 3, 5) ] in
    let chaos = Chaos.create { Chaos.none with Chaos.sever_at } in
    let res = Runner.run ~chaos ~topology ~nslots:8 ~seed ~child:(chaos_child ~seed) () in
    Alcotest.(check int) "daemon never died" 0 res.Runner.restarts;
    Alcotest.(check bool) "severed clients reconnected" true
      (res.Runner.stats.Yoso_transport.Daemon.reconnects >= 2);
    Alcotest.(check bool) "digest records flowed" true
      (res.Runner.stats.Yoso_transport.Daemon.digests_out > 0);
    check_against_sim ~name:"routed forced disconnects" ~seed res
  end

(* ------------------------------------------------------------------ *)
(* Routing property: delivery set = verifier interest set              *)
(* ------------------------------------------------------------------ *)

(* In-process oracle for the routed delivery sets.  A recording run
   captures every frame the protocol commits (the frames a member's
   verifier consults, in commit order).  Then, for every slot, a
   role-local replay run is fed exactly what the daemon would route to
   it — full frames from its quorum sources, (checksum, length)
   summaries from everyone else — and must (a) consult each non-owned
   frame exactly once, (b) see full frames for precisely
   [Topology.full_sources], and (c) produce a report byte-identical to
   the recording run.  Under- or over-delivery would break (a)/(b);
   insufficient routing (a summary where content was needed) would
   break (c). *)
let routing_property_case ?plan ~name ~adversary ~seed () =
  let nslots = 8 in
  let topo = Topology.routed ~nslots () in
  let recorded : (int, int * string) Hashtbl.t = Hashtbl.create 64 in
  let record_link =
    {
      Board.owns = (fun _ -> true);
      local = (fun _ -> true);
      send =
        (fun ~seq ~phase:_ ~author ~frame ->
          Hashtbl.replace recorded seq (author.Role.index mod nslots, frame));
      recv = (fun ~seq:_ ~phase:_ ~author:_ -> Alcotest.fail "record run never receives");
      stats = (fun () -> (0, 0));
    }
  in
  let config link = Protocol.config ~adversary ?plan ~seed ~link () in
  let base_json =
    Protocol.report_json
      (Protocol.execute ~params:params8 ~config:(config record_link) ~circuit ~inputs ())
  in
  for me = 0 to nslots - 1 do
    let consulted : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let fulls = ref 0 and summaries = ref 0 in
    let replay_link =
      {
        Board.owns = (fun (r : Role.id) -> r.Role.index mod nslots = me);
        local = (fun (r : Role.id) -> r.Role.index mod nslots = me);
        send = (fun ~seq:_ ~phase:_ ~author:_ ~frame:_ -> ());
        recv =
          (fun ~seq ~phase:_ ~author ->
            let owner = author.Role.index mod nslots in
            Hashtbl.replace consulted seq
              (1 + Option.value ~default:0 (Hashtbl.find_opt consulted seq));
            match Hashtbl.find_opt recorded seq with
            | None -> Alcotest.failf "slot %d consulted unrecorded seq %d" me seq
            | Some (rec_owner, frame) ->
              Alcotest.(check int)
                (Printf.sprintf "%s: slot %d seq %d owner" name me seq)
                rec_owner owner;
              if Topology.wants_full topo ~me ~owner then begin
                incr fulls;
                `Frame frame
              end
              else begin
                incr summaries;
                `Summary (Wire.checksum frame, String.length frame)
              end);
        stats = (fun () -> (0, 0));
      }
    in
    let json =
      Protocol.report_json
        (Protocol.execute ~params:params8 ~config:(config replay_link) ~circuit ~inputs ())
    in
    Alcotest.(check string)
      (Printf.sprintf "%s: slot %d report = recording run" name me)
      base_json json;
    (* exactness: every non-owned frame consulted exactly once, full
       iff its owner is one of this slot's quorum sources *)
    let full_sources = Topology.full_sources topo ~me in
    let expected_full = ref 0 and expected_summary = ref 0 in
    Hashtbl.iter
      (fun seq (owner, _) ->
        if owner <> me then begin
          (if List.mem owner full_sources then incr expected_full
           else incr expected_summary);
          Alcotest.(check (option int))
            (Printf.sprintf "%s: slot %d consulted seq %d once" name me seq)
            (Some 1)
            (Hashtbl.find_opt consulted seq)
        end
        else
          Alcotest.(check (option int))
            (Printf.sprintf "%s: slot %d never fetches own seq %d" name me seq)
            None
            (Hashtbl.find_opt consulted seq))
      recorded;
    Alcotest.(check int)
      (Printf.sprintf "%s: slot %d full deliveries" name me)
      !expected_full !fulls;
    Alcotest.(check int)
      (Printf.sprintf "%s: slot %d summary deliveries" name me)
      !expected_summary !summaries
  done

let test_routing_property_fault_free () =
  routing_property_case ~name:"fault-free" ~adversary:Params.no_adversary ~seed:0x207 ()

let test_routing_property_faulty () =
  let adversary = { Params.malicious = 2; passive = 0; fail_stop = 1 } in
  routing_property_case ~name:"faulty" ~adversary
    ~plan:(Yoso_runtime.Faults.random ~seed:0x70B)
    ~seed:0x208 ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "transport"
    [
      ( "wire",
        [ Alcotest.test_case "frame one byte over cap" `Quick test_frame_cap ] );
      ( "envelope",
        [
          Alcotest.test_case "roundtrip" `Quick test_envelope_roundtrip;
          Alcotest.test_case "split at every boundary" `Quick
            test_envelope_split_every_boundary;
          Alcotest.test_case "byte at a time" `Quick test_envelope_byte_at_a_time;
          Alcotest.test_case "rejections" `Quick test_envelope_rejections;
        ] );
      ( "sockio",
        [
          Alcotest.test_case "random chunking" `Quick test_sockio_random_chunks;
          Alcotest.test_case "envelopes over socketpair" `Quick
            test_sockio_envelope_over_socketpair;
          Alcotest.test_case "deadline and close" `Quick test_sockio_deadline_and_close;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "sim = loopback, fault-free" `Quick
            test_equivalence_fault_free;
          Alcotest.test_case "sim = loopback, faulty" `Quick test_equivalence_faulty;
          Alcotest.test_case "sim = routed loopback, fault-free" `Quick
            test_equivalence_routed_fault_free;
          Alcotest.test_case "sim = routed loopback, faulty" `Quick
            test_equivalence_routed_faulty;
          Alcotest.test_case "sim = routed + sharded loopback" `Quick
            test_equivalence_routed_sharded;
        ] );
      ( "routing",
        [
          Alcotest.test_case "delivery set = interest set, fault-free" `Quick
            test_routing_property_fault_free;
          Alcotest.test_case "delivery set = interest set, faulty" `Quick
            test_routing_property_faulty;
        ] );
      ( "crash",
        [ Alcotest.test_case "member dies mid-round" `Quick test_crash_mid_round ] );
      ( "policy",
        [
          Alcotest.test_case "backoff bounds and determinism" `Quick
            test_backoff_bounds;
          Alcotest.test_case "retry gives up within elapsed budget" `Quick
            test_connect_retry_elapsed_cap;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "daemon kill+restart mid-round" `Quick
            test_daemon_kill_restart;
          Alcotest.test_case "forced client disconnects" `Quick
            test_forced_disconnects;
          Alcotest.test_case "sharded daemon kill+restart" `Quick
            test_sharded_kill_restart;
          Alcotest.test_case "routed forced disconnects" `Quick
            test_routed_forced_disconnects;
        ] );
    ]
