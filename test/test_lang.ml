(* yoso_lang: DSL typing, reference interpreter, compiler pass
   pipeline, and compiled-circuit/interpreter equivalence. *)

module F = Yoso_field.Field.Fp
module A = Yoso_lang.Ast
module Interp = Yoso_lang.Interp
module Ir = Yoso_lang.Ir
module Compiler = Yoso_lang.Compiler
module Programs = Yoso_lang.Programs
module Protocol = Yoso_mpc.Protocol
module Params = Yoso_mpc.Params

let felt = Alcotest.testable F.pp F.equal

let inputs_of assoc client =
  match List.assoc_opt client assoc with
  | Some l -> Array.of_list l
  | None -> [||]

(* ------------------------------------------------------------------ *)
(* typing and construction errors                                      *)
(* ------------------------------------------------------------------ *)

let invalid f = try ignore (f ()); false with Invalid_argument _ -> true

let test_typing_errors () =
  Alcotest.(check bool) "empty sum" true (invalid (fun () -> A.sum []));
  Alcotest.(check bool) "empty prod" true (invalid (fun () -> A.prod []));
  Alcotest.(check bool) "dot mismatch" true
    (invalid (fun () -> A.dot [ A.const 1 ] [ A.const 1; A.const 2 ]));
  let b = A.B.create () in
  Alcotest.(check bool) "width 0" true
    (invalid (fun () -> A.B.input b ~client:0 ~width:0 "x"));
  Alcotest.(check bool) "width 31" true
    (invalid (fun () -> A.B.input b ~client:0 ~width:31 "x"));
  Alcotest.(check bool) "negative client" true
    (invalid (fun () -> A.B.input b ~client:(-1) "x"));
  let x = A.B.input b ~client:0 "plain" in
  (* comparisons need bits: unannotated inputs and derived values are
     rejected at construction time *)
  Alcotest.(check bool) "cmp on unannotated input" true
    (invalid (fun () -> A.lt x (A.const 3)));
  let w = A.B.input b ~client:0 ~width:4 "w" in
  Alcotest.(check bool) "cmp on derived expr" true
    (invalid (fun () -> A.lt (A.add w w) w));
  Alcotest.(check bool) "cmp on negative const" true
    (invalid (fun () -> A.lt w (A.const (-1))));
  Alcotest.(check bool) "no outputs" true (invalid (fun () -> A.B.build b));
  A.B.output b ~client:0 x;
  ignore (A.B.build b);
  Alcotest.(check bool) "builder reuse" true
    (invalid (fun () -> A.B.input b ~client:0 "y"))

let test_width_validation () =
  let b = A.B.create () in
  let x = A.B.input b ~client:0 ~width:4 "x" in
  A.B.output b ~client:0 x;
  let p = A.B.build b in
  Alcotest.(check bool) "16 overflows width 4" true
    (invalid (fun () -> Interp.run p ~inputs:(inputs_of [ (0, [ 16 ]) ])));
  Alcotest.(check bool) "negative rejected" true
    (invalid (fun () -> Interp.run p ~inputs:(inputs_of [ (0, [ -1 ]) ])));
  let c = Compiler.compile p in
  Alcotest.(check bool) "compiler validates too" true
    (invalid (fun () ->
         Compiler.protocol_inputs c ~inputs:(inputs_of [ (0, [ 16 ]) ]) 0));
  Alcotest.(check (list (pair int felt)))
    "in-range value passes" [ (0, F.of_int 15) ]
    (Interp.run p ~inputs:(inputs_of [ (0, [ 15 ]) ]))

(* ------------------------------------------------------------------ *)
(* interpreter pins                                                    *)
(* ------------------------------------------------------------------ *)

let test_interp_pins () =
  let b = A.B.create () in
  let x = A.B.input b ~client:0 ~width:8 "x" in
  let y = A.B.input b ~client:1 ~width:8 "y" in
  let u = A.B.input b ~client:1 "u" in
  A.B.output b ~client:0 (A.sub (A.mul x y) (A.const 5));
  A.B.output b ~client:0 (A.lt x y);
  A.B.output b ~client:0 (A.ge x y);
  A.B.output b ~client:0 (A.eq x x);
  A.B.output b ~client:0 (A.is_zero (A.sub u (A.const 21)));
  A.B.output b ~client:0 (A.if_zero (A.sub x (A.const 7)) ~then_:u ~else_:(A.neg u));
  let p = A.B.build b in
  let inputs = inputs_of [ (0, [ 7 ]); (1, [ 9; 21 ]) ] in
  let outs = List.map snd (Interp.run p ~inputs) in
  let expected =
    [ F.of_int ((7 * 9) - 5); F.one; F.zero; F.one; F.one; F.of_int 21 ]
  in
  Alcotest.(check (list felt)) "pinned values" expected outs

let test_range_analysis () =
  let b = A.B.create () in
  let x = A.B.input b ~client:0 ~width:4 "x" in
  let u = A.B.input b ~client:0 "u" in
  (match A.range (A.add (A.mul x x) (A.const 10)) with
  | A.Range (lo, hi) ->
    Alcotest.(check int) "lo" 10 lo;
    Alcotest.(check int) "hi" (225 + 10) hi
  | A.Full -> Alcotest.fail "expected a finite range");
  (match A.range (A.sub x (A.const 20)) with
  | A.Range (lo, hi) ->
    Alcotest.(check int) "sub lo" (-20) lo;
    Alcotest.(check int) "sub hi" (-5) hi
  | A.Full -> Alcotest.fail "expected a finite range");
  (match A.range u with
  | A.Full -> ()
  | A.Range _ -> Alcotest.fail "unannotated input must be Full");
  match A.range (A.lt x x) with
  | A.Range (0, 1) -> ()
  | r -> Alcotest.failf "comparison range should be [0,1], got %a" A.pp_range r

(* ------------------------------------------------------------------ *)
(* compiled circuit == interpreter                                     *)
(* ------------------------------------------------------------------ *)

let test_named_programs_equivalence () =
  List.iter
    (fun name ->
      List.iter
        (fun size ->
          let p = Programs.by_name name ~size in
          List.iter
            (fun seed ->
              let inputs = Programs.demo_inputs p ~seed in
              let opt = Compiler.compile p in
              let naive = Compiler.compile ~passes:[] p in
              Alcotest.(check bool)
                (Printf.sprintf "%s size %d seed %d optimized" name size seed)
                true
                (Compiler.check opt ~inputs);
              Alcotest.(check bool)
                (Printf.sprintf "%s size %d seed %d naive" name size seed)
                true
                (Compiler.check naive ~inputs))
            [ 1; 2; 3 ])
        [ 2; 4 ])
    Programs.names

let test_auction_semantics () =
  (* pin the auction against a direct argmax *)
  let bidders = 4 in
  let p = Programs.auction ~bidders ~width:6 () in
  let bids = [ 13; 42; 42; 7 ] in
  let inputs client = [| List.nth bids client |] in
  let outs = Interp.run p ~inputs in
  let max_bid = List.fold_left max 0 bids in
  let winner =
    fst (List.fold_left
           (fun (w, i) b -> if b = max_bid && w < 0 then (i, i + 1) else (w, i + 1))
           (-1, 0) bids)
  in
  Alcotest.(check int) "outputs" (2 * bidders) (List.length outs);
  List.iteri
    (fun i (_, v) ->
      if i mod 2 = 0 then Alcotest.check felt "max" (F.of_int max_bid) v
      else Alcotest.check felt "winner (ties -> lowest index)" (F.of_int winner) v)
    outs;
  let c = Compiler.compile p in
  Alcotest.(check bool) "compiled" true (Compiler.check c ~inputs)

let test_tally_semantics () =
  let voters = 5 and threshold = 3 in
  let p = Programs.tally ~voters ~threshold () in
  List.iter
    (fun votes ->
      let inputs client = [| List.nth votes client |] in
      let expected =
        if List.fold_left ( + ) 0 votes >= threshold then F.one else F.zero
      in
      List.iter
        (fun (_, v) -> Alcotest.check felt "passed" expected v)
        (Interp.run p ~inputs);
      Alcotest.(check bool) "compiled" true
        (Compiler.check (Compiler.compile p) ~inputs))
    [ [ 0; 0; 0; 0; 0 ]; [ 1; 1; 0; 0; 0 ]; [ 1; 1; 1; 0; 0 ]; [ 1; 1; 1; 1; 1 ] ]

(* the headline property: >= 200 seeded random programs, compiled
   (optimized and naive) == reference interpreter *)
let test_random_equivalence () =
  for seed = 0 to 199 do
    let p = Programs.random_program ~seed ~size:12 ~clients:2 in
    let inputs = Programs.demo_inputs p ~seed:(seed * 31 + 1) in
    let opt = Compiler.compile p in
    let naive = Compiler.compile ~passes:[] p in
    if not (Compiler.check opt ~inputs) then
      Alcotest.failf "seed %d: optimized circuit disagrees with interpreter" seed;
    if not (Compiler.check naive ~inputs) then
      Alcotest.failf "seed %d: naive circuit disagrees with interpreter" seed
  done

(* ------------------------------------------------------------------ *)
(* pass-level preservation: each pass alone preserves IR semantics     *)
(* ------------------------------------------------------------------ *)

let ir_input_fn compiled ~inputs =
  (* feed the IR the same slot values the circuit would see *)
  let vectors =
    List.map
      (fun (client, _) ->
        (client, Compiler.protocol_inputs compiled ~inputs client))
      compiled.Compiler.sources
  in
  fun ~client ~slot -> (List.assoc client vectors).(slot)

let test_pass_preservation () =
  let passes =
    [ ("fold", Ir.fold); ("rewrite", Ir.rewrite); ("cse", Ir.cse); ("reassoc", Ir.reassoc) ]
  in
  for seed = 0 to 49 do
    let p = Programs.random_program ~seed ~size:15 ~clients:2 in
    let naive = Compiler.compile ~passes:[] p in
    let inputs = Programs.demo_inputs p ~seed:(seed + 7) in
    let input = ir_input_fn naive ~inputs in
    let reference = Ir.eval naive.Compiler.ir ~input in
    List.iter
      (fun (name, pass) ->
        let transformed = pass naive.Compiler.ir in
        if Ir.eval transformed ~input <> reference then
          Alcotest.failf "seed %d: pass %s changed IR semantics" seed name)
      passes
  done

let test_pass_improvements () =
  (* the engineered targets guarantee strict wins on every seed *)
  for seed = 0 to 19 do
    let p = Programs.random_program ~seed ~size:25 ~clients:3 in
    let c = Compiler.compile p in
    let n = c.Compiler.naive_stats and f = Compiler.final_stats c in
    if not (f.Ir.muls < n.Ir.muls && f.Ir.nodes < n.Ir.nodes) then
      Alcotest.failf "seed %d: no strict reduction (muls %d->%d nodes %d->%d)" seed
        n.Ir.muls f.Ir.muls n.Ir.nodes f.Ir.nodes
  done;
  (* reassociation: left chain becomes logarithmic *)
  let b = A.B.create () in
  let xs = List.init 8 (fun i -> A.B.input b ~client:0 (Printf.sprintf "x%d" i)) in
  A.B.output b ~client:0 (A.prod xs);
  let p = A.B.build b in
  let naive = Compiler.compile ~passes:[] p in
  let opt = Compiler.compile p in
  Alcotest.(check int) "chain depth naive" 7 naive.Compiler.naive_stats.Ir.depth;
  Alcotest.(check int) "chain depth balanced" 3 (Compiler.final_stats opt).Ir.depth

let test_constants_client () =
  let b = A.B.create () in
  let x = A.B.input b ~client:0 "x" in
  A.B.output b ~client:0 (A.add (A.mul x (A.const 3)) (A.const 3));
  let p = A.B.build b in
  let c = Compiler.compile p in
  Alcotest.(check int) "const client above real clients" 1 c.Compiler.const_client;
  (* the two uses of 3 share one constants-client input *)
  Alcotest.(check (list int)) "constants memoized" [ 3 ] c.Compiler.constants;
  let v = Compiler.protocol_inputs c ~inputs:(inputs_of [ (0, [ 10 ]) ]) 1 in
  Alcotest.(check (list felt)) "constants vector" [ F.of_int 3 ] (Array.to_list v)

(* ------------------------------------------------------------------ *)
(* one compiled program through the real packed protocol               *)
(* ------------------------------------------------------------------ *)

let test_protocol_e2e () =
  let p = Programs.tally ~voters:3 ~threshold:2 () in
  let c = Compiler.compile p in
  let inputs = inputs_of [ (0, [ 1 ]); (1, [ 0 ]); (2, [ 1 ]) ] in
  let params = Params.create ~n:16 ~t:5 ~k:3 () in
  let r =
    Protocol.execute ~params ~circuit:c.Compiler.circuit
      ~inputs:(Compiler.protocol_inputs c ~inputs) ()
  in
  Alcotest.(check bool) "protocol correct" true
    (Protocol.check r c.Compiler.circuit ~inputs:(Compiler.protocol_inputs c ~inputs));
  let expected = Interp.run p ~inputs in
  let got =
    List.map
      (fun o -> (o.Yoso_mpc.Online.client, o.Yoso_mpc.Online.value))
      r.Protocol.outputs
  in
  Alcotest.(check (list (pair int felt))) "protocol outputs = interpreter" expected got;
  (* 2 of 3 voted yes, threshold 2: passed *)
  List.iter (fun (_, v) -> Alcotest.check felt "passed" F.one v) got

let () =
  Alcotest.run "lang"
    [
      ( "ast",
        [
          Alcotest.test_case "typing errors" `Quick test_typing_errors;
          Alcotest.test_case "width validation" `Quick test_width_validation;
          Alcotest.test_case "range analysis" `Quick test_range_analysis;
        ] );
      ( "interp",
        [
          Alcotest.test_case "pinned values" `Quick test_interp_pins;
          Alcotest.test_case "auction semantics" `Quick test_auction_semantics;
          Alcotest.test_case "tally semantics" `Quick test_tally_semantics;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "named programs == interpreter" `Quick
            test_named_programs_equivalence;
          Alcotest.test_case "200 random programs == interpreter" `Slow
            test_random_equivalence;
          Alcotest.test_case "constants client" `Quick test_constants_client;
        ] );
      ( "passes",
        [
          Alcotest.test_case "each pass preserves semantics" `Quick
            test_pass_preservation;
          Alcotest.test_case "strict improvements" `Quick test_pass_improvements;
        ] );
      ( "protocol",
        [ Alcotest.test_case "compiled tally end-to-end" `Quick test_protocol_e2e ] );
    ]
