module F = Yoso_field.Field.Fp
module B = Yoso_bigint.Bigint
module Cost = Yoso_runtime.Cost
module Role = Yoso_runtime.Role
module Splitmix = Yoso_hash.Splitmix
module Wire = Yoso_net.Wire
module Sim = Yoso_net.Sim
module Meter = Yoso_net.Meter
module Board = Yoso_net.Board
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Gen = Yoso_circuit.Generators

let rejects name f =
  match f () with
  | exception Wire.Decode_error _ -> ()
  | _ -> Alcotest.failf "%s: expected Decode_error" name

(* ------------------------------------------------------------------ *)
(* Wire primitives                                                     *)
(* ------------------------------------------------------------------ *)

let enc f =
  let buf = Buffer.create 16 in
  f buf;
  Buffer.contents buf

let test_varint_roundtrip () =
  List.iter
    (fun v ->
      let s = enc (fun b -> Wire.put_varint b v) in
      let d = { Wire.src = s; pos = 0 } in
      Alcotest.(check int) (Printf.sprintf "varint %d" v) v (Wire.get_varint d);
      Alcotest.(check int) "consumed" (String.length s) d.Wire.pos)
    [ 0; 1; 127; 128; 255; 300; 16384; 1 lsl 24; (1 lsl 40) + 17 ]

let test_varint_rejections () =
  (* multi-byte encoding ending in zero: 0x80 0x00 re-encodes 0 *)
  rejects "non-canonical" (fun () ->
      Wire.get_varint { Wire.src = "\x80\x00"; pos = 0 });
  rejects "truncated" (fun () -> Wire.get_varint { Wire.src = "\x80"; pos = 0 });
  rejects "too long" (fun () ->
      Wire.get_varint { Wire.src = String.make 9 '\x80' ^ "\x01"; pos = 0 })

let test_field_codec () =
  let vals = [ 0; 1; 12345; F.p - 1 ] in
  List.iter
    (fun v ->
      let s = enc (fun b -> Wire.put_field b (F.of_int v)) in
      Alcotest.(check int) "4 bytes" 4 (String.length s);
      Alcotest.(check int) "roundtrip" v
        (F.to_int (Wire.get_field { Wire.src = s; pos = 0 })))
    vals;
  (* out-of-range: p itself and anything above must be rejected *)
  List.iter
    (fun v ->
      let s = enc (fun b -> Wire.put_fixed32 b v) in
      rejects "field >= p" (fun () -> Wire.get_field { Wire.src = s; pos = 0 }))
    [ F.p; F.p + 1; 0x7fffffff + 1 ]

let test_bigint_codec () =
  let st = Random.State.make [| 0xB17 |] in
  let vals =
    [ B.zero; B.of_int 1; B.of_int (-1); B.of_int max_int; B.random_bits st 521;
      B.neg (B.random_bits st 300) ]
  in
  List.iter
    (fun v ->
      let s = enc (fun b -> Wire.put_bigint b v) in
      Alcotest.(check bool) "roundtrip" true
        (B.equal v (Wire.get_bigint { Wire.src = s; pos = 0 })))
    vals;
  rejects "bad sign byte" (fun () -> Wire.get_bigint { Wire.src = "\x03"; pos = 0 });
  rejects "empty magnitude" (fun () ->
      Wire.get_bigint { Wire.src = "\x01\x00"; pos = 0 });
  (* sign 1, length 2, magnitude 0x00 0x05: non-canonical *)
  rejects "leading zero" (fun () ->
      Wire.get_bigint { Wire.src = "\x01\x02\x00\x05"; pos = 0 })

let test_bytes_truncation () =
  (* declared length exceeds what is actually there *)
  rejects "length overrun" (fun () -> Wire.get_bytes { Wire.src = "\x05ab"; pos = 0 })

(* ------------------------------------------------------------------ *)
(* Messages and frames                                                 *)
(* ------------------------------------------------------------------ *)

let item_equal a b =
  match (a, b) with
  | Wire.Field_elements x, Wire.Field_elements y ->
    Array.length x = Array.length y && Array.for_all2 F.equal x y
  | Wire.Packed_sharing { degree = d1; shares = x }, Wire.Packed_sharing { degree = d2; shares = y }
    -> d1 = d2 && Array.length x = Array.length y && Array.for_all2 F.equal x y
  | Wire.Ciphertexts x, Wire.Ciphertexts y
  | Wire.Proofs x, Wire.Proofs y
  | Wire.Partial_decs x, Wire.Partial_decs y
  | Wire.Public_keys x, Wire.Public_keys y -> x = y
  | Wire.Bigints x, Wire.Bigints y ->
    Array.length x = Array.length y && Array.for_all2 B.equal x y
  | _ -> false

let sample_message () =
  let st = Random.State.make [| 0x3E7 |] in
  {
    Wire.step = "test: every item kind";
    items =
      [
        Wire.Field_elements (Array.init 9 (fun i -> F.of_int (i * i)));
        Wire.Packed_sharing { degree = 4; shares = Array.init 8 (fun i -> F.of_int i) };
        Wire.Ciphertexts [| "ct-one"; "ct-two" |];
        Wire.Proofs [| String.make 32 'p' |];
        Wire.Partial_decs [| "pd"; ""; "x" |];
        Wire.Public_keys [| String.make 16 'k' |];
        Wire.Bigints [| B.random_bits st 100; B.zero; B.neg (B.of_int 77) |];
      ];
  }

let message_equal m1 m2 =
  m1.Wire.step = m2.Wire.step
  && List.length m1.Wire.items = List.length m2.Wire.items
  && List.for_all2 item_equal m1.Wire.items m2.Wire.items

let test_message_roundtrip () =
  let m = sample_message () in
  Alcotest.(check bool) "roundtrip" true (message_equal m (Wire.decode_message (Wire.encode_message m)))

let test_message_trailing_garbage () =
  let s = Wire.encode_message (sample_message ()) in
  rejects "trailing garbage" (fun () -> Wire.decode_message (s ^ "\x00"))

let test_frame_roundtrip () =
  let m = sample_message () in
  Alcotest.(check bool) "roundtrip" true (message_equal m (Wire.of_frame (Wire.to_frame m)))

let test_frame_tamper_rejection () =
  (* flipping any single byte of the frame must be caught *)
  let frame = Wire.to_frame (sample_message ()) in
  for i = 0 to String.length frame - 1 do
    let b = Bytes.of_string frame in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
    rejects (Printf.sprintf "tampered byte %d" i) (fun () ->
        Wire.of_frame (Bytes.unsafe_to_string b))
  done;
  rejects "truncated frame" (fun () ->
      Wire.of_frame (String.sub frame 0 (String.length frame - 1)))

let test_item_accounting () =
  Alcotest.(check int) "field payload" 20
    (Wire.item_payload_bytes (Wire.Field_elements (Array.make 5 F.one)));
  Alcotest.(check int) "blob payload" 11
    (Wire.item_payload_bytes (Wire.Ciphertexts [| "hello"; "world!" |]));
  let m = sample_message () in
  let s = Wire.summary m in
  Alcotest.(check (option int)) "fields" (Some 17) (List.assoc_opt Cost.Field_element s);
  (* bigints tally under the ciphertext kind: 2 blobs + 3 bigints *)
  Alcotest.(check (option int)) "cts" (Some 5) (List.assoc_opt Cost.Ciphertext s)

let test_items_of_cost () =
  let rng = Splitmix.of_int 99 in
  let items =
    Wire.items_of_cost Wire.default_sizing rng
      [ (Cost.Field_element, 3); (Cost.Ciphertext, 2); (Cost.Proof, 1); (Cost.Key, 0) ]
  in
  Alcotest.(check int) "zero-count kinds skipped" 3 (List.length items);
  let payload = List.fold_left (fun acc it -> acc + Wire.item_payload_bytes it) 0 items in
  Alcotest.(check int) "modeled sizes" ((3 * 4) + (2 * 512) + 32) payload

let arb_message =
  QCheck.map
    (fun (seed, nitems) ->
      let rng = Splitmix.of_int seed in
      let item () =
        match Splitmix.int rng 5 with
        | 0 -> Wire.Field_elements (Array.init (Splitmix.int rng 20) (fun _ -> F.of_int (Splitmix.int rng F.p)))
        | 1 -> Wire.Ciphertexts (Array.init (Splitmix.int rng 4) (fun _ -> Wire.random_blob rng (Splitmix.int rng 64)))
        | 2 -> Wire.Proofs (Array.init (Splitmix.int rng 4) (fun _ -> Wire.random_blob rng 32))
        | 3 ->
          let n = 1 + Splitmix.int rng 16 in
          Wire.Packed_sharing { degree = Splitmix.int rng n; shares = Array.init n (fun _ -> F.of_int (Splitmix.int rng F.p)) }
        | _ -> Wire.Public_keys (Array.init (Splitmix.int rng 3) (fun _ -> Wire.random_blob rng 16))
      in
      { Wire.step = Printf.sprintf "step-%d" (seed land 0xff); items = List.init nitems (fun _ -> item ()) })
    QCheck.(pair int (int_bound 6))

let qcheck_props =
  [
    QCheck.Test.make ~count:200 ~name:"message roundtrip" arb_message (fun m ->
        message_equal m (Wire.decode_message (Wire.encode_message m)));
    QCheck.Test.make ~count:200 ~name:"frame roundtrip" arb_message (fun m ->
        message_equal m (Wire.of_frame (Wire.to_frame m)));
  ]

(* ------------------------------------------------------------------ *)
(* Sim                                                                 *)
(* ------------------------------------------------------------------ *)

let test_sim_ideal_delivers () =
  let sim = Sim.create ~seed:7 () in
  for _ = 1 to 50 do
    match Sim.transmit sim ~bytes:1000 () with
    | Sim.Delivered, arrival -> Alcotest.(check (float 0.0)) "instant" 0.0 arrival
    | _ -> Alcotest.fail "ideal network must deliver"
  done;
  let s = Sim.stats sim in
  Alcotest.(check int) "all delivered" 50 s.Sim.delivered;
  Alcotest.(check int) "no loss" 0 s.Sim.dropped

let test_sim_late_and_drain () =
  let sim = Sim.create ~round_ms:100. ~seed:7 () in
  (match Sim.transmit sim ~extra_delay_ms:150. ~bytes:64 () with
  | Sim.Late, _ -> ()
  | _ -> Alcotest.fail "150ms past a 100ms deadline must be late");
  Alcotest.(check int) "in flight" 1 (Sim.in_flight sim);
  Sim.next_round sim;
  Alcotest.(check int) "still in flight" 1 (Sim.in_flight sim);
  Sim.next_round sim;
  Alcotest.(check int) "drained" 0 (Sim.in_flight sim);
  Alcotest.(check int) "bytes arrive late" 64 (Sim.stats sim).Sim.bytes_delivered

let test_sim_latency_beyond_round () =
  let model = { Sim.ideal with Sim.latency_ms = 250. } in
  let sim = Sim.create ~model ~round_ms:100. ~seed:1 () in
  match Sim.transmit sim ~bytes:8 () with
  | Sim.Late, _ -> ()
  | _ -> Alcotest.fail "latency past the deadline must be late"

let test_sim_bandwidth () =
  (* 1 Mbit/s: a 125000-byte frame takes 1000 ms > 100 ms deadline *)
  let model = { Sim.ideal with Sim.bandwidth_mbps = 1. } in
  let sim = Sim.create ~model ~round_ms:100. ~seed:1 () in
  (match Sim.transmit sim ~bytes:125_000 () with
  | Sim.Late, arrival -> Alcotest.(check (float 1e-6)) "serialization" 1000.0 arrival
  | _ -> Alcotest.fail "big frame on thin pipe must be late");
  match Sim.transmit sim ~bytes:100 () with
  | Sim.Delivered, _ -> ()
  | _ -> Alcotest.fail "small frame fits the round"

let test_sim_drop () =
  let model = { Sim.ideal with Sim.drop = 1.0 } in
  let sim = Sim.create ~model ~seed:3 () in
  (match Sim.transmit sim ~bytes:10 () with
  | Sim.Dropped, _ -> ()
  | _ -> Alcotest.fail "drop = 1 must drop");
  Alcotest.(check int) "nothing in flight" 0 (Sim.in_flight sim)

let test_sim_deterministic () =
  let run () =
    let sim = Sim.create ~model:Sim.wan ~round_ms:50. ~seed:0xD15C () in
    List.init 300 (fun i ->
        let v, a = Sim.transmit sim ~bytes:(100 + (i * 37 mod 5000)) () in
        if i mod 10 = 0 then Sim.next_round sim;
        (v, a))
  in
  Alcotest.(check bool) "replay identical" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Meter                                                               *)
(* ------------------------------------------------------------------ *)

let test_meter_roles_and_phases () =
  Alcotest.(check string) "family" "exec" (Meter.role_family "exec#3[5]");
  Alcotest.(check string) "no counter" "Setup" (Meter.role_family "Setup");
  let m = Meter.create () in
  Meter.record m ~phase:"online" ~step:"mul" ~role:"On-L#1[0]" ~frame_bytes:100
    ~payload:[ (Cost.Field_element, 40); (Cost.Proof, 32) ];
  Meter.record m ~phase:"online" ~step:"mul" ~role:"On-L#2[4]" ~frame_bytes:50
    ~payload:[ (Cost.Field_element, 40) ];
  Meter.record m ~phase:"offline" ~step:"beaver" ~role:"Deal#1[2]" ~frame_bytes:600
    ~payload:[ (Cost.Ciphertext, 512) ];
  Alcotest.(check int) "kind bytes" 80 (Meter.kind_bytes m ~phase:"online" Cost.Field_element);
  Alcotest.(check int) "data" 112 (Meter.data_bytes m ~phase:"online");
  Alcotest.(check int) "framing" 38 (Meter.framing_bytes m ~phase:"online");
  Alcotest.(check int) "phase total" 150 (Meter.phase_total m ~phase:"online");
  Alcotest.(check (list (pair string int))) "steps" [ ("mul", 150) ] (Meter.steps m ~phase:"online");
  Alcotest.(check (list (pair string int))) "roles"
    [ ("Deal", 600); ("On-L", 150) ]
    (Meter.roles m);
  Alcotest.(check (list string)) "phases" [ "offline"; "online" ] (Meter.phases m);
  Alcotest.(check int) "grand total" 750 (Meter.grand_total m);
  Alcotest.check_raises "payload > frame"
    (Invalid_argument "Meter.record: payload exceeds frame") (fun () ->
      Meter.record m ~phase:"x" ~step:"s" ~role:"r" ~frame_bytes:1
        ~payload:[ (Cost.Key, 2) ])

let test_meter_refills () =
  let m = Meter.create () in
  Meter.record_refill m ~batch:"c0/lambdas" ~bytes:100;
  Meter.record_refill m ~batch:"c0/lambdas" ~bytes:20;
  Meter.record_refill m ~batch:"c1/holder" ~bytes:5;
  Alcotest.(check int) "per-batch accumulates" 120
    (List.assoc "c0/lambdas" (Meter.refills m));
  Alcotest.(check int) "refill total" 125 (Meter.refill_total m);
  (* refills are a side-attribution, never phase traffic *)
  Alcotest.(check int) "no phase traffic" 0 (Meter.grand_total m);
  let dst = Meter.create () in
  Meter.record_refill dst ~batch:"c1/holder" ~bytes:1;
  Meter.merge_into ~dst m;
  Alcotest.(check int) "merged batch" 6 (List.assoc "c1/holder" (Meter.refills dst));
  Alcotest.(check int) "merged total" 126 (Meter.refill_total dst);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Meter.record_refill: negative byte count") (fun () ->
      Meter.record_refill m ~batch:"x" ~bytes:(-1))

(* ------------------------------------------------------------------ *)
(* Board                                                               *)
(* ------------------------------------------------------------------ *)

let author i = Role.id ~committee:"T#1" ~index:i

let test_board_post_delivered () =
  let b = Board.create () in
  let outcome =
    Board.post b ~author:(author 0) ~phase:"online" ~step:"hello"
      ~items:[ Wire.Field_elements [| F.one; F.of_int 2 |] ]
      ~cost:[ (Cost.Field_element, 2); (Cost.Proof, 1) ]
      ()
  in
  Alcotest.(check string) "delivered" "delivered" (Board.outcome_to_string outcome);
  Alcotest.(check int) "on the board" 1 (Board.length b);
  (* element counts charged exactly as the abstract bulletin would *)
  Alcotest.(check int) "elements" 3 (Cost.elements (Board.cost b) ~phase:"online");
  (* real field data: 2 elements * 4 bytes *)
  Alcotest.(check int) "field bytes" 8
    (Meter.kind_bytes (Board.meter b) ~phase:"online" Cost.Field_element);
  (* the proof the cost declares is synthesized at its modeled size *)
  Alcotest.(check int) "proof bytes" 32
    (Meter.kind_bytes (Board.meter b) ~phase:"online" Cost.Proof);
  Alcotest.(check int) "byte dimension on Cost too" 8
    (Cost.bytes (Board.cost b) ~phase:"online" Cost.Field_element)

let test_board_corrupt_garbled () =
  let b = Board.create () in
  let outcome =
    Board.post b ~author:(author 1) ~phase:"online" ~step:"evil" ~corrupt:true
      ~cost:[ (Cost.Field_element, 1) ] ()
  in
  Alcotest.(check string) "garbled" "garbled" (Board.outcome_to_string outcome);
  (* the slot is consumed: the frame landed, it just decodes to nothing *)
  Alcotest.(check int) "still occupies a post" 1 (Board.length b)

let test_board_force_late () =
  let b = Board.create () in
  let outcome =
    Board.post b ~author:(author 2) ~phase:"online" ~step:"slow" ~force_late:true
      ~cost:[] ()
  in
  Alcotest.(check string) "late" "late" (Board.outcome_to_string outcome);
  match Yoso_runtime.Bulletin.posts (Board.bulletin b) with
  | [ p ] ->
    Alcotest.(check string) "deadline marker" "slow [past round deadline]"
      p.Yoso_runtime.Bulletin.msg
  | _ -> Alcotest.fail "expected one post"

let test_board_drop_consumes_slot () =
  let config =
    { Board.default_config with Board.model = { Sim.ideal with Sim.drop = 1.0 } }
  in
  let b = Board.create ~config () in
  let outcome =
    Board.post b ~author:(author 3) ~phase:"online" ~step:"lost" ~cost:[] ()
  in
  Alcotest.(check string) "dropped" "dropped" (Board.outcome_to_string outcome);
  Alcotest.(check int) "never reaches the board" 0 (Board.length b);
  (* speak-once is still consumed: the role sent its message *)
  Alcotest.(check bool) "spoke" true
    (Role.Registry.has_spoken (Board.registry b) (author 3))

let test_board_speak_once () =
  let b = Board.create () in
  ignore (Board.post b ~author:(author 4) ~phase:"p" ~step:"once" ~cost:[] ());
  match Board.post b ~author:(author 4) ~phase:"p" ~step:"twice" ~cost:[] () with
  | exception _ -> ()
  | _ -> Alcotest.fail "second post by the same role must be refused"

let posts_script b =
  ignore
    (Board.post b ~author:(Role.id ~committee:"A#1" ~index:0) ~phase:"online" ~step:"s1"
       ~items:[ Wire.Field_elements [| F.of_int 5 |] ]
       ~cost:[ (Cost.Field_element, 1) ]
       ());
  Board.next_round b;
  ignore
    (Board.post b ~author:(Role.id ~committee:"A#1" ~index:1) ~phase:"online" ~step:"s2"
       ~cost:[ (Cost.Ciphertext, 3) ]
       ());
  Board.transcript b

let test_board_transcript_replay () =
  let t1 = posts_script (Board.create ()) in
  let t2 = posts_script (Board.create ()) in
  Alcotest.(check bool) "byte-identical replay" true (t1 = t2);
  Alcotest.(check int) "two frames" 2 t1.Board.frames;
  (* a different net seed synthesizes different blob bytes *)
  let t3 =
    posts_script (Board.create ~config:{ Board.default_config with Board.net_seed = 2 } ())
  in
  Alcotest.(check bool) "seed changes the transcript" true (t1.Board.digest <> t3.Board.digest)

(* ------------------------------------------------------------------ *)
(* Protocol integration                                                *)
(* ------------------------------------------------------------------ *)

let params16 = Params.create ~n:16 ~t:3 ~k:3 ()
let circuit = Gen.dot_product ~len:4
let inputs c = Array.init 4 (fun i -> F.of_int ((c * 10) + i + 1))

let test_protocol_replay () =
  let run () =
    Protocol.execute ~params:params16
      ~config:(Protocol.config ~seed:11 ())
      ~circuit ~inputs ()
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "correct" true (Protocol.check r1 circuit ~inputs);
  Alcotest.(check bool) "transcripts byte-identical" true (r1.Protocol.transcript = r2.Protocol.transcript);
  Alcotest.(check bool) "frames flowed" true (r1.Protocol.transcript.Board.frames > 0);
  Alcotest.(check int) "every post is a frame" r1.Protocol.net.Sim.sent
    r1.Protocol.transcript.Board.frames

let test_protocol_bytes_measured () =
  let r =
    Protocol.execute ~params:params16
      ~config:(Protocol.config ~seed:11 ())
      ~circuit ~inputs ()
  in
  Alcotest.(check bool) "setup bytes" true (r.Protocol.setup_bytes > 0);
  Alcotest.(check bool) "offline bytes" true (r.Protocol.offline_bytes > 0);
  Alcotest.(check bool) "online bytes" true (r.Protocol.online_bytes > 0);
  Alcotest.(check bool) "field data present" true (r.Protocol.online_field_bytes > 0);
  Alcotest.(check int) "field data is 4 bytes/element" 0 (r.Protocol.online_field_bytes mod 4);
  (* wire accounting can never undercut the data it carries *)
  Alcotest.(check bool) "frames dominate data" true
    (r.Protocol.online_bytes >= r.Protocol.online_field_bytes);
  let total = r.Protocol.setup_bytes + r.Protocol.offline_bytes + r.Protocol.online_bytes in
  Alcotest.(check int) "meter total = frames on the wire" total
    r.Protocol.transcript.Board.frame_bytes

let test_protocol_over_lan () =
  let net = { Board.default_config with Board.model = Sim.lan; Board.round_ms = 200. } in
  let r =
    Protocol.execute ~params:params16
      ~config:(Protocol.config ~seed:11 ~board:net ())
      ~circuit ~inputs ()
  in
  Alcotest.(check bool) "correct over lan" true (Protocol.check r circuit ~inputs);
  Alcotest.(check bool) "time passed" true (r.Protocol.net.Sim.elapsed_ms > 0.)

let test_protocol_lossy_never_wrong () =
  (* under loss the protocol either completes correctly or aborts with
     the structured failure — never a wrong output *)
  let net = { Board.default_config with Board.model = { Sim.ideal with Sim.drop = 0.08 } } in
  for seed = 1 to 5 do
    match
      Protocol.execute ~params:params16
        ~config:(Protocol.config ~seed ~board:net ())
        ~circuit ~inputs ()
    with
    | r ->
      Alcotest.(check bool) "correct despite loss" true (Protocol.check r circuit ~inputs)
    | exception Yoso_runtime.Faults.Protocol_failure _ -> ()
  done

let test_report_json () =
  let r =
    Protocol.execute ~params:params16
      ~config:(Protocol.config ~seed:11 ())
      ~circuit ~inputs ()
  in
  let js = Protocol.report_json r in
  Alcotest.(check bool) "object" true (String.length js > 2 && js.[0] = '{');
  List.iter
    (fun key ->
      let re = Printf.sprintf "\"%s\":" key in
      let found =
        let rec scan i =
          i + String.length re <= String.length js
          && (String.sub js i (String.length re) = re || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) (key ^ " present") true found)
    [
      "num_mult"; "online_field_bytes_per_gate"; "offline_bytes"; "net"; "transcript";
      "digest"; "outputs"; "blames";
    ]

let () =
  Alcotest.run "net"
    [
      ( "wire",
        [
          Alcotest.test_case "varint roundtrip" `Quick test_varint_roundtrip;
          Alcotest.test_case "varint rejections" `Quick test_varint_rejections;
          Alcotest.test_case "field codec" `Quick test_field_codec;
          Alcotest.test_case "bigint codec" `Quick test_bigint_codec;
          Alcotest.test_case "bytes truncation" `Quick test_bytes_truncation;
          Alcotest.test_case "message roundtrip" `Quick test_message_roundtrip;
          Alcotest.test_case "trailing garbage" `Quick test_message_trailing_garbage;
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "frame tampering" `Quick test_frame_tamper_rejection;
          Alcotest.test_case "payload accounting" `Quick test_item_accounting;
          Alcotest.test_case "items of cost" `Quick test_items_of_cost;
        ] );
      ("wire-properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props);
      ( "sim",
        [
          Alcotest.test_case "ideal delivers" `Quick test_sim_ideal_delivers;
          Alcotest.test_case "late and drain" `Quick test_sim_late_and_drain;
          Alcotest.test_case "latency" `Quick test_sim_latency_beyond_round;
          Alcotest.test_case "bandwidth" `Quick test_sim_bandwidth;
          Alcotest.test_case "drop" `Quick test_sim_drop;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
        ] );
      ( "meter",
        [
          Alcotest.test_case "roles and phases" `Quick test_meter_roles_and_phases;
          Alcotest.test_case "refill buckets" `Quick test_meter_refills;
        ] );
      ( "board",
        [
          Alcotest.test_case "post delivered" `Quick test_board_post_delivered;
          Alcotest.test_case "corrupt garbled" `Quick test_board_corrupt_garbled;
          Alcotest.test_case "force late" `Quick test_board_force_late;
          Alcotest.test_case "drop consumes slot" `Quick test_board_drop_consumes_slot;
          Alcotest.test_case "speak once" `Quick test_board_speak_once;
          Alcotest.test_case "transcript replay" `Quick test_board_transcript_replay;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "seeded replay" `Quick test_protocol_replay;
          Alcotest.test_case "bytes measured" `Quick test_protocol_bytes_measured;
          Alcotest.test_case "over lan" `Quick test_protocol_over_lan;
          Alcotest.test_case "lossy never wrong" `Quick test_protocol_lossy_never_wrong;
          Alcotest.test_case "report json" `Quick test_report_json;
        ] );
    ]
