module Role = Yoso_runtime.Role
module Committee = Yoso_runtime.Committee
module Bulletin = Yoso_runtime.Bulletin
module Cost = Yoso_runtime.Cost
module Splitmix = Yoso_hash.Splitmix

(* ------------------------------------------------------------------ *)
(* Roles: speak-once                                                   *)
(* ------------------------------------------------------------------ *)

let test_speak_once () =
  let reg = Role.Registry.create () in
  let r = Role.id ~committee:"C1" ~index:3 in
  Alcotest.(check bool) "not spoken yet" false (Role.Registry.has_spoken reg r);
  Role.Registry.speak reg r;
  Alcotest.(check bool) "spoken" true (Role.Registry.has_spoken reg r);
  Alcotest.check_raises "second speak raises" (Role.Already_spoke r) (fun () ->
      Role.Registry.speak reg r)

let test_distinct_roles_independent () =
  let reg = Role.Registry.create () in
  Role.Registry.speak reg (Role.id ~committee:"C1" ~index:0);
  Role.Registry.speak reg (Role.id ~committee:"C1" ~index:1);
  Role.Registry.speak reg (Role.id ~committee:"C2" ~index:0);
  Alcotest.(check int) "three spoke" 3 (Role.Registry.spoken_count reg)

let test_erase_hooks () =
  let reg = Role.Registry.create () in
  let r = Role.id ~committee:"C1" ~index:0 in
  let erased = ref [] in
  Role.Registry.on_erase reg r (fun () -> erased := "key1" :: !erased);
  Role.Registry.on_erase reg r (fun () -> erased := "key2" :: !erased);
  Alcotest.(check (list string)) "nothing erased yet" [] !erased;
  Role.Registry.speak reg r;
  Alcotest.(check (list string)) "erased in order" [ "key2"; "key1" ] !erased;
  (* hooks registered after speaking run immediately *)
  Role.Registry.on_erase reg r (fun () -> erased := "late" :: !erased);
  Alcotest.(check (list string)) "late hook immediate" [ "late"; "key2"; "key1" ] !erased

(* ------------------------------------------------------------------ *)
(* Committees                                                          *)
(* ------------------------------------------------------------------ *)

let test_committee_sample_counts () =
  let rng = Splitmix.of_int 42 in
  let c = Committee.sample ~name:"C" ~n:100 ~malicious:30 ~passive:10 ~fail_stop:5 rng in
  Alcotest.(check int) "malicious" 30 (Committee.count_malicious c);
  Alcotest.(check int) "fail stop" 5 (Committee.count_fail_stop c);
  Alcotest.(check int) "speaking" 95 (List.length (Committee.speaking_indices c));
  Alcotest.(check int) "honest+passive" 65 (List.length (Committee.honest_indices c))

let test_committee_sample_random_positions () =
  (* two different rngs should corrupt different index sets (w.h.p.) *)
  let c1 = Committee.sample ~name:"C" ~n:50 ~malicious:10 (Splitmix.of_int 1) in
  let c2 = Committee.sample ~name:"C" ~n:50 ~malicious:10 (Splitmix.of_int 2) in
  Alcotest.(check bool) "different placements" true
    (Committee.malicious_indices c1 <> Committee.malicious_indices c2)

let test_committee_overflow () =
  Alcotest.check_raises "too many corruptions"
    (Invalid_argument "Committee.sample: more corruptions than members") (fun () ->
      ignore (Committee.sample ~name:"C" ~n:5 ~malicious:4 ~fail_stop:2 (Splitmix.of_int 1)))

let test_committee_participation () =
  let statuses =
    [| Committee.Honest; Committee.Malicious; Committee.Fail_stop; Committee.Passive |]
  in
  let c = Committee.create ~name:"C" ~statuses in
  Alcotest.(check bool) "honest participates" true (Committee.participates c 0);
  Alcotest.(check bool) "malicious participates" true (Committee.participates c 1);
  Alcotest.(check bool) "fail-stop silent" false (Committee.participates c 2);
  Alcotest.(check (list int)) "speaking" [ 0; 1; 3 ] (Committee.speaking_indices c);
  Alcotest.(check (list int)) "honest-ish" [ 0; 3 ] (Committee.honest_indices c)

(* ------------------------------------------------------------------ *)
(* Bulletin + cost                                                     *)
(* ------------------------------------------------------------------ *)

let test_bulletin_post_and_read () =
  let b : string Bulletin.t = Bulletin.create () in
  let r0 = Role.id ~committee:"C1" ~index:0 in
  let r1 = Role.id ~committee:"C1" ~index:1 in
  Bulletin.post b ~author:r0 ~phase:"offline" ~cost:[ (Cost.Ciphertext, 2) ] "hello";
  Bulletin.next_round b;
  Bulletin.post b ~author:r1 ~phase:"online" ~cost:[ (Cost.Field_element, 1) ] "world";
  Alcotest.(check int) "two posts" 2 (Bulletin.length b);
  (match Bulletin.posts b with
  | [ p0; p1 ] ->
    Alcotest.(check string) "order" "hello" p0.Bulletin.msg;
    Alcotest.(check int) "round 0" 0 p0.Bulletin.round;
    Alcotest.(check int) "round 1" 1 p1.Bulletin.round
  | _ -> Alcotest.fail "expected 2 posts");
  Alcotest.(check int) "round filter" 1 (List.length (Bulletin.posts_in_round b 1));
  Alcotest.(check int) "by author" 1 (List.length (Bulletin.posts_by b r0))

let test_bulletin_enforces_speak_once () =
  let b : int Bulletin.t = Bulletin.create () in
  let r = Role.id ~committee:"C1" ~index:0 in
  Bulletin.post b ~author:r ~phase:"p" ~cost:[] 1;
  Alcotest.check_raises "double post" (Role.Already_spoke r) (fun () ->
      Bulletin.post b ~author:r ~phase:"p" ~cost:[] 2)

let test_cost_accounting () =
  let c = Cost.create () in
  Cost.charge c ~phase:"offline" Cost.Ciphertext 10;
  Cost.charge c ~phase:"offline" Cost.Proof 3;
  Cost.charge c ~phase:"offline" Cost.Ciphertext 5;
  Cost.charge c ~phase:"online" Cost.Field_element 7;
  Alcotest.(check int) "ciphertexts" 15 (Cost.count c ~phase:"offline" Cost.Ciphertext);
  Alcotest.(check int) "offline elements" 18 (Cost.elements c ~phase:"offline");
  Alcotest.(check int) "online elements" 7 (Cost.elements c ~phase:"online");
  Alcotest.(check int) "grand total" 25 (Cost.grand_total c);
  Alcotest.(check (list string)) "phases" [ "offline"; "online" ] (Cost.phases c);
  Alcotest.check_raises "negative" (Invalid_argument "Cost.charge: negative amount")
    (fun () -> Cost.charge c ~phase:"x" Cost.Key (-1))

let test_cost_merge () =
  let a = Cost.create () and b = Cost.create () in
  Cost.charge a ~phase:"online" Cost.Field_element 3;
  Cost.charge b ~phase:"online" Cost.Field_element 4;
  Cost.charge b ~phase:"offline" Cost.Proof 1;
  Cost.merge_into ~dst:a b;
  Alcotest.(check int) "merged" 7 (Cost.count a ~phase:"online" Cost.Field_element);
  Alcotest.(check int) "new phase" 1 (Cost.count a ~phase:"offline" Cost.Proof)

let test_cost_merge_map_phase () =
  let a = Cost.create () and b = Cost.create () in
  Cost.charge a ~phase:"factory" Cost.Ciphertext 1;
  Cost.charge b ~phase:"offline" Cost.Ciphertext 3;
  Cost.charge b ~phase:"online" Cost.Field_element 2;
  Cost.merge_into
    ~map_phase:(fun p -> if String.equal p "offline" then "factory" else p)
    ~dst:a b;
  Alcotest.(check int) "offline lands in factory" 4
    (Cost.count a ~phase:"factory" Cost.Ciphertext);
  Alcotest.(check int) "other phases keep their name" 2
    (Cost.count a ~phase:"online" Cost.Field_element);
  Alcotest.(check int) "nothing left under the source name" 0
    (Cost.elements a ~phase:"offline");
  Alcotest.(check int) "source untouched" 3 (Cost.count b ~phase:"offline" Cost.Ciphertext)

let test_cost_bytes_dimension () =
  let c = Cost.create () in
  Cost.charge c ~phase:"online" Cost.Field_element 2;
  Cost.charge_bytes c ~phase:"online" Cost.Field_element 8;
  Cost.charge_bytes c ~phase:"online" Cost.Proof 32;
  Cost.charge_bytes c ~phase:"online" Cost.Field_element 4;
  Alcotest.(check int) "bytes accumulate" 12 (Cost.bytes c ~phase:"online" Cost.Field_element);
  Alcotest.(check int) "phase bytes" 44 (Cost.phase_bytes c ~phase:"online");
  Alcotest.(check int) "total bytes" 44 (Cost.total_bytes c);
  (* the two dimensions are independent: bytes never inflate counts *)
  Alcotest.(check int) "elements unchanged" 2 (Cost.elements c ~phase:"online");
  (* a phase only bytes touched still shows up in the phase list *)
  Cost.charge_bytes c ~phase:"setup" Cost.Key 256;
  Alcotest.(check (list string)) "phases" [ "online"; "setup" ] (Cost.phases c);
  Alcotest.check_raises "negative" (Invalid_argument "Cost.charge_bytes: negative amount")
    (fun () -> Cost.charge_bytes c ~phase:"x" Cost.Key (-1))

let test_cost_merge_bytes () =
  let a = Cost.create () and b = Cost.create () in
  Cost.charge_bytes a ~phase:"online" Cost.Ciphertext 100;
  Cost.charge b ~phase:"online" Cost.Ciphertext 1;
  Cost.charge_bytes b ~phase:"online" Cost.Ciphertext 24;
  Cost.merge_into ~dst:a b;
  Alcotest.(check int) "bytes merged" 124 (Cost.bytes a ~phase:"online" Cost.Ciphertext);
  Alcotest.(check int) "counts merged" 1 (Cost.count a ~phase:"online" Cost.Ciphertext)

let contains haystack needle =
  let nl = String.length needle in
  let rec scan i =
    i + nl <= String.length haystack && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let test_cost_pp () =
  let c = Cost.create () in
  Cost.charge c ~phase:"online" Cost.Field_element 7;
  Cost.charge c ~phase:"online" Cost.Proof 2;
  let plain = Format.asprintf "%a" Cost.pp c in
  Alcotest.(check bool) "counts shown" true (contains plain "field=7");
  Alcotest.(check bool) "proofs shown" true (contains plain "proof=2");
  Alcotest.(check bool) "total shown" true (contains plain "total=9");
  Alcotest.(check bool) "no bytes column without bytes" false (contains plain "bytes=");
  Cost.charge_bytes c ~phase:"online" Cost.Field_element 28;
  let with_bytes = Format.asprintf "%a" Cost.pp c in
  Alcotest.(check bool) "bytes shown once charged" true (contains with_bytes "bytes=28")

let test_bulletin_seq_monotonic () =
  (* posts must come back in strictly increasing seq order, and the
     forward-order cache must stay coherent across interleaved reads
     and writes *)
  let b : int Bulletin.t = Bulletin.create () in
  for i = 0 to 63 do
    Bulletin.post b ~author:(Role.id ~committee:"Seq" ~index:i) ~phase:"p" ~cost:[] i;
    (* read between writes to exercise cache invalidation *)
    let ps = Bulletin.posts b in
    Alcotest.(check int) "length tracks" (i + 1) (List.length ps);
    ignore (Bulletin.posts b)
  done;
  let seqs = List.map (fun p -> p.Bulletin.seq) (Bulletin.posts b) in
  let rec monotonic = function
    | a :: (c :: _ as rest) -> a < c && monotonic rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly increasing" true (monotonic seqs);
  Alcotest.(check (list int)) "seq = arrival order" (List.init 64 Fun.id) seqs;
  (* repeated reads return the identical cached list *)
  Alcotest.(check bool) "cache stable" true (Bulletin.posts b == Bulletin.posts b)

let test_bulletin_charges_cost () =
  let b : unit Bulletin.t = Bulletin.create () in
  Bulletin.post b ~author:(Role.id ~committee:"C" ~index:0) ~phase:"online"
    ~cost:[ (Cost.Field_element, 4); (Cost.Proof, 1) ]
    ();
  Alcotest.(check int) "charged" 5 (Cost.elements (Bulletin.cost b) ~phase:"online")

let () =
  Alcotest.run "runtime"
    [
      ( "roles",
        [
          Alcotest.test_case "speak once" `Quick test_speak_once;
          Alcotest.test_case "independent roles" `Quick test_distinct_roles_independent;
          Alcotest.test_case "erase hooks" `Quick test_erase_hooks;
        ] );
      ( "committees",
        [
          Alcotest.test_case "sample counts" `Quick test_committee_sample_counts;
          Alcotest.test_case "random placement" `Quick test_committee_sample_random_positions;
          Alcotest.test_case "overflow" `Quick test_committee_overflow;
          Alcotest.test_case "participation" `Quick test_committee_participation;
        ] );
      ( "bulletin",
        [
          Alcotest.test_case "post/read" `Quick test_bulletin_post_and_read;
          Alcotest.test_case "speak once" `Quick test_bulletin_enforces_speak_once;
          Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
          Alcotest.test_case "cost merge" `Quick test_cost_merge;
          Alcotest.test_case "cost merge map phase" `Quick test_cost_merge_map_phase;
          Alcotest.test_case "cost bytes" `Quick test_cost_bytes_dimension;
          Alcotest.test_case "cost merge bytes" `Quick test_cost_merge_bytes;
          Alcotest.test_case "cost pp" `Quick test_cost_pp;
          Alcotest.test_case "seq monotonic" `Quick test_bulletin_seq_monotonic;
          Alcotest.test_case "bulletin charges" `Quick test_bulletin_charges_cost;
        ] );
    ]
