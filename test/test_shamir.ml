module F = Yoso_field.Field.Fp
module PS = Yoso_shamir.Packed_shamir.Make (F)
module Bary = Yoso_field.Barycentric.Make (F)
module Poly = Yoso_field.Poly.Make (F)

let st = Random.State.make [| 0x5A |]

let felt = Alcotest.testable F.pp F.equal

let fvec = Alcotest.(array felt)

let rand_secrets k = Array.init k (fun _ -> F.random st)

let all_pairs (s : PS.sharing) =
  Array.to_list (Array.mapi (fun i v -> (i, v)) s.PS.shares)

(* ------------------------------------------------------------------ *)
(* Barycentric                                                         *)
(* ------------------------------------------------------------------ *)

let test_barycentric_matches_poly () =
  for _ = 1 to 30 do
    let d = 1 + Random.State.int st 10 in
    let p = Poly.random ~degree:d st in
    let nodes = Array.init (d + 1) (fun i -> F.of_int (i + 1)) in
    let b = Bary.create nodes in
    let values = Array.map (Poly.eval p) nodes in
    (* off-node evaluation *)
    let x = F.of_int (Random.State.int st 10_000 + 100) in
    Alcotest.check felt "off-node" (Poly.eval p x) (Bary.eval b ~values x);
    (* on-node evaluation *)
    Alcotest.check felt "on-node" values.(0) (Bary.eval b ~values nodes.(0))
  done

let test_barycentric_duplicates () =
  Alcotest.check_raises "dup nodes"
    (Invalid_argument "Barycentric.create: duplicate nodes") (fun () ->
      ignore (Bary.create [| F.one; F.one |]))

let test_barycentric_eval_many () =
  let p = Poly.random ~degree:3 st in
  let nodes = Array.init 4 (fun i -> F.of_int (i + 1)) in
  let b = Bary.create nodes in
  let values = Array.map (Poly.eval p) nodes in
  let targets = Array.init 6 (fun i -> F.of_int (i + 100)) in
  Alcotest.check fvec "eval_many" (Array.map (Poly.eval p) targets)
    (Bary.eval_many b ~values targets)

(* ------------------------------------------------------------------ *)
(* Share / reconstruct roundtrips                                      *)
(* ------------------------------------------------------------------ *)

let test_share_reconstruct_roundtrip () =
  List.iter
    (fun (n, k) ->
      let p = PS.make_params ~n ~k in
      List.iter
        (fun degree ->
          if degree >= k - 1 && degree <= n - 1 then begin
            let secrets = rand_secrets k in
            let s = PS.share p ~degree ~secrets ~rng:st in
            Alcotest.check fvec
              (Printf.sprintf "n=%d k=%d d=%d" n k degree)
              secrets
              (PS.reconstruct p ~degree (all_pairs s))
          end)
        [ k - 1; k; 2 * k; n / 2; n - 1 ])
    [ (5, 1); (7, 3); (16, 4); (31, 8); (64, 16) ]

let test_reconstruct_from_exactly_d1_shares () =
  let n = 12 and k = 3 in
  let p = PS.make_params ~n ~k in
  let degree = 6 in
  let secrets = rand_secrets k in
  let s = PS.share p ~degree ~secrets ~rng:st in
  (* take an arbitrary subset of exactly degree+1 shares, not a prefix *)
  let subset = List.filteri (fun i _ -> i mod 2 = 1 || i > 8) (all_pairs s) in
  let subset = List.filteri (fun i _ -> i < degree + 1) subset in
  Alcotest.check fvec "subset reconstruct" secrets (PS.reconstruct p ~degree subset)

let test_reconstruct_too_few () =
  let p = PS.make_params ~n:8 ~k:2 in
  let s = PS.share p ~degree:5 ~secrets:(rand_secrets 2) ~rng:st in
  let few = List.filteri (fun i _ -> i < 5) (all_pairs s) in
  Alcotest.check_raises "too few"
    (Invalid_argument "Packed_shamir.reconstruct: 5 shares, need 6") (fun () ->
      ignore (PS.reconstruct p ~degree:5 few))

let test_duplicate_party_shares_ignored () =
  let p = PS.make_params ~n:8 ~k:2 in
  let secrets = rand_secrets 2 in
  let s = PS.share p ~degree:3 ~secrets ~rng:st in
  let pairs = all_pairs s in
  (* prepend duplicates of party 0; they must not count twice *)
  let noisy = (0, s.PS.shares.(0)) :: (0, s.PS.shares.(0)) :: pairs in
  Alcotest.check fvec "dedup" secrets (PS.reconstruct p ~degree:3 noisy)

let test_bad_params () =
  Alcotest.check_raises "k > n" (Invalid_argument "Packed_shamir: need 1 <= k <= n")
    (fun () -> ignore (PS.make_params ~n:3 ~k:4));
  let p = PS.make_params ~n:5 ~k:2 in
  Alcotest.check_raises "degree too small"
    (Invalid_argument "Packed_shamir: degree 0 out of range [1, 4]") (fun () ->
      ignore (PS.share p ~degree:0 ~secrets:(rand_secrets 2) ~rng:st));
  Alcotest.check_raises "degree too large"
    (Invalid_argument "Packed_shamir: degree 5 out of range [1, 4]") (fun () ->
      ignore (PS.share p ~degree:5 ~secrets:(rand_secrets 2) ~rng:st));
  Alcotest.check_raises "wrong secret count"
    (Invalid_argument "Packed_shamir.share: secrets length <> k") (fun () ->
      ignore (PS.share p ~degree:2 ~secrets:(rand_secrets 3) ~rng:st))

(* ------------------------------------------------------------------ *)
(* Homomorphism                                                        *)
(* ------------------------------------------------------------------ *)

let test_linear_homomorphism () =
  let n = 16 and k = 4 in
  let p = PS.make_params ~n ~k in
  let d = 7 in
  for _ = 1 to 20 do
    let x = rand_secrets k and y = rand_secrets k in
    let sx = PS.share p ~degree:d ~secrets:x ~rng:st in
    let sy = PS.share p ~degree:d ~secrets:y ~rng:st in
    let sum = PS.reconstruct p ~degree:d (all_pairs (PS.add p sx sy)) in
    Alcotest.check fvec "add" (Array.map2 F.add x y) sum;
    let diff = PS.reconstruct p ~degree:d (all_pairs (PS.sub p sx sy)) in
    Alcotest.check fvec "sub" (Array.map2 F.sub x y) diff;
    let c = F.random st in
    let scaled = PS.reconstruct p ~degree:d (all_pairs (PS.scale p c sx)) in
    Alcotest.check fvec "scale" (Array.map (F.mul c) x) scaled
  done

let test_share_multiplication () =
  let n = 16 and k = 3 in
  let p = PS.make_params ~n ~k in
  let d1 = 4 and d2 = 5 in
  for _ = 1 to 20 do
    let x = rand_secrets k and y = rand_secrets k in
    let sx = PS.share p ~degree:d1 ~secrets:x ~rng:st in
    let sy = PS.share p ~degree:d2 ~secrets:y ~rng:st in
    let prod = PS.mul p sx sy in
    Alcotest.(check int) "degree adds" (d1 + d2) prod.PS.degree;
    Alcotest.check fvec "pointwise product"
      (Array.map2 F.mul x y)
      (PS.reconstruct p ~degree:(d1 + d2) (all_pairs prod))
  done

let test_mul_degree_overflow () =
  let p = PS.make_params ~n:8 ~k:2 in
  let s1 = PS.share p ~degree:4 ~secrets:(rand_secrets 2) ~rng:st in
  let s2 = PS.share p ~degree:4 ~secrets:(rand_secrets 2) ~rng:st in
  Alcotest.check_raises "degree overflow"
    (Invalid_argument "Packed_shamir.mul: product degree exceeds n - 1") (fun () ->
      ignore (PS.mul p s1 s2))

let test_public_vector_multiplication () =
  (* the multiplication-friendliness trick from Section 3.2: public
     vector times degree-(n-k) sharing gives degree-(n-1) sharing *)
  let n = 16 and k = 4 in
  let p = PS.make_params ~n ~k in
  let d = n - k in
  for _ = 1 to 20 do
    let x = rand_secrets k in
    let c = rand_secrets k in
    let sx = PS.share p ~degree:d ~secrets:x ~rng:st in
    let prod = PS.mul_public p c sx in
    Alcotest.(check int) "degree" (d + k - 1) prod.PS.degree;
    Alcotest.check fvec "c * x"
      (Array.map2 F.mul c x)
      (PS.reconstruct p ~degree:(n - 1) (all_pairs prod))
  done

let test_share_public_deterministic () =
  let p = PS.make_params ~n:10 ~k:3 in
  let v = rand_secrets 3 in
  let s1 = PS.share_public p v and s2 = PS.share_public p v in
  Alcotest.check fvec "deterministic" s1.PS.shares s2.PS.shares;
  Alcotest.check fvec "reconstructs" v (PS.reconstruct p ~degree:2 (all_pairs s1))

let test_add_constant () =
  let n = 12 and k = 3 in
  let p = PS.make_params ~n ~k in
  let x = rand_secrets k and c = rand_secrets k in
  let s = PS.share p ~degree:6 ~secrets:x ~rng:st in
  let s' = PS.add_constant p c s in
  Alcotest.check fvec "x + c"
    (Array.map2 F.add x c)
    (PS.reconstruct p ~degree:6 (all_pairs s'))

(* ------------------------------------------------------------------ *)
(* Degree check (error detection) and recovery                         *)
(* ------------------------------------------------------------------ *)

let test_check_degree () =
  let p = PS.make_params ~n:12 ~k:3 in
  let s = PS.share p ~degree:5 ~secrets:(rand_secrets 3) ~rng:st in
  Alcotest.(check bool) "honest sharing passes" true (PS.check_degree p s);
  (* corrupt one share *)
  let shares = Array.copy s.PS.shares in
  shares.(7) <- F.add shares.(7) F.one;
  let bad = PS.make_sharing ~degree:s.PS.degree ~shares in
  Alcotest.(check bool) "corrupted sharing fails" false (PS.check_degree p bad)

let test_recover_missing () =
  let p = PS.make_params ~n:10 ~k:2 in
  let s = PS.share p ~degree:4 ~secrets:(rand_secrets 2) ~rng:st in
  let pairs = List.filter (fun (i, _) -> i <> 9) (all_pairs s) in
  Alcotest.check felt "recovered share" s.PS.shares.(9)
    (PS.recover_missing p ~degree:4 pairs 9)

let test_recover_missing_adversarial () =
  let p = PS.make_params ~n:10 ~k:2 in
  let degree = 4 in
  let s = PS.share p ~degree ~secrets:(rand_secrets 2) ~rng:st in
  let surviving = List.filter (fun (i, _) -> i <> 9) (all_pairs s) in
  (* one tampered share among the interpolation set silently poisons
     the recovered value — recovery trusts its inputs, which is why
     the protocol only feeds it NIZK-verified shares *)
  let poisoned =
    List.map (fun (i, v) -> if i = 2 then (i, F.add v F.one) else (i, v)) surviving
  in
  Alcotest.(check bool) "poisoned inputs shift the recovered share" false
    (F.equal s.PS.shares.(9) (PS.recover_missing p ~degree poisoned 9));
  (* recovery from any clean (degree+1)-subset is exact, whichever
     parties happen to have survived exclusion *)
  let subset = List.filteri (fun j _ -> j mod 2 = 0 || j < 2) surviving in
  let subset = List.filteri (fun j _ -> j < degree + 1) subset in
  Alcotest.check felt "any clean subset recovers" s.PS.shares.(9)
    (PS.recover_missing p ~degree subset 9)

let test_reconstruct_checked_clean () =
  let p = PS.make_params ~n:12 ~k:3 in
  let degree = 6 in
  let secrets = rand_secrets 3 in
  let s = PS.share p ~degree ~secrets ~rng:st in
  (match PS.reconstruct_checked p ~degree (all_pairs s) with
  | Ok back -> Alcotest.check fvec "all shares consistent" secrets back
  | Error bad ->
    Alcotest.failf "honest sharing flagged parties %s"
      (String.concat "," (List.map string_of_int bad)));
  (* exactly degree+1 shares: nothing left to cross-check, still Ok *)
  let minimal = List.filteri (fun i _ -> i < degree + 1) (all_pairs s) in
  match PS.reconstruct_checked p ~degree minimal with
  | Ok back -> Alcotest.check fvec "minimal set" secrets back
  | Error _ -> Alcotest.fail "minimal honest set flagged"

let test_reconstruct_checked_flags_tampered () =
  let p = PS.make_params ~n:12 ~k:3 in
  let degree = 6 in
  let s = PS.share p ~degree ~secrets:(rand_secrets 3) ~rng:st in
  (* perturb shares strictly beyond the interpolation prefix so the
     candidate polynomial stays honest and the liars are localized *)
  let tampered = [ 8; 10 ] in
  let pairs =
    List.map
      (fun (i, v) -> if List.mem i tampered then (i, F.mul v (F.of_int 3)) else (i, v))
      (all_pairs s)
  in
  (match PS.reconstruct_checked p ~degree pairs with
  | Ok _ -> Alcotest.fail "tampered set not flagged"
  | Error bad -> Alcotest.(check (list int)) "exact culprits" tampered (List.sort compare bad));
  (* a perturbed share inside the interpolation prefix corrupts the
     candidate instead: detection still fires, blaming honest parties —
     detect-and-abort, not identify *)
  let pairs' =
    List.map (fun (i, v) -> if i = 0 then (i, F.add v F.one) else (i, v)) (all_pairs s)
  in
  (match PS.reconstruct_checked p ~degree pairs' with
  | Ok _ -> Alcotest.fail "prefix tampering not detected"
  | Error bad -> Alcotest.(check bool) "inconsistency surfaced" true (bad <> []));
  Alcotest.check_raises "too few shares"
    (Invalid_argument "Packed_shamir.reconstruct_checked: 5 shares, need 7") (fun () ->
      ignore
        (PS.reconstruct_checked p ~degree (List.filteri (fun i _ -> i < 5) (all_pairs s))))

let test_check_degree_adversarial_sweep () =
  let p = PS.make_params ~n:16 ~k:4 in
  for degree = 3 to 15 do
    let s = PS.share p ~degree ~secrets:(rand_secrets 4) ~rng:st in
    for victim = 0 to 15 do
      let shares = Array.copy s.PS.shares in
      shares.(victim) <- F.add shares.(victim) (F.of_int (victim + 1));
      let bad = PS.make_sharing ~degree:s.PS.degree ~shares in
      (* a single perturbed share can only go undetected when the
         claimed degree already admits every n-point vector *)
      Alcotest.(check bool)
        (Printf.sprintf "d=%d victim=%d" degree victim)
        (degree >= 15) (PS.check_degree p bad)
    done
  done

(* ------------------------------------------------------------------ *)
(* Privacy smoke test                                                  *)
(* ------------------------------------------------------------------ *)

let test_shares_are_randomized () =
  (* re-sharing the same secrets must give fresh share values
     (d >= k, so at least one coefficient is random) *)
  let p = PS.make_params ~n:8 ~k:2 in
  let secrets = rand_secrets 2 in
  let observed = Hashtbl.create 64 in
  for _ = 1 to 64 do
    let s = PS.share p ~degree:4 ~secrets ~rng:st in
    Hashtbl.replace observed (F.to_int s.PS.shares.(7)) ()
  done;
  Alcotest.(check bool) "share of party 8 varies" true (Hashtbl.length observed > 32)

let test_minimal_degree_is_deterministic_given_secrets () =
  (* at degree k-1 there is no randomness: sharing = share_public *)
  let p = PS.make_params ~n:8 ~k:3 in
  let secrets = rand_secrets 3 in
  let s = PS.share p ~degree:2 ~secrets ~rng:st in
  Alcotest.check fvec "degree k-1 determined" (PS.share_public p secrets).PS.shares
    s.PS.shares

(* ------------------------------------------------------------------ *)
(* QCheck                                                              *)
(* ------------------------------------------------------------------ *)

let qcheck_props =
  [
    QCheck.Test.make ~count:100 ~name:"roundtrip (random n,k,d)"
      QCheck.(triple (int_range 2 24) (int_range 1 8) int)
      (fun (n, k, seed) ->
        QCheck.assume (k <= n);
        let st = Random.State.make [| seed |] in
        let p = PS.make_params ~n ~k in
        let degree = k - 1 + Random.State.int st (n - k + 1) in
        let secrets = Array.init k (fun _ -> F.random st) in
        let s = PS.share p ~degree ~secrets ~rng:st in
        let back = PS.reconstruct p ~degree (all_pairs s) in
        Array.for_all2 F.equal secrets back);
    QCheck.Test.make ~count:100 ~name:"linearity under random combo"
      QCheck.(pair int int)
      (fun (seed, cint) ->
        let st = Random.State.make [| seed |] in
        let p = PS.make_params ~n:10 ~k:3 in
        let x = Array.init 3 (fun _ -> F.random st) in
        let y = Array.init 3 (fun _ -> F.random st) in
        let c = F.of_int cint in
        let sx = PS.share p ~degree:5 ~secrets:x ~rng:st in
        let sy = PS.share p ~degree:5 ~secrets:y ~rng:st in
        let combo = PS.add p (PS.scale p c sx) sy in
        let back = PS.reconstruct p ~degree:5 (all_pairs combo) in
        Array.for_all2 F.equal (Array.map2 (fun a b -> F.add (F.mul c a) b) x y) back);
  ]

let () =
  Alcotest.run "shamir"
    [
      ( "barycentric",
        [
          Alcotest.test_case "matches poly" `Quick test_barycentric_matches_poly;
          Alcotest.test_case "duplicates" `Quick test_barycentric_duplicates;
          Alcotest.test_case "eval_many" `Quick test_barycentric_eval_many;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "share/reconstruct" `Quick test_share_reconstruct_roundtrip;
          Alcotest.test_case "subset of d+1" `Quick test_reconstruct_from_exactly_d1_shares;
          Alcotest.test_case "too few shares" `Quick test_reconstruct_too_few;
          Alcotest.test_case "duplicate parties" `Quick test_duplicate_party_shares_ignored;
          Alcotest.test_case "bad params" `Quick test_bad_params;
        ] );
      ( "homomorphism",
        [
          Alcotest.test_case "linear" `Quick test_linear_homomorphism;
          Alcotest.test_case "share mul" `Quick test_share_multiplication;
          Alcotest.test_case "mul overflow" `Quick test_mul_degree_overflow;
          Alcotest.test_case "public vector mul" `Quick test_public_vector_multiplication;
          Alcotest.test_case "share_public" `Quick test_share_public_deterministic;
          Alcotest.test_case "add_constant" `Quick test_add_constant;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "check_degree" `Quick test_check_degree;
          Alcotest.test_case "check_degree sweep" `Quick test_check_degree_adversarial_sweep;
          Alcotest.test_case "recover missing" `Quick test_recover_missing;
          Alcotest.test_case "recover missing (adversarial)" `Quick test_recover_missing_adversarial;
          Alcotest.test_case "reconstruct_checked clean" `Quick test_reconstruct_checked_clean;
          Alcotest.test_case "reconstruct_checked tampered" `Quick test_reconstruct_checked_flags_tampered;
          Alcotest.test_case "randomized shares" `Quick test_shares_are_randomized;
          Alcotest.test_case "k-1 deterministic" `Quick test_minimal_degree_is_deterministic_given_secrets;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props);
    ]
