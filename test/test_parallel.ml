(* Determinism matrix for the worker pool and everything wired through
   it: the parallel primitives must be extensionally equal to their
   sequential specification, and a full protocol run — faults, blames,
   transcript digest, byte totals — must be byte-identical at every
   domain count. *)

module F = Yoso_field.Field.Fp
module Pool = Yoso_parallel.Pool
module B = Yoso_bigint.Bigint
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Randgen = Yoso_mpc.Randgen
module Gen = Yoso_circuit.Generators
module Faults = Yoso_runtime.Faults
module Feldman = Yoso_shamir.Feldman
module Threshold = Yoso_paillier.Threshold

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* pool primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_map_matches_sequential () =
  let f i = (i * i) + (i mod 7) in
  List.iter
    (fun domains ->
      List.iter
        (fun n ->
          let expected = Array.init n f in
          let got = with_pool ~domains (fun pool -> Pool.map pool n f) in
          Alcotest.(check (array int))
            (Printf.sprintf "map domains=%d n=%d" domains n)
            expected got)
        [ 0; 1; 2; 3; 7; 64; 1000 ])
    [ 1; 2; 4; 8 ]

let test_map_calls_each_index_once () =
  List.iter
    (fun domains ->
      let n = 257 in
      let counts = Array.make n 0 in
      let mutex = Mutex.create () in
      ignore
        (with_pool ~domains (fun pool ->
             Pool.map pool n (fun i ->
                 Mutex.protect mutex (fun () -> counts.(i) <- counts.(i) + 1))));
      Array.iteri
        (fun i c ->
          Alcotest.(check int) (Printf.sprintf "domains=%d index %d" domains i) 1 c)
        counts)
    [ 1; 3; 8 ]

let test_map_reduce_non_associative () =
  (* subtraction is not associative or commutative: only a sequential
     in-order fold gives this value *)
  let n = 101 in
  let expected = List.fold_left (fun acc i -> (2 * acc) - i) 1 (List.init n Fun.id) in
  List.iter
    (fun domains ->
      let got =
        with_pool ~domains (fun pool ->
            Pool.map_reduce pool n ~map:Fun.id ~reduce:(fun acc i -> (2 * acc) - i) ~init:1)
      in
      Alcotest.(check int) (Printf.sprintf "domains=%d" domains) expected got)
    [ 1; 2; 4 ]

let test_iter_fills_slots () =
  let n = 500 in
  List.iter
    (fun domains ->
      let slots = Array.make n (-1) in
      with_pool ~domains (fun pool -> Pool.iter pool n (fun i -> slots.(i) <- 3 * i));
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" domains)
        (Array.init n (fun i -> 3 * i))
        slots)
    [ 1; 4 ]

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun domains ->
      match
        with_pool ~domains (fun pool ->
            Pool.map pool 64 (fun i -> if i = 41 then raise (Boom i) else i))
      with
      | _ -> Alcotest.failf "domains=%d: exception swallowed" domains
      | exception Boom 41 -> ()
      | exception e ->
        Alcotest.failf "domains=%d: wrong exception %s" domains (Printexc.to_string e))
    [ 1; 2; 8 ];
  (* the pool survives a failed map *)
  with_pool ~domains:4 (fun pool ->
      (try ignore (Pool.map pool 16 (fun i -> if i = 3 then raise (Boom i) else i))
       with Boom _ -> ());
      Alcotest.(check (array int)) "usable after failure" (Array.init 16 Fun.id)
        (Pool.map pool 16 Fun.id))

let test_create_validation () =
  Alcotest.check_raises "domains = 0" (Invalid_argument "Pool.create: domains must be in [1, 128]")
    (fun () -> ignore (Pool.create ~domains:0));
  Alcotest.check_raises "domains = 129" (Invalid_argument "Pool.create: domains must be in [1, 128]")
    (fun () -> ignore (Pool.create ~domains:129));
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

let test_derive_rng_deterministic () =
  let a = Pool.derive_rng ~seed:42 7 in
  let b = Pool.derive_rng ~seed:42 7 in
  let draws st = Array.init 16 (fun _ -> Random.State.bits st) in
  Alcotest.(check (array int)) "same (seed, i), same stream" (draws a) (draws b);
  let c = Pool.derive_rng ~seed:42 8 in
  let d = Pool.derive_rng ~seed:43 7 in
  Alcotest.(check bool) "distinct index, distinct stream" false (draws a = draws c);
  Alcotest.(check bool) "distinct seed, distinct stream" false (draws b = draws d)

(* ------------------------------------------------------------------ *)
(* protocol determinism across domain counts                           *)
(* ------------------------------------------------------------------ *)

let protocol_report ~domains =
  let params = Params.create ~n:32 ~t:10 ~k:6 () in
  let circuit = Gen.dot_product ~len:6 in
  let inputs c = Array.init 6 (fun i -> F.of_int ((c + 2) * (i + 5))) in
  let adversary = { Params.malicious = 6; passive = 0; fail_stop = 2 } in
  let config = Protocol.config ~adversary ~seed:0x9A7 ~domains () in
  let r = Protocol.execute ~params ~config ~circuit ~inputs () in
  Alcotest.(check bool)
    (Printf.sprintf "domains=%d delivers correct output" domains)
    true
    (Protocol.check r circuit ~inputs);
  r

let test_protocol_identical_across_domains () =
  let base = protocol_report ~domains:1 in
  Alcotest.(check bool) "faults are actually exercised" true (base.Protocol.faults_detected > 0);
  List.iter
    (fun domains ->
      let r = protocol_report ~domains in
      Alcotest.(check string)
        (Printf.sprintf "report domains=%d == domains=1" domains)
        (Protocol.report_json base) (Protocol.report_json r);
      Alcotest.(check int)
        (Printf.sprintf "offline bytes domains=%d" domains)
        base.Protocol.offline_bytes r.Protocol.offline_bytes;
      Alcotest.(check int)
        (Printf.sprintf "online bytes domains=%d" domains)
        base.Protocol.online_bytes r.Protocol.online_bytes;
      Alcotest.(check int)
        (Printf.sprintf "transcript digest domains=%d" domains)
        base.Protocol.transcript.Yoso_net.Board.digest
        r.Protocol.transcript.Yoso_net.Board.digest)
    [ 2; 4 ]

let test_randgen_identical_across_pools () =
  let base = Randgen.run ~n:10 ~t:3 ~malicious_dealers:[ 2 ] ~seed:77 () in
  List.iter
    (fun domains ->
      let o =
        with_pool ~domains (fun pool ->
            Randgen.run ~n:10 ~t:3 ~malicious_dealers:[ 2 ] ~seed:77 ~pool ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "randgen value domains=%d" domains)
        true
        (F.equal base.Randgen.value o.Randgen.value);
      Alcotest.(check int)
        (Printf.sprintf "qualified dealers domains=%d" domains)
        base.Randgen.qualified_dealers o.Randgen.qualified_dealers)
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* multiexp-backed combine and batch verification                      *)
(* ------------------------------------------------------------------ *)

let test_combine_backends_agree () =
  let rng = Random.State.make [| 0x7E57C0 |] in
  let tpk, shares = Threshold.keygen ~bits:96 ~n:9 ~t:3 ~rng () in
  let ctx = Threshold.context tpk in
  List.iter
    (fun m ->
      let m = B.of_int m in
      let ct = Threshold.Ctx.encrypt ctx ~rng m in
      let partials =
        Array.to_list (Array.map (fun s -> Threshold.Ctx.partial_decrypt ctx s ct) shares)
      in
      let multi = Threshold.Ctx.combine ctx partials in
      let powmods = Threshold.Ctx.combine_powmods ctx partials in
      let reference = Threshold.Reference.combine tpk partials in
      Alcotest.(check string) "multiexp == per-partial powmods" (B.to_string powmods)
        (B.to_string multi);
      Alcotest.(check string) "multiexp == naive reference" (B.to_string reference)
        (B.to_string multi))
    [ 0; 1; 42; 987654 ]

let test_combine_after_reshare () =
  (* epoch-1 partials exercise negative and Delta-grown weights through
     the multiexp path *)
  let rng = Random.State.make [| 0xE70C |] in
  let tpk, shares = Threshold.keygen ~bits:96 ~n:5 ~t:2 ~rng () in
  let ctx = Threshold.context tpk in
  let resharings = Array.map (fun s -> Threshold.reshare tpk s ~rng) shares in
  let next =
    Array.init 5 (fun j ->
        Threshold.recombine_share tpk ~index:(j + 1) ~epoch:1
          (List.init 5 (fun i -> (i + 1, resharings.(i).(j)))))
  in
  let m = B.of_int 31337 in
  let ct = Threshold.Ctx.encrypt ctx ~rng m in
  let partials =
    Array.to_list (Array.map (fun s -> Threshold.Ctx.partial_decrypt ctx s ct) next)
  in
  Alcotest.(check string) "epoch-1 combine" (B.to_string m)
    (B.to_string (Threshold.Ctx.combine ctx partials));
  Alcotest.(check string) "epoch-1 combine_powmods agrees"
    (B.to_string (Threshold.Ctx.combine_powmods ctx partials))
    (B.to_string (Threshold.Ctx.combine ctx partials))

let test_feldman_batch_verify () =
  let rng = Random.State.make [| 0xFE1D7 |] in
  for trial = 0 to 9 do
    let n = 6 + (trial mod 5) and t = 2 + (trial mod 3) in
    let d = Feldman.deal ~t ~n ~secret:(F.random rng) ~rng in
    Alcotest.(check bool) "good dealing: batch accepts" true (Feldman.verify_dealing ~n d);
    Alcotest.(check bool) "good dealing: per-share accepts" true
      (Feldman.verify_dealing_each ~n d);
    Alcotest.(check bool) "good dealing: explicit rng accepts" true
      (Feldman.verify_dealing ~rng ~n d);
    (* corrupt one share: both paths must reject *)
    let bad_shares = Array.copy d.Feldman.shares in
    let victim = trial mod n in
    bad_shares.(victim) <- F.add bad_shares.(victim) F.one;
    let bad = { d with Feldman.shares = bad_shares } in
    Alcotest.(check bool) "bad dealing: batch rejects" false (Feldman.verify_dealing ~n bad);
    Alcotest.(check bool) "bad dealing: per-share rejects" false
      (Feldman.verify_dealing_each ~n bad);
    Alcotest.(check bool) "bad dealing: explicit rng rejects" false
      (Feldman.verify_dealing ~rng ~n bad)
  done;
  (* wrong share count and empty commitment are structural rejects *)
  let d = Feldman.deal ~t:2 ~n:5 ~secret:F.one ~rng in
  Alcotest.(check bool) "wrong n" false (Feldman.verify_dealing ~n:6 d);
  Alcotest.(check bool) "empty commitment" false
    (Feldman.verify_dealing ~n:5 { d with Feldman.commitment = [||] })

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "each index once" `Quick test_map_calls_each_index_once;
          Alcotest.test_case "map_reduce in order" `Quick test_map_reduce_non_associative;
          Alcotest.test_case "iter fills slots" `Quick test_iter_fills_slots;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "derive_rng deterministic" `Quick test_derive_rng_deterministic;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "protocol identical across domains" `Slow
            test_protocol_identical_across_domains;
          Alcotest.test_case "randgen identical across pools" `Quick
            test_randgen_identical_across_pools;
        ] );
      ( "multiexp paths",
        [
          Alcotest.test_case "combine backends agree" `Quick test_combine_backends_agree;
          Alcotest.test_case "combine after reshare" `Quick test_combine_after_reshare;
          Alcotest.test_case "feldman batch verify" `Quick test_feldman_batch_verify;
        ] );
    ]
