(* Determinism matrix for the worker pool and everything wired through
   it: the parallel primitives must be extensionally equal to their
   sequential specification, and a full protocol run — faults, blames,
   transcript digest, byte totals — must be byte-identical at every
   domain count. *)

module F = Yoso_field.Field.Fp
module Pool = Yoso_parallel.Pool
module B = Yoso_bigint.Bigint
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Randgen = Yoso_mpc.Randgen
module Gen = Yoso_circuit.Generators
module Faults = Yoso_runtime.Faults
module Feldman = Yoso_shamir.Feldman
module Threshold = Yoso_paillier.Threshold

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* pool primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_map_matches_sequential () =
  let f i = (i * i) + (i mod 7) in
  List.iter
    (fun domains ->
      List.iter
        (fun n ->
          let expected = Array.init n f in
          let got = with_pool ~domains (fun pool -> Pool.map pool n f) in
          Alcotest.(check (array int))
            (Printf.sprintf "map domains=%d n=%d" domains n)
            expected got)
        [ 0; 1; 2; 3; 7; 64; 1000 ])
    [ 1; 2; 4; 8 ]

let test_map_calls_each_index_once () =
  List.iter
    (fun domains ->
      let n = 257 in
      let counts = Array.make n 0 in
      let mutex = Mutex.create () in
      ignore
        (with_pool ~domains (fun pool ->
             Pool.map pool n (fun i ->
                 Mutex.protect mutex (fun () -> counts.(i) <- counts.(i) + 1))));
      Array.iteri
        (fun i c ->
          Alcotest.(check int) (Printf.sprintf "domains=%d index %d" domains i) 1 c)
        counts)
    [ 1; 3; 8 ]

let test_map_reduce_non_associative () =
  (* subtraction is not associative or commutative: only a sequential
     in-order fold gives this value *)
  let n = 101 in
  let expected = List.fold_left (fun acc i -> (2 * acc) - i) 1 (List.init n Fun.id) in
  List.iter
    (fun domains ->
      let got =
        with_pool ~domains (fun pool ->
            Pool.map_reduce pool n ~map:Fun.id ~reduce:(fun acc i -> (2 * acc) - i) ~init:1)
      in
      Alcotest.(check int) (Printf.sprintf "domains=%d" domains) expected got)
    [ 1; 2; 4 ]

let test_iter_fills_slots () =
  let n = 500 in
  List.iter
    (fun domains ->
      let slots = Array.make n (-1) in
      with_pool ~domains (fun pool -> Pool.iter pool n (fun i -> slots.(i) <- 3 * i));
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" domains)
        (Array.init n (fun i -> 3 * i))
        slots)
    [ 1; 4 ]

let test_empty_job_is_inert () =
  (* size 0 must not build a job, wake a worker, or call f; the pool
     stays fully usable afterwards *)
  with_pool ~domains:4 (fun pool ->
      let called = Atomic.make 0 in
      let r = Pool.map pool 0 (fun _ -> Atomic.incr called) in
      Alcotest.(check int) "empty result" 0 (Array.length r);
      Alcotest.(check int) "f never called" 0 (Atomic.get called);
      Alcotest.(check int) "no chunks for n=0" 0
        (Array.length (Pool.chunk_bounds pool 0));
      (* with profiling on, an empty job leaves no trace: no chunk was
         created so no sample can be recorded *)
      Pool.set_profiling true;
      Fun.protect
        ~finally:(fun () -> Pool.set_profiling false)
        (fun () ->
          ignore (Pool.drain_profile ());
          ignore (Pool.map pool 0 (fun i -> i));
          Pool.iter pool 0 (fun _ -> ());
          Alcotest.(check int) "no profile samples" 0
            (List.length (Pool.drain_profile ())));
      Alcotest.(check (array int)) "pool usable after empty jobs"
        (Array.init 8 Fun.id) (Pool.map pool 8 Fun.id))

let test_fewer_items_than_domains () =
  (* surplus workers must sleep through the job, not spin or deadlock:
     every index still runs exactly once and the call returns *)
  List.iter
    (fun (n, domains) ->
      let got = with_pool ~domains (fun pool -> Pool.map pool n (fun i -> 10 * i)) in
      Alcotest.(check (array int))
        (Printf.sprintf "n=%d domains=%d" n domains)
        (Array.init n (fun i -> 10 * i))
        got)
    [ (1, 8); (2, 8); (3, 4); (5, 8); (7, 8) ];
  (* chunk layout never exceeds the item count *)
  with_pool ~domains:8 (fun pool ->
      List.iter
        (fun n ->
          Alcotest.(check int)
            (Printf.sprintf "chunks for n=%d" n)
            n
            (Array.length (Pool.chunk_bounds pool n));
          Alcotest.(check bool)
            (Printf.sprintf "cost chunks for n=%d" n)
            true
            (Array.length (Pool.chunk_bounds ~cost:(fun _ -> 1) pool n) <= n))
        [ 1; 2; 5; 7 ])

let test_cost_hint_identical_results () =
  (* the hint may only move chunk boundaries — the value of every index
     is pinned by the pre-sized result array, so any cost profile must
     produce the same output as no hint at all *)
  let n = 257 in
  let f i = (i * 31) mod 101 in
  let expected = Array.init n f in
  let costs =
    [
      ("uniform", fun _ -> 1);
      ("sawtooth", fun i -> 1 + (i mod 13));
      ("front-loaded", fun i -> if i < 16 then 100 else 1);
      ("increasing", fun i -> i) (* i = 0 exercises the >= 1 clamp *);
      ("huge", fun _ -> max_int / (2 * 257)) (* near-overflow weights *);
    ]
  in
  List.iter
    (fun domains ->
      List.iter
        (fun (name, cost) ->
          let got = with_pool ~domains (fun pool -> Pool.map ~cost pool n f) in
          Alcotest.(check (array int))
            (Printf.sprintf "%s domains=%d" name domains)
            expected got)
        costs)
    [ 1; 2; 4; 8 ]

let test_chunk_bounds_properties () =
  (* for every (n, domains, cost): chunks are non-empty, contiguous,
     cover [0, n-1] exactly, respect the count cap, and are
     deterministic *)
  let costs =
    [ None; Some (fun _ -> 1); Some (fun i -> 1 + (i mod 7));
      Some (fun i -> if i = 0 then 1000 else 1) ]
  in
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          List.iter
            (fun n ->
              List.iteri
                (fun ci cost ->
                  let bounds =
                    match cost with
                    | None -> Pool.chunk_bounds pool n
                    | Some c -> Pool.chunk_bounds ~cost:c pool n
                  in
                  let label fmt =
                    Printf.sprintf "n=%d domains=%d cost#%d %s" n domains ci fmt
                  in
                  let cap =
                    match cost with
                    | None -> min domains n
                    | Some _ -> min n (4 * domains)
                  in
                  Alcotest.(check bool) (label "count cap") true
                    (Array.length bounds <= cap);
                  if n > 0 then begin
                    Alcotest.(check int) (label "starts at 0") 0 (fst bounds.(0));
                    Alcotest.(check int) (label "ends at n-1") (n - 1)
                      (snd bounds.(Array.length bounds - 1))
                  end;
                  Array.iteri
                    (fun k (lo, hi) ->
                      Alcotest.(check bool) (label "non-empty") true (lo <= hi);
                      if k > 0 then
                        Alcotest.(check int) (label "contiguous")
                          (snd bounds.(k - 1) + 1)
                          lo)
                    bounds;
                  let again =
                    match cost with
                    | None -> Pool.chunk_bounds pool n
                    | Some c -> Pool.chunk_bounds ~cost:c pool n
                  in
                  Alcotest.(check bool) (label "deterministic") true (bounds = again))
                costs)
            [ 0; 1; 2; 3; 7; 64; 129 ]))
    [ 1; 2; 4; 8 ];
  (* weighted cutting actually shifts boundaries: when the first half
     of the indices carries ~10x the weight, the chunk holding index 0
     must span fewer indices than the chunk holding index n-1 *)
  with_pool ~domains:4 (fun pool ->
      let n = 128 in
      let bounds = Pool.chunk_bounds ~cost:(fun i -> if i < n / 2 then 9 else 1) pool n in
      let span (lo, hi) = hi - lo + 1 in
      Alcotest.(check bool) "heavy region gets shorter chunks" true
        (span bounds.(0) < span bounds.(Array.length bounds - 1)))

let test_profiling_hook () =
  Pool.set_profiling false;
  ignore (Pool.drain_profile ());
  with_pool ~domains:4 (fun pool ->
      (* off by default: a parallel job records nothing *)
      ignore (Pool.map pool 64 Fun.id);
      Alcotest.(check int) "off: no samples" 0 (List.length (Pool.drain_profile ()));
      Pool.set_profiling true;
      Fun.protect
        ~finally:(fun () -> Pool.set_profiling false)
        (fun () ->
          ignore (Pool.map pool 64 (fun i -> 2 * i));
          let samples = Pool.drain_profile () in
          let nchunks = Array.length (Pool.chunk_bounds pool 64) in
          Alcotest.(check int) "one sample per chunk" nchunks (List.length samples);
          let seen = Array.make nchunks false in
          List.iter
            (fun (d, c, ms) ->
              Alcotest.(check bool) "domain in range" true (d >= 0 && d < 4);
              Alcotest.(check bool) "chunk in range" true (c >= 0 && c < nchunks);
              Alcotest.(check bool) "duration non-negative" true (ms >= 0.0);
              seen.(c) <- true)
            samples;
          Alcotest.(check bool) "every chunk sampled" true
            (Array.for_all Fun.id seen);
          Alcotest.(check int) "drain clears" 0 (List.length (Pool.drain_profile ()))))

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun domains ->
      match
        with_pool ~domains (fun pool ->
            Pool.map pool 64 (fun i -> if i = 41 then raise (Boom i) else i))
      with
      | _ -> Alcotest.failf "domains=%d: exception swallowed" domains
      | exception Boom 41 -> ()
      | exception e ->
        Alcotest.failf "domains=%d: wrong exception %s" domains (Printexc.to_string e))
    [ 1; 2; 8 ];
  (* the pool survives a failed map *)
  with_pool ~domains:4 (fun pool ->
      (try ignore (Pool.map pool 16 (fun i -> if i = 3 then raise (Boom i) else i))
       with Boom _ -> ());
      Alcotest.(check (array int)) "usable after failure" (Array.init 16 Fun.id)
        (Pool.map pool 16 Fun.id))

let test_create_validation () =
  Alcotest.check_raises "domains = 0" (Invalid_argument "Pool.create: domains must be in [1, 128]")
    (fun () -> ignore (Pool.create ~domains:0));
  Alcotest.check_raises "domains = 129" (Invalid_argument "Pool.create: domains must be in [1, 128]")
    (fun () -> ignore (Pool.create ~domains:129));
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

let test_derive_rng_deterministic () =
  let a = Pool.derive_rng ~seed:42 7 in
  let b = Pool.derive_rng ~seed:42 7 in
  let draws st = Array.init 16 (fun _ -> Random.State.bits st) in
  Alcotest.(check (array int)) "same (seed, i), same stream" (draws a) (draws b);
  let c = Pool.derive_rng ~seed:42 8 in
  let d = Pool.derive_rng ~seed:43 7 in
  Alcotest.(check bool) "distinct index, distinct stream" false (draws a = draws c);
  Alcotest.(check bool) "distinct seed, distinct stream" false (draws b = draws d)

(* ------------------------------------------------------------------ *)
(* protocol determinism across domain counts                           *)
(* ------------------------------------------------------------------ *)

let protocol_report ~domains =
  let params = Params.create ~n:32 ~t:10 ~k:6 () in
  let circuit = Gen.dot_product ~len:6 in
  let inputs c = Array.init 6 (fun i -> F.of_int ((c + 2) * (i + 5))) in
  let adversary = { Params.malicious = 6; passive = 0; fail_stop = 2 } in
  let config = Protocol.config ~adversary ~seed:0x9A7 ~domains () in
  let r = Protocol.execute ~params ~config ~circuit ~inputs () in
  Alcotest.(check bool)
    (Printf.sprintf "domains=%d delivers correct output" domains)
    true
    (Protocol.check r circuit ~inputs);
  r

let test_protocol_identical_across_domains () =
  let base = protocol_report ~domains:1 in
  Alcotest.(check bool) "faults are actually exercised" true (base.Protocol.faults_detected > 0);
  List.iter
    (fun domains ->
      let r = protocol_report ~domains in
      Alcotest.(check string)
        (Printf.sprintf "report domains=%d == domains=1" domains)
        (Protocol.report_json base) (Protocol.report_json r);
      Alcotest.(check int)
        (Printf.sprintf "offline bytes domains=%d" domains)
        base.Protocol.offline_bytes r.Protocol.offline_bytes;
      Alcotest.(check int)
        (Printf.sprintf "online bytes domains=%d" domains)
        base.Protocol.online_bytes r.Protocol.online_bytes;
      Alcotest.(check int)
        (Printf.sprintf "transcript digest domains=%d" domains)
        base.Protocol.transcript.Yoso_net.Board.digest
        r.Protocol.transcript.Yoso_net.Board.digest)
    [ 2; 4 ]

let test_randgen_identical_across_pools () =
  let base = Randgen.run ~n:10 ~t:3 ~malicious_dealers:[ 2 ] ~seed:77 () in
  List.iter
    (fun domains ->
      let o =
        with_pool ~domains (fun pool ->
            Randgen.run ~n:10 ~t:3 ~malicious_dealers:[ 2 ] ~seed:77 ~pool ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "randgen value domains=%d" domains)
        true
        (F.equal base.Randgen.value o.Randgen.value);
      Alcotest.(check int)
        (Printf.sprintf "qualified dealers domains=%d" domains)
        base.Randgen.qualified_dealers o.Randgen.qualified_dealers)
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* multiexp-backed combine and batch verification                      *)
(* ------------------------------------------------------------------ *)

let test_combine_backends_agree () =
  let rng = Random.State.make [| 0x7E57C0 |] in
  let tpk, shares = Threshold.keygen ~bits:96 ~n:9 ~t:3 ~rng () in
  let ctx = Threshold.context tpk in
  List.iter
    (fun m ->
      let m = B.of_int m in
      let ct = Threshold.Ctx.encrypt ctx ~rng m in
      let partials =
        Array.to_list (Array.map (fun s -> Threshold.Ctx.partial_decrypt ctx s ct) shares)
      in
      let multi = Threshold.Ctx.combine ctx partials in
      let powmods = Threshold.Ctx.combine_powmods ctx partials in
      let reference = Threshold.Reference.combine tpk partials in
      Alcotest.(check string) "multiexp == per-partial powmods" (B.to_string powmods)
        (B.to_string multi);
      Alcotest.(check string) "multiexp == naive reference" (B.to_string reference)
        (B.to_string multi))
    [ 0; 1; 42; 987654 ]

let test_combine_after_reshare () =
  (* epoch-1 partials exercise negative and Delta-grown weights through
     the multiexp path *)
  let rng = Random.State.make [| 0xE70C |] in
  let tpk, shares = Threshold.keygen ~bits:96 ~n:5 ~t:2 ~rng () in
  let ctx = Threshold.context tpk in
  let resharings = Array.map (fun s -> Threshold.reshare tpk s ~rng) shares in
  let next =
    Array.init 5 (fun j ->
        Threshold.recombine_share tpk ~index:(j + 1) ~epoch:1
          (List.init 5 (fun i -> (i + 1, resharings.(i).(j)))))
  in
  let m = B.of_int 31337 in
  let ct = Threshold.Ctx.encrypt ctx ~rng m in
  let partials =
    Array.to_list (Array.map (fun s -> Threshold.Ctx.partial_decrypt ctx s ct) next)
  in
  Alcotest.(check string) "epoch-1 combine" (B.to_string m)
    (B.to_string (Threshold.Ctx.combine ctx partials));
  Alcotest.(check string) "epoch-1 combine_powmods agrees"
    (B.to_string (Threshold.Ctx.combine_powmods ctx partials))
    (B.to_string (Threshold.Ctx.combine ctx partials))

let test_feldman_batch_verify () =
  let rng = Random.State.make [| 0xFE1D7 |] in
  for trial = 0 to 9 do
    let n = 6 + (trial mod 5) and t = 2 + (trial mod 3) in
    let d = Feldman.deal ~t ~n ~secret:(F.random rng) ~rng in
    Alcotest.(check bool) "good dealing: batch accepts" true (Feldman.verify_dealing ~n d);
    Alcotest.(check bool) "good dealing: per-share accepts" true
      (Feldman.verify_dealing_each ~n d);
    Alcotest.(check bool) "good dealing: explicit rng accepts" true
      (Feldman.verify_dealing ~rng ~n d);
    (* corrupt one share: both paths must reject *)
    let bad_shares = Array.copy d.Feldman.shares in
    let victim = trial mod n in
    bad_shares.(victim) <- F.add bad_shares.(victim) F.one;
    let bad = { d with Feldman.shares = bad_shares } in
    Alcotest.(check bool) "bad dealing: batch rejects" false (Feldman.verify_dealing ~n bad);
    Alcotest.(check bool) "bad dealing: per-share rejects" false
      (Feldman.verify_dealing_each ~n bad);
    Alcotest.(check bool) "bad dealing: explicit rng rejects" false
      (Feldman.verify_dealing ~rng ~n bad)
  done;
  (* wrong share count and empty commitment are structural rejects *)
  let d = Feldman.deal ~t:2 ~n:5 ~secret:F.one ~rng in
  Alcotest.(check bool) "wrong n" false (Feldman.verify_dealing ~n:6 d);
  Alcotest.(check bool) "empty commitment" false
    (Feldman.verify_dealing ~n:5 { d with Feldman.commitment = [||] })

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "each index once" `Quick test_map_calls_each_index_once;
          Alcotest.test_case "map_reduce in order" `Quick test_map_reduce_non_associative;
          Alcotest.test_case "iter fills slots" `Quick test_iter_fills_slots;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "derive_rng deterministic" `Quick test_derive_rng_deterministic;
          Alcotest.test_case "empty job is inert" `Quick test_empty_job_is_inert;
          Alcotest.test_case "fewer items than domains" `Quick
            test_fewer_items_than_domains;
          Alcotest.test_case "cost hint identical results" `Quick
            test_cost_hint_identical_results;
          Alcotest.test_case "chunk bounds properties" `Quick
            test_chunk_bounds_properties;
          Alcotest.test_case "profiling hook" `Quick test_profiling_hook;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "protocol identical across domains" `Slow
            test_protocol_identical_across_domains;
          Alcotest.test_case "randgen identical across pools" `Quick
            test_randgen_identical_across_pools;
        ] );
      ( "multiexp paths",
        [
          Alcotest.test_case "combine backends agree" `Quick test_combine_backends_agree;
          Alcotest.test_case "combine after reshare" `Quick test_combine_after_reshare;
          Alcotest.test_case "feldman batch verify" `Quick test_feldman_batch_verify;
        ] );
    ]
