module F = Yoso_field.Field.Fp
module C = Yoso_circuit.Circuit
module Builder = Yoso_circuit.Builder
module Layout = Yoso_circuit.Layout
module Gen = Yoso_circuit.Generators
module Eval = Yoso_circuit.Circuit.Eval (Yoso_field.Field.Fp)

let st = Random.State.make [| 0xC1 |]
let felt = Alcotest.testable F.pp F.equal

let const_inputs assoc client = Array.of_list (List.map F.of_int (List.assoc client assoc))

(* ------------------------------------------------------------------ *)
(* Builder + eval basics                                               *)
(* ------------------------------------------------------------------ *)

let test_simple_add_mul () =
  let b = Builder.create () in
  let x = Builder.input b ~client:0 in
  let y = Builder.input b ~client:1 in
  let s = Builder.add b x y in
  let p = Builder.mul b x y in
  let r = Builder.mul b s p in
  Builder.output b ~client:0 r;
  let c = Builder.build b in
  (* (x + y) * (x * y) with x=3, y=4 -> 7 * 12 = 84 *)
  let outs = Eval.run c ~inputs:(const_inputs [ (0, [ 3 ]); (1, [ 4 ]) ]) in
  Alcotest.(check (list (pair int felt))) "output" [ (0, F.of_int 84) ] outs

let test_stats () =
  let c = Gen.wide_mul ~width:4 ~depth:3 ~clients:2 in
  Alcotest.(check int) "mul count" 12 (C.num_mul c);
  Alcotest.(check int) "depth" 3 (C.depth c);
  Alcotest.(check int) "width" 4 (C.mult_width c);
  Alcotest.(check int) "inputs" 8 (C.num_inputs c);
  Alcotest.(check int) "outputs" 4 (C.num_outputs c)

let test_builder_reuse_rejected () =
  let b = Builder.create () in
  let x = Builder.input b ~client:0 in
  Builder.output b ~client:0 x;
  ignore (Builder.build b);
  Alcotest.check_raises "reuse" (Invalid_argument "Builder: already built") (fun () ->
      ignore (Builder.input b ~client:0))

let test_validation () =
  Alcotest.check_raises "use before define"
    (Invalid_argument "Circuit: wire 1 used before definition") (fun () ->
      ignore
        (C.of_gates
           [| C.Input { client = 0; wire = 0 }; C.Add { a = 0; b = 1; out = 2 } |]));
  Alcotest.check_raises "double define"
    (Invalid_argument "Circuit: wire 0 defined twice") (fun () ->
      ignore
        (C.of_gates
           [| C.Input { client = 0; wire = 0 }; C.Input { client = 1; wire = 0 } |]))

let test_sum_product_trees () =
  let b = Builder.create () in
  let ws = List.init 7 (fun _ -> Builder.input b ~client:0) in
  let s = Builder.sum b ws in
  let p = Builder.product b ws in
  Builder.output b ~client:0 s;
  Builder.output b ~client:0 p;
  let c = Builder.build b in
  let inputs _ = Array.of_list (List.map F.of_int [ 1; 2; 3; 4; 5; 6; 7 ]) in
  (match Eval.run c ~inputs with
  | [ (_, s'); (_, p') ] ->
    Alcotest.check felt "sum" (F.of_int 28) s';
    Alcotest.check felt "product" (F.of_int 5040) p'
  | _ -> Alcotest.fail "expected two outputs");
  (* product tree is balanced: depth log2(7) = 3 *)
  Alcotest.(check int) "balanced depth" 3 (C.depth c)

(* stats edge cases: circuits with no multiplication layer at all *)
let test_stats_add_only () =
  let b = Builder.create () in
  let x = Builder.input b ~client:0 in
  let y = Builder.input b ~client:1 in
  let s = Builder.add b (Builder.add b x y) y in
  Builder.output b ~client:0 s;
  let c = Builder.build b in
  Alcotest.(check int) "depth" 0 (C.depth c);
  Alcotest.(check int) "mult width" 0 (C.mult_width c);
  Alcotest.(check int) "muls" 0 (C.num_mul c);
  Alcotest.(check int) "adds" 2 (C.num_add c)

let test_stats_input_output_only () =
  let b = Builder.create () in
  let x = Builder.input b ~client:0 in
  Builder.output b ~client:1 x;
  Builder.output b ~client:2 x;
  let c = Builder.build b in
  Alcotest.(check int) "depth" 0 (C.depth c);
  Alcotest.(check int) "mult width" 0 (C.mult_width c);
  Alcotest.(check int) "size" 3 (C.size c);
  Alcotest.(check (list int)) "clients" [ 0; 1; 2 ] (C.clients c);
  Alcotest.(check (list (pair int felt)))
    "passthrough" [ (1, F.of_int 9); (2, F.of_int 9) ]
    (Eval.run c ~inputs:(const_inputs [ (0, [ 9 ]) ]))

let test_constant_wire_memoized () =
  let b = Builder.create () in
  let x = Builder.input b ~client:0 in
  let c1 = Builder.constant_wire b ~client:3 5 in
  let c2 = Builder.constant_wire b ~client:3 5 in
  let c3 = Builder.constant_wire b ~client:3 7 in
  Alcotest.(check int) "same value -> same wire" c1 c2;
  Alcotest.(check bool) "distinct value -> distinct wire" true (c1 <> c3);
  Builder.output b ~client:0 (Builder.mul b x (Builder.add b c1 c3));
  let c = Builder.build b in
  Alcotest.(check (list (pair int int)))
    "constants in first-use order" [ (3, 5); (3, 7) ] (Builder.constants b);
  (* one input gate per distinct constant, in gate order *)
  Alcotest.(check int) "inputs" 3 (C.num_inputs c);
  let outs =
    Eval.run c ~inputs:(const_inputs [ (0, [ 2 ]); (3, [ 5; 7 ]) ])
  in
  Alcotest.(check (list (pair int felt))) "2*(5+7)" [ (0, F.of_int 24) ] outs

let test_builder_sub () =
  let b = Builder.create () in
  let x = Builder.input b ~client:0 in
  let y = Builder.input b ~client:1 in
  Builder.output b ~client:0 (Builder.sub b ~const_client:2 x y);
  Builder.output b ~client:0 (Builder.sub b ~const_client:2 y x);
  let c = Builder.build b in
  (* both subtractions share the one memoized -1 wire *)
  Alcotest.(check (list (pair int int))) "one -1" [ (2, -1) ] (Builder.constants b);
  let outs =
    Eval.run c ~inputs:(const_inputs [ (0, [ 11 ]); (1, [ 4 ]); (2, [ -1 ]) ])
  in
  Alcotest.(check (list (pair int felt)))
    "11-4 and 4-11" [ (0, F.of_int 7); (0, F.of_int (-7)) ] outs

(* ------------------------------------------------------------------ *)
(* Generators compute the right functions                              *)
(* ------------------------------------------------------------------ *)

let test_dot_product () =
  let len = 9 in
  let c = Gen.dot_product ~len in
  let xs = Array.init len (fun _ -> F.random st) in
  let ys = Array.init len (fun _ -> F.random st) in
  let inputs = function 0 -> xs | _ -> ys in
  let expected = F.dot xs ys in
  List.iter (fun (_, v) -> Alcotest.check felt "dot" expected v) (Eval.run c ~inputs)

let test_poly_eval () =
  let degree = 6 in
  let c = Gen.poly_eval ~degree in
  let coeffs = Array.init (degree + 1) (fun _ -> F.random st) in
  let x = F.random st in
  let inputs = function 0 -> coeffs | _ -> [| x |] in
  let expected = ref F.zero in
  for i = degree downto 0 do
    expected := F.add (F.mul !expected x) coeffs.(i)
  done;
  (match Eval.run c ~inputs with
  | [ (1, v) ] -> Alcotest.check felt "poly" !expected v
  | _ -> Alcotest.fail "expected one output to client 1");
  Alcotest.(check int) "depth = degree" degree (C.depth c)

let test_variance_numerator () =
  let parties = 5 in
  let c = Gen.variance_numerator ~parties in
  let data = [| 3; 1; 4; 1; 5 |] in
  let inputs client =
    if client = 0 then [| F.of_int data.(0); F.of_int parties; F.of_int (-1) |]
    else [| F.of_int data.(client) |]
  in
  let sum = Array.fold_left ( + ) 0 data in
  let sumsq = Array.fold_left (fun a x -> a + (x * x)) 0 data in
  let expected = F.of_int ((parties * sumsq) - (sum * sum)) in
  let outs = Eval.run c ~inputs in
  Alcotest.(check int) "all parties get output" parties (List.length outs);
  List.iter (fun (_, v) -> Alcotest.check felt "variance" expected v) outs

let test_matrix_vector () =
  let rows = 3 and cols = 4 in
  let c = Gen.matrix_vector ~rows ~cols in
  let m = Array.init (rows * cols) (fun i -> F.of_int (i + 1)) in
  let v = Array.init cols (fun i -> F.of_int (i + 10)) in
  let inputs = function 0 -> m | _ -> v in
  let outs = Eval.run c ~inputs in
  Alcotest.(check int) "rows outputs" rows (List.length outs);
  List.iteri
    (fun r (_, got) ->
      let expected = ref F.zero in
      for j = 0 to cols - 1 do
        expected := F.add !expected (F.mul m.((r * cols) + j) v.(j))
      done;
      Alcotest.check felt "row" !expected got)
    outs

let test_random_dag_deterministic () =
  let c1 = Gen.random_dag ~gates:50 ~clients:3 ~mul_fraction:0.5 ~seed:7 in
  let c2 = Gen.random_dag ~gates:50 ~clients:3 ~mul_fraction:0.5 ~seed:7 in
  let c3 = Gen.random_dag ~gates:50 ~clients:3 ~mul_fraction:0.5 ~seed:8 in
  Alcotest.(check int) "same size" (C.size c1) (C.size c2);
  let run c = Eval.run c ~inputs:(fun cl -> [| F.of_int (cl + 2); F.of_int (cl + 5) |]) in
  Alcotest.(check bool) "same outputs" true (run c1 = run c2);
  Alcotest.(check bool) "seed matters (size or outputs differ)" true
    (C.size c1 <> C.size c3 || run c1 <> run c3)

let test_random_dag_mul_fraction () =
  let c = Gen.random_dag ~gates:200 ~clients:2 ~mul_fraction:1.0 ~seed:1 in
  Alcotest.(check int) "all muls" 200 (C.num_mul c);
  let c0 = Gen.random_dag ~gates:200 ~clients:2 ~mul_fraction:0.0 ~seed:1 in
  Alcotest.(check int) "no muls" 0 (C.num_mul c0)

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let test_layout_batching () =
  let width = 10 and depth = 3 in
  let c = Gen.wide_mul ~width ~depth ~clients:2 in
  let k = 4 in
  let l = Layout.make c ~k in
  (* ceil(10/4) = 3 batches per layer, 3 layers *)
  Alcotest.(check int) "num batches" 9 (Layout.num_mult_batches l);
  List.iter
    (fun b ->
      Alcotest.(check bool) "batch size in [1,k]" true
        (Array.length b.Layout.mult_gates >= 1 && Array.length b.Layout.mult_gates <= k))
    (Layout.batches_of_layer l 1);
  Alcotest.(check int) "layer 1 batches" 3 (List.length (Layout.batches_of_layer l 1));
  Alcotest.(check (list int)) "no layer 4" [] (List.map (fun b -> b.Layout.layer) (Layout.batches_of_layer l 4))

let test_layout_covers_all_gates () =
  let c = Gen.random_dag ~gates:120 ~clients:3 ~mul_fraction:0.6 ~seed:3 in
  let l = Layout.make c ~k:5 in
  let total =
    Array.fold_left
      (fun acc batches ->
        acc + List.fold_left (fun a b -> a + Array.length b.Layout.mult_gates) 0 batches)
      0 l.Layout.mult_layers
  in
  Alcotest.(check int) "every mult gate in exactly one batch" (C.num_mul c) total

let test_layout_input_batches () =
  let c = Gen.dot_product ~len:7 in
  let l = Layout.make c ~k:3 in
  (* each client has 7 inputs -> 3 batches each *)
  Alcotest.(check int) "input batches" 6 (Layout.num_input_batches l);
  let sizes = List.map (fun (_, ws) -> Array.length ws) l.Layout.input_batches in
  Alcotest.(check (list int)) "sizes" [ 3; 3; 1; 3; 3; 1 ] sizes

let test_layout_pad () =
  let c = Gen.dot_product ~len:2 in
  let l = Layout.make c ~k:4 in
  Alcotest.(check (array int)) "padding" [| 5; 6; 0; 0 |] (Layout.pad_to_k l [| 5; 6 |] 0);
  Alcotest.check_raises "too long" (Invalid_argument "Layout.pad_to_k: batch longer than k")
    (fun () -> ignore (Layout.pad_to_k l [| 1; 2; 3; 4; 5 |] 0))

let test_layout_bad_k () =
  let c = Gen.dot_product ~len:2 in
  Alcotest.check_raises "k = 0" (Invalid_argument "Layout.make: k must be >= 1") (fun () ->
      ignore (Layout.make c ~k:0))

let test_layout_layers_respect_dependencies () =
  (* every mult gate's operands must have depth < the gate's layer *)
  let c = Gen.random_dag ~gates:150 ~clients:2 ~mul_fraction:0.5 ~seed:11 in
  let l = Layout.make c ~k:6 in
  Array.iter
    (List.iter (fun b ->
         Array.iter
           (fun (a, b', _) ->
             Alcotest.(check bool) "deps earlier" true
               (l.Layout.depths.(a) < b.Layout.layer && l.Layout.depths.(b') < b.Layout.layer))
           b.Layout.mult_gates))
    l.Layout.mult_layers

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

module Serial = Yoso_circuit.Serial

let test_serial_roundtrip () =
  List.iter
    (fun c ->
      let c' = Serial.of_string (Serial.to_string c) in
      Alcotest.(check int) "same size" (C.size c) (C.size c');
      (* same function: evaluate both on the same inputs *)
      let inputs cl = Array.init 64 (fun i -> F.of_int ((cl + 2) * (i + 1))) in
      Alcotest.(check bool) "same outputs" true (Eval.run c ~inputs = Eval.run c' ~inputs))
    [
      Gen.dot_product ~len:5;
      Gen.wide_mul ~width:4 ~depth:2 ~clients:2;
      Gen.random_dag ~gates:40 ~clients:3 ~mul_fraction:0.5 ~seed:2;
    ]

let test_serial_comments_and_whitespace () =
  let text = "# a comment\n\n  input 0 0  # trailing\ninput 1 1\n\tmul 0 1 2\noutput 0 2\n" in
  let c = Serial.of_string text in
  Alcotest.(check int) "gates" 4 (C.size c);
  let inputs cl = [| F.of_int (cl + 3) |] in
  Alcotest.(check (list (pair int felt))) "evaluates" [ (0, F.of_int 12) ] (Eval.run c ~inputs)

let test_serial_errors () =
  Alcotest.check_raises "bad op"
    (Invalid_argument "Circuit.Serial: line 1: unknown or malformed gate \"xor\"")
    (fun () -> ignore (Serial.of_string "xor 0 1 2"));
  Alcotest.check_raises "bad int"
    (Invalid_argument "Circuit.Serial: line 2: expected an integer, got \"x\"")
    (fun () -> ignore (Serial.of_string "input 0 0\nadd x 0 1"));
  (* semantic validation still applies *)
  Alcotest.check_raises "use before define"
    (Invalid_argument "Circuit: wire 5 used before definition") (fun () ->
      ignore (Serial.of_string "input 0 0\nadd 0 5 1"))

let test_serial_file_roundtrip () =
  let c = Gen.poly_eval ~degree:4 in
  let path = Filename.temp_file "yoso" ".circ" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.to_file path c;
      let c' = Serial.of_file path in
      Alcotest.(check int) "same size" (C.size c) (C.size c'))

let () =
  Alcotest.run "circuit"
    [
      ( "builder",
        [
          Alcotest.test_case "add/mul" `Quick test_simple_add_mul;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "reuse rejected" `Quick test_builder_reuse_rejected;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "sum/product trees" `Quick test_sum_product_trees;
          Alcotest.test_case "stats: add-only" `Quick test_stats_add_only;
          Alcotest.test_case "stats: input/output-only" `Quick test_stats_input_output_only;
          Alcotest.test_case "constant_wire memoized" `Quick test_constant_wire_memoized;
          Alcotest.test_case "sub" `Quick test_builder_sub;
        ] );
      ( "generators",
        [
          Alcotest.test_case "dot product" `Quick test_dot_product;
          Alcotest.test_case "poly eval" `Quick test_poly_eval;
          Alcotest.test_case "variance" `Quick test_variance_numerator;
          Alcotest.test_case "matrix-vector" `Quick test_matrix_vector;
          Alcotest.test_case "random dag deterministic" `Quick test_random_dag_deterministic;
          Alcotest.test_case "mul fraction" `Quick test_random_dag_mul_fraction;
        ] );
      ( "serial",
        [
          Alcotest.test_case "roundtrip" `Quick test_serial_roundtrip;
          Alcotest.test_case "comments" `Quick test_serial_comments_and_whitespace;
          Alcotest.test_case "errors" `Quick test_serial_errors;
          Alcotest.test_case "file roundtrip" `Quick test_serial_file_roundtrip;
        ] );
      ( "layout",
        [
          Alcotest.test_case "batching" `Quick test_layout_batching;
          Alcotest.test_case "covers all gates" `Quick test_layout_covers_all_gates;
          Alcotest.test_case "input batches" `Quick test_layout_input_batches;
          Alcotest.test_case "padding" `Quick test_layout_pad;
          Alcotest.test_case "bad k" `Quick test_layout_bad_k;
          Alcotest.test_case "dependencies" `Quick test_layout_layers_respect_dependencies;
        ] );
    ]
