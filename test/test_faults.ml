(* Chaos-style fault-injection suite: adversarial roles genuinely post
   tampered messages, and honest roles must detect, exclude, and still
   deliver — or abort with the structured failure, never a wrong
   output and never an uncaught exception from deep inside
   reconstruction. *)

module F = Yoso_field.Field.Fp
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Gen = Yoso_circuit.Generators
module Faults = Yoso_runtime.Faults
module Role = Yoso_runtime.Role

let params16 = Params.create ~n:16 ~t:5 ~k:3 ()

let circuit = Gen.dot_product ~len:5
let inputs c = Array.init 5 (fun i -> F.of_int ((c + 3) * (i + 1)))

let adv ~malicious ~fail_stop = { Params.malicious; passive = 0; fail_stop }

type outcome =
  | Delivered of Protocol.report
  | Wrong of Protocol.report
  | Aborted of Faults.failure
  | Crashed of exn

let run ?plan ?(validate = true) ?(seed = 0xFA_17) ~params adversary =
  let config = Protocol.config ~adversary ?plan ~validate ~seed () in
  match Protocol.execute ~params ~config ~circuit ~inputs () with
  | r -> if Protocol.check r circuit ~inputs then Delivered r else Wrong r
  | exception Faults.Protocol_failure f -> Aborted f
  | exception e -> Crashed e

let check_delivered name = function
  | Delivered r -> r
  | Wrong _ -> Alcotest.failf "%s: WRONG OUTPUT delivered" name
  | Aborted f -> Alcotest.failf "%s: aborted: %s" name (Faults.failure_to_string f)
  | Crashed e -> Alcotest.failf "%s: crashed: %s" name (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* every fault kind, injected on its own                               *)
(* ------------------------------------------------------------------ *)

let test_each_active_kind_detected () =
  List.iter
    (fun kind ->
      let name = Faults.kind_to_string kind in
      let r =
        check_delivered name
          (run ~plan:(Faults.always kind) ~params:params16 (adv ~malicious:5 ~fail_stop:0))
      in
      Alcotest.(check bool) (name ^ ": tampering detected") true (r.Protocol.faults_detected > 0);
      Alcotest.(check bool) (name ^ ": posts rejected") true (r.Protocol.posts_rejected > 0);
      List.iter
        (fun b ->
          Alcotest.(check string) (name ^ ": blame kind") name
            (Faults.kind_to_string b.Faults.kind))
        r.Protocol.blames)
    Faults.active_kinds

let test_silent_and_delayed_malicious () =
  (* a malicious role may also just crash (or post too late); nothing
     is on the board to reject, but the omission is still observed *)
  let silent =
    check_delivered "silent"
      (run ~plan:Faults.silent ~params:params16 (adv ~malicious:5 ~fail_stop:0))
  in
  Alcotest.(check int) "silent: nothing to reject" 0 silent.Protocol.posts_rejected;
  Alcotest.(check bool) "silent: omissions observed" true (silent.Protocol.faults_detected > 0);
  let delayed =
    check_delivered "delayed"
      (run ~plan:(Faults.always Faults.Delayed) ~params:params16 (adv ~malicious:5 ~fail_stop:0))
  in
  Alcotest.(check bool) "delayed posts are rejected" true (delayed.Protocol.posts_rejected > 0);
  (* delayed roles do post (past the deadline): the board carries more
     speak-once events than when the same roles stay silent *)
  Alcotest.(check bool) "late posts hit the board" true
    (delayed.Protocol.posts > silent.Protocol.posts)

(* ------------------------------------------------------------------ *)
(* chaos sweep inside the bound                                        *)
(* ------------------------------------------------------------------ *)

let sweep_params =
  [ ("n16", params16); ("n20-failstop-mode", Params.of_gap ~n:20 ~eps:0.2 ~fail_stop_mode:true ()) ]

let test_chaos_within_bounds () =
  List.iter
    (fun (pname, params) ->
      let t = params.Params.t in
      for seed = 1 to 15 do
        let malicious = seed mod (t + 1) in
        let headroom = Params.max_fail_stop params (adv ~malicious ~fail_stop:0) in
        let fail_stop = 3 * seed mod (headroom + 1) in
        let name = Printf.sprintf "%s seed=%d mal=%d fs=%d" pname seed malicious fail_stop in
        let r =
          check_delivered name
            (run
               ~plan:(Faults.random ~seed:(seed * 131))
               ~seed:(seed * 7) ~params (adv ~malicious ~fail_stop))
        in
        if malicious + fail_stop > 0 then
          Alcotest.(check bool) (name ^ ": faults detected") true
            (r.Protocol.faults_detected > 0);
        if malicious > 0 then
          (* the random plan always assigns malicious roles an active
             (tampering) kind, so something real was posted and thrown out *)
          Alcotest.(check bool) (name ^ ": tampered posts rejected") true
            (r.Protocol.posts_rejected > 0)
      done)
    sweep_params

(* ------------------------------------------------------------------ *)
(* chaos sweep just beyond the bound                                   *)
(* ------------------------------------------------------------------ *)

let expect_structured_abort name outcome =
  match outcome with
  | Aborted f ->
    Alcotest.(check bool) (name ^ ": shortfall reported") true (f.Faults.surviving < f.Faults.required)
  | Delivered _ -> Alcotest.failf "%s: delivered beyond the bound" name
  | Wrong _ -> Alcotest.failf "%s: WRONG OUTPUT beyond the bound" name
  | Crashed e ->
    Alcotest.failf "%s: uncaught %s instead of Protocol_failure" name (Printexc.to_string e)

let test_chaos_beyond_bounds () =
  List.iter
    (fun (pname, params) ->
      let n = params.Params.n and t = params.Params.t in
      let recon = Params.reconstruction_threshold params in
      let cases =
        [
          (* one silent role too many: online reconstruction starves *)
          (t, n - t - recon + 1);
          (* not even a decryption quorum of honest speakers *)
          (t, n - t - t);
          (* a committee beyond the malicious bound, plus crashes *)
          (t + 1, n - (t + 1) - recon + 1);
          (* everyone is corrupt *)
          (n, 0);
          (0, n);
        ]
      in
      List.iteri
        (fun i (malicious, fail_stop) ->
          if malicious + fail_stop <= n && fail_stop >= 0 then
            for seed = 1 to 3 do
              let name = Printf.sprintf "%s case=%d mal=%d fs=%d seed=%d" pname i malicious fail_stop seed in
              expect_structured_abort name
                (run ~validate:false
                   ~plan:(Faults.random ~seed:(seed * 977))
                   ~seed ~params (adv ~malicious ~fail_stop))
            done)
        cases)
    sweep_params

(* ------------------------------------------------------------------ *)
(* blame-list hygiene                                                  *)
(* ------------------------------------------------------------------ *)

let test_blame_list_bounded_per_committee () =
  let malicious = 4 and fail_stop = 2 in
  let r =
    check_delivered "blame"
      (run ~params:params16 { Params.malicious; passive = 1; fail_stop })
  in
  let per_committee = Hashtbl.create 32 in
  List.iter
    (fun b ->
      let c = b.Faults.role.Role.committee in
      let seen = Option.value ~default:[] (Hashtbl.find_opt per_committee c) in
      Alcotest.(check bool)
        (Printf.sprintf "role %s blamed once per committee" (Role.to_string b.Faults.role))
        false
        (List.mem b.Faults.role.Role.index seen);
      Hashtbl.replace per_committee c (b.Faults.role.Role.index :: seen))
    r.Protocol.blames;
  Hashtbl.iter
    (fun c indices ->
      Alcotest.(check bool)
        (Printf.sprintf "committee %s: %d blamed <= %d corrupted" c (List.length indices)
           (malicious + fail_stop))
        true
        (List.length indices <= malicious + fail_stop))
    per_committee;
  Alcotest.(check bool) "some committee blamed" true (Hashtbl.length per_committee > 0)

let test_report_counters_consistent () =
  let r =
    check_delivered "counters" (run ~params:params16 (adv ~malicious:3 ~fail_stop:2))
  in
  Alcotest.(check int) "faults_detected = |blames|" (List.length r.Protocol.blames)
    r.Protocol.faults_detected;
  let active_or_late =
    List.length
      (List.filter
         (fun b -> Faults.is_active b.Faults.kind || b.Faults.kind = Faults.Delayed)
         r.Protocol.blames)
  in
  Alcotest.(check int) "posts_rejected counts board posts" active_or_late
    r.Protocol.posts_rejected

(* ------------------------------------------------------------------ *)
(* deterministic replay                                                *)
(* ------------------------------------------------------------------ *)

let test_fault_plan_replay () =
  let go () =
    check_delivered "replay"
      (run ~plan:(Faults.random ~seed:42) ~seed:9 ~params:params16 (adv ~malicious:5 ~fail_stop:1))
  in
  let r1 = go () and r2 = go () in
  Alcotest.(check int) "same posts" r1.Protocol.posts r2.Protocol.posts;
  Alcotest.(check int) "same faults" r1.Protocol.faults_detected r2.Protocol.faults_detected;
  Alcotest.(check bool) "same blames" true
    (List.for_all2
       (fun a b -> a.Faults.role = b.Faults.role && a.Faults.kind = b.Faults.kind)
       r1.Protocol.blames r2.Protocol.blames)

let test_failure_printer () =
  match run ~validate:false ~params:params16 (adv ~malicious:16 ~fail_stop:0) with
  | Aborted f ->
    let s = Faults.failure_to_string f in
    Alcotest.(check bool) "names the step" true
      (f.Faults.f_step <> "" && String.length s > 0);
    let via_printexc = Printexc.to_string (Faults.Protocol_failure f) in
    Alcotest.(check string) "registered printer" s via_printexc
  | _ -> Alcotest.fail "all-malicious run must abort"

(* ------------------------------------------------------------------ *)
(* qcheck: random within-bound plans always deliver correctly          *)
(* ------------------------------------------------------------------ *)

let qcheck_chaos =
  QCheck.Test.make ~count:25 ~name:"within-bound fault plans deliver correct outputs"
    QCheck.(triple small_nat small_nat int)
    (fun (m, fs, seed) ->
      let t = params16.Params.t in
      let malicious = m mod (t + 1) in
      let headroom = Params.max_fail_stop params16 (adv ~malicious ~fail_stop:0) in
      let fail_stop = fs mod (headroom + 1) in
      match
        run ~plan:(Faults.random ~seed) ~seed:(abs seed + 1) ~params:params16
          (adv ~malicious ~fail_stop)
      with
      | Delivered r ->
        malicious = 0 || r.Protocol.posts_rejected > 0
      | Wrong _ | Aborted _ | Crashed _ -> false)

let () =
  Alcotest.run "faults"
    [
      ( "kinds",
        [
          Alcotest.test_case "each active kind" `Quick test_each_active_kind_detected;
          Alcotest.test_case "silent and delayed" `Quick test_silent_and_delayed_malicious;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "within bounds" `Quick test_chaos_within_bounds;
          Alcotest.test_case "beyond bounds" `Quick test_chaos_beyond_bounds;
        ] );
      ( "blame",
        [
          Alcotest.test_case "bounded per committee" `Quick test_blame_list_bounded_per_committee;
          Alcotest.test_case "counters consistent" `Quick test_report_counters_consistent;
          Alcotest.test_case "replay" `Quick test_fault_plan_replay;
          Alcotest.test_case "failure printer" `Quick test_failure_printer;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest ~long:false qcheck_chaos ]);
    ]
