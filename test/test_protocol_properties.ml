(* Property-based tests of the full protocol: random circuits, random
   parameters, random adversaries — the protocol must always deliver
   the plain-evaluation result (GOD) whenever the parameters accept
   the adversary, and must charge online costs that beat the CDN
   baseline's asymptotics. *)

module F = Yoso_field.Field.Fp
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Cdn = Yoso_mpc.Cdn_baseline
module Gen = Yoso_circuit.Generators
module Circuit = Yoso_circuit.Circuit

let arb_protocol_instance =
  let gen =
    QCheck.Gen.(
      let* n = int_range 8 24 in
      let* t = int_range 0 ((n - 3) / 3) in
      let* k =
        let kmax = min ((n - t) / 2) (n - t) in
        int_range 1 (max 1 kmax)
      in
      let* gates = int_range 5 60 in
      let* mul_pct = int_range 0 100 in
      let* circuit_seed = int_range 0 10_000 in
      let* run_seed = int_range 0 10_000 in
      let* malicious = int_range 0 t in
      let* fail_stop_budget = int_range 0 3 in
      return (n, t, k, gates, mul_pct, circuit_seed, run_seed, malicious, fail_stop_budget))
  in
  QCheck.make gen ~print:(fun (n, t, k, g, mp, cs, rs, m, fs) ->
      Printf.sprintf "n=%d t=%d k=%d gates=%d mul%%=%d cseed=%d rseed=%d mal=%d fs=%d" n t
        k g mp cs rs m fs)

let valid_params n t k =
  match Params.create ~n ~t ~k () with p -> Some p | exception Invalid_argument _ -> None

let prop_god_on_random_instances =
  QCheck.Test.make ~count:60 ~name:"GOD on random circuits/params/adversaries"
    arb_protocol_instance
    (fun (n, t, k, gates, mul_pct, circuit_seed, run_seed, malicious, fs_budget) ->
      match valid_params n t k with
      | None -> QCheck.assume_fail ()
      | Some params ->
        let adversary =
          let max_fs =
            Params.max_fail_stop params { Params.malicious; passive = 0; fail_stop = 0 }
          in
          { Params.malicious; passive = 0; fail_stop = min fs_budget max_fs }
        in
        (match Params.validate_adversary params adversary with
        | () -> ()
        | exception Invalid_argument _ ->
          (* malicious count alone already breaks the preconditions *)
          QCheck.assume_fail ());
        let circuit =
          Gen.random_dag ~gates ~clients:2
            ~mul_fraction:(float_of_int mul_pct /. 100.0)
            ~seed:circuit_seed
        in
        let st = Random.State.make [| run_seed |] in
        let fixed = Array.init 2 (fun _ -> Array.init 2 (fun _ -> F.random st)) in
        let inputs c = fixed.(c) in
        let r =
          Protocol.execute ~params
            ~config:(Protocol.config ~adversary ~seed:run_seed ())
            ~circuit ~inputs ()
        in
        Protocol.check r circuit ~inputs)

let prop_cdn_agrees =
  QCheck.Test.make ~count:30 ~name:"CDN baseline agrees with plain evaluation"
    arb_protocol_instance
    (fun (n, t, k, gates, mul_pct, circuit_seed, run_seed, malicious, _) ->
      match valid_params n t k with
      | None -> QCheck.assume_fail ()
      | Some params ->
        let adversary = { Params.malicious; passive = 0; fail_stop = 0 } in
        (match Params.validate_adversary params adversary with
        | () -> ()
        | exception Invalid_argument _ -> QCheck.assume_fail ());
        let circuit =
          Gen.random_dag ~gates ~clients:2
            ~mul_fraction:(float_of_int mul_pct /. 100.0)
            ~seed:circuit_seed
        in
        let st = Random.State.make [| run_seed |] in
        let fixed = Array.init 2 (fun _ -> Array.init 2 (fun _ -> F.random st)) in
        let inputs c = fixed.(c) in
        let r = Cdn.execute ~params ~adversary ~seed:run_seed ~circuit ~inputs () in
        Cdn.check r circuit ~inputs)

let prop_adversary_does_not_change_outputs =
  QCheck.Test.make ~count:25 ~name:"outputs independent of adversary placement"
    QCheck.(pair (int_range 0 5) (int_range 0 1000))
    (fun (malicious, seed) ->
      let params = Params.create ~n:16 ~t:5 ~k:3 () in
      let circuit = Gen.random_dag ~gates:30 ~clients:2 ~mul_fraction:0.5 ~seed in
      let st = Random.State.make [| seed |] in
      let fixed = Array.init 2 (fun _ -> Array.init 2 (fun _ -> F.random st)) in
      let inputs c = fixed.(c) in
      let clean =
        Protocol.execute ~params
          ~config:(Protocol.config ~seed ())
          ~circuit ~inputs ()
      in
      let attacked =
        Protocol.execute ~params
          ~config:
            (Protocol.config
               ~adversary:{ Params.malicious; passive = 1; fail_stop = 1 }
               ~seed ())
          ~circuit ~inputs ()
      in
      List.for_all2
        (fun a b -> F.equal a.Yoso_mpc.Online.value b.Yoso_mpc.Online.value)
        clean.Protocol.outputs attacked.Protocol.outputs)

let prop_online_cheaper_than_cdn_at_scale =
  QCheck.Test.make ~count:8 ~name:"online cost beats CDN once n >= 32"
    QCheck.(int_range 32 48)
    (fun n ->
      let params = Params.of_gap ~n ~eps:0.125 () in
      let width = n * params.Params.k / 4 in
      let circuit = Gen.wide_mul_reduced ~width ~depth:2 ~clients:2 in
      let inputs c = Array.init (2 * width) (fun i -> F.of_int ((c + 2) * (i + 3))) in
      let ours = Protocol.execute ~params ~circuit ~inputs () in
      let cdn = Cdn.execute ~params ~circuit ~inputs () in
      Protocol.online_per_gate ours < Cdn.online_per_gate cdn)

let () =
  Alcotest.run "protocol-properties"
    [
      ( "properties",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [
            prop_god_on_random_instances;
            prop_cdn_agrees;
            prop_adversary_does_not_change_outputs;
            prop_online_cheaper_than_cdn_at_scale;
          ] );
    ]
