module F = Yoso_field.Field.Fp
module Params = Yoso_mpc.Params
module Pke = Yoso_mpc.Ideal_pke
module Te = Yoso_mpc.Ideal_te
module Ops = Yoso_mpc.Committee_ops
module Setup = Yoso_mpc.Setup
module Protocol = Yoso_mpc.Protocol
module Online = Yoso_mpc.Online
module Cdn = Yoso_mpc.Cdn_baseline
module Gen = Yoso_circuit.Generators
module Circuit = Yoso_circuit.Circuit
module Splitmix = Yoso_hash.Splitmix
module Bulletin = Yoso_runtime.Bulletin

let rng () = Splitmix.of_int 0x1DEA
let felt = Alcotest.testable F.pp F.equal

(* ------------------------------------------------------------------ *)
(* Ideal PKE                                                           *)
(* ------------------------------------------------------------------ *)

let test_pke_roundtrip () =
  let pk, sk = Pke.gen (rng ()) in
  Alcotest.(check int) "roundtrip" 42 (Pke.dec sk (Pke.enc pk 42));
  Alcotest.(check (option string)) "dec_opt" (Some "x") (Pke.dec_opt sk (Pke.enc pk "x"))

let test_pke_wrong_key () =
  let r = rng () in
  let pk, _ = Pke.gen r in
  let _, sk2 = Pke.gen r in
  Alcotest.check_raises "wrong key" (Invalid_argument "Ideal_pke.dec: wrong key")
    (fun () -> ignore (Pke.dec sk2 (Pke.enc pk 1)));
  Alcotest.(check (option int)) "dec_opt none" None (Pke.dec_opt sk2 (Pke.enc pk 1))

let test_pke_nested_payload () =
  (* the KFF pattern: a secret key travelling inside a ciphertext *)
  let r = rng () in
  let pk1, sk1 = Pke.gen r in
  let pk2, sk2 = Pke.gen r in
  let nested = Pke.enc pk1 sk2 in
  let recovered = Pke.dec sk1 nested in
  Alcotest.(check int) "nested key works" 7 (Pke.dec recovered (Pke.enc pk2 7))

(* ------------------------------------------------------------------ *)
(* Ideal TE                                                            *)
(* ------------------------------------------------------------------ *)

let te_fixture () = Te.keygen ~n:7 ~t:2 ~rng:(rng ())

let partials te shares ct who = List.map (fun i -> Te.partial_decrypt te shares.(i) ct) who

let test_te_roundtrip () =
  let te, shares = te_fixture () in
  let ct = Te.encrypt te (F.of_int 99) in
  Alcotest.check felt "t+1 partials" (F.of_int 99) (Te.combine te (partials te shares ct [ 0; 3; 6 ]))

let test_te_too_few () =
  let te, shares = te_fixture () in
  let ct = Te.encrypt te F.one in
  Alcotest.check_raises "2 partials" (Invalid_argument "Ideal_te.combine: 2 partials, need 3")
    (fun () -> ignore (Te.combine te (partials te shares ct [ 0; 1 ])));
  (* duplicates do not count twice *)
  Alcotest.check_raises "duplicated index" (Invalid_argument "Ideal_te.combine: 2 partials, need 3")
    (fun () ->
      ignore (Te.combine te (partials te shares ct [ 0; 0; 1 ])))

let test_te_eval () =
  let te, shares = te_fixture () in
  let cts = Array.map (fun v -> Te.encrypt te (F.of_int v)) [| 2; 3; 5 |] in
  let combo = Te.eval te cts (Array.map F.of_int [| 10; 100; 1000 |]) in
  Alcotest.check felt "linear combination" (F.of_int 5320)
    (Te.combine te (partials te shares combo [ 1; 2; 3 ]));
  let s = Te.sub te cts.(2) cts.(0) in
  Alcotest.check felt "sub" (F.of_int 3) (Te.combine te (partials te shares s [ 0; 1; 2 ]));
  let ap = Te.add_plain te cts.(0) (F.of_int 40) in
  Alcotest.check felt "add_plain" (F.of_int 42) (Te.combine te (partials te shares ap [ 4; 5; 6 ]))

let test_te_junk_partial_detected () =
  let te, shares = te_fixture () in
  let ct = Te.encrypt te (F.of_int 5) in
  let junk = Te.junk_partial te ~index:6 ~epoch:0 (F.of_int 1234) in
  Alcotest.check_raises "inconsistent" (Invalid_argument "Ideal_te.combine: inconsistent partials")
    (fun () -> ignore (Te.combine te (junk :: partials te shares ct [ 0; 1 ])))

let test_te_reshare_epochs () =
  let te, shares = te_fixture () in
  let ct = Te.encrypt te (F.of_int 11) in
  (* everyone reshares; members recombine the same sender subset *)
  let msgs = Array.map (Te.reshare te) shares in
  let new_shares =
    Array.init 7 (fun j ->
        Te.recombine te ~index:(j + 1) (List.init 7 (fun i -> msgs.(i).(j))))
  in
  Alcotest.(check int) "epoch bumped" 1 (Te.share_epoch new_shares.(0));
  Alcotest.check felt "new shares decrypt" (F.of_int 11)
    (Te.combine te (partials te new_shares ct [ 2; 4; 5 ]));
  (* mixing epochs is rejected *)
  let mixed =
    Te.partial_decrypt te shares.(0) ct
    :: partials te new_shares ct [ 1; 2 ]
  in
  Alcotest.check_raises "mixed epochs"
    (Invalid_argument "Ideal_te.combine: partials from different epochs") (fun () ->
      ignore (Te.combine te mixed))

let test_te_recombine_needs_quorum () =
  let te, shares = te_fixture () in
  let msgs = Array.map (Te.reshare te) shares in
  Alcotest.check_raises "2 senders" (Invalid_argument "Ideal_te.recombine: 2 subshares, need 3")
    (fun () ->
      ignore (Te.recombine te ~index:1 [ msgs.(0).(0); msgs.(1).(0) ]))

let test_te_misaddressed_subshare () =
  let te, shares = te_fixture () in
  let msgs = Te.reshare te shares.(0) in
  Alcotest.check_raises "misaddressed"
    (Invalid_argument "Ideal_te.recombine: misaddressed subshare") (fun () ->
      ignore (Te.recombine te ~index:2 [ msgs.(0) ]))

let test_te_foreign_ciphertext () =
  let te, _ = te_fixture () in
  let te2, shares2 = Te.keygen ~n:5 ~t:1 ~rng:(rng ()) in
  let ct = Te.encrypt te2 F.one in
  Alcotest.check_raises "foreign" (Invalid_argument "Ideal_te: foreign ciphertext")
    (fun () -> ignore (Te.add te ct ct));
  Alcotest.check_raises "share of other key"
    (Invalid_argument "Ideal_te.partial_decrypt: share of another key") (fun () ->
      ignore (Te.partial_decrypt te shares2.(0) (Te.encrypt te F.one)))

(* ------------------------------------------------------------------ *)
(* Params                                                              *)
(* ------------------------------------------------------------------ *)

let test_params_validation () =
  Alcotest.check_raises "packing degree"
    (Invalid_argument "Params.create: packing degree t+k-1 = 8 exceeds n-1 = 7") (fun () ->
      ignore (Params.create ~n:8 ~t:5 ~k:4 ()));
  Alcotest.check_raises "reconstruction"
    (Invalid_argument
       "Params.create: reconstruction threshold t+2(k-1)+1 = 10 exceeds n = 9") (fun () ->
      ignore (Params.create ~n:9 ~t:3 ~k:4 ()));
  let p = Params.create ~n:16 ~t:5 ~k:3 () in
  Alcotest.(check int) "recon" 10 (Params.reconstruction_threshold p);
  Alcotest.(check int) "pack degree" 7 (Params.packing_degree p)

let test_params_of_gap () =
  let p = Params.of_gap ~n:100 ~eps:0.1 () in
  Alcotest.(check int) "t" 39 p.Params.t;
  Alcotest.(check int) "k" 11 p.Params.k;
  let pf = Params.of_gap ~n:100 ~eps:0.1 ~fail_stop_mode:true () in
  Alcotest.(check int) "fail-stop k" 6 pf.Params.k;
  Alcotest.(check bool) "fail-stop headroom" true
    (Params.max_fail_stop pf { Params.malicious = pf.Params.t; passive = 0; fail_stop = 0 } >= 9)

let test_params_adversary_validation () =
  let p = Params.create ~n:16 ~t:5 ~k:3 () in
  Params.validate_adversary p { Params.malicious = 5; passive = 2; fail_stop = 1 };
  Alcotest.check_raises "too many malicious"
    (Invalid_argument "Params.validate_adversary: 6 malicious exceeds t = 5") (fun () ->
      Params.validate_adversary p { Params.malicious = 6; passive = 0; fail_stop = 0 });
  Alcotest.check_raises "too silent"
    (Invalid_argument
       "Params.validate_adversary: 9 speaking honest roles < reconstruction threshold 10")
    (fun () ->
      Params.validate_adversary p { Params.malicious = 5; passive = 0; fail_stop = 2 })

let test_params_adversary_edge_cases () =
  (* t = 0: any malicious role at all is beyond the bound *)
  let p0 = Params.create ~n:4 ~t:0 ~k:1 () in
  Params.validate_adversary p0 Params.no_adversary;
  Alcotest.check_raises "t = 0 admits no malicious"
    (Invalid_argument "Params.validate_adversary: 1 malicious exceeds t = 0") (fun () ->
      Params.validate_adversary p0 { Params.malicious = 1; passive = 0; fail_stop = 0 });
  (* k = 1 (no packing): reconstruction threshold collapses to t + 1 *)
  let p1 = Params.create ~n:7 ~t:3 ~k:1 () in
  Alcotest.(check int) "k = 1 recon" 4 (Params.reconstruction_threshold p1);
  Params.validate_adversary p1 { Params.malicious = 3; passive = 0; fail_stop = 0 };
  (* exactly at the speaking-honest threshold passes; one more fails *)
  let p = Params.create ~n:16 ~t:5 ~k:3 () in
  let at = { Params.malicious = 5; passive = 0; fail_stop = 1 } in
  Params.validate_adversary p at;
  Alcotest.(check int) "no headroom left at the bound" 0
    (Params.max_fail_stop p at - at.Params.fail_stop);
  (* negative counts are rejected outright, one field at a time *)
  List.iter
    (fun adv ->
      Alcotest.check_raises "negative counts"
        (Invalid_argument "Params.validate_adversary: negative counts") (fun () ->
          Params.validate_adversary p adv))
    [
      { Params.malicious = -1; passive = 0; fail_stop = 0 };
      { Params.malicious = 0; passive = -2; fail_stop = 0 };
      { Params.malicious = 0; passive = 0; fail_stop = -1 };
    ];
  (* corruption counts must fit in the committee *)
  Alcotest.check_raises "exceeds committee"
    (Invalid_argument "Params.validate_adversary: corruptions exceed committee size")
    (fun () -> Params.validate_adversary p { Params.malicious = 5; passive = 11; fail_stop = 1 })

let test_params_max_fail_stop_clamped () =
  let p = Params.create ~n:16 ~t:5 ~k:3 () in
  (* n - malicious - recon = 16 - 5 - 10 = 1 *)
  Alcotest.(check int) "headroom at t malicious" 1
    (Params.max_fail_stop p { Params.malicious = 5; passive = 0; fail_stop = 0 });
  Alcotest.(check int) "headroom with no malicious" 6
    (Params.max_fail_stop p Params.no_adversary);
  (* clamped at zero even for nonsense adversaries beyond the bound *)
  Alcotest.(check int) "never negative" 0
    (Params.max_fail_stop p { Params.malicious = 16; passive = 0; fail_stop = 0 });
  (* tight params: n = recon means zero tolerance from the start *)
  let tight = Params.create ~n:10 ~t:5 ~k:3 () in
  Alcotest.(check int) "n = recon, zero headroom" 0
    (Params.max_fail_stop tight Params.no_adversary)

(* ------------------------------------------------------------------ *)
(* End-to-end protocol                                                 *)
(* ------------------------------------------------------------------ *)

let params16 = Params.create ~n:16 ~t:5 ~k:3 ()

let run_and_check ?adversary circuit inputs =
  let config =
    match adversary with
    | None -> Protocol.default_config
    | Some adversary -> Protocol.config ~adversary ()
  in
  let r = Protocol.execute ~params:params16 ~config ~circuit ~inputs () in
  Alcotest.(check bool) "outputs match plain evaluation" true
    (Protocol.check r circuit ~inputs)

let test_e2e_dot_product () =
  let circuit = Gen.dot_product ~len:7 in
  run_and_check circuit (fun c -> Array.init 7 (fun i -> F.of_int ((c + 1) * (i + 2))))

let test_e2e_wide () =
  let circuit = Gen.wide_mul ~width:6 ~depth:3 ~clients:3 in
  run_and_check circuit (fun c -> Array.init 12 (fun i -> F.of_int ((c + 2) * (i + 1))))

let test_e2e_deep () =
  let circuit = Gen.poly_eval ~degree:9 in
  run_and_check circuit (fun c ->
      if c = 0 then Array.init 10 (fun i -> F.of_int (i + 1)) else [| F.of_int 5 |])

let test_e2e_variance () =
  let circuit = Gen.variance_numerator ~parties:4 in
  run_and_check circuit (fun c ->
      if c = 0 then [| F.of_int 9; F.of_int 4; F.of_int (-1) |] else [| F.of_int (c * 3) |])

let test_e2e_random_dags () =
  for seed = 1 to 5 do
    let circuit = Gen.random_dag ~gates:60 ~clients:3 ~mul_fraction:0.5 ~seed in
    run_and_check circuit (fun c -> [| F.of_int (c + 7); F.of_int ((2 * c) + 3) |])
  done

let test_e2e_random_field_inputs () =
  let st = Random.State.make [| 77 |] in
  let circuit = Gen.matrix_vector ~rows:3 ~cols:5 in
  let m = Array.init 15 (fun _ -> F.random st) in
  let v = Array.init 5 (fun _ -> F.random st) in
  run_and_check circuit (fun c -> if c = 0 then m else v)

let test_e2e_with_malicious () =
  let circuit = Gen.dot_product ~len:5 in
  let inputs c = Array.init 5 (fun i -> F.of_int ((c + 3) * (i + 1))) in
  List.iter
    (fun malicious ->
      run_and_check
        ~adversary:{ Params.malicious; passive = 0; fail_stop = 0 }
        circuit inputs)
    [ 1; 3; 5 ]

let test_e2e_with_fail_stop () =
  let circuit = Gen.dot_product ~len:5 in
  let inputs c = Array.init 5 (fun i -> F.of_int ((c + 3) * (i + 1))) in
  List.iter
    (fun fail_stop ->
      run_and_check ~adversary:{ Params.malicious = 0; passive = 0; fail_stop } circuit inputs)
    [ 1; 3; 6 ]

let test_e2e_mixed_adversary () =
  let circuit = Gen.wide_mul_reduced ~width:5 ~depth:2 ~clients:2 in
  let inputs c = Array.init 10 (fun i -> F.of_int ((c + 2) * (i + 5))) in
  run_and_check ~adversary:{ Params.malicious = 3; passive = 2; fail_stop = 2 } circuit inputs

let test_e2e_failstop_mode_params () =
  (* Section 5.4: halve the packing gap, tolerate n*eps fail-stops *)
  let params = Params.of_gap ~n:20 ~eps:0.2 ~fail_stop_mode:true () in
  let headroom =
    Params.max_fail_stop params { Params.malicious = params.Params.t; passive = 0; fail_stop = 0 }
  in
  Alcotest.(check bool) "tolerates ~n*eps silent roles" true (headroom >= 4);
  let circuit = Gen.dot_product ~len:6 in
  let inputs c = Array.init 6 (fun i -> F.of_int ((c + 1) * (i + 1))) in
  let adversary = { Params.malicious = params.Params.t; passive = 0; fail_stop = headroom } in
  let r =
    Protocol.execute ~params
      ~config:(Protocol.config ~adversary ())
      ~circuit ~inputs ()
  in
  Alcotest.(check bool) "GOD under t malicious + max fail-stop" true
    (Protocol.check r circuit ~inputs)

let test_e2e_rejects_invalid_adversary () =
  let circuit = Gen.dot_product ~len:2 in
  Alcotest.check_raises "adversary checked"
    (Invalid_argument "Params.validate_adversary: 6 malicious exceeds t = 5") (fun () ->
      ignore
        (Protocol.execute ~params:params16
           ~config:
             (Protocol.config
                ~adversary:{ Params.malicious = 6; passive = 0; fail_stop = 0 }
                ())
           ~circuit
           ~inputs:(fun _ -> [| F.one; F.one |])
           ()))

let test_e2e_deterministic_given_seed () =
  let circuit = Gen.dot_product ~len:3 in
  let inputs c = Array.init 3 (fun i -> F.of_int (c + i + 1)) in
  let config = Protocol.config ~seed:9 () in
  let r1 = Protocol.execute ~params:params16 ~config ~circuit ~inputs () in
  let r2 = Protocol.execute ~params:params16 ~config ~circuit ~inputs () in
  Alcotest.(check int) "same posts" r1.Protocol.posts r2.Protocol.posts;
  Alcotest.(check int) "same offline cost" r1.Protocol.offline_elements r2.Protocol.offline_elements

let test_e2e_k1_no_packing () =
  (* k = 1 degenerates to unpacked sharings; protocol must still work *)
  let params = Params.create ~n:8 ~t:2 ~k:1 () in
  let circuit = Gen.dot_product ~len:4 in
  let inputs c = Array.init 4 (fun i -> F.of_int ((c + 1) * (i + 1))) in
  let r = Protocol.execute ~params ~circuit ~inputs () in
  Alcotest.(check bool) "k=1 works" true (Protocol.check r circuit ~inputs)

(* ------------------------------------------------------------------ *)
(* Communication-complexity shape (Theorem 1)                          *)
(* ------------------------------------------------------------------ *)

let comm_run n =
  let params = Params.of_gap ~n ~eps:0.125 () in
  let k = params.Params.k in
  let width = n * k / 4 in
  let circuit = Gen.wide_mul_reduced ~width ~depth:2 ~clients:2 in
  let inputs c = Array.init (2 * width) (fun i -> F.of_int ((c + 2) * (i + 3))) in
  let ours = Protocol.execute ~params ~circuit ~inputs () in
  let cdn = Cdn.execute ~params ~circuit ~inputs () in
  Alcotest.(check bool) "ours correct" true (Protocol.check ours circuit ~inputs);
  Alcotest.(check bool) "cdn correct" true (Cdn.check cdn circuit ~inputs);
  (Protocol.online_per_gate ours, Cdn.online_per_gate cdn, Protocol.offline_per_gate ours)

let test_online_flat_vs_cdn_linear () =
  let ours16, cdn16, _ = comm_run 16 in
  let ours64, cdn64, _ = comm_run 64 in
  (* quadrupling n: CDN online/gate should grow ~4x (allow >2x);
     ours should stay within a small constant factor (allow < 1.6x) *)
  Alcotest.(check bool)
    (Printf.sprintf "cdn grows (%.1f -> %.1f)" cdn16 cdn64)
    true
    (cdn64 > 2.0 *. cdn16);
  Alcotest.(check bool)
    (Printf.sprintf "ours ~flat (%.1f -> %.1f)" ours16 ours64)
    true
    (ours64 < 1.6 *. ours16);
  Alcotest.(check bool) "ours beats cdn at n=64" true (ours64 < cdn64)

let test_offline_linear () =
  let _, _, off16 = comm_run 16 in
  let _, _, off64 = comm_run 64 in
  (* offline per gate is O(n): quadrupling n should stay within ~[2x, 8x] *)
  let ratio = off64 /. off16 in
  Alcotest.(check bool) (Printf.sprintf "offline ratio %.1f in [2, 8]" ratio) true
    (ratio > 2.0 && ratio < 8.0)

let test_speak_once_audit () =
  (* every bulletin author must be unique: the runtime raised nothing,
     but double-check the audit trail *)
  let circuit = Gen.dot_product ~len:4 in
  let inputs c = Array.init 4 (fun i -> F.of_int (c + i + 1)) in
  let params = params16 in
  (* re-run manually to keep the board *)
  let board = Yoso_net.Board.create () in
  let ctx = Ops.create_ctx ~board ~params ~adversary:Params.no_adversary ~seed:3 () in
  let layout = Yoso_circuit.Layout.make circuit ~k:params.Params.k in
  let setup =
    Setup.run ~board ~params
      ~layers:(Array.length layout.Yoso_circuit.Layout.mult_layers)
      ~clients:(Circuit.clients circuit)
      ~rng:(Splitmix.of_int 4)
  in
  let prep = Yoso_mpc.Offline.run ctx setup layout in
  let _ = Online.run ctx setup prep ~inputs in
  let authors = Hashtbl.create 64 in
  List.iter
    (fun post ->
      let key = post.Bulletin.author in
      Alcotest.(check bool) "author spoke once" false (Hashtbl.mem authors key);
      Hashtbl.add authors key ())
    (Bulletin.posts (Yoso_net.Board.bulletin board))

let () =
  Alcotest.run "core"
    [
      ( "ideal-pke",
        [
          Alcotest.test_case "roundtrip" `Quick test_pke_roundtrip;
          Alcotest.test_case "wrong key" `Quick test_pke_wrong_key;
          Alcotest.test_case "nested payload" `Quick test_pke_nested_payload;
        ] );
      ( "ideal-te",
        [
          Alcotest.test_case "roundtrip" `Quick test_te_roundtrip;
          Alcotest.test_case "too few" `Quick test_te_too_few;
          Alcotest.test_case "eval" `Quick test_te_eval;
          Alcotest.test_case "junk partial" `Quick test_te_junk_partial_detected;
          Alcotest.test_case "reshare epochs" `Quick test_te_reshare_epochs;
          Alcotest.test_case "recombine quorum" `Quick test_te_recombine_needs_quorum;
          Alcotest.test_case "misaddressed" `Quick test_te_misaddressed_subshare;
          Alcotest.test_case "foreign ciphertext" `Quick test_te_foreign_ciphertext;
        ] );
      ( "params",
        [
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "of_gap" `Quick test_params_of_gap;
          Alcotest.test_case "adversary validation" `Quick test_params_adversary_validation;
          Alcotest.test_case "adversary edge cases" `Quick test_params_adversary_edge_cases;
          Alcotest.test_case "max_fail_stop clamped" `Quick test_params_max_fail_stop_clamped;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "dot product" `Quick test_e2e_dot_product;
          Alcotest.test_case "wide" `Quick test_e2e_wide;
          Alcotest.test_case "deep" `Quick test_e2e_deep;
          Alcotest.test_case "variance" `Quick test_e2e_variance;
          Alcotest.test_case "random dags" `Quick test_e2e_random_dags;
          Alcotest.test_case "random field inputs" `Quick test_e2e_random_field_inputs;
          Alcotest.test_case "malicious" `Quick test_e2e_with_malicious;
          Alcotest.test_case "fail-stop" `Quick test_e2e_with_fail_stop;
          Alcotest.test_case "mixed adversary" `Quick test_e2e_mixed_adversary;
          Alcotest.test_case "fail-stop mode (5.4)" `Quick test_e2e_failstop_mode_params;
          Alcotest.test_case "invalid adversary" `Quick test_e2e_rejects_invalid_adversary;
          Alcotest.test_case "deterministic" `Quick test_e2e_deterministic_given_seed;
          Alcotest.test_case "k = 1" `Quick test_e2e_k1_no_packing;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "online flat vs cdn linear" `Slow test_online_flat_vs_cdn_linear;
          Alcotest.test_case "offline linear" `Slow test_offline_linear;
          Alcotest.test_case "speak-once audit" `Quick test_speak_once_audit;
        ] );
    ]
