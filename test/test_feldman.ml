module F = Yoso_field.Field.Fp
module B = Yoso_bigint.Bigint
module Feldman = Yoso_shamir.Feldman
module Randgen = Yoso_mpc.Randgen

let st = Random.State.make [| 0xFE |]
let felt = Alcotest.testable F.pp F.equal

(* ------------------------------------------------------------------ *)
(* Group structure                                                     *)
(* ------------------------------------------------------------------ *)

let test_group_parameters () =
  let g = Lazy.force Feldman.group in
  let st = Random.State.make [| 1 |] in
  Alcotest.(check bool) "modulus prime" true (B.is_probable_prime st g.Feldman.modulus);
  Alcotest.(check string) "order = F.p" (string_of_int F.p) (B.to_string g.Feldman.order);
  Alcotest.(check bool) "q | p' - 1" true
    (B.is_zero (B.rem (B.sub g.Feldman.modulus B.one) g.Feldman.order));
  (* h has order exactly q: h <> 1 and h^q = 1 *)
  Alcotest.(check bool) "h <> 1" false (B.is_one g.Feldman.h);
  Alcotest.(check bool) "h^q = 1" true
    (B.is_one (B.powmod g.Feldman.h g.Feldman.order g.Feldman.modulus))

(* ------------------------------------------------------------------ *)
(* Dealings                                                            *)
(* ------------------------------------------------------------------ *)

let test_deal_verify_reconstruct () =
  for _ = 1 to 10 do
    let secret = F.random st in
    let d = Feldman.deal ~t:3 ~n:9 ~secret ~rng:st in
    Alcotest.(check bool) "dealing verifies" true (Feldman.verify_dealing ~n:9 d);
    let pairs = [ (8, d.Feldman.shares.(8)); (2, d.Feldman.shares.(2));
                  (5, d.Feldman.shares.(5)); (0, d.Feldman.shares.(0)) ] in
    Alcotest.check felt "reconstructs" secret (Feldman.reconstruct ~t:3 pairs)
  done

let test_corrupted_share_detected () =
  let d = Feldman.deal ~t:2 ~n:6 ~secret:(F.of_int 77) ~rng:st in
  Alcotest.(check bool) "good share ok" true
    (Feldman.verify_share d.Feldman.commitment ~index:4 ~share:d.Feldman.shares.(4));
  Alcotest.(check bool) "bad share caught" false
    (Feldman.verify_share d.Feldman.commitment ~index:4
       ~share:(F.add d.Feldman.shares.(4) F.one));
  (* wrong index for a valid share is also caught *)
  Alcotest.(check bool) "misindexed share caught" false
    (Feldman.verify_share d.Feldman.commitment ~index:3 ~share:d.Feldman.shares.(4))

let test_corrupted_dealing_detected () =
  let d = Feldman.deal ~t:2 ~n:6 ~secret:(F.of_int 1) ~rng:st in
  let shares = Array.copy d.Feldman.shares in
  shares.(2) <- F.add shares.(2) F.one;
  Alcotest.(check bool) "corrupted dealing rejected" false
    (Feldman.verify_dealing ~n:6 { d with Feldman.shares })

let test_commitment_homomorphism () =
  let s1 = F.random st and s2 = F.random st in
  let d1 = Feldman.deal ~t:2 ~n:5 ~secret:s1 ~rng:st in
  let d2 = Feldman.deal ~t:2 ~n:5 ~secret:s2 ~rng:st in
  (* C_0 * C_0' commits to s1 + s2: the summed shares verify against
     the coefficient-wise product of commitments *)
  let agg =
    Array.init 3 (fun j ->
        Feldman.mul_commitments d1.Feldman.commitment.(j) d2.Feldman.commitment.(j))
  in
  for i = 0 to 4 do
    let sum_share = F.add d1.Feldman.shares.(i) d2.Feldman.shares.(i) in
    Alcotest.(check bool) "summed share verifies" true
      (Feldman.verify_share agg ~index:i ~share:sum_share)
  done;
  let pairs = List.init 3 (fun i -> (i, F.add d1.Feldman.shares.(i) d2.Feldman.shares.(i))) in
  Alcotest.check felt "sum reconstructs" (F.add s1 s2) (Feldman.reconstruct ~t:2 pairs)

let test_deal_validation () =
  Alcotest.check_raises "t >= n" (Invalid_argument "Feldman.deal: need 0 <= t < n")
    (fun () -> ignore (Feldman.deal ~t:5 ~n:5 ~secret:F.one ~rng:st));
  Alcotest.check_raises "too few shares"
    (Invalid_argument "Feldman.reconstruct: not enough shares") (fun () ->
      ignore (Feldman.reconstruct ~t:2 [ (0, F.one); (0, F.one); (1, F.two) ]))

(* ------------------------------------------------------------------ *)
(* Randomness beacon                                                   *)
(* ------------------------------------------------------------------ *)

let test_randgen_honest () =
  let o = Randgen.run ~n:7 ~t:2 ~seed:99 () in
  Alcotest.(check int) "all qualified" 7 o.Randgen.qualified_dealers;
  Alcotest.(check int) "no rejections" 0 (o.Randgen.rejected_dealers + o.Randgen.rejected_reveals);
  Alcotest.(check int) "posts = 2n" 14 o.Randgen.posts;
  (* deterministic in the seed *)
  Alcotest.check felt "deterministic" o.Randgen.value (Randgen.honest_reference ~n:7 ~t:2 ~seed:99 ())

let test_randgen_different_seeds_differ () =
  let a = Randgen.honest_reference ~n:7 ~t:2 ~seed:1 () in
  let b = Randgen.honest_reference ~n:7 ~t:2 ~seed:2 () in
  Alcotest.(check bool) "values differ" false (F.equal a b)

let test_randgen_malicious_dealers_excluded () =
  let o = Randgen.run ~n:7 ~t:2 ~malicious_dealers:[ 1; 4 ] ~seed:5 () in
  Alcotest.(check int) "two rejected" 2 o.Randgen.rejected_dealers;
  Alcotest.(check int) "five qualified" 5 o.Randgen.qualified_dealers

let test_randgen_malicious_revealers_caught_and_harmless () =
  let honest = Randgen.run ~n:7 ~t:2 ~seed:7 () in
  let attacked = Randgen.run ~n:7 ~t:2 ~malicious_revealers:[ 0; 3 ] ~seed:7 () in
  Alcotest.(check int) "reveals rejected" 2 attacked.Randgen.rejected_reveals;
  Alcotest.check felt "output unchanged" honest.Randgen.value attacked.Randgen.value

let test_randgen_dealer_removal_only_removes_contribution () =
  (* honest contributions are fixed by (seed, dealer): excluding dealer
     2 changes the output exactly by dealer 2's contribution, which an
     adaptive adversary cannot exploit without predicting it *)
  let all = Randgen.run ~n:5 ~t:1 ~seed:11 () in
  let without2 = Randgen.run ~n:5 ~t:1 ~malicious_dealers:[ 2 ] ~seed:11 () in
  let contribution2 =
    let st = Random.State.make [| 11; 2 |] in
    F.random st
  in
  Alcotest.check felt "difference = dealer 2's contribution"
    (F.sub all.Randgen.value without2.Randgen.value)
    contribution2

let test_randgen_validation () =
  Alcotest.check_raises "too many malicious"
    (Invalid_argument "Randgen.run: too many malicious roles") (fun () ->
      ignore (Randgen.run ~n:5 ~t:2 ~malicious_dealers:[ 0; 1; 2 ] ()));
  Alcotest.check_raises "bad threshold" (Invalid_argument "Randgen.run: need 0 <= t < n")
    (fun () -> ignore (Randgen.run ~n:4 ~t:4 ()))

(* ------------------------------------------------------------------ *)
(* Chaum-Pedersen product proofs (triple audits)                       *)
(* ------------------------------------------------------------------ *)

let test_product_completeness () =
  let rng = Random.State.make [| 0x9D; 1 |] in
  for _ = 1 to 20 do
    let x = F.random rng and y = F.random rng in
    let stm, pf = Feldman.Product.prove ~rng ~x ~y ~z:(F.mul x y) in
    Alcotest.(check bool) "honest proof verifies" true (Feldman.Product.verify stm pf)
  done

let test_product_soundness () =
  let rng = Random.State.make [| 0x9D; 2 |] in
  let x = F.random rng and y = F.random rng in
  (* an honest prover cannot make a false statement pass *)
  let stm, pf = Feldman.Product.prove ~rng ~x ~y ~z:(F.add (F.mul x y) F.one) in
  Alcotest.(check bool) "z <> x y rejected" false (Feldman.Product.verify stm pf);
  let stm2, pf2 = Feldman.Product.prove ~rng ~x ~y ~z:(F.mul x y) in
  Alcotest.(check bool) "tampered commitment rejected" false
    (Feldman.Product.verify (Feldman.Product.tamper_z stm2 F.one) pf2)

let test_product_batch_matches_each () =
  let rng = Random.State.make [| 0x9D; 3 |] in
  let batch =
    Array.init 32 (fun _ ->
        let x = F.random rng and y = F.random rng in
        Feldman.Product.prove ~rng ~x ~y ~z:(F.mul x y))
  in
  Alcotest.(check bool) "per-proof checks pass" true
    (Array.for_all (fun (stm, pf) -> Feldman.Product.verify stm pf) batch);
  Alcotest.(check bool) "RLC batch passes" true (Feldman.Product.verify_batch batch);
  Alcotest.(check bool) "RLC batch passes with explicit weights" true
    (Feldman.Product.verify_batch ~rng batch);
  Alcotest.(check bool) "empty batch passes" true (Feldman.Product.verify_batch [||])

let test_product_batch_attribution () =
  let rng = Random.State.make [| 0x9D; 4 |] in
  let batch =
    Array.init 16 (fun _ ->
        let x = F.random rng and y = F.random rng in
        Feldman.Product.prove ~rng ~x ~y ~z:(F.mul x y))
  in
  let bad = 5 in
  let stm, pf = batch.(bad) in
  batch.(bad) <- (Feldman.Product.tamper_z stm (F.of_int 7), pf);
  Alcotest.(check bool) "RLC catches one tampered triple" false
    (Feldman.Product.verify_batch batch);
  Alcotest.(check (list int)) "attribution names exactly it" [ bad ]
    (Feldman.Product.attribute batch)

let () =
  Alcotest.run "feldman"
    [
      ( "group",
        [ Alcotest.test_case "parameters" `Quick test_group_parameters ] );
      ( "vss",
        [
          Alcotest.test_case "deal/verify/reconstruct" `Quick test_deal_verify_reconstruct;
          Alcotest.test_case "corrupted share" `Quick test_corrupted_share_detected;
          Alcotest.test_case "corrupted dealing" `Quick test_corrupted_dealing_detected;
          Alcotest.test_case "homomorphism" `Quick test_commitment_homomorphism;
          Alcotest.test_case "validation" `Quick test_deal_validation;
        ] );
      ( "product",
        [
          Alcotest.test_case "completeness" `Quick test_product_completeness;
          Alcotest.test_case "soundness" `Quick test_product_soundness;
          Alcotest.test_case "batch matches each" `Quick test_product_batch_matches_each;
          Alcotest.test_case "attribution" `Quick test_product_batch_attribution;
        ] );
      ( "randgen",
        [
          Alcotest.test_case "honest" `Quick test_randgen_honest;
          Alcotest.test_case "seeds differ" `Quick test_randgen_different_seeds_differ;
          Alcotest.test_case "malicious dealers" `Quick test_randgen_malicious_dealers_excluded;
          Alcotest.test_case "malicious revealers" `Quick test_randgen_malicious_revealers_caught_and_harmless;
          Alcotest.test_case "removal semantics" `Quick test_randgen_dealer_removal_only_removes_contribution;
          Alcotest.test_case "validation" `Quick test_randgen_validation;
        ] );
    ]
