(* Write-ahead journal: append/replay round-trip, torn-tail recovery
   at every truncation boundary, corruption detection, and the
   reopen-after-crash truncation that keeps appends reachable. *)

module Journal = Yoso_transport.Journal

let record : Journal.record Alcotest.testable =
  Alcotest.testable Journal.pp_record ( = )

let sample_records =
  [
    Journal.Started { nslots = 8 };
    Journal.Posted { seq = 0; slot = 3; frame = "frame-zero" };
    Journal.Posted { seq = 1; slot = 0; frame = "" };
    Journal.Posted { seq = 2; slot = 7; frame = String.init 257 (fun i -> Char.chr (i land 0xff)) };
    Journal.Posted { seq = 5; slot = 1; frame = String.make 1024 '\x00' };
    Journal.Reported { slot = 4; json = "{\"digest\":42}" };
    Journal.Posted { seq = 6; slot = 2; frame = "tail" };
    Journal.Reported { slot = 0; json = "{}" };
  ]

let with_temp f =
  let path = Filename.temp_file "yoso-journal" ".wal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let write_raw path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let test_roundtrip () =
  with_temp (fun path ->
      Sys.remove path;
      (* missing file: empty replay, not an error *)
      Alcotest.(check (list record)) "missing file" [] (Journal.replay path);
      let j = Journal.open_append ~fsync_every:3 ~path () in
      List.iter (Journal.append j) sample_records;
      Alcotest.(check int) "appended counter" (List.length sample_records)
        (Journal.appended j);
      Journal.close j;
      Journal.close j (* idempotent *);
      Alcotest.(check (list record)) "replay returns every record" sample_records
        (Journal.replay path);
      Alcotest.(check int) "bytes = file size" (Unix.stat path).Unix.st_size
        (Journal.bytes j))

(* truncate the journal at every byte boundary: replay must return
   exactly the records whose encoding fits entirely in the prefix —
   never a torn frame *)
let test_truncate_every_boundary () =
  with_temp (fun path ->
      let encoded = List.map Journal.encode_record sample_records in
      let data = String.concat "" encoded in
      (* cumulative end offset of each record *)
      let ends =
        List.rev
          (fst
             (List.fold_left
                (fun (acc, off) e ->
                  let off = off + String.length e in
                  (off :: acc, off))
                ([], 0) encoded))
      in
      for cut = 0 to String.length data do
        write_raw path (String.sub data 0 cut);
        let expect = List.length (List.filter (fun e -> e <= cut) ends) in
        let got = Journal.replay path in
        Alcotest.(check int) (Printf.sprintf "cut at %d: record count" cut) expect
          (List.length got);
        List.iteri
          (fun i r ->
            Alcotest.(check record)
              (Printf.sprintf "cut at %d: record %d intact" cut i)
              (List.nth sample_records i) r)
          got
      done)

(* flip one byte inside a middle record: recovery stops at the last
   record before the damage, even though intact bytes follow *)
let test_corrupted_record () =
  with_temp (fun path ->
      let encoded = List.map Journal.encode_record sample_records in
      let damaged_index = 3 in
      let prefix_len =
        List.fold_left ( + ) 0
          (List.map String.length (List.filteri (fun i _ -> i < damaged_index) encoded))
      in
      let data = Bytes.of_string (String.concat "" encoded) in
      let victim = prefix_len + (String.length (List.nth encoded damaged_index) / 2) in
      Bytes.set data victim (Char.chr (Char.code (Bytes.get data victim) lxor 0x40));
      write_raw path (Bytes.to_string data);
      let got = Journal.replay path in
      Alcotest.(check int) "stops before the damaged record" damaged_index
        (List.length got);
      Alcotest.(check int) "intact prefix length" prefix_len (Journal.intact_bytes path))

(* a journal with a torn tail must accept new appends *after* cutting
   the tail, or the new records would be unreachable to replay *)
let test_reopen_truncates_torn_tail () =
  with_temp (fun path ->
      let keep = [ List.nth sample_records 0; List.nth sample_records 1 ] in
      let torn =
        let full = Journal.encode_record (List.nth sample_records 2) in
        String.sub full 0 (String.length full - 3)
      in
      write_raw path (String.concat "" (List.map Journal.encode_record keep) ^ torn);
      let j = Journal.open_append ~path () in
      let extra = Journal.Posted { seq = 9; slot = 5; frame = "after-crash" } in
      Journal.append j extra;
      Journal.close j;
      Alcotest.(check (list record)) "tail cut, append reachable" (keep @ [ extra ])
        (Journal.replay path))

let () =
  Alcotest.run "journal"
    [
      ( "journal",
        [
          Alcotest.test_case "append/replay roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "truncate at every boundary" `Quick
            test_truncate_every_boundary;
          Alcotest.test_case "corrupted record" `Quick test_corrupted_record;
          Alcotest.test_case "reopen truncates torn tail" `Quick
            test_reopen_truncates_torn_tail;
        ] );
    ]
