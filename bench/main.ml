(* Benchmark harness: regenerates every quantitative artifact of the
   paper (see DESIGN.md's experiment index) and runs Bechamel
   micro-benchmarks of the primitives.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- table1       -- one experiment
   Experiments: table1 improvements online-comm offline-comm failstop
                sortition-mc micro time par transport chaos compile *)

module F = Yoso_field.Field.Fp
module B = Yoso_bigint.Bigint
module Analysis = Yoso_sortition.Analysis
module Sampler = Yoso_sortition.Sampler
module Splitmix = Yoso_hash.Splitmix
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Cdn = Yoso_mpc.Cdn_baseline
module CP = Yoso_mpc.Cdn_paillier
module Bgw = Yoso_mpc.Bgw_baseline
module Gen = Yoso_circuit.Generators
module PS = Yoso_shamir.Packed_shamir.Make (F)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* T1: Table 1 — sortition parameters with a gap                       *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "T1. Table 1: committee sizes for gap eps > 0 (paper Section 6)";
  Printf.printf "%7s %5s | %7s %7s %7s %6s %7s\n" "C" "f" "t" "c" "c'" "eps" "k";
  List.iter
    (fun (c_param, f, row) ->
      match row with
      | None -> Printf.printf "%7d %5.2f | %7s %7s %7s %6s %7s\n" c_param f "⊥" "⊥" "⊥" "⊥" "⊥"
      | Some r ->
        Printf.printf "%7d %5.2f | %7d %7d %7d %6.2f %7d\n" c_param f r.Analysis.t
          r.Analysis.c r.Analysis.c' r.Analysis.eps r.Analysis.k)
    (Analysis.table1 ());
  Printf.printf
    "(paper's Table 1 values reproduce within rounding: |t| <= 1, |c| <= 3, |k| <= 3)\n"

(* ------------------------------------------------------------------ *)
(* E1: headline improvement claims                                     *)
(* ------------------------------------------------------------------ *)

let improvements () =
  header "E1. Claimed online-communication improvement factors (Section 1.1.2)";
  List.iter
    (fun (label, r) ->
      Printf.printf
        "  %s\n    committee %d (vs %d without gap, +%.1f%%), eps = %.3f -> improvement k = %d\n"
        label r.Analysis.c r.Analysis.c'
        (100.0 *. (float_of_int r.Analysis.c /. float_of_int r.Analysis.c' -. 1.0))
        r.Analysis.eps r.Analysis.k)
    (Analysis.improvement_claims ());
  Printf.printf "  (paper claims: 28x at f=5%%, >1000x at f=20%%)\n"

(* ------------------------------------------------------------------ *)
(* E2/E3: measured communication, ours vs CDN baseline                 *)
(* ------------------------------------------------------------------ *)

let comm_sweep = [ 16; 24; 32; 48; 64; 96 ]

let comm_row n =
  let params = Params.of_gap ~n ~eps:0.125 () in
  let k = params.Params.k in
  let width = n * k / 4 in
  let circuit = Gen.wide_mul_reduced ~width ~depth:2 ~clients:2 in
  let inputs c = Array.init (2 * width) (fun i -> F.of_int ((c + 2) * (i + 3))) in
  let ours = Protocol.execute ~params ~circuit ~inputs () in
  let cdn = Cdn.execute ~params ~circuit ~inputs () in
  assert (Protocol.check ours circuit ~inputs);
  assert (Cdn.check cdn circuit ~inputs);
  (n, k, ours.Protocol.num_mult, ours, cdn)

let online_comm () =
  header "E2. Online communication per gate: packed YOSO (ours) vs CDN [29]";
  Printf.printf "(wide circuits, width = n*k/4, depth 2; elements broadcast / mult gate)\n";
  Printf.printf "%5s %4s %7s | %12s %12s %8s\n" "n" "k" "gates" "ours" "CDN [29]" "CDN/ours";
  List.iter
    (fun n ->
      let n, k, gates, ours, cdn = comm_row n in
      let o = Protocol.online_per_gate ours and c = Cdn.online_per_gate cdn in
      Printf.printf "%5d %4d %7d | %12.1f %12.1f %8.2f\n" n k gates o c (c /. o))
    comm_sweep;
  Printf.printf
    "(expected shape: ours ~constant in n, CDN ~linear in n; crossover at small n)\n"

let offline_comm () =
  header "E3. Offline communication per gate (O(n), Theorem 1)";
  Printf.printf "%5s %4s %7s | %14s %14s\n" "n" "k" "gates" "offline/gate" "offline/(n*gate)";
  List.iter
    (fun n ->
      let n, k, gates, ours, _ = comm_row n in
      let o = Protocol.offline_per_gate ours in
      Printf.printf "%5d %4d %7d | %14.1f %14.2f\n" n k gates o (o /. float_of_int n))
    comm_sweep;
  Printf.printf "(offline/(n*gate) ~constant confirms the O(n)-per-gate bound)\n"

let bgw_comparison () =
  header "E2b. Information-theoretic baseline: semi-honest BGW (Section 1.2)";
  Printf.printf "(fixed 8x2 wide circuit; online elements per mult gate)\n";
  Printf.printf "%5s | %10s %10s %10s\n" "n" "ours" "CDN [29]" "BGW [5]";
  List.iter
    (fun n ->
      let t = (n - 1) / 2 in
      let params = Params.create ~n ~t:(max 0 (n / 3)) ~k:2 () in
      let circuit = Gen.wide_mul_reduced ~width:8 ~depth:2 ~clients:2 in
      let inputs c = Array.init 16 (fun i -> F.of_int ((c + 2) * (i + 3))) in
      let ours = Protocol.execute ~params ~circuit ~inputs () in
      let cdn = Cdn.execute ~params ~circuit ~inputs () in
      let bgw = Bgw.execute ~n ~t ~circuit ~inputs () in
      assert (Protocol.check ours circuit ~inputs);
      assert (Cdn.check cdn circuit ~inputs);
      assert (Bgw.check bgw circuit ~inputs);
      Printf.printf "%5d | %10.1f %10.1f %10.1f\n" n (Protocol.online_per_gate ours)
        (Cdn.online_per_gate cdn) (Bgw.online_per_gate bgw))
    [ 9; 18; 36 ];
  Printf.printf
    "(BGW re-shares every live wire each round: the 'prohibitively high' IT cost)\n"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_eps () =
  header "A1. Ablation: gap eps vs packing factor and communication (n = 64)";
  Printf.printf "%6s %4s %4s | %12s %12s %14s\n" "eps" "t" "k" "online/gate" "offline/gate"
    "recon thresh";
  List.iter
    (fun eps ->
      let params = Params.of_gap ~n:64 ~eps () in
      let width = 64 * params.Params.k / 4 in
      let circuit = Gen.wide_mul_reduced ~width ~depth:2 ~clients:2 in
      let inputs c = Array.init (2 * width) (fun i -> F.of_int ((c + 2) * (i + 3))) in
      let r = Protocol.execute ~params ~circuit ~inputs () in
      assert (Protocol.check r circuit ~inputs);
      Printf.printf "%6.2f %4d %4d | %12.1f %12.1f %14d\n" eps params.Params.t
        params.Params.k (Protocol.online_per_gate r) (Protocol.offline_per_gate r)
        (Params.reconstruction_threshold params))
    [ 0.05; 0.10; 0.15; 0.20; 0.25 ];
  Printf.printf "(larger gap -> larger k -> cheaper online, at lower corruption tolerance)\n"

let ablation_amortization () =
  header "A2. Ablation: gates handled per committee (tsk re-share amortisation, n = 32)";
  Printf.printf "%14s | %12s %14s %12s\n" "gates/cmte" "online/gate" "offline/gate"
    "committees";
  List.iter
    (fun gpc ->
      let params = Params.create ~gates_per_committee:gpc ~n:32 ~t:10 ~k:4 () in
      let circuit = Gen.wide_mul_reduced ~width:64 ~depth:2 ~clients:2 in
      let inputs c = Array.init 128 (fun i -> F.of_int ((c + 2) * (i + 3))) in
      let r = Protocol.execute ~params ~circuit ~inputs () in
      assert (Protocol.check r circuit ~inputs);
      Printf.printf "%14d | %12.1f %14.1f %12d\n" gpc (Protocol.online_per_gate r)
        (Protocol.offline_per_gate r) r.Protocol.committees)
    [ 8; 16; 32; 64; 128; 256 ];
  Printf.printf
    "(a committee handling fewer values means more tsk hand-offs, each O(n^2): the\n paper's amortisation assumes committees process O(n) gates or more)\n"

(* ------------------------------------------------------------------ *)
(* E7: measured wire bytes over the simulated network                  *)
(* ------------------------------------------------------------------ *)

(* Fixed circuit (256 mult gates), growing committees with a constant
   corruption ratio t = k = n/4, so n/k is constant and the online
   *data* bytes per gate — the paper's O(1) claim, now measured on the
   wire rather than counted — must come out flat across n.  Totals
   (which include the per-member proof overhead and the offline O(n)
   material) are reported alongside and do grow. *)
let net_sweep = [ 16; 32; 64; 128 ]

let net_bytes () =
  header "E7. Measured communication (bytes on the simulated wire), fixed circuit";
  let width = 128 and depth = 2 in
  let circuit = Gen.wide_mul_reduced ~width ~depth ~clients:2 in
  let inputs c = Array.init (2 * width) (fun i -> F.of_int ((c + 2) * (i + 3))) in
  let row n =
    let params = Params.create ~n ~t:(n / 4) ~k:(n / 4) () in
    let config = Protocol.config ~seed:0xBE7 () in
    let r = Protocol.execute ~params ~config ~circuit ~inputs () in
    assert (Protocol.check r circuit ~inputs);
    (n, params, r)
  in
  let rows = List.map row net_sweep in
  (* byte-identical replay of the first configuration *)
  let replay_ok =
    let _, _, again = row (List.hd net_sweep) in
    let _, _, first = List.hd rows in
    again.Protocol.transcript = first.Protocol.transcript
  in
  Printf.printf "%5s %4s %7s | %14s %12s %14s %16s\n" "n" "k" "gates" "online data B/g"
    "online B/g" "offline B/g" "frames (bytes)";
  List.iter
    (fun (n, params, r) ->
      Printf.printf "%5d %4d %7d | %14.1f %12.1f %14.1f %7d (%d)\n" n params.Params.k
        r.Protocol.num_mult
        (Protocol.online_field_bytes_per_gate r)
        (Protocol.online_bytes_per_gate r)
        (Protocol.offline_bytes_per_gate r)
        r.Protocol.transcript.Yoso_net.Board.frames
        r.Protocol.transcript.Yoso_net.Board.frame_bytes)
    rows;
  let data_per_gate = List.map (fun (_, _, r) -> Protocol.online_field_bytes_per_gate r) rows in
  let dmin = List.fold_left min (List.hd data_per_gate) data_per_gate in
  let dmax = List.fold_left max (List.hd data_per_gate) data_per_gate in
  let spread = (dmax -. dmin) /. dmin in
  Printf.printf
    "online data bytes/gate spread across n: %.2f%% (claim: < 5%%); replay byte-identical: %b\n"
    (100. *. spread) replay_ok;
  (* machine-readable artifact *)
  let oc = open_out "BENCH_net.json" in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"experiment\": \"net\",\n  \"circuit\": {\"kind\": \"wide_mul_reduced\", \
        \"width\": %d, \"depth\": %d},\n"
       width depth);
  Buffer.add_string buf
    "  \"sizing\": {\"ciphertext_bytes\": 512, \"proof_bytes\": 32, \"partial_bytes\": \
     512, \"key_bytes\": 256},\n";
  Buffer.add_string buf "  \"rows\": [\n";
  List.iteri
    (fun i (n, params, r) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"n\": %d, \"t\": %d, \"k\": %d, \"mult_gates\": %d, \
            \"online_field_bytes\": %d, \"online_field_bytes_per_gate\": %.2f, \
            \"online_bytes\": %d, \"online_bytes_per_gate\": %.2f, \"offline_bytes\": \
            %d, \"offline_bytes_per_gate\": %.2f, \"setup_bytes\": %d, \"posts\": %d, \
            \"frames\": %d, \"frame_bytes\": %d, \"transcript_digest\": %d}%s\n"
           n params.Params.t params.Params.k r.Protocol.num_mult
           r.Protocol.online_field_bytes
           (Protocol.online_field_bytes_per_gate r)
           r.Protocol.online_bytes
           (Protocol.online_bytes_per_gate r)
           r.Protocol.offline_bytes
           (Protocol.offline_bytes_per_gate r)
           r.Protocol.setup_bytes r.Protocol.posts
           r.Protocol.transcript.Yoso_net.Board.frames
           r.Protocol.transcript.Yoso_net.Board.frame_bytes
           r.Protocol.transcript.Yoso_net.Board.digest
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"online_data_bytes_per_gate_spread\": %.6f,\n  \"flat_within_5pct\": %b,\n  \
        \"replay_byte_identical\": %b\n}\n"
       spread (spread < 0.05) replay_ok);
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_net.json\n";
  if spread >= 0.05 then failwith "net sweep: online data bytes/gate not flat within 5%"

(* ------------------------------------------------------------------ *)
(* E4: fail-stop tolerance (Section 5.4)                               *)
(* ------------------------------------------------------------------ *)

let failstop () =
  header "E4. Fail-stop tolerance: k ~ n*eps vs k ~ n*eps/2 (Section 5.4)";
  let n = 40 and eps = 0.2 in
  let standard = Params.of_gap ~n ~eps () in
  let fsmode = Params.of_gap ~n ~eps ~fail_stop_mode:true () in
  let circuit = Gen.dot_product ~len:6 in
  let inputs c = Array.init 6 (fun i -> F.of_int ((c + 2) * (i + 1))) in
  let attempt params dropped =
    let adversary =
      { Params.malicious = params.Params.t; passive = 0; fail_stop = dropped }
    in
    match Params.validate_adversary params adversary with
    | () ->
      let r =
        Protocol.execute ~params
          ~config:(Protocol.config ~adversary ())
          ~circuit ~inputs ()
      in
      if Protocol.check r circuit ~inputs then "delivered" else "WRONG"
    | exception Invalid_argument _ -> "infeasible"
  in
  Printf.printf "n = %d, eps = %.2f, t = %d malicious in every committee\n" n eps
    standard.Params.t;
  Printf.printf "%8s | %-22s %-22s\n" "crashes" "standard k=9" "fail-stop-mode k=5";
  List.iter
    (fun d ->
      Printf.printf "%8d | %-22s %-22s\n" d (attempt standard d) (attempt fsmode d))
    [ 0; 1; 2; 4; 6; 8; 9; 10 ];
  Printf.printf "(paper: halving the packing gain buys tolerance of ~n*eps crashes)\n"

(* ------------------------------------------------------------------ *)
(* E5: Monte-Carlo validation of the sortition bounds                  *)
(* ------------------------------------------------------------------ *)

let sortition_mc () =
  header "E5. Monte-Carlo sortition: do sampled committees satisfy the bounds?";
  let rng = Splitmix.of_int 0x50F7 in
  List.iter
    (fun (c_param, f) ->
      match Analysis.solve ~f c_param with
      | None -> Printf.printf "  C=%d f=%.2f: infeasible cell, skipped\n" c_param f
      | Some row ->
        let pool = max (20 * c_param) 100_000 in
        let stats = Sampler.run ~pool ~f ~row ~trials:2000 rng in
        Printf.printf
          "  C=%5d f=%.2f pool=%7d | size mean %.0f, corrupt max %d (t=%d), viol phi>=t: %d, viol gap: %d\n"
          c_param f pool stats.Sampler.mean_size stats.Sampler.max_corrupt row.Analysis.t
          stats.Sampler.corruption_bound_violations stats.Sampler.gap_violations)
    [ (1000, 0.05); (5000, 0.10); (5000, 0.15); (10000, 0.20) ];
  Printf.printf "(with k2 = k3 = 128 the failure probability is ~2^-128: zero violations)\n"

let randgen () =
  header "E6. YOSO distributed randomness generation (related work [39,38,37])";
  Printf.printf "%5s %4s | %10s %10s %12s %10s\n" "n" "t" "rej.deal" "rej.rev" "elements" "elems/role";
  List.iter
    (fun (n, t, bad_deal, bad_rev) ->
      let o =
        Yoso_mpc.Randgen.run ~n ~t ~malicious_dealers:bad_deal
          ~malicious_revealers:bad_rev ~seed:0x600D ()
      in
      Printf.printf "%5d %4d | %10d %10d %12d %10.1f\n" n t o.Yoso_mpc.Randgen.rejected_dealers
        o.Yoso_mpc.Randgen.rejected_reveals o.Yoso_mpc.Randgen.elements
        (float_of_int o.Yoso_mpc.Randgen.elements /. float_of_int (2 * n)))
    [ (16, 5, [], []); (16, 5, [ 1; 2 ], [ 0 ]); (64, 21, [], []); (64, 21, [ 3; 9; 11 ], [ 5; 6 ]) ];
  Printf.printf
    "(Feldman-verified beacon: cheating dealers/revealers are caught by group\n arithmetic; O(n) elements per role as in the PVSS-based YOSO beacons)\n"

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "B1. Primitive micro-benchmarks (Bechamel, ns/run)";
  let open Bechamel in
  let st = Random.State.make [| 0xBE |] in
  let sha_input = String.init 1024 (fun i -> Char.chr (i land 0xFF)) in
  let big_base = B.random_bits st 256 and big_exp = B.random_bits st 256 in
  let big_mod = B.add (B.random_bits st 256) B.one in
  let pk, _sk = Yoso_paillier.Paillier.keygen ~bits:128 ~rng:st () in
  let msg = B.random_below st pk.Yoso_paillier.Paillier.n in
  let ps = PS.make_params ~n:64 ~k:8 in
  let secrets = Array.init 8 (fun _ -> F.random st) in
  let sharing = PS.share ps ~degree:39 ~secrets ~rng:st in
  let pairs = Array.to_list (Array.mapi (fun i v -> (i, v)) sharing.PS.shares) in
  let small_protocol () =
    let params = Params.create ~n:8 ~t:2 ~k:2 () in
    let circuit = Gen.dot_product ~len:4 in
    let inputs c = Array.init 4 (fun i -> F.of_int (c + i + 1)) in
    ignore (Protocol.execute ~params ~circuit ~inputs ())
  in
  let tests =
    Test.make_grouped ~name:"primitives"
      [
        Test.make ~name:"sha256-1KiB" (Staged.stage (fun () -> ignore (Yoso_hash.Sha256.digest_string sha_input)));
        Test.make ~name:"bigint-modpow-256b" (Staged.stage (fun () -> ignore (B.powmod big_base big_exp big_mod)));
        Test.make ~name:"paillier-encrypt-128b" (Staged.stage (fun () -> ignore (Yoso_paillier.Paillier.encrypt pk ~rng:st msg)));
        Test.make ~name:"packed-share-n64-k8" (Staged.stage (fun () -> ignore (PS.share ps ~degree:39 ~secrets ~rng:st)));
        Test.make ~name:"packed-reconstruct-n64-k8" (Staged.stage (fun () -> ignore (PS.reconstruct ps ~degree:39 pairs)));
        Test.make ~name:"e2e-protocol-n8-dot4" (Staged.stage small_protocol);
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> Printf.printf "  %-28s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* E8: wall-clock timing, naive vs Montgomery arithmetic backends      *)
(* ------------------------------------------------------------------ *)

module P = Yoso_paillier.Paillier
module T = Yoso_paillier.Threshold
module Pool = Yoso_parallel.Pool

let smoke = ref false
let profile = ref false

let wall f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* Interleaved A/B timing for kernel comparisons.  The wall-clock
   speed of a shared box drifts by large factors between runs, so
   timing [fa] to completion and then [fb] measures the drift, not the
   kernels.  Instead the two measurands alternate in small batches
   within each epoch — drift hits both sides of an epoch equally — and
   the reported speedup of [fa] over [fb] is the median of the
   per-epoch ratios. *)
let ab_speedup fa fb =
  let epochs = if !smoke then 3 else 7 in
  let batch_s = if !smoke then 0.004 else 0.03 in
  let epoch reps =
    let ta = ref 0.0 and tb = ref 0.0 in
    for _ = 1 to 8 do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        fa ()
      done;
      let t1 = Unix.gettimeofday () in
      for _ = 1 to reps do
        fb ()
      done;
      let t2 = Unix.gettimeofday () in
      ta := !ta +. (t1 -. t0);
      tb := !tb +. (t2 -. t1)
    done;
    !tb /. !ta
  in
  let t0 = Unix.gettimeofday () in
  fa ();
  fb ();
  let per = Float.max 1e-7 (Unix.gettimeofday () -. t0) in
  let reps = max 1 (int_of_float (batch_s /. per)) in
  ignore (epoch reps) (* warm *);
  let rs = List.sort compare (List.init epochs (fun _ -> epoch reps)) in
  List.nth rs (epochs / 2)

(* per-operation wall-clock ms: grow the iteration count until the
   measured window is long enough to trust, then average *)
let per_op_ms f =
  let min_total = if !smoke then 0.02 else 0.25 in
  ignore (f ());
  let rec go iters =
    let t = wall (fun () -> for _ = 1 to iters do ignore (f ()) done) in
    if t >= min_total then t *. 1000. /. float_of_int iters else go (iters * 4)
  in
  go 1

let time_sweep () = if !smoke then [ 16 ] else [ 16; 32; 64; 128 ]

let time_bench () =
  header "E8. Wall-clock timing: naive vs Montgomery backends";
  let bits = if !smoke then 96 else 256 in
  let st = Random.State.make [| 0x71AE |] in
  let keygen_ms = per_op_ms (fun () -> P.keygen ~bits ~rng:st ()) in
  let tpk, shares = T.keygen ~bits ~n:5 ~t:2 ~rng:st () in
  let pk = tpk.T.pk in
  let pctx = P.context pk in
  let tctx = T.context tpk in
  let m = B.random_below st pk.P.n in
  let r = P.sample_unit pk ~rng:st in
  (* equal outputs first: both backends must agree bit for bit *)
  let ct_naive = P.Reference.encrypt_with pk ~r m in
  let ct_mont = P.Ctx.encrypt_with pctx ~r m in
  if not (B.equal ct_naive.P.c ct_mont.P.c) then
    failwith "bench time: naive and Montgomery encryptions differ";
  let ct = ct_mont in
  let subset = [ 1; 2; 3 ] in
  let parts_naive = List.map (fun i -> T.Reference.partial_decrypt tpk shares.(i - 1) ct) subset in
  let parts_mont = List.map (fun i -> T.Ctx.partial_decrypt tctx shares.(i - 1) ct) subset in
  if parts_naive <> parts_mont then
    failwith "bench time: naive and Montgomery partial decryptions differ";
  let dec_naive = T.Reference.combine tpk parts_naive in
  let dec_mont = T.Ctx.combine tctx parts_mont in
  if not (B.equal dec_naive dec_mont && B.equal dec_naive m) then
    failwith "bench time: combine results differ or decrypt wrong";
  (* combine gets its own committee-sized configuration: at 3-of-5 the
     Lagrange weights are a dozen bits and there is nothing for the
     multiexp to amortize; 33-of-128 is the shape the protocol runs *)
  let comb_n = if !smoke then 8 else 128 in
  let comb_t = comb_n / 4 in
  let tpk_c, shares_c = T.keygen ~bits ~n:comb_n ~t:comb_t ~rng:st () in
  let tctx_c = T.context tpk_c in
  let m_c = B.random_below st tpk_c.T.pk.P.n in
  let ct_c = T.Ctx.encrypt tctx_c ~rng:st m_c in
  let parts_c =
    List.init (comb_t + 1) (fun i -> T.Ctx.partial_decrypt tctx_c shares_c.(i) ct_c)
  in
  if not (B.equal (T.Reference.combine tpk_c parts_c) m_c)
     || not (B.equal (T.Ctx.combine tctx_c parts_c) m_c)
  then failwith "bench time: committee-sized combine results differ or decrypt wrong";
  (* timings *)
  let enc_naive = per_op_ms (fun () -> P.Reference.encrypt_with pk ~r m) in
  let enc_mont = per_op_ms (fun () -> P.Ctx.encrypt_with pctx ~r m) in
  let tpdec_naive = per_op_ms (fun () -> T.Reference.partial_decrypt tpk shares.(0) ct) in
  let tpdec_mont = per_op_ms (fun () -> T.Ctx.partial_decrypt tctx shares.(0) ct) in
  let comb_naive = per_op_ms (fun () -> T.Reference.combine tpk_c parts_c) in
  let comb_mont = per_op_ms (fun () -> T.Ctx.combine tctx_c parts_c) in
  let row name naive mont =
    Printf.printf "  %-16s %10.4f ms %10.4f ms %8.2fx\n" name naive mont (naive /. mont)
  in
  Printf.printf "  %-16s %13s %13s %8s\n" "op" "naive" "mont" "speedup";
  Printf.printf "  %-16s %10.4f ms\n" "keygen" keygen_ms;
  row "encrypt" enc_naive enc_mont;
  row "partial-decrypt" tpdec_naive tpdec_mont;
  row (Printf.sprintf "combine %d-of-%d" (comb_t + 1) comb_n) comb_naive comb_mont;
  (* --- wide-limb kernel vs the retired 30-bit kernel, on the live
     modexp shapes behind the encrypt and partial-decrypt rows.
     Measured interleaved (see [ab_speedup]) and against an in-process
     baseline: comparing against mont_ms numbers recorded in an older
     BENCH_time.json would measure how much the box slowed down since,
     not the kernel. *)
  let n2 = B.mul pk.P.n pk.P.n in
  let wide_n2 = P.Ctx.mont_n2 pctx in
  let narrow_n2 = B.Mont.Narrow.create n2 in
  let base = P.raw ct in
  let e_enc = pk.P.n in
  let e_tpdec = B.abs (B.mul B.two (B.mul tpk.T.delta shares.(0).T.value)) in
  let kshape name e =
    if not
         (B.equal (B.Mont.powmod wide_n2 base e) (B.Mont.Narrow.powmod narrow_n2 base e))
    then failwith ("bench time: wide and 30-bit kernels disagree on " ^ name);
    let s =
      ab_speedup
        (fun () -> ignore (B.Mont.powmod wide_n2 base e))
        (fun () -> ignore (B.Mont.Narrow.powmod narrow_n2 base e))
    in
    Printf.printf "  kernel %-10s %4d-bit mod, %4d-bit exp:  62-bit vs 30-bit %5.2fx\n"
      name (B.bit_length n2) (B.bit_length e) s;
    s
  in
  let k_enc = kshape "encrypt" e_enc in
  let k_tpdec = kshape "tpdec" e_tpdec in
  (* full protocol wall clock over the sweep; equal seeds must give
     byte-identical transcripts (arithmetic backend cannot leak into
     the wire format) *)
  let circuit = Gen.dot_product ~len:8 in
  let inputs c = Array.init 8 (fun i -> F.of_int ((c + 2) * (i + 3))) in
  let protocol_rows =
    List.map
      (fun n ->
        let params = Params.create ~n ~t:(n / 4) ~k:(n / 4) () in
        let run () =
          Protocol.execute ~params
            ~config:(Protocol.config ~seed:0x7E11 ())
            ~circuit ~inputs ()
        in
        let r = ref None in
        let ms = wall (fun () -> r := Some (run ())) *. 1000. in
        let r = Option.get !r in
        assert (Protocol.check r circuit ~inputs);
        let identical = (run ()).Protocol.transcript = r.Protocol.transcript in
        if not identical then failwith "bench time: transcript not reproducible";
        Printf.printf "  protocol n=%-4d %10.1f ms  (transcript replay ok)\n" n ms;
        (n, params.Params.k, ms))
      (time_sweep ())
  in
  if not !smoke then begin
    if enc_naive /. enc_mont < 3.0 then
      failwith "bench time: encrypt speedup below 3x";
    if tpdec_naive /. tpdec_mont < 3.0 then
      failwith "bench time: partial-decrypt speedup below 3x";
    if comb_naive /. comb_mont < 3.0 then
      failwith "bench time: combine speedup below 3x";
    (* The wide kernel must beat the retired 30-bit kernel on both
       live shapes.  The bars are set from measured medians minus box
       variance, not from the 1.4x design target: at this modulus the
       30-bit baseline packs into 17 limbs while the 29-bit-radix wide
       kernel needs 18, which caps the honest win near 1.25x — see
       EXPERIMENTS.md E14 for the full account. *)
    if k_tpdec < 1.15 then failwith "bench time: tpdec-shape kernel speedup below 1.15x";
    if k_enc < 1.05 then failwith "bench time: encrypt-shape kernel speedup below 1.05x"
  end;
  if not !smoke then begin
    let b = Buffer.create 512 in
    let pair name naive mont =
      Buffer.add_string b
        (Printf.sprintf
           "\"%s\":{\"naive_ms\":%.4f,\"mont_ms\":%.4f,\"speedup\":%.2f}," name naive
           mont (naive /. mont))
    in
    Buffer.add_string b (Printf.sprintf "{\"bits\":%d,\"keygen_ms\":%.4f," bits keygen_ms);
    pair "encrypt" enc_naive enc_mont;
    pair "partial_decrypt" tpdec_naive tpdec_mont;
    Buffer.add_string b
      (Printf.sprintf
         "\"kernel\":{\"modulus_bits\":%d,\"encrypt_shape_speedup\":%.2f,\
          \"tpdec_shape_speedup\":%.2f},"
         (B.bit_length n2) k_enc k_tpdec);
    Buffer.add_string b
      (Printf.sprintf "\"combine\":{\"parties\":%d,\"threshold\":%d,\"naive_ms\":%.4f,\
                       \"multiexp_ms\":%.4f,\"speedup\":%.2f}," comb_n comb_t comb_naive
         comb_mont (comb_naive /. comb_mont));
    Buffer.add_string b "\"protocol\":[";
    List.iteri
      (fun i (n, k, ms) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "{\"n\":%d,\"k\":%d,\"ms\":%.1f}" n k ms))
      protocol_rows;
    Buffer.add_string b "],\"transcript_identical\":true}";
    let oc = open_out "BENCH_time.json" in
    output_string oc (Buffer.contents b);
    output_char oc '\n';
    close_out oc;
    Printf.printf "  wrote BENCH_time.json\n"
  end

(* ------------------------------------------------------------------ *)
(* E9: multicore committee execution + multi-exponentiation kernels    *)
(* ------------------------------------------------------------------ *)

let par_bench () =
  header "E9. Multicore committee execution: domains sweep + multiexp combine";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  hardware: %d core(s) recommended by the runtime\n" cores;

  (* --- combine: one Straus multiexp vs one powmod per partial,
     33-of-128, the acceptance configuration ----------------------- *)
  let bits = if !smoke then 96 else 256 in
  let n_parties = if !smoke then 16 else 128 in
  let t = (n_parties / 4) in
  let st = Random.State.make [| 0x9A12 |] in
  let tpk, shares = T.keygen ~bits ~n:n_parties ~t ~rng:st () in
  let tctx = T.context tpk in
  let m = B.random_below st tpk.T.pk.P.n in
  let ct = T.Ctx.encrypt tctx ~rng:st m in
  let parts =
    List.init (t + 1) (fun i -> T.Ctx.partial_decrypt tctx shares.(i) ct)
  in
  (* equal outputs before any timing *)
  let dec_multi = T.Ctx.combine tctx parts in
  let dec_powmods = T.Ctx.combine_powmods tctx parts in
  if not (B.equal dec_multi dec_powmods && B.equal dec_multi m) then
    failwith "bench par: multiexp and per-partial combine disagree";
  let comb_multi = per_op_ms (fun () -> T.Ctx.combine tctx parts) in
  let comb_powmods = per_op_ms (fun () -> T.Ctx.combine_powmods tctx parts) in
  Printf.printf
    "  combine %d-of-%d (%d-bit): powmods %.2f ms, multiexp %.2f ms, %.2fx\n"
    (t + 1) n_parties bits comb_powmods comb_multi (comb_powmods /. comb_multi);
  if (not !smoke) && comb_powmods /. comb_multi < 2.0 then
    failwith "bench par: multiexp combine speedup below 2x";

  (* --- kernel microbench: the 62-bit delayed-carry Montgomery kernel
     against the retired 30-bit kernel at protocol modulus sizes.
     Interleaved measurement (median of epoch ratios) because absolute
     timings on a shared box drift; equality of results is asserted at
     every size, the speedup floor only outside smoke mode where the
     epochs are long enough to trust.  These are the asserts the CI
     smoke run executes. *)
  Printf.printf "  kernel 62-bit vs 30-bit Montgomery modexp (interleaved medians):\n";
  let kernel_rows =
    List.map
      (fun kbits ->
        let kst = Random.State.make [| 0xC0DE + kbits |] in
        let m =
          let m = B.add (B.shift_left B.one (kbits - 1)) (B.random_bits kst (kbits - 1)) in
          if B.is_even m then B.add m B.one else m
        in
        let bse = B.random_below kst m in
        let e = B.random_bits kst kbits in
        let wide = B.Mont.create m in
        let narrow = B.Mont.Narrow.create m in
        if not (B.equal (B.Mont.powmod wide bse e) (B.Mont.Narrow.powmod narrow bse e))
        then failwith "bench par: wide and 30-bit kernels disagree";
        let s =
          ab_speedup
            (fun () -> ignore (B.Mont.powmod wide bse e))
            (fun () -> ignore (B.Mont.Narrow.powmod narrow bse e))
        in
        Printf.printf "    %4d-bit modulus: %5.2fx\n" kbits s;
        (kbits, s))
      (if !smoke then [ 512 ] else [ 512; 1024; 2048 ])
  in
  List.iter
    (fun (kbits, s) ->
      if (not !smoke) && s < 1.1 then
        failwith (Printf.sprintf "bench par: kernel speedup below 1.1x at %d bits" kbits);
      (* smoke epochs are short, so only guard against the wide kernel
         actually losing *)
      if !smoke && s < 0.9 then
        failwith (Printf.sprintf "bench par: wide kernel loses to 30-bit at %d bits" kbits))
    kernel_rows;

  (* --- protocol wall clock over an n x domains grid; the transcript
     digest must be identical in every cell of a row ---------------- *)
  let circuit = Gen.dot_product ~len:8 in
  let inputs c = Array.init 8 (fun i -> F.of_int ((c + 2) * (i + 3))) in
  let domain_sweep = if !smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let n_sweep = if !smoke then [ 16 ] else [ 16; 32; 64; 128 ] in
  Printf.printf "  %-6s" "n";
  List.iter (fun d -> Printf.printf " %9s" (Printf.sprintf "d=%d (ms)" d)) domain_sweep;
  Printf.printf " %9s\n" "digest ok";
  let grid =
    List.map
      (fun n ->
        let params = Params.create ~n ~t:(n / 4) ~k:(n / 4) () in
        let cells =
          List.map
            (fun domains ->
              let config = Protocol.config ~seed:0x9A12 ~domains () in
              let r = ref None in
              let ms =
                wall (fun () ->
                    r := Some (Protocol.execute ~params ~config ~circuit ~inputs ()))
                *. 1000.
              in
              let r = Option.get !r in
              assert (Protocol.check r circuit ~inputs);
              (domains, ms, r.Protocol.transcript.Yoso_net.Board.digest))
            domain_sweep
        in
        let _, _, base_digest = List.hd cells in
        let digests_equal =
          List.for_all (fun (_, _, d) -> d = base_digest) cells
        in
        if not digests_equal then
          failwith
            (Printf.sprintf "bench par: transcript digest varies with domains at n=%d" n);
        Printf.printf "  %-6d" n;
        List.iter (fun (_, ms, _) -> Printf.printf " %9.1f" ms) cells;
        Printf.printf " %9b\n" digests_equal;
        (n, params.Params.k, cells, base_digest))
      n_sweep
  in
  (* speedup acceptance only means something on real multicore
     hardware; the determinism checks above always run.  Every row
     with n >= 64 must show at least 1.5x at 4 domains. *)
  if (not !smoke) && cores >= 4 then
    List.iter
      (fun (n, _, cells, _) ->
        if n >= 64 then begin
          let ms_at d =
            match List.assoc_opt d (List.map (fun (d, ms, _) -> (d, ms)) cells) with
            | Some ms -> ms
            | None -> failwith "bench par: missing grid cell"
          in
          let speedup = ms_at 1 /. ms_at 4 in
          Printf.printf "  n=%d speedup at 4 domains: %.2fx\n" n speedup;
          if speedup < 1.5 then
            failwith
              (Printf.sprintf "bench par: n=%d speedup at 4 domains below 1.5x" n)
        end)
      grid
  else
    Printf.printf
      "  (speedup assertion skipped: %s)\n"
      (if !smoke then "smoke mode" else "fewer than 4 cores");

  (* --- optional per-domain chunk-time breakdown ------------------- *)
  if !profile then begin
    let n = if !smoke then 16 else 64 in
    let domains = if !smoke then 2 else 4 in
    Printf.printf "  profile: n=%d at %d domains (per-domain chunk times)\n" n domains;
    let params = Params.create ~n ~t:(n / 4) ~k:(n / 4) () in
    Pool.set_profiling true;
    ignore
      (Protocol.execute ~params
         ~config:(Protocol.config ~seed:0x9A12 ~domains ())
         ~circuit ~inputs ());
    Pool.set_profiling false;
    let samples = Pool.drain_profile () in
    let by_domain = Hashtbl.create 8 in
    List.iter
      (fun (d, _, ms) ->
        let cnt, tot, mx =
          Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt by_domain d)
        in
        Hashtbl.replace by_domain d (cnt + 1, tot +. ms, Float.max mx ms))
      samples;
    let doms = List.sort compare (Hashtbl.fold (fun d _ acc -> d :: acc) by_domain []) in
    List.iter
      (fun d ->
        let cnt, tot, mx = Hashtbl.find by_domain d in
        Printf.printf "    domain %d: %4d chunks, %8.1f ms total, %6.1f ms max chunk\n"
          d cnt tot mx)
      doms;
    if doms = [] then Printf.printf "    (no pooled chunks ran — 1-domain pools inline)\n"
  end;

  if not !smoke then begin
    let b = Buffer.create 1024 in
    (* [cores.recommended] is what [Domain.recommended_domain_count]
       reported; [cores.used] is the widest pool the grid actually
       ran.  Keeping both makes a grid recorded on a small box
       readable for what it is. *)
    Buffer.add_string b
      (Printf.sprintf "{\"experiment\":\"par\",\"cores\":{\"recommended\":%d,\"used\":%d},\
                       \"combine\":{\"parties\":%d,\
                       \"threshold\":%d,\"bits\":%d,\"powmods_ms\":%.4f,\"multiexp_ms\":\
                       %.4f,\"speedup\":%.2f},\"kernel\":["
         cores
         (List.fold_left max 1 domain_sweep)
         n_parties t bits comb_powmods comb_multi (comb_powmods /. comb_multi));
    List.iteri
      (fun i (kbits, s) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"bits\":%d,\"wide_vs_narrow_speedup\":%.2f}" kbits s))
      kernel_rows;
    Buffer.add_string b "],\"grid\":[";
    List.iteri
      (fun i (n, k, cells, digest) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "{\"n\":%d,\"k\":%d,\"cells\":[" n k);
        let ms1 =
          match cells with
          | (1, ms, _) :: _ -> ms
          | _ -> failwith "bench par: grid row missing the 1-domain cell"
        in
        List.iteri
          (fun j (d, ms, _) ->
            if j > 0 then Buffer.add_char b ',';
            (* speedup is relative to this row's own 1-domain cell, so
               the trajectory reads directly from the JSON *)
            Buffer.add_string b
              (Printf.sprintf "{\"domains\":%d,\"ms\":%.1f,\"speedup\":%.2f}" d ms
                 (ms1 /. ms)))
          cells;
        Buffer.add_string b
          (Printf.sprintf "],\"transcript_digest\":%d,\"digest_identical\":true}" digest))
      grid;
    Buffer.add_string b "]}";
    let oc = open_out "BENCH_par.json" in
    output_string oc (Buffer.contents b);
    output_char oc '\n';
    close_out oc;
    Printf.printf "  wrote BENCH_par.json\n"
  end

(* ------------------------------------------------------------------ *)
(* E10: multi-process socket transport vs in-process sim               *)
(* ------------------------------------------------------------------ *)

module Runner = Yoso_transport.Runner
module Daemon = Yoso_transport.Daemon
module Topology = Yoso_transport.Topology

let transport_bench () =
  header "E10. Socket transport: one OS process per committee member vs in-process sim";
  let n_sweep = if !smoke then [ 16 ] else [ 16; 32 ] in
  let circuit = Gen.dot_product ~len:8 in
  let inputs c = Array.init 8 (fun i -> F.of_int ((c + 2) * (i + 3))) in
  Printf.printf "  %-5s %-14s %10s %8s | %12s %8s %7s\n" "n" "geometry" "wall (ms)"
    "agree" "egress (B)" "vs bcast" "ratio";
  let rows =
    List.concat_map
      (fun n ->
        let params = Params.create ~n ~t:(n / 4) ~k:(n / 4) () in
        let seed = 0xE10 in
        let r = ref None in
        let sim_ms =
          wall (fun () ->
              r :=
                Some
                  (Protocol.execute ~params
                     ~config:(Protocol.config ~seed ())
                     ~circuit ~inputs ()))
          *. 1000.
        in
        let sim_r = Option.get !r in
        assert (Protocol.check sim_r circuit ~inputs);
        let child ~slot:_ ~link =
          let config =
            Protocol.config ~seed ~transport:"unix" ~link ()
          in
          Protocol.report_json (Protocol.execute ~params ~config ~circuit ~inputs ())
        in
        (* three geometries over the same seeded run: legacy broadcast,
           interest-routed, and interest-routed with a sharded board *)
        let geometries =
          [
            ("broadcast", None);
            ("routed", Some (Topology.routed ~nslots:n ()));
            ("routed+sharded", Some (Topology.routed ~shards:4 ~nslots:n ()));
          ]
        in
        let legacy_egress = ref 0 in
        List.map
          (fun (geometry, topology) ->
            let meter = Yoso_net.Meter.create () in
            let res = Runner.run ~meter ?topology ~nslots:n ~seed ~child () in
            let report = match res.Runner.reports with (_, j) :: _ -> j | [] -> "{}" in
            let field f = Runner.json_int_field report ~field:f in
            let digest_equal =
              field "digest" = Some sim_r.Protocol.transcript.Yoso_net.Board.digest
              && field "frames" = Some sim_r.Protocol.transcript.Yoso_net.Board.frames
              && field "frame_bytes"
                 = Some sim_r.Protocol.transcript.Yoso_net.Board.frame_bytes
            in
            let egress = res.Runner.stats.Daemon.bytes_out in
            if topology = None then legacy_egress := egress;
            let vs_legacy = float_of_int egress /. float_of_int (max 1 !legacy_egress) in
            let ratio = Yoso_net.Meter.routing_ratio meter in
            Printf.printf "  %-5d %-14s %10.1f %8b | %12d %7.0f%% %7.2f\n" n geometry
              res.Runner.wall_ms res.Runner.agree egress (vs_legacy *. 100.) ratio;
            if not (res.Runner.agree && digest_equal && res.Runner.down = []) then
              failwith
                (Printf.sprintf
                   "bench transport: n=%d %s run diverged from sim (agree=%b equal=%b)"
                   n geometry res.Runner.agree digest_equal);
            (match topology with
            | Some topo ->
              (* the daemon's stitched digest chain equals the board
                 transcript every member (and the sim) reports *)
              if res.Runner.stats.Daemon.digest
                 <> sim_r.Protocol.transcript.Yoso_net.Board.digest
              then
                failwith
                  (Printf.sprintf
                     "bench transport: n=%d %s daemon digest %d <> sim digest %d" n
                     geometry res.Runner.stats.Daemon.digest
                     sim_r.Protocol.transcript.Yoso_net.Board.digest);
              if res.Runner.stats.Daemon.shards <> topo.Topology.shards then
                failwith "bench transport: daemon shard count mismatch";
              (* routing must actually suppress traffic: the full-frame
                 share of routed deliveries is quorum/(n-1), far below 1 *)
              if ratio >= 0.5 then
                failwith
                  (Printf.sprintf "bench transport: n=%d %s routing ratio %.2f >= 0.5" n
                     geometry ratio);
              (* the headline claim: routed egress is at most a fifth of
                 the broadcast geometry's on the same run *)
              if egress * 5 > !legacy_egress then
                failwith
                  (Printf.sprintf
                     "bench transport: n=%d %s egress %d B > 1/5 of broadcast %d B" n
                     geometry egress !legacy_egress)
            | None -> ());
            (n, geometry, topology, sim_ms, res, sim_r, ratio, vs_legacy))
          geometries)
      n_sweep
  in
  Printf.printf
    "  (every report unanimous across all three geometries; routed members receive\n\
    \   full frames only from their quorum sources plus digest records from the rest,\n\
    \   yet the daemon's stitched digest chain still equals the in-process transcript)\n";
  if not !smoke then begin
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\"experiment\":\"transport\",\"endpoint\":\"unix\",\"rows\":[";
    List.iteri
      (fun i (n, geometry, topology, sim_ms, res, sim_r, ratio, vs_legacy) ->
        if i > 0 then Buffer.add_char b ',';
        let shards, quorum, routed =
          match topology with
          | Some (t : Topology.t) -> (t.Topology.shards, t.Topology.quorum, t.Topology.routed)
          | None -> (1, n - 1, false)
        in
        Buffer.add_string b
          (Printf.sprintf
             "{\"n\":%d,\"geometry\":%S,\"routed\":%b,\"shards\":%d,\"quorum\":%d,\
              \"sim_ms\":%.1f,\"unix_ms\":%.1f,\"agree\":%b,\
              \"transcript_digest\":%d,\"digest_identical\":true,\"frames_in\":%d,\
              \"frames_out\":%d,\"digests_out\":%d,\"batches_out\":%d,\
              \"suppressed_bytes\":%d,\"daemon_bytes_in\":%d,\"daemon_bytes_out\":%d,\
              \"egress_vs_broadcast\":%.4f,\"routing_ratio\":%.4f}"
             n geometry routed shards quorum sim_ms res.Runner.wall_ms res.Runner.agree
             sim_r.Protocol.transcript.Yoso_net.Board.digest
             res.Runner.stats.Daemon.frames_in res.Runner.stats.Daemon.frames_out
             res.Runner.stats.Daemon.digests_out res.Runner.stats.Daemon.batches_out
             res.Runner.stats.Daemon.suppressed_bytes res.Runner.stats.Daemon.bytes_in
             res.Runner.stats.Daemon.bytes_out vs_legacy ratio))
      rows;
    Buffer.add_string b "]}";
    let oc = open_out "BENCH_transport.json" in
    output_string oc (Buffer.contents b);
    output_char oc '\n';
    close_out oc;
    Printf.printf "  wrote BENCH_transport.json\n"
  end

(* ------------------------------------------------------------------ *)
(* E11: chaos sweep — faults below the protocol, transcript unchanged  *)
(* ------------------------------------------------------------------ *)

module Chaos = Yoso_transport.Chaos

let chaos_bench () =
  header
    "E11. Chaos harness: severs/delays/truncations/duplicates + daemon kill, \
     digest byte-identical to fault-free sim";
  let n = 8 in
  let params = Params.create ~n ~t:2 ~k:2 () in
  let circuit = Gen.dot_product ~len:8 in
  let inputs c = Array.init 8 (fun i -> F.of_int ((c + 2) * (i + 3))) in
  let seed = 0xE11 in
  let sim_r =
    Protocol.execute ~params ~config:(Protocol.config ~seed ()) ~circuit
      ~inputs ()
  in
  assert (Protocol.check sim_r circuit ~inputs);
  let frames = sim_r.Protocol.transcript.Yoso_net.Board.frames in
  let digest = sim_r.Protocol.transcript.Yoso_net.Board.digest in
  let child ~slot:_ ~link =
    let config =
      Protocol.config ~seed ~transport:"unix" ~link ()
    in
    Protocol.report_json (Protocol.execute ~params ~config ~circuit ~inputs ())
  in
  let with_journal f =
    let path = Filename.temp_file "yoso-bench-chaos" ".wal" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Sys.remove path;
        f path)
  in
  let run_case ~label ~chaos_config =
    with_journal (fun journal ->
        let chaos = Chaos.create chaos_config in
        let r = ref None in
        let wall_ms =
          wall (fun () ->
              r := Some (Runner.run ~journal ~chaos ~nslots:n ~seed ~child ()))
          *. 1000.
        in
        let res = Option.get !r in
        let report = match res.Runner.reports with (_, j) :: _ -> j | [] -> "{}" in
        let digest_equal = Runner.json_int_field report ~field:"digest" = Some digest in
        let clean =
          res.Runner.agree && res.Runner.down = [] && digest_equal
          && Runner.json_int_field report ~field:"faults_detected" = Some 0
          && List.length res.Runner.reports = n
        in
        if not clean then
          failwith
            (Printf.sprintf
               "bench chaos: case %s diverged (agree=%b down=%d digest_equal=%b)"
               label res.Runner.agree (List.length res.Runner.down) digest_equal);
        (label, wall_ms, res, digest_equal))
  in
  (* the drill from the issue: daemon killed mid-round, one forced
     disconnect per protocol phase (early/middle/late thirds) *)
  let drill_config =
    { Chaos.none with
      Chaos.seed;
      kill_at = [ frames / 2 ];
      sever_at = [ (frames / 6, 1); ((frames / 2) + (frames / 8), 2); (5 * frames / 6, 3) ];
    }
  in
  let rates = if !smoke then [ 0.05 ] else [ 0.0; 0.02; 0.05; 0.1 ] in
  let rate_config r =
    { Chaos.none with
      Chaos.seed;
      sever_rate = r;
      trunc_rate = r /. 2.;
      dup_rate = r /. 2.;
      delay_rate = r;
      delay_ms = 20.;
    }
  in
  Printf.printf "  %-12s %9s %9s %11s %9s %13s %7s\n" "case" "wall(ms)" "restarts"
    "reconnects" "replayed" "journal(B)" "digest";
  let cases =
    ("kill+sever", drill_config)
    :: List.map (fun r -> (Printf.sprintf "rate=%.2f" r, rate_config r)) rates
  in
  let rows =
    List.map
      (fun (label, cfg) ->
        let ((_, wall_ms, res, digest_equal) as row) = run_case ~label ~chaos_config:cfg in
        let st = res.Runner.stats in
        Printf.printf "  %-12s %9.1f %9d %11d %9d %13d %7b\n" label wall_ms
          res.Runner.restarts st.Daemon.reconnects st.Daemon.replayed_frames
          st.Daemon.journal_bytes digest_equal;
        if label = "kill+sever" && res.Runner.restarts <> 1 then
          failwith "bench chaos: kill point did not restart the daemon exactly once";
        row)
      cases
  in
  Printf.printf
    "  (every case: unanimous reports, zero blames, transcript digest byte-identical\n\
    \   to the fault-free sim — faults live below the protocol, recovery hides them)\n";
  if not !smoke then begin
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"experiment\":\"chaos\",\"n\":%d,\"frames\":%d,\"transcript_digest\":%d,\"rows\":["
         n frames digest);
    List.iteri
      (fun i (label, wall_ms, res, digest_equal) ->
        if i > 0 then Buffer.add_char b ',';
        let st = res.Runner.stats in
        Buffer.add_string b
          (Printf.sprintf
             "{\"case\":%S,\"wall_ms\":%.1f,\"restarts\":%d,\"reconnects\":%d,\
              \"replayed\":%d,\"recovered\":%d,\"journal_bytes\":%d,\
              \"digest_identical\":%b}"
             label wall_ms res.Runner.restarts st.Daemon.reconnects
             st.Daemon.replayed_frames st.Daemon.recovered_frames
             st.Daemon.journal_bytes digest_equal))
      rows;
    Buffer.add_string b "]}";
    let oc = open_out "BENCH_chaos.json" in
    output_string oc (Buffer.contents b);
    output_char oc '\n';
    close_out oc;
    Printf.printf "  wrote BENCH_chaos.json\n"
  end

(* ------------------------------------------------------------------ *)
(* E12: compiler front-end — pass-by-pass reductions + e2e cost        *)
(* ------------------------------------------------------------------ *)

module Lang = Yoso_lang.Compiler
module LProg = Yoso_lang.Programs
module Ir = Yoso_lang.Ir
module LAst = Yoso_lang.Ast

let compile_bench () =
  header "E12. yoso_lang compiler: pass pipeline reductions + e2e protocol cost";

  (* --- the four named programs: naive vs optimized, both checked
     against the reference interpreter ------------------------------ *)
  let named =
    if !smoke then
      [ ("auction", 3); ("variance", 4); ("tally", 5); ("linear_model", 4) ]
    else [ ("auction", 5); ("variance", 8); ("tally", 9); ("linear_model", 16) ]
  in
  Printf.printf "  %-14s | %19s | %19s | %7s\n" "program" "naive (muls/depth)"
    "optimized (muls/depth)" "checked";
  let named_rows =
    List.map
      (fun (name, size) ->
        let p = LProg.by_name name ~size in
        let opt = Lang.compile p in
        let naive = Lang.compile ~passes:[] p in
        let inputs = LProg.demo_inputs p ~seed:0xE12 in
        let ok = Lang.check opt ~inputs && Lang.check naive ~inputs in
        if not ok then
          failwith (Printf.sprintf "bench compile: %s disagrees with interpreter" name);
        let ns = naive.Lang.naive_stats and os = Lang.final_stats opt in
        Printf.printf "  %-14s | %10d / %-6d | %10d / %-6d | %7b\n" name ns.Ir.muls
          ns.Ir.depth os.Ir.muls os.Ir.depth ok;
        (name, size, opt, ns, os))
      named
  in
  (* CSE must merge the auction's duplicated pairwise comparisons *)
  (match List.find_opt (fun (n, _, _, _, _) -> n = "auction") named_rows with
  | Some (_, _, _, ns, os) ->
    if not (os.Ir.muls < ns.Ir.muls) then
      failwith "bench compile: optimization did not reduce auction multiplications"
  | None -> ());

  (* --- reassociation: a left-nested product chain must come out
     logarithmic ----------------------------------------------------- *)
  let chain_len = 16 in
  let chain =
    let b = LAst.B.create ~name:"chain" () in
    let xs =
      List.init chain_len (fun i ->
          LAst.B.input b ~client:0 (Printf.sprintf "x%d" i))
    in
    LAst.B.output b ~client:0 (LAst.prod xs);
    LAst.B.build b
  in
  let chain_naive = Lang.compile ~passes:[] chain in
  let chain_opt = Lang.compile chain in
  let chain_inputs = LProg.demo_inputs chain ~seed:7 in
  if not (Lang.check chain_opt ~inputs:chain_inputs && Lang.check chain_naive ~inputs:chain_inputs)
  then failwith "bench compile: chain program disagrees with interpreter";
  let cn = chain_naive.Lang.naive_stats and co = Lang.final_stats chain_opt in
  Printf.printf "  product chain (%d leaves): depth %d -> %d\n" chain_len cn.Ir.depth
    co.Ir.depth;
  if not (co.Ir.depth < cn.Ir.depth) then
    failwith "bench compile: reassociation did not reduce product-chain depth";

  (* --- random-expression family: fold+CSE must strictly shrink every
     seed (all nodes are live, so the shrink is never a DCE artifact) *)
  let nseeds = if !smoke then 6 else 24 in
  let random_rows =
    List.init nseeds (fun seed ->
        let p = LProg.random_program ~seed ~size:30 ~clients:3 in
        let opt = Lang.compile p in
        let inputs = LProg.demo_inputs p ~seed:(seed + 1) in
        if not (Lang.check opt ~inputs) then
          failwith (Printf.sprintf "bench compile: random seed %d disagrees" seed);
        let ns = opt.Lang.naive_stats and os = Lang.final_stats opt in
        if not (os.Ir.muls < ns.Ir.muls && os.Ir.nodes < ns.Ir.nodes) then
          failwith
            (Printf.sprintf
               "bench compile: seed %d not strictly smaller (muls %d->%d, nodes %d->%d)"
               seed ns.Ir.muls os.Ir.muls ns.Ir.nodes os.Ir.nodes);
        (seed, ns, os))
  in
  let total f = List.fold_left (fun a (_, ns, os) -> (fst a + f ns, snd a + f os)) (0, 0) random_rows in
  let muls_n, muls_o = total (fun s -> s.Ir.muls) in
  let nodes_n, nodes_o = total (fun s -> s.Ir.nodes) in
  let depth_n, depth_o = total (fun s -> s.Ir.depth) in
  Printf.printf
    "  random family (%d seeds): nodes %d -> %d (-%.1f%%), muls %d -> %d (-%.1f%%), \
     total depth %d -> %d\n"
    nseeds nodes_n nodes_o
    (100. *. float_of_int (nodes_n - nodes_o) /. float_of_int nodes_n)
    muls_n muls_o
    (100. *. float_of_int (muls_n - muls_o) /. float_of_int muls_n)
    depth_n depth_o;
  if depth_o > depth_n then
    failwith "bench compile: passes increased total depth over the random family";

  (* --- e2e protocol cost: the same auction, naively lowered vs
     optimized, through the full packed protocol --------------------- *)
  let p = LProg.auction ~bidders:3 ~width:(if !smoke then 4 else 8) () in
  let run compiled =
    let params = Params.create ~n:16 ~t:5 ~k:3 () in
    let inputs =
      Lang.protocol_inputs compiled ~inputs:(LProg.demo_inputs p ~seed:0xE12)
    in
    let circuit = compiled.Lang.circuit in
    let r = ref None in
    let ms = wall (fun () -> r := Some (Protocol.execute ~params ~circuit ~inputs ())) *. 1000. in
    let r = Option.get !r in
    assert (Protocol.check r circuit ~inputs);
    (r, ms)
  in
  let opt = Lang.compile p and naive = Lang.compile ~passes:[] p in
  let r_opt, ms_opt = run opt and r_naive, ms_naive = run naive in
  (* both executions must announce the same outputs as the interpreter *)
  let interp_outs = Yoso_lang.Interp.run p ~inputs:(LProg.demo_inputs p ~seed:0xE12) in
  let outs_of (r : Protocol.report) =
    List.map (fun o -> (o.Yoso_mpc.Online.client, o.Yoso_mpc.Online.value)) r.Protocol.outputs
  in
  if outs_of r_opt <> interp_outs || outs_of r_naive <> interp_outs then
    failwith "bench compile: protocol outputs differ from the interpreter";
  Printf.printf
    "  e2e auction: naive %d mult gates, %d online elements, %.0f ms\n\
    \               optimized %d mult gates, %d online elements, %.0f ms\n"
    r_naive.Protocol.num_mult r_naive.Protocol.online_elements ms_naive
    r_opt.Protocol.num_mult r_opt.Protocol.online_elements ms_opt;
  if not (r_opt.Protocol.online_elements < r_naive.Protocol.online_elements) then
    failwith "bench compile: optimized circuit not cheaper online than naive lowering";
  Printf.printf
    "  (identical outputs through the protocol; the compiler only removes work)\n";

  if not !smoke then begin
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"experiment\":\"compile\",\"programs\":[";
    List.iteri
      (fun i (name, size, opt, ns, os) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":%S,\"size\":%d,\"naive\":%s,\"final\":%s,\"passes\":[%s]}" name
             size (Ir.stats_json ns) (Ir.stats_json os)
             (String.concat ","
                (List.map
                   (fun (pass, s) ->
                     Printf.sprintf "{\"pass\":%S,\"after\":%s}" pass (Ir.stats_json s))
                   opt.Lang.pass_stats))))
      named_rows;
    Buffer.add_string b
      (Printf.sprintf
         "],\"chain\":{\"leaves\":%d,\"naive_depth\":%d,\"optimized_depth\":%d},"
         chain_len cn.Ir.depth co.Ir.depth);
    Buffer.add_string b
      (Printf.sprintf
         "\"random_family\":{\"seeds\":%d,\"nodes_naive\":%d,\"nodes_optimized\":%d,\
          \"muls_naive\":%d,\"muls_optimized\":%d,\"depth_naive\":%d,\
          \"depth_optimized\":%d,\"strictly_smaller_every_seed\":true},"
         nseeds nodes_n nodes_o muls_n muls_o depth_n depth_o);
    Buffer.add_string b
      (Printf.sprintf
         "\"e2e_auction\":{\"naive\":{\"mult_gates\":%d,\"online_elements\":%d,\
          \"offline_elements\":%d,\"posts\":%d},\"optimized\":{\"mult_gates\":%d,\
          \"online_elements\":%d,\"offline_elements\":%d,\"posts\":%d},\
          \"outputs_match_interpreter\":true}}"
         r_naive.Protocol.num_mult r_naive.Protocol.online_elements
         r_naive.Protocol.offline_elements r_naive.Protocol.posts
         r_opt.Protocol.num_mult r_opt.Protocol.online_elements
         r_opt.Protocol.offline_elements r_opt.Protocol.posts);
    let oc = open_out "BENCH_compile.json" in
    output_string oc (Buffer.contents b);
    output_char oc '\n';
    close_out oc;
    Printf.printf "  wrote BENCH_compile.json\n"
  end

(* ------------------------------------------------------------------ *)
(* F: factory — sustained streaming throughput over one depot          *)
(* ------------------------------------------------------------------ *)

module Factory = Yoso_factory.Factory
module Depot = Yoso_factory.Depot
module Offline = Yoso_mpc.Offline
module Feldman = Yoso_shamir.Feldman
module Meter = Yoso_net.Meter
module Board = Yoso_net.Board
module Circuit = Yoso_circuit.Circuit

let outputs_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Yoso_mpc.Online.output) (y : Yoso_mpc.Online.output) ->
         x.Yoso_mpc.Online.client = y.Yoso_mpc.Online.client
         && x.Yoso_mpc.Online.wire = y.Yoso_mpc.Online.wire
         && F.equal x.Yoso_mpc.Online.value y.Yoso_mpc.Online.value)
       a b

let factory_bench () =
  header "F. Offline factory: sustained gates/sec over a streamed circuit sequence";
  let circuits = if !smoke then 4 else 8 in
  let params =
    if !smoke then Params.create ~n:8 ~t:2 ~k:2 () else Params.create ~n:16 ~t:4 ~k:4 ()
  in
  let circuit =
    Gen.wide_mul_reduced
      ~width:(if !smoke then 4 else 8)
      ~depth:(if !smoke then 2 else 3)
      ~clients:2
  in
  let inputs_of j c =
    Array.init (2 * (if !smoke then 4 else 8)) (fun i -> F.of_int ((c + 2) * (i + 3) * (j + 5)))
  in
  let base_seed = 0xFAC709 in
  (* both sides run the same amortizations on the wire (the transcript
     must match); they differ only in the audit verifier — per-proof
     checks for the one-shot baseline, RLC aggregation for the stream —
     which is CPU-local and never posts *)
  let opts =
    { Offline.default_opts with Offline.audit_triples = true; packed_reenc = true }
  in
  let baseline_opts = { opts with Offline.audit_verify = `Each } in
  Feldman.prepare ();

  Printf.printf "  %d circuits (%d mult gates each), n=%d t=%d k=%d\n%!" circuits
    (Circuit.num_mul circuit) params.Params.n params.Params.t params.Params.k;
  let baseline = Array.make circuits None in
  let base_s =
    wall (fun () ->
        for j = 0 to circuits - 1 do
          baseline.(j) <-
            Some
              (Protocol.execute ~params
                 ~config:
                   (Protocol.config
                      ~seed:(Factory.derived_seed base_seed j)
                      ~offline:baseline_opts ())
                 ~circuit ~inputs:(inputs_of j) ())
        done)
  in
  let jobs =
    Array.init circuits (fun j -> { Factory.circuit; inputs = inputs_of j })
  in
  let streamed =
    Factory.stream ~params
      ~config:(Protocol.config ~seed:base_seed ~offline:opts ())
      ~jobs ()
  in
  let total_mult = streamed.Factory.total_mult in
  let base_gps = float_of_int total_mult /. base_s in
  let stream_gps = streamed.Factory.gates_per_sec in

  (* streamed outputs and transcripts must equal the independent
     one-shot runs — streaming changes the schedule, never the bytes *)
  List.iter
    (fun cr ->
      let one = Option.get baseline.(cr.Factory.index) in
      let sd = cr.Factory.report.Protocol.transcript.Board.digest in
      let od = one.Protocol.transcript.Board.digest in
      if sd <> od then
        failwith
          (Printf.sprintf "factory: circuit %d transcript diverged (%d vs %d)"
             cr.Factory.index sd od);
      if not (outputs_equal cr.Factory.report.Protocol.outputs one.Protocol.outputs) then
        failwith (Printf.sprintf "factory: circuit %d outputs diverged" cr.Factory.index);
      if not (Protocol.check cr.Factory.report circuit ~inputs:(inputs_of cr.Factory.index))
      then failwith (Printf.sprintf "factory: circuit %d outputs wrong" cr.Factory.index))
    streamed.Factory.results;
  Printf.printf "  streamed outputs / digests == one-shot runs: true\n";

  let d = streamed.Factory.depot in
  Printf.printf "  one-shot : %7.1f gates/s (%.1f ms total)\n" base_gps (base_s *. 1000.);
  Printf.printf "  streamed : %7.1f gates/s (%.1f ms total, %.2fx)\n" stream_gps
    streamed.Factory.wall_ms (stream_gps /. base_gps);
  Printf.printf
    "  depot    : peak %d/%d units, %d puts, %d refills during online, producer \
     blocked %d, consumer blocked %d\n"
    d.Depot.max_occupancy d.Depot.puts d.Depot.puts streamed.Factory.refills_during_online
    d.Depot.producer_blocks d.Depot.consumer_blocks;
  Printf.printf "  refills  : %d batches, %d B attributed\n"
    (List.length (Meter.refills streamed.Factory.meter))
    (Meter.refill_total streamed.Factory.meter);
  if streamed.Factory.refills_during_online = 0 then
    failwith "factory: no producer/consumer overlap observed";
  (* the stream must sustain at least one-shot throughput: it saves
     the per-proof audit exponentiations (RLC) and overlaps
     preprocessing with online execution.  The full bar only means
     something with a core for each side of the pipeline — on one
     core the two domains time-slice and every minor GC syncs them,
     so there (and in smoke mode, where circuits are tiny) only a
     pipeline-not-pathological floor applies. *)
  let cores = Domain.recommended_domain_count () in
  let floor, why =
    if (not !smoke) && cores >= 2 then (1.0, "full bar")
    else (0.4, if !smoke then "smoke mode" else "single core")
  in
  Printf.printf "  throughput bar: streamed >= %.2fx one-shot (%s)\n" floor why;
  if stream_gps < floor *. base_gps then
    failwith
      (Printf.sprintf "factory: streamed %.1f gates/s < %.2fx one-shot %.1f gates/s"
         stream_gps floor base_gps);

  (* RLC audit verification vs per-proof checks, same proof set *)
  let m = if !smoke then 48 else 256 in
  let rng = Random.State.make [| 0xFACB; m |] in
  let batch =
    Array.init m (fun _ ->
        let x = F.random rng and y = F.random rng in
        Feldman.Product.prove ~rng ~x ~y ~z:(F.mul x y))
  in
  let reps = if !smoke then 20 else 50 in
  let each_s =
    wall (fun () ->
        for _ = 1 to reps do
          if not (Array.for_all (fun (st, p) -> Feldman.Product.verify st p) batch) then
            failwith "factory: honest proof rejected"
        done)
  in
  let rlc_s =
    wall (fun () ->
        for _ = 1 to reps do
          if not (Feldman.Product.verify_batch batch) then
            failwith "factory: honest batch rejected"
        done)
  in
  let each_us = each_s *. 1e6 /. float_of_int (reps * m) in
  let rlc_us = rlc_s *. 1e6 /. float_of_int (reps * m) in
  Printf.printf "  audit    : per-proof %.2f us/triple, RLC %.2f us/triple (%.1fx)\n"
    each_us rlc_us (each_us /. rlc_us);
  if (not !smoke) && rlc_us >= each_us then
    failwith "factory: RLC verification not cheaper than per-proof checks";

  if not !smoke then begin
    let b = Buffer.create 512 in
    Printf.bprintf b
      "{\"circuits\":%d,\"total_mult\":%d,\"oneshot_gates_per_sec\":%.2f,\"streamed_gates_per_sec\":%.2f,\"speedup\":%.3f,"
      circuits total_mult base_gps stream_gps (stream_gps /. base_gps);
    Printf.bprintf b "\"audit_each_us_per_triple\":%.3f,\"audit_rlc_us_per_triple\":%.3f,"
      each_us rlc_us;
    Printf.bprintf b "\"stream\":%s}" (Factory.report_json streamed);
    let oc = open_out "BENCH_factory.json" in
    output_string oc (Buffer.contents b);
    output_char oc '\n';
    close_out oc;
    Printf.printf "  wrote BENCH_factory.json\n"
  end

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("improvements", improvements);
    ("online-comm", online_comm);
    ("bgw", bgw_comparison);
    ("offline-comm", offline_comm);
    ("net", net_bytes);
    ("ablation-eps", ablation_eps);
    ("ablation-amortization", ablation_amortization);
    ("failstop", failstop);
    ("sortition-mc", sortition_mc);
    ("randgen", randgen);
    ("micro", micro);
    ("time", time_bench);
    ("par", par_bench);
    ("transport", transport_bench);
    ("chaos", chaos_bench);
    ("compile", compile_bench);
    ("factory", factory_bench);
  ]

let () =
  let args =
    Array.to_list Sys.argv |> List.tl |> List.filter (fun a -> a <> "--")
  in
  let args =
    List.filter
      (fun a ->
        match a with
        | "--smoke" ->
          smoke := true;
          false
        | "--profile" ->
          profile := true;
          false
        | _ -> true)
      args
  in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
      names
