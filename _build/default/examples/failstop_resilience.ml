(* Fail-stop resilience (Section 5.4 of the paper).

   By halving the packing gap (k ~ n*eps/2 instead of n*eps) the
   protocol keeps working even when n*eps honest roles crash or time
   out in every committee — on top of t malicious roles.  This example
   sweeps the number of silent roles in standard mode and in fail-stop
   mode and shows where each configuration stops being viable.

   Run with:  dune exec examples/failstop_resilience.exe *)

module F = Yoso_field.Field.Fp
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Gen = Yoso_circuit.Generators

let n = 40
let eps = 0.2

let attempt params dropped =
  let circuit = Gen.dot_product ~len:6 in
  let inputs c = Array.init 6 (fun i -> F.of_int ((c + 2) * (i + 1))) in
  let adversary = { Params.malicious = params.Params.t; passive = 0; fail_stop = dropped } in
  match Params.validate_adversary params adversary with
  | () ->
    let report = Protocol.execute ~params ~adversary ~circuit ~inputs () in
    if Protocol.check report circuit ~inputs then `Delivered else `Wrong
  | exception Invalid_argument _ -> `Infeasible

let describe = function
  | `Delivered -> "output delivered"
  | `Wrong -> "WRONG OUTPUT (bug!)"
  | `Infeasible -> "not enough speaking roles"

let () =
  let standard = Params.of_gap ~n ~eps () in
  let failstop = Params.of_gap ~n ~eps ~fail_stop_mode:true () in
  Format.printf "Fail-stop tolerance, n = %d, eps = %.2f, t = %d malicious everywhere@." n
    eps standard.Params.t;
  Format.printf "  standard mode: k = %d  (headroom %d silent roles)@." standard.Params.k
    (Params.max_fail_stop standard
       { Params.malicious = standard.Params.t; passive = 0; fail_stop = 0 });
  Format.printf "  fail-stop mode: k = %d  (headroom %d silent roles)@." failstop.Params.k
    (Params.max_fail_stop failstop
       { Params.malicious = failstop.Params.t; passive = 0; fail_stop = 0 });
  Format.printf "@.  %-8s %-28s %-28s@." "crashes" "standard (k~n*eps)" "fail-stop (k~n*eps/2)";
  List.iter
    (fun dropped ->
      Format.printf "  %-8d %-28s %-28s@." dropped
        (describe (attempt standard dropped))
        (describe (attempt failstop dropped)))
    [ 0; 2; 4; 6; 8; 10 ]
