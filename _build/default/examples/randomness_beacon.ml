(* Randomness beacon: two YOSO committees produce a public random
   value that no party — not even a coordinating minority — can bias.
   This is the specialised functionality studied by the
   worst-case-corruption YOSO line the paper surveys; here it runs on
   Feldman-verifiable sharing, so misbehaviour is caught by group
   arithmetic rather than by an idealised proof.

   Run with:  dune exec examples/randomness_beacon.exe *)

module F = Yoso_field.Field.Fp
module Randgen = Yoso_mpc.Randgen

let n = 10
let t = 3

let () =
  Format.printf "YOSO randomness beacon (n = %d roles per committee, t = %d)@." n t;
  let honest = Randgen.run ~n ~t ~seed:2026 () in
  Format.printf "  honest run:    value = %a  (%d broadcast elements)@." F.pp
    honest.Randgen.value honest.Randgen.elements;

  (* two dealers post malformed dealings, one revealer lies *)
  let attacked =
    Randgen.run ~n ~t ~malicious_dealers:[ 2; 7 ] ~malicious_revealers:[ 4 ] ~seed:2026 ()
  in
  Format.printf "  attacked run:  value = %a@." F.pp attacked.Randgen.value;
  Format.printf "    dealings rejected by share verification: %d@."
    attacked.Randgen.rejected_dealers;
  Format.printf "    reveal shares caught by the commitment check: %d@."
    attacked.Randgen.rejected_reveals;
  Format.printf "    qualified contributions aggregated: %d@."
    attacked.Randgen.qualified_dealers;

  (* lying at reveal time cannot move the output at all *)
  let reveal_only = Randgen.run ~n ~t ~malicious_revealers:[ 0; 1; 2 ] ~seed:2026 () in
  Format.printf "  reveal-only attack: value unchanged = %b@."
    (F.equal reveal_only.Randgen.value honest.Randgen.value)
