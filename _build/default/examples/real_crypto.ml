(* Real-cryptography path: the same CDN-style evaluation the paper
   builds on, executed over genuine threshold Paillier (from-scratch
   bignum arithmetic) with real Fiat-Shamir sigma proofs.  Two of the
   five committee members submit malformed Beaver contributions; their
   proofs fail verification and they are excluded, yet the output is
   still correct (guaranteed output delivery through proof
   filtering).

   Run with:  dune exec examples/real_crypto.exe *)

module B = Yoso_bigint.Bigint
module CP = Yoso_mpc.Cdn_paillier
module Gen = Yoso_circuit.Generators

let () =
  let circuit = Gen.dot_product ~len:4 in
  let xs = [| 17; 23; 5; 11 |] and ys = [| 3; 7; 13; 2 |] in
  let inputs c = Array.map B.of_int (if c = 0 then xs else ys) in

  Format.printf "Threshold-Paillier CDN evaluation (n = 5, t = 2, 96-bit modulus)@.";
  let honest = CP.execute ~n:5 ~t:2 ~circuit ~inputs () in
  (match honest.CP.outputs with
  | (_, _, v) :: _ -> Format.printf "  honest run: <x, y> = %s@." (B.to_string v)
  | [] -> ());
  Format.printf "  correct: %b, rejected contributions: %d@."
    (CP.check honest circuit ~inputs)
    honest.CP.rejected_contributions;

  let attacked = CP.execute ~n:5 ~t:2 ~malicious:[ 1; 3 ] ~circuit ~inputs () in
  Format.printf "  attacked run (members 1 and 3 cheat in Beaver generation):@.";
  Format.printf "    sigma proofs rejected: %d@." attacked.CP.rejected_contributions;
  Format.printf "    output still correct: %b@." (CP.check attacked circuit ~inputs)
