examples/quickstart.ml: Array Format List Yoso_circuit Yoso_field Yoso_mpc
