examples/federated_statistics.mli:
