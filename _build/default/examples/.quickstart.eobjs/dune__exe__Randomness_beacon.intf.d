examples/randomness_beacon.mli:
