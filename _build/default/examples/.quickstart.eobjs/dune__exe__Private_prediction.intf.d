examples/private_prediction.mli:
