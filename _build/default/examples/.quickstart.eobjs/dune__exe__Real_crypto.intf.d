examples/real_crypto.mli:
