examples/real_crypto.ml: Array Format Yoso_bigint Yoso_circuit Yoso_mpc
