examples/randomness_beacon.ml: Format Yoso_field Yoso_mpc
