examples/quickstart.mli:
