examples/private_prediction.ml: Array Format List Yoso_circuit Yoso_field Yoso_mpc
