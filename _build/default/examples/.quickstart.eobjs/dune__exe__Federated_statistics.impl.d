examples/federated_statistics.ml: Array Format Yoso_circuit Yoso_field Yoso_mpc
