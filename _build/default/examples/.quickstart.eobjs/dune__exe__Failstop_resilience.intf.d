examples/failstop_resilience.mli:
