module B = Yoso_bigint.Bigint

type public_key = { n : B.t; n2 : B.t; bits : int }

type secret_key = {
  pk : public_key;
  p : B.t;
  q : B.t;
  lambda : B.t;
  mu : B.t;
}

type ciphertext = { pk_n2 : B.t; c : B.t }

let keygen ?(bits = 128) st =
  if bits < 16 then invalid_arg "Paillier.keygen: modulus too small";
  let half = bits / 2 in
  let rec gen () =
    let p = B.random_prime st ~bits:half in
    let q = B.random_prime st ~bits:half in
    if B.equal p q then gen () else (p, q)
  in
  let p, q = gen () in
  let n = B.mul p q in
  let n2 = B.mul n n in
  let p1 = B.sub p B.one and q1 = B.sub q B.one in
  let lambda = B.div (B.mul p1 q1) (B.gcd p1 q1) in
  (* with g = 1 + N:  L(g^lambda mod N^2) = lambda, so mu = lambda^-1 *)
  let mu = B.invmod lambda n in
  let pk = { n; n2; bits } in
  (pk, { pk; p; q; lambda; mu })

(* (1 + N)^m = 1 + m*N mod N^2 *)
let g_pow pk m =
  let m = B.erem m pk.n in
  B.erem (B.add B.one (B.mul m pk.n)) pk.n2

let sample_unit pk st =
  let rec go () =
    let r = B.random_below st pk.n in
    if B.is_zero r || not (B.is_one (B.gcd r pk.n)) then go () else r
  in
  go ()

let encrypt_with pk ~r m =
  if not (B.is_one (B.gcd r pk.n)) then
    invalid_arg "Paillier.encrypt_with: randomness not a unit";
  let c = B.mulmod (g_pow pk m) (B.powmod r pk.n pk.n2) pk.n2 in
  { pk_n2 = pk.n2; c }

let encrypt pk st m = encrypt_with pk ~r:(sample_unit pk st) m

(* L(x) = (x - 1) / N for x = 1 mod N *)
let l_function pk x = B.div (B.sub x B.one) pk.n

let decrypt sk ct =
  if not (B.equal ct.pk_n2 sk.pk.n2) then
    invalid_arg "Paillier.decrypt: ciphertext under a different key";
  let x = B.powmod ct.c sk.lambda sk.pk.n2 in
  B.erem (B.mul (l_function sk.pk x) sk.mu) sk.pk.n

let check_same pk ct =
  if not (B.equal ct.pk_n2 pk.n2) then
    invalid_arg "Paillier: ciphertext under a different key"

let add pk a b =
  check_same pk a;
  check_same pk b;
  { pk_n2 = pk.n2; c = B.mulmod a.c b.c pk.n2 }

let scalar_mul pk s ct =
  check_same pk ct;
  { pk_n2 = pk.n2; c = B.powmod ct.c (B.erem s pk.n) pk.n2 }

let linear_combination pk cts coeffs =
  if List.length cts <> List.length coeffs then
    invalid_arg "Paillier.linear_combination: length mismatch";
  List.fold_left2
    (fun acc ct coeff -> add pk acc (scalar_mul pk coeff ct))
    { pk_n2 = pk.n2; c = B.one }
    cts coeffs

let rerandomize pk st ct =
  check_same pk ct;
  let r = sample_unit pk st in
  { pk_n2 = pk.n2; c = B.mulmod ct.c (B.powmod r pk.n pk.n2) pk.n2 }

let raw ct = ct.c
let of_raw pk v = { pk_n2 = pk.n2; c = B.erem v pk.n2 }
