lib/paillier/paillier.ml: List Yoso_bigint
