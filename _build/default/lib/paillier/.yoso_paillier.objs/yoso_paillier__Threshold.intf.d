lib/paillier/threshold.mli: Paillier Random Yoso_bigint
