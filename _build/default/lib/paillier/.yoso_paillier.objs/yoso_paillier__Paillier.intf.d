lib/paillier/paillier.mli: Random Yoso_bigint
