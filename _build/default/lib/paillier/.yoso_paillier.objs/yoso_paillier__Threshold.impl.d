lib/paillier/threshold.ml: Array Hashtbl List Paillier Printf Yoso_bigint
