(** Paillier encryption (Damgard-Jurik s = 1 form), from scratch.

    The paper instantiates its linearly homomorphic threshold
    encryption by "Shamir sharing a Paillier decryption key" [19, 29];
    this module provides the base (non-threshold) scheme over our
    {!Yoso_bigint}: plaintext ring [Z_N], ciphertexts in [Z_{N^2}],
    [Enc(m; r) = (1 + N)^m * r^N mod N^2]. *)

module B = Yoso_bigint.Bigint

type public_key = {
  n : B.t;          (** RSA modulus [N = p*q] *)
  n2 : B.t;         (** [N^2] *)
  bits : int;       (** modulus size used at key generation *)
}

type secret_key = {
  pk : public_key;
  p : B.t;
  q : B.t;
  lambda : B.t;     (** [lcm(p-1, q-1)] *)
  mu : B.t;         (** [lambda^{-1} mod N] *)
}

type ciphertext = private { pk_n2 : B.t; c : B.t }

val keygen : ?bits:int -> Random.State.t -> public_key * secret_key
(** Generates [bits/2]-bit primes [p, q] (default [bits = 128]; test
    scale, not production scale — documented in DESIGN.md). *)

val encrypt : public_key -> Random.State.t -> B.t -> ciphertext
(** [encrypt pk st m] for [m] reduced into [Z_N]. *)

val encrypt_with : public_key -> r:B.t -> B.t -> ciphertext
(** Deterministic variant with explicit randomness [r] coprime to [N]
    (used by sigma-protocol tests). *)

val decrypt : secret_key -> ciphertext -> B.t

val add : public_key -> ciphertext -> ciphertext -> ciphertext
(** Homomorphic addition of plaintexts. *)

val scalar_mul : public_key -> B.t -> ciphertext -> ciphertext
(** Homomorphic multiplication of the plaintext by a known scalar. *)

val linear_combination : public_key -> ciphertext list -> B.t list -> ciphertext
(** [TEval]: ciphertext of [sum_i coeff_i * m_i]. *)

val rerandomize : public_key -> Random.State.t -> ciphertext -> ciphertext
(** Fresh randomness, same plaintext. *)

val raw : ciphertext -> B.t
(** The underlying [Z_{N^2}] element (for transcripts/hashing). *)

val of_raw : public_key -> B.t -> ciphertext
(** Inject a received value; reduced mod [N^2]. *)
