(** Arbitrary-precision signed integers, from scratch.

    The sealed build environment has no [zarith], and threshold
    Paillier (the paper's linearly homomorphic threshold encryption
    instantiation, Section 4.1) needs multi-hundred-bit modular
    arithmetic: this module provides it.

    Representation: sign-magnitude with little-endian 30-bit limbs, so
    limb products fit comfortably in OCaml's 63-bit native [int].
    Values are immutable and always normalised (no leading zero limbs;
    zero has positive sign and empty magnitude). *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t
val of_int : int -> t

val to_int : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val fits_int : t -> bool

val of_string : string -> t
(** Decimal, with optional leading ['-']. @raise Invalid_argument on
    malformed input. *)

val to_string : t -> string

val of_hex : string -> t
(** Hex digits, no prefix, case-insensitive. *)

val to_hex : t -> string

val of_bytes_be : string -> t
(** Big-endian unsigned bytes. *)

val to_bytes_be : t -> string
(** Minimal big-endian encoding of the absolute value; [""] for zero. *)

(** {1 Predicates and comparisons} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

val bit_length : t -> int
(** Bits in the absolute value; [bit_length zero = 0]. *)

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t

val mul : t -> t -> t
(** Schoolbook below 32 limbs, Karatsuba above. *)

val divmod : t -> t -> t * t
(** Truncated division: [fst] rounds toward zero, [snd (divmod a b)]
    has the sign of [a].  @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val erem : t -> t -> t
(** Euclidean remainder, always in [\[0, |b|)]. *)

val pow : t -> int -> t
(** @raise Invalid_argument on negative exponent. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** {1 Modular and number-theoretic operations} *)

val addmod : t -> t -> t -> t
val mulmod : t -> t -> t -> t

val powmod : t -> t -> t -> t
(** [powmod b e m] with [e >= 0], [m > 0]. *)

val gcd : t -> t -> t

val extended_gcd : t -> t -> t * t * t
(** [(g, x, y)] with [a*x + b*y = g = gcd a b], [g >= 0]. *)

val invmod : t -> t -> t
(** Modular inverse in [\[0, m)].
    @raise Division_by_zero if not coprime. *)

val factorial : int -> t

(** {1 Randomness and primality} *)

val random_bits : Random.State.t -> int -> t
(** Uniform in [\[0, 2^bits)]. *)

val random_below : Random.State.t -> t -> t
(** Uniform in [\[0, bound)]; [bound > 0]. *)

val is_probable_prime : ?rounds:int -> Random.State.t -> t -> bool
(** Miller-Rabin with [rounds] random bases (default 20), preceded by
    trial division by small primes. *)

val random_prime : Random.State.t -> bits:int -> t
(** Random prime with exactly [bits] bits (top bit set). [bits >= 2]. *)

val random_safe_prime : Random.State.t -> bits:int -> t
(** Random safe prime [p = 2q + 1] with [q] prime. Slow for large
    [bits]; intended for test-sized parameters. *)

val pp : Format.formatter -> t -> unit
