(** Circuit-dependent layout: the batching step of Turbopack.

    Packs the circuit's multiplication gates, layer by layer, into
    batches of at most [k] gates — one packed sharing per batch — and
    groups each client's input wires into batches of [k].  This is the
    "network routing" structure the circuit-dependent preprocessing is
    built around (Section 3.1). *)

type mult_batch = {
  layer : int; (** multiplicative depth of the batch's outputs (>= 1) *)
  mult_gates : (Circuit.wire * Circuit.wire * Circuit.wire) array;
      (** (left in, right in, out) per gate; length in [1, k] *)
}

type t = private {
  circuit : Circuit.t;
  k : int;
  depths : int array; (** multiplicative depth per wire *)
  mult_layers : mult_batch list array; (** index [l-1] = batches of layer [l] *)
  input_batches : (int * Circuit.wire array) list;
      (** (client, wires) with [1 <= length <= k], in client order *)
}

val make : Circuit.t -> k:int -> t
(** @raise Invalid_argument if [k < 1]. *)

val num_mult_batches : t -> int
val num_input_batches : t -> int

val batches_of_layer : t -> int -> mult_batch list
(** Batches whose outputs live at multiplicative depth [l] (1-based).
    Empty list above the circuit depth. *)

val pad_to_k : t -> 'a array -> 'a -> 'a array
(** Right-pad a batch-indexed vector to length [k] with a dummy. *)
