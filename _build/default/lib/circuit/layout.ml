type mult_batch = {
  layer : int;
  mult_gates : (Circuit.wire * Circuit.wire * Circuit.wire) array;
}

type t = {
  circuit : Circuit.t;
  k : int;
  depths : int array;
  mult_layers : mult_batch list array;
  input_batches : (int * Circuit.wire array) list;
}

let chunk k arr =
  let n = Array.length arr in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let len = min k (n - i) in
      go (i + len) (Array.sub arr i len :: acc)
    end
  in
  go 0 []

(* recompute wire depths (same rule as Circuit.depth) *)
let wire_depths (c : Circuit.t) =
  let depths = Array.make c.Circuit.wire_count 0 in
  Array.iter
    (fun g ->
      match g with
      | Circuit.Input { wire; _ } -> depths.(wire) <- 0
      | Circuit.Add { a; b; out } -> depths.(out) <- max depths.(a) depths.(b)
      | Circuit.Mul { a; b; out } -> depths.(out) <- 1 + max depths.(a) depths.(b)
      | Circuit.Output _ -> ())
    c.Circuit.gates;
  depths

let make circuit ~k =
  if k < 1 then invalid_arg "Layout.make: k must be >= 1";
  let depths = wire_depths circuit in
  let max_depth =
    Array.fold_left
      (fun acc g ->
        match g with Circuit.Mul { out; _ } -> max acc depths.(out) | _ -> acc)
      0 circuit.Circuit.gates
  in
  (* gather mult gates per layer, in gate order *)
  let per_layer = Array.make (max_depth + 1) [] in
  Array.iter
    (fun g ->
      match g with
      | Circuit.Mul { a; b; out } ->
        let l = depths.(out) in
        per_layer.(l) <- (a, b, out) :: per_layer.(l)
      | Circuit.Input _ | Circuit.Add _ | Circuit.Output _ -> ())
    circuit.Circuit.gates;
  let mult_layers =
    Array.init max_depth (fun i ->
        let layer = i + 1 in
        let gates = Array.of_list (List.rev per_layer.(layer)) in
        List.map (fun mult_gates -> { layer; mult_gates }) (chunk k gates))
  in
  (* group each client's input wires *)
  let input_batches =
    List.concat_map
      (fun client ->
        let wires = Array.of_list (Circuit.input_wires_of_client circuit client) in
        List.map (fun ws -> (client, ws)) (chunk k wires))
      (Circuit.clients circuit)
    |> List.filter (fun (_, ws) -> Array.length ws > 0)
  in
  { circuit; k; depths; mult_layers; input_batches }

let num_mult_batches t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.mult_layers
let num_input_batches t = List.length t.input_batches

let batches_of_layer t l =
  if l < 1 || l > Array.length t.mult_layers then [] else t.mult_layers.(l - 1)

let pad_to_k t arr dummy =
  let len = Array.length arr in
  if len > t.k then invalid_arg "Layout.pad_to_k: batch longer than k";
  if len = t.k then arr
  else Array.append arr (Array.make (t.k - len) dummy)
