let to_string (c : Circuit.t) =
  let buf = Buffer.create 1024 in
  Array.iter
    (fun g ->
      (match g with
      | Circuit.Input { client; wire } -> Buffer.add_string buf (Printf.sprintf "input %d %d" client wire)
      | Circuit.Add { a; b; out } -> Buffer.add_string buf (Printf.sprintf "add %d %d %d" a b out)
      | Circuit.Mul { a; b; out } -> Buffer.add_string buf (Printf.sprintf "mul %d %d %d" a b out)
      | Circuit.Output { client; wire } ->
        Buffer.add_string buf (Printf.sprintf "output %d %d" client wire));
      Buffer.add_char buf '\n')
    c.Circuit.gates;
  Buffer.contents buf

let parse_error lineno msg =
  invalid_arg (Printf.sprintf "Circuit.Serial: line %d: %s" lineno msg)

let of_string text =
  let gates = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      (* strip comments and surrounding whitespace *)
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let line = String.trim line in
      if line <> "" then begin
        let int_of s =
          match int_of_string_opt s with
          | Some v -> v
          | None -> parse_error lineno (Printf.sprintf "expected an integer, got %S" s)
        in
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "input"; client; wire ] ->
          gates := Circuit.Input { client = int_of client; wire = int_of wire } :: !gates
        | [ "add"; a; b; out ] ->
          gates := Circuit.Add { a = int_of a; b = int_of b; out = int_of out } :: !gates
        | [ "mul"; a; b; out ] ->
          gates := Circuit.Mul { a = int_of a; b = int_of b; out = int_of out } :: !gates
        | [ "output"; client; wire ] ->
          gates := Circuit.Output { client = int_of client; wire = int_of wire } :: !gates
        | op :: _ -> parse_error lineno (Printf.sprintf "unknown or malformed gate %S" op)
        | [] -> ()
      end)
    lines;
  Circuit.of_gates (Array.of_list (List.rev !gates))

let to_file path c =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string c))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
