lib/circuit/circuit.ml: Array Format Hashtbl List Option Printf Yoso_field
