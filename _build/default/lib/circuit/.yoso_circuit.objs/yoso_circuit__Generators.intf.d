lib/circuit/generators.mli: Circuit
