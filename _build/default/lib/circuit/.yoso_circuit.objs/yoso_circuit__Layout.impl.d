lib/circuit/layout.ml: Array Circuit List
