lib/circuit/builder.ml: Array Circuit List
