lib/circuit/generators.ml: Array Builder List Yoso_hash
