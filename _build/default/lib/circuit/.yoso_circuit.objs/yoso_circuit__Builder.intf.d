lib/circuit/builder.mli: Circuit
