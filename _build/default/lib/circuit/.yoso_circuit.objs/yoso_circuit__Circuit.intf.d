lib/circuit/circuit.mli: Format Yoso_field
