lib/circuit/serial.ml: Array Buffer Circuit Fun List Printf String
