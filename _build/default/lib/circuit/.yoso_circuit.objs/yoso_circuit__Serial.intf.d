lib/circuit/serial.mli: Circuit
