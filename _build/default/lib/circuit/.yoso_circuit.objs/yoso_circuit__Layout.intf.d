lib/circuit/layout.mli: Circuit
