(** Imperative circuit builder.

    Produces gates in topological order by construction; wire handles
    are only obtainable from gate-creating calls, so use-before-define
    is impossible through this interface. *)

type t

val create : unit -> t

val input : t -> client:int -> Circuit.wire
val add : t -> Circuit.wire -> Circuit.wire -> Circuit.wire
val mul : t -> Circuit.wire -> Circuit.wire -> Circuit.wire
val sub_via_mul : t -> minus_one_wire:Circuit.wire -> Circuit.wire -> Circuit.wire -> Circuit.wire
(** [a - b] given a wire carrying the constant [-1]: [a + (-1)*b].
    Circuits have no constant gates, so constants enter as client
    inputs; see {!Generators} for the idiom. *)

val output : t -> client:int -> Circuit.wire -> unit

val sum : t -> Circuit.wire list -> Circuit.wire
(** Balanced addition tree. @raise Invalid_argument on []. *)

val product : t -> Circuit.wire list -> Circuit.wire
(** Balanced multiplication tree (depth [ceil log2 n]).
    @raise Invalid_argument on []. *)

val dot : t -> Circuit.wire list -> Circuit.wire list -> Circuit.wire
(** Inner product: pairwise [mul] then {!sum}. *)

val build : t -> Circuit.t
(** Finalize.  The builder must not be reused afterwards. *)
