(** Text serialization of circuits.

    A line-oriented format so circuits can be stored, diffed and fed
    to the CLI:

    {v
    # comments and blank lines are ignored
    input 0 0        # client 0 supplies wire 0
    input 1 1
    mul 0 1 2        # wire 2 := wire 0 * wire 1
    add 0 2 3
    output 0 3       # client 0 reads wire 3
    v}

    Gates appear in topological order (as stored); {!of_string}
    re-validates through {!Circuit.of_gates}. *)

val to_string : Circuit.t -> string

val of_string : string -> Circuit.t
(** @raise Invalid_argument with a line number on malformed input. *)

val to_file : string -> Circuit.t -> unit
val of_file : string -> Circuit.t
