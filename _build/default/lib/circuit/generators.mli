(** Workload circuit generators.

    Parameterised circuits used by the examples, the test suite and
    the benchmark harness — in particular the "wide circuit" family
    under which the paper states its amortised complexity (circuit
    width O(n)). *)

val wide_mul : width:int -> depth:int -> clients:int -> Circuit.t
(** [depth] layers of [width] multiplication gates; layer [l+1]
    multiplies adjacent outputs of layer [l] (ring pattern), so every
    layer keeps exactly [width] mult gates.  Inputs: [2 * width]
    wires distributed round-robin over [clients]; outputs: final layer
    to client 0. *)

val wide_mul_reduced : width:int -> depth:int -> clients:int -> Circuit.t
(** Like {!wide_mul} but the final layer is summed into a single
    output wire — the workload for per-gate communication
    measurements, where a full-width output layer would otherwise
    dominate (output delivery costs O(n) per output wire in every
    YOSO protocol). *)

val dot_product : len:int -> Circuit.t
(** Client 0 holds [x], client 1 holds [y]; both receive [<x, y>]. *)

val poly_eval : degree:int -> Circuit.t
(** Client 0 holds coefficients [a_0..a_d], client 1 the point [x];
    client 1 receives [sum a_i x^i] (Horner: depth = [degree]). *)

val variance_numerator : parties:int -> Circuit.t
(** Each of [parties] clients contributes one value [x_i]; everyone
    receives [parties * sum x_i^2 - (sum x_i)^2] (the integer variance
    numerator — the "federated statistics" workload). *)

val matrix_vector : rows:int -> cols:int -> Circuit.t
(** Client 0 holds an [rows x cols] matrix (row-major), client 1 a
    [cols] vector; client 1 receives the product. *)

val random_dag :
  gates:int -> clients:int -> mul_fraction:float -> seed:int -> Circuit.t
(** Random topologically ordered circuit: [gates] arithmetic gates
    whose operands are drawn from earlier wires, [mul_fraction] of
    them multiplications; [2 * clients] input wires; one output per
    client.  Deterministic in [seed]. *)
