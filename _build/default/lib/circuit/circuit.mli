(** Arithmetic circuits over a prime field.

    The functionality [F] computed by the MPC protocol is described as
    a circuit of input, addition, multiplication and output gates.
    Gates are stored in topological order (guaranteed by
    {!Builder}); wires are integer ids. *)

type wire = int

type gate =
  | Input of { client : int; wire : wire }
  | Add of { a : wire; b : wire; out : wire }
  | Mul of { a : wire; b : wire; out : wire }
  | Output of { client : int; wire : wire }

type t = private {
  gates : gate array;
  wire_count : int;
  input_wires : (int * wire) list;  (** (client, wire), in gate order *)
  output_wires : (int * wire) list;
}

val of_gates : gate array -> t
(** Validates: every wire is defined exactly once before use, ids are
    dense in [\[0, wire_count)].  @raise Invalid_argument otherwise. *)

(** {1 Statistics} *)

val num_inputs : t -> int
val num_outputs : t -> int
val num_add : t -> int
val num_mul : t -> int
val size : t -> int
(** Total number of gates. *)

val depth : t -> int
(** Multiplicative depth (additions are free). *)

val mult_width : t -> int
(** Maximum number of multiplication gates in one multiplicative
    layer — the "circuit width" of the paper's O(n)-width
    assumption. *)

val clients : t -> int list
(** Sorted, deduplicated ids of clients appearing in inputs or
    outputs. *)

val input_wires_of_client : t -> int -> wire list
val output_wires_of_client : t -> int -> wire list

val pp_stats : Format.formatter -> t -> unit

(** {1 Plain evaluation} *)

module Eval (F : Yoso_field.Field.S) : sig
  val run : t -> inputs:(int -> F.t array) -> (int * F.t) list
  (** [run c ~inputs] evaluates the circuit in the clear.  [inputs
      client] returns that client's input vector, consumed in gate
      order.  Returns [(client, value)] per output gate, in gate
      order.  @raise Invalid_argument if an input vector is too
      short. *)

  val wire_values : t -> inputs:(int -> F.t array) -> F.t array
  (** All wire values (index = wire id). *)
end
