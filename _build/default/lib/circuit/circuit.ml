type wire = int

type gate =
  | Input of { client : int; wire : wire }
  | Add of { a : wire; b : wire; out : wire }
  | Mul of { a : wire; b : wire; out : wire }
  | Output of { client : int; wire : wire }

type t = {
  gates : gate array;
  wire_count : int;
  input_wires : (int * wire) list;
  output_wires : (int * wire) list;
}

let of_gates gates =
  let defined = Hashtbl.create 64 in
  let max_wire = ref (-1) in
  let define w =
    if w < 0 then invalid_arg "Circuit: negative wire id";
    if Hashtbl.mem defined w then
      invalid_arg (Printf.sprintf "Circuit: wire %d defined twice" w);
    Hashtbl.add defined w ();
    if w > !max_wire then max_wire := w
  in
  let use w =
    if not (Hashtbl.mem defined w) then
      invalid_arg (Printf.sprintf "Circuit: wire %d used before definition" w)
  in
  let inputs = ref [] and outputs = ref [] in
  Array.iter
    (fun g ->
      match g with
      | Input { client; wire } ->
        define wire;
        inputs := (client, wire) :: !inputs
      | Add { a; b; out } | Mul { a; b; out } ->
        use a;
        use b;
        define out
      | Output { client; wire } ->
        use wire;
        outputs := (client, wire) :: !outputs)
    gates;
  let wire_count = !max_wire + 1 in
  for w = 0 to wire_count - 1 do
    if not (Hashtbl.mem defined w) then
      invalid_arg (Printf.sprintf "Circuit: wire id %d unused (ids must be dense)" w)
  done;
  { gates; wire_count; input_wires = List.rev !inputs; output_wires = List.rev !outputs }

let count f c = Array.fold_left (fun acc g -> if f g then acc + 1 else acc) 0 c.gates

let num_inputs c = count (function Input _ -> true | Add _ | Mul _ | Output _ -> false) c
let num_outputs c = count (function Output _ -> true | Add _ | Mul _ | Input _ -> false) c
let num_add c = count (function Add _ -> true | Input _ | Mul _ | Output _ -> false) c
let num_mul c = count (function Mul _ -> true | Input _ | Add _ | Output _ -> false) c
let size c = Array.length c.gates

(* multiplicative depth of each wire; additions stay on their inputs'
   level *)
let wire_depths c =
  let depths = Array.make c.wire_count 0 in
  Array.iter
    (fun g ->
      match g with
      | Input { wire; _ } -> depths.(wire) <- 0
      | Add { a; b; out } -> depths.(out) <- max depths.(a) depths.(b)
      | Mul { a; b; out } -> depths.(out) <- 1 + max depths.(a) depths.(b)
      | Output _ -> ())
    c.gates;
  depths

let depth c =
  let depths = wire_depths c in
  Array.fold_left max 0 depths

let mult_width c =
  let depths = wire_depths c in
  let per_layer = Hashtbl.create 16 in
  Array.iter
    (fun g ->
      match g with
      | Mul { out; _ } ->
        let l = depths.(out) in
        Hashtbl.replace per_layer l (1 + Option.value ~default:0 (Hashtbl.find_opt per_layer l))
      | Input _ | Add _ | Output _ -> ())
    c.gates;
  Hashtbl.fold (fun _ v acc -> max v acc) per_layer 0

let clients c =
  List.sort_uniq compare (List.map fst c.input_wires @ List.map fst c.output_wires)

let input_wires_of_client c client =
  List.filter_map (fun (cl, w) -> if cl = client then Some w else None) c.input_wires

let output_wires_of_client c client =
  List.filter_map (fun (cl, w) -> if cl = client then Some w else None) c.output_wires

let pp_stats ppf c =
  Format.fprintf ppf
    "gates=%d inputs=%d add=%d mul=%d outputs=%d depth=%d width=%d clients=%d"
    (size c) (num_inputs c) (num_add c) (num_mul c) (num_outputs c) (depth c)
    (mult_width c)
    (List.length (clients c))

module Eval (F : Yoso_field.Field.S) = struct
  let wire_values c ~inputs =
    let values = Array.make c.wire_count F.zero in
    let cursor = Hashtbl.create 8 in
    Array.iter
      (fun g ->
        match g with
        | Input { client; wire } ->
          let i = Option.value ~default:0 (Hashtbl.find_opt cursor client) in
          let v = inputs client in
          if i >= Array.length v then
            invalid_arg
              (Printf.sprintf "Circuit.Eval: client %d supplied %d inputs, need more"
                 client (Array.length v));
          values.(wire) <- v.(i);
          Hashtbl.replace cursor client (i + 1)
        | Add { a; b; out } -> values.(out) <- F.add values.(a) values.(b)
        | Mul { a; b; out } -> values.(out) <- F.mul values.(a) values.(b)
        | Output _ -> ())
      c.gates;
    values

  let run c ~inputs =
    let values = wire_values c ~inputs in
    List.map (fun (client, w) -> (client, values.(w))) c.output_wires
end
