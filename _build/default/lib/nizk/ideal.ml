module Sha256 = Yoso_hash.Sha256

type proof = { binding : string; witness_ok : bool }

let bind ~relation ~statement =
  Sha256.digest_string
    (Printf.sprintf "%d:%s|%d:%s" (String.length relation) relation
       (String.length statement) statement)

let prove ~relation ~statement ~witness_ok = { binding = bind ~relation ~statement; witness_ok }
let forge ~relation ~statement = { binding = bind ~relation ~statement; witness_ok = false }

let verify ~relation ~statement proof =
  proof.witness_ok && String.equal proof.binding (bind ~relation ~statement)

let size_bits = 256
