(** Fiat-Shamir transcript.

    A domain-separated, order-sensitive absorb/squeeze object over
    {!Yoso_hash.Sha256}: the prover and verifier absorb the same
    public values in the same order and derive identical challenges.
    Length-prefixed framing makes the encoding injective (no
    concatenation ambiguity). *)

type t

val create : label:string -> t
val absorb : t -> label:string -> string -> unit
val absorb_bigint : t -> label:string -> Yoso_bigint.Bigint.t -> unit
val absorb_int : t -> label:string -> int -> unit

val challenge_bytes : t -> label:string -> int -> string
(** Squeeze [n] challenge bytes; the transcript state advances, so
    subsequent challenges differ. *)

val challenge_bigint : t -> label:string -> bits:int -> Yoso_bigint.Bigint.t
(** Uniform challenge in [\[0, 2^bits)]. *)

val clone : t -> t
(** Independent copy (verifier replays the prover's absorptions). *)
