module Sha256 = Yoso_hash.Sha256
module B = Yoso_bigint.Bigint

type t = { mutable state : string; mutable counter : int }

let frame label data =
  (* injective framing: len(label) || label || len(data) || data *)
  let len s =
    let n = String.length s in
    String.init 8 (fun i -> Char.chr ((n lsr (8 * (7 - i))) land 0xFF))
  in
  len label ^ label ^ len data ^ data

let create ~label = { state = Sha256.digest_string (frame "ts-init" label); counter = 0 }

let absorb t ~label data =
  t.state <- Sha256.digest_string (t.state ^ frame label data)

let absorb_bigint t ~label v = absorb t ~label (B.to_bytes_be v ^ if B.sign v < 0 then "-" else "+")
let absorb_int t ~label v = absorb_bigint t ~label (B.of_int v)

let challenge_bytes t ~label n =
  let out = Buffer.create n in
  while Buffer.length out < n do
    let block =
      Sha256.digest_string (t.state ^ frame "ts-squeeze" (label ^ string_of_int t.counter))
    in
    t.counter <- t.counter + 1;
    Buffer.add_string out block
  done;
  (* ratchet the state so challenges are bound into later absorptions *)
  t.state <- Sha256.digest_string (t.state ^ frame "ts-ratchet" label);
  String.sub (Buffer.contents out) 0 n

let challenge_bigint t ~label ~bits =
  let nbytes = (bits + 7) / 8 in
  let raw = challenge_bytes t ~label nbytes in
  let v = B.of_bytes_be raw in
  let excess = (nbytes * 8) - bits in
  B.shift_right v excess

let clone t = { state = t.state; counter = t.counter }
