(** Ideal NIZK argument-of-knowledge functionality.

    The complex relations of Protocols 1-2 ([Re-encrypt]/[Decrypt]:
    correct share reconstruction, partial decryption, re-sharing and
    re-encryption, all inside one statement) would require a general
    zkSNARK (Groth-Maller [34] in the paper).  Per the DESIGN.md
    substitution table, we model that proof system as an *ideal
    functionality*: a proof object is a constant-size tag binding
    (relation, statement), carrying a validity bit that an honest
    prover sets by actually checking its witness.

    - {b Completeness/soundness}: perfect by construction — [verify]
      accepts iff the prover's witness check passed and the statement
      is the one proven.
    - {b Zero-knowledge}: trivial — the proof contains a hash of
      public data and one bit.
    - {b Size accounting}: a constant {!size_bits} (256), matching the
      paper's constant-size proof assumption.

    Honest protocol code must call {!prove} with the real witness
    check; adversarial code uses {!forge} (which can never verify for
    a statement whose check failed) or mutates statements (detected by
    the binding hash). *)

type proof

val prove : relation:string -> statement:string -> witness_ok:bool -> proof
(** The caller evaluates its witness against the relation and passes
    the result; honest provers always have [witness_ok = true]. *)

val forge : relation:string -> statement:string -> proof
(** What a malicious role can produce for a false statement: a proof
    object that never verifies. *)

val verify : relation:string -> statement:string -> proof -> bool

val size_bits : int
