lib/nizk/sigma.mli: Random Yoso_bigint Yoso_paillier
