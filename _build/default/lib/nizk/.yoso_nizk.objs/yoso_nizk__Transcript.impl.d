lib/nizk/transcript.ml: Buffer Char String Yoso_bigint Yoso_hash
