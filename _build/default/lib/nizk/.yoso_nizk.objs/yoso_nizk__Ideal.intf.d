lib/nizk/ideal.mli:
