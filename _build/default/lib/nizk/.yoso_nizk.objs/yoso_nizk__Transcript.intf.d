lib/nizk/transcript.mli: Yoso_bigint
