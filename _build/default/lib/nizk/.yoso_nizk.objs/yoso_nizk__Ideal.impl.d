lib/nizk/ideal.ml: Printf String Yoso_hash
