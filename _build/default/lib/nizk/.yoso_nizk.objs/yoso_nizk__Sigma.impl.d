lib/nizk/sigma.ml: Transcript Yoso_bigint Yoso_paillier
