lib/runtime/cost.ml: Format Hashtbl List Option
