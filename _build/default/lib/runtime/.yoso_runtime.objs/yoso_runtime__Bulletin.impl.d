lib/runtime/bulletin.ml: Cost List Role
