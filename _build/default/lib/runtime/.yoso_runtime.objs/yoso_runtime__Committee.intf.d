lib/runtime/committee.mli: Role Yoso_hash
