lib/runtime/role.ml: Hashtbl List Printexc Printf Stdlib
