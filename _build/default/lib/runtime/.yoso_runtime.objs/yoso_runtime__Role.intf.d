lib/runtime/role.mli:
