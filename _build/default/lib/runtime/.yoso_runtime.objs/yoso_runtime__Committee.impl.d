lib/runtime/committee.ml: Array List Role Yoso_hash
