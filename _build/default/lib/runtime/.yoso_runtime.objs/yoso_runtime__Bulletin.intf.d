lib/runtime/bulletin.mli: Cost Role
