(** Append-only bulletin board with speak-once enforcement and cost
    accounting.

    All YOSO communication — point-to-point included — goes over the
    broadcast channel (Section 3.3: "broadcast has effectively the
    same cost as P2P"), so a single board carries the whole protocol.
    Posting charges the given element costs to the {!Cost} tally and
    marks the author as having spoken in the {!Role.Registry}. *)

type 'msg post = private {
  seq : int;
  round : int;
  author : Role.id;
  phase : string;
  msg : 'msg;
}

type 'msg t

val create : unit -> 'msg t

val registry : 'msg t -> Role.Registry.t
val cost : 'msg t -> Cost.t

val round : 'msg t -> int
val next_round : 'msg t -> unit

val post :
  'msg t -> author:Role.id -> phase:string -> cost:(Cost.kind * int) list -> 'msg -> unit
(** @raise Role.Already_spoke if the author already posted. *)

val posts : 'msg t -> 'msg post list
(** All posts, oldest first. *)

val posts_in_round : 'msg t -> int -> 'msg post list
val posts_by : 'msg t -> Role.id -> 'msg post list
val find_map : 'msg t -> ('msg post -> 'a option) -> 'a option
val length : 'msg t -> int
