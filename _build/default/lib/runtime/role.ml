type id = { committee : string; index : int }

let id ~committee ~index = { committee; index }
let to_string r = Printf.sprintf "%s[%d]" r.committee r.index
let compare = Stdlib.compare

exception Already_spoke of id

let () =
  Printexc.register_printer (function
    | Already_spoke r -> Some (Printf.sprintf "Already_spoke(%s)" (to_string r))
    | _ -> None)

module Registry = struct
  type entry = { mutable spoken : bool; mutable hooks : (unit -> unit) list }
  type t = (id, entry) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let entry t r =
    match Hashtbl.find_opt t r with
    | Some e -> e
    | None ->
      let e = { spoken = false; hooks = [] } in
      Hashtbl.add t r e;
      e

  let speak t r =
    let e = entry t r in
    if e.spoken then raise (Already_spoke r);
    e.spoken <- true;
    List.iter (fun hook -> hook ()) (List.rev e.hooks);
    e.hooks <- []

  let has_spoken t r =
    match Hashtbl.find_opt t r with Some e -> e.spoken | None -> false

  let on_erase t r hook =
    let e = entry t r in
    if e.spoken then hook () else e.hooks <- hook :: e.hooks

  let spoken_count t = Hashtbl.fold (fun _ e acc -> if e.spoken then acc + 1 else acc) t 0
end
