module Splitmix = Yoso_hash.Splitmix

type status = Honest | Passive | Malicious | Fail_stop

let status_to_string = function
  | Honest -> "honest"
  | Passive -> "passive"
  | Malicious -> "malicious"
  | Fail_stop -> "fail-stop"

type t = { name : string; size : int; statuses : status array }

let create ~name ~statuses =
  if Array.length statuses = 0 then invalid_arg "Committee.create: empty";
  { name; size = Array.length statuses; statuses }

let honest_all ~name ~n = create ~name ~statuses:(Array.make n Honest)

let sample ~name ~n ~malicious ?(passive = 0) ?(fail_stop = 0) rng =
  if malicious + passive + fail_stop > n then
    invalid_arg "Committee.sample: more corruptions than members";
  let statuses = Array.make n Honest in
  (* Fisher-Yates over indices, then assign statuses to a random prefix *)
  let idx = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Splitmix.int rng (i + 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  let pos = ref 0 in
  let assign count status =
    for _ = 1 to count do
      statuses.(idx.(!pos)) <- status;
      incr pos
    done
  in
  assign malicious Malicious;
  assign passive Passive;
  assign fail_stop Fail_stop;
  create ~name ~statuses

let status t i = t.statuses.(i)
let role t i = Role.id ~committee:t.name ~index:i
let is_malicious t i = t.statuses.(i) = Malicious
let is_fail_stop t i = t.statuses.(i) = Fail_stop
let participates t i = t.statuses.(i) <> Fail_stop

let indices_where pred t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    if pred t.statuses.(i) then acc := i :: !acc
  done;
  !acc

let speaking_indices = indices_where (fun s -> s <> Fail_stop)
let malicious_indices = indices_where (fun s -> s = Malicious)
let honest_indices = indices_where (fun s -> s = Honest || s = Passive)

let count_malicious t = List.length (malicious_indices t)
let count_fail_stop t = t.size - List.length (speaking_indices t)
