(** Committees and per-role corruption status.

    A committee is [n] roles sampled by the role-assignment layer.
    Each role is [Honest], [Passive] (honest-but-curious / "Leaky"),
    [Malicious] (arbitrary behaviour), or [Fail_stop] (honest but
    silent — the class the paper adds explicit support for in
    Section 5.4). *)

type status = Honest | Passive | Malicious | Fail_stop

val status_to_string : status -> string

type t = private { name : string; size : int; statuses : status array }

val create : name:string -> statuses:status array -> t

val honest_all : name:string -> n:int -> t

val sample :
  name:string ->
  n:int ->
  malicious:int ->
  ?passive:int ->
  ?fail_stop:int ->
  Yoso_hash.Splitmix.t ->
  t
(** Uniformly random corruption placement.
    @raise Invalid_argument if counts exceed [n]. *)

val status : t -> int -> status
val role : t -> int -> Role.id
val is_malicious : t -> int -> bool
val is_fail_stop : t -> int -> bool

val participates : t -> int -> bool
(** Everyone but fail-stop roles (malicious roles do participate —
    incorrectly). *)

val speaking_indices : t -> int list
val malicious_indices : t -> int list
val honest_indices : t -> int list
(** Honest + passive (they follow the protocol). *)

val count_malicious : t -> int
val count_fail_stop : t -> int
