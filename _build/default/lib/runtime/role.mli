(** YOSO roles and the speak-once discipline.

    A role is an ephemeral identity [(committee, index)].  The
    {!Registry} is the runtime's enforcement of the YOSO wrapper
    [YoS(R)]: once a role has spoken (posted to the bulletin board) it
    receives [Spoke], is killed, and any further attempt to speak
    raises {!Already_spoke}.  Killing a role erases its private state
    (modelled by {!Registry.erase_hook}). *)

type id = { committee : string; index : int }

val id : committee:string -> index:int -> id
val to_string : id -> string
val compare : id -> id -> int

exception Already_spoke of id

module Registry : sig
  type t

  val create : unit -> t

  val speak : t -> id -> unit
  (** Marks the role as having spoken and runs its erase hooks.
      @raise Already_spoke on a second call for the same id. *)

  val has_spoken : t -> id -> bool

  val on_erase : t -> id -> (unit -> unit) -> unit
  (** Registers private-state erasure to run when the role is killed
      (e.g. zeroising a key share).  Hooks registered after the role
      spoke run immediately. *)

  val spoken_count : t -> int
end
