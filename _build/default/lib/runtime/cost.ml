type kind = Field_element | Ciphertext | Proof | Partial_decryption | Key

let kind_to_string = function
  | Field_element -> "field"
  | Ciphertext -> "ciphertext"
  | Proof -> "proof"
  | Partial_decryption -> "partial-dec"
  | Key -> "key"

let all_kinds = [ Field_element; Ciphertext; Proof; Partial_decryption; Key ]

type t = (string * kind, int) Hashtbl.t

let create () : t = Hashtbl.create 16

let charge t ~phase kind n =
  if n < 0 then invalid_arg "Cost.charge: negative amount";
  let key = (phase, kind) in
  Hashtbl.replace t key (n + Option.value ~default:0 (Hashtbl.find_opt t key))

let count t ~phase kind = Option.value ~default:0 (Hashtbl.find_opt t (phase, kind))

let elements t ~phase =
  List.fold_left (fun acc k -> acc + count t ~phase k) 0 all_kinds

let grand_total t = Hashtbl.fold (fun _ v acc -> acc + v) t 0

let phases t =
  Hashtbl.fold (fun (p, _) _ acc -> if List.mem p acc then acc else p :: acc) t []
  |> List.sort compare

let merge_into ~dst src =
  Hashtbl.iter (fun (phase, kind) n -> charge dst ~phase kind n) src

let pp ppf t =
  List.iter
    (fun phase ->
      Format.fprintf ppf "@[<h>%-10s" phase;
      List.iter
        (fun k ->
          let c = count t ~phase k in
          if c > 0 then Format.fprintf ppf " %s=%d" (kind_to_string k) c)
        all_kinds;
      Format.fprintf ppf " total=%d@]@." (elements t ~phase))
    (phases t)
