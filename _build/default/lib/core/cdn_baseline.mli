(** CDN-style YOSO MPC baseline (Gentry et al. [29]).

    The prior state of the art the paper compares against: the circuit
    is evaluated gate-by-gate on ciphertexts under [tpk].  Beaver
    triples are preprocessed offline; every online multiplication
    consumes one triple and requires the current committee to
    threshold-decrypt two masked ciphertexts — [O(n)] broadcast
    elements per gate even after amortising the [tsk] re-sharing over
    [gates_per_committee] gates (Section 3.2: "further amortization is
    not possible").

    Implemented over the same {!Ideal_te}, bulletin board and cost
    accounting as the packed protocol, so the measured online
    elements-per-gate of the two protocols are directly comparable
    (experiment E2). *)

module F = Yoso_field.Field.Fp
module Circuit = Yoso_circuit.Circuit

type report = {
  outputs : (int * Circuit.wire * F.t) list;
  offline_elements : int;
  online_elements : int;
  posts : int;
  num_mult : int;
}

val online_per_gate : report -> float
val offline_per_gate : report -> float

val execute :
  params:Params.t ->
  ?adversary:Params.adversary ->
  ?seed:int ->
  circuit:Circuit.t ->
  inputs:(int -> F.t array) ->
  unit ->
  report

val check : report -> Circuit.t -> inputs:(int -> F.t array) -> bool
