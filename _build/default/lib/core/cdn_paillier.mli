(** CDN-style MPC over *real* threshold Paillier.

    The genuine-cryptography integration path: whereas
    {!Cdn_baseline} and {!Protocol} run over the ideal TE for
    large-committee communication experiments, this module evaluates a
    circuit over the plaintext ring [Z_N] using

    - {!Yoso_paillier.Threshold} (Shamir-shared Paillier decryption
      exponent, partial decryptions, integral-Lagrange combination),
    - real Fiat-Shamir sigma proofs ({!Yoso_nizk.Sigma}): plaintext
      knowledge for every Beaver/input contribution, and the
      multiplication relation of Protocol 3 for the second Beaver
      committee — verified by the honest majority, so a malicious
      contributor is genuinely *detected* and excluded,
    - the ideal NIZK only for partial-decryption correctness (no
      standard sigma protocol without extra setup; see DESIGN.md).

    Intended for small committees ([n <= 7], test-size moduli):
    everything is executed for real, nothing is mocked. *)

module B = Yoso_bigint.Bigint
module Circuit = Yoso_circuit.Circuit

type report = {
  outputs : (int * Circuit.wire * B.t) list;
  modulus : B.t;
  rejected_contributions : int;
      (** contributions whose sigma proofs failed verification *)
}

val execute :
  n:int ->
  t:int ->
  ?bits:int ->
  ?malicious:int list ->
  ?seed:int ->
  circuit:Circuit.t ->
  inputs:(int -> B.t array) ->
  unit ->
  report
(** [malicious] lists committee member indices (0-based) that post
    garbage Beaver contributions with invalid proofs. *)

val expected : modulus:B.t -> Circuit.t -> inputs:(int -> B.t array) -> (int * B.t) list
(** Plain evaluation over [Z_N]. *)

val check : report -> Circuit.t -> inputs:(int -> B.t array) -> bool
