(** Protocol parameters and adversary configuration.

    The paper's regime: committees of size [n], at most [t] malicious
    roles per committee with [t < n (1/2 - eps)], packing factor
    [k ~ n * eps] (or [~ n * eps / 2] in fail-stop mode, Section 5.4).
    Validation enforces the degree bounds the protocol relies on:

    - packed sharings have degree [t + k - 1 <= n - 1];
    - online reconstruction needs [t + 2(k-1) + 1 <= n] shares, and at
      least that many *speaking honest* roles:
      [n - malicious - fail_stop >= t + 2(k-1) + 1];
    - threshold decryption needs [t + 1] honest speakers. *)

type t = private {
  n : int;
  t : int;
  k : int;
  gates_per_committee : int;
      (** how many gates one committee processes per round (the paper's
          "roles process O(n) values" amortisation); default [n]. *)
}

type adversary = {
  malicious : int;   (** actively corrupt roles per committee *)
  passive : int;     (** honest-but-curious roles *)
  fail_stop : int;   (** honest roles that stay silent (Section 5.4) *)
}

val no_adversary : adversary

val create : ?gates_per_committee:int -> n:int -> t:int -> k:int -> unit -> t
(** @raise Invalid_argument if the degree bounds fail. *)

val of_gap : ?gates_per_committee:int -> ?fail_stop_mode:bool -> n:int -> eps:float -> unit -> t
(** Derives [t = floor (n (1/2 - eps)) - 1] (strict inequality) and
    [k = floor (n * eps) + 1], halving the gap used for packing when
    [fail_stop_mode] is set ([k = floor (n * eps / 2) + 1], leaving
    room for [n * eps / 2 * 2 = n * eps] silent roles; Section 5.4). *)

val reconstruction_threshold : t -> int
(** [t + 2 (k - 1) + 1]: valid shares needed to open a packed [mu]. *)

val packing_degree : t -> int
(** [t + k - 1]: degree of the preprocessed packed sharings. *)

val validate_adversary : t -> adversary -> unit
(** @raise Invalid_argument if this adversary breaks the protocol's
    preconditions (too many malicious or too many silent roles). *)

val max_fail_stop : t -> adversary -> int
(** How many additional fail-stop roles the parameters tolerate given
    the adversary's malicious count. *)

val pp : Format.formatter -> t -> unit
