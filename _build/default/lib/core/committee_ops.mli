(** Shared committee machinery: the [Decrypt] and [Re-encrypt]
    subprotocols (Protocols 1-2 of the paper) and the generic
    "every role contributes once, proofs filter the malicious"
    pattern.

    Every operation creates real bulletin-board posts (speak-once
    enforced, costs charged) while the content flows functionally —
    the board is the audit trail, message contents are in-memory
    values (the standard protocol-simulator shortcut; see DESIGN.md).

    The threshold secret key travels down a chain of committees: each
    [decrypt_batch]/[reencrypt_batch] consumes the current holder
    committee (its roles speak once, posting partials, re-sharing
    messages and proofs) and hands the re-randomized key to a freshly
    sampled committee. *)

module F = Yoso_field.Field.Fp
module Pke = Ideal_pke
module Te = Ideal_te
module Committee = Yoso_runtime.Committee
module Cost = Yoso_runtime.Cost

type ctx = {
  board : string Yoso_runtime.Bulletin.t;
  rng : Yoso_hash.Splitmix.t;
  frng : Random.State.t;  (** field-element randomness *)
  params : Params.t;
  adversary : Params.adversary;
  mutable committee_counter : int;
}

val create_ctx :
  board:string Yoso_runtime.Bulletin.t ->
  params:Params.t ->
  adversary:Params.adversary ->
  seed:int ->
  ctx

val fresh_committee : ctx -> string -> Committee.t
(** Samples a committee with the ctx's adversary structure; names are
    suffixed with a running counter. *)

val contributions :
  ctx ->
  Committee.t ->
  phase:string ->
  step:string ->
  cost:(Cost.kind * int) list ->
  (int -> 'a) ->
  (int * 'a) list
(** [contributions ctx committee ~phase ~step ~cost f]: every speaking
    role posts once ([cost] plus one proof each); malicious roles post
    garbage under forged proofs and are filtered out; fail-stop roles
    stay silent.  Returns the verified [(index, f index)] list. *)

(** {1 The tsk chain} *)

type holder
(** A committee currently holding the shares of [tsk]. *)

val initial_holder : ctx -> Te.tpk -> name:string -> Te.share array -> holder
val holder_committee : holder -> Committee.t

val decrypt_batch :
  ctx -> Te.tpk -> holder -> phase:string -> step:string -> F.t Te.ct array ->
  F.t array * holder
(** [Decrypt] (Protocol 2), batched: each speaking holder role posts
    one broadcast containing its partial decryption of every
    ciphertext, its [n] re-sharing messages for the next committee,
    and one proof.  Returns the decrypted values and the next
    holder. *)

type 'a reenc
(** A value re-encrypted towards one recipient: the on-board partial
    encryptions, openable only with the matching secret key. *)

val reenc_target : 'a reenc -> Pke.pk

val reencrypt_batch :
  ctx -> Te.tpk -> holder -> phase:string -> step:string ->
  (Pke.pk * 'a Te.ct) array ->
  'a reenc array * holder
(** [Re-encrypt] (Protocol 1), batched over many [(recipient, ct)]
    values: each speaking holder role posts one broadcast with, per
    value, its partial decryption encrypted under the recipient key,
    plus its re-sharing messages and one proof. *)

val reencrypt_final :
  ctx -> Te.tpk -> holder -> phase:string -> step:string ->
  (Pke.pk * 'a Te.ct) array ->
  'a reenc array
(** [Re-encrypt*] (online output step): same, but the holder does not
    re-share [tsk] — the chain ends. *)

val open_reenc : Te.tpk -> Pke.sk -> 'a reenc -> 'a
(** Recipient side: decrypt the partial encryptions with the matching
    secret key and run [TDec] on [t + 1] of them.
    @raise Invalid_argument on a wrong key or too few partials. *)
