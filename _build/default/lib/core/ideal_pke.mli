(** Ideal public-key encryption functionality.

    Models the additively homomorphic PKE of Section 5 at the level
    the protocol uses it: confidential transport of values to a key
    holder.  Secrecy is enforced by type abstraction (a ciphertext's
    payload is only reachable through {!dec} with the matching secret
    key); sizes are accounted by the caller as one {!Yoso_runtime.Cost.Ciphertext}
    per ciphertext, matching the paper's element counting.  See the
    substitution table in DESIGN.md.

    Payloads are polymorphic, which is what lets the protocol express
    the paper's nested keys: a KFF secret key travels inside a TE
    ciphertext, and TE partial decryptions of it travel inside PKE
    ciphertexts ("keys for future", Section 3.2). *)

type pk
type sk

val gen : Yoso_hash.Splitmix.t -> pk * sk
val pk_of : sk -> pk
val pk_id : pk -> int
(** Stable identifier (for transcripts / debugging). *)

type 'a enc

val enc : pk -> 'a -> 'a enc

val dec : sk -> 'a enc -> 'a
(** @raise Invalid_argument if the key does not match. *)

val dec_opt : sk -> 'a enc -> 'a option
