(** Semi-honest BGW as a YOSO protocol — the information-theoretic
    reference point.

    The paper (Section 1.2) notes that the classic BGW protocol "is
    essentially already a YOSO protocol in the semi-honest setting":
    every committee holds plain degree-[t] Shamir shares of the live
    wires, evaluates one multiplicative layer (local share products,
    degree [2t]), and re-shares everything to the next committee,
    which performs GRR degree reduction.  Communication is
    [Theta(n^2)] elements per gate plus [Theta(n^2)] per live wire per
    layer — the "prohibitively high" cost that motivates the
    computational protocols.

    Executed over the same runtime (speak-once roles, bulletin board,
    per-phase cost tally) so it slots into the E2 comparison as the
    information-theoretic upper bound.  Honest-but-curious corruption
    only: [t < n / 2], no proofs. *)

module F = Yoso_field.Field.Fp
module Circuit = Yoso_circuit.Circuit

type report = {
  outputs : (int * Circuit.wire * F.t) list;
  online_elements : int;  (** everything after input sharing *)
  input_elements : int;
  posts : int;
  num_mult : int;
}

val online_per_gate : report -> float

val execute :
  n:int ->
  t:int ->
  ?seed:int ->
  circuit:Circuit.t ->
  inputs:(int -> F.t array) ->
  unit ->
  report
(** @raise Invalid_argument unless [0 <= t < n / 2] (BGW
    multiplication needs [2t + 1 <= n]). *)

val check : report -> Circuit.t -> inputs:(int -> F.t array) -> bool
