module F = Yoso_field.Field.Fp
module Pke = Ideal_pke
module Te = Ideal_te
module Bulletin = Yoso_runtime.Bulletin
module Committee = Yoso_runtime.Committee
module Cost = Yoso_runtime.Cost
module Splitmix = Yoso_hash.Splitmix

type ctx = {
  board : string Bulletin.t;
  rng : Splitmix.t;
  frng : Random.State.t;
  params : Params.t;
  adversary : Params.adversary;
  mutable committee_counter : int;
}

let create_ctx ~board ~params ~adversary ~seed =
  Params.validate_adversary params adversary;
  {
    board;
    rng = Splitmix.of_int seed;
    frng = Random.State.make [| seed lxor 0x5EED |];
    params;
    adversary;
    committee_counter = 0;
  }

let fresh_committee ctx prefix =
  ctx.committee_counter <- ctx.committee_counter + 1;
  let name = Printf.sprintf "%s#%d" prefix ctx.committee_counter in
  Committee.sample ~name ~n:ctx.params.Params.n
    ~malicious:ctx.adversary.Params.malicious ~passive:ctx.adversary.Params.passive
    ~fail_stop:ctx.adversary.Params.fail_stop ctx.rng

let contributions ctx committee ~phase ~step ~cost f =
  let proofed_cost = (Cost.Proof, 1) :: cost in
  let out = ref [] in
  List.iter
    (fun i ->
      let author = Committee.role committee i in
      Bulletin.post ctx.board ~author ~phase ~cost:proofed_cost step;
      (* malicious roles post garbage with a forged proof; verifiers
         exclude them (ideal NIZK soundness), so only the rest
         contribute content *)
      if not (Committee.is_malicious committee i) then out := (i, f i) :: !out)
    (Committee.speaking_indices committee);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* tsk chain                                                            *)
(* ------------------------------------------------------------------ *)

type holder = { committee : Committee.t; shares : Te.share option array; prefix : string }

let holder_committee h = h.committee

let initial_holder ctx _te ~name shares =
  let committee = fresh_committee ctx name in
  if Array.length shares <> ctx.params.Params.n then
    invalid_arg "Committee_ops.initial_holder: share count <> n";
  { committee; shares = Array.map Option.some shares; prefix = name }

let member_share holder i =
  match holder.shares.(i) with
  | Some s -> s
  | None -> failwith "Committee_ops: holder member without a tsk share"

(* hand the re-randomized key to a fresh committee *)
let pass_key ctx te next_prefix verified =
  let next = fresh_committee ctx next_prefix in
  let shares =
    Array.init ctx.params.Params.n (fun j ->
        let subs = List.map (fun (_, reshares) -> reshares.(j)) verified in
        Some (Te.recombine te ~index:(j + 1) subs))
  in
  { committee = next; shares; prefix = next_prefix }

let decrypt_batch ctx te holder ~phase ~step cts =
  let n = ctx.params.Params.n in
  let cost = [ (Cost.Partial_decryption, Array.length cts); (Cost.Ciphertext, n) ] in
  let verified =
    contributions ctx holder.committee ~phase ~step ~cost (fun i ->
        let share = member_share holder i in
        let partials = Array.map (Te.partial_decrypt te share) cts in
        let reshares = Te.reshare te share in
        (partials, reshares))
  in
  let values =
    Array.init (Array.length cts) (fun c ->
        Te.combine te (List.map (fun (_, (partials, _)) -> partials.(c)) verified))
  in
  let next = pass_key ctx te holder.prefix (List.map (fun (i, (_, r)) -> (i, r)) verified) in
  (values, next)

type 'a reenc = { senders : int list; target : Pke.pk; guarded : 'a Pke.enc }

let reenc_target r = r.target

let open_reenc te sk r =
  let distinct = List.sort_uniq compare r.senders in
  if List.length distinct < Te.threshold te + 1 then
    invalid_arg "Committee_ops.open_reenc: not enough partial encryptions";
  Pke.dec sk r.guarded

let reencrypt_generic ctx te holder ~phase ~step ~reshare values =
  let n = ctx.params.Params.n in
  let cost =
    if reshare then [ (Cost.Ciphertext, Array.length values + n) ]
    else [ (Cost.Ciphertext, Array.length values) ]
  in
  let verified =
    contributions ctx holder.committee ~phase ~step ~cost (fun i ->
        let share = member_share holder i in
        let partials = Array.map (fun (_, ct) -> Te.partial_decrypt te share ct) values in
        let reshares = if reshare then Some (Te.reshare te share) else None in
        (partials, reshares))
  in
  let senders = List.map fst verified in
  let packages =
    Array.mapi
      (fun v (target, _) ->
        let value = Te.combine te (List.map (fun (_, (partials, _)) -> partials.(v)) verified) in
        { senders; target; guarded = Pke.enc target value })
      values
  in
  (packages, verified)

let reencrypt_batch ctx te holder ~phase ~step values =
  let packages, verified =
    reencrypt_generic ctx te holder ~phase ~step ~reshare:true values
  in
  let reshares_of (i, (_, r)) =
    match r with Some arr -> (i, arr) | None -> assert false
  in
  let next = pass_key ctx te holder.prefix (List.map reshares_of verified) in
  (packages, next)

let reencrypt_final ctx te holder ~phase ~step values =
  let packages, _ = reencrypt_generic ctx te holder ~phase ~step ~reshare:false values in
  packages
