(** [Pi_YOSO-Offline] (Protocol 4).

    Circuit-dependent preprocessing, executed by a chain of offline
    committees over the bulletin board:

    + {b Beaver triples} — committees [Off-B1]/[Off-B2] jointly
      produce an encrypted triple [(c^x, c^y, c^z)] per multiplication
      gate (Protocol 3).
    + {b Random wire values} — committee [Off-R] contributes random
      [lambda] summands for every input-gate and mult-gate output
      wire; addition wires get [lambda]s homomorphically.
    + {b Dependent wire values} — for each mult gate, the tsk-holder
      chain decrypts [epsilon = lambda_alpha + x] and
      [delta = lambda_beta + y] (batched, [2 * gates_per_committee]
      per committee) and everyone computes the encryption of
      [Gamma = lambda_alpha * lambda_beta - lambda_gamma].
    + {b Packing} — committees [Off-P] contribute the [t] helper
      randoms per packed vector; everyone homomorphically evaluates
      the Lagrange map that turns [k] wire ciphertexts + [t] helpers
      into [n] encrypted packed shares (degree [t + k - 1]).
    + {b Re-encryption to the future} — the tsk chain re-encrypts
      input-wire [lambda]s to client KFFs and packed shares to the
      KFFs of the online roles that will consume them.

    Total communication: [O(n)] ring elements per gate (Theorem 1). *)

module F = Yoso_field.Field.Fp
module Te = Ideal_te
module Layout = Yoso_circuit.Layout
module Circuit = Yoso_circuit.Circuit

type input_prep = {
  client : int;
  wires : Circuit.wire array;
  lambda_reencs : F.t Committee_ops.reenc array;  (** per wire, under the client's KFF *)
}

type mult_prep = {
  batch : Layout.mult_batch;
  alpha_shares : F.t Committee_ops.reenc array;  (** packed share of [lambda_alpha] for role [i] *)
  beta_shares : F.t Committee_ops.reenc array;
  gamma_shares : F.t Committee_ops.reenc array;  (** packed share of [Gamma_gamma] *)
}

type t = {
  layout : Layout.t;
  wire_lambda : F.t Te.ct array;  (** [c^lambda] per wire (output step needs these) *)
  input_preps : input_prep list;
  mult_preps : mult_prep list array;  (** index [l - 1] = preps of layer [l] *)
  final_holder : Committee_ops.holder;
      (** the committee holding tsk at the end of preprocessing; the
          online phase consumes it for future-key distribution *)
}

val run : Committee_ops.ctx -> Setup.t -> Layout.t -> t
