type t = { n : int; t : int; k : int; gates_per_committee : int }

type adversary = { malicious : int; passive : int; fail_stop : int }

let no_adversary = { malicious = 0; passive = 0; fail_stop = 0 }

let reconstruction_threshold p = p.t + (2 * (p.k - 1)) + 1
let packing_degree p = p.t + p.k - 1

let create ?gates_per_committee ~n ~t ~k () =
  if n < 1 then invalid_arg "Params.create: n must be positive";
  if t < 0 then invalid_arg "Params.create: t must be nonnegative";
  if k < 1 then invalid_arg "Params.create: k must be >= 1";
  let p = { n; t; k; gates_per_committee = Option.value ~default:n gates_per_committee } in
  if packing_degree p > n - 1 then
    invalid_arg
      (Printf.sprintf "Params.create: packing degree t+k-1 = %d exceeds n-1 = %d"
         (packing_degree p) (n - 1));
  if reconstruction_threshold p > n then
    invalid_arg
      (Printf.sprintf
         "Params.create: reconstruction threshold t+2(k-1)+1 = %d exceeds n = %d"
         (reconstruction_threshold p) n);
  if p.gates_per_committee < 1 then
    invalid_arg "Params.create: gates_per_committee must be positive";
  p

let of_gap ?gates_per_committee ?(fail_stop_mode = false) ~n ~eps () =
  if eps <= 0.0 || eps >= 0.5 then invalid_arg "Params.of_gap: eps must be in (0, 1/2)";
  let t = max 0 (int_of_float (float_of_int n *. (0.5 -. eps)) - 1) in
  let packing_eps = if fail_stop_mode then eps /. 2.0 else eps in
  let k = int_of_float (float_of_int n *. packing_eps) + 1 in
  create ?gates_per_committee ~n ~t ~k ()

let validate_adversary p adv =
  if adv.malicious < 0 || adv.passive < 0 || adv.fail_stop < 0 then
    invalid_arg "Params.validate_adversary: negative counts";
  if adv.malicious > p.t then
    invalid_arg
      (Printf.sprintf "Params.validate_adversary: %d malicious exceeds t = %d"
         adv.malicious p.t);
  if adv.malicious + adv.passive + adv.fail_stop > p.n then
    invalid_arg "Params.validate_adversary: corruptions exceed committee size";
  let speaking_honest = p.n - adv.malicious - adv.fail_stop in
  if speaking_honest < reconstruction_threshold p then
    invalid_arg
      (Printf.sprintf
         "Params.validate_adversary: %d speaking honest roles < reconstruction threshold %d"
         speaking_honest (reconstruction_threshold p))

let max_fail_stop p adv = max 0 (p.n - adv.malicious - reconstruction_threshold p)

let pp ppf p =
  Format.fprintf ppf "n=%d t=%d k=%d recon=%d pack-deg=%d gates/committee=%d" p.n p.t
    p.k (reconstruction_threshold p) (packing_degree p) p.gates_per_committee
