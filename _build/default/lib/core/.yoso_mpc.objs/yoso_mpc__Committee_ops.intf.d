lib/core/committee_ops.mli: Ideal_pke Ideal_te Params Random Yoso_field Yoso_hash Yoso_runtime
