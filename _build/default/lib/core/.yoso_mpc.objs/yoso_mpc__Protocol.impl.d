lib/core/protocol.ml: Array Committee_ops List Offline Online Params Setup Yoso_circuit Yoso_field Yoso_hash Yoso_runtime
