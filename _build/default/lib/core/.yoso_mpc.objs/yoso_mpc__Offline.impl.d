lib/core/offline.ml: Array Committee_ops Hashtbl Ideal_te List Option Params Seq Setup Yoso_circuit Yoso_field Yoso_runtime
