lib/core/online.ml: Array Committee_ops Hashtbl Ideal_pke Ideal_te List Offline Option Params Printf Setup Yoso_circuit Yoso_field Yoso_runtime Yoso_shamir
