lib/core/cdn_baseline.mli: Params Yoso_circuit Yoso_field
