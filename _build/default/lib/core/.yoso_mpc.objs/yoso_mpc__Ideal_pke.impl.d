lib/core/ideal_pke.ml: Yoso_hash
