lib/core/ideal_pke.mli: Yoso_hash
