lib/core/randgen.mli: Yoso_field
