lib/core/randgen.ml: Array List Random Yoso_field Yoso_runtime Yoso_shamir
