lib/core/bgw_baseline.ml: Array Hashtbl List Option Printf Random Yoso_circuit Yoso_field Yoso_runtime Yoso_shamir
