lib/core/ideal_te.mli: Yoso_field Yoso_hash
