lib/core/committee_ops.ml: Array Ideal_pke Ideal_te List Option Params Printf Random Yoso_field Yoso_hash Yoso_runtime
