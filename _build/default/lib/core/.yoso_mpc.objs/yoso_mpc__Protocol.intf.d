lib/core/protocol.mli: Online Params Yoso_circuit Yoso_field
