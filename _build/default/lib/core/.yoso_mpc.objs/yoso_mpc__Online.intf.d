lib/core/online.mli: Committee_ops Offline Setup Yoso_circuit Yoso_field
