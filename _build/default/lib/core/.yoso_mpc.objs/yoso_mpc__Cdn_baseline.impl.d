lib/core/cdn_baseline.ml: Array Committee_ops Hashtbl Ideal_pke Ideal_te List Option Params Printf Yoso_circuit Yoso_field Yoso_hash Yoso_runtime
