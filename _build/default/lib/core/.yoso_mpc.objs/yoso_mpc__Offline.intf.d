lib/core/offline.mli: Committee_ops Ideal_te Setup Yoso_circuit Yoso_field
