lib/core/cdn_paillier.ml: Array Hashtbl List Option Random Yoso_bigint Yoso_circuit Yoso_nizk Yoso_paillier
