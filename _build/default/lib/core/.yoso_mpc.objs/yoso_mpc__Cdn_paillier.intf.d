lib/core/cdn_paillier.mli: Yoso_bigint Yoso_circuit
