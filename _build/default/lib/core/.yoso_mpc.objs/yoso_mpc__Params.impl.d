lib/core/params.ml: Format Option Printf
