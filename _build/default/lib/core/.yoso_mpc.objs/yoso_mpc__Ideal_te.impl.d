lib/core/ideal_te.ml: Array Hashtbl List Printf Yoso_field Yoso_hash
