lib/core/setup.mli: Ideal_pke Ideal_te Params Yoso_field Yoso_hash Yoso_runtime
