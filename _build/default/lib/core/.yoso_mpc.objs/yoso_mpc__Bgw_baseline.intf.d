lib/core/bgw_baseline.mli: Yoso_circuit Yoso_field
