lib/core/setup.ml: Array Ideal_pke Ideal_te List Params Yoso_field Yoso_runtime
