lib/shamir/feldman.ml: Array Hashtbl Lazy List Random Yoso_bigint Yoso_field
