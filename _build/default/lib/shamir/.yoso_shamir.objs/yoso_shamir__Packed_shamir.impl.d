lib/shamir/packed_shamir.ml: Array Hashtbl List Printf Yoso_field
