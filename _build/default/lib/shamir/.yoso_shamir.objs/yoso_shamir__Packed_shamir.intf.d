lib/shamir/packed_shamir.mli: Random Yoso_field
