lib/shamir/feldman.mli: Lazy Random Yoso_bigint Yoso_field
