(** Binomial sampling and Chernoff tails.

    Cryptographic sortition includes each of [N] parties independently
    with probability [C/N]; committee size and corruption counts are
    binomial.  The sampler uses geometric skipping so one draw costs
    [O(n p)] instead of [O(n)] — committees of tens of thousands from
    pools of millions stay cheap. *)

val sample : Yoso_hash.Splitmix.t -> n:int -> p:float -> int
(** One draw from Binomial(n, p).  [0 <= p <= 1]. *)

val chernoff_upper : n:int -> p:float -> slack:float -> float
(** [P(X >= n p (1 + slack))] bound: [exp(- n p slack^2 / (2 + slack))]
    — the multiplicative Chernoff form used in [6]'s analysis. *)

val chernoff_lower : n:int -> p:float -> slack:float -> float
(** [P(X <= n p (1 - slack))] bound: [exp(- n p slack^2 / 2)]. *)
