(** Committee-size analysis with a corruption "gap" (Section 6).

    Generalises the tail-bound analysis of Benhamouda et al. [6] from
    corruption ratio [1/2] to [1/2 - eps]: given the sortition
    parameter [C] (expected committee size; each of the [N] parties is
    selected with probability [C/N]) and the global corruption ratio
    [f], computes

    - [eps1, eps2] — the smallest slacks satisfying Eq. (2), in the
      closed forms of Eqs. (4)-(5);
    - [t = B1 + B2 + 1] with [B1 = f C (1 + eps1)],
      [B2 = f (1-f) C (1 + eps2)] — the w.h.p. corruption bound;
    - [eps3] and the largest feasible
      [delta = (1/2 + eps) / (1/2 - eps)] satisfying Eq. (6), hence
      the gap [eps];
    - [c = t / (1/2 - eps)] — the w.h.p. committee-size lower bound;
    - [c' = 2 t + 1] — the committee size the [eps = 0] analysis of
      [6, 29] would use;
    - [k ~ c * eps] — the packing factor, i.e. the online
      communication improvement of the paper's protocol.

    Security parameters default to the paper's [k1 = 64],
    [k2 = k3 = 128]. *)

type security = { k1 : int; k2 : int; k3 : int }

val default_security : security

type row = {
  c_param : int;   (** sortition parameter [C] *)
  f : float;       (** global corruption ratio *)
  t : int;         (** corruption bound (w.h.p.), as displayed in Table 1 *)
  t_real : float;  (** unrounded [B1 + B2 + 1] *)
  c : int;         (** committee-size lower bound with gap *)
  c' : int;        (** committee size without gap ([2t + 1]) *)
  eps : float;     (** the gap *)
  k : int;         (** packing / improvement factor *)
  eps1 : float;
  eps2 : float;
  eps3 : float;
  delta : float;
}

val solve : ?security:security -> f:float -> int -> row option
(** [solve ~f c] for sortition parameter [C = c]; [None] when the
    corruption ratio [f] is infeasible for this [C] (the ⊥ cells of
    Table 1). *)

val table1_grid : (int * float) list
(** The [(C, f)] grid of Table 1. *)

val table1 : ?security:security -> unit -> (int * float * row option) list

val improvement_claims :
  ?security:security -> unit -> (string * row) list
(** The two headline claims of Section 1.1.2: [f = 0.05] at [C = 1000]
    (28x, committees ~900 -> ~1000) and [f = 0.2] at [C = 20000]
    (>1000x, ~18k -> ~20k). *)

val pp_row : Format.formatter -> row option -> unit
