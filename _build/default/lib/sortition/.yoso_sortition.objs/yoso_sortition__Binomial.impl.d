lib/sortition/binomial.ml: Yoso_hash
