lib/sortition/binomial.mli: Yoso_hash
