lib/sortition/analysis.mli: Format
