lib/sortition/sampler.ml: Analysis Binomial Format
