lib/sortition/analysis.ml: Format List
