lib/sortition/sampler.mli: Analysis Format Yoso_hash
