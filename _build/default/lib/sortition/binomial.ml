module Splitmix = Yoso_hash.Splitmix

(* count successes among n Bernoulli(p) trials by skipping geometric
   gaps between successes: O(n p) expected time *)
let skip_count rng n p =
  let log1mp = log (1.0 -. p) in
  let rec go count pos =
    if pos >= n then count
    else begin
      let u = Splitmix.float rng in
      let u = if u <= 0.0 then min_float else u in
      let skip = int_of_float (log u /. log1mp) in
      let pos = pos + skip + 1 in
      if pos > n then count else go (count + 1) pos
    end
  in
  go 0 0

let sample rng ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Binomial.sample: p out of [0,1]";
  if n < 0 then invalid_arg "Binomial.sample: negative n";
  if p = 0.0 || n = 0 then 0
  else if p = 1.0 then n
  else if p > 0.5 then n - skip_count rng n (1.0 -. p)
  else skip_count rng n p

let chernoff_upper ~n ~p ~slack =
  let mu = float_of_int n *. p in
  exp (-.mu *. slack *. slack /. (2.0 +. slack))

let chernoff_lower ~n ~p ~slack =
  let mu = float_of_int n *. p in
  exp (-.mu *. slack *. slack /. 2.0)
