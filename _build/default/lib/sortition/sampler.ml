type stats = {
  trials : int;
  mean_size : float;
  min_size : int;
  max_size : int;
  mean_corrupt : float;
  max_corrupt : int;
  max_corrupt_ratio : float;
  corruption_bound_violations : int;
  gap_violations : int;
}

let run ~pool ~f ~row ~trials rng =
  if pool <= 0 || trials <= 0 then invalid_arg "Sampler.run: bad parameters";
  let p = float_of_int row.Analysis.c_param /. float_of_int pool in
  if p > 1.0 then invalid_arg "Sampler.run: pool smaller than C";
  let corrupt_pool = int_of_float (f *. float_of_int pool) in
  let honest_pool = pool - corrupt_pool in
  let sum_size = ref 0 and sum_corrupt = ref 0 in
  let min_size = ref max_int and max_size = ref 0 in
  let max_corrupt = ref 0 and max_ratio = ref 0.0 in
  let corr_viol = ref 0 and gap_viol = ref 0 in
  for _ = 1 to trials do
    let phi = Binomial.sample rng ~n:corrupt_pool ~p in
    let honest = Binomial.sample rng ~n:honest_pool ~p in
    let size = phi + honest in
    sum_size := !sum_size + size;
    sum_corrupt := !sum_corrupt + phi;
    if size < !min_size then min_size := size;
    if size > !max_size then max_size := size;
    if phi > !max_corrupt then max_corrupt := phi;
    let ratio = if size = 0 then 0.0 else float_of_int phi /. float_of_int size in
    if ratio > !max_ratio then max_ratio := ratio;
    if phi >= row.Analysis.t then incr corr_viol;
    if float_of_int honest <= row.Analysis.delta *. float_of_int row.Analysis.t
    then incr gap_viol
  done;
  {
    trials;
    mean_size = float_of_int !sum_size /. float_of_int trials;
    min_size = !min_size;
    max_size = !max_size;
    mean_corrupt = float_of_int !sum_corrupt /. float_of_int trials;
    max_corrupt = !max_corrupt;
    max_corrupt_ratio = !max_ratio;
    corruption_bound_violations = !corr_viol;
    gap_violations = !gap_viol;
  }

let pp ppf s =
  Format.fprintf ppf
    "trials=%d size[min/mean/max]=%d/%.1f/%d corrupt[mean/max]=%.1f/%d maxratio=%.4f viol[phi>=t]=%d viol[gap]=%d"
    s.trials s.min_size s.mean_size s.max_size s.mean_corrupt s.max_corrupt
    s.max_corrupt_ratio s.corruption_bound_violations s.gap_violations
