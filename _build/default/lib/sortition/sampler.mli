(** Monte-Carlo validation of the Section 6 tail bounds.

    Simulates cryptographic sortition: from a global pool of [pool]
    parties of which a fraction [f] is corrupt, each party joins the
    committee with probability [C / pool].  Checks, per trial, the two
    events the analysis bounds: [phi < t] (corruptions below the
    threshold) and [honest > delta * t] with
    [delta = (1/2 + eps) / (1/2 - eps)] — the condition equivalent to
    [t < c * (1/2 - eps)] under the pessimistic [phi = t], i.e. enough
    honest roles for gap-[eps] reconstruction. *)

type stats = {
  trials : int;
  mean_size : float;
  min_size : int;
  max_size : int;
  mean_corrupt : float;
  max_corrupt : int;
  max_corrupt_ratio : float;
  corruption_bound_violations : int;  (** trials with [phi >= t] *)
  gap_violations : int;               (** trials with [honest <= delta * t] *)
}

val run :
  pool:int ->
  f:float ->
  row:Analysis.row ->
  trials:int ->
  Yoso_hash.Splitmix.t ->
  stats

val pp : Format.formatter -> stats -> unit
