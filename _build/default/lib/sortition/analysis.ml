type security = { k1 : int; k2 : int; k3 : int }

let default_security = { k1 = 64; k2 = 128; k3 = 128 }

type row = {
  c_param : int;
  f : float;
  t : int;
  t_real : float;
  c : int;
  c' : int;
  eps : float;
  k : int;
  eps1 : float;
  eps2 : float;
  eps3 : float;
  delta : float;
}

let ln2 = log 2.0

(* smallest eps solving  denom * eps^2 = a * ln2 * (2 + eps):
   eps = (a ln2 + sqrt(a^2 ln^2 2 + 8 a ln2 denom)) / (2 denom)
   (Eq. (2) solved as a quadratic; matches Eqs. (4)-(5) with
   a = k1+k2+1 resp. k2+1) *)
let solve_slack ~a ~denom =
  let al = float_of_int a *. ln2 in
  (al +. sqrt ((al *. al) +. (8.0 *. al *. denom))) /. (2.0 *. denom)

let solve ?(security = default_security) ~f c_param =
  if c_param <= 0 then invalid_arg "Analysis.solve: C must be positive";
  if f <= 0.0 || f >= 1.0 then invalid_arg "Analysis.solve: f must be in (0, 1)";
  let cf = float_of_int c_param in
  let eps1 = solve_slack ~a:(security.k1 + security.k2 + 1) ~denom:(f *. cf) in
  let eps2 = solve_slack ~a:(security.k2 + 1) ~denom:(f *. (1.0 -. f) *. cf) in
  let b1 = f *. cf *. (1.0 +. eps1) in
  let b2 = f *. (1.0 -. f) *. cf *. (1.0 +. eps2) in
  let t_real = b1 +. b2 +. 1.0 in
  let one_minus_f2 = (1.0 -. f) ** 2.0 in
  (* Eq. (6): feasible iff eps3_min < 1 - delta (t - 1) / ((1-f)^2 C) *)
  let eps3 = sqrt (2.0 *. float_of_int security.k3 *. ln2 /. (cf *. one_minus_f2)) in
  let delta = (1.0 -. eps3) *. one_minus_f2 *. cf /. (b1 +. b2) in
  if delta <= 1.0 then None
  else begin
    let eps = (delta -. 1.0) /. (2.0 *. (delta +. 1.0)) in
    let t = int_of_float t_real in
    let c = int_of_float (t_real /. (0.5 -. eps)) in
    let k = int_of_float (float_of_int c *. eps) in
    Some
      { c_param; f; t; t_real; c; c' = (2 * t) + 1; eps; k; eps1; eps2; eps3; delta }
  end

let table1_grid =
  List.concat_map
    (fun c -> List.map (fun f -> (c, f)) [ 0.05; 0.10; 0.15; 0.20; 0.25 ])
    [ 1000; 5000; 10000; 20000; 40000 ]

let table1 ?(security = default_security) () =
  List.map (fun (c_param, f) -> (c_param, f, solve ~security ~f c_param)) table1_grid

let improvement_claims ?(security = default_security) () =
  let get c_param f =
    match solve ~security ~f c_param with
    | Some r -> r
    | None -> failwith "Analysis.improvement_claims: claimed cell infeasible"
  in
  [
    ("f=5%, C=1000 (28x, ~900 -> ~1000)", get 1000 0.05);
    ("f=20%, C=20000 (>1000x, ~18k -> ~20k)", get 20000 0.2);
  ]

let pp_row ppf = function
  | None -> Format.fprintf ppf "⊥"
  | Some r ->
    Format.fprintf ppf "t=%d c=%d c'=%d eps=%.2f k=%d" r.t r.c r.c' r.eps r.k
