(** Hash-based deterministic random bit generator.

    A simple counter-mode DRBG over {!Sha256}: block [i] is
    [SHA256(seed || be64(i))].  Used wherever a *cryptographic* stream
    is needed deterministically from a seed: KFF key derivation in the
    ideal encryption scheme, Fiat-Shamir challenge expansion, and
    test-vector generation. *)

type t

val create : seed:string -> t

val bytes : t -> int -> string
(** Next [n] pseudo-random bytes. *)

val uint64 : t -> int64

val int_below : t -> int -> int
(** Uniform in [\[0, bound)] via rejection sampling; [bound > 0]. *)

val field_elt : t -> p:int -> int
(** Uniform in [\[0, p)] — a random element of [F_p]. *)
