type t = {
  seed : string;
  mutable counter : int;
  mutable buf : string;
  mutable pos : int;
}

let create ~seed = { seed; counter = 0; buf = ""; pos = 0 }

let refill t =
  let ctr = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set ctr i (Char.chr ((t.counter lsr (8 * (7 - i))) land 0xFF))
  done;
  t.buf <- Sha256.digest_string (t.seed ^ Bytes.unsafe_to_string ctr);
  t.pos <- 0;
  t.counter <- t.counter + 1

let bytes t n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if t.pos >= String.length t.buf then refill t;
    let take = min (n - !filled) (String.length t.buf - t.pos) in
    Bytes.blit_string t.buf t.pos out !filled take;
    t.pos <- t.pos + take;
    filled := !filled + take
  done;
  Bytes.unsafe_to_string out

let uint64 t =
  let s = bytes t 8 in
  let acc = ref 0L in
  String.iter (fun c -> acc := Int64.(logor (shift_left !acc 8) (of_int (Char.code c)))) s;
  !acc

let int_below t bound =
  if bound <= 0 then invalid_arg "Prg.int_below: bound must be positive";
  (* rejection sampling on 62-bit values *)
  let limit = (max_int / bound) * bound in
  let rec go () =
    let v = Int64.to_int (Int64.shift_right_logical (uint64 t) 2) in
    if v < limit then v mod bound else go ()
  in
  go ()

let field_elt t ~p = int_below t p
