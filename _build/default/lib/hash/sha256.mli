(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used as the random oracle of the Fiat-Shamir transform in
    {!Yoso_nizk} and as the extractor of the hash-based DRBG in
    {!Prg}.  Verified against the NIST short-message test vectors in
    the test suite. *)

type ctx
(** Streaming hash context (mutable). *)

val init : unit -> ctx
val feed_bytes : ctx -> bytes -> unit
val feed_string : ctx -> string -> unit

val finalize : ctx -> string
(** Returns the 32-byte digest.  The context must not be reused. *)

val digest_string : string -> string
(** One-shot: 32-byte (raw) digest of the input. *)

val digest_bytes : bytes -> string

val hex : string -> string
(** Lowercase hex encoding of a raw digest (or any string). *)

val hmac : key:string -> string -> string
(** HMAC-SHA256 (RFC 2104), 32-byte raw output. *)
