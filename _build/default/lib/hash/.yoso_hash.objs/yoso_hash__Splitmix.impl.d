lib/hash/splitmix.ml: Int64
