lib/hash/prg.ml: Bytes Char Int64 Sha256 String
