lib/hash/prg.mli:
