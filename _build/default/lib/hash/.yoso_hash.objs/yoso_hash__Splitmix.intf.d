lib/hash/splitmix.mli:
