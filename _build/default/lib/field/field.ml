module type PRIME = sig
  val p : int
end

module type S = sig
  type t = private int

  val p : int
  val zero : t
  val one : t
  val two : t
  val of_int : int -> t
  val to_int : t -> int
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val inv : t -> t
  val div : t -> t -> t
  val pow : t -> int -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val random : Random.State.t -> t
  val random_nonzero : Random.State.t -> t
  val sum : t list -> t
  val product : t list -> t
  val dot : t array -> t array -> t
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

(* Modular exponentiation on ints; requires (m-1)^2 <= max_int. *)
let powmod base exp m =
  let rec go acc base exp =
    if exp = 0 then acc
    else
      let acc = if exp land 1 = 1 then acc * base mod m else acc in
      go acc (base * base mod m) (exp lsr 1)
  in
  go 1 (base mod m) exp

let is_probable_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n land 1 = 0 then false
  else begin
    assert (n < 1 lsl 31);
    (* write n-1 = d * 2^s *)
    let rec split d s = if d land 1 = 0 then split (d lsr 1) (s + 1) else (d, s) in
    let d, s = split (n - 1) 0 in
    (* witnesses sufficient for n < 3,215,031,751 *)
    let witnesses = [ 2; 3; 5; 7 ] in
    let composite_for a =
      if a mod n = 0 then false
      else
        let x = powmod a d n in
        if x = 1 || x = n - 1 then false
        else
          let rec square x i =
            if i >= s - 1 then true
            else
              let x = x * x mod n in
              if x = n - 1 then false else square x (i + 1)
          in
          square x 0
    in
    not (List.exists composite_for witnesses)
  end

module Make (P : PRIME) : S = struct
  type t = int

  let p = P.p

  let () =
    if p < 2 then invalid_arg "Field.Make: modulus must be >= 2";
    if (p - 1) > max_int / (p - 1) then
      invalid_arg "Field.Make: (p-1)^2 overflows native int"

  let zero = 0
  let one = 1 mod p
  let two = 2 mod p

  let of_int x =
    let r = x mod p in
    if r < 0 then r + p else r

  let to_int x = x
  let add a b = let s = a + b in if s >= p then s - p else s
  let sub a b = let d = a - b in if d < 0 then d + p else d
  let neg a = if a = 0 then 0 else p - a
  let mul a b = a * b mod p

  let pow x e =
    if e < 0 then invalid_arg "Field.pow: negative exponent";
    powmod x e p

  (* Extended binary gcd is overkill here: Fermat inversion is a single
     modpow and p is prime by precondition. *)
  let inv a = if a = 0 then raise Division_by_zero else powmod a (p - 2) p
  let div a b = mul a (inv b)
  let equal (a : int) b = a = b
  let compare (a : int) b = Stdlib.compare a b

  let random st = Random.State.full_int st p
  let rec random_nonzero st =
    let x = random st in
    if x = 0 then random_nonzero st else x

  let sum xs = List.fold_left add zero xs
  let product xs = List.fold_left mul one xs

  let dot xs ys =
    if Array.length xs <> Array.length ys then
      invalid_arg "Field.dot: length mismatch";
    let acc = ref zero in
    for i = 0 to Array.length xs - 1 do
      acc := add !acc (mul xs.(i) ys.(i))
    done;
    !acc

  let pp ppf x = Format.fprintf ppf "%d" x
  let to_string = string_of_int
end

module Fp = Make (struct
  let p = 2147483647 (* 2^31 - 1, Mersenne *)
end)
