(** Prime-field arithmetic.

    The MPC protocol, packed Shamir sharing and circuit evaluation all
    work over a prime field [F_p].  The default instance {!Fp} uses the
    Mersenne prime [p = 2^31 - 1], chosen so that products of two
    reduced elements fit in OCaml's 63-bit native [int]
    ([(p-1)^2 < 2^62]), making field multiplication a single machine
    multiplication followed by a remainder.

    The functor {!Make} builds a field for any prime below [2^31.5];
    primality is the caller's responsibility (checked probabilistically
    in debug builds via {!Make_checked}). *)

module type PRIME = sig
  val p : int
  (** The modulus.  Must be prime and satisfy [(p-1)^2 <= max_int]. *)
end

module type S = sig
  type t = private int
  (** A field element, always in canonical form [0 <= x < p]. *)

  val p : int
  val zero : t
  val one : t
  val two : t

  val of_int : int -> t
  (** [of_int x] reduces [x] modulo [p]; negative inputs are mapped to
      their canonical representative. *)

  val to_int : t -> int

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t

  val inv : t -> t
  (** Multiplicative inverse. @raise Division_by_zero on [zero]. *)

  val div : t -> t -> t
  (** [div a b = mul a (inv b)]. @raise Division_by_zero if [b = zero]. *)

  val pow : t -> int -> t
  (** [pow x e] for [e >= 0]; [pow zero 0 = one]. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int

  val random : Random.State.t -> t
  (** Uniformly random field element. *)

  val random_nonzero : Random.State.t -> t

  val sum : t list -> t
  val product : t list -> t

  val dot : t array -> t array -> t
  (** Inner product; arrays must have equal length. *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Make (P : PRIME) : S

module Fp : S
(** The default field, [p = 2^31 - 1]. *)

val is_probable_prime : int -> bool
(** Deterministic Miller-Rabin for [int]-sized values (uses the known
    witness set valid below 3.3 * 10^24, restricted to int range). *)
