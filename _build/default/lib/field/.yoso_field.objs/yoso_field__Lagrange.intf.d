lib/field/lagrange.mli: Field
