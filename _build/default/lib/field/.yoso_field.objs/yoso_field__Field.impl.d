lib/field/field.ml: Array Format List Random Stdlib
