lib/field/lagrange.ml: Array Field Hashtbl
