lib/field/barycentric.mli: Field
