lib/field/poly.mli: Field Format Random
