lib/field/field.mli: Format Random
