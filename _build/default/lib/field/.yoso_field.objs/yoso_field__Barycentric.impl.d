lib/field/barycentric.ml: Array Field Hashtbl
