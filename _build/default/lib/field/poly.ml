module Make (F : Field.S) = struct
  type t = F.t array
  (* invariant: no trailing zeros; zero polynomial = [||] *)

  let trim a =
    let n = ref (Array.length a) in
    while !n > 0 && F.equal a.(!n - 1) F.zero do decr n done;
    if !n = Array.length a then a else Array.sub a 0 !n

  let zero = [||]
  let one = [| F.one |]
  let constant c = if F.equal c F.zero then zero else [| c |]
  let x = [| F.zero; F.one |]
  let of_coeffs a = trim (Array.copy a)
  let coeffs p = Array.copy p
  let degree p = Array.length p - 1
  let is_zero p = Array.length p = 0

  let equal p q =
    Array.length p = Array.length q
    && (let ok = ref true in
        Array.iteri (fun i c -> if not (F.equal c q.(i)) then ok := false) p;
        !ok)

  (* Horner evaluation. *)
  let eval p v =
    let acc = ref F.zero in
    for i = Array.length p - 1 downto 0 do
      acc := F.add (F.mul !acc v) p.(i)
    done;
    !acc

  let add p q =
    let n = max (Array.length p) (Array.length q) in
    let get a i = if i < Array.length a then a.(i) else F.zero in
    trim (Array.init n (fun i -> F.add (get p i) (get q i)))

  let neg p = Array.map F.neg p

  let sub p q =
    let n = max (Array.length p) (Array.length q) in
    let get a i = if i < Array.length a then a.(i) else F.zero in
    trim (Array.init n (fun i -> F.sub (get p i) (get q i)))

  let scale c p =
    if F.equal c F.zero then zero else Array.map (F.mul c) p

  let mul p q =
    if is_zero p || is_zero q then zero
    else begin
      let r = Array.make (Array.length p + Array.length q - 1) F.zero in
      Array.iteri
        (fun i pi ->
          if not (F.equal pi F.zero) then
            Array.iteri (fun j qj -> r.(i + j) <- F.add r.(i + j) (F.mul pi qj)) q)
        p;
      trim r
    end

  let divmod num den =
    if is_zero den then raise Division_by_zero;
    let dd = degree den in
    let lead_inv = F.inv den.(dd) in
    let rem = Array.copy num in
    let dn = degree num in
    if dn < dd then (zero, trim rem)
    else begin
      let quot = Array.make (dn - dd + 1) F.zero in
      for i = dn downto dd do
        let c = F.mul rem.(i) lead_inv in
        if not (F.equal c F.zero) then begin
          quot.(i - dd) <- c;
          for j = 0 to dd do
            rem.(i - dd + j) <- F.sub rem.(i - dd + j) (F.mul c den.(j))
          done
        end
      done;
      (trim quot, trim rem)
    end

  let random ~degree st =
    if degree < 0 then zero
    else trim (Array.init (degree + 1) (fun _ -> F.random st))

  let check_distinct pts =
    let xs = List.map fst pts in
    let sorted = List.sort F.compare xs in
    let rec dup = function
      | a :: (b :: _ as rest) -> if F.equal a b then true else dup rest
      | _ -> false
    in
    if dup sorted then invalid_arg "Poly: duplicate x-coordinates"

  (* Lagrange interpolation, O(m^2). *)
  let interpolate pts =
    check_distinct pts;
    match pts with
    | [] -> zero
    | _ ->
      let acc = ref zero in
      List.iteri
        (fun i (xi, yi) ->
          (* basis_i(X) = prod_{j<>i} (X - xj) / (xi - xj) *)
          let num = ref one and den = ref F.one in
          List.iteri
            (fun j (xj, _) ->
              if j <> i then begin
                num := mul !num [| F.neg xj; F.one |];
                den := F.mul !den (F.sub xi xj)
              end)
            pts;
          acc := add !acc (scale (F.mul yi (F.inv !den)) !num))
        pts;
      !acc

  let random_with_values pts ~degree st =
    check_distinct pts;
    let m = List.length pts in
    if degree < m - 1 then
      invalid_arg "Poly.random_with_values: degree too small for constraints";
    let used = List.map fst pts in
    let is_used v = List.exists (F.equal v) used in
    (* pick (degree + 1 - m) fresh abscissae and give them random values *)
    let rec fresh acc candidate need =
      if need = 0 then acc
      else
        let v = F.of_int candidate in
        if is_used v || List.exists (fun (u, _) -> F.equal u v) acc then
          fresh acc (candidate + 1) need
        else fresh ((v, F.random st) :: acc) (candidate + 1) (need - 1)
    in
    let extra = fresh [] 1 (degree + 1 - m) in
    interpolate (pts @ extra)

  let pp ppf p =
    if is_zero p then Format.fprintf ppf "0"
    else
      Array.iteri
        (fun i c ->
          if not (F.equal c F.zero) then
            if i = 0 then Format.fprintf ppf "%a" F.pp c
            else Format.fprintf ppf " + %a*x^%d" F.pp c i)
        p
end
