(** Dense univariate polynomials over a prime field.

    Polynomials are represented by their coefficient array, lowest
    degree first, with no trailing zeros (the zero polynomial is the
    empty array).  All operations are purely functional. *)

module Make (F : Field.S) : sig
  type t
  (** A polynomial over [F]. *)

  val zero : t
  val one : t
  val constant : F.t -> t
  val x : t

  val of_coeffs : F.t array -> t
  (** Builds a polynomial from [c0; c1; ...]; trailing zeros trimmed. *)

  val coeffs : t -> F.t array
  val degree : t -> int
  (** Degree; the zero polynomial has degree [-1]. *)

  val is_zero : t -> bool
  val equal : t -> t -> bool
  val eval : t -> F.t -> F.t
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val scale : F.t -> t -> t

  val divmod : t -> t -> t * t
  (** Euclidean division. @raise Division_by_zero on zero divisor. *)

  val random : degree:int -> Random.State.t -> t
  (** Uniformly random polynomial of degree at most [degree]. *)

  val random_with_values : (F.t * F.t) list -> degree:int -> Random.State.t -> t
  (** [random_with_values pts ~degree st] samples a uniformly random
      polynomial of degree at most [degree] subject to passing through
      every [(x, y)] in [pts].  Requires [degree >= length pts - 1] and
      distinct [x]s.  This is the sharing operation of (packed) Shamir:
      fixed values at secret slots, fresh randomness elsewhere. *)

  val interpolate : (F.t * F.t) list -> t
  (** Unique polynomial of degree [< length pts] through the points.
      @raise Invalid_argument on duplicate x-coordinates. *)

  val pp : Format.formatter -> t -> unit
end
