(** Lagrange-coefficient computation.

    Both packed Shamir reconstruction and the homomorphic "packing"
    step of the offline phase (Protocol 4, Step 4) are linear maps whose
    coefficients are evaluations of Lagrange basis polynomials.  This
    module computes those coefficient vectors once so the linear map
    can be applied to many sharings (or many ciphertext vectors). *)

module Make (F : Field.S) : sig
  val coeffs_at : points:F.t array -> target:F.t -> F.t array
  (** [coeffs_at ~points ~target] returns weights [w] such that for any
      polynomial [f] of degree [< Array.length points],
      [f target = sum_j w.(j) * f points.(j)].
      @raise Invalid_argument on duplicate points. *)

  val basis_matrix : sources:F.t array -> targets:F.t array -> F.t array array
  (** [basis_matrix ~sources ~targets] has one row per target:
      [row.(j) = l_j(target)] where [l_j] is the [j]-th Lagrange basis
      polynomial over [sources]. *)

  val eval_from : points:F.t array -> values:F.t array -> F.t -> F.t
  (** One-shot interpolation-evaluation: value at the given abscissa of
      the unique degree [< n] polynomial through [(points, values)]. *)
end
