module Make (F : Field.S) = struct
  let check_distinct points =
    let n = Array.length points in
    let tbl = Hashtbl.create n in
    Array.iter
      (fun x ->
        let key = F.to_int x in
        if Hashtbl.mem tbl key then
          invalid_arg "Lagrange: duplicate interpolation points";
        Hashtbl.add tbl key ())
      points

  let coeffs_at ~points ~target =
    check_distinct points;
    let n = Array.length points in
    (* w_j = prod_{m<>j} (target - x_m) / (x_j - x_m) *)
    Array.init n (fun j ->
        let num = ref F.one and den = ref F.one in
        for m = 0 to n - 1 do
          if m <> j then begin
            num := F.mul !num (F.sub target points.(m));
            den := F.mul !den (F.sub points.(j) points.(m))
          end
        done;
        F.div !num !den)

  let basis_matrix ~sources ~targets =
    Array.map (fun target -> coeffs_at ~points:sources ~target) targets

  let eval_from ~points ~values v =
    if Array.length points <> Array.length values then
      invalid_arg "Lagrange.eval_from: length mismatch";
    let w = coeffs_at ~points ~target:v in
    F.dot w values
end
