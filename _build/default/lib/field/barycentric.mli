(** Barycentric Lagrange evaluation.

    Precomputes the barycentric weights of a fixed node set in
    [O(m^2)]; each subsequent evaluation of an interpolant costs
    [O(m)].  This is what makes sharing to committees of hundreds of
    parties tractable: [n] share points evaluated against [d + 1]
    anchor nodes costs [O(n d + d^2)] instead of [O(n d^2)]. *)

module Make (F : Field.S) : sig
  type t

  val create : F.t array -> t
  (** @raise Invalid_argument on duplicate nodes. *)

  val nodes : t -> F.t array

  val eval : t -> values:F.t array -> F.t -> F.t
  (** [eval t ~values x] evaluates at [x] the unique polynomial of
      degree [< m] through [(nodes, values)].  Exact (returns the
      stored value) when [x] is a node. *)

  val eval_many : t -> values:F.t array -> F.t array -> F.t array
end
