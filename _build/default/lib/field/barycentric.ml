module Make (F : Field.S) = struct
  type t = { nodes : F.t array; weights : F.t array; index : (int, int) Hashtbl.t }

  let create nodes =
    let m = Array.length nodes in
    let index = Hashtbl.create m in
    Array.iteri
      (fun i x ->
        let key = F.to_int x in
        if Hashtbl.mem index key then
          invalid_arg "Barycentric.create: duplicate nodes";
        Hashtbl.add index key i)
      nodes;
    (* w_j = 1 / prod_{m<>j} (x_j - x_m); computed with a single batch
       inversion over the products *)
    let prods =
      Array.init m (fun j ->
          let acc = ref F.one in
          for l = 0 to m - 1 do
            if l <> j then acc := F.mul !acc (F.sub nodes.(j) nodes.(l))
          done;
          !acc)
    in
    (* batch inversion (Montgomery's trick): one modpow total *)
    let weights =
      if m = 0 then [||]
      else begin
        let prefix = Array.make m F.one in
        let acc = ref F.one in
        for j = 0 to m - 1 do
          prefix.(j) <- !acc;
          acc := F.mul !acc prods.(j)
        done;
        let inv_all = ref (F.inv !acc) in
        let out = Array.make m F.one in
        for j = m - 1 downto 0 do
          out.(j) <- F.mul !inv_all prefix.(j);
          inv_all := F.mul !inv_all prods.(j)
        done;
        out
      end
    in
    { nodes; weights; index }

  let nodes t = Array.copy t.nodes

  let eval t ~values x =
    let m = Array.length t.nodes in
    if Array.length values <> m then
      invalid_arg "Barycentric.eval: values length mismatch";
    match Hashtbl.find_opt t.index (F.to_int x) with
    | Some j -> values.(j)
    | None ->
      (* f(x) = sum_j (w_j / (x - x_j)) y_j / sum_j (w_j / (x - x_j)).
         Batch-invert the (x - x_j) differences: one modpow per eval. *)
      let diffs = Array.init m (fun j -> F.sub x t.nodes.(j)) in
      let prefix = Array.make m F.one in
      let acc = ref F.one in
      for j = 0 to m - 1 do
        prefix.(j) <- !acc;
        acc := F.mul !acc diffs.(j)
      done;
      let inv_all = ref (F.inv !acc) in
      let num = ref F.zero and den = ref F.zero in
      for j = m - 1 downto 0 do
        let inv_diff = F.mul !inv_all prefix.(j) in
        inv_all := F.mul !inv_all diffs.(j);
        let term = F.mul t.weights.(j) inv_diff in
        num := F.add !num (F.mul term values.(j));
        den := F.add !den term
      done;
      F.div !num !den

  let eval_many t ~values xs = Array.map (eval t ~values) xs
end
