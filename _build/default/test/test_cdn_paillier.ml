module B = Yoso_bigint.Bigint
module CP = Yoso_mpc.Cdn_paillier
module Gen = Yoso_circuit.Generators
module Circuit = Yoso_circuit.Circuit

let big = Alcotest.testable B.pp B.equal

let small_inputs c = Array.init 8 (fun i -> B.of_int ((c + 2) * (i + 1)))

let test_dot_product () =
  let circuit = Gen.dot_product ~len:3 in
  let r = CP.execute ~n:5 ~t:2 ~circuit ~inputs:small_inputs () in
  Alcotest.(check bool) "matches plain Z_N evaluation" true (CP.check r circuit ~inputs:small_inputs);
  Alcotest.(check int) "no rejections when honest" 0 r.CP.rejected_contributions

let test_additions_only () =
  (* no multiplication gates: no triples, no openings *)
  let b = Yoso_circuit.Builder.create () in
  let x = Yoso_circuit.Builder.input b ~client:0 in
  let y = Yoso_circuit.Builder.input b ~client:1 in
  let z = Yoso_circuit.Builder.input b ~client:1 in
  Yoso_circuit.Builder.output b ~client:0
    (Yoso_circuit.Builder.add b (Yoso_circuit.Builder.add b x y) z);
  let circuit = Yoso_circuit.Builder.build b in
  let r = CP.execute ~n:4 ~t:1 ~circuit ~inputs:small_inputs () in
  Alcotest.(check bool) "sum correct" true (CP.check r circuit ~inputs:small_inputs)

let test_deep_circuit_with_reshare () =
  (* enough gates that the mid-protocol TKRes/TKRec refresh triggers
     and later openings use epoch-1 shares *)
  let circuit = Gen.poly_eval ~degree:4 in
  let inputs c = if c = 0 then Array.init 5 (fun i -> B.of_int (i + 1)) else [| B.of_int 3 |] in
  let r = CP.execute ~n:5 ~t:2 ~circuit ~inputs () in
  Alcotest.(check bool) "deep circuit with key refresh" true (CP.check r circuit ~inputs)

let test_malicious_detected_and_tolerated () =
  let circuit = Gen.dot_product ~len:2 in
  let inputs = small_inputs in
  let r = CP.execute ~n:5 ~t:2 ~malicious:[ 0; 4 ] ~circuit ~inputs () in
  (* 2 malicious members x 2 committees x 2 gates = 8 rejected proofs *)
  Alcotest.(check int) "rejections counted" 8 r.CP.rejected_contributions;
  Alcotest.(check bool) "output still correct" true (CP.check r circuit ~inputs)

let test_values_reduced_mod_n () =
  (* huge inputs wrap around the modulus, consistently with expected *)
  let circuit = Gen.dot_product ~len:2 in
  let inputs _ = [| B.pow (B.of_int 2) 200; B.of_int 3 |] in
  let r = CP.execute ~n:4 ~t:1 ~bits:64 ~circuit ~inputs () in
  Alcotest.(check bool) "mod-N arithmetic" true (CP.check r circuit ~inputs);
  (match (r.CP.outputs, CP.expected ~modulus:r.CP.modulus circuit ~inputs) with
  | (_, _, got) :: _, (_, want) :: _ -> Alcotest.check big "value" want got
  | _ -> Alcotest.fail "missing outputs")

let test_expected_matches_field_semantics () =
  (* the Z_N evaluator agrees with the F_p evaluator on small values *)
  let module F = Yoso_field.Field.Fp in
  let module Eval = Yoso_circuit.Circuit.Eval (Yoso_field.Field.Fp) in
  let circuit = Gen.variance_numerator ~parties:3 in
  let ints = [ (0, [ 5; 3; -1 ]); (1, [ 7 ]); (2, [ 2 ]) ] in
  let modulus = B.of_string "1000000007" in
  let b_inputs c = Array.of_list (List.map B.of_int (List.assoc c ints)) in
  let f_inputs c = Array.of_list (List.map F.of_int (List.assoc c ints)) in
  let zn = CP.expected ~modulus circuit ~inputs:b_inputs in
  let fp = Eval.run circuit ~inputs:f_inputs in
  (* values are tiny, so they agree as integers despite the -1 wrap...
     except the -1 constant wraps differently; compare via evaluation
     of the same signed result *)
  List.iter2
    (fun (_, bv) (_, fv) ->
      let signed_b =
        let v = bv in
        if B.compare v (B.shift_right modulus 1) > 0 then B.sub v modulus else v
      in
      let signed_f =
        let v = F.to_int fv in
        if v > F.p / 2 then v - F.p else v
      in
      Alcotest.(check string) "same signed value" (string_of_int signed_f)
        (B.to_string signed_b))
    zn fp

let () =
  Alcotest.run "cdn_paillier"
    [
      ( "real-crypto",
        [
          Alcotest.test_case "dot product" `Quick test_dot_product;
          Alcotest.test_case "additions only" `Quick test_additions_only;
          Alcotest.test_case "deep + key refresh" `Quick test_deep_circuit_with_reshare;
          Alcotest.test_case "malicious detected" `Quick test_malicious_detected_and_tolerated;
          Alcotest.test_case "mod-N reduction" `Quick test_values_reduced_mod_n;
          Alcotest.test_case "evaluator consistency" `Quick test_expected_matches_field_semantics;
        ] );
    ]
