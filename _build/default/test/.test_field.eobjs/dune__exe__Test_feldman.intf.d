test/test_feldman.mli:
