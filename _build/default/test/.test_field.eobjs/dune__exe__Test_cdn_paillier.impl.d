test/test_cdn_paillier.ml: Alcotest Array List Yoso_bigint Yoso_circuit Yoso_field Yoso_mpc
