test/test_circuit.ml: Alcotest Array Filename Fun List Random Sys Yoso_circuit Yoso_field
