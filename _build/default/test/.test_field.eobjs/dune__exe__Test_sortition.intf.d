test/test_sortition.mli:
