test/test_hash.ml: Alcotest Array Char List String Yoso_hash
