test/test_feldman.ml: Alcotest Array Lazy List Random Yoso_bigint Yoso_field Yoso_mpc Yoso_shamir
