test/test_protocol_properties.ml: Alcotest Array List Printf QCheck QCheck_alcotest Random Yoso_circuit Yoso_field Yoso_mpc
