test/test_shamir.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Random Yoso_field Yoso_shamir
