test/test_bigint.ml: Alcotest List QCheck QCheck_alcotest Random Yoso_bigint
