test/test_sortition.ml: Alcotest List Option Printf Yoso_hash Yoso_sortition
