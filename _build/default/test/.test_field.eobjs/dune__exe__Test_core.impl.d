test/test_core.ml: Alcotest Array Hashtbl List Printf Random Yoso_circuit Yoso_field Yoso_hash Yoso_mpc Yoso_runtime
