test/test_nizk.mli:
