test/test_runtime.ml: Alcotest List Yoso_hash Yoso_runtime
