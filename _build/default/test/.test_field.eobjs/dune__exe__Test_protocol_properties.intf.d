test/test_protocol_properties.mli:
