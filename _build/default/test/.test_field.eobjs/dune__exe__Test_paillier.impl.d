test/test_paillier.ml: Alcotest Array List Random Yoso_bigint Yoso_paillier
