test/test_nizk.ml: Alcotest List Random Yoso_bigint Yoso_nizk Yoso_paillier
