test/test_field.ml: Alcotest Array List QCheck QCheck_alcotest Random Stdlib Yoso_field
