test/test_cdn_paillier.mli:
