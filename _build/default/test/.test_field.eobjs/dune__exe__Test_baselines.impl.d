test/test_baselines.ml: Alcotest Array List Printf Yoso_circuit Yoso_field Yoso_mpc
