module F = Yoso_field.Field.Fp
module Poly = Yoso_field.Poly.Make (F)
module Lagrange = Yoso_field.Lagrange.Make (F)

let st = Random.State.make [| 0xF1E1D |]

let felt = Alcotest.testable F.pp F.equal

let check_f = Alcotest.check felt

(* ------------------------------------------------------------------ *)
(* Field axioms and basic ops                                          *)
(* ------------------------------------------------------------------ *)

let test_constants () =
  check_f "zero" F.zero (F.of_int 0);
  check_f "one" F.one (F.of_int 1);
  check_f "p wraps to zero" F.zero (F.of_int F.p);
  check_f "negative wraps" (F.of_int (F.p - 1)) (F.of_int (-1))

let test_add_sub () =
  for _ = 1 to 200 do
    let a = F.random st and b = F.random st in
    check_f "a+b-b = a" a (F.sub (F.add a b) b);
    check_f "a-a = 0" F.zero (F.sub a a);
    check_f "a + (-a) = 0" F.zero (F.add a (F.neg a))
  done

let test_mul_inv () =
  for _ = 1 to 200 do
    let a = F.random_nonzero st in
    check_f "a * a^-1 = 1" F.one (F.mul a (F.inv a));
    check_f "div roundtrip" a (F.mul (F.div a (F.of_int 7)) (F.of_int 7))
  done

let test_inv_zero () =
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (F.inv F.zero))

let test_pow () =
  check_f "x^0 = 1" F.one (F.pow (F.of_int 12345) 0);
  check_f "x^1 = x" (F.of_int 12345) (F.pow (F.of_int 12345) 1);
  check_f "2^10" (F.of_int 1024) (F.pow F.two 10);
  (* Fermat: x^(p-1) = 1 *)
  for _ = 1 to 20 do
    let a = F.random_nonzero st in
    check_f "fermat" F.one (F.pow a (F.p - 1))
  done

let test_overflow_boundary () =
  (* largest products must reduce correctly *)
  let m = F.of_int (F.p - 1) in
  check_f "(p-1)^2 = 1" F.one (F.mul m m);
  check_f "(p-1)+(p-1) = p-2" (F.of_int (F.p - 2)) (F.add m m)

let test_dot () =
  let xs = Array.map F.of_int [| 1; 2; 3 |] in
  let ys = Array.map F.of_int [| 4; 5; 6 |] in
  check_f "dot" (F.of_int 32) (F.dot xs ys);
  Alcotest.check_raises "dot length mismatch"
    (Invalid_argument "Field.dot: length mismatch") (fun () ->
      ignore (F.dot xs [| F.one |]))

let test_small_prime_field () =
  let module F7 = Yoso_field.Field.Make (struct
    let p = 7
  end) in
  Alcotest.(check int) "3*5 mod 7" 1 (F7.to_int (F7.mul (F7.of_int 3) (F7.of_int 5)));
  Alcotest.(check int) "inv 3 mod 7" 5 (F7.to_int (F7.inv (F7.of_int 3)))

let test_is_probable_prime () =
  Alcotest.(check bool) "p is prime" true (Yoso_field.Field.is_probable_prime F.p);
  Alcotest.(check bool) "2^31-2 not prime" false
    (Yoso_field.Field.is_probable_prime (F.p - 1));
  Alcotest.(check bool) "1 not prime" false (Yoso_field.Field.is_probable_prime 1);
  Alcotest.(check bool) "carmichael 561" false
    (Yoso_field.Field.is_probable_prime 561);
  Alcotest.(check bool) "104729 prime" true
    (Yoso_field.Field.is_probable_prime 104729)

(* ------------------------------------------------------------------ *)
(* Polynomials                                                         *)
(* ------------------------------------------------------------------ *)

let test_poly_basic () =
  let p = Poly.of_coeffs (Array.map F.of_int [| 1; 2; 3 |]) in
  Alcotest.(check int) "degree" 2 (Poly.degree p);
  check_f "eval at 0" F.one (Poly.eval p F.zero);
  check_f "eval at 1" (F.of_int 6) (Poly.eval p F.one);
  check_f "eval at 2" (F.of_int 17) (Poly.eval p F.two);
  Alcotest.(check int) "zero degree" (-1) (Poly.degree Poly.zero);
  Alcotest.(check bool) "trailing zeros trimmed" true
    (Poly.equal p (Poly.of_coeffs (Array.map F.of_int [| 1; 2; 3; 0; 0 |])))

let test_poly_ring_ops () =
  for _ = 1 to 50 do
    let p = Poly.random ~degree:(Random.State.int st 8) st in
    let q = Poly.random ~degree:(Random.State.int st 8) st in
    let x = F.random st in
    check_f "add hom" (F.add (Poly.eval p x) (Poly.eval q x)) (Poly.eval (Poly.add p q) x);
    check_f "sub hom" (F.sub (Poly.eval p x) (Poly.eval q x)) (Poly.eval (Poly.sub p q) x);
    check_f "mul hom" (F.mul (Poly.eval p x) (Poly.eval q x)) (Poly.eval (Poly.mul p q) x)
  done

let test_poly_divmod () =
  for _ = 1 to 50 do
    let a = Poly.random ~degree:(2 + Random.State.int st 8) st in
    let b = Poly.random ~degree:(Random.State.int st 4) st in
    if not (Poly.is_zero b) then begin
      let q, r = Poly.divmod a b in
      Alcotest.(check bool) "deg r < deg b" true (Poly.degree r < Stdlib.max 0 (Poly.degree b));
      Alcotest.(check bool) "a = bq + r" true (Poly.equal a (Poly.add (Poly.mul b q) r))
    end
  done

let test_interpolate () =
  for _ = 1 to 30 do
    let d = 1 + Random.State.int st 8 in
    let p = Poly.random ~degree:d st in
    let pts = List.init (d + 1) (fun i -> (F.of_int (i + 1), Poly.eval p (F.of_int (i + 1)))) in
    let q = Poly.interpolate pts in
    (* q agrees with p on d+1 points and has degree <= d, so q = p *)
    Alcotest.(check bool) "interpolation recovers evals" true
      (List.for_all (fun (x, y) -> F.equal (Poly.eval q x) y) pts);
    Alcotest.(check bool) "degree bound" true (Poly.degree q <= d)
  done;
  Alcotest.check_raises "duplicate points"
    (Invalid_argument "Poly: duplicate x-coordinates") (fun () ->
      ignore (Poly.interpolate [ (F.one, F.one); (F.one, F.two) ]))

let test_random_with_values () =
  for _ = 1 to 30 do
    let pts = [ (F.of_int 100, F.random st); (F.of_int 200, F.random st) ] in
    let d = 5 in
    let p = Poly.random_with_values pts ~degree:d st in
    Alcotest.(check bool) "degree bound" true (Poly.degree p <= d);
    List.iter (fun (x, y) -> check_f "constraint satisfied" y (Poly.eval p x)) pts
  done;
  Alcotest.check_raises "degree too small"
    (Invalid_argument "Poly.random_with_values: degree too small for constraints")
    (fun () ->
      ignore
        (Poly.random_with_values
           [ (F.one, F.one); (F.two, F.two) ]
           ~degree:0 st))

(* ------------------------------------------------------------------ *)
(* Lagrange                                                            *)
(* ------------------------------------------------------------------ *)

let test_lagrange_coeffs () =
  for _ = 1 to 30 do
    let d = 1 + Random.State.int st 7 in
    let p = Poly.random ~degree:d st in
    let points = Array.init (d + 1) (fun i -> F.of_int (i + 1)) in
    let values = Array.map (Poly.eval p) points in
    let target = F.of_int (Random.State.int st 1000 + 500) in
    let w = Lagrange.coeffs_at ~points ~target in
    check_f "weighted sum = eval" (Poly.eval p target) (F.dot w values);
    check_f "eval_from" (Poly.eval p target) (Lagrange.eval_from ~points ~values target)
  done

let test_lagrange_matrix () =
  let sources = Array.map F.of_int [| 1; 2; 3 |] in
  let targets = Array.map F.of_int [| 5; 6 |] in
  let m = Lagrange.basis_matrix ~sources ~targets in
  Alcotest.(check int) "rows" 2 (Array.length m);
  let p = Poly.random ~degree:2 st in
  let values = Array.map (Poly.eval p) sources in
  Array.iteri
    (fun i target -> check_f "matrix row correct" (Poly.eval p target) (F.dot m.(i) values))
    targets

let test_lagrange_duplicate () =
  Alcotest.check_raises "duplicates rejected"
    (Invalid_argument "Lagrange: duplicate interpolation points") (fun () ->
      ignore (Lagrange.coeffs_at ~points:[| F.one; F.one |] ~target:F.zero))

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let arb_felt = QCheck.map ~rev:F.to_int F.of_int (QCheck.int_bound (F.p - 1))

let qcheck_props =
  [
    QCheck.Test.make ~count:500 ~name:"field add commutes"
      (QCheck.pair arb_felt arb_felt) (fun (a, b) -> F.equal (F.add a b) (F.add b a));
    QCheck.Test.make ~count:500 ~name:"field mul commutes"
      (QCheck.pair arb_felt arb_felt) (fun (a, b) -> F.equal (F.mul a b) (F.mul b a));
    QCheck.Test.make ~count:500 ~name:"field distributivity"
      (QCheck.triple arb_felt arb_felt arb_felt) (fun (a, b, c) ->
        F.equal (F.mul a (F.add b c)) (F.add (F.mul a b) (F.mul a c)));
    QCheck.Test.make ~count:500 ~name:"field mul associativity"
      (QCheck.triple arb_felt arb_felt arb_felt) (fun (a, b, c) ->
        F.equal (F.mul a (F.mul b c)) (F.mul (F.mul a b) c));
    QCheck.Test.make ~count:200 ~name:"inv is involutive" arb_felt (fun a ->
        QCheck.assume (not (F.equal a F.zero));
        F.equal a (F.inv (F.inv a)));
  ]

let () =
  Alcotest.run "field"
    [
      ( "field",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul/inv" `Quick test_mul_inv;
          Alcotest.test_case "inv zero" `Quick test_inv_zero;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "overflow boundary" `Quick test_overflow_boundary;
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "small prime functor" `Quick test_small_prime_field;
          Alcotest.test_case "is_probable_prime" `Quick test_is_probable_prime;
        ] );
      ( "poly",
        [
          Alcotest.test_case "basic" `Quick test_poly_basic;
          Alcotest.test_case "ring ops" `Quick test_poly_ring_ops;
          Alcotest.test_case "divmod" `Quick test_poly_divmod;
          Alcotest.test_case "interpolate" `Quick test_interpolate;
          Alcotest.test_case "random_with_values" `Quick test_random_with_values;
        ] );
      ( "lagrange",
        [
          Alcotest.test_case "coeffs" `Quick test_lagrange_coeffs;
          Alcotest.test_case "matrix" `Quick test_lagrange_matrix;
          Alcotest.test_case "duplicates" `Quick test_lagrange_duplicate;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props);
    ]
