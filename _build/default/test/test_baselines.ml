module F = Yoso_field.Field.Fp
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Cdn = Yoso_mpc.Cdn_baseline
module Bgw = Yoso_mpc.Bgw_baseline
module Gen = Yoso_circuit.Generators

let inputs_of len c = Array.init len (fun i -> F.of_int ((c + 2) * (i + 1)))

(* ------------------------------------------------------------------ *)
(* BGW                                                                 *)
(* ------------------------------------------------------------------ *)

let bgw_check ?(n = 9) ?(t = 4) circuit len =
  let inputs = inputs_of len in
  let r = Bgw.execute ~n ~t ~circuit ~inputs () in
  Alcotest.(check bool) "matches plain evaluation" true (Bgw.check r circuit ~inputs)

let test_bgw_dot () = bgw_check (Gen.dot_product ~len:6) 6
let test_bgw_wide () = bgw_check (Gen.wide_mul ~width:5 ~depth:3 ~clients:2) 10
let test_bgw_deep () = bgw_check (Gen.poly_eval ~degree:8) 9
let test_bgw_variance () =
  let circuit = Gen.variance_numerator ~parties:4 in
  let inputs c =
    if c = 0 then [| F.of_int 6; F.of_int 4; F.of_int (-1) |] else [| F.of_int (2 * c) |]
  in
  let r = Bgw.execute ~n:7 ~t:3 ~circuit ~inputs () in
  Alcotest.(check bool) "variance" true (Bgw.check r circuit ~inputs)

let test_bgw_random_dags () =
  for seed = 1 to 5 do
    let circuit = Gen.random_dag ~gates:40 ~clients:3 ~mul_fraction:0.4 ~seed in
    let inputs c = [| F.of_int (c + 11); F.of_int ((3 * c) + 1) |] in
    let r = Bgw.execute ~n:9 ~t:4 ~circuit ~inputs () in
    Alcotest.(check bool) "random dag" true (Bgw.check r circuit ~inputs)
  done

let test_bgw_threshold_validation () =
  Alcotest.check_raises "2t+1 > n" (Invalid_argument "Bgw_baseline: need 0 <= t < n/2")
    (fun () ->
      ignore
        (Bgw.execute ~n:8 ~t:4 ~circuit:(Gen.dot_product ~len:2)
           ~inputs:(inputs_of 2) ()))

let test_bgw_t0 () =
  (* degenerate: no privacy, still correct *)
  bgw_check ~n:3 ~t:0 (Gen.dot_product ~len:3) 3

let test_bgw_add_only_circuit () =
  let b = Yoso_circuit.Builder.create () in
  let x = Yoso_circuit.Builder.input b ~client:0 in
  let y = Yoso_circuit.Builder.input b ~client:1 in
  Yoso_circuit.Builder.output b ~client:0 (Yoso_circuit.Builder.add b x y);
  let circuit = Yoso_circuit.Builder.build b in
  bgw_check circuit 1

(* ------------------------------------------------------------------ *)
(* Cross-protocol agreement                                            *)
(* ------------------------------------------------------------------ *)

let test_three_protocols_agree () =
  let circuit = Gen.dot_product ~len:5 in
  let inputs = inputs_of 5 in
  let params = Params.create ~n:9 ~t:2 ~k:2 () in
  let ours = Protocol.execute ~params ~circuit ~inputs () in
  let cdn = Cdn.execute ~params ~circuit ~inputs () in
  let bgw = Bgw.execute ~n:9 ~t:4 ~circuit ~inputs () in
  let v_ours = (List.hd ours.Protocol.outputs).Yoso_mpc.Online.value in
  let (_, _, v_cdn) = List.hd cdn.Cdn.outputs in
  let (_, _, v_bgw) = List.hd bgw.Bgw.outputs in
  Alcotest.(check bool) "ours = cdn" true (F.equal v_ours v_cdn);
  Alcotest.(check bool) "ours = bgw" true (F.equal v_ours v_bgw)

let test_bgw_cost_quadratic_in_n () =
  (* per-gate online cost of BGW must grow superlinearly with n *)
  let circuit = Gen.wide_mul_reduced ~width:8 ~depth:2 ~clients:2 in
  let inputs = inputs_of 16 in
  let run n = Bgw.online_per_gate (Bgw.execute ~n ~t:((n - 1) / 2) ~circuit ~inputs ()) in
  let c9 = run 9 and c36 = run 36 in
  Alcotest.(check bool)
    (Printf.sprintf "4x n -> >8x cost (%.0f -> %.0f)" c9 c36)
    true
    (c36 > 8.0 *. c9)

let () =
  Alcotest.run "baselines"
    [
      ( "bgw",
        [
          Alcotest.test_case "dot" `Quick test_bgw_dot;
          Alcotest.test_case "wide" `Quick test_bgw_wide;
          Alcotest.test_case "deep" `Quick test_bgw_deep;
          Alcotest.test_case "variance" `Quick test_bgw_variance;
          Alcotest.test_case "random dags" `Quick test_bgw_random_dags;
          Alcotest.test_case "threshold validation" `Quick test_bgw_threshold_validation;
          Alcotest.test_case "t = 0" `Quick test_bgw_t0;
          Alcotest.test_case "additions only" `Quick test_bgw_add_only_circuit;
        ] );
      ( "cross-protocol",
        [
          Alcotest.test_case "three protocols agree" `Quick test_three_protocols_agree;
          Alcotest.test_case "bgw quadratic" `Slow test_bgw_cost_quadratic_in_n;
        ] );
    ]
