module Sha256 = Yoso_hash.Sha256
module Prg = Yoso_hash.Prg
module Splitmix = Yoso_hash.Splitmix

(* ------------------------------------------------------------------ *)
(* SHA-256 NIST / well-known vectors                                   *)
(* ------------------------------------------------------------------ *)

let check_digest msg expected_hex =
  Alcotest.(check string) ("sha256 of " ^ String.escaped (String.sub msg 0 (min 12 (String.length msg))))
    expected_hex
    (Sha256.hex (Sha256.digest_string msg))

let test_nist_vectors () =
  check_digest "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check_digest "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check_digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  check_digest
    "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"

let test_million_a () =
  let ctx = Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.feed_string ctx chunk
  done;
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (Sha256.finalize ctx))

let test_streaming_matches_oneshot () =
  let msg = String.init 500 (fun i -> Char.chr (i mod 256)) in
  let oneshot = Sha256.digest_string msg in
  (* feed in awkward chunk sizes crossing block boundaries *)
  List.iter
    (fun sizes ->
      let ctx = Sha256.init () in
      let pos = ref 0 in
      List.iter
        (fun sz ->
          let take = min sz (String.length msg - !pos) in
          Sha256.feed_string ctx (String.sub msg !pos take);
          pos := !pos + take)
        sizes;
      if !pos < String.length msg then
        Sha256.feed_string ctx (String.sub msg !pos (String.length msg - !pos));
      Alcotest.(check string) "chunked = oneshot" (Sha256.hex oneshot)
        (Sha256.hex (Sha256.finalize ctx)))
    [ [ 1; 63; 64; 65; 127 ]; [ 499 ]; [ 64; 64; 64 ]; List.init 500 (fun _ -> 1) ]

let test_finalize_twice () =
  let ctx = Sha256.init () in
  Sha256.feed_string ctx "x";
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "double finalize"
    (Invalid_argument "Sha256: context already finalized") (fun () ->
      ignore (Sha256.finalize ctx))

let test_hmac_rfc4231 () =
  (* RFC 4231 test case 1 *)
  let key = String.make 20 '\x0b' in
  Alcotest.(check string) "rfc4231 tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Sha256.hex (Sha256.hmac ~key "Hi There"));
  (* test case 2 *)
  Alcotest.(check string) "rfc4231 tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.hex (Sha256.hmac ~key:"Jefe" "what do ya want for nothing?"));
  (* test case 3: 20 x 0xaa key, 50 x 0xdd data *)
  Alcotest.(check string) "rfc4231 tc3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Sha256.hex (Sha256.hmac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')))

(* ------------------------------------------------------------------ *)
(* PRG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_prg_deterministic () =
  let a = Prg.create ~seed:"seed" and b = Prg.create ~seed:"seed" in
  Alcotest.(check string) "same stream" (Prg.bytes a 100) (Prg.bytes b 100);
  let c = Prg.create ~seed:"other" in
  Alcotest.(check bool) "different seed differs" true (Prg.bytes c 100 <> Prg.bytes b 100)

let test_prg_chunking () =
  let a = Prg.create ~seed:"s" and b = Prg.create ~seed:"s" in
  let big = Prg.bytes a 100 in
  (* bind sequentially: list literals do not guarantee evaluation order *)
  let p1 = Prg.bytes b 1 in
  let p2 = Prg.bytes b 31 in
  let p3 = Prg.bytes b 32 in
  let p4 = Prg.bytes b 36 in
  let pieces = String.concat "" [ p1; p2; p3; p4 ] in
  Alcotest.(check string) "chunked = contiguous" big pieces

let test_prg_int_below () =
  let t = Prg.create ~seed:"bounds" in
  for _ = 1 to 1000 do
    let v = Prg.int_below t 17 in
    Alcotest.(check bool) "range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Prg.int_below: bound must be positive") (fun () ->
      ignore (Prg.int_below t 0))

let test_prg_field_elt_uniformish () =
  let t = Prg.create ~seed:"field" in
  let p = 97 in
  let counts = Array.make p 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Prg.field_elt t ~p in
    counts.(v) <- counts.(v) + 1
  done;
  (* chi-square-ish sanity: every bucket within 3x of expectation *)
  let expected = float_of_int n /. float_of_int p in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true
        (float_of_int c > expected /. 3. && float_of_int c < expected *. 3.))
    counts

(* ------------------------------------------------------------------ *)
(* SplitMix                                                            *)
(* ------------------------------------------------------------------ *)

let test_splitmix_reference () =
  (* reference outputs for seed 0 (well-known SplitMix64 sequence) *)
  let t = Splitmix.create 0L in
  let expected = [ 0xE220A8397B1DCDAFL; 0x6E789E6AA1B965F4L; 0x06C45D188009454FL ] in
  List.iter
    (fun e -> Alcotest.(check int64) "splitmix64 ref" e (Splitmix.next t))
    expected

let test_splitmix_determinism () =
  let a = Splitmix.of_int 42 and b = Splitmix.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same" (Splitmix.next a) (Splitmix.next b)
  done

let test_splitmix_split_independent () =
  let a = Splitmix.of_int 7 in
  let b = Splitmix.split a in
  let xs = List.init 50 (fun _ -> Splitmix.next a) in
  let ys = List.init 50 (fun _ -> Splitmix.next b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_splitmix_bounds () =
  let t = Splitmix.of_int 9 in
  for _ = 1 to 1000 do
    let v = Splitmix.int t 13 in
    Alcotest.(check bool) "int range" true (v >= 0 && v < 13);
    let f = Splitmix.float t in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Splitmix.int: bound must be positive") (fun () ->
      ignore (Splitmix.int t 0))

let () =
  Alcotest.run "hash"
    [
      ( "sha256",
        [
          Alcotest.test_case "nist vectors" `Quick test_nist_vectors;
          Alcotest.test_case "million a" `Quick test_million_a;
          Alcotest.test_case "streaming" `Quick test_streaming_matches_oneshot;
          Alcotest.test_case "double finalize" `Quick test_finalize_twice;
          Alcotest.test_case "hmac rfc4231" `Quick test_hmac_rfc4231;
        ] );
      ( "prg",
        [
          Alcotest.test_case "deterministic" `Quick test_prg_deterministic;
          Alcotest.test_case "chunking" `Quick test_prg_chunking;
          Alcotest.test_case "int_below" `Quick test_prg_int_below;
          Alcotest.test_case "uniformity" `Quick test_prg_field_elt_uniformish;
        ] );
      ( "splitmix",
        [
          Alcotest.test_case "reference" `Quick test_splitmix_reference;
          Alcotest.test_case "determinism" `Quick test_splitmix_determinism;
          Alcotest.test_case "split" `Quick test_splitmix_split_independent;
          Alcotest.test_case "bounds" `Quick test_splitmix_bounds;
        ] );
    ]
