module Analysis = Yoso_sortition.Analysis
module Binomial = Yoso_sortition.Binomial
module Sampler = Yoso_sortition.Sampler
module Splitmix = Yoso_hash.Splitmix

(* ------------------------------------------------------------------ *)
(* Table 1 reproduction                                                *)
(* ------------------------------------------------------------------ *)

(* The paper's Table 1, transcribed: (C, f) -> (t, c, c', eps, k);
   None for the ⊥ cells.  We accept |t| within 1 and |c| within 3 of
   the paper (the paper's own rounding conventions are not fully
   self-consistent: e.g. its c' column shows both 2t and 2t+1). *)
let paper_table =
  [
    (1000, 0.05, Some (446, 949, 893, 0.03, 28));
    (1000, 0.10, None);
    (1000, 0.15, None);
    (1000, 0.20, None);
    (1000, 0.25, None);
    (5000, 0.05, Some (1078, 4699, 2157, 0.27, 1271));
    (5000, 0.10, Some (1721, 4925, 3444, 0.15, 741));
    (5000, 0.15, Some (2293, 5106, 4588, 0.05, 259));
    (5000, 0.20, None);
    (5000, 0.25, None);
    (10000, 0.05, Some (1754, 9518, 3509, 0.32, 3004));
    (10000, 0.10, Some (2937, 9841, 5876, 0.20, 1982));
    (10000, 0.15, Some (4004, 10098, 8009, 0.10, 1045));
    (10000, 0.20, Some (4983, 10319, 9968, 0.02, 175));
    (10000, 0.25, None);
    (20000, 0.05, Some (2998, 19264, 5998, 0.34, 6633));
    (20000, 0.10, Some (5216, 19723, 10433, 0.24, 4645));
    (20000, 0.15, Some (7237, 20088, 14476, 0.14, 2806));
    (20000, 0.20, Some (9107, 20401, 18215, 0.05, 1093));
    (20000, 0.25, None);
    (40000, 0.05, Some (5331, 38907, 10664, 0.36, 14121));
    (40000, 0.10, Some (9552, 39558, 19106, 0.26, 10226));
    (40000, 0.15, Some (13437, 40074, 26875, 0.16, 6600));
    (40000, 0.20, Some (17047, 40517, 34096, 0.08, 3211));
    (40000, 0.25, Some (20408, 40911, 40818, 0.01, 47));
  ]

let close label tol expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%d - %d| <= %d" label expected got tol)
    true
    (abs (expected - got) <= tol)

let test_table1_matches_paper () =
  List.iter
    (fun (c_param, f, expected) ->
      let got = Analysis.solve ~f c_param in
      match (expected, got) with
      | None, None -> ()
      | None, Some r ->
        Alcotest.failf "C=%d f=%.2f: paper says ⊥, we got t=%d" c_param f r.Analysis.t
      | Some _, None -> Alcotest.failf "C=%d f=%.2f: paper has a row, we got ⊥" c_param f
      | Some (t, c, c', eps, k), Some r ->
        let label = Printf.sprintf "C=%d f=%.2f" c_param f in
        close (label ^ " t") 1 t r.Analysis.t;
        close (label ^ " c") 3 c r.Analysis.c;
        close (label ^ " c'") 2 c' r.Analysis.c';
        close (label ^ " k") 3 k r.Analysis.k;
        Alcotest.(check bool) (label ^ " eps") true (abs_float (eps -. r.Analysis.eps) < 0.01))
    paper_table

let test_feasibility_monotone_in_c () =
  (* growing C can only help: once feasible, larger C stays feasible *)
  List.iter
    (fun f ->
      let feas c = Option.is_some (Analysis.solve ~f c) in
      let cs = [ 500; 1000; 2000; 5000; 10000; 20000; 40000; 80000 ] in
      let rec check seen_feasible = function
        | [] -> ()
        | c :: rest ->
          let now = feas c in
          if seen_feasible then
            Alcotest.(check bool) (Printf.sprintf "f=%.2f C=%d stays feasible" f c) true now;
          check (seen_feasible || now) rest
      in
      check false cs)
    [ 0.05; 0.1; 0.2 ]

let test_gap_shrinks_with_f () =
  (* higher corruption ratio -> smaller achievable gap *)
  let eps f =
    match Analysis.solve ~f 20000 with
    | Some r -> r.Analysis.eps
    | None -> 0.0
  in
  Alcotest.(check bool) "eps decreasing in f" true
    (eps 0.05 > eps 0.10 && eps 0.10 > eps 0.15 && eps 0.15 > eps 0.20)

let test_committee_overhead_is_marginal () =
  (* the paper's point: c is only marginally above c' for large f *)
  match Analysis.solve ~f:0.2 20000 with
  | None -> Alcotest.fail "feasible cell expected"
  | Some r ->
    let overhead = float_of_int r.Analysis.c /. float_of_int r.Analysis.c' in
    Alcotest.(check bool) "overhead < 15%" true (overhead < 1.15);
    Alcotest.(check bool) "k > 1000" true (r.Analysis.k > 1000)

let test_improvement_claims () =
  let claims = Analysis.improvement_claims () in
  Alcotest.(check int) "two claims" 2 (List.length claims);
  let _, r1 = List.nth claims 0 in
  let _, r2 = List.nth claims 1 in
  Alcotest.(check int) "28x claim" 28 r1.Analysis.k;
  Alcotest.(check bool) ">1000x claim" true (r2.Analysis.k > 1000)

let test_solve_validation () =
  Alcotest.check_raises "C = 0" (Invalid_argument "Analysis.solve: C must be positive")
    (fun () -> ignore (Analysis.solve ~f:0.1 0));
  Alcotest.check_raises "f = 0" (Invalid_argument "Analysis.solve: f must be in (0, 1)")
    (fun () -> ignore (Analysis.solve ~f:0.0 1000))

let test_invariants () =
  List.iter
    (fun (_, _, row) ->
      match row with
      | None -> ()
      | Some r ->
        Alcotest.(check bool) "0 < eps < 1/2" true (r.Analysis.eps > 0.0 && r.Analysis.eps < 0.5);
        Alcotest.(check bool) "t < c(1/2 - eps) + 1" true
          (float_of_int r.Analysis.t <= (float_of_int r.Analysis.c *. (0.5 -. r.Analysis.eps)) +. 1.0);
        Alcotest.(check bool) "delta > 1" true (r.Analysis.delta > 1.0);
        Alcotest.(check bool) "k <= c * eps" true
          (float_of_int r.Analysis.k <= float_of_int r.Analysis.c *. r.Analysis.eps +. 1e-9))
    (Analysis.table1 ())

(* ------------------------------------------------------------------ *)
(* Binomial sampling                                                   *)
(* ------------------------------------------------------------------ *)

let test_binomial_bounds () =
  let rng = Splitmix.of_int 5 in
  for _ = 1 to 200 do
    let v = Binomial.sample rng ~n:100 ~p:0.3 in
    Alcotest.(check bool) "in [0, n]" true (v >= 0 && v <= 100)
  done;
  Alcotest.(check int) "p=0" 0 (Binomial.sample rng ~n:100 ~p:0.0);
  Alcotest.(check int) "p=1" 100 (Binomial.sample rng ~n:100 ~p:1.0);
  Alcotest.(check int) "n=0" 0 (Binomial.sample rng ~n:0 ~p:0.5)

let test_binomial_mean () =
  let rng = Splitmix.of_int 6 in
  let trials = 5000 and n = 1000 and p = 0.2 in
  let sum = ref 0 in
  for _ = 1 to trials do
    sum := !sum + Binomial.sample rng ~n ~p
  done;
  let mean = float_of_int !sum /. float_of_int trials in
  (* mu = 200, sigma ~ 12.6; sample mean of 5000 trials within ~1 *)
  Alcotest.(check bool) "mean near np" true (abs_float (mean -. 200.0) < 2.0)

let test_binomial_complement_branch () =
  let rng = Splitmix.of_int 7 in
  let trials = 5000 and n = 1000 and p = 0.8 in
  let sum = ref 0 in
  for _ = 1 to trials do
    sum := !sum + Binomial.sample rng ~n ~p
  done;
  let mean = float_of_int !sum /. float_of_int trials in
  Alcotest.(check bool) "mean near np (p > 1/2)" true (abs_float (mean -. 800.0) < 2.0)

let test_chernoff_sane () =
  Alcotest.(check bool) "upper decreasing in slack" true
    (Binomial.chernoff_upper ~n:1000 ~p:0.1 ~slack:0.5
     > Binomial.chernoff_upper ~n:1000 ~p:0.1 ~slack:1.0);
  Alcotest.(check bool) "bounds in (0,1]" true
    (Binomial.chernoff_lower ~n:100 ~p:0.5 ~slack:0.2 <= 1.0)

(* ------------------------------------------------------------------ *)
(* Monte-Carlo sortition                                               *)
(* ------------------------------------------------------------------ *)

let test_sampler_no_violations () =
  (* with the k2 = k3 = 128 analysis, violations are ~2^-128: zero in
     any feasible number of trials *)
  match Analysis.solve ~f:0.05 1000 with
  | None -> Alcotest.fail "feasible"
  | Some row ->
    let stats = Sampler.run ~pool:100_000 ~f:0.05 ~row ~trials:2000 (Splitmix.of_int 9) in
    Alcotest.(check int) "no corruption violations" 0 stats.Sampler.corruption_bound_violations;
    Alcotest.(check int) "no gap violations" 0 stats.Sampler.gap_violations;
    Alcotest.(check bool) "mean size near C" true (abs_float (stats.Sampler.mean_size -. 1000.0) < 10.0);
    Alcotest.(check bool) "mean corrupt near fC" true
      (abs_float (stats.Sampler.mean_corrupt -. 50.0) < 3.0)

let test_sampler_detects_undersized_t () =
  (* sanity of the harness itself: an absurdly small t must violate *)
  match Analysis.solve ~f:0.05 1000 with
  | None -> Alcotest.fail "feasible"
  | Some row ->
    let bogus = { row with Analysis.t = 40 } (* below the mean corrupt count 50 *) in
    let stats = Sampler.run ~pool:100_000 ~f:0.05 ~row:bogus ~trials:500 (Splitmix.of_int 10) in
    Alcotest.(check bool) "violations found" true (stats.Sampler.corruption_bound_violations > 0)

let test_sampler_validation () =
  match Analysis.solve ~f:0.05 1000 with
  | None -> Alcotest.fail "feasible"
  | Some row ->
    Alcotest.check_raises "bad pool" (Invalid_argument "Sampler.run: bad parameters")
      (fun () -> ignore (Sampler.run ~pool:0 ~f:0.05 ~row ~trials:1 (Splitmix.of_int 1)));
    Alcotest.check_raises "pool < C" (Invalid_argument "Sampler.run: pool smaller than C")
      (fun () -> ignore (Sampler.run ~pool:500 ~f:0.05 ~row ~trials:1 (Splitmix.of_int 1)))

let () =
  Alcotest.run "sortition"
    [
      ( "analysis",
        [
          Alcotest.test_case "table 1" `Quick test_table1_matches_paper;
          Alcotest.test_case "feasibility monotone" `Quick test_feasibility_monotone_in_c;
          Alcotest.test_case "gap shrinks with f" `Quick test_gap_shrinks_with_f;
          Alcotest.test_case "marginal overhead" `Quick test_committee_overhead_is_marginal;
          Alcotest.test_case "improvement claims" `Quick test_improvement_claims;
          Alcotest.test_case "validation" `Quick test_solve_validation;
          Alcotest.test_case "invariants" `Quick test_invariants;
        ] );
      ( "binomial",
        [
          Alcotest.test_case "bounds" `Quick test_binomial_bounds;
          Alcotest.test_case "mean" `Quick test_binomial_mean;
          Alcotest.test_case "complement branch" `Quick test_binomial_complement_branch;
          Alcotest.test_case "chernoff" `Quick test_chernoff_sane;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "no violations" `Quick test_sampler_no_violations;
          Alcotest.test_case "detects bogus t" `Quick test_sampler_detects_undersized_t;
          Alcotest.test_case "validation" `Quick test_sampler_validation;
        ] );
    ]
