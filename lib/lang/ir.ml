module F = Yoso_field.Field.Fp

type def =
  | Inp of { client : int; slot : int }
  | Cst of int (* canonical field value, 0 <= v < p *)
  | Add2 of int * int
  | Mul2 of int * int

type t = { defs : def array; outs : (int * int) list }

(* ------------------------------------------------------------------ *)
(* builder                                                             *)
(* ------------------------------------------------------------------ *)

module B = struct
  type b = { mutable defs : def list; mutable n : int }

  let create () = { defs = []; n = 0 }

  let emit b d =
    let id = b.n in
    b.defs <- d :: b.defs;
    b.n <- id + 1;
    id

  let inp b ~client ~slot = emit b (Inp { client; slot })
  let cst b v = emit b (Cst (F.to_int (F.of_int v)))
  let add b x y = emit b (Add2 (x, y))
  let mul b x y = emit b (Mul2 (x, y))
  let def_of b id = List.nth b.defs (b.n - 1 - id)
  let size b = b.n
  let finish b ~outs = { defs = Array.of_list (List.rev b.defs); outs }
end

(* ------------------------------------------------------------------ *)
(* statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  nodes : int;
  inputs : int;
  consts : int;
  adds : int;
  muls : int;
  depth : int; (* multiplicative depth; additions are free *)
}

let depths ir =
  let d = Array.make (Array.length ir.defs) 0 in
  Array.iteri
    (fun i def ->
      match def with
      | Inp _ | Cst _ -> ()
      | Add2 (a, b) -> d.(i) <- max d.(a) d.(b)
      | Mul2 (a, b) -> d.(i) <- 1 + max d.(a) d.(b))
    ir.defs;
  d

let stats ir =
  let inputs = ref 0 and consts = ref 0 and adds = ref 0 and muls = ref 0 in
  Array.iter
    (function
      | Inp _ -> incr inputs
      | Cst _ -> incr consts
      | Add2 _ -> incr adds
      | Mul2 _ -> incr muls)
    ir.defs;
  let depth = Array.fold_left max 0 (depths ir) in
  {
    nodes = Array.length ir.defs;
    inputs = !inputs;
    consts = !consts;
    adds = !adds;
    muls = !muls;
    depth;
  }

let stats_json s =
  Printf.sprintf
    "{\"nodes\":%d,\"inputs\":%d,\"consts\":%d,\"adds\":%d,\"muls\":%d,\"depth\":%d}"
    s.nodes s.inputs s.consts s.adds s.muls s.depth

let use_counts ir =
  let uses = Array.make (Array.length ir.defs) 0 in
  Array.iter
    (function
      | Inp _ | Cst _ -> ()
      | Add2 (a, b) | Mul2 (a, b) ->
        uses.(a) <- uses.(a) + 1;
        uses.(b) <- uses.(b) + 1)
    ir.defs;
  List.iter (fun (_, o) -> uses.(o) <- uses.(o) + 1) ir.outs;
  uses

(* ------------------------------------------------------------------ *)
(* pass framework: every pass rebuilds the graph reachable from the
   outputs (so each pass also sweeps dead nodes it exposed)            *)
(* ------------------------------------------------------------------ *)

let rebuild ir ~node =
  let b = B.create () in
  let memo = Array.make (Array.length ir.defs) (-1) in
  let rec go i =
    if memo.(i) >= 0 then memo.(i)
    else begin
      let id = node b go ir.defs.(i) in
      memo.(i) <- id;
      id
    end
  in
  let outs = List.map (fun (c, o) -> (c, go o)) ir.outs in
  B.finish b ~outs

(* constant folding/propagation: operations on two known constants
   collapse to a constant *)
let fold ir =
  rebuild ir ~node:(fun b go def ->
      let value i = match B.def_of b i with Cst v -> Some v | _ -> None in
      match def with
      | Inp _ | Cst _ as d -> B.emit b d
      | Add2 (a, b') -> (
        let x = go a and y = go b' in
        match (value x, value y) with
        | Some u, Some v -> B.cst b (F.to_int (F.add (F.of_int u) (F.of_int v)))
        | _ -> B.add b x y)
      | Mul2 (a, b') -> (
        let x = go a and y = go b' in
        match (value x, value y) with
        | Some u, Some v -> B.cst b (F.to_int (F.mul (F.of_int u) (F.of_int v)))
        | _ -> B.mul b x y))

(* algebraic rewrites: x*1 -> x, 1*x -> x, x*0 -> 0, 0*x -> 0,
   x+0 -> x, 0+x -> x *)
let rewrite ir =
  rebuild ir ~node:(fun b go def ->
      let value i = match B.def_of b i with Cst v -> Some v | _ -> None in
      match def with
      | Inp _ | Cst _ as d -> B.emit b d
      | Add2 (a, b') -> (
        let x = go a and y = go b' in
        match (value x, value y) with
        | Some 0, _ -> y
        | _, Some 0 -> x
        | _ -> B.add b x y)
      | Mul2 (a, b') -> (
        let x = go a and y = go b' in
        match (value x, value y) with
        | Some 1, _ -> y
        | _, Some 1 -> x
        | Some 0, _ | _, Some 0 -> B.cst b 0
        | _ -> B.mul b x y))

(* common-subexpression elimination by hash-consing (value numbering);
   addition and multiplication are commutative, so operand ids are
   sorted before lookup *)
let cse ir =
  let table = Hashtbl.create 256 in
  rebuild ir ~node:(fun b go def ->
      let key =
        match def with
        | Inp { client; slot } -> `I (client, slot)
        | Cst v -> `C v
        | Add2 (a, b') ->
          let x = go a and y = go b' in
          `A (min x y, max x y)
        | Mul2 (a, b') ->
          let x = go a and y = go b' in
          `M (min x y, max x y)
      in
      match Hashtbl.find_opt table key with
      | Some id -> id
      | None ->
        let id =
          match (def, key) with
          | (Inp _ | Cst _), _ -> B.emit b def
          | Add2 _, `A (x, y) -> B.add b x y
          | Mul2 _, `M (x, y) -> B.mul b x y
          | _ -> assert false
        in
        Hashtbl.add table key id;
        id)

(* multiplication-depth minimization: flatten maximal single-use
   chains of one operator into leaf lists and recombine greedily,
   always pairing the two shallowest subtrees (Huffman-style, optimal
   for this cost model and never deeper than the original chain) *)
let reassoc ir =
  let uses = use_counts ir in
  let b = B.create () in
  let memo = Array.make (Array.length ir.defs) (-1) in
  let depth = ref [||] in
  let depth_of id =
    if id < Array.length !depth then !depth.(id) else 0
  in
  let record_depth id d =
    if id >= Array.length !depth then begin
      let grown = Array.make (max 64 (2 * (id + 1))) 0 in
      Array.blit !depth 0 grown 0 (Array.length !depth);
      depth := grown
    end;
    !depth.(id) <- d
  in
  let same_op op i =
    match (op, ir.defs.(i)) with
    | `Add, Add2 (a, b') | `Mul, Mul2 (a, b') -> Some (a, b')
    | _ -> None
  in
  (* leaves of the maximal chain rooted at (a, b): an operand is
     expanded when it is the same operator and used nowhere else *)
  let rec leaves op acc i =
    match same_op op i with
    | Some (a, b') when uses.(i) = 1 -> leaves op (leaves op acc a) b'
    | _ -> i :: acc
  in
  let combine op x y =
    let id = match op with `Add -> B.add b x y | `Mul -> B.mul b x y in
    let d =
      match op with
      | `Add -> max (depth_of x) (depth_of y)
      | `Mul -> 1 + max (depth_of x) (depth_of y)
    in
    record_depth id d;
    id
  in
  let rec go i =
    if memo.(i) >= 0 then memo.(i)
    else begin
      let id =
        match ir.defs.(i) with
        | Inp _ | Cst _ as d ->
          let id = B.emit b d in
          record_depth id 0;
          id
        | Add2 (a, b') | Mul2 (a, b') ->
          let op = match ir.defs.(i) with Add2 _ -> `Add | _ -> `Mul in
          let ls = List.rev (leaves op (leaves op [] a) b') in
          let ls = List.map go ls in
          (* repeatedly merge the two shallowest subtrees; stable under
             equal depths (first-come order), hence deterministic *)
          let rec merge = function
            | [] -> assert false
            | [ x ] -> x
            | ls ->
              let sorted =
                List.stable_sort (fun x y -> compare (depth_of x) (depth_of y)) ls
              in
              (match sorted with
              | x :: y :: rest -> merge (combine op x y :: rest)
              | _ -> assert false)
          in
          merge ls
      in
      memo.(i) <- id;
      id
    end
  in
  let outs = List.map (fun (c, o) -> (c, go o)) ir.outs in
  B.finish b ~outs

(* ------------------------------------------------------------------ *)
(* evaluation (for pass debugging and the test suite)                  *)
(* ------------------------------------------------------------------ *)

let eval ir ~input =
  let v = Array.make (Array.length ir.defs) F.zero in
  Array.iteri
    (fun i def ->
      v.(i) <-
        (match def with
        | Inp { client; slot } -> input ~client ~slot
        | Cst c -> F.of_int c
        | Add2 (a, b) -> F.add v.(a) v.(b)
        | Mul2 (a, b) -> F.mul v.(a) v.(b)))
    ir.defs;
  List.map (fun (c, o) -> (c, v.(o))) ir.outs
