(** Workload programs written in the DSL, plus the seeded random
    program family used by the property tests and the compile bench. *)

val auction : ?bidders:int -> ?width:int -> unit -> Ast.program
(** Sealed-bid first-price auction: every bidder learns the winning
    bid and the winner's index (lowest index wins ties).  Bids are
    [width]-bit inputs (default 8), one bidder per client. *)

val variance : ?parties:int -> unit -> Ast.program
(** Federated variance numerator [n * sum x_i^2 - (sum x_i)^2],
    revealed to every party. *)

val tally : ?voters:int -> ?threshold:int -> unit -> Ast.program
(** Threshold tally over 1-bit votes: reveals only whether the
    yes-count reached [threshold] (default strict majority), not the
    count. *)

val linear_model : ?features:int -> unit -> Ast.program
(** Client 0's private linear model applied to client 1's private
    feature vector; only client 1 learns the score. *)

val names : string list
(** The four program names accepted by {!by_name}. *)

val by_name : string -> size:int -> Ast.program
(** Instantiate a program by name at the given size (bidders /
    parties / voters / features).  @raise Invalid_argument on unknown
    names. *)

val demo_inputs : Ast.program -> seed:int -> int -> int array
(** Deterministic per-client input vectors (one integer per
    declaration, widths respected) for demos and smoke tests. *)

val random_program : seed:int -> size:int -> clients:int -> Ast.program
(** Seeded random program engineered so every optimization pass has
    genuine work (const-const subtrees, structural duplicates, nested
    product chains) and every node is live via an accumulator
    output. *)
