module F = Yoso_field.Field.Fp

let validate d v =
  match d.Ast.d_width with
  | None -> ()
  | Some w ->
    if v < 0 || v >= 1 lsl w then
      invalid_arg
        (Printf.sprintf
           "Yoso_lang.Interp: input %S of client %d = %d does not fit its \
            declared width %d"
           d.Ast.d_label d.Ast.d_client v w)

let lookup inputs d =
  let v = inputs d.Ast.d_client in
  if d.Ast.d_index >= Array.length v then
    invalid_arg
      (Printf.sprintf "Yoso_lang.Interp: client %d supplied %d inputs, need more"
         d.Ast.d_client (Array.length v));
  let x = v.(d.Ast.d_index) in
  validate d x;
  x

let eval_expr ~inputs root =
  let memo = Hashtbl.create 64 in
  let rec go (e : Ast.expr) =
    match Hashtbl.find_opt memo e.Ast.id with
    | Some v -> v
    | None ->
      let v =
        match e.Ast.node with
        | Ast.Input d -> F.of_int (lookup inputs d)
        | Ast.Const c -> F.of_int c
        | Ast.Add (a, b) -> F.add (go a) (go b)
        | Ast.Sub (a, b) -> F.sub (go a) (go b)
        | Ast.Mul (a, b) -> F.mul (go a) (go b)
        | Ast.Neg a -> F.neg (go a)
        | Ast.Sum es -> F.sum (List.map go es)
        | Ast.Prod es -> F.product (List.map go es)
        | Ast.Cmp (op, a, b) ->
          (* operands are width-annotated inputs or nonnegative
             constants, so canonical representatives are the integer
             values being compared *)
          let x = F.to_int (go a) and y = F.to_int (go b) in
          let r =
            match op with
            | Ast.Lt -> x < y
            | Ast.Le -> x <= y
            | Ast.Gt -> x > y
            | Ast.Ge -> x >= y
            | Ast.Eq -> x = y
            | Ast.Ne -> x <> y
          in
          if r then F.one else F.zero
        | Ast.Is_zero a -> if F.equal (go a) F.zero then F.one else F.zero
        | Ast.Mux (c, a, b) -> if F.equal (go c) F.zero then go a else go b
      in
      Hashtbl.add memo e.Ast.id v;
      v
  in
  go root

let run (p : Ast.program) ~inputs =
  List.map (fun (client, e) -> (client, eval_expr ~inputs e)) p.Ast.p_outputs
