module A = Ast

(* ------------------------------------------------------------------ *)
(* the four workload programs                                          *)
(* ------------------------------------------------------------------ *)

(* Sealed-bid first-price auction: bidder [i] submits a [width]-bit
   bid; everyone learns the winning bid and the winner's index (lowest
   index wins ties).  The winner indicator
     win_i = prod_{j<i} (b_i > b_j) * prod_{j>i} (b_i >= b_j)
   is 1 for exactly one bidder.  The naive lowering duplicates the
   bit-comparison circuit of every pair (once as [>], once as [>=]);
   CSE merges them, which is the headline win of E12. *)
let auction ?(bidders = 4) ?(width = 8) () =
  if bidders < 2 then invalid_arg "Programs.auction: need at least 2 bidders";
  let b = A.B.create ~name:"auction" () in
  let bids =
    Array.init bidders (fun i ->
        A.B.input b ~client:i ~width (Printf.sprintf "bid%d" i))
  in
  let win i =
    let factors =
      List.concat
        (List.init bidders (fun j ->
             if j < i then [ A.gt bids.(i) bids.(j) ]
             else if j > i then [ A.ge bids.(i) bids.(j) ]
             else []))
    in
    A.prod factors
  in
  let wins = Array.init bidders win in
  let max_bid =
    A.sum (List.init bidders (fun i -> A.mul bids.(i) wins.(i)))
  in
  let winner =
    A.sum (List.init bidders (fun i -> A.mul (A.const i) wins.(i)))
  in
  for i = 0 to bidders - 1 do
    A.B.output b ~client:i max_bid;
    A.B.output b ~client:i winner
  done;
  A.B.build b

(* Federated variance numerator: party [i] holds x_i; everyone learns
   n * sum x_i^2 - (sum x_i)^2  =  n^2 * Var(x).  Mirrors
   [Yoso_circuit.Generators.variance_numerator] but written in the
   DSL. *)
let variance ?(parties = 4) () =
  if parties < 1 then invalid_arg "Programs.variance: need at least 1 party";
  let b = A.B.create ~name:"variance" () in
  let xs =
    List.init parties (fun i ->
        A.B.input b ~client:i (Printf.sprintf "x%d" i))
  in
  let s = A.sum xs in
  let sq = A.sum (List.map (fun x -> A.mul x x) xs) in
  let out = A.sub (A.mul (A.const parties) sq) (A.mul s s) in
  for i = 0 to parties - 1 do
    A.B.output b ~client:i out
  done;
  A.B.build b

(* Threshold tally: each voter casts a 1-bit vote; everyone learns
   only whether the yes-count reached [threshold] — not the count
   itself.  tally - j is zero for some j < T exactly when tally < T,
   so  passed = 1 - is_zero(prod_{j<T} (tally - j)). *)
let tally ?(voters = 5) ?threshold () =
  if voters < 1 then invalid_arg "Programs.tally: need at least 1 voter";
  let threshold = Option.value threshold ~default:((voters / 2) + 1) in
  if threshold < 1 || threshold > voters then
    invalid_arg "Programs.tally: threshold out of range";
  let b = A.B.create ~name:"tally" () in
  let votes =
    List.init voters (fun i ->
        A.B.input b ~client:i ~width:1 (Printf.sprintf "vote%d" i))
  in
  let t = A.sum votes in
  let gaps = List.init threshold (fun j -> A.sub t (A.const j)) in
  let passed = A.sub (A.const 1) (A.is_zero (A.prod gaps)) in
  for i = 0 to voters - 1 do
    A.B.output b ~client:i passed
  done;
  A.B.build b

(* Linear-model inference: client 0 holds the model (weights + bias),
   client 1 holds a feature vector; only client 1 learns the score
   <w, x> + bias.  Neither the model nor the features are revealed. *)
let linear_model ?(features = 8) () =
  if features < 1 then invalid_arg "Programs.linear_model: need at least 1 feature";
  let b = A.B.create ~name:"linear_model" () in
  let ws =
    List.init features (fun i ->
        A.B.input b ~client:0 (Printf.sprintf "w%d" i))
  in
  let bias = A.B.input b ~client:0 "bias" in
  let xs =
    List.init features (fun i ->
        A.B.input b ~client:1 (Printf.sprintf "x%d" i))
  in
  A.B.output b ~client:1 (A.add (A.dot ws xs) bias);
  A.B.build b

let names = [ "auction"; "variance"; "tally"; "linear_model" ]

let by_name name ~size =
  match name with
  | "auction" -> auction ~bidders:(max 2 size) ()
  | "variance" -> variance ~parties:(max 1 size) ()
  | "tally" -> tally ~voters:(max 1 size) ()
  | "linear_model" -> linear_model ~features:(max 1 size) ()
  | _ ->
    invalid_arg
      (Printf.sprintf "unknown program %S (available: %s)" name
         (String.concat ", " names))

(* ------------------------------------------------------------------ *)
(* deterministic demo inputs                                           *)
(* ------------------------------------------------------------------ *)

(* splitmix-style hash (63-bit) so each (seed, client, index) is
   independent *)
let hash64 x =
  let x = x * 0x3f58476d1ce4e5b9 in
  let x = x lxor (x lsr 27) in
  let x = x * 0x14d049bb133111eb in
  x lxor (x lsr 31)

let demo_inputs (p : A.program) ~seed =
  let per_client = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt per_client d.A.d_client)
      in
      Hashtbl.replace per_client d.A.d_client (d :: prev))
    p.A.p_decls;
  fun client ->
    match Hashtbl.find_opt per_client client with
    | None -> [||]
    | Some rev_decls ->
      let decls = Array.of_list (List.rev rev_decls) in
      Array.map
        (fun d ->
          let h =
            abs (hash64 ((seed * 1_000_003) + (d.A.d_client * 1009) + d.A.d_index))
          in
          match d.A.d_width with
          | Some w -> h land ((1 lsl w) - 1)
          | None -> h mod 1000)
        decls

(* ------------------------------------------------------------------ *)
(* random program family for the property tests and the bench          *)
(* ------------------------------------------------------------------ *)

(* Engineered so every seed offers genuine work to each pass:
   const-const subtrees (fold), structurally duplicated nodes (CSE),
   left-nested product chains (reassoc).  Every generated node stays
   live through the accumulator output, so pass savings can never be
   dead-code artifacts. *)
let random_program ~seed ~size ~clients =
  if clients < 1 then invalid_arg "Programs.random_program: need >= 1 client";
  let st = Random.State.make [| seed; size; clients |] in
  let b = A.B.create ~name:(Printf.sprintf "random-%d" seed) () in
  let pool = ref [] in
  let pool_size = ref 0 in
  let push e =
    pool := e :: !pool;
    incr pool_size
  in
  let pick () = List.nth !pool (Random.State.int st !pool_size) in
  let annotated = ref [] in
  for c = 0 to clients - 1 do
    for k = 0 to 1 do
      let e = A.B.input b ~client:c ~width:8 (Printf.sprintf "a%d_%d" c k) in
      annotated := e :: !annotated;
      push e
    done;
    push (A.B.input b ~client:c (Printf.sprintf "u%d" c))
  done;
  let annotated = Array.of_list !annotated in
  let pick_annot () = annotated.(Random.State.int st (Array.length annotated)) in
  (* guaranteed targets, independent of the size budget *)
  push (A.add (A.const 17) (A.const 25)); (* fold *)
  let d1 = A.mul (pick ()) (pick_annot ()) in
  let d2 = A.mul (pick ()) (pick_annot ()) in
  push d1;
  push d2;
  push (A.add d1 d2);
  (let x = pick () and y = pick () in
   push (A.mul x y);
   push (A.mul x y) (* structural duplicate: CSE *));
  push (A.prod [ pick (); pick (); pick (); pick (); pick () ]) (* reassoc *);
  for _ = 1 to size do
    let r = Random.State.int st 100 in
    if r < 12 then
      (* const-const subtree feeding live work: fold target *)
      let c1 = A.const (Random.State.int st 1000) in
      let c2 = A.const (Random.State.int st 1000) in
      let op = if Random.State.bool st then A.add else A.mul in
      push (A.mul (op c1 c2) (pick ()))
    else if r < 24 then (
      (* structural duplicate: CSE target *)
      let x = pick () and y = pick () in
      let op = if Random.State.bool st then A.add else A.mul in
      push (op x y);
      push (op x y))
    else if r < 38 then
      (* nested product chain: reassoc target *)
      let n = 3 + Random.State.int st 4 in
      push (A.prod (List.init n (fun _ -> pick ())))
    else if r < 50 then
      push (A.sum (List.init (2 + Random.State.int st 4) (fun _ -> pick ())))
    else if r < 58 then (
      let ops = [| A.lt; A.le; A.gt; A.ge; A.eq; A.ne |] in
      let op = ops.(Random.State.int st 6) in
      push (op (pick_annot ()) (pick_annot ())))
    else if r < 62 then push (A.is_zero (A.sub (pick_annot ()) (pick_annot ())))
    else if r < 66 then
      push (A.if_zero (A.sub (pick_annot ()) (pick_annot ())) ~then_:(pick ()) ~else_:(pick ()))
    else if r < 74 then push (A.sub (pick ()) (pick ()))
    else if r < 80 then push (A.neg (pick ()))
    else if r < 90 then push (A.add (pick ()) (pick ()))
    else push (A.mul (pick ()) (pick ()))
  done;
  (* keep everything live: one accumulator over the whole pool, plus a
     few direct outputs *)
  A.B.output b ~client:0 (A.sum !pool);
  List.iteri
    (fun i e -> if i < 3 then A.B.output b ~client:(i mod clients) e)
    !pool;
  A.B.build b
