(** Flat value-numbered intermediate representation and the
    optimization passes that run on it.

    Every def is addressed by its index in {!field:t.defs}; operands
    always point backwards, so the array order is a topological order.
    Passes rebuild the graph reachable from the outputs, which makes
    dead-node elimination implicit: even the "naive" un-optimized IR
    contains no unreachable defs, so pass-reported savings are genuine
    fold/CSE/rewrite wins, not DCE artifacts. *)

module F = Yoso_field.Field.Fp

type def =
  | Inp of { client : int; slot : int }
  | Cst of int  (** canonical field value, [0 <= v < p] *)
  | Add2 of int * int
  | Mul2 of int * int

type t = { defs : def array; outs : (int * int) list }

(** Append-only IR builder used by elaboration and the passes. *)
module B : sig
  type b

  val create : unit -> b
  val inp : b -> client:int -> slot:int -> int
  val cst : b -> int -> int
  val add : b -> int -> int -> int
  val mul : b -> int -> int -> int
  val def_of : b -> int -> def
  val size : b -> int
  val finish : b -> outs:(int * int) list -> t
end

type stats = {
  nodes : int;
  inputs : int;
  consts : int;
  adds : int;
  muls : int;
  depth : int;  (** multiplicative depth; additions are free *)
}

val stats : t -> stats
val stats_json : stats -> string

val depths : t -> int array
(** Per-def multiplicative depth. *)

val use_counts : t -> int array
(** Number of operand references per def; outputs count as one use. *)

(** {1 Passes}

    Each pass is semantics-preserving: [eval (pass ir)] equals
    [eval ir] for every input assignment (verified by the property
    tests). *)

val fold : t -> t
(** Constant folding/propagation: [Add2]/[Mul2] of two [Cst] defs
    collapse to a [Cst]. *)

val rewrite : t -> t
(** Algebraic identities: [x*1 -> x], [x*0 -> 0], [x+0 -> x] (and
    their mirror images). *)

val cse : t -> t
(** Common-subexpression elimination by hash-consing; add/mul operand
    pairs are canonicalized by sorting (commutativity). *)

val reassoc : t -> t
(** Multiplication-depth minimization: maximal single-use chains of
    one operator are flattened to leaf lists and recombined greedily,
    always pairing the two shallowest subtrees.  Never increases the
    depth of any rebuilt chain. *)

val eval : t -> input:(client:int -> slot:int -> F.t) -> (int * F.t) list
(** Reference evaluation of the IR, for pass-preservation tests. *)
