module F = Yoso_field.Field.Fp

let max_width = 30
(* widths are capped so every annotated value sits strictly below the
   field modulus p = 2^31 - 1: 2^30 - 1 < p, hence the canonical field
   representative of an annotated input IS its integer value *)

type decl = {
  d_client : int;
  d_index : int; (* position in the client's declaration order *)
  d_width : int option;
  d_label : string;
}

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type expr = { id : int; node : node }

and node =
  | Input of decl
  | Const of int
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr
  | Sum of expr list
  | Prod of expr list
  | Cmp of cmp * expr * expr
  | Is_zero of expr
  | Mux of expr * expr * expr (* Mux (c, a, b) = if c = 0 then a else b *)

let next_id = ref 0

let mk node =
  let id = !next_id in
  incr next_id;
  { id; node }

(* ------------------------------------------------------------------ *)
(* smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let const v = mk (Const v)
let add a b = mk (Add (a, b))
let sub a b = mk (Sub (a, b))
let mul a b = mk (Mul (a, b))
let neg a = mk (Neg a)

let sum = function
  | [] -> invalid_arg "Yoso_lang.Ast.sum: empty list"
  | [ e ] -> e
  | es -> mk (Sum es)

let prod = function
  | [] -> invalid_arg "Yoso_lang.Ast.prod: empty list"
  | [ e ] -> e
  | es -> mk (Prod es)

let dot xs ys =
  if List.length xs <> List.length ys then
    invalid_arg "Yoso_lang.Ast.dot: length mismatch";
  sum (List.map2 mul xs ys)

(* comparisons are lowered through bit decomposition, so their operands
   must have compile-time-available bits: width-annotated inputs or
   nonnegative constants small enough to decompose *)
let bit_source_width e =
  match e.node with
  | Input { d_width = Some w; _ } -> Some w
  | Input { d_width = None; _ } -> None
  | Const v ->
    if v < 0 || v >= 1 lsl max_width then None
    else begin
      let rec bits n = if n <= 1 then 1 else 1 + bits (n lsr 1) in
      Some (bits v)
    end
  | _ -> None

let check_cmp_operand side e =
  match bit_source_width e with
  | Some _ -> ()
  | None ->
    invalid_arg
      (Printf.sprintf
         "Yoso_lang.Ast: %s comparison operand must be a width-annotated input \
          or a nonnegative constant below 2^%d (comparisons decompose their \
          operands into bits)"
         side max_width)

let cmp op a b =
  check_cmp_operand "left" a;
  check_cmp_operand "right" b;
  mk (Cmp (op, a, b))

let lt a b = cmp Lt a b
let le a b = cmp Le a b
let gt a b = cmp Gt a b
let ge a b = cmp Ge a b
let eq a b = cmp Eq a b
let ne a b = cmp Ne a b
let is_zero a = mk (Is_zero a)
let if_zero c ~then_ ~else_ = mk (Mux (c, then_, else_))

let let_ e f = f e
(* explicit sharing: [let_ e f] binds [e] once; elaboration and the
   interpreter memoize on node identity, so the bound expression is
   evaluated/compiled exactly once no matter how often [f] uses it *)

(* ------------------------------------------------------------------ *)
(* programs                                                            *)
(* ------------------------------------------------------------------ *)

type program = {
  p_name : string;
  p_decls : decl list; (* declaration order *)
  p_outputs : (int * expr) list; (* (client, expr), declaration order *)
}

module B = struct
  type t = {
    name : string;
    mutable decls : decl list; (* reversed *)
    mutable outs : (int * expr) list; (* reversed *)
    counts : (int, int) Hashtbl.t;
    mutable built : bool;
  }

  let create ?(name = "program") () =
    { name; decls = []; outs = []; counts = Hashtbl.create 8; built = false }

  let check_usable b = if b.built then invalid_arg "Yoso_lang.Ast.B: already built"

  let input b ~client ?width label =
    check_usable b;
    if client < 0 then invalid_arg "Yoso_lang.Ast.B.input: negative client id";
    (match width with
    | Some w when w < 1 || w > max_width ->
      invalid_arg
        (Printf.sprintf "Yoso_lang.Ast.B.input: width must be in [1, %d]" max_width)
    | _ -> ());
    let index = Option.value ~default:0 (Hashtbl.find_opt b.counts client) in
    Hashtbl.replace b.counts client (index + 1);
    let d = { d_client = client; d_index = index; d_width = width; d_label = label } in
    b.decls <- d :: b.decls;
    mk (Input d)

  let output b ~client e =
    check_usable b;
    if client < 0 then invalid_arg "Yoso_lang.Ast.B.output: negative client id";
    b.outs <- (client, e) :: b.outs

  let build b =
    check_usable b;
    if b.outs = [] then invalid_arg "Yoso_lang.Ast.B.build: program has no outputs";
    b.built <- true;
    { p_name = b.name; p_decls = List.rev b.decls; p_outputs = List.rev b.outs }
end

let clients p =
  List.sort_uniq compare
    (List.map (fun d -> d.d_client) p.p_decls @ List.map fst p.p_outputs)

(* ------------------------------------------------------------------ *)
(* range analysis                                                      *)
(* ------------------------------------------------------------------ *)

(* integer bounds of an expression before any mod-p reduction, with
   saturation: once a bound leaves [-2^30, 2^30] the value may wrap in
   the field and the range degenerates to Full (any field element).
   This is the keelung-style bounds calculation that justifies the
   bit-decomposition width of comparisons and the stats report. *)

type range = Range of int * int | Full

let sat_bound = 1 lsl max_width

let norm lo hi = if lo < -sat_bound || hi > sat_bound then Full else Range (lo, hi)

let range_add r1 r2 =
  match (r1, r2) with
  | Range (a, b), Range (c, d) -> norm (a + c) (b + d)
  | _ -> Full

let range_sub r1 r2 =
  match (r1, r2) with
  | Range (a, b), Range (c, d) -> norm (a - d) (b - c)
  | _ -> Full

let range_mul r1 r2 =
  match (r1, r2) with
  | Range (a, b), Range (c, d) ->
    (* |bounds| <= 2^30 so every product fits in a native int *)
    let p1 = a * c and p2 = a * d and p3 = b * c and p4 = b * d in
    norm (min (min p1 p2) (min p3 p4)) (max (max p1 p2) (max p3 p4))
  | _ -> Full

let range_union r1 r2 =
  match (r1, r2) with
  | Range (a, b), Range (c, d) -> Range (min a c, max b d)
  | _ -> Full

let range e =
  let memo = Hashtbl.create 64 in
  let rec go e =
    match Hashtbl.find_opt memo e.id with
    | Some r -> r
    | None ->
      let r =
        match e.node with
        | Input { d_width = Some w; _ } -> Range (0, (1 lsl w) - 1)
        | Input { d_width = None; _ } -> Full
        | Const v -> norm v v
        | Add (a, b) -> range_add (go a) (go b)
        | Sub (a, b) -> range_sub (go a) (go b)
        | Mul (a, b) -> range_mul (go a) (go b)
        | Neg a -> range_sub (Range (0, 0)) (go a)
        | Sum es -> List.fold_left (fun acc e -> range_add acc (go e)) (Range (0, 0)) es
        | Prod es -> List.fold_left (fun acc e -> range_mul acc (go e)) (Range (1, 1)) es
        | Cmp _ | Is_zero _ -> Range (0, 1)
        | Mux (_, a, b) -> range_union (go a) (go b)
      in
      Hashtbl.add memo e.id r;
      r
  in
  go e

let pp_range ppf = function
  | Full -> Format.fprintf ppf "full"
  | Range (lo, hi) -> Format.fprintf ppf "[%d, %d]" lo hi

(* ------------------------------------------------------------------ *)
(* traversal helpers                                                   *)
(* ------------------------------------------------------------------ *)

let iter_subexprs p f =
  let seen = Hashtbl.create 64 in
  let rec go e =
    if not (Hashtbl.mem seen e.id) then begin
      Hashtbl.add seen e.id ();
      f e;
      match e.node with
      | Input _ | Const _ -> ()
      | Add (a, b) | Sub (a, b) | Mul (a, b) -> go a; go b
      | Neg a | Is_zero a -> go a
      | Sum es | Prod es -> List.iter go es
      | Cmp (_, a, b) -> go a; go b
      | Mux (c, a, b) -> go c; go a; go b
    end
  in
  List.iter (fun (_, e) -> go e) p.p_outputs

let size p =
  let n = ref 0 in
  iter_subexprs p (fun _ -> incr n);
  !n

(* declarations whose bits the compiler must materialize: operands of
   at least one comparison *)
let bit_demanded p =
  let demanded = Hashtbl.create 8 in
  iter_subexprs p (fun e ->
      match e.node with
      | Cmp (_, a, b) ->
        List.iter
          (fun o ->
            match o.node with
            | Input d -> Hashtbl.replace demanded (d.d_client, d.d_index) ()
            | _ -> ())
          [ a; b ]
      | _ -> ());
  fun d -> Hashtbl.mem demanded (d.d_client, d.d_index)
