(** Clear-evaluation reference interpreter.

    Defines the semantics every compiled circuit must reproduce:
    {!Compiler.check} and the property tests compare circuit
    evaluation against this interpreter node for node. *)

module F = Yoso_field.Field.Fp

val run : Ast.program -> inputs:(int -> int array) -> (int * F.t) list
(** [run p ~inputs] evaluates the program in the clear.  [inputs
    client] is the client's integer input vector in declaration order
    (one integer per declaration — bit expansion is a compilation
    artifact and does not appear here).  Returns [(client, value)] per
    output, in output order, matching
    {!Yoso_circuit.Circuit.Eval.run} on the compiled circuit.
    @raise Invalid_argument if a width-annotated input is out of
    range or a vector is too short. *)
