(** Typed expression DSL over the protocol's prime field.

    Programs are DAGs of field expressions over per-client input
    vectors.  Inputs may carry a bit-width annotation; comparisons are
    compiled through bit (limb) decomposition and therefore require
    width-annotated-input or constant operands.  [is_zero]/[if_zero]
    work on arbitrary expressions via Fermat exponentiation
    ([x^(p-1)]).  See {!Compiler} for the pass pipeline down to
    {!Yoso_circuit.Circuit.t} and {!Interp} for the clear-evaluation
    reference semantics. *)

module F = Yoso_field.Field.Fp

val max_width : int
(** Largest allowed input bit-width (30): annotated values stay
    strictly below the field modulus, so a canonical field element
    equals its integer value. *)

type decl = private {
  d_client : int;
  d_index : int;  (** position in the client's declaration order *)
  d_width : int option;
  d_label : string;
}

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type expr = private { id : int; node : node }

and node = private
  | Input of decl
  | Const of int
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr
  | Sum of expr list
  | Prod of expr list
  | Cmp of cmp * expr * expr
  | Is_zero of expr
  | Mux of expr * expr * expr

(** {1 Expression constructors} *)

val const : int -> expr
(** Public constant; lowered to a designated constants-client input. *)

val add : expr -> expr -> expr
val sub : expr -> expr -> expr
val mul : expr -> expr -> expr
val neg : expr -> expr

val sum : expr list -> expr
(** @raise Invalid_argument on []. *)

val prod : expr list -> expr
(** @raise Invalid_argument on []. *)

val dot : expr list -> expr list -> expr
(** Inner product. @raise Invalid_argument on length mismatch. *)

val lt : expr -> expr -> expr
val le : expr -> expr -> expr
val gt : expr -> expr -> expr
val ge : expr -> expr -> expr
val eq : expr -> expr -> expr
val ne : expr -> expr -> expr
(** Integer comparisons, result 0/1.  Operands must be width-annotated
    inputs or nonnegative constants (their bits must be materializable
    at compile time); the values compared are the operands' integer
    values.  @raise Invalid_argument otherwise. *)

val is_zero : expr -> expr
(** [is_zero x] is 1 if [x = 0] in the field, else 0 (computed as
    [1 - x^(p-1)]; ~59 multiplications, works on any expression). *)

val if_zero : expr -> then_:expr -> else_:expr -> expr
(** [if_zero c ~then_ ~else_] is [then_] when [c = 0], [else_]
    otherwise. *)

val let_ : expr -> (expr -> expr) -> expr
(** [let_ e f] binds [e] once: elaboration and interpretation memoize
    on node identity, so [e] is compiled/evaluated exactly once no
    matter how often [f] uses it. *)

(** {1 Programs} *)

type program = private {
  p_name : string;
  p_decls : decl list;  (** declaration order *)
  p_outputs : (int * expr) list;  (** (client, expr), declaration order *)
}

module B : sig
  type t

  val create : ?name:string -> unit -> t

  val input : t -> client:int -> ?width:int -> string -> expr
  (** Declare the next input of [client] (consumed in declaration
      order), optionally with a bit-width annotation [1 <= width <=
      max_width] enabling comparisons.  The string is a diagnostic
      label.  @raise Invalid_argument on bad width or client. *)

  val output : t -> client:int -> expr -> unit

  val build : t -> program
  (** @raise Invalid_argument if no output was declared or the builder
      was already built. *)
end

val clients : program -> int list
(** Sorted, deduplicated client ids appearing in inputs or outputs. *)

val size : program -> int
(** Number of distinct expression nodes reachable from the outputs. *)

(** {1 Range analysis} *)

type range = Range of int * int | Full

val range : expr -> range
(** Integer bounds of the expression before any mod-p reduction,
    saturating to [Full] once a bound may wrap the field. *)

val pp_range : Format.formatter -> range -> unit

val bit_source_width : expr -> int option
(** Width of the bit decomposition available for a comparison operand
    ([Some] for width-annotated inputs and small nonnegative
    constants), [None] otherwise. *)

val iter_subexprs : program -> (expr -> unit) -> unit
(** Visit every distinct node reachable from the outputs, once. *)

val bit_demanded : program -> decl -> bool
(** Whether the declaration is an operand of at least one comparison —
    i.e. whether its client must supply it in bits. *)
