module F = Yoso_field.Field.Fp
module Circuit = Yoso_circuit.Circuit
module Builder = Yoso_circuit.Builder

type source = SValue of Ast.decl | SBit of Ast.decl * int

type compiled = {
  program : Ast.program;
  circuit : Circuit.t;
  const_client : int;
  constants : int list;
  sources : (int * source array) list;
  ir : Ir.t;
  naive_stats : Ir.stats;
  pass_stats : (string * Ir.stats) list;
}

let default_passes =
  [
    ("fold", Ir.fold);
    ("rewrite", Ir.rewrite);
    ("cse", Ir.cse);
    ("reassoc", Ir.reassoc);
    ("fold2", Ir.fold);
    ("cse2", Ir.cse);
  ]

(* ------------------------------------------------------------------ *)
(* input manifest: the slot layout each client's protocol input vector
   must follow.  Declarations appear in declaration order; a
   declaration demanded in bits (a comparison operand) expands to its
   width many bit slots, LSB first, and its plain value — if used —
   is recombined inside the circuit.                                   *)
(* ------------------------------------------------------------------ *)

let build_sources (p : Ast.program) =
  let demanded = Ast.bit_demanded p in
  let clients =
    List.sort_uniq compare (List.map (fun d -> d.Ast.d_client) p.Ast.p_decls)
  in
  List.map
    (fun client ->
      let slots = ref [] in
      List.iter
        (fun d ->
          if d.Ast.d_client = client then
            if demanded d then begin
              let w =
                match d.Ast.d_width with
                | Some w -> w
                | None ->
                  (* unreachable: cmp constructors reject unannotated
                     inputs *)
                  invalid_arg
                    (Printf.sprintf
                       "Yoso_lang.Compiler: input %S is compared but has no \
                        width annotation"
                       d.Ast.d_label)
              in
              for i = 0 to w - 1 do
                slots := SBit (d, i) :: !slots
              done
            end
            else slots := SValue d :: !slots)
        p.Ast.p_decls;
      (client, Array.of_list (List.rev !slots)))
    clients

let slot_table sources =
  (* (client, decl index) -> first slot of the declaration *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (client, slots) ->
      Array.iteri
        (fun slot s ->
          match s with
          | SValue d -> Hashtbl.replace tbl (client, d.Ast.d_index) slot
          | SBit (d, 0) -> Hashtbl.replace tbl (client, d.Ast.d_index) slot
          | SBit _ -> ())
        slots)
    sources;
  tbl

(* ------------------------------------------------------------------ *)
(* elaboration: AST -> IR                                              *)
(* ------------------------------------------------------------------ *)

let elaborate (p : Ast.program) ~sources =
  let demanded = Ast.bit_demanded p in
  let slots = slot_table sources in
  let b = Ir.B.create () in
  let memo = Hashtbl.create 64 in
  let cst v = Ir.B.cst b v in
  let add x y = Ir.B.add b x y in
  let mul x y = Ir.B.mul b x y in
  let sub x y = add x (mul (cst (-1)) y) in
  let one_minus x = add (cst 1) (mul (cst (-1)) x) in
  let first_slot d = Hashtbl.find slots (d.Ast.d_client, d.Ast.d_index) in
  (* the i-th bit wire of a comparison operand *)
  let operand_bit e i =
    match e.Ast.node with
    | Ast.Input d ->
      let w = Option.get d.Ast.d_width in
      if i < w then
        Ir.B.inp b ~client:d.Ast.d_client ~slot:(first_slot d + i)
      else cst 0
    | Ast.Const v -> cst ((v lsr i) land 1)
    | _ -> assert false (* enforced by Ast.check_cmp_operand *)
  in
  let operand_width e = Option.get (Ast.bit_source_width e) in
  (* lt over bit lists: scan from the MSB; E_i = "bits above i all
     equal", lt = exists i with equality above and x_i < y_i *)
  let bit_lt x y =
    let w = max (operand_width x) (operand_width y) in
    let xs = Array.init w (operand_bit x) in
    let ys = Array.init w (operand_bit y) in
    let ms = Array.init w (fun i -> mul xs.(i) ys.(i)) in
    (* eq_i = 1 - x_i - y_i + 2 m_i  (1 iff x_i = y_i) *)
    let eqs =
      Array.init w (fun i ->
          add (one_minus (add xs.(i) ys.(i))) (mul (cst 2) ms.(i)))
    in
    let e = Array.make (w + 1) (cst 1) in
    for i = w - 1 downto 0 do
      e.(i) <- mul e.(i + 1) eqs.(i)
    done;
    (* contribution of position i: equality above i and x_i=0, y_i=1;
       y_i (1 - x_i) = y_i - m_i *)
    let terms =
      List.init w (fun i -> mul e.(i + 1) (sub ys.(i) ms.(i)))
    in
    let lt = List.fold_left add (List.hd terms) (List.tl terms) in
    (lt, e.(0))
  in
  (* x^(p-1) by left-to-right square-and-multiply *)
  let fermat x =
    let e = F.p - 1 in
    let nbits =
      let rec go n = if n <= 1 then 1 else 1 + go (n lsr 1) in
      go e
    in
    let acc = ref x in
    for i = nbits - 2 downto 0 do
      acc := mul !acc !acc;
      if (e lsr i) land 1 = 1 then acc := mul !acc x
    done;
    !acc
  in
  let rec go (e : Ast.expr) =
    match Hashtbl.find_opt memo e.Ast.id with
    | Some v -> v
    | None ->
      let v =
        match e.Ast.node with
        | Ast.Input d ->
          if demanded d then begin
            (* plain value of a bit-supplied input: sum_i 2^i b_i *)
            let w = Option.get d.Ast.d_width in
            let s = first_slot d in
            let bit i = Ir.B.inp b ~client:d.Ast.d_client ~slot:(s + i) in
            let acc = ref (bit 0) in
            for i = 1 to w - 1 do
              acc := add !acc (mul (cst (1 lsl i)) (bit i))
            done;
            !acc
          end
          else Ir.B.inp b ~client:d.Ast.d_client ~slot:(first_slot d)
        | Ast.Const v -> cst v
        | Ast.Add (a, b') -> add (go a) (go b')
        | Ast.Sub (a, b') -> sub (go a) (go b')
        | Ast.Mul (a, b') -> mul (go a) (go b')
        | Ast.Neg a -> mul (cst (-1)) (go a)
        | Ast.Sum es ->
          let vs = List.map go es in
          List.fold_left add (List.hd vs) (List.tl vs)
        | Ast.Prod es ->
          let vs = List.map go es in
          List.fold_left mul (List.hd vs) (List.tl vs)
        | Ast.Cmp (op, a, b') -> (
          match op with
          | Ast.Lt -> fst (bit_lt a b')
          | Ast.Gt -> fst (bit_lt b' a)
          | Ast.Le -> one_minus (fst (bit_lt b' a))
          | Ast.Ge -> one_minus (fst (bit_lt a b'))
          | Ast.Eq -> snd (bit_lt a b')
          | Ast.Ne -> one_minus (snd (bit_lt a b')))
        | Ast.Is_zero a -> one_minus (fermat (go a))
        | Ast.Mux (c, a, b') ->
          (* b' + is_zero c * (a - b') *)
          let vb = go b' in
          let va = go a in
          let z = one_minus (fermat (go c)) in
          add vb (mul z (sub va vb))
      in
      Hashtbl.add memo e.Ast.id v;
      v
  in
  let outs = List.map (fun (client, e) -> (client, go e)) p.Ast.p_outputs in
  Ir.B.finish b ~outs

(* ------------------------------------------------------------------ *)
(* lowering: IR -> Circuit                                             *)
(* ------------------------------------------------------------------ *)

let lower (ir : Ir.t) ~sources ~const_client =
  let b = Builder.create () in
  (* every manifest slot becomes an input gate, emitted up front in
     (client, slot) order even when optimization removed all its uses:
     circuit evaluation hands each client's values out in gate order,
     so the wire layout must match the manifest exactly *)
  let wires = Hashtbl.create 64 in
  List.iter
    (fun (client, slots) ->
      Array.iteri
        (fun slot _ -> Hashtbl.replace wires (client, slot) (Builder.input b ~client))
        slots)
    sources;
  let def_wire = Array.make (Array.length ir.Ir.defs) (-1) in
  Array.iteri
    (fun i def ->
      def_wire.(i) <-
        (match def with
        | Ir.Inp { client; slot } -> Hashtbl.find wires (client, slot)
        | Ir.Cst v -> Builder.constant_wire b ~client:const_client v
        | Ir.Add2 (x, y) -> Builder.add b def_wire.(x) def_wire.(y)
        | Ir.Mul2 (x, y) -> Builder.mul b def_wire.(x) def_wire.(y)))
    ir.Ir.defs;
  List.iter
    (fun (client, o) -> Builder.output b ~client def_wire.(o))
    ir.Ir.outs;
  let constants = List.map snd (Builder.constants b) in
  (Builder.build b, constants)

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let compile ?(passes = default_passes) (p : Ast.program) =
  let sources = build_sources p in
  let const_client =
    1 + List.fold_left max (-1) (Ast.clients p)
  in
  let naive = elaborate p ~sources in
  let naive_stats = Ir.stats naive in
  let ir, pass_stats =
    List.fold_left
      (fun (ir, acc) (name, pass) ->
        let ir = pass ir in
        (ir, (name, Ir.stats ir) :: acc))
      (naive, []) passes
  in
  let pass_stats = List.rev pass_stats in
  let circuit, constants = lower ir ~sources ~const_client in
  { program = p; circuit; const_client; constants; sources; ir; naive_stats; pass_stats }

(* ------------------------------------------------------------------ *)
(* protocol input encoding                                             *)
(* ------------------------------------------------------------------ *)

let validate d v =
  match d.Ast.d_width with
  | None -> ()
  | Some w ->
    if v < 0 || v >= 1 lsl w then
      invalid_arg
        (Printf.sprintf
           "Yoso_lang.Compiler: input %S of client %d = %d does not fit its \
            declared width %d"
           d.Ast.d_label d.Ast.d_client v w)

let protocol_inputs c ~inputs =
  let consts = Array.of_list (List.map F.of_int c.constants) in
  fun client ->
    if client = c.const_client then consts
    else
      match List.assoc_opt client c.sources with
      | None -> [||]
      | Some slots ->
        Array.map
          (fun s ->
            match s with
            | SValue d ->
              let v = (inputs d.Ast.d_client).(d.Ast.d_index) in
              validate d v;
              F.of_int v
            | SBit (d, i) ->
              let v = (inputs d.Ast.d_client).(d.Ast.d_index) in
              validate d v;
              F.of_int ((v lsr i) land 1))
          slots

module Eval = Circuit.Eval (F)

let check c ~inputs =
  let expected = Interp.run c.program ~inputs in
  let got = Eval.run c.circuit ~inputs:(protocol_inputs c ~inputs) in
  List.length expected = List.length got
  && List.for_all2
       (fun (c1, v1) (c2, v2) -> c1 = c2 && F.equal v1 v2)
       expected got

(* ------------------------------------------------------------------ *)
(* reporting                                                           *)
(* ------------------------------------------------------------------ *)

let final_stats c = Ir.stats c.ir

let stats_json c =
  let pass_entries =
    List.map
      (fun (name, s) -> Printf.sprintf "{\"pass\":%S,\"after\":%s}" name (Ir.stats_json s))
      c.pass_stats
  in
  Printf.sprintf
    "{\"program\":%S,\"naive\":%s,\"passes\":[%s],\"circuit\":{\"gates\":%d,\"inputs\":%d,\"outputs\":%d,\"adds\":%d,\"muls\":%d,\"depth\":%d,\"mult_width\":%d},\"constants\":%d}"
    c.program.Ast.p_name (Ir.stats_json c.naive_stats)
    (String.concat "," pass_entries)
    (Circuit.size c.circuit)
    (Circuit.num_inputs c.circuit)
    (Circuit.num_outputs c.circuit)
    (Circuit.num_add c.circuit)
    (Circuit.num_mul c.circuit)
    (Circuit.depth c.circuit)
    (Circuit.mult_width c.circuit)
    (List.length c.constants)

let pp_pipeline ppf c =
  let line name (s : Ir.stats) =
    Format.fprintf ppf "  %-10s nodes=%-5d adds=%-5d muls=%-5d depth=%d@." name
      s.Ir.nodes s.Ir.adds s.Ir.muls s.Ir.depth
  in
  Format.fprintf ppf "pass pipeline for %s:@." c.program.Ast.p_name;
  line "naive" c.naive_stats;
  List.iter (fun (name, s) -> line name s) c.pass_stats
