(** Compiler front-end: {!Ast.program} -> optimized {!Ir.t} ->
    {!Yoso_circuit.Circuit.t}.

    The pipeline elaborates the AST into the flat IR (comparisons
    become bit prefix circuits, [is_zero] becomes Fermat
    exponentiation, [Sub]/[Neg] multiply by the [-1] constant), runs
    {!default_passes}, then lowers to a circuit through
    {!Yoso_circuit.Builder}.  Constants materialize as inputs of a
    designated constants client ({!field:compiled.const_client}, one
    id above the program's real clients); {!protocol_inputs} supplies
    their values automatically. *)

module F = Yoso_field.Field.Fp
module Circuit = Yoso_circuit.Circuit

type source = SValue of Ast.decl | SBit of Ast.decl * int
(** One slot of a client's protocol input vector: either a
    declaration's plain value, or bit [i] of a declaration a
    comparison demanded in bits (bits are laid out LSB first). *)

type compiled = {
  program : Ast.program;
  circuit : Circuit.t;
  const_client : int;  (** synthetic client supplying the constants *)
  constants : int list;
      (** values the constants client must input, in gate order *)
  sources : (int * source array) list;
      (** per real client, the slot layout of its input vector *)
  ir : Ir.t;  (** the IR after the last pass *)
  naive_stats : Ir.stats;
  pass_stats : (string * Ir.stats) list;  (** stats after each pass *)
}

val default_passes : (string * (Ir.t -> Ir.t)) list
(** [fold; rewrite; cse; reassoc; fold2; cse2] — a second fold/cse
    round picks up opportunities the reassociation exposes. *)

val compile : ?passes:(string * (Ir.t -> Ir.t)) list -> Ast.program -> compiled
(** Compile with the given pass list (default {!default_passes};
    [~passes:[]] gives the naive lowering). *)

val protocol_inputs :
  compiled -> inputs:(int -> int array) -> int -> F.t array
(** Encode per-client integer inputs (one per declaration, as for
    {!Interp.run}) into the per-client field vectors the circuit
    consumes: bit-demanded declarations are expanded into bits, and
    the constants client's vector is filled from
    {!field:compiled.constants}.  @raise Invalid_argument on
    width-violating values. *)

val check : compiled -> inputs:(int -> int array) -> bool
(** Clear-evaluate the compiled circuit and compare against
    {!Interp.run}. *)

val final_stats : compiled -> Ir.stats
val stats_json : compiled -> string
val pp_pipeline : Format.formatter -> compiled -> unit
