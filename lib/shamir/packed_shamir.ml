module Make (F : Yoso_field.Field.S) = struct
  module Bary = Yoso_field.Barycentric.Make (F)

  type params = {
    n : int;
    k : int;
    secret_slots : F.t array; (* 0, -1, ..., -(k-1) *)
    share_points : F.t array; (* 1, ..., n *)
    (* anchor bases cached per degree: anchors = secret slots followed
       by the first (d + 1 - k) share points *)
    bases : (int, Bary.t) Hashtbl.t;
  }

  let make_params ~n ~k =
    if k < 1 || k > n then invalid_arg "Packed_shamir: need 1 <= k <= n";
    if n >= F.p / 2 then invalid_arg "Packed_shamir: committee too large for field";
    {
      n;
      k;
      secret_slots = Array.init k (fun j -> F.of_int (-j));
      share_points = Array.init n (fun i -> F.of_int (i + 1));
      bases = Hashtbl.create 8;
    }

  let n p = p.n
  let k p = p.k
  let secret_slot p j = p.secret_slots.(j)
  let share_point p i = p.share_points.(i)

  type sharing = { degree : int; shares : F.t array }

  let make_sharing ~degree ~shares = { degree; shares }

  let check_degree_range p d =
    if d < p.k - 1 || d > p.n - 1 then
      invalid_arg
        (Printf.sprintf "Packed_shamir: degree %d out of range [%d, %d]" d (p.k - 1)
           (p.n - 1))

  let anchor_base p d =
    match Hashtbl.find_opt p.bases d with
    | Some b -> b
    | None ->
      let extra = d + 1 - p.k in
      let anchors =
        Array.append p.secret_slots (Array.sub p.share_points 0 extra)
      in
      let b = Bary.create anchors in
      Hashtbl.add p.bases d b;
      b

  let share p ~degree ~secrets ~rng =
    check_degree_range p degree;
    if Array.length secrets <> p.k then
      invalid_arg "Packed_shamir.share: secrets length <> k";
    let extra = degree + 1 - p.k in
    let anchor_values =
      Array.append secrets (Array.init extra (fun _ -> F.random rng))
    in
    let base = anchor_base p degree in
    (* the first [extra] share points are anchors themselves *)
    let shares =
      Array.init p.n (fun i ->
          if i < extra then anchor_values.(p.k + i)
          else Bary.eval base ~values:anchor_values p.share_points.(i))
    in
    { degree; shares }

  (* Deprecated positional-RNG alias, one release *)
  let share_public p vec =
    if Array.length vec <> p.k then
      invalid_arg "Packed_shamir.share_public: vector length <> k";
    let base = anchor_base p (p.k - 1) in
    let shares = Array.init p.n (fun i -> Bary.eval base ~values:vec p.share_points.(i)) in
    { degree = p.k - 1; shares }

  let check_same_n p s =
    if Array.length s.shares <> p.n then
      invalid_arg "Packed_shamir: sharing has wrong party count"

  let add p a b =
    check_same_n p a;
    check_same_n p b;
    { degree = max a.degree b.degree; shares = Array.map2 F.add a.shares b.shares }

  let sub p a b =
    check_same_n p a;
    check_same_n p b;
    { degree = max a.degree b.degree; shares = Array.map2 F.sub a.shares b.shares }

  let scale p c s =
    check_same_n p s;
    { s with shares = Array.map (F.mul c) s.shares }

  let mul p a b =
    check_same_n p a;
    check_same_n p b;
    if a.degree + b.degree >= p.n then
      invalid_arg "Packed_shamir.mul: product degree exceeds n - 1";
    { degree = a.degree + b.degree; shares = Array.map2 F.mul a.shares b.shares }

  let mul_public p vec s =
    if s.degree > p.n - p.k then
      invalid_arg "Packed_shamir.mul_public: degree too large (need <= n - k)";
    mul p (share_public p vec) s

  let add_constant p vec s = add p (share_public p vec) s

  let dedup_pairs pairs =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun (i, _) ->
        if Hashtbl.mem seen i then false
        else begin
          Hashtbl.add seen i ();
          true
        end)
      pairs

  let reconstruct p ~degree pairs =
    check_degree_range p degree;
    let pairs = dedup_pairs pairs in
    if List.length pairs < degree + 1 then
      invalid_arg
        (Printf.sprintf "Packed_shamir.reconstruct: %d shares, need %d"
           (List.length pairs) (degree + 1));
    let chosen = List.filteri (fun idx _ -> idx < degree + 1) pairs in
    let points = Array.of_list (List.map (fun (i, _) -> p.share_points.(i)) chosen) in
    let values = Array.of_list (List.map snd chosen) in
    let base = Bary.create points in
    Array.map (Bary.eval base ~values) p.secret_slots

  let reconstruct_checked p ~degree pairs =
    check_degree_range p degree;
    let pairs = dedup_pairs pairs in
    if List.length pairs < degree + 1 then
      invalid_arg
        (Printf.sprintf "Packed_shamir.reconstruct_checked: %d shares, need %d"
           (List.length pairs) (degree + 1));
    let chosen, rest = (List.filteri (fun idx _ -> idx < degree + 1) pairs,
                        List.filteri (fun idx _ -> idx >= degree + 1) pairs) in
    let points = Array.of_list (List.map (fun (i, _) -> p.share_points.(i)) chosen) in
    let values = Array.of_list (List.map snd chosen) in
    let base = Bary.create points in
    let inconsistent =
      List.filter_map
        (fun (i, v) ->
          if F.equal v (Bary.eval base ~values p.share_points.(i)) then None else Some i)
        rest
    in
    if inconsistent <> [] then Error inconsistent
    else Ok (Array.map (Bary.eval base ~values) p.secret_slots)

  let reconstruct_sharing p s =
    check_same_n p s;
    reconstruct p ~degree:s.degree
      (Array.to_list (Array.mapi (fun i v -> (i, v)) s.shares))

  let check_degree p s =
    check_same_n p s;
    if s.degree >= p.n - 1 then true
    else begin
      (* interpolate from the first degree+1 shares, check the rest *)
      let d = s.degree in
      let points = Array.sub p.share_points 0 (d + 1) in
      let values = Array.sub s.shares 0 (d + 1) in
      let base = Bary.create points in
      let ok = ref true in
      for i = d + 1 to p.n - 1 do
        if not (F.equal s.shares.(i) (Bary.eval base ~values p.share_points.(i))) then
          ok := false
      done;
      !ok
    end

  let recover_missing p ~degree pairs target =
    check_degree_range p degree;
    let pairs = dedup_pairs pairs in
    if List.length pairs < degree + 1 then
      invalid_arg "Packed_shamir.recover_missing: not enough shares";
    let chosen = List.filteri (fun idx _ -> idx < degree + 1) pairs in
    let points = Array.of_list (List.map (fun (i, _) -> p.share_points.(i)) chosen) in
    let values = Array.of_list (List.map snd chosen) in
    let base = Bary.create points in
    Bary.eval base ~values p.share_points.(target)
end
