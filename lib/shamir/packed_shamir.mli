(** Packed Shamir secret sharing (Franklin-Yung), as used throughout
    the paper (Section 3.2, "Notation and Packed Shamir Secret
    Sharing").

    A degree-[d] packed sharing [[x]]_d of a vector [x] of [k] secrets
    is a polynomial [f] of degree at most [d] with [f(-(j-1)) = x_j]
    for [j in 1..k]; party [i] (1-based) holds the share [f(i)].
    Requirements: [k - 1 <= d <= n - 1].  Any [d + 1] shares determine
    the sharing; any [d - k + 1] shares are independent of the secrets.

    The scheme is linearly homomorphic, and multiplication-friendly:
    shares multiply pointwise with degrees adding, and a *public*
    vector can be multiplied in by locally building its deterministic
    degree-[(k-1)] sharing. *)

module Make (F : Yoso_field.Field.S) : sig
  type params
  (** Precomputed evaluation points and cached interpolation bases for
      a fixed [(n, k)]. *)

  val make_params : n:int -> k:int -> params
  (** @raise Invalid_argument unless [1 <= k <= n < F.p / 2]. *)

  val n : params -> int
  val k : params -> int

  val secret_slot : params -> int -> F.t
  (** [secret_slot p j] is the evaluation point of secret [j]
      (0-based): the field element [-(j)]. *)

  val share_point : params -> int -> F.t
  (** [share_point p i] is party [i]'s point (0-based party index,
      point [i + 1]). *)

  type sharing = private { degree : int; shares : F.t array }
  (** [shares.(i)] is party [i]'s share.  The [degree] is the claimed
      degree bound; see {!check_degree}. *)

  val make_sharing : degree:int -> shares:F.t array -> sharing
  (** Unchecked constructor — intended for tests and for adversary
      modules that inject malformed sharings; honest code should use
      {!share}. *)

  val share :
    params -> degree:int -> secrets:F.t array -> rng:Random.State.t -> sharing
  (** Random degree-[degree] packed sharing of [secrets] (length [k]).
      @raise Invalid_argument if the degree is out of range or
      [secrets] does not have length [k]. *)

  val share_public : params -> F.t array -> sharing
  (** The unique degree-[(k-1)] sharing of a public vector: all shares
      are determined by the secrets, so every party can compute it
      locally (used to multiply public vectors into sharings). *)

  val add : params -> sharing -> sharing -> sharing
  (** Pointwise share addition; resulting degree is the max. *)

  val sub : params -> sharing -> sharing -> sharing
  val scale : params -> F.t -> sharing -> sharing
  val add_constant : params -> F.t array -> sharing -> sharing
  (** [add_constant p c s] adds the public vector [c] (via its
      degree-[(k-1)] sharing) to [s]. *)

  val mul : params -> sharing -> sharing -> sharing
  (** Pointwise share multiplication; degrees add.
      @raise Invalid_argument if [d1 + d2 >= n]. *)

  val mul_public : params -> F.t array -> sharing -> sharing
  (** Multiplication by a public vector; degree increases by [k - 1].
      Requires [degree <= n - k]. *)

  val reconstruct : params -> degree:int -> (int * F.t) list -> F.t array
  (** [reconstruct p ~degree shares] recovers the packed secret vector
      from [(party_index, share)] pairs.  Needs at least [degree + 1]
      pairs with distinct party indices; extra pairs are ignored.
      @raise Invalid_argument if there are too few shares. *)

  val reconstruct_checked :
    params -> degree:int -> (int * F.t) list -> (F.t array, int list) result
  (** Error-detecting reconstruction: interpolates a candidate
      polynomial from the first [degree + 1] pairs and verifies every
      remaining pair against it.  [Ok secrets] when the whole set is
      consistent with one degree-[degree] polynomial; [Error parties]
      lists the party indices whose shares disagree with the candidate
      (nonempty only if the set was tampered with).  This is the
      redundancy check honest parties run over the surviving share set
      during online reconstruction.
      @raise Invalid_argument with fewer than [degree + 1] distinct
      pairs. *)

  val reconstruct_sharing : params -> sharing -> F.t array
  (** Reconstruct from a complete sharing (all [n] shares). *)

  val check_degree : params -> sharing -> bool
  (** Whether all [n] shares lie on a polynomial of the claimed
      degree — the error-detection check honest parties run on
      received sharings. *)

  val recover_missing : params -> degree:int -> (int * F.t) list -> int -> F.t
  (** Recompute the share of an absent party from [degree + 1] present
      shares (used for fail-stop recovery demonstrations). *)
end
