module F = Yoso_field.Field.Fp
module B = Yoso_bigint.Bigint
module Lagrange = Yoso_field.Lagrange.Make (F)

type group = { modulus : B.t; order : B.t; h : B.t }

(* p' = k q + 1 prime, q = F.p; then h = g0^k has order q (if <> 1) *)
let group =
  lazy
    (let q = B.of_int F.p in
     let st = Random.State.make [| 0xFE1D |] in
     let rec find_modulus k =
       let p' = B.add (B.mul (B.of_int k) q) B.one in
       if B.is_probable_prime st p' then (k, p') else find_modulus (k + 2)
     in
     let k, modulus = find_modulus 2 in
     let rec find_generator g0 =
       let h = B.powmod (B.of_int g0) (B.of_int k) modulus in
       if B.is_one h then find_generator (g0 + 1) else h
     in
     { modulus; order = q; h = find_generator 2 })

(* h is the one base every dealing and verification exponentiates, so
   it gets a Montgomery fixed-base table; commitments (varying bases)
   go through the group's shared Montgomery context. *)
let mont = lazy (B.Mont.create (Lazy.force group).modulus)
let fb_h = lazy (B.Mont.fixed_base (Lazy.force mont) (Lazy.force group).h)

type commitment = B.t array

type dealing = { commitment : commitment; shares : F.t array }

let pow_h _g e = B.Mont.fixed_powmod (Lazy.force fb_h) (B.of_int e)

(* force the lazy group/Montgomery state and grow the h table to cover
   full-width (31-bit) exponents; afterwards verification is read-only
   and safe to fan out across domains *)
let prepare () =
  ignore (Lazy.force group);
  ignore (Lazy.force mont);
  B.Mont.preload (Lazy.force fb_h) ~bits:31

let deal ~t ~n ~secret ~rng =
  if t < 0 || n < 1 || t >= n then invalid_arg "Feldman.deal: need 0 <= t < n";
  let g = Lazy.force group in
  let coeffs = Array.init (t + 1) (fun j -> if j = 0 then secret else F.random rng) in
  let commitment = Array.map (fun a -> pow_h g (F.to_int a)) coeffs in
  let eval x =
    let acc = ref F.zero in
    for j = t downto 0 do
      acc := F.add (F.mul !acc x) coeffs.(j)
    done;
    !acc
  in
  let shares = Array.init n (fun i -> eval (F.of_int (i + 1))) in
  { commitment; shares }

let verify_share commitment ~index ~share =
  let g = Lazy.force group in
  let mctx = Lazy.force mont in
  (* h^share =? prod_j C_j^((index+1)^j); exponents live mod q = F.p.
     The right-hand side is one Straus multi-exponentiation over the
     t+1 commitment coefficients instead of t+1 independent powmods. *)
  let x = F.of_int (index + 1) in
  let x_pow = ref F.one in
  let pairs =
    Array.map
      (fun c ->
        let e = B.of_int (F.to_int !x_pow) in
        x_pow := F.mul !x_pow x;
        (c, e))
      commitment
  in
  B.equal (pow_h g (F.to_int share)) (B.Multiexp.run mctx pairs)

let verify_dealing_each ~n d =
  Array.length d.shares = n
  && (let ok = ref true in
      Array.iteri
        (fun i s -> if not (verify_share d.commitment ~index:i ~share:s) then ok := false)
        d.shares;
      !ok)

(* random-linear-combination batch check:
   h^(sum_i r_i s_i) =? prod_j C_j^(sum_i r_i (i+1)^j), all exponents
   mod q.  A dealing whose shares all verify passes identically; a bad
   dealing survives with probability 1/q over the r_i.  Without [rng]
   the coefficients are derived Fiat-Shamir-style from the dealing
   itself — heuristic, but so is the 31-bit group. *)
let verify_dealing ?rng ~n d =
  Array.length d.shares = n
  && Array.length d.commitment > 0
  &&
  let g = Lazy.force group in
  let mctx = Lazy.force mont in
  let rng =
    match rng with
    | Some st -> st
    | None ->
      let mix = Hashtbl.hash (Array.map B.to_string d.commitment, d.shares) in
      Random.State.make [| 0xF31D; mix |]
  in
  (* r_i in [1, q): a zero coefficient would blind share i entirely *)
  let rec nonzero () =
    let v = F.random rng in
    if F.equal v F.zero then nonzero () else v
  in
  let r = Array.init n (fun _ -> nonzero ()) in
  let lhs_exp = ref F.zero in
  Array.iteri (fun i s -> lhs_exp := F.add !lhs_exp (F.mul r.(i) s)) d.shares;
  let x_pow = Array.make n F.one in
  let pairs =
    Array.map
      (fun c ->
        let e = ref F.zero in
        for i = 0 to n - 1 do
          e := F.add !e (F.mul r.(i) x_pow.(i));
          x_pow.(i) <- F.mul x_pow.(i) (F.of_int (i + 1))
        done;
        (c, B.of_int (F.to_int !e)))
      d.commitment
  in
  B.equal (pow_h g (F.to_int !lhs_exp)) (B.Multiexp.run mctx pairs)

(* ------------------------------------------------------------------ *)
(* Chaum-Pedersen product proofs over the same group                    *)
(* ------------------------------------------------------------------ *)

module Product = struct
  type statement = { cx : B.t; cy : B.t; cz : B.t }
  type proof = { a1 : B.t; a2 : B.t; s : F.t }

  let commit v = pow_h (Lazy.force group) (F.to_int v)

  (* Fiat-Shamir challenge in [1, q): both prover and verifier derive
     it from the full transcript prefix.  Hashtbl.hash matches the
     heuristic already used by [verify_dealing] (and the toy-sized
     group). *)
  let challenge st p =
    let mix =
      Hashtbl.hash
        ( B.to_string st.cx,
          B.to_string st.cy,
          B.to_string st.cz,
          B.to_string p.a1,
          B.to_string p.a2 )
    in
    let rng = Random.State.make [| 0xCAFE; mix |] in
    let rec nonzero () =
      let v = F.random rng in
      if F.equal v F.zero then nonzero () else v
    in
    nonzero ()

  let prove ~rng ~x ~y ~z =
    let g = Lazy.force group in
    let st = { cx = commit x; cy = commit y; cz = commit z } in
    let w = F.random rng in
    let a1 = pow_h g (F.to_int w) in
    let a2 = B.powmod st.cx (B.of_int (F.to_int w)) g.modulus in
    let e = challenge st { a1; a2; s = F.zero } in
    (st, { a1; a2; s = F.add w (F.mul e y) })

  let tamper_z st delta =
    let g = Lazy.force group in
    { st with cz = B.mulmod st.cz (commit delta) g.modulus }

  let verify st p =
    let g = Lazy.force group in
    let mctx = Lazy.force mont in
    let e = B.of_int (F.to_int (challenge st p)) in
    (* h^s =? A1 * Cy^e  and  Cx^s =? A2 * Cz^e *)
    let s = B.of_int (F.to_int p.s) in
    B.equal (pow_h g (F.to_int p.s)) (B.Multiexp.run mctx [| (p.a1, B.one); (st.cy, e) |])
    && B.equal
         (B.powmod st.cx s g.modulus)
         (B.Multiexp.run mctx [| (p.a2, B.one); (st.cz, e) |])

  (* Random-linear-combination batch verification: with weights r_i in
     [1, q), both Chaum-Pedersen equations are checked once for the
     whole batch —
       h^(sum_i r_i s_i)        =? prod_i (A1_i^r_i * Cy_i^(r_i e_i))
       prod_i Cx_i^(r_i s_i)    =? prod_i (A2_i^r_i * Cz_i^(r_i e_i))
    — three multi-exponentiations and one fixed-base power instead of
    4 per proof.  A batch that verifies per-proof passes identically;
    a batch containing a bad proof survives with probability 1/q over
    the r_i.  Without [rng] the weights are derived Fiat-Shamir-style
    from the whole batch. *)
  let verify_batch ?rng batch =
    let b = Array.length batch in
    if b = 0 then true
    else begin
      let g = Lazy.force group in
      let mctx = Lazy.force mont in
      let rng =
        match rng with
        | Some st -> st
        | None ->
          let mix =
            Hashtbl.hash
              (Array.map
                 (fun (st, p) -> (B.to_string st.cx, B.to_string st.cz, B.to_string p.a1))
                 batch)
          in
          Random.State.make [| 0xBA7C; mix |]
      in
      let rec nonzero () =
        let v = F.random rng in
        if F.equal v F.zero then nonzero () else v
      in
      let r = Array.init b (fun _ -> nonzero ()) in
      let e = Array.map (fun (st, p) -> challenge st p) batch in
      let lhs1 = ref F.zero in
      Array.iteri (fun i (_, p) -> lhs1 := F.add !lhs1 (F.mul r.(i) p.s)) batch;
      let rhs1 =
        Array.concat
          (Array.to_list
             (Array.mapi
                (fun i (st, p) ->
                  [|
                    (p.a1, B.of_int (F.to_int r.(i)));
                    (st.cy, B.of_int (F.to_int (F.mul r.(i) e.(i))));
                  |])
                batch))
      in
      let lhs2 =
        Array.init b (fun i ->
            let st, p = batch.(i) in
            (st.cx, B.of_int (F.to_int (F.mul r.(i) p.s))))
      in
      let rhs2 =
        Array.concat
          (Array.to_list
             (Array.mapi
                (fun i (st, p) ->
                  [|
                    (p.a2, B.of_int (F.to_int r.(i)));
                    (st.cz, B.of_int (F.to_int (F.mul r.(i) e.(i))));
                  |])
                batch))
      in
      B.equal (pow_h g (F.to_int !lhs1)) (B.Multiexp.run mctx rhs1)
      && B.equal (B.Multiexp.run mctx lhs2) (B.Multiexp.run mctx rhs2)
    end

  (* attribution after a failed batch check: per-proof verification
     over the batch, returning the indices that do not verify (the
     batch check is only a screening step — blame must be exact) *)
  let attribute batch =
    let bad = ref [] in
    Array.iteri (fun i (st, p) -> if not (verify st p) then bad := i :: !bad) batch;
    List.rev !bad
end

let secret_commitment c =
  if Array.length c = 0 then invalid_arg "Feldman: empty commitment";
  c.(0)

let mul_commitments a b =
  let g = Lazy.force group in
  B.mulmod a b g.modulus

let reconstruct ~t pairs =
  let seen = Hashtbl.create 8 in
  let pairs =
    List.filter
      (fun (i, _) ->
        if Hashtbl.mem seen i then false
        else begin
          Hashtbl.add seen i ();
          true
        end)
      pairs
  in
  if List.length pairs < t + 1 then invalid_arg "Feldman.reconstruct: not enough shares";
  let chosen = List.filteri (fun idx _ -> idx < t + 1) pairs in
  let points = Array.of_list (List.map (fun (i, _) -> F.of_int (i + 1)) chosen) in
  let values = Array.of_list (List.map snd chosen) in
  Lagrange.eval_from ~points ~values F.zero