module F = Yoso_field.Field.Fp
module B = Yoso_bigint.Bigint
module Lagrange = Yoso_field.Lagrange.Make (F)

type group = { modulus : B.t; order : B.t; h : B.t }

(* p' = k q + 1 prime, q = F.p; then h = g0^k has order q (if <> 1) *)
let group =
  lazy
    (let q = B.of_int F.p in
     let st = Random.State.make [| 0xFE1D |] in
     let rec find_modulus k =
       let p' = B.add (B.mul (B.of_int k) q) B.one in
       if B.is_probable_prime st p' then (k, p') else find_modulus (k + 2)
     in
     let k, modulus = find_modulus 2 in
     let rec find_generator g0 =
       let h = B.powmod (B.of_int g0) (B.of_int k) modulus in
       if B.is_one h then find_generator (g0 + 1) else h
     in
     { modulus; order = q; h = find_generator 2 })

(* h is the one base every dealing and verification exponentiates, so
   it gets a Montgomery fixed-base table; commitments (varying bases)
   go through the group's shared Montgomery context. *)
let mont = lazy (B.Mont.create (Lazy.force group).modulus)
let fb_h = lazy (B.Mont.fixed_base (Lazy.force mont) (Lazy.force group).h)

type commitment = B.t array

type dealing = { commitment : commitment; shares : F.t array }

let pow_h _g e = B.Mont.fixed_powmod (Lazy.force fb_h) (B.of_int e)

let deal ~t ~n ~secret ~rng =
  if t < 0 || n < 1 || t >= n then invalid_arg "Feldman.deal: need 0 <= t < n";
  let g = Lazy.force group in
  let coeffs = Array.init (t + 1) (fun j -> if j = 0 then secret else F.random rng) in
  let commitment = Array.map (fun a -> pow_h g (F.to_int a)) coeffs in
  let eval x =
    let acc = ref F.zero in
    for j = t downto 0 do
      acc := F.add (F.mul !acc x) coeffs.(j)
    done;
    !acc
  in
  let shares = Array.init n (fun i -> eval (F.of_int (i + 1))) in
  { commitment; shares }

let verify_share commitment ~index ~share =
  let g = Lazy.force group in
  let mctx = Lazy.force mont in
  (* h^share =? prod_j C_j^((index+1)^j); exponents live mod q = F.p *)
  let x = F.of_int (index + 1) in
  let rhs = ref B.one in
  let x_pow = ref F.one in
  Array.iter
    (fun c ->
      rhs :=
        B.mulmod !rhs (B.Mont.powmod mctx c (B.of_int (F.to_int !x_pow))) g.modulus;
      x_pow := F.mul !x_pow x)
    commitment;
  B.equal (pow_h g (F.to_int share)) !rhs

let verify_dealing ~n d =
  Array.length d.shares = n
  && (let ok = ref true in
      Array.iteri
        (fun i s -> if not (verify_share d.commitment ~index:i ~share:s) then ok := false)
        d.shares;
      !ok)

let secret_commitment c =
  if Array.length c = 0 then invalid_arg "Feldman: empty commitment";
  c.(0)

let mul_commitments a b =
  let g = Lazy.force group in
  B.mulmod a b g.modulus

let reconstruct ~t pairs =
  let seen = Hashtbl.create 8 in
  let pairs =
    List.filter
      (fun (i, _) ->
        if Hashtbl.mem seen i then false
        else begin
          Hashtbl.add seen i ();
          true
        end)
      pairs
  in
  if List.length pairs < t + 1 then invalid_arg "Feldman.reconstruct: not enough shares";
  let chosen = List.filteri (fun idx _ -> idx < t + 1) pairs in
  let points = Array.of_list (List.map (fun (i, _) -> F.of_int (i + 1)) chosen) in
  let values = Array.of_list (List.map snd chosen) in
  Lagrange.eval_from ~points ~values F.zero

(* Deprecated positional-RNG alias, one release *)
let deal_st ~t ~n ~secret st = deal ~t ~n ~secret ~rng:st
