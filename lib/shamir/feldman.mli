(** Feldman verifiable secret sharing.

    An extension substrate: the YOSO literature the paper builds on
    uses publicly verifiable sharing both for role assignment [6, 15]
    and for distributed randomness generation [39, 38, 37].  Feldman's
    scheme makes a Shamir dealing *verifiable*: the dealer publishes
    commitments [C_j = h^(a_j)] to the polynomial coefficients, and
    anyone checks a share [s_i] against
    [h^(s_i) = prod_j C_j^((i+1)^j)].

    For the exponent arithmetic to be sound, the commitment group must
    have prime order equal to the share field's modulus: we use the
    order-[q] subgroup of [F_p'^*] where [q = 2^31 - 1] (the MPC
    field's prime) and [p' = kq + 1] is the smallest such prime, with
    group arithmetic over {!Yoso_bigint}.  A 31-bit group is toy-sized
    (a deployment would use a curve of ~256-bit order); the algebra
    and the verification logic are the real scheme's. *)

module F = Yoso_field.Field.Fp
module B = Yoso_bigint.Bigint

type group = private {
  modulus : B.t;   (** [p' = k q + 1], prime *)
  order : B.t;     (** [q = 2^31 - 1 = F.p] *)
  h : B.t;         (** generator of the order-[q] subgroup *)
}

val group : group Lazy.t
(** Deterministically derived once (smallest [k], fixed generator
    search). *)

type commitment = B.t array
(** [h^(a_0), ..., h^(a_t)] — one group element per coefficient. *)

type dealing = {
  commitment : commitment;
  shares : F.t array;  (** share of party [i] (0-based) at point [i + 1] *)
}

val deal : t:int -> n:int -> secret:F.t -> rng:Random.State.t -> dealing
(** Degree-[t] verifiable dealing of [secret] to [n] parties.
    Commitment exponentiations use a lazily built Montgomery
    fixed-base table for [h].
    @raise Invalid_argument unless [0 <= t < n]. *)

val prepare : unit -> unit
(** Forces the lazy group, Montgomery context and fixed-base table for
    [h] (grown to full 31-bit exponent coverage).  Call once before
    fanning verification out across domains — afterwards all
    verification state is read-only. *)

val verify_share : commitment -> index:int -> share:F.t -> bool
(** [h^share =? prod_j C_j^((index+1)^j)], the product computed as one
    Straus multi-exponentiation over the [t + 1] coefficients. *)

val verify_dealing : ?rng:Random.State.t -> n:int -> dealing -> bool
(** Random-linear-combination batch verification:
    [h^(sum_i r_i s_i) =? prod_j C_j^(sum_i r_i (i+1)^j)] with random
    [r_i] in [\[1, q)] — one multi-exponentiation for the whole dealing
    instead of [n] share checks.  Accepts every dealing
    {!verify_share} accepts; a bad dealing slips through with
    probability [1/q] over the [r_i].  Without [rng] the coefficients
    are derived deterministically from the dealing (Fiat-Shamir
    heuristic, matching the toy-sized group). *)

val verify_dealing_each : n:int -> dealing -> bool
(** Per-share verification — [n] independent {!verify_share} calls.
    The definitional check the batch variant is tested against. *)

(** {1 Product (Beaver-triple) proofs}

    Chaum-Pedersen proofs over the same order-[q] subgroup that a
    committed triple is multiplicative: given [Cx = h^x], [Cy = h^y],
    [Cz = h^z], the prover shows knowledge of [y] with [Cy = h^y] and
    [Cz = Cx^y] — which forces [z = x y].  These are the batch audit
    proofs of the offline factory: one statement per Beaver triple,
    verified per batch with random-linear-combination aggregation
    (same trick as {!verify_dealing}, extended across {e many}
    statements rather than the shares of one dealing). *)
module Product : sig
  type statement = {
    cx : B.t;  (** [h^x] *)
    cy : B.t;  (** [h^y] *)
    cz : B.t;  (** [h^z]; the claim is [z = x y] *)
  }

  type proof

  val commit : F.t -> B.t
  (** [h^v] via the shared fixed-base table. *)

  val prove : rng:Random.State.t -> x:F.t -> y:F.t -> z:F.t -> statement * proof
  (** Honest prover: commits to the triple and proves [Cy = h^y] and
      [Cz = Cx^y] with witness [y].  If [z <> x y] the produced proof
      does not verify (the prover cannot make a false statement pass:
      soundness of Chaum-Pedersen). *)

  val tamper_z : statement -> F.t -> statement
  (** Adversary/test constructor: shifts the claimed [Cz] by
      [h^delta], breaking the product relation. *)

  val verify : statement -> proof -> bool
  (** Both Chaum-Pedersen equations, Fiat-Shamir challenge. *)

  val verify_batch : ?rng:Random.State.t -> (statement * proof) array -> bool
  (** Random-linear-combination aggregation: three multi-exponentiations
      plus one fixed-base power for the whole batch instead of four
      exponentiations per proof.  Accepts every batch {!verify}
      accepts; a bad proof slips through with probability [1/q] over
      the weights.  Without [rng], weights are derived from the batch
      (Fiat-Shamir heuristic, matching the toy-sized group). *)

  val attribute : (statement * proof) array -> int list
  (** Indices whose proofs fail per-proof verification — exact blame
      after {!verify_batch} returns [false]. *)
end

val secret_commitment : commitment -> B.t
(** [h^secret = C_0]; contributions aggregate by multiplying these. *)

val mul_commitments : B.t -> B.t -> B.t
(** Group operation, for aggregating {!secret_commitment}s. *)

val reconstruct : t:int -> (int * F.t) list -> F.t
(** Lagrange reconstruction from [t + 1] verified [(index, share)]
    pairs.  @raise Invalid_argument with fewer. *)
