(** Arbitrary-precision signed integers, from scratch.

    The sealed build environment has no [zarith], and threshold
    Paillier (the paper's linearly homomorphic threshold encryption
    instantiation, Section 4.1) needs multi-hundred-bit modular
    arithmetic: this module provides it.

    Representation: sign-magnitude with little-endian 62-bit limbs.
    A limb product spans 124 bits, so inner products are computed from
    split 31-bit half-limb partial products, keeping every
    intermediate inside OCaml's 63-bit native [int] (treated as
    unsigned, exact up to [2^63 - 1]).  Halving the limb count
    relative to the earlier 30-bit representation halves the length of
    every Montgomery CIOS pass over the 1024/2048-bit Paillier moduli.
    Values are immutable and always normalised (no leading zero limbs;
    zero has positive sign and empty magnitude). *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t
val of_int : int -> t

val to_int : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val fits_int : t -> bool

val of_string : string -> t
(** Decimal, with optional leading ['-']. @raise Invalid_argument on
    malformed input. *)

val to_string : t -> string

val of_hex : string -> t
(** Hex digits, no prefix, case-insensitive. *)

val to_hex : t -> string

val of_bytes_be : string -> t
(** Big-endian unsigned bytes. *)

val to_bytes_be : t -> string
(** Minimal big-endian encoding of the absolute value; [""] for zero. *)

(** {1 Predicates and comparisons} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

val bit_length : t -> int
(** Bits in the absolute value; [bit_length zero = 0]. *)

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t

val mul : t -> t -> t
(** Schoolbook below 16 limbs (~992 bits), Karatsuba above. *)

val divmod : t -> t -> t * t
(** Truncated division: [fst] rounds toward zero, [snd (divmod a b)]
    has the sign of [a].  @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val erem : t -> t -> t
(** Euclidean remainder, always in [\[0, |b|)]. *)

val pow : t -> int -> t
(** @raise Invalid_argument on negative exponent. *)

val shift_left : t -> int -> t
(** @raise Invalid_argument on negative shift count. *)

val shift_right : t -> int -> t
(** @raise Invalid_argument on negative shift count. *)

(** {1 Modular and number-theoretic operations} *)

val addmod : t -> t -> t -> t
val mulmod : t -> t -> t -> t

val powmod : t -> t -> t -> t
(** [powmod b e m] with [e >= 0], [m > 0].  Dispatches to Montgomery
    exponentiation ({!Mont.powmod}) for odd multi-limb moduli and
    non-trivial exponents, and to {!powmod_naive} otherwise; the two
    always agree.
    @raise Invalid_argument if [m <= 0] or [e < 0]. *)

val powmod_naive : t -> t -> t -> t
(** Reference square-and-multiply implementation of {!powmod}, kept as
    a baseline for benchmarks and equivalence tests.
    @raise Invalid_argument if [m <= 0] or [e < 0]. *)

(** Montgomery arithmetic for a fixed odd modulus.

    The kernel works on a radix-29 repacking of the 62-bit storage
    limbs: 29-bit digits leave 34 headroom bits per word, so partial
    products accumulate column-wise with {e delayed carries} — the
    inner loops are pure multiply-accumulate over native [int]s, with
    a carry flush only every few digit pairs and one final carry pass.
    Digits are consumed two at a time (2-way blocked passes), and
    reduction is {e almost-Montgomery}: intermediate values live in
    [\[0, 2m)] and are canonicalized once at API boundaries, never per
    product.  A context precomputes [-m^-1 mod 2^29], the repacked
    modulus and [R^2 mod m].  {!Mont.powmod} adds a sliding 5-bit
    odd-window ladder on top (a 16-entry table of odd powers
    [b^(2k+1)], zero runs cost squarings only), and {!Mont.fixed_base}
    precomputes per-window power tables for bases reused across many
    exponentiations (generators, public randomizer bases), reducing an
    exponentiation to ~bits/4 products with no squarings. *)
module Mont : sig
  type ctx
  (** Precomputed reduction context for one odd modulus. *)

  val create : t -> ctx
  (** @raise Invalid_argument if the modulus is even or [< 3]. *)

  val modulus : ctx -> t

  val to_mont : ctx -> t -> t
  (** Map [x] to Montgomery form [x * R mod m].  [x] is reduced
      mod [m] first, so any sign/magnitude is accepted. *)

  val of_mont : ctx -> t -> t
  (** Inverse of {!to_mont}.
      @raise Invalid_argument if the value is not in [\[0, m)]. *)

  val one_mont : ctx -> t
  (** Montgomery form of [1], i.e. [R mod m]. *)

  val mulmod : ctx -> t -> t -> t
  (** Product of two values {e in Montgomery form}, result in
      Montgomery form.
      @raise Invalid_argument if an operand is not in [\[0, m)]. *)

  val powmod : ctx -> t -> t -> t
  (** [powmod ctx b e]: ordinary-domain base and result ([b] is
      reduced mod [m] internally); sliding 5-bit odd-window ladder.
      @raise Invalid_argument if [e < 0]. *)

  type fixed_base
  (** Growable per-window power table for one base; extends itself to
      the largest exponent seen. *)

  val fixed_base : ctx -> t -> fixed_base

  val fixed_powmod : fixed_base -> t -> t
  (** Same result as [powmod ctx base e].
      @raise Invalid_argument if [e < 0]. *)

  val preload : fixed_base -> bits:int -> unit
  (** Grow the window table to cover [bits]-bit exponents now.  The
      table otherwise extends itself lazily inside {!fixed_powmod},
      which is a write — call [preload] before sharing a fixed base
      across domains so that parallel readers never race the growth.
      @raise Invalid_argument on negative [bits]. *)

  (** The retired 30-bit-limb CIOS kernel, kept verbatim on a repacked
      30-bit view of the 62-bit representation.  It exists for two
      jobs: [bench time] measures it against the wide kernel on the
      exact Paillier encrypt/tpdec shapes (the wide kernel must stay
      ahead; see EXPERIMENTS.md E14 for the measured margins and why
      the bench's 509-bit modulus caps the ratio near 1.25x), and the
      backend-equality property tests use it as an independent oracle
      at 512/1024/2048 bits.  Not for production use. *)
  module Narrow : sig
    type ctx

    val create : t -> ctx
    (** @raise Invalid_argument if the modulus is even or [< 3]. *)

    val modulus : ctx -> t

    val mulmod : ctx -> t -> t -> t
    (** Montgomery product [a * b * R30^-1 mod m] of two values in
        (30-bit) Montgomery form.
        @raise Invalid_argument if an operand is not in [\[0, m)]. *)

    val powmod : ctx -> t -> t -> t
    (** Same contract as {!Mont.powmod}: ordinary-domain base and
        result, 4-bit windowed ladder on 30-bit limbs.
        @raise Invalid_argument if [e < 0]. *)
  end
end

val gcd : t -> t -> t

val extended_gcd : t -> t -> t * t * t
(** [(g, x, y)] with [a*x + b*y = g = gcd a b], [g >= 0]. *)

val invmod : t -> t -> t
(** Modular inverse in [\[0, m)].
    @raise Division_by_zero if not coprime. *)

val factorial : int -> t
(** @raise Invalid_argument on negative argument. *)

(** Simultaneous multi-exponentiation: [prod_i b_i^(e_i) mod m] much
    faster than independent {!powmod}s, by sharing one squaring chain
    across all bases (Straus) or bucketing digits (Pippenger).
    Negative exponents go through the modular inverse, so every base
    with a negative exponent must be coprime to the modulus. *)
module Multiexp : sig
  val run : Mont.ctx -> (t * t) array -> t
  (** [run ctx pairs] is [prod (b, e) in pairs. b^e mod m].  Picks
      {!straus} for small batches and {!pippenger} for large ones.
      The empty product is [1].
      @raise Division_by_zero if some [e < 0] with [gcd b m <> 1]. *)

  val straus : Mont.ctx -> (t * t) array -> t
  (** Interleaved windows: per-base tables, shared squarings.  Best
      for few bases with long exponents (Lagrange combination). *)

  val pippenger : Mont.ctx -> (t * t) array -> t
  (** Digit bucketing with suffix-product aggregation; window width
      chosen from batch size and exponent length.  Best for many
      bases (batched verification). *)

  val naive : Mont.ctx -> (t * t) array -> t
  (** Reference product of independent exponentiations, for tests and
      benchmark baselines. *)
end

(** {1 Randomness and primality} *)

val random_bits : Random.State.t -> int -> t
(** Uniform in [\[0, 2^bits)].
    @raise Invalid_argument on negative bit count. *)

val random_below : Random.State.t -> t -> t
(** Uniform in [\[0, bound)]; [bound > 0]. *)

val is_probable_prime : ?rounds:int -> Random.State.t -> t -> bool
(** Miller-Rabin with [rounds] random bases (default 20), preceded by
    trial division by small primes. *)

val random_prime : Random.State.t -> bits:int -> t
(** Random prime with exactly [bits] bits (top bit set). [bits >= 2]. *)

val random_safe_prime : Random.State.t -> bits:int -> t
(** Random safe prime [p = 2q + 1] with [q] prime. Slow for large
    [bits]; intended for test-sized parameters. *)

val pp : Format.formatter -> t -> unit
