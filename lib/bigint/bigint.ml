(* Sign-magnitude bignums over little-endian 62-bit limbs.  A limb
   product spans 124 bits, so inner products (schoolbook, Montgomery
   CIOS) are computed from split 31-bit half-limb partial products —
   every intermediate stays inside native unboxed 63-bit int
   arithmetic, treated as unsigned (values up to 2^63-1 are exact even
   when they print negative).  Division is Knuth's Algorithm D on a
   30-bit repacked view (it needs two-limb numerators, which 62-bit
   limbs don't leave headroom for); multiplication is schoolbook with
   a Karatsuba layer above [kara_threshold] limbs. *)

let limb_bits = 62
let mask = (1 lsl limb_bits) - 1 (* = max_int *)
let half = 31
let hmask = (1 lsl half) - 1

type t = { sign : int; mag : int array }
(* invariants: mag has no leading (high-index) zero limbs;
   sign = 0 iff mag = [||]; each limb in [0, 2^62). *)

(* ------------------------------------------------------------------ *)
(* Magnitude (unsigned) primitives                                     *)
(* ------------------------------------------------------------------ *)

let mag_norm a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_cmp a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

(* Repack a little-endian limb array between limb widths (bit-stream
   copy).  Used for the 62 <-> 30 division/baseline views and for byte
   conversions; each step moves at most [dst_bits] <= 62 bits, so all
   shifts stay in range. *)
let repack ~src_bits ~dst_bits a =
  let total = Array.length a * src_bits in
  let nout = (total + dst_bits - 1) / dst_bits in
  let out = Array.make (Stdlib.max nout 1) 0 in
  let oi = ref 0 and acc = ref 0 and nacc = ref 0 in
  Array.iter
    (fun limb ->
      let v = ref limb and rem_bits = ref src_bits in
      while !rem_bits > 0 do
        let take = Stdlib.min !rem_bits (dst_bits - !nacc) in
        acc := !acc lor ((!v land ((1 lsl take) - 1)) lsl !nacc);
        nacc := !nacc + take;
        v := !v lsr take;
        rem_bits := !rem_bits - take;
        if !nacc = dst_bits then begin
          out.(!oi) <- !acc;
          incr oi;
          acc := 0;
          nacc := 0
        end
      done)
    a;
  if !nacc > 0 then out.(!oi) <- !acc;
  mag_norm out

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    (* s <= 2*(2^62-1) + 1 = 2^63 - 1: exact as unsigned 63-bit *)
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  mag_norm out

(* requires a >= b *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      (* two's-complement wrap of d + 2^62, i.e. the borrowed limb *)
      out.(i) <- d land mask;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  mag_norm out

(* x * y for limbs x, y < 2^62 via 31-bit halves: returns the pair
   (lo, hi) with x*y = hi*2^62 + lo.  cross <= 2*(2^31-1)^2 < 2^63 and
   lo' < 2^63, so everything is exact unsigned-63 arithmetic. *)
let[@inline] mul_split x y =
  let xl = x land hmask and xh = x lsr half in
  let yl = y land hmask and yh = y lsr half in
  let ll = xl * yl and hh = xh * yh in
  let cross = (xl * yh) + (xh * yl) in
  let lo' = ll + ((cross land hmask) lsl half) in
  (lo' land mask, hh + (cross lsr half) + (lo' lsr limb_bits))

let mag_mul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        (* carry invariant: c <= 2^63 - 1 (true value, exact) *)
        let c = ref 0 in
        for j = 0 to lb - 1 do
          let plo, phi = mul_split ai (Array.unsafe_get b j) in
          let cc = !c in
          let s1 = Array.unsafe_get out (i + j) + plo in
          let s2 = (s1 land mask) + (cc land mask) in
          Array.unsafe_set out (i + j) (s2 land mask);
          c := phi + (s1 lsr limb_bits) + (s2 lsr limb_bits) + (cc lsr limb_bits)
        done;
        let k = ref (i + lb) in
        while !c <> 0 do
          let cc = !c in
          let s = out.(!k) + (cc land mask) in
          out.(!k) <- s land mask;
          c := (cc lsr limb_bits) + (s lsr limb_bits);
          incr k
        done
      end
    done;
    mag_norm out
  end

(* ~992 bits: the same crossover point the 30-bit kernel had at 32
   limbs, re-expressed in 62-bit limbs and re-validated by bench *)
let kara_threshold = 16

let mag_shift_limbs a k =
  if Array.length a = 0 then [||]
  else Array.append (Array.make k 0) a

let rec mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if la < kara_threshold || lb < kara_threshold then mag_mul_school a b
  else begin
    (* Karatsuba split at half of the larger operand *)
    let m = (max la lb + 1) / 2 in
    let lo x = mag_norm (Array.sub x 0 (min m (Array.length x))) in
    let hi x =
      if Array.length x <= m then [||]
      else Array.sub x m (Array.length x - m)
    in
    let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
    let z0 = mag_mul a0 b0 in
    let z2 = mag_mul a1 b1 in
    let z1 =
      (* (a0+a1)(b0+b1) - z0 - z2 *)
      let s = mag_mul (mag_add a0 a1) (mag_add b0 b1) in
      mag_sub (mag_sub s z0) z2
    in
    mag_add (mag_add z0 (mag_shift_limbs z1 m)) (mag_shift_limbs z2 (2 * m))
  end

(* shift left by s bits, 0 <= s < limb_bits.  [a.(i) lsl s] wraps mod
   2^63, so the outgoing top bits must be read with [lsr] before the
   shift, not recovered after it. *)
let mag_shl_small a s =
  if s = 0 || Array.length a = 0 then Array.copy a
  else begin
    let n = Array.length a in
    let out = Array.make (n + 1) 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      out.(i) <- ((a.(i) lsl s) land mask) lor !carry;
      carry := a.(i) lsr (limb_bits - s)
    done;
    out.(n) <- !carry;
    mag_norm out
  end

let mag_shr_small a s =
  if s = 0 || Array.length a = 0 then Array.copy a
  else begin
    let n = Array.length a in
    let out = Array.make n 0 in
    for i = 0 to n - 1 do
      let v = a.(i) lsr s in
      let hi = if i + 1 < n then (a.(i + 1) lsl (limb_bits - s)) land mask else 0 in
      out.(i) <- v lor hi
    done;
    mag_norm out
  end

(* single-limb division by d < 2^31, two half-limb steps per limb:
   returns (quotient mag, remainder int) *)
let mag_divmod_1 a d =
  assert (d > 0 && d <= hmask);
  let n = Array.length a in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let ai = a.(i) in
    let hi = (!r lsl half) lor (ai lsr half) in
    let qh = hi / d in
    let r1 = hi mod d in
    let lo = (r1 lsl half) lor (ai land hmask) in
    let ql = lo / d in
    r := lo mod d;
    q.(i) <- (qh lsl half) lor ql
  done;
  (mag_norm q, !r)

(* 30-bit division kernel.  Knuth's Algorithm D needs two-limb
   numerators (2*limb_bits + 1 bits of headroom), which 62-bit limbs
   do not leave in a native int, so quotients are computed on a 30-bit
   repacked view and repacked back.  Division is far off the hot path
   (Montgomery replaced it everywhere that matters). *)
module D30 = struct
  let bits = 30
  let base = 1 lsl bits
  let msk = base - 1

  let shl_small a s =
    if s = 0 || Array.length a = 0 then Array.copy a
    else begin
      let n = Array.length a in
      let out = Array.make (n + 1) 0 in
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let v = (a.(i) lsl s) lor !carry in
        out.(i) <- v land msk;
        carry := v lsr bits
      done;
      out.(n) <- !carry;
      mag_norm out
    end

  let shr_small a s =
    if s = 0 || Array.length a = 0 then Array.copy a
    else begin
      let n = Array.length a in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let v = a.(i) lsr s in
        let hi = if i + 1 < n then (a.(i + 1) lsl (bits - s)) land msk else 0 in
        out.(i) <- v lor hi
      done;
      mag_norm out
    end

  let divmod_1 a d =
    assert (d > 0 && d < base);
    let n = Array.length a in
    let q = Array.make n 0 in
    let r = ref 0 in
    for i = n - 1 downto 0 do
      let cur = (!r lsl bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (mag_norm q, !r)

  (* Knuth Algorithm D on 30-bit limbs.  Returns (quotient, remainder). *)
  let divmod u v =
    let n = Array.length v in
    if n = 0 then raise Division_by_zero;
    if mag_cmp u v < 0 then ([||], Array.copy u)
    else if n = 1 then begin
      let q, r = divmod_1 u v.(0) in
      (q, if r = 0 then [||] else [| r |])
    end
    else begin
      (* normalise so that the top limb of v is >= base/2 *)
      let s =
        let rec go s top = if top land (base lsr 1) <> 0 then s else go (s + 1) (top lsl 1) in
        go 0 v.(n - 1)
      in
      let vn = shl_small v s in
      let vn = if Array.length vn < n then Array.append vn (Array.make (n - Array.length vn) 0) else vn in
      let un0 = shl_small u s in
      let m = Array.length u - n in
      (* u buffer with one extra high limb *)
      let un = Array.make (Array.length u + 1) 0 in
      Array.blit un0 0 un 0 (Array.length un0);
      let q = Array.make (m + 1) 0 in
      let vtop = vn.(n - 1) and vsec = vn.(n - 2) in
      for j = m downto 0 do
        let num = (un.(j + n) lsl bits) lor un.(j + n - 1) in
        let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
        let continue = ref true in
        while
          !continue
          && (!qhat >= base || !qhat * vsec > (!rhat lsl bits) lor un.(j + n - 2))
        do
          decr qhat;
          rhat := !rhat + vtop;
          if !rhat >= base then continue := false
        done;
        (* multiply and subtract *)
        let k = ref 0 in
        for i = 0 to n - 1 do
          let p = !qhat * vn.(i) in
          let t = un.(i + j) - !k - (p land msk) in
          un.(i + j) <- t land msk;
          k := (p lsr bits) - (t asr bits)
        done;
        let t = un.(j + n) - !k in
        un.(j + n) <- t land msk;
        if t < 0 then begin
          (* overestimated by one: add v back *)
          decr qhat;
          let carry = ref 0 in
          for i = 0 to n - 1 do
            let s2 = un.(i + j) + vn.(i) + !carry in
            un.(i + j) <- s2 land msk;
            carry := s2 lsr bits
          done;
          un.(j + n) <- (un.(j + n) + !carry) land msk
        end;
        q.(j) <- !qhat
      done;
      let r = shr_small (mag_norm (Array.sub un 0 n)) s in
      (mag_norm q, r)
    end

  let of62 a = repack ~src_bits:limb_bits ~dst_bits:bits a
  let to62 a = repack ~src_bits:bits ~dst_bits:limb_bits a
end

(* Returns (quotient, remainder) magnitudes. *)
let mag_divmod u v =
  let n = Array.length v in
  if n = 0 then raise Division_by_zero;
  if mag_cmp u v < 0 then ([||], Array.copy u)
  else if n = 1 && v.(0) <= hmask then begin
    let q, r = mag_divmod_1 u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    let q, r = D30.divmod (D30.of62 u) (D30.of62 v) in
    (D30.to62 q, D30.to62 r)
  end

(* ------------------------------------------------------------------ *)
(* Signed layer                                                         *)
(* ------------------------------------------------------------------ *)

let make sign mag =
  let mag = mag_norm mag in
  if Array.length mag = 0 then { sign = 0; mag = [||] } else { sign; mag }

let zero = { sign = 0; mag = [||] }

let of_int x =
  if x = 0 then zero
  else begin
    let sign = if x < 0 then -1 else 1 in
    (* abs min_int = min_int, but limb extraction via land/lsr reads
       its bit pattern as the unsigned 2^62, which is exactly |x| *)
    let x = abs x in
    let rec limbs x = if x = 0 then [] else (x land mask) :: limbs (x lsr limb_bits) in
    { sign; mag = Array.of_list (limbs x) }
  end

let one = of_int 1
let two = of_int 2

let fits_int t =
  (* native int holds magnitudes up to 2^62 - 1 = one full limb *)
  Array.length t.mag <= 1

let to_int t =
  if not (fits_int t) then failwith "Bigint.to_int: overflow";
  if Array.length t.mag = 0 then 0 else t.sign * t.mag.(0)

let sign t = t.sign
let is_zero t = t.sign = 0
let is_one t = t.sign = 1 && Array.length t.mag = 1 && t.mag.(0) = 1
let is_even t = t.sign = 0 || t.mag.(0) land 1 = 0
let neg t = if t.sign = 0 then zero else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_cmp a.mag b.mag
  else mag_cmp b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let bit_length t =
  let n = Array.length t.mag in
  if n = 0 then 0
  else begin
    let top = t.mag.(n - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + bits top 0
  end

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else begin
    let c = mag_cmp a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (mag_sub a.mag b.mag)
    else make b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mag_mul a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let qm, rm = mag_divmod a.mag b.mag in
  let q = make (a.sign * b.sign) qm in
  let r = make a.sign rm in
  (q, r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let erem a b =
  let r = rem a b in
  if r.sign < 0 then add r (abs b) else r

let shift_left t k =
  if k < 0 then invalid_arg "Bigint.shift_left: negative shift";
  if t.sign = 0 then zero
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    make t.sign (mag_shl_small (mag_shift_limbs t.mag limbs) bits)
  end

let shift_right t k =
  if k < 0 then invalid_arg "Bigint.shift_right: negative shift";
  if t.sign = 0 then zero
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length t.mag in
    if limbs >= n then zero
    else make t.sign (mag_shr_small (Array.sub t.mag limbs (n - limbs)) bits)
  end

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else go (if e land 1 = 1 then mul acc b else acc) (mul b b) (e lsr 1)
  in
  go one b e

let addmod a b m = erem (add a b) m
let mulmod a b m = erem (mul a b) m

(* ------------------------------------------------------------------ *)
(* Montgomery arithmetic                                               *)
(* ------------------------------------------------------------------ *)

(* Montgomery multiplication: 2-way blocked delayed-carry product
   scanning.

   The kernel works on a repacked 29-bit limb view of the 62-bit
   representation.  A 29-bit partial product fits in 58 bits, which
   leaves 5 bits of headroom in a native 63-bit int: columns can
   accumulate raw (uncarried) product sums for several outer
   iterations, with a short carry-flush pass restoring headroom every
   6 outer pairs and one final pass canonicalizing the result.  That
   removes the serial carry chain that rate-limits a carry-per-step
   kernel (the retired 30-bit one, kept below as {!Narrow}): the inner
   loop is independent multiplies and adds that a superscalar core can
   overlap freely.

   The 2-way blocking processes two columns of [b] (and their two mu
   reductions) per outer pass, so each inner-loop iteration touches
   [tbuf] once for four products — halving load/store traffic per
   product relative to the single-column form, which measured at only
   ~1.1x over the 30-bit kernel; the blocked form measures ~1.4-1.5x
   (interleaved A/B medians; see DESIGN.md).

   (The obvious alternative — single-pass CIOS directly on 62-bit
   limbs with split 31-bit half-limb partial products — was built and
   measured first: 8 multiplies plus ~30 masked adds per 62-bit
   column comes out at op-count parity with the 30-bit kernel and
   loses ~15% to its longer dependency chains.)

   Column-sum bound, l-independent thanks to the flush: between
   flushes a column receives at most 6 pairs x 4 products
   <= 24*(2^29-1)^2 < 2^63 - 2^59, plus a flush residue (< 2^29), at
   most one flush tail carry and two fold carries (each < 2^35) —
   comfortably inside 63 bits for any modulus size. *)
module Mont = struct
  let kbits = 29
  let kbase = 1 lsl kbits
  let kmask = kbase - 1

  (* the overflow bound is l-independent; this guard only bounds
     precomputation and scratch allocation to something sane *)
  let max_limbs = 4096

  type ctx = {
    m_big : t;          (* the modulus, as a bigint *)
    mm : int array;     (* modulus in 62-bit limbs, for range checks *)
    km : int array;     (* modulus in kernel (29-bit) limbs, length l *)
    l : int;            (* kernel limb count; always even (2-way blocking) *)
    m' : int;           (* -m^-1 mod 2^29 *)
    r2 : int array;     (* R^2 mod m, kernel limbs; R = 2^(29l) *)
    one_m : int array;  (* R mod m: Montgomery form of 1 *)
    unit_arr : int array;  (* plain 1, for conversion out of Mont form *)
  }

  let to_kernel a = repack ~src_bits:limb_bits ~dst_bits:kbits a
  let of_kernel a = make 1 (repack ~src_bits:kbits ~dst_bits:limb_bits a)

  let create m =
    if m.sign <= 0 || is_even m || (Array.length m.mag = 1 && m.mag.(0) < 3) then
      invalid_arg "Bigint.Mont.create: modulus must be odd and >= 3";
    let km0 = to_kernel m.mag in
    (* limb-count rounding, two constraints: R = 2^(29l) must satisfy
       R >= 4m (the almost-Montgomery invariant below needs two spare
       bits), and l must be even (the 2-way blocked pass consumes two
       b-columns per iteration).  Zero top limbs of m are harmless —
       they only make R larger than strictly needed. *)
    let l =
      let n = Array.length km0 in
      let n = if bit_length m > (kbits * n) - 2 then n + 1 else n in
      if n land 1 = 1 then n + 1 else n
    in
    if l > max_limbs then invalid_arg "Bigint.Mont.create: modulus too large";
    let pad a =
      if Array.length a = l then a
      else Array.append a (Array.make (l - Array.length a) 0)
    in
    let km = pad km0 in
    (* Newton iteration for m0^-1 mod 2^29 (m0 odd), then negate;
       precision doubles per step: 2, 4, 8, 16, 32 > 29 bits *)
    let m0 = km.(0) in
    let x = ref 1 in
    for _ = 1 to 5 do
      x := (!x * (2 - (m0 * !x))) land kmask
    done;
    let m' = (kbase - !x) land kmask in
    let r = shift_left one (l * kbits) in
    let r2 = pad (to_kernel (erem (mul r r) m).mag) in
    let one_m = pad (to_kernel (erem r m).mag) in
    let unit_arr = Array.make l 0 in
    unit_arr.(0) <- 1;
    { m_big = m; mm = Array.copy m.mag; km; l; m'; r2; one_m; unit_arr }

  let modulus ctx = ctx.m_big

  (* 62-bit magnitude (already < m) to a padded kernel-format operand *)
  let pad ctx a =
    let k = to_kernel a in
    if Array.length k = ctx.l then k
    else Array.append k (Array.make (ctx.l - Array.length k) 0)

  (* dst <- a * b * R^-1 mod m, operands in kernel format padded to l
     limbs (l even).  [tbuf] is a 2l+1 column buffer; [dst] may alias
     [a] or [b] (columns live in [tbuf]; [dst] is only written at the
     end).  Unsafe accesses: every index is bounded by 2l, and
     operands are padded to exactly [l] limbs before we get here.

     Each outer pass consumes the column pair (i, i+1) of [b].  mu0 is
     fixed from the low 29 bits of raw column i (exact sums have exact
     low bits); column i+1 then receives every one of its remaining
     contributions — the fold carry of column i, a1*bi0, mu0*m1 and
     a0*bi1 — before mu1 is read off it.  The fused inner loop adds
     all four products a[j]*bi0 + mu0*m[j] + a[j-1]*bi1 + mu1*m[j-1]
     to column i+j in a single load/store.  Columns i and i+1 end
     ≡ 0 mod 2^29 by choice of mu and are dead after their fold
     carries move up; every 6 pairs a short flush pass re-normalizes
     the live window to keep raw sums inside 63 bits (bound in the
     module comment).  One final carry pass canonicalizes columns
     l..2l, which hold t < 2m. *)
  let mont_mul_into ctx tbuf dst a b =
    let l = ctx.l and km = ctx.km and m' = ctx.m' in
    Array.fill tbuf 0 ((2 * l) + 1) 0;
    let npairs = l / 2 in
    let a0 = Array.unsafe_get a 0 and m0 = Array.unsafe_get km 0 in
    for p = 0 to npairs - 1 do
      let i = 2 * p in
      let bi0 = Array.unsafe_get b i and bi1 = Array.unsafe_get b (i + 1) in
      let t0 = Array.unsafe_get tbuf i + (a0 * bi0) in
      let mu0 = (t0 * m') land kmask in
      let f0 = (t0 + (mu0 * m0)) lsr kbits in
      let t1 =
        Array.unsafe_get tbuf (i + 1) + f0
        + (Array.unsafe_get a 1 * bi0)
        + (mu0 * Array.unsafe_get km 1)
        + (a0 * bi1)
      in
      let mu1 = (t1 * m') land kmask in
      let f1 = (t1 + (mu1 * m0)) lsr kbits in
      Array.unsafe_set tbuf (i + 2) (Array.unsafe_get tbuf (i + 2) + f1);
      for j = 2 to l - 1 do
        let idx = i + j in
        Array.unsafe_set tbuf idx
          (Array.unsafe_get tbuf idx
          + (Array.unsafe_get a j * bi0)
          + (mu0 * Array.unsafe_get km j)
          + (Array.unsafe_get a (j - 1) * bi1)
          + (mu1 * Array.unsafe_get km (j - 1)))
      done;
      let idx = i + l in
      Array.unsafe_set tbuf idx
        (Array.unsafe_get tbuf idx
        + (Array.unsafe_get a (l - 1) * bi1)
        + (mu1 * Array.unsafe_get km (l - 1)));
      if (p + 1) mod 6 = 0 && p < npairs - 1 then begin
        (* flush: re-normalize the live window i+2..i+l+1 so columns
           can keep absorbing raw products without overflow *)
        let c = ref 0 in
        for k = i + 2 to i + l + 1 do
          let v = Array.unsafe_get tbuf k + !c in
          Array.unsafe_set tbuf k (v land kmask);
          c := v lsr kbits
        done;
        Array.unsafe_set tbuf (i + l + 2)
          (Array.unsafe_get tbuf (i + l + 2) + !c)
      end
    done;
    (* single carry pass over the shifted result columns l..2l-1,
       written straight into dst.  Almost-Montgomery: the result is
       only guaranteed < 2m (not < m).  Because R >= 4m, the invariant
       "operands < 2m => result < 2m" is self-sustaining:
       t = (a*b + mu*m)/R < (4m^2 + R*m)/R = m*(4m/R + 1) <= 2m, and
       2m < R means the top column 2l stays zero.  No compare, no
       conditional subtract, no blit — callers canonicalize once at
       API boundaries with [canon]. *)
    let c = ref 0 in
    for j = 0 to l - 1 do
      let v = Array.unsafe_get tbuf (l + j) + !c in
      Array.unsafe_set dst j (v land kmask);
      c := v lsr kbits
    done

  (* reduce a kernel-format value < 2m into [0, m), in place *)
  let canon ctx dst =
    let l = ctx.l and km = ctx.km in
    let ge =
      let rec go j =
        if j < 0 then true
        else if dst.(j) <> km.(j) then dst.(j) > km.(j)
        else go (j - 1)
      in
      go (l - 1)
    in
    if ge then begin
      let borrow = ref 0 in
      for j = 0 to l - 1 do
        let d = Array.unsafe_get dst j - Array.unsafe_get km j - !borrow in
        Array.unsafe_set dst j (d land kmask);
        borrow := d lsr 62 (* 1 iff the subtraction went negative *)
      done
    end

  let scratch ctx = Array.make ((2 * ctx.l) + 1) 0

  let to_mont ctx x =
    let x = erem x ctx.m_big in
    let dst = Array.make ctx.l 0 in
    mont_mul_into ctx (scratch ctx) dst (pad ctx x.mag) ctx.r2;
    canon ctx dst;
    of_kernel dst

  let of_mont ctx x =
    if x.sign < 0 || mag_cmp x.mag ctx.mm >= 0 then
      invalid_arg "Bigint.Mont.of_mont: value out of range";
    let dst = Array.make ctx.l 0 in
    mont_mul_into ctx (scratch ctx) dst (pad ctx x.mag) ctx.unit_arr;
    canon ctx dst;
    of_kernel dst

  let one_mont ctx = of_kernel ctx.one_m

  let mulmod ctx a b =
    if a.sign < 0 || b.sign < 0 || mag_cmp a.mag ctx.mm >= 0 || mag_cmp b.mag ctx.mm >= 0
    then invalid_arg "Bigint.Mont.mulmod: operands out of range";
    let dst = Array.make ctx.l 0 in
    mont_mul_into ctx (scratch ctx) dst (pad ctx a.mag) (pad ctx b.mag);
    canon ctx dst;
    of_kernel dst

  (* 4-bit window of |e| starting at bit 4j *)
  let window e j =
    let pos = 4 * j in
    let limb = pos / limb_bits and off = pos mod limb_bits in
    let mag = e.mag in
    let len = Array.length mag in
    let v = if limb < len then mag.(limb) lsr off else 0 in
    let v =
      if off + 4 > limb_bits && limb + 1 < len then
        v lor (mag.(limb + 1) lsl (limb_bits - off))
      else v
    in
    v land 15

  (* [len]-bit field of a magnitude starting at bit [pos]; len <= 5 *)
  let bitfield mag pos len =
    let limb = pos / limb_bits and off = pos mod limb_bits in
    let n = Array.length mag in
    let v = if limb < n then Array.unsafe_get mag limb lsr off else 0 in
    let v =
      if off + len > limb_bits && limb + 1 < n then
        v lor (Array.unsafe_get mag (limb + 1) lsl (limb_bits - off))
      else v
    in
    v land ((1 lsl len) - 1)

  (* Sliding 5-bit odd windows rather than fixed 4-bit windows: the
     precomputed table holds only the 16 odd powers b^1, b^3, ..,
     b^31, and runs of zero bits between windows cost squarings only.
     For a 512-bit exponent this is ~17 table + ~87 window products
     against 14 + ~120 for the fixed ladder — about 4% of the whole
     exponentiation, which the 1.4x kernel budget cares about. *)
  let powmod ctx b e =
    if sign e < 0 then invalid_arg "Bigint.Mont.powmod: negative exponent";
    let b = erem b ctx.m_big in
    let ebits = bit_length e in
    if ebits = 0 then one
    else begin
      let l = ctx.l in
      let tbuf = scratch ctx in
      let mag = e.mag in
      let bm = Array.make l 0 in
      mont_mul_into ctx tbuf bm (pad ctx b.mag) ctx.r2;
      (* tbl.(k) = b^(2k+1) in Montgomery form *)
      let tsize = if ebits >= 5 then 16 else 1 lsl (ebits - 1) in
      let tbl = Array.make tsize bm in
      if tsize > 1 then begin
        let b2 = Array.make l 0 in
        mont_mul_into ctx tbuf b2 bm bm;
        for k = 1 to tsize - 1 do
          let d = Array.make l 0 in
          mont_mul_into ctx tbuf d tbl.(k - 1) b2;
          tbl.(k) <- d
        done
      end;
      (* widest odd window [s..i] (width <= 5) below set bit i *)
      let wstart i =
        let s = ref (if i >= 4 then i - 4 else 0) in
        while bitfield mag !s 1 = 0 do incr s done;
        !s
      in
      let acc = Array.make l 0 in
      let i = ref (ebits - 1) in
      let s = wstart !i in
      Array.blit tbl.(bitfield mag s (!i - s + 1) lsr 1) 0 acc 0 l;
      i := s - 1;
      while !i >= 0 do
        if bitfield mag !i 1 = 0 then begin
          mont_mul_into ctx tbuf acc acc acc;
          decr i
        end
        else begin
          let s = wstart !i in
          for _ = 1 to !i - s + 1 do
            mont_mul_into ctx tbuf acc acc acc
          done;
          mont_mul_into ctx tbuf acc acc tbl.(bitfield mag s (!i - s + 1) lsr 1);
          i := s - 1
        end
      done;
      let dst = Array.make l 0 in
      mont_mul_into ctx tbuf dst acc ctx.unit_arr;
      canon ctx dst;
      of_kernel dst
    end

  (* Fixed-base exponentiation: for a base reused across many
     exponentiations, precompute g^(w * 16^j) for every window value w
     and position j.  An exponentiation is then just ~bits/4 Montgomery
     products and no squarings.  The table grows on demand with the
     largest exponent seen. *)
  type fixed_base = {
    fb_ctx : ctx;
    mutable fb_windows : int array array array;
        (* fb_windows.(j).(w-1) = base^(w * 16^j), Montgomery form *)
    mutable fb_next : int array;  (* base^(16^nwindows), Montgomery form *)
  }

  let fixed_base ctx b =
    let b = erem b ctx.m_big in
    let bm = Array.make ctx.l 0 in
    mont_mul_into ctx (scratch ctx) bm (pad ctx b.mag) ctx.r2;
    { fb_ctx = ctx; fb_windows = [||]; fb_next = bm }

  let fb_extend fb nw =
    let ctx = fb.fb_ctx in
    let l = ctx.l in
    let tbuf = scratch ctx in
    while Array.length fb.fb_windows < nw do
      let p = fb.fb_next in
      let row = Array.make 15 p in
      row.(0) <- Array.copy p;
      for w = 2 to 15 do
        let d = Array.make l 0 in
        mont_mul_into ctx tbuf d row.(w - 2) p;
        row.(w - 1) <- d
      done;
      let next = Array.make l 0 in
      mont_mul_into ctx tbuf next row.(14) p;
      fb.fb_windows <- Array.append fb.fb_windows [| row |];
      fb.fb_next <- next
    done

  (* The window table grows in place: racy if a fixed base is shared
     across domains.  Growing it up front for the largest exponent that
     will be seen makes subsequent [fixed_powmod] calls read-only. *)
  let preload fb ~bits =
    if bits < 0 then invalid_arg "Bigint.Mont.preload: negative bits";
    fb_extend fb ((bits + 3) / 4)

  let fixed_powmod fb e =
    if sign e < 0 then invalid_arg "Bigint.Mont.fixed_powmod: negative exponent";
    let ctx = fb.fb_ctx in
    let ebits = bit_length e in
    if ebits = 0 then one
    else begin
      let nw = (ebits + 3) / 4 in
      fb_extend fb nw;
      let tbuf = scratch ctx in
      let acc = Array.copy ctx.one_m in
      for j = 0 to nw - 1 do
        let w = window e j in
        if w <> 0 then mont_mul_into ctx tbuf acc acc fb.fb_windows.(j).(w - 1)
      done;
      let dst = Array.make ctx.l 0 in
      mont_mul_into ctx tbuf dst acc ctx.unit_arr;
      canon ctx dst;
      of_kernel dst
    end

  (* The retired 30-bit CIOS kernel, kept verbatim (on a repacked
     30-bit limb view) as the benchmark baseline and as a cross-check
     oracle for the 62-bit kernel: [bench time] measures both on the
     same inputs, and the backend-equality property tests compare
     their powmods at 512/1024/2048 bits. *)
  module Narrow = struct
    let nbits = 30
    let nbase = 1 lsl nbits
    let nmask = nbase - 1

    type nctx = {
      n_big : t;
      nmm : int array;
      nl : int;
      nm' : int;
      nr2 : int array;
      none_m : int array;
      nunit : int array;
    }

    type ctx = nctx

    let of30 a = make 1 (repack ~src_bits:nbits ~dst_bits:limb_bits a)

    let create m =
      if m.sign <= 0 || is_even m || (Array.length m.mag = 1 && m.mag.(0) < 3) then
        invalid_arg "Bigint.Mont.Narrow.create: modulus must be odd and >= 3";
      let nmm = repack ~src_bits:limb_bits ~dst_bits:nbits m.mag in
      let nl = Array.length nmm in
      let pad a =
        if Array.length a = nl then a
        else Array.append a (Array.make (nl - Array.length a) 0)
      in
      let m0 = nmm.(0) in
      let x = ref 1 in
      for _ = 1 to 5 do
        x := (!x * (2 - (m0 * !x))) land nmask
      done;
      let nm' = (nbase - !x) land nmask in
      let r = shift_left one (nl * nbits) in
      let nr2 = pad (repack ~src_bits:limb_bits ~dst_bits:nbits (erem (mul r r) m).mag) in
      let none_m = pad (repack ~src_bits:limb_bits ~dst_bits:nbits (erem r m).mag) in
      let nunit = Array.make nl 0 in
      nunit.(0) <- 1;
      { n_big = m; nmm; nl; nm'; nr2; none_m; nunit }

    let modulus ctx = ctx.n_big

    let npad ctx a =
      if Array.length a = ctx.nl then a
      else Array.append a (Array.make (ctx.nl - Array.length a) 0)

    let mont_mul_into ctx tbuf dst a b =
      let l = ctx.nl and mm = ctx.nmm and m' = ctx.nm' in
      Array.fill tbuf 0 (l + 2) 0;
      for i = 0 to l - 1 do
        let bi = Array.unsafe_get b i in
        let t0 = Array.unsafe_get tbuf 0 + (Array.unsafe_get a 0 * bi) in
        let mu = (t0 * m') land nmask in
        let c = ref ((t0 + (mu * Array.unsafe_get mm 0)) lsr nbits) in
        for j = 1 to l - 1 do
          let p =
            Array.unsafe_get tbuf j
            + (Array.unsafe_get a j * bi)
            + (mu * Array.unsafe_get mm j)
          in
          let p = p + !c in
          Array.unsafe_set tbuf (j - 1) (p land nmask);
          c := p lsr nbits
        done;
        let p = Array.unsafe_get tbuf l + !c in
        Array.unsafe_set tbuf (l - 1) (p land nmask);
        Array.unsafe_set tbuf l (Array.unsafe_get tbuf (l + 1) + (p lsr nbits));
        Array.unsafe_set tbuf (l + 1) 0
      done;
      let ge =
        tbuf.(l) > 0
        ||
        let rec go i =
          if i < 0 then true
          else if tbuf.(i) <> mm.(i) then tbuf.(i) > mm.(i)
          else go (i - 1)
        in
        go (l - 1)
      in
      if ge then begin
        let borrow = ref 0 in
        for j = 0 to l - 1 do
          let d = Array.unsafe_get tbuf j - Array.unsafe_get mm j - !borrow in
          if d < 0 then begin
            Array.unsafe_set dst j (d + nbase);
            borrow := 1
          end
          else begin
            Array.unsafe_set dst j d;
            borrow := 0
          end
        done
      end
      else Array.blit tbuf 0 dst 0 l

    let scratch ctx = Array.make (ctx.nl + 2) 0

    (* 4-bit window of a 30-bit limb magnitude starting at bit 4j *)
    let window30 mag j =
      let pos = 4 * j in
      let limb = pos / nbits and off = pos mod nbits in
      let len = Array.length mag in
      let v = if limb < len then mag.(limb) lsr off else 0 in
      let v =
        if off + 4 > nbits && limb + 1 < len then
          v lor (mag.(limb + 1) lsl (nbits - off))
        else v
      in
      v land 15

    let mulmod ctx a b =
      if a.sign < 0 || b.sign < 0 || compare a ctx.n_big >= 0 || compare b ctx.n_big >= 0
      then invalid_arg "Bigint.Mont.Narrow.mulmod: operands out of range";
      let dst = Array.make ctx.nl 0 in
      mont_mul_into ctx (scratch ctx) dst
        (npad ctx (repack ~src_bits:limb_bits ~dst_bits:nbits a.mag))
        (npad ctx (repack ~src_bits:limb_bits ~dst_bits:nbits b.mag));
      of30 dst

    let powmod ctx b e =
      if sign e < 0 then invalid_arg "Bigint.Mont.Narrow.powmod: negative exponent";
      let b = erem b ctx.n_big in
      let ebits = bit_length e in
      if ebits = 0 then one
      else begin
        let l = ctx.nl in
        let e30 = repack ~src_bits:limb_bits ~dst_bits:nbits e.mag in
        let tbuf = scratch ctx in
        let bm = Array.make l 0 in
        mont_mul_into ctx tbuf bm
          (npad ctx (repack ~src_bits:limb_bits ~dst_bits:nbits b.mag))
          ctx.nr2;
        let tbl = Array.make 16 ctx.none_m in
        tbl.(1) <- bm;
        for w = 2 to 15 do
          let d = Array.make l 0 in
          mont_mul_into ctx tbuf d tbl.(w - 1) bm;
          tbl.(w) <- d
        done;
        let nw = (ebits + 3) / 4 in
        let acc = Array.make l 0 in
        Array.blit tbl.(window30 e30 (nw - 1)) 0 acc 0 l;
        for j = nw - 2 downto 0 do
          for _ = 1 to 4 do
            mont_mul_into ctx tbuf acc acc acc
          done;
          let w = window30 e30 j in
          if w <> 0 then mont_mul_into ctx tbuf acc acc tbl.(w)
        done;
        let dst = Array.make l 0 in
        mont_mul_into ctx tbuf dst acc ctx.nunit;
        of30 dst
      end
  end
end

let powmod_naive b e m =
  if m.sign <= 0 then invalid_arg "Bigint.powmod: modulus must be positive";
  if sign e < 0 then invalid_arg "Bigint.powmod: negative exponent";
  if is_one m then zero
  else begin
    let b = ref (erem b m) and acc = ref one and e = ref e in
    while not (is_zero !e) do
      if not (is_even !e) then acc := mulmod !acc !b m;
      b := mulmod !b !b m;
      e := shift_right !e 1
    done;
    !acc
  end

(* Montgomery pays for its context setup (two divisions) as soon as the
   exponent has more than a few windows; below that, for tiny moduli,
   or for even moduli where Montgomery does not apply, fall back to
   square-and-multiply.  The 30-bit cutoff matches the old two-limb
   rule from the 30-bit-limb era. *)
let powmod b e m =
  if m.sign <= 0 then invalid_arg "Bigint.powmod: modulus must be positive";
  if sign e < 0 then invalid_arg "Bigint.powmod: negative exponent";
  if is_one m then zero
  else if (not (is_even m)) && bit_length m > 30 && bit_length e > 8 then
    Mont.powmod (Mont.create m) b e
  else powmod_naive b e m

let rec gcd a b = if is_zero b then abs a else gcd b (rem a b)

let extended_gcd a b =
  (* invariant: r = a*x + b*y at each step *)
  let rec go r0 x0 y0 r1 x1 y1 =
    if is_zero r1 then (r0, x0, y0)
    else begin
      let q, r2 = divmod r0 r1 in
      go r1 x1 y1 r2 (sub x0 (mul q x1)) (sub y0 (mul q y1))
    end
  in
  let g, x, y = go a one zero b zero one in
  if g.sign < 0 then (neg g, neg x, neg y) else (g, x, y)

let invmod a m =
  let g, x, _ = extended_gcd (erem a m) m in
  if not (is_one g) then raise Division_by_zero;
  erem x m

let factorial n =
  if n < 0 then invalid_arg "Bigint.factorial: negative argument";
  let acc = ref one in
  for i = 2 to n do
    acc := mul !acc (of_int i)
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Multi-exponentiation                                                 *)
(* ------------------------------------------------------------------ *)

(* prod_i b_i^{e_i} mod m, sharing the squaring chain across all bases.
   A product of k independent window exponentiations costs about
   k*(bits + bits/4) Montgomery products; interleaving (Straus) pays
   the bits squarings once, and bucketing (Pippenger) additionally
   drops the per-base window tables — the classic trade-off from
   multi-scalar multiplication, applied here to the Lagrange
   combination of threshold Paillier partials (few bases, huge
   Delta-scaled exponents => Straus) and batched commitment checks
   (many bases, short exponents => Pippenger). *)
module Multiexp = struct
  (* c-bit digit of a magnitude starting at bit [pos]; c <= 16 so a
     digit spans at most two 62-bit limbs *)
  let digit mag pos c =
    let limb = pos / limb_bits and off = pos mod limb_bits in
    let len = Array.length mag in
    let v = if limb < len then mag.(limb) lsr off else 0 in
    let v =
      if off + c > limb_bits && limb + 1 < len then
        v lor (mag.(limb + 1) lsl (limb_bits - off))
      else v
    in
    v land ((1 lsl c) - 1)

  (* drop zero exponents, flip negative ones through the inverse, and
     convert the bases to Montgomery form *)
  let normalize ctx pairs =
    let m = ctx.Mont.m_big in
    let tbuf = Mont.scratch ctx in
    let keep =
      List.filter_map
        (fun (b, e) ->
          if is_zero e then None
          else begin
            let b, e = if sign e < 0 then (invmod b m, neg e) else (b, e) in
            let b = erem b m in
            let bm = Array.make ctx.Mont.l 0 in
            Mont.mont_mul_into ctx tbuf bm (Mont.pad ctx b.mag) ctx.Mont.r2;
            Some (bm, e)
          end)
        (Array.to_list pairs)
    in
    Array.of_list keep

  let max_bits ps = Array.fold_left (fun acc (_, e) -> Stdlib.max acc (bit_length e)) 0 ps

  let finish ctx acc =
    let dst = Array.make ctx.Mont.l 0 in
    Mont.mont_mul_into ctx (Mont.scratch ctx) dst acc ctx.Mont.unit_arr;
    Mont.canon ctx dst;
    Mont.of_kernel dst

  (* reference: independent powmods folded into one product *)
  let naive ctx pairs =
    let m = ctx.Mont.m_big in
    Array.fold_left
      (fun acc (b, e) ->
        let b, e = if sign e < 0 then (invmod b m, neg e) else (b, e) in
        mulmod acc (Mont.powmod ctx b e) m)
      one pairs

  (* Straus interleaving: per-base window tables, one shared squaring
     chain.  Window width adapts to the exponent size — short
     exponents cannot amortize a large table. *)
  let straus ctx pairs =
    let ps = normalize ctx pairs in
    if Array.length ps = 0 then one
    else begin
      let l = ctx.Mont.l in
      let tbuf = Mont.scratch ctx in
      let bits = max_bits ps in
      let c = if bits <= 16 then 2 else if bits <= 64 then 3 else 4 in
      let tsize = (1 lsl c) - 1 in
      let tables =
        Array.map
          (fun (bm, _) ->
            let row = Array.make tsize bm in
            for w = 2 to tsize do
              let d = Array.make l 0 in
              Mont.mont_mul_into ctx tbuf d row.(w - 2) bm;
              row.(w - 1) <- d
            done;
            row)
          ps
      in
      let nw = (bits + c - 1) / c in
      let acc = Array.copy ctx.Mont.one_m in
      for j = nw - 1 downto 0 do
        if j < nw - 1 then
          for _ = 1 to c do
            Mont.mont_mul_into ctx tbuf acc acc acc
          done;
        Array.iteri
          (fun i (_, e) ->
            let w = digit e.mag (j * c) c in
            if w <> 0 then Mont.mont_mul_into ctx tbuf acc acc tables.(i).(w - 1))
          ps
      done;
      finish ctx acc
    end

  (* Pippenger bucketing: no per-base tables; each digit position
     sorts bases into 2^c - 1 buckets and aggregates them with the
     suffix-product trick (sum_d d*B_d as a running product). *)
  let pippenger ctx pairs =
    let ps = normalize ctx pairs in
    if Array.length ps = 0 then one
    else begin
      let l = ctx.Mont.l in
      let tbuf = Mont.scratch ctx in
      let bits = max_bits ps in
      let npairs = Array.length ps in
      (* pick c minimizing (bits/c) * (npairs + 2^(c+1)) *)
      let cost c =
        ((bits + c - 1) / c) * (npairs + (1 lsl (c + 1)))
      in
      let c = ref 2 in
      for cand = 3 to 12 do
        if cost cand < cost !c then c := cand
      done;
      let c = !c in
      let nbuckets = (1 lsl c) - 1 in
      let buckets = Array.init nbuckets (fun _ -> Array.make l 0) in
      let occupied = Array.make nbuckets false in
      let run = Array.make l 0 and sum = Array.make l 0 in
      let acc = Array.copy ctx.Mont.one_m in
      let nw = (bits + c - 1) / c in
      for j = nw - 1 downto 0 do
        if j < nw - 1 then
          for _ = 1 to c do
            Mont.mont_mul_into ctx tbuf acc acc acc
          done;
        Array.fill occupied 0 nbuckets false;
        Array.iter
          (fun (bm, e) ->
            let d = digit e.mag (j * c) c in
            if d > 0 then
              if occupied.(d - 1) then
                Mont.mont_mul_into ctx tbuf buckets.(d - 1) buckets.(d - 1) bm
              else begin
                Array.blit bm 0 buckets.(d - 1) 0 l;
                occupied.(d - 1) <- true
              end)
          ps;
        Array.blit ctx.Mont.one_m 0 run 0 l;
        Array.blit ctx.Mont.one_m 0 sum 0 l;
        for b = nbuckets - 1 downto 0 do
          if occupied.(b) then Mont.mont_mul_into ctx tbuf run run buckets.(b);
          if b < nbuckets - 1 || occupied.(b) then
            Mont.mont_mul_into ctx tbuf sum sum run
        done;
        Mont.mont_mul_into ctx tbuf acc acc sum
      done;
      finish ctx acc
    end

  let run ctx pairs = if Array.length pairs >= 64 then pippenger ctx pairs else straus ctx pairs
end

(* ------------------------------------------------------------------ *)
(* Conversions                                                          *)
(* ------------------------------------------------------------------ *)

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let negv = s.[0] = '-' in
  let start = if negv || s.[0] = '+' then 1 else 0 in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if negv then neg !acc else !acc

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    (* extract 9 decimal digits at a time via single-limb division;
       the chunk 10^9 < 2^31 is a valid half-limb divisor *)
    let chunk = 1_000_000_000 in
    let rec go mag acc =
      if Array.length mag = 0 then acc
      else begin
        let q, r = mag_divmod_1 mag chunk in
        go q (r :: acc)
      end
    in
    let parts = go t.mag [] in
    (match parts with
    | [] -> assert false
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "%09d" p)) rest);
    (if t.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_hex s =
  let acc = ref zero in
  let sixteen = of_int 16 in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg "Bigint.of_hex: bad digit"
      in
      acc := add (mul !acc sixteen) (of_int d))
    s;
  !acc

let to_hex t =
  if t.sign = 0 then "0"
  else begin
    let digits = "0123456789abcdef" in
    let buf = Buffer.create 32 in
    let nnibbles = (bit_length t + 3) / 4 in
    let mag = t.mag in
    for k = nnibbles - 1 downto 0 do
      let pos = 4 * k in
      let limb = pos / limb_bits and off = pos mod limb_bits in
      let v = mag.(limb) lsr off in
      let v =
        if off + 4 > limb_bits && limb + 1 < Array.length mag then
          v lor (mag.(limb + 1) lsl (limb_bits - off))
        else v
      in
      Buffer.add_char buf digits.[v land 15]
    done;
    (if t.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

(* big-endian bytes of |t|, minimal length (no leading zero byte) —
   byte-for-byte identical to the 30-bit-era encoding, pinned by the
   golden-vector tests *)
let to_bytes_be t =
  if t.sign = 0 then ""
  else begin
    let nbytes = (bit_length t + 7) / 8 in
    let out = Bytes.create nbytes in
    let mag = t.mag in
    let len = Array.length mag in
    for k = 0 to nbytes - 1 do
      let pos = 8 * k in
      let limb = pos / limb_bits and off = pos mod limb_bits in
      let v = mag.(limb) lsr off in
      let v =
        if off + 8 > limb_bits && limb + 1 < len then
          v lor (mag.(limb + 1) lsl (limb_bits - off))
        else v
      in
      Bytes.unsafe_set out (nbytes - 1 - k) (Char.unsafe_chr (v land 0xff))
    done;
    Bytes.unsafe_to_string out
  end

let of_bytes_be s =
  let n = String.length s in
  if n = 0 then zero
  else begin
    let bytes_le = Array.init n (fun i -> Char.code s.[n - 1 - i]) in
    make 1 (repack ~src_bits:8 ~dst_bits:limb_bits bytes_le)
  end

(* ------------------------------------------------------------------ *)
(* Randomness and primality                                             *)
(* ------------------------------------------------------------------ *)

let random_bits st bits =
  if bits < 0 then invalid_arg "Bigint.random_bits: negative bit count";
  if bits = 0 then zero
  else begin
    (* draw 30-bit chunks exactly as the 30-bit-limb representation
       did, then pack: the stream of [Random.State] calls — and hence
       every seeded transcript in the system — is unchanged by the
       limb widening *)
    let nchunks = (bits + 29) / 30 in
    let top_bits = bits - ((nchunks - 1) * 30) in
    let chunks =
      Array.init nchunks (fun i ->
          let v = Random.State.full_int st (1 lsl 30) in
          if i = nchunks - 1 then v land ((1 lsl top_bits) - 1) else v)
    in
    make 1 (repack ~src_bits:30 ~dst_bits:limb_bits chunks)
  end

let random_below st bound =
  if bound.sign <= 0 then invalid_arg "Bigint.random_below: bound must be positive";
  let bits = bit_length bound in
  let rec go () =
    let v = random_bits st bits in
    if compare v bound < 0 then v else go ()
  in
  go ()

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149;
    151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223; 227; 229 ]

let is_probable_prime ?(rounds = 20) st n =
  let n = abs n in
  if compare n two < 0 then false
  else if equal n two then true
  else if is_even n then false
  else begin
    let divisible_by_small =
      List.exists
        (fun p ->
          let bp = of_int p in
          if compare n bp <= 0 then false else is_zero (rem n bp))
        small_primes
    in
    let is_small_prime = List.exists (fun p -> equal n (of_int p)) small_primes in
    if is_small_prime then true
    else if divisible_by_small then false
    else begin
      let n1 = sub n one in
      let rec split d s = if is_even d then split (shift_right d 1) (s + 1) else (d, s) in
      let d, s = split n1 0 in
      let witness_passes a =
        let x = powmod a d n in
        if is_one x || equal x n1 then true
        else begin
          let rec square x i =
            if i >= s - 1 then false
            else begin
              let x = mulmod x x n in
              if equal x n1 then true else square x (i + 1)
            end
          in
          square x 0
        end
      in
      let rec loop i =
        if i = rounds then true
        else begin
          let a = add two (random_below st (sub n (of_int 4))) in
          if witness_passes a then loop (i + 1) else false
        end
      in
      loop 0
    end
  end

let random_prime st ~bits =
  if bits < 2 then invalid_arg "Bigint.random_prime: need bits >= 2";
  let rec go () =
    let candidate =
      let v = random_bits st bits in
      (* force top and bottom bits *)
      let top = shift_left one (bits - 1) in
      let v = add v top in
      let v = if compare v (shift_left one bits) >= 0 then sub v top else v in
      let v = if is_even v then add v one else v in
      if compare v (shift_left one bits) >= 0 then sub v two else v
    in
    if bit_length candidate = bits && is_probable_prime st candidate then candidate
    else go ()
  in
  go ()

let random_safe_prime st ~bits =
  let rec go () =
    let q = random_prime st ~bits:(bits - 1) in
    let p = add (shift_left q 1) one in
    if bit_length p = bits && is_probable_prime st p then p else go ()
  in
  go ()

let pp ppf t = Format.pp_print_string ppf (to_string t)
