module Splitmix = Yoso_hash.Splitmix

type retry = {
  attempts : int;
  base_ms : float;
  cap_ms : float;
  max_elapsed_ms : float;
  jitter : bool;
}

let connect_retry =
  { attempts = 10; base_ms = 20.; cap_ms = 500.; max_elapsed_ms = 5_000.; jitter = true }

let reconnect_retry =
  { attempts = 10; base_ms = 25.; cap_ms = 400.; max_elapsed_ms = 3_000.; jitter = true }

type t = {
  connect : retry;
  reconnect : retry;
  round_deadline_ms : float;
  grace_ms : float;
  watchdog_s : float;
  fsync_every : int;
}

let default =
  {
    connect = connect_retry;
    reconnect = reconnect_retry;
    round_deadline_ms = 10_000.;
    grace_ms = 1_500.;
    watchdog_s = 120.;
    fsync_every = 64;
  }

(* full jitter (AWS-style): uniform in [0, min(cap, base * 2^(attempt-1))).
   The draw is stateless in (seed, attempt) so a replayed run backs off
   identically, yet two peers with different seeds never synchronize
   their retries into a thundering herd. *)
let backoff_ms r ~seed ~attempt =
  if attempt < 1 then invalid_arg "Transport_policy.backoff_ms: attempt must be >= 1";
  let expo = r.base_ms *. (2. ** float_of_int (min 30 (attempt - 1))) in
  let capped = Float.min r.cap_ms expo in
  if not r.jitter then capped
  else
    let rng = Splitmix.of_int (Splitmix.mix (Splitmix.mix seed 0xB0FF) attempt) in
    Splitmix.float rng *. capped

let pp_retry ppf r =
  Format.fprintf ppf "{attempts=%d;base=%.0fms;cap=%.0fms;elapsed<=%.0fms;jitter=%b}"
    r.attempts r.base_ms r.cap_ms r.max_elapsed_ms r.jitter
