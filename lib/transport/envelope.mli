(** Transport envelope: the daemon protocol's message codec.

    Everything that crosses a transport socket is one envelope:

    {v magic "YT" | version | type | body length (4B LE) | body | checksum (8B LE) v}

    The checksum ({!Yoso_net.Wire.checksum} over the body) is verified
    on ingest, so a corrupted envelope is rejected at the transport
    layer; the bulletin frames carried {e inside} [Post]/[Deliver]
    bodies keep their own [Wire] checksums and are re-verified by the
    receiving protocol code (a tampered frame must land on the board
    and be excluded there, not vanish in transit).

    The declared body length is capped ({!default_max_body}, tied to
    {!Yoso_net.Wire.max_frame_len}): an oversized header is rejected
    {e before} any body byte is buffered, so a malicious peer cannot
    force unbounded allocation. *)

exception Envelope_error of string
(** Malformed envelope: bad magic/version/type, body over the cap,
    checksum mismatch, or an undecodable body. *)

type record =
  | Full of { seq : int; slot : int; frame : string }
      (** a whole bulletin frame, delivered to the owner's quorum *)
  | Digest of { seq : int; slot : int; csum : int; len : int }
      (** everyone else's copy: the frame's {!Yoso_net.Wire.checksum}
          (computed by the daemon on ingest) and byte length — enough
          to chain the transcript digest and check wire weight without
          shipping the content *)

type msg =
  | Hello of { slot : int; nslots : int; seed : int }
      (** client -> daemon, once per connection *)
  | Start  (** daemon -> clients when all [nslots] slots said hello *)
  | Post of { seq : int; slot : int; frame : string }
      (** client -> daemon: the owner ships board frame [seq] *)
  | Deliver of { seq : int; slot : int; frame : string }
      (** daemon -> all clients, in strict [seq] order *)
  | Peer_down of { slot : int }
      (** daemon -> all clients: that slot's connection died *)
  | Report of { slot : int; json : string }
      (** client -> daemon: final protocol report *)
  | Shutdown  (** daemon -> clients: orderly end of the run *)
  | Recover of { slot : int; nslots : int; seed : int; next_seq : int }
      (** client -> daemon on reconnect: [next_seq] is the first
          delivery the client has {e not} seen — the daemon replays
          the journal gap from there *)
  | Recovered of { next_seq : int; started : bool }
      (** daemon -> reconnecting client: the board's high-water mark
          (next sequence number to be assigned) and whether the run
          has started; deliveries for the gap follow in order *)
  | Subscribe of { slot : int; full_of : int list }
      (** client -> daemon, after [Hello]/[Recover]: register this
          slot's interest set — the owner slots whose frames it must
          receive as [Full] records; every other frame arrives as a
          [Digest] record.  A connection that never subscribes gets
          legacy full-frame [Deliver] broadcast. *)
  | Deliver_batch of record list
      (** daemon -> subscribed clients: one flush's worth of
          deliveries, coalesced into a single envelope.  Records are
          in strict [seq] order, both within a batch and across
          consecutive batches on one connection. *)

val pp_msg : Format.formatter -> msg -> unit

val record_size : record -> int
(** Conservative encoded size of one batch record (used by the
    daemon's flush-on-cap logic). *)

val header_len : int
(** Fixed envelope header size (magic + version + type + length). *)

val trailer_len : int
(** Checksum trailer size. *)

val default_max_body : int
(** Default cap on the declared body length. *)

val encode : msg -> string
(** Full envelope bytes: header, body, checksum. *)

(** {1 Streaming decoder}

    Sockets deliver envelopes in arbitrary chunks; the stream
    reassembles them.  Feed whatever arrived, then drain with
    {!next} — an envelope split at every byte boundary still
    decodes. *)

type stream

val stream : ?max_body:int -> unit -> stream

val feed : stream -> string -> unit
val feed_bytes : stream -> bytes -> int -> unit
(** [feed_bytes st buf len] appends the first [len] bytes of [buf]. *)

val next : stream -> msg option
(** The next complete envelope, or [None] if more bytes are needed.
    @raise Envelope_error on a malformed envelope (the stream is then
    poisoned — the connection must be dropped). *)

val needed : stream -> int
(** Bytes still missing before {!next} can produce the envelope at the
    front of the buffer; [0] when one is already complete.  Lets a
    blocking reader ask for exactly the right amount.
    @raise Envelope_error if the buffered header is malformed. *)

val buffered : stream -> int
(** Bytes currently held waiting for a complete envelope. *)
