module Wire = Yoso_net.Wire

exception Envelope_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Envelope_error s)) fmt

type record =
  | Full of { seq : int; slot : int; frame : string }
  | Digest of { seq : int; slot : int; csum : int; len : int }

type msg =
  | Hello of { slot : int; nslots : int; seed : int }
  | Start
  | Post of { seq : int; slot : int; frame : string }
  | Deliver of { seq : int; slot : int; frame : string }
  | Peer_down of { slot : int }
  | Report of { slot : int; json : string }
  | Shutdown
  | Recover of { slot : int; nslots : int; seed : int; next_seq : int }
  | Recovered of { next_seq : int; started : bool }
  | Subscribe of { slot : int; full_of : int list }
  | Deliver_batch of record list

let pp_msg ppf = function
  | Hello { slot; nslots; seed } ->
    Format.fprintf ppf "hello{slot=%d;nslots=%d;seed=%d}" slot nslots seed
  | Start -> Format.fprintf ppf "start"
  | Post { seq; slot; frame } ->
    Format.fprintf ppf "post{seq=%d;slot=%d;%dB}" seq slot (String.length frame)
  | Deliver { seq; slot; frame } ->
    Format.fprintf ppf "deliver{seq=%d;slot=%d;%dB}" seq slot (String.length frame)
  | Peer_down { slot } -> Format.fprintf ppf "peer-down{slot=%d}" slot
  | Report { slot; json } ->
    Format.fprintf ppf "report{slot=%d;%dB}" slot (String.length json)
  | Shutdown -> Format.fprintf ppf "shutdown"
  | Recover { slot; nslots; seed; next_seq } ->
    Format.fprintf ppf "recover{slot=%d;nslots=%d;seed=%d;next=%d}" slot nslots seed
      next_seq
  | Recovered { next_seq; started } ->
    Format.fprintf ppf "recovered{next=%d;started=%b}" next_seq started
  | Subscribe { slot; full_of } ->
    Format.fprintf ppf "subscribe{slot=%d;full_of=%d}" slot (List.length full_of)
  | Deliver_batch records ->
    let fulls =
      List.length (List.filter (function Full _ -> true | Digest _ -> false) records)
    in
    Format.fprintf ppf "deliver-batch{%d records;%d full}" (List.length records) fulls

let magic0 = 'Y'
let magic1 = 'T'
let version = 1
let header_len = 8 (* magic(2) version(1) type(1) length(4, LE) *)
let trailer_len = 8 (* Wire.checksum, 8 bytes LE *)

(* envelopes carry whole bulletin frames plus a little framing of
   their own; cap accordingly *)
let default_max_body = !Wire.max_frame_len + 4096

let tag = function
  | Hello _ -> 1
  | Start -> 2
  | Post _ -> 3
  | Deliver _ -> 4
  | Peer_down _ -> 5
  | Report _ -> 6
  | Shutdown -> 7
  | Recover _ -> 8
  | Recovered _ -> 9
  | Subscribe _ -> 10
  | Deliver_batch _ -> 11

(* wire size of one batch record, for the daemon's flush-on-cap logic:
   kind byte + generous varint headroom (+ checksum trailer for digest
   records) *)
let record_size = function
  | Full { frame; _ } -> 1 + 10 + 10 + 10 + String.length frame
  | Digest _ -> 1 + 10 + 10 + 10 + 8

let put_record buf = function
  | Full { seq; slot; frame } ->
    Wire.put_u8 buf 0;
    Wire.put_varint buf seq;
    Wire.put_varint buf slot;
    Wire.put_bytes buf frame
  | Digest { seq; slot; csum; len } ->
    Wire.put_u8 buf 1;
    Wire.put_varint buf seq;
    Wire.put_varint buf slot;
    Wire.put_varint buf len;
    (* the 63-bit checksum exceeds the canonical varint cap: fixed
       8 bytes LE, same layout as the envelope trailer *)
    Wire.put_checksum buf csum

let get_record d =
  match Wire.get_u8 d with
  | 0 ->
    let seq = Wire.get_varint d in
    let slot = Wire.get_varint d in
    let frame = Wire.get_bytes d in
    Full { seq; slot; frame }
  | 1 ->
    let seq = Wire.get_varint d in
    let slot = Wire.get_varint d in
    let len = Wire.get_varint d in
    let bytes = Array.init 8 (fun _ -> Wire.get_u8 d) in
    let csum = ref 0 in
    for i = 7 downto 0 do
      csum := (!csum lsl 8) lor bytes.(i)
    done;
    Digest { seq; slot; csum = !csum; len }
  | k -> fail "deliver-batch: unknown record kind %d" k

let encode_body buf = function
  | Hello { slot; nslots; seed } ->
    Wire.put_varint buf slot;
    Wire.put_varint buf nslots;
    Wire.put_varint buf seed
  | Start | Shutdown -> ()
  | Post { seq; slot; frame } | Deliver { seq; slot; frame } ->
    Wire.put_varint buf seq;
    Wire.put_varint buf slot;
    Wire.put_bytes buf frame
  | Peer_down { slot } -> Wire.put_varint buf slot
  | Report { slot; json } ->
    Wire.put_varint buf slot;
    Wire.put_bytes buf json
  | Recover { slot; nslots; seed; next_seq } ->
    Wire.put_varint buf slot;
    Wire.put_varint buf nslots;
    Wire.put_varint buf seed;
    Wire.put_varint buf next_seq
  | Recovered { next_seq; started } ->
    Wire.put_varint buf next_seq;
    Wire.put_varint buf (if started then 1 else 0)
  | Subscribe { slot; full_of } ->
    Wire.put_varint buf slot;
    Wire.put_varint buf (List.length full_of);
    List.iter (Wire.put_varint buf) full_of
  | Deliver_batch records ->
    Wire.put_varint buf (List.length records);
    List.iter (put_record buf) records

let decode_body ~tag body =
  let d = { Wire.src = body; pos = 0 } in
  let msg =
    match tag with
    | 1 ->
      let slot = Wire.get_varint d in
      let nslots = Wire.get_varint d in
      let seed = Wire.get_varint d in
      Hello { slot; nslots; seed }
    | 2 -> Start
    | 3 | 4 ->
      let seq = Wire.get_varint d in
      let slot = Wire.get_varint d in
      let frame = Wire.get_bytes d in
      if tag = 3 then Post { seq; slot; frame } else Deliver { seq; slot; frame }
    | 5 -> Peer_down { slot = Wire.get_varint d }
    | 6 ->
      let slot = Wire.get_varint d in
      let json = Wire.get_bytes d in
      Report { slot; json }
    | 7 -> Shutdown
    | 8 ->
      let slot = Wire.get_varint d in
      let nslots = Wire.get_varint d in
      let seed = Wire.get_varint d in
      let next_seq = Wire.get_varint d in
      Recover { slot; nslots; seed; next_seq }
    | 9 ->
      let next_seq = Wire.get_varint d in
      let started =
        match Wire.get_varint d with
        | 0 -> false
        | 1 -> true
        | b -> fail "recovered: bad started flag %d" b
      in
      Recovered { next_seq; started }
    | 10 ->
      let slot = Wire.get_varint d in
      let n = Wire.get_varint d in
      if n > 1 lsl 20 then fail "subscribe: %d sources" n;
      Subscribe { slot; full_of = List.init n (fun _ -> Wire.get_varint d) }
    | 11 ->
      let n = Wire.get_varint d in
      if n > 1 lsl 20 then fail "deliver-batch: %d records" n;
      Deliver_batch (List.init n (fun _ -> get_record d))
    | t -> fail "unknown envelope type %d" t
  in
  if d.Wire.pos <> String.length body then
    fail "envelope body: %d trailing bytes" (String.length body - d.Wire.pos);
  msg

let encode msg =
  let body =
    let buf = Buffer.create 64 in
    encode_body buf msg;
    Buffer.contents buf
  in
  let blen = String.length body in
  let buf = Buffer.create (header_len + blen + trailer_len) in
  Buffer.add_char buf magic0;
  Buffer.add_char buf magic1;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr (tag msg));
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((blen lsr (8 * i)) land 0xff))
  done;
  Buffer.add_string buf body;
  let h = Wire.checksum body in
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((h lsr (8 * i)) land 0xff))
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Streaming reassembly                                                *)
(* ------------------------------------------------------------------ *)

type stream = { mutable acc : string; mutable pos : int; max_body : int }

let stream ?(max_body = default_max_body) () = { acc = ""; pos = 0; max_body }

let buffered st = String.length st.acc - st.pos

let compact st =
  (* drop consumed prefix once it dominates the buffer *)
  if st.pos > 4096 && st.pos * 2 > String.length st.acc then begin
    st.acc <- String.sub st.acc st.pos (String.length st.acc - st.pos);
    st.pos <- 0
  end

let feed st chunk =
  if chunk <> "" then begin
    compact st;
    if st.pos = String.length st.acc then begin
      st.acc <- chunk;
      st.pos <- 0
    end
    else st.acc <- st.acc ^ chunk
  end

let feed_bytes st buf len = feed st (Bytes.sub_string buf 0 len)

let byte st i = Char.code st.acc.[st.pos + i]

(* header fields of the envelope currently at the front of the buffer;
   validates everything the header alone can prove wrong *)
let peek_header st =
  if st.acc.[st.pos] <> magic0 || st.acc.[st.pos + 1] <> magic1 then
    fail "bad envelope magic";
  if byte st 2 <> version then fail "unsupported envelope version %d" (byte st 2);
  let t = byte st 3 in
  let blen = byte st 4 lor (byte st 5 lsl 8) lor (byte st 6 lsl 16) lor (byte st 7 lsl 24) in
  (* the length guard fires on the header alone, before the body is
     allowed to accumulate *)
  if blen > st.max_body then fail "envelope body %d exceeds cap %d" blen st.max_body;
  (t, blen)

let needed st =
  if buffered st < header_len then header_len - buffered st
  else
    let _, blen = peek_header st in
    max 0 (header_len + blen + trailer_len - buffered st)

let next st =
  if buffered st < header_len then None
  else begin
    let t, blen = peek_header st in
    if buffered st < header_len + blen + trailer_len then None
    else begin
      let body = String.sub st.acc (st.pos + header_len) blen in
      let h = ref 0 in
      let toff = st.pos + header_len + blen in
      for i = 7 downto 0 do
        h := (!h lsl 8) lor Char.code st.acc.[toff + i]
      done;
      if !h <> Wire.checksum body then fail "envelope checksum mismatch";
      st.pos <- st.pos + header_len + blen + trailer_len;
      compact st;
      Some (decode_body ~tag:t body)
    end
  end
