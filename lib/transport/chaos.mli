(** Socket-level chaos injection for the transport.

    A seeded fault layer the daemon consults at two points: once per
    accepted frame (should the daemon "crash" here?) and once per
    [Deliver] enqueued to a peer (should this delivery be severed,
    truncated, duplicated or delayed?).  Every decision is a stateless
    draw from [(seed, seq, slot)], so a given seed replays the exact
    same fault schedule regardless of select timing, and a restarted
    daemon never re-draws history (a kill point fires once because the
    recovered sequence counter is already past it).

    Faults are injected {e below} the protocol: a severed or truncated
    connection surfaces to the client as EOF mid-stream, which triggers
    its reconnect/catch-up path; a duplicate delivery tests receiver
    idempotence; a delay stalls the connection's write queue (never a
    single frame, so per-connection FIFO order is preserved).  Replay
    traffic is not re-injected — chaos applies to first deliveries
    only, which keeps fault schedules finite. *)

type action =
  | Pass
  | Sever  (** close the connection abruptly (no [Peer_down]) *)
  | Truncate of float
      (** write this fraction of the frame, then sever — the peer sees
          a torn envelope followed by EOF *)
  | Duplicate  (** enqueue the delivery twice *)
  | Delay of float  (** stall the connection's writes for this many ms *)

type config = {
  seed : int;
  kill_at : int list;
      (** board sequence numbers after whose acceptance (journal
          append included, broadcast excluded) the daemon crashes *)
  sever_at : (int * int) list;
      (** scheduled [(seq, slot)] severs: close [slot]'s connection
          instead of delivering frame [seq] to it *)
  sever_rate : float;
  trunc_rate : float;
  dup_rate : float;
  delay_rate : float;  (** per-delivery probabilities, summing to <= 1 *)
  delay_ms : float;
}

val none : config
(** All rates zero, nothing scheduled. *)

val active : config -> bool

val parse : string -> config
(** Parses a compact spec:
    ["sever=0.05,dup=0.02,delay=0.05,delay-ms=20,trunc=0.01,kill=40,seed=7"].
    [kill] may repeat.
    @raise Invalid_argument on unknown keys or out-of-range rates. *)

type t

val create : config -> t
(** @raise Invalid_argument if rates are negative or sum past 1. *)

val config : t -> config

val kill_now : t -> seq:int -> bool
(** Whether the daemon should crash after accepting frame [seq]. *)

val on_deliver : t -> seq:int -> slot:int -> action
(** The fault (if any) for delivering frame [seq] to [slot]. *)

val events : t -> (string * int) list
(** Injected-fault counters by kind, sorted. *)
