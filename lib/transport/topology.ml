(* Shard/subscription geometry for the routed transport.  Pure data +
   pure functions: the same value is consumed by the Runner (to derive
   each member's subscription), the Daemon (to route deliveries and
   partition journals) and the bench/CLI (to label rows). *)

type t = {
  nslots : int;
  shards : int;
  quorum : int;
  routed : bool;
}

let validate t =
  if t.nslots < 1 then invalid_arg "Topology: nslots must be >= 1";
  if t.shards < 1 || t.shards > t.nslots then
    invalid_arg "Topology: shards must be in [1, nslots]";
  if t.routed && (t.quorum < 1 || t.quorum > max 1 (t.nslots - 1)) then
    invalid_arg "Topology: quorum must be in [1, nslots-1]";
  t

let broadcast ~nslots = validate { nslots; shards = 1; quorum = max 1 (nslots - 1); routed = false }

(* n/8 full copies per frame, floored at 2 (so every frame always has
   at least two independent full-frame holders besides its owner's
   journal record), capped by the committee size *)
let default_quorum ~nslots = min (max 1 (nslots - 1)) (max 2 (nslots / 8))

let routed ?(shards = 1) ?quorum ~nslots () =
  let quorum = match quorum with Some q -> q | None -> default_quorum ~nslots in
  validate { nslots; shards; quorum; routed = true }

(* journal/bookkeeping sharding without interest routing: every member
   still receives every frame in full *)
let sharded ~shards ~nslots =
  validate { nslots; shards; quorum = max 1 (nslots - 1); routed = false }

let owner_slot t ~index = index mod t.nslots

let shard_of_slot t ~slot = slot mod t.shards

(* the quorum of slot [owner]'s frames: the next [quorum] slots in ring
   order.  Deterministic and rotation-balanced: every slot serves in
   exactly [quorum] other slots' quorums *)
let wants_full t ~me ~owner =
  (not t.routed)
  ||
  let d = (me - owner + t.nslots) mod t.nslots in
  d >= 1 && d <= t.quorum

(* the subscription slot [me] registers at Hello time: every owner
   whose frames it must receive in full *)
let full_sources t ~me =
  if not t.routed then List.init t.nslots Fun.id
  else
    List.filter (fun owner -> wants_full t ~me ~owner) (List.init t.nslots Fun.id)

let pp ppf t =
  Format.fprintf ppf "{nslots=%d;shards=%d;quorum=%d;routed=%b}" t.nslots t.shards t.quorum
    t.routed
