module Wire = Yoso_net.Wire
module Meter = Yoso_net.Meter

type config = {
  max_body : int;
  total_timeout_s : float;
  tick_s : float;
  grace_s : float;
  fsync_every : int;
}

let default_config =
  {
    max_body = Envelope.default_max_body;
    total_timeout_s = Transport_policy.default.watchdog_s;
    tick_s = 0.1;
    grace_s = Transport_policy.default.grace_ms /. 1000.;
    fsync_every = Transport_policy.default.fsync_every;
  }

type stats = {
  connections : int;
  frames_in : int;
  frames_out : int;
  digests_out : int;
  batches_out : int;
  suppressed_bytes : int;
  garbled_frames : int;
  bytes_in : int;
  bytes_out : int;
  peer_downs : int;
  reconnects : int;
  replayed_frames : int;
  recovered_frames : int;
  journal_bytes : int;
  shards : int;
  digest : int;
  chaos_events : (string * int) list;
  timed_out : bool;
}

type result = { reports : (int * string) list; down : int list; stats : stats }

exception Crashed of stats

type conn = {
  fd : Unix.file_descr;
  id : int;  (* accept order, names pre-hello connections *)
  stream : Envelope.stream;
  outq : string Queue.t;
  mutable out_off : int;  (* bytes of the queue head already written *)
  mutable slot : int option;
  mutable sub : bool array option;  (* per-owner full-frame interest, once subscribed *)
  mutable batch : Envelope.record list;  (* pending delivery records, reversed *)
  mutable batch_bytes : int;
  mutable reported : bool;
  mutable closed : bool;
  mutable stall_until : float;  (* chaos delay: writes parked until then *)
  mutable sever_after_flush : bool;  (* chaos truncate: close once outq drains *)
  mutable sent_b : int;  (* daemon -> peer *)
  mutable recv_b : int;  (* peer -> daemon *)
  mutable replay_b : int;  (* portion of sent_b that was catch-up replay *)
  mutable full_b : int;  (* routed full-frame delivery bytes *)
  mutable digest_b : int;  (* routed digest-record bytes *)
  mutable supp_b : int;  (* full-frame bytes routing avoided sending *)
}

let conn_name c =
  match c.slot with Some s -> Printf.sprintf "slot%d" s | None -> Printf.sprintf "conn#%d" c.id

exception Protocol_violation of string

let violate fmt = Printf.ksprintf (fun s -> raise (Protocol_violation s)) fmt

(* internal: a chaos kill point fired; unwinds to the crash handler *)
exception Crash_now

let shard_journal_path base k = if k = 0 then base else Printf.sprintf "%s.shard%d" base k

let serve ?(config = default_config) ?meter ?journal:journal_path ?chaos ?topology ~listen
    ~nslots () =
  if nslots < 1 then invalid_arg "Daemon.serve: nslots must be >= 1";
  let shards =
    match topology with
    | Some (topo : Topology.t) ->
      if topo.Topology.nslots <> nslots then
        invalid_arg "Daemon.serve: topology nslots mismatch";
      topo.Topology.shards
    | None -> 1
  in
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let conns = ref [] in
  let accepted = ref 0 in
  let board : (int, int * string) Hashtbl.t = Hashtbl.create 64 in
  let next_seq = ref 0 in
  let started = ref false in
  let reports = Hashtbl.create 8 in
  let down = ref [] in
  (* slots whose connection died: blamed only after the grace window,
     so a successful reconnect degrades to latency instead of blame *)
  let pending_down : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let frames_in = ref 0 in
  let frames_out = ref 0 in
  let digests_out = ref 0 in
  let batches_out = ref 0 in
  let suppressed = ref 0 in
  let garbled = ref 0 in
  let reconnects = ref 0 in
  let replayed = ref 0 in
  let recovered = ref 0 in
  let timed_out = ref false in
  (* the daemon's own transcript digest: chained over accepted posts
     in sequence order (across all shards — the stitch), same chain as
     Board, so a fault-free routed run can be checked against the sim
     digest without any client's help *)
  let digest = ref 0x9e3779b9 in
  let chain csum = digest := ((!digest * 1000003) + csum) land max_int in
  let scratch = Bytes.create 65536 in
  let t0 = Unix.gettimeofday () in

  (* crash recovery: the journals are the only state that survives a
     daemon death — stitch the per-shard files back together (merge
     the posts by sequence number) and rebuild board, sequence
     counter, digest chain, start flag and report table from their
     intact prefixes before accepting traffic *)
  (match journal_path with
  | None -> ()
  | Some p ->
    let posted = ref [] in
    List.iter
      (fun k ->
        List.iter
          (function
            | Journal.Started { nslots = n } ->
              if n <> nslots then
                invalid_arg
                  (Printf.sprintf "Daemon.serve: journal is for %d slots, run has %d" n
                     nslots);
              started := true
            | Journal.Posted { seq; slot; frame } -> posted := (seq, slot, frame) :: !posted
            | Journal.Reported { slot; json } -> Hashtbl.replace reports slot json)
          (Journal.replay (shard_journal_path p k)))
      (List.init shards Fun.id);
    List.iter
      (fun (seq, slot, frame) ->
        Hashtbl.replace board seq (slot, frame);
        if seq >= !next_seq then next_seq := seq + 1;
        chain (Wire.checksum frame);
        incr recovered)
      (List.sort compare !posted));
  let journals =
    match journal_path with
    | None -> [||]
    | Some p ->
      Array.init shards (fun k ->
          Journal.open_append ~fsync_every:config.fsync_every
            ~path:(shard_journal_path p k) ())
  in
  (* shard bookkeeping is keyed by the posting slot: a committee
     partition of the board *)
  let shard_of_slot slot = slot mod shards in
  let jappend ~slot r =
    if Array.length journals > 0 then Journal.append journals.(shard_of_slot slot) r
  in

  let enqueue c payload =
    if (not c.closed) && not c.sever_after_flush then Queue.add payload c.outq
  in
  (* coalesce this connection's pending delivery records into one
     envelope.  Records were appended in seq order, so a flushed batch
     preserves the board's total order *)
  let flush_batch c =
    match c.batch with
    | [] -> ()
    | records ->
      let payload = Envelope.encode (Envelope.Deliver_batch (List.rev records)) in
      c.batch <- [];
      c.batch_bytes <- 0;
      incr batches_out;
      enqueue c payload
  in
  (* control traffic and full-frame [Deliver]s must not overtake
     batched records queued earlier: flush first *)
  let enqueue_ctl c payload =
    flush_batch c;
    enqueue c payload
  in
  let append_record c r =
    let sz = Envelope.record_size r in
    if c.batch_bytes + sz > config.max_body - 4096 then flush_batch c;
    c.batch <- r :: c.batch;
    c.batch_bytes <- c.batch_bytes + sz
  in
  (* abrupt connection loss: close now, blame only after the grace
     window (unless the slot already reported) *)
  let drop_conn c =
    if not c.closed then begin
      c.closed <- true;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      match c.slot with
      | Some s
        when (not c.reported)
             && (not (Hashtbl.mem reports s))
             && (not (List.mem s !down))
             && not (Hashtbl.mem pending_down s) ->
        Hashtbl.replace pending_down s (Unix.gettimeofday () +. config.grace_s)
      | _ -> ()
    end
  in
  (* a reconnect took over the slot: retire the old connection without
     scheduling blame — the daemon may not have seen its EOF yet *)
  let supersede c =
    if not c.closed then begin
      c.closed <- true;
      try Unix.close c.fd with Unix.Unix_error _ -> ()
    end
  in
  (* chaos consult for one first-time delivery to one peer; replay
     traffic bypasses this (fault schedules stay finite).  Returns
     whether the frame was actually enqueued. *)
  let deliver_to c ~seq ~slot payload =
    match chaos with
    | Some ch when not c.sever_after_flush -> (
      match Chaos.on_deliver ch ~seq ~slot with
      | Chaos.Pass ->
        enqueue c payload;
        true
      | Chaos.Duplicate ->
        enqueue c payload;
        enqueue c payload;
        true
      | Chaos.Delay ms ->
        (* stall the whole connection, never one frame: per-connection
           FIFO order is what the client's catch-up logic relies on *)
        enqueue c payload;
        let until = Unix.gettimeofday () +. (ms /. 1000.) in
        if until > c.stall_until then c.stall_until <- until;
        true
      | Chaos.Sever ->
        drop_conn c;
        false
      | Chaos.Truncate f ->
        let len = String.length payload in
        let k = max 1 (min (len - 1) (int_of_float (f *. float_of_int len))) in
        enqueue c (String.sub payload 0 k);
        c.sever_after_flush <- true;
        false)
    | _ ->
      enqueue c payload;
      true
  in
  (* interest-routed delivery to a subscribed connection: a full
     record for members of the owner's quorum, a compact digest record
     for everyone else, both riding the per-connection batch.  Chaos
     is consulted per record with the same outcomes as the legacy
     path *)
  let routed_deliver c ~seq ~owner ~frame ~csum =
    let tslot = match c.slot with Some s -> s | None -> assert false in
    let record =
      match c.sub with
      | Some wants when not wants.(owner) ->
        Envelope.Digest { seq; slot = owner; csum; len = String.length frame }
      | _ -> Envelope.Full { seq; slot = owner; frame }
    in
    let account () =
      match record with
      | Envelope.Full _ ->
        c.full_b <- c.full_b + Envelope.record_size record;
        incr frames_out
      | Envelope.Digest _ ->
        c.digest_b <- c.digest_b + Envelope.record_size record;
        c.supp_b <- c.supp_b + String.length frame;
        suppressed := !suppressed + String.length frame;
        incr digests_out
    in
    match chaos with
    | Some ch when not c.sever_after_flush -> (
      match Chaos.on_deliver ch ~seq ~slot:tslot with
      | Chaos.Pass ->
        append_record c record;
        account ()
      | Chaos.Duplicate ->
        append_record c record;
        append_record c record;
        account ();
        account ()
      | Chaos.Delay ms ->
        append_record c record;
        account ();
        let until = Unix.gettimeofday () +. (ms /. 1000.) in
        if until > c.stall_until then c.stall_until <- until
      | Chaos.Sever -> drop_conn c
      | Chaos.Truncate f ->
        flush_batch c;
        let payload = Envelope.encode (Envelope.Deliver_batch [ record ]) in
        let len = String.length payload in
        let k = max 1 (min (len - 1) (int_of_float (f *. float_of_int len))) in
        enqueue c (String.sub payload 0 k);
        c.sever_after_flush <- true)
    | _ ->
      append_record c record;
      account ()
  in
  (* only slot-bound connections receive broadcasts: a reconnecting
     connection must get its ordered replay first, or new frames would
     arrive out of order and be dropped as stale by the client *)
  let broadcast msg =
    let targets = List.filter (fun c -> (not c.closed) && c.slot <> None) !conns in
    match msg with
    | Envelope.Deliver { seq; slot = owner; frame } ->
      let payload = lazy (Envelope.encode msg) in
      let csum = Wire.checksum frame in
      List.iter
        (fun c ->
          match c.sub with
          | Some _ -> routed_deliver c ~seq ~owner ~frame ~csum
          | None ->
            let tslot = match c.slot with Some s -> s | None -> assert false in
            if deliver_to c ~seq ~slot:tslot (Lazy.force payload) then incr frames_out)
        targets
    | _ ->
      let payload = Envelope.encode msg in
      List.iter (fun c -> enqueue_ctl c payload) targets
  in
  let expire_pending now =
    let expired =
      Hashtbl.fold (fun s d acc -> if d <= now then s :: acc else acc) pending_down []
    in
    List.iter
      (fun s ->
        Hashtbl.remove pending_down s;
        if (not (List.mem s !down)) && not (Hashtbl.mem reports s) then begin
          down := s :: !down;
          broadcast (Envelope.Peer_down { slot = s })
        end)
      expired
  in
  let hellos () =
    List.length (List.filter (fun c -> c.slot <> None && not c.closed) !conns)
  in
  let maybe_start () =
    if (not !started) && hellos () = nslots then begin
      started := true;
      jappend ~slot:0 (Journal.Started { nslots });
      broadcast Envelope.Start
    end
  in
  let handle c msg =
    match msg with
    | Envelope.Hello { slot; nslots = peer_nslots; seed = _ } ->
      if peer_nslots <> nslots then
        violate "hello: peer expects %d slots, run has %d" peer_nslots nslots;
      if slot < 0 || slot >= nslots then violate "hello: slot %d out of range" slot;
      if List.exists (fun c' -> c'.slot = Some slot && not c'.closed) !conns then
        violate "hello: slot %d already connected" slot;
      c.slot <- Some slot;
      Hashtbl.remove pending_down slot;
      if !started then enqueue c (Envelope.encode Envelope.Start) else maybe_start ()
    | Envelope.Subscribe { slot; full_of } ->
      if c.slot <> Some slot then
        violate "subscribe: slot %d on connection %s" slot (conn_name c);
      let wants = Array.make nslots false in
      List.iter
        (fun o ->
          if o < 0 || o >= nslots then violate "subscribe: source slot %d out of range" o;
          wants.(o) <- true)
        full_of;
      c.sub <- Some wants
    | Envelope.Recover { slot; nslots = peer_nslots; seed = _; next_seq = client_next } ->
      if peer_nslots <> nslots then
        violate "recover: peer expects %d slots, run has %d" peer_nslots nslots;
      if slot < 0 || slot >= nslots then violate "recover: slot %d out of range" slot;
      if c.slot <> None then violate "recover on an already-bound connection";
      if client_next < 0 || client_next > !next_seq then
        violate "recover: slot %d claims %d deliveries, board has %d" slot client_next
          !next_seq;
      List.iter (fun c' -> if c'.slot = Some slot && not c'.closed then supersede c') !conns;
      Hashtbl.remove pending_down slot;
      c.slot <- Some slot;
      c.reported <- Hashtbl.mem reports slot;
      incr reconnects;
      enqueue c
        (Envelope.encode (Envelope.Recovered { next_seq = !next_seq; started = !started }));
      (* ordered catch-up: replay the board gap; a missing seq is a
         gap left by a dead slot and the survivors skipped it too *)
      for seq = client_next to !next_seq - 1 do
        match Hashtbl.find_opt board seq with
        | Some (s, frame) ->
          let payload = Envelope.encode (Envelope.Deliver { seq; slot = s; frame }) in
          enqueue c payload;
          incr replayed;
          c.replay_b <- c.replay_b + String.length payload
        | None -> ()
      done;
      maybe_start ()
    | Envelope.Post { seq; slot; frame } ->
      if not !started then violate "post before start";
      if c.slot <> Some slot then violate "post: slot %d on connection %s" slot (conn_name c);
      if seq < !next_seq then begin
        (* a reconnecting owner re-posts frames it cannot prove the
           daemon accepted; byte-identical duplicates are absorbed *)
        match Hashtbl.find_opt board seq with
        | Some (s, f) when s = slot && f = frame -> ()
        | _ -> violate "post: seq %d, already at %d" seq !next_seq
      end
      else begin
        (* strictly monotone, gaps allowed: a frame owned by a dead slot
           is never posted and survivors continue past it *)
        next_seq := seq + 1;
        incr frames_in;
        (* integrity check on ingest: the envelope checksum already
           passed; now try the inner bulletin frame.  Garbled frames are
           counted and still forwarded — exclusion is the verifiers' job *)
        (match Wire.of_frame frame with
        | (_ : Wire.message) -> ()
        | exception Wire.Decode_error _ -> incr garbled);
        Hashtbl.replace board seq (slot, frame);
        chain (Wire.checksum frame);
        jappend ~slot (Journal.Posted { seq; slot; frame });
        (* accepted and journaled: a scheduled kill fires here, before
           the broadcast, so the restarted daemon (whose recovered
           counter is already past [seq]) never re-crashes *)
        (match chaos with
        | Some ch when Chaos.kill_now ch ~seq -> raise Crash_now
        | _ -> ());
        broadcast (Envelope.Deliver { seq; slot; frame })
      end
    | Envelope.Report { slot; json } ->
      if c.slot <> Some slot then violate "report: slot %d on connection %s" slot (conn_name c);
      Hashtbl.replace reports slot json;
      jappend ~slot (Journal.Reported { slot; json });
      c.reported <- true
    | Envelope.Start | Envelope.Deliver _ | Envelope.Deliver_batch _ | Envelope.Peer_down _
    | Envelope.Shutdown | Envelope.Recovered _ ->
      violate "client sent a daemon-only message"
  in
  let read_conn c =
    match Unix.read c.fd scratch 0 (Bytes.length scratch) with
    | 0 -> drop_conn c
    | n -> (
      c.recv_b <- c.recv_b + n;
      Envelope.feed_bytes c.stream scratch n;
      try
        let rec drain () =
          match Envelope.next c.stream with
          | Some msg ->
            handle c msg;
            drain ()
          | None -> ()
        in
        drain ()
      with Envelope.Envelope_error _ | Protocol_violation _ -> drop_conn c)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> drop_conn c
  in
  let write_conn c =
    if (not c.closed) && not (Queue.is_empty c.outq) then begin
      let head = Queue.peek c.outq in
      let len = String.length head - c.out_off in
      match Unix.single_write_substring c.fd head c.out_off len with
      | n ->
        c.sent_b <- c.sent_b + n;
        if n = len then begin
          ignore (Queue.pop c.outq);
          c.out_off <- 0;
          if Queue.is_empty c.outq && c.sever_after_flush then drop_conn c
        end
        else c.out_off <- c.out_off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> drop_conn c
    end
  in
  let accept_conn () =
    match Unix.accept ~cloexec:true listen with
    | fd, _addr ->
      Unix.set_nonblock fd;
      incr accepted;
      conns :=
        !conns
        @ [
            {
              fd;
              id = !accepted;
              stream = Envelope.stream ~max_body:config.max_body ();
              outq = Queue.create ();
              out_off = 0;
              slot = None;
              sub = None;
              batch = [];
              batch_bytes = 0;
              reported = false;
              closed = false;
              stall_until = 0.;
              sever_after_flush = false;
              sent_b = 0;
              recv_b = 0;
              replay_b = 0;
              full_b = 0;
              digest_b = 0;
              supp_b = 0;
            };
          ]
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  let slots_settled () =
    !started
    && List.for_all
         (fun s -> Hashtbl.mem reports s || List.mem s !down)
         (List.init nslots Fun.id)
  in
  let pending_writes () =
    List.exists (fun c -> (not c.closed) && not (Queue.is_empty c.outq)) !conns
  in
  (* main event loop *)
  let rec loop () =
    if Unix.gettimeofday () -. t0 > config.total_timeout_s then timed_out := true
    else if slots_settled () && not (pending_writes ()) then ()
    else begin
      let now = Unix.gettimeofday () in
      expire_pending now;
      let live = List.filter (fun c -> not c.closed) !conns in
      let rds = listen :: List.map (fun c -> c.fd) live in
      let wrs =
        List.filter_map
          (fun c ->
            if Queue.is_empty c.outq || c.stall_until > now then None else Some c.fd)
          live
      in
      (match Unix.select rds wrs [] config.tick_s with
      | rready, wready, _ ->
        if List.memq listen rready then accept_conn ();
        List.iter
          (fun c -> if (not c.closed) && List.memq c.fd wready then write_conn c)
          live;
        List.iter
          (fun c -> if (not c.closed) && List.memq c.fd rready then read_conn c)
          live;
        (* one flush per event-loop turn: every delivery that arrived
           in this turn's reads rides out in a single coalesced
           envelope per connection *)
        List.iter (fun c -> if not c.closed then flush_batch c) live
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  let mk_stats () =
    let bytes_in = List.fold_left (fun a c -> a + c.recv_b) 0 !conns in
    let bytes_out = List.fold_left (fun a c -> a + c.sent_b) 0 !conns in
    {
      connections = !accepted;
      frames_in = !frames_in;
      frames_out = !frames_out;
      digests_out = !digests_out;
      batches_out = !batches_out;
      suppressed_bytes = !suppressed;
      garbled_frames = !garbled;
      bytes_in;
      bytes_out;
      peer_downs = List.length !down;
      reconnects = !reconnects;
      replayed_frames = !replayed;
      recovered_frames = !recovered;
      journal_bytes = Array.fold_left (fun a j -> a + Journal.bytes j) 0 journals;
      shards;
      digest = !digest;
      chaos_events = (match chaos with Some ch -> Chaos.events ch | None -> []);
      timed_out = !timed_out;
    }
  in
  let record_meters () =
    match meter with
    | None -> ()
    | Some m ->
      List.iter
        (fun c ->
          (* routed and replayed delivery bytes are attributed to the
             slot's subscription, not its connection row: the conn row
             keeps only control + post traffic, so conn totals stay
             comparable across geometries *)
          Meter.record_conn m ~conn:(conn_name c)
            ~sent:(max 0 (c.sent_b - c.replay_b - c.full_b - c.digest_b))
            ~received:c.recv_b;
          (* catch-up replay is accounted separately so phase totals
             stay comparable with a fault-free run *)
          if c.replay_b > 0 then
            Meter.record_conn m ~conn:("replay:" ^ conn_name c) ~sent:c.replay_b ~received:0;
          if c.sub <> None then
            Meter.record_route m ~sub:(conn_name c) ~full:c.full_b ~digest:c.digest_b
              ~suppressed:c.supp_b)
        !conns
  in
  let close_all () =
    List.iter
      (fun c ->
        if not c.closed then begin
          c.closed <- true;
          try Unix.close c.fd with Unix.Unix_error _ -> ()
        end)
      !conns
  in
  (match loop () with
  | () -> ()
  | exception Crash_now ->
    (* simulated daemon crash: every connection is dropped on the
       floor and only the journal survives.  The listen socket stays
       open (the caller owns it), so a restarted serve on the same fd
       picks up the reconnect storm. *)
    close_all ();
    record_meters ();
    Array.iter Journal.close journals;
    raise (Crashed (mk_stats ())));
  (* orderly shutdown: tell everyone, best-effort flush, close *)
  if not !timed_out then begin
    broadcast Envelope.Shutdown;
    let flush_deadline = Unix.gettimeofday () +. 1.0 in
    let rec flush () =
      if pending_writes () && Unix.gettimeofday () < flush_deadline then begin
        let live = List.filter (fun c -> not c.closed) !conns in
        let wrs =
          (* shutdown overrides any chaos stall *)
          List.filter_map
            (fun c -> if Queue.is_empty c.outq then None else Some c.fd)
            live
        in
        (match Unix.select [] wrs [] 0.05 with
        | _, wready, _ -> List.iter (fun c -> if List.memq c.fd wready then write_conn c) live
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        flush ()
      end
    in
    flush ()
  end;
  record_meters ();
  close_all ();
  Array.iter Journal.close journals;
  {
    reports =
      Hashtbl.fold (fun s j acc -> (s, j) :: acc) reports [] |> List.sort compare;
    down = List.sort compare !down;
    stats = mk_stats ();
  }
