module Wire = Yoso_net.Wire
module Meter = Yoso_net.Meter

type config = { max_body : int; total_timeout_s : float; tick_s : float }

let default_config =
  { max_body = Envelope.default_max_body; total_timeout_s = 120.; tick_s = 0.1 }

type stats = {
  connections : int;
  frames_in : int;
  frames_out : int;
  garbled_frames : int;
  bytes_in : int;
  bytes_out : int;
  peer_downs : int;
  timed_out : bool;
}

type result = { reports : (int * string) list; down : int list; stats : stats }

type conn = {
  fd : Unix.file_descr;
  id : int;  (* accept order, names pre-hello connections *)
  stream : Envelope.stream;
  outq : string Queue.t;
  mutable out_off : int;  (* bytes of the queue head already written *)
  mutable slot : int option;
  mutable reported : bool;
  mutable closed : bool;
  mutable sent_b : int;  (* daemon -> peer *)
  mutable recv_b : int;  (* peer -> daemon *)
}

let conn_name c =
  match c.slot with Some s -> Printf.sprintf "slot%d" s | None -> Printf.sprintf "conn#%d" c.id

exception Protocol_violation of string

let violate fmt = Printf.ksprintf (fun s -> raise (Protocol_violation s)) fmt

let serve ?(config = default_config) ?meter ~listen ~nslots () =
  if nslots < 1 then invalid_arg "Daemon.serve: nslots must be >= 1";
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let conns = ref [] in
  let accepted = ref 0 in
  let next_seq = ref 0 in
  let started = ref false in
  let reports = Hashtbl.create 8 in
  let down = ref [] in
  let frames_in = ref 0 in
  let frames_out = ref 0 in
  let garbled = ref 0 in
  let timed_out = ref false in
  let scratch = Bytes.create 65536 in
  let t0 = Unix.gettimeofday () in

  let enqueue c payload =
    if not c.closed then begin
      Queue.add payload c.outq;
      (* opportunistic flush happens in the select loop *)
    end
  in
  let broadcast msg =
    let payload = Envelope.encode msg in
    List.iter (fun c -> enqueue c payload) !conns;
    match msg with
    | Envelope.Deliver _ ->
      frames_out := !frames_out + List.length (List.filter (fun c -> not c.closed) !conns)
    | _ -> ()
  in
  let mark_down c =
    match c.slot with
    | Some s when (not c.reported) && not (List.mem s !down) ->
      down := s :: !down;
      broadcast (Envelope.Peer_down { slot = s })
    | _ -> ()
  in
  let close_conn c =
    if not c.closed then begin
      c.closed <- true;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      mark_down c
    end
  in
  let hellos () =
    List.length (List.filter (fun c -> c.slot <> None && not c.closed) !conns)
  in
  let handle c msg =
    match msg with
    | Envelope.Hello { slot; nslots = peer_nslots; seed = _ } ->
      if peer_nslots <> nslots then
        violate "hello: peer expects %d slots, run has %d" peer_nslots nslots;
      if slot < 0 || slot >= nslots then violate "hello: slot %d out of range" slot;
      if List.exists (fun c' -> c'.slot = Some slot && not c'.closed) !conns then
        violate "hello: slot %d already connected" slot;
      c.slot <- Some slot;
      if (not !started) && hellos () = nslots then begin
        started := true;
        broadcast Envelope.Start
      end
    | Envelope.Post { seq; slot; frame } ->
      if not !started then violate "post before start";
      if c.slot <> Some slot then violate "post: slot %d on connection %s" slot (conn_name c);
      (* strictly monotone, gaps allowed: a frame owned by a dead slot
         is never posted and survivors continue past it *)
      if seq < !next_seq then violate "post: seq %d, already at %d" seq !next_seq;
      next_seq := seq + 1;
      incr frames_in;
      (* integrity check on ingest: the envelope checksum already
         passed; now try the inner bulletin frame.  Garbled frames are
         counted and still forwarded — exclusion is the verifiers' job *)
      (match Wire.of_frame frame with
      | (_ : Wire.message) -> ()
      | exception Wire.Decode_error _ -> incr garbled);
      broadcast (Envelope.Deliver { seq; slot; frame })
    | Envelope.Report { slot; json } ->
      if c.slot <> Some slot then violate "report: slot %d on connection %s" slot (conn_name c);
      Hashtbl.replace reports slot json;
      c.reported <- true
    | Envelope.Start | Envelope.Deliver _ | Envelope.Peer_down _ | Envelope.Shutdown ->
      violate "client sent a daemon-only message"
  in
  let read_conn c =
    match Unix.read c.fd scratch 0 (Bytes.length scratch) with
    | 0 -> close_conn c
    | n -> (
      c.recv_b <- c.recv_b + n;
      Envelope.feed_bytes c.stream scratch n;
      try
        let rec drain () =
          match Envelope.next c.stream with
          | Some msg ->
            handle c msg;
            drain ()
          | None -> ()
        in
        drain ()
      with Envelope.Envelope_error _ | Protocol_violation _ -> close_conn c)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn c
  in
  let write_conn c =
    if (not c.closed) && not (Queue.is_empty c.outq) then
      let head = Queue.peek c.outq in
      let len = String.length head - c.out_off in
      match Unix.single_write_substring c.fd head c.out_off len with
      | n ->
        c.sent_b <- c.sent_b + n;
        if n = len then begin
          ignore (Queue.pop c.outq);
          c.out_off <- 0
        end
        else c.out_off <- c.out_off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> close_conn c
  in
  let accept_conn () =
    match Unix.accept ~cloexec:true listen with
    | fd, _addr ->
      Unix.set_nonblock fd;
      incr accepted;
      conns :=
        !conns
        @ [
            {
              fd;
              id = !accepted;
              stream = Envelope.stream ~max_body:config.max_body ();
              outq = Queue.create ();
              out_off = 0;
              slot = None;
              reported = false;
              closed = false;
              sent_b = 0;
              recv_b = 0;
            };
          ]
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  let slots_settled () =
    !started
    && List.for_all
         (fun s -> Hashtbl.mem reports s || List.mem s !down)
         (List.init nslots Fun.id)
  in
  let pending_writes () =
    List.exists (fun c -> (not c.closed) && not (Queue.is_empty c.outq)) !conns
  in
  (* main event loop *)
  let rec loop () =
    if Unix.gettimeofday () -. t0 > config.total_timeout_s then timed_out := true
    else if slots_settled () && not (pending_writes ()) then ()
    else begin
      let live = List.filter (fun c -> not c.closed) !conns in
      let rds = listen :: List.map (fun c -> c.fd) live in
      let wrs =
        List.filter_map
          (fun c -> if Queue.is_empty c.outq then None else Some c.fd)
          live
      in
      (match Unix.select rds wrs [] config.tick_s with
      | rready, wready, _ ->
        if List.memq listen rready then accept_conn ();
        List.iter (fun c -> if List.memq c.fd wready then write_conn c) live;
        List.iter
          (fun c -> if (not c.closed) && List.memq c.fd rready then read_conn c)
          live
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (* orderly shutdown: tell everyone, best-effort flush, close *)
  if not !timed_out then begin
    broadcast Envelope.Shutdown;
    let flush_deadline = Unix.gettimeofday () +. 1.0 in
    let rec flush () =
      if pending_writes () && Unix.gettimeofday () < flush_deadline then begin
        let live = List.filter (fun c -> not c.closed) !conns in
        let wrs =
          List.filter_map
            (fun c -> if Queue.is_empty c.outq then None else Some c.fd)
            live
        in
        (match Unix.select [] wrs [] 0.05 with
        | _, wready, _ -> List.iter (fun c -> if List.memq c.fd wready then write_conn c) live
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        flush ()
      end
    in
    flush ()
  end;
  List.iter
    (fun c ->
      (match meter with
      | Some m -> Meter.record_conn m ~conn:(conn_name c) ~sent:c.sent_b ~received:c.recv_b
      | None -> ());
      if not c.closed then begin
        c.closed <- true;
        try Unix.close c.fd with Unix.Unix_error _ -> ()
      end)
    !conns;
  let bytes_in = List.fold_left (fun a c -> a + c.recv_b) 0 !conns in
  let bytes_out = List.fold_left (fun a c -> a + c.sent_b) 0 !conns in
  {
    reports =
      Hashtbl.fold (fun s j acc -> (s, j) :: acc) reports [] |> List.sort compare;
    down = List.sort compare !down;
    stats =
      {
        connections = !accepted;
        frames_in = !frames_in;
        frames_out = !frames_out;
        garbled_frames = !garbled;
        bytes_in;
        bytes_out;
        peer_downs = List.length !down;
        timed_out = !timed_out;
      };
  }
