(** The bulletin-board daemon: a single-threaded, nonblocking
    select/poll event loop serving {!Envelope} traffic over TCP or
    Unix-domain sockets.

    Protocol, per run:
    + every committee-member process connects and sends [Hello];
    + once all [nslots] slots are present the daemon broadcasts
      [Start];
    + the owner of board frame [seq] sends [Post {seq; ...}]; the
      daemon verifies the envelope checksum on ingest, checks [seq]
      against the global post counter (posts arrive in strictly
      increasing order — the protocol's commit order is total) and
      broadcasts [Deliver {seq; ...}] to every connection;
    + a connection that dies before delivering its [Report] triggers a
      [Peer_down] broadcast, which surviving members map onto the
      silent-fault path;
    + when every slot has either reported or gone down, the daemon
      flushes, sends [Shutdown] and returns.

    Each connection has its own read-reassembly buffer and write
    queue; the daemon never blocks on any single peer.  Inner bulletin
    frames are additionally run through [Wire.of_frame] on ingest so
    the stats expose how many garbled frames crossed the wire (they
    are still forwarded — a tampered frame must reach the board and be
    excluded by verifiers, not vanish in transit). *)

module Meter = Yoso_net.Meter

type config = {
  max_body : int;  (** envelope ingest cap, default {!Envelope.default_max_body} *)
  total_timeout_s : float;  (** watchdog on the whole run *)
  tick_s : float;  (** select granularity *)
}

val default_config : config

type stats = {
  connections : int;
  frames_in : int;  (** [Post] envelopes accepted *)
  frames_out : int;  (** [Deliver] envelopes enqueued (per recipient) *)
  garbled_frames : int;  (** inner frames failing [Wire.of_frame] on ingest *)
  bytes_in : int;
  bytes_out : int;
  peer_downs : int;
  timed_out : bool;
}

type result = {
  reports : (int * string) list;  (** slot-sorted final reports *)
  down : int list;  (** slots that vanished before reporting *)
  stats : stats;
}

val serve :
  ?config:config ->
  ?meter:Meter.t ->
  listen:Unix.file_descr ->
  nslots:int ->
  unit ->
  result
(** Runs the event loop on an already-listening socket until the run
    completes (or the watchdog fires, in which case [stats.timed_out]
    is set and partial results are returned).  Per-connection envelope
    bytes are recorded into [meter] under ["slotN"] names.  The listen
    socket is left open; the caller owns it. *)
