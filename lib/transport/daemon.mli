(** The bulletin-board daemon: a single-threaded, nonblocking
    select/poll event loop serving {!Envelope} traffic over TCP or
    Unix-domain sockets.

    Protocol, per run:
    + every committee-member process connects and sends [Hello];
    + once all [nslots] slots are present the daemon broadcasts
      [Start];
    + the owner of board frame [seq] sends [Post {seq; ...}]; the
      daemon verifies the envelope checksum on ingest, checks [seq]
      against the global post counter (posts arrive in strictly
      increasing order — the protocol's commit order is total),
      appends the frame to the write-ahead journal (when one is
      configured) and broadcasts [Deliver {seq; ...}] to every
      slot-bound connection;
    + a connection that dies before delivering its [Report] starts a
      {e grace window}; only if the slot fails to reconnect (via the
      [Recover] handshake) before it expires is [Peer_down]
      broadcast, which surviving members map onto the silent-fault
      path — a timely reconnect degrades to latency, not blame;
    + when every slot has either reported or gone down, the daemon
      flushes, sends [Shutdown] and returns.

    {b Crash recovery.}  With [?journal] set, every accepted frame is
    journaled {e before} broadcast.  A daemon restarted on the same
    journal path replays the intact prefix to rebuild its board,
    sequence counter, start flag and report table, then resumes
    serving on the same listen socket; reconnecting clients send
    [Recover] with the next delivery they have not seen and get the
    gap replayed in order.  Re-posts of already-accepted frames
    (byte-identical) are absorbed silently — a reconnecting owner
    cannot prove which in-flight posts survived.

    {b Chaos.}  With [?chaos] set, first-time deliveries may be
    severed, truncated, duplicated or delayed (per-connection FIFO
    order is always preserved — a delay stalls the whole connection),
    and scheduled kill points crash the daemon with {!Crashed} right
    after the journal append, so the restarted daemon never
    re-crashes on the same frame.

    Each connection has its own read-reassembly buffer and write
    queue; the daemon never blocks on any single peer.  Inner bulletin
    frames are additionally run through [Wire.of_frame] on ingest so
    the stats expose how many garbled frames crossed the wire (they
    are still forwarded — a tampered frame must reach the board and be
    excluded by verifiers, not vanish in transit). *)

module Meter = Yoso_net.Meter

type config = {
  max_body : int;  (** envelope ingest cap, default {!Envelope.default_max_body} *)
  total_timeout_s : float;  (** watchdog on the whole run *)
  tick_s : float;  (** select granularity *)
  grace_s : float;
      (** reconnect window: how long a dead connection's slot may stay
          silent before [Peer_down] is broadcast *)
  fsync_every : int;  (** journal fsync batch size *)
}

val default_config : config
(** Timing fields default to {!Transport_policy.default}. *)

type stats = {
  connections : int;
  frames_in : int;  (** [Post] envelopes accepted (duplicates excluded) *)
  frames_out : int;  (** [Deliver] envelopes enqueued (per recipient) *)
  garbled_frames : int;  (** inner frames failing [Wire.of_frame] on ingest *)
  bytes_in : int;
  bytes_out : int;
  peer_downs : int;
  reconnects : int;  (** [Recover] handshakes accepted *)
  replayed_frames : int;  (** catch-up [Deliver]s replayed to reconnectors *)
  recovered_frames : int;  (** board frames rebuilt from the journal at startup *)
  journal_bytes : int;  (** journal file size (0 without a journal) *)
  chaos_events : (string * int) list;  (** injected faults by kind, sorted *)
  timed_out : bool;
}

type result = {
  reports : (int * string) list;  (** slot-sorted final reports *)
  down : int list;  (** slots that vanished before reporting *)
  stats : stats;
}

exception Crashed of stats
(** A chaos kill point fired: the daemon dropped every connection and
    closed its journal.  The listen socket is untouched — the caller
    restarts [serve] on it with the same journal path to recover. *)

val serve :
  ?config:config ->
  ?meter:Meter.t ->
  ?journal:string ->
  ?chaos:Chaos.t ->
  listen:Unix.file_descr ->
  nslots:int ->
  unit ->
  result
(** Runs the event loop on an already-listening socket until the run
    completes (or the watchdog fires, in which case [stats.timed_out]
    is set and partial results are returned).  [journal] is the
    write-ahead journal path: replayed at startup, appended per
    accepted frame.  Per-connection envelope bytes are recorded into
    [meter] under ["slotN"] names, with catch-up replay split out
    under ["replay:slotN"].  The listen socket is left open; the
    caller owns it.
    @raise Crashed when a chaos kill point fires. *)
