(** The bulletin-board daemon: a single-threaded, nonblocking
    select/poll event loop serving {!Envelope} traffic over TCP or
    Unix-domain sockets.

    Protocol, per run:
    + every committee-member process connects and sends [Hello];
    + once all [nslots] slots are present the daemon broadcasts
      [Start];
    + the owner of board frame [seq] sends [Post {seq; ...}]; the
      daemon verifies the envelope checksum on ingest, checks [seq]
      against the global post counter (posts arrive in strictly
      increasing order — the protocol's commit order is total),
      appends the frame to the write-ahead journal (when one is
      configured) and delivers it to every slot-bound connection:
      legacy connections get a full [Deliver {seq; ...}] broadcast,
      while connections that registered a [Subscribe] interest set get
      {e routed} delivery — a [Full] record if the posting slot is in
      their interest set, a [Digest] record (checksum + length)
      otherwise, coalesced into [Deliver_batch] envelopes flushed once
      per event-loop turn (or when a batch reaches the body cap);
    + a connection that dies before delivering its [Report] starts a
      {e grace window}; only if the slot fails to reconnect (via the
      [Recover] handshake) before it expires is [Peer_down]
      broadcast, which surviving members map onto the silent-fault
      path — a timely reconnect degrades to latency, not blame;
    + when every slot has either reported or gone down, the daemon
      flushes, sends [Shutdown] and returns.

    {b Sharding.}  With a [?topology] declaring [shards > 1], board
    bookkeeping is partitioned by posting slot ([slot mod shards] — a
    committee partition): each shard appends to its own journal file
    ([path] for shard 0, [path.shardK] for shard [k]).  The daemon's
    transcript digest is chained across {e all} shards in global
    sequence order, so the stitched transcript hashes exactly as an
    unsharded one — the global digest oracle survives the partition.

    {b Crash recovery.}  With [?journal] set, every accepted frame is
    journaled {e before} broadcast.  A daemon restarted on the same
    journal path replays the intact prefix of every shard file,
    merges the posts by sequence number and rebuilds its board,
    sequence counter, digest chain, start flag and report table, then
    resumes serving on the same listen socket; reconnecting clients
    send [Recover] with the next delivery they have not seen and get
    the gap replayed in order (as legacy full [Deliver]s — catch-up
    bypasses routing so recovery semantics are identical on every
    path).  Re-posts of already-accepted frames (byte-identical) are
    absorbed silently — a reconnecting owner cannot prove which
    in-flight posts survived.

    {b Chaos.}  With [?chaos] set, first-time deliveries may be
    severed, truncated, duplicated or delayed (per-connection FIFO
    order is always preserved — a delay stalls the whole connection),
    and scheduled kill points crash the daemon with {!Crashed} right
    after the journal append, so the restarted daemon never
    re-crashes on the same frame.

    Each connection has its own read-reassembly buffer and write
    queue; the daemon never blocks on any single peer.  Inner bulletin
    frames are additionally run through [Wire.of_frame] on ingest so
    the stats expose how many garbled frames crossed the wire (they
    are still forwarded — a tampered frame must reach the board and be
    excluded by verifiers, not vanish in transit). *)

module Meter = Yoso_net.Meter

type config = {
  max_body : int;  (** envelope ingest cap, default {!Envelope.default_max_body} *)
  total_timeout_s : float;  (** watchdog on the whole run *)
  tick_s : float;  (** select granularity *)
  grace_s : float;
      (** reconnect window: how long a dead connection's slot may stay
          silent before [Peer_down] is broadcast *)
  fsync_every : int;  (** journal fsync batch size *)
}

val default_config : config
(** Timing fields default to {!Transport_policy.default}. *)

type stats = {
  connections : int;
  frames_in : int;  (** [Post] envelopes accepted (duplicates excluded) *)
  frames_out : int;  (** full-frame deliveries enqueued (per recipient) *)
  digests_out : int;  (** routed [Digest] records enqueued (per recipient) *)
  batches_out : int;  (** [Deliver_batch] envelopes flushed *)
  suppressed_bytes : int;
      (** full-frame bytes routing avoided sending (frames summarized
          as [Digest] records instead) *)
  garbled_frames : int;  (** inner frames failing [Wire.of_frame] on ingest *)
  bytes_in : int;
  bytes_out : int;
  peer_downs : int;
  reconnects : int;  (** [Recover] handshakes accepted *)
  replayed_frames : int;  (** catch-up [Deliver]s replayed to reconnectors *)
  recovered_frames : int;  (** board frames rebuilt from the journal at startup *)
  journal_bytes : int;  (** total journal file size across shards (0 without) *)
  shards : int;  (** board partitions (1 = unsharded) *)
  digest : int;
      (** the daemon's own transcript digest, chained over accepted
          posts in sequence order across all shards — equal to the
          sim board digest in a fault-free run with equal seeds *)
  chaos_events : (string * int) list;  (** injected faults by kind, sorted *)
  timed_out : bool;
}

type result = {
  reports : (int * string) list;  (** slot-sorted final reports *)
  down : int list;  (** slots that vanished before reporting *)
  stats : stats;
}

exception Crashed of stats
(** A chaos kill point fired: the daemon dropped every connection and
    closed its journal.  The listen socket is untouched — the caller
    restarts [serve] on it with the same journal path to recover. *)

val serve :
  ?config:config ->
  ?meter:Meter.t ->
  ?journal:string ->
  ?chaos:Chaos.t ->
  ?topology:Topology.t ->
  listen:Unix.file_descr ->
  nslots:int ->
  unit ->
  result
(** Runs the event loop on an already-listening socket until the run
    completes (or the watchdog fires, in which case [stats.timed_out]
    is set and partial results are returned).  [journal] is the
    write-ahead journal path: replayed at startup (all shard files,
    stitched), appended per accepted frame to the posting slot's
    shard file.  [topology] sets the shard count (its [nslots] must
    match; routing itself is driven by what each client [Subscribe]s
    to, so an unrouted topology still shards the journal).
    Per-connection envelope bytes are recorded into [meter] under
    ["slotN"] names, with catch-up replay split out under
    ["replay:slotN"] and routed delivery attributed per subscription
    via {!Meter.record_route}.  The listen socket is left open; the
    caller owns it.
    @raise Crashed when a chaos kill point fires. *)
