(** Shard and subscription geometry for the routed transport.

    One {!t} value describes how a run's board is laid out:

    - [nslots] member processes, role index [mod nslots] mapping roles
      onto slots;
    - [shards] board shards.  A shard is a partition of the board
      keyed by the posting slot ([slot mod shards] — a committee
      partition): each shard has its own write-ahead journal file and
      the daemon's transcript digest chains {e across} shards in
      global commit order, so stitching the per-shard journals back
      together (merge by sequence number) reproduces the exact board
      and digest of an unsharded run;
    - [quorum] full-frame fan-out: each posted frame is delivered in
      full to the [quorum] slots following its owner in ring order,
      and as a compact [(seq, slot, checksum, length)] digest record
      to everyone else (including the owner, as its ack);
    - [routed = false] is the legacy geometry: every slot receives
      every frame in full.

    The same value is consumed by {!Runner} (derives each member's
    subscription), {!Daemon} (routes deliveries, partitions journals)
    and the CLI/bench. *)

type t = private {
  nslots : int;
  shards : int;
  quorum : int;
  routed : bool;
}

val broadcast : nslots:int -> t
(** Legacy geometry: one shard, full delivery to every slot. *)

val routed : ?shards:int -> ?quorum:int -> nslots:int -> unit -> t
(** Interest-routed geometry.  [shards] defaults to 1; [quorum]
    defaults to {!default_quorum}.
    @raise Invalid_argument on [shards] outside [1, nslots] or
    [quorum] outside [1, nslots-1]. *)

val sharded : shards:int -> nslots:int -> t
(** Journal/bookkeeping sharding {e without} interest routing: every
    slot still receives every frame in full.
    @raise Invalid_argument on [shards] outside [1, nslots]. *)

val default_quorum : nslots:int -> int
(** [max 2 (nslots / 8)], capped at [nslots - 1]. *)

val owner_slot : t -> index:int -> int
(** The slot owning a role with the given committee index. *)

val shard_of_slot : t -> slot:int -> int
(** Which board shard records frames posted by [slot]. *)

val wants_full : t -> me:int -> owner:int -> bool
(** Whether slot [me] receives [owner]'s frames in full (always [true]
    when not routed). *)

val full_sources : t -> me:int -> int list
(** The subscription slot [me] registers: every owner slot whose
    frames it receives in full.  [List.length] is [quorum] (or
    [nslots] when not routed). *)

val pp : Format.formatter -> t -> unit
