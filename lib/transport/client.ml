type t = {
  fd : Unix.file_descr;
  slot : int;
  nslots : int;
  deadline_ms : float;
  stream : Envelope.stream;
  pending : (int, string) Hashtbl.t;  (* seq -> frame, non-own deliveries *)
  down : bool array;
  mutable next_deliver : int;  (* low-water mark: deliveries are monotone *)
  mutable own_posts : int;
  mutable shutdown : bool;
}

exception Protocol_error of string

let violate fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt
let slot t = t.slot
let own_posts t = t.own_posts

(* Pull one envelope off the socket, blocking at most until [deadline].
   [Envelope.needed] tells us exactly how many bytes complete the
   front envelope, so the blocking reads are always right-sized. *)
let rec recv t ~deadline =
  match Envelope.next t.stream with
  | Some m -> m
  | None ->
    let k = max 1 (Envelope.needed t.stream) in
    Envelope.feed t.stream (Sockio.read_exactly ?deadline t.fd k);
    recv t ~deadline

(* Deliveries arrive in daemon commit order, so a [Peer_down] can only
   be seen after every frame its slot managed to post — marking the
   slot down never races a frame we still owe to [pending]. *)
let absorb t msg =
  match msg with
  | Envelope.Deliver { seq; slot; frame } ->
    if seq < t.next_deliver then violate "deliver seq %d after %d" seq t.next_deliver;
    t.next_deliver <- seq + 1;
    if slot <> t.slot then Hashtbl.replace t.pending seq frame
  | Envelope.Peer_down { slot } ->
    if slot < 0 || slot >= t.nslots then violate "peer-down for slot %d" slot;
    t.down.(slot) <- true
  | Envelope.Shutdown -> t.shutdown <- true
  | Envelope.Start -> violate "start after start"
  | Envelope.Hello _ | Envelope.Post _ | Envelope.Report _ ->
    violate "daemon sent a client-only message"

let connect ?(deadline_ms = 10_000.) ~addr ~slot ~nslots ~seed () =
  if slot < 0 || slot >= nslots then invalid_arg "Client.connect: slot out of range";
  let fd = Sockio.connect_with_retry addr in
  let t =
    {
      fd;
      slot;
      nslots;
      deadline_ms;
      stream = Envelope.stream ();
      pending = Hashtbl.create 64;
      down = Array.make nslots false;
      next_deliver = 0;
      own_posts = 0;
      shutdown = false;
    }
  in
  Sockio.write_all fd (Envelope.encode (Envelope.Hello { slot; nslots; seed }));
  let deadline = Some (Sockio.deadline_after deadline_ms) in
  let rec await_start () =
    match recv t ~deadline with
    | Envelope.Start -> ()
    | Envelope.Peer_down { slot } when slot >= 0 && slot < nslots ->
      t.down.(slot) <- true;
      await_start ()
    | m -> violate "expected start, got %s" (Format.asprintf "%a" Envelope.pp_msg m)
  in
  await_start ();
  t

let post t ~seq ~frame =
  Sockio.write_all t.fd (Envelope.encode (Envelope.Post { seq; slot = t.slot; frame }));
  t.own_posts <- t.own_posts + 1

let fetch t ~seq ~owner =
  let deadline = Some (Sockio.deadline_after t.deadline_ms) in
  let rec go () =
    match Hashtbl.find_opt t.pending seq with
    | Some frame ->
      Hashtbl.remove t.pending seq;
      `Frame frame
    | None ->
      if t.down.(owner) || t.shutdown then `Down
      else (
        match recv t ~deadline with
        | msg ->
          absorb t msg;
          go ()
        | exception (Sockio.Timeout | Sockio.Closed) ->
          (* round deadline expired, or the board itself went away:
             either way this frame is not coming *)
          t.down.(owner) <- true;
          `Down)
  in
  go ()

let report t ~json =
  try Sockio.write_all t.fd (Envelope.encode (Envelope.Report { slot = t.slot; json }))
  with Sockio.Closed | Unix.Unix_error _ -> ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
