module Splitmix = Yoso_hash.Splitmix

type t = {
  mutable fd : Unix.file_descr;
  addr : Unix.sockaddr;
  slot : int;
  nslots : int;
  seed : int;
  deadline_ms : float;
  policy : Transport_policy.t;
  topology : Topology.t option;  (* routed: subscribe after every handshake *)
  mutable stream : Envelope.stream;  (* reset on reconnect: torn bytes die with the socket *)
  pending : (int, [ `Frame of string | `Summary of int * int ]) Hashtbl.t;
      (* seq -> delivery, non-own *)
  unacked : (int, string) Hashtbl.t;  (* own posts without a Deliver echo yet *)
  down : bool array;
  mutable next_deliver : int;  (* low-water mark: deliveries are monotone *)
  mutable own_posts : int;
  mutable started : bool;
  mutable shutdown : bool;
  mutable reconnects : int;
  mutable replayed : int;
}

exception Protocol_error of string

let violate fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt
let slot t = t.slot
let own_posts t = t.own_posts
let stats t = (t.reconnects, t.replayed)

(* Pull one envelope off the socket, blocking at most until [deadline].
   [Envelope.needed] tells us exactly how many bytes complete the
   front envelope, so the blocking reads are always right-sized. *)
let rec recv t ~deadline =
  match Envelope.next t.stream with
  | Some m -> m
  | None ->
    let k = max 1 (Envelope.needed t.stream) in
    Envelope.feed t.stream (Sockio.read_exactly ?deadline t.fd k);
    recv t ~deadline

(* the Subscribe this client owes the daemon after every successful
   handshake: its interest set under the routed topology, or nothing
   at all (legacy full broadcast) without one *)
let subscription t =
  match t.topology with
  | Some topo when topo.Topology.routed ->
    Some
      (Envelope.encode
         (Envelope.Subscribe
            { slot = t.slot; full_of = Topology.full_sources topo ~me:t.slot }))
  | _ -> None

(* Deliveries arrive in daemon commit order, so a [Peer_down] can only
   be seen after every frame its slot managed to post — marking the
   slot down never races a frame we still owe to [pending].  A
   delivery below the low-water mark is a duplicate (chaos injection,
   or replay overlapping an in-flight frame) and is absorbed
   silently — the board's total order makes re-delivery idempotent.
   An own-slot delivery — full frame or digest record alike — is the
   daemon's ack for an in-flight post. *)
let deliver t ~seq ~slot d =
  if seq >= t.next_deliver then begin
    t.next_deliver <- seq + 1;
    if slot = t.slot then Hashtbl.remove t.unacked seq
    else Hashtbl.replace t.pending seq d
  end

let absorb t msg =
  match msg with
  | Envelope.Deliver { seq; slot; frame } -> deliver t ~seq ~slot (`Frame frame)
  | Envelope.Deliver_batch records ->
    List.iter
      (function
        | Envelope.Full { seq; slot; frame } -> deliver t ~seq ~slot (`Frame frame)
        | Envelope.Digest { seq; slot; csum; len } ->
          deliver t ~seq ~slot (`Summary (csum, len)))
      records
  | Envelope.Peer_down { slot } ->
    if slot < 0 || slot >= t.nslots then violate "peer-down for slot %d" slot;
    t.down.(slot) <- true
  | Envelope.Shutdown -> t.shutdown <- true
  | Envelope.Start -> t.started <- true
  | Envelope.Recovered _ -> violate "recovered outside a recover handshake"
  | Envelope.Hello _ | Envelope.Post _ | Envelope.Report _ | Envelope.Recover _
  | Envelope.Subscribe _ ->
    violate "daemon sent a client-only message"

(* Reconnect and catch up: fresh socket, [Recover] handshake carrying
   the next delivery we have not seen, then re-post any own frames the
   daemon never acknowledged (they form a consecutive run from the
   daemon's recovered counter — replicated execution blocks on every
   earlier frame, so the re-post can introduce no gap).  Bounded by
   the reconnect policy's attempt and elapsed budgets; exhaustion
   raises [Sockio.Closed] and the caller takes the silent-fault
   path. *)
let recover t =
  if t.shutdown then raise Sockio.Closed;
  let retry = t.policy.Transport_policy.reconnect in
  let t0 = Unix.gettimeofday () in
  let handshakes = 3 in
  let rec go attempt =
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    match
      let fd =
        Sockio.connect_with_retry ~retry
          ~seed:(Splitmix.mix t.seed (t.slot + (attempt lsl 16)))
          t.addr
      in
      t.fd <- fd;
      t.stream <- Envelope.stream ();
      Sockio.write_all fd
        (Envelope.encode
           (Envelope.Recover
              { slot = t.slot; nslots = t.nslots; seed = t.seed; next_seq = t.next_deliver }));
      let deadline = Some (Sockio.deadline_after t.deadline_ms) in
      match recv t ~deadline with
      | Envelope.Recovered { next_seq; started } ->
        if started then t.started <- true;
        t.replayed <- t.replayed + max 0 (next_seq - t.next_deliver);
        Hashtbl.fold
          (fun seq frame acc -> if seq >= next_seq then (seq, frame) :: acc else acc)
          t.unacked []
        |> List.sort compare
        |> List.iter (fun (seq, frame) ->
               Sockio.write_all fd
                 (Envelope.encode (Envelope.Post { seq; slot = t.slot; frame })));
        (* the fresh connection starts unsubscribed (catch-up replay is
           always legacy full frames): re-register the interest set *)
        Option.iter (Sockio.write_all fd) (subscription t)
      | m -> violate "expected recovered, got %s" (Format.asprintf "%a" Envelope.pp_msg m)
    with
    | () -> t.reconnects <- t.reconnects + 1
    | exception ((Sockio.Closed | Sockio.Timeout | Unix.Unix_error _) as e) ->
      let elapsed = (Unix.gettimeofday () -. t0) *. 1000. in
      if attempt >= handshakes || elapsed > retry.Transport_policy.max_elapsed_ms then
        match e with
        | Sockio.Timeout | Sockio.Closed -> raise Sockio.Closed
        | e -> raise e
      else go (attempt + 1)
  in
  go 1

let connect ?deadline_ms ?(policy = Transport_policy.default) ?topology ~addr ~slot ~nslots
    ~seed () =
  if slot < 0 || slot >= nslots then invalid_arg "Client.connect: slot out of range";
  (match topology with
  | Some (topo : Topology.t) ->
    if topo.Topology.nslots <> nslots then
      invalid_arg "Client.connect: topology nslots mismatch"
  | None -> ());
  let deadline_ms =
    match deadline_ms with Some d -> d | None -> policy.Transport_policy.round_deadline_ms
  in
  let fd =
    Sockio.connect_with_retry ~retry:policy.Transport_policy.connect
      ~seed:(Splitmix.mix seed slot) addr
  in
  let t =
    {
      fd;
      addr;
      slot;
      nslots;
      seed;
      deadline_ms;
      policy;
      topology;
      stream = Envelope.stream ();
      pending = Hashtbl.create 64;
      unacked = Hashtbl.create 8;
      down = Array.make nslots false;
      next_deliver = 0;
      own_posts = 0;
      started = false;
      shutdown = false;
      reconnects = 0;
      replayed = 0;
    }
  in
  Sockio.write_all fd (Envelope.encode (Envelope.Hello { slot; nslots; seed }));
  Option.iter (Sockio.write_all fd) (subscription t);
  let deadline = Some (Sockio.deadline_after deadline_ms) in
  let rec await_start () =
    if not t.started then
      match recv t ~deadline with
      | msg ->
        absorb t msg;
        await_start ()
      | exception Sockio.Closed ->
        (* daemon died between accept and start: recover re-hellos via
           the Recover handshake, which also reports the start flag *)
        recover t;
        await_start ()
  in
  await_start ();
  t

let post t ~seq ~frame =
  (* recorded before the write: if the daemon dies mid-flight the
     recover handshake decides whether this frame needs re-posting *)
  Hashtbl.replace t.unacked seq frame;
  t.own_posts <- t.own_posts + 1;
  try Sockio.write_all t.fd (Envelope.encode (Envelope.Post { seq; slot = t.slot; frame }))
  with Sockio.Closed -> recover t

let fetch t ~seq ~owner =
  let deadline = Some (Sockio.deadline_after t.deadline_ms) in
  let rec go () =
    match Hashtbl.find_opt t.pending seq with
    | Some d ->
      Hashtbl.remove t.pending seq;
      (d :> [ `Frame of string | `Summary of int * int | `Down ])
    | None ->
      if t.down.(owner) || t.shutdown then `Down
      else (
        match recv t ~deadline with
        | msg ->
          absorb t msg;
          go ()
        | exception Sockio.Timeout ->
          (* round deadline expired: this frame is not coming *)
          t.down.(owner) <- true;
          `Down
        | exception Sockio.Closed -> (
          (* the board went away mid-wait: reconnect, catch up, keep
             waiting; only an exhausted retry budget blames the owner *)
          match recover t with
          | () -> go ()
          | exception (Sockio.Closed | Unix.Unix_error _) ->
            t.down.(owner) <- true;
            `Down))
  in
  go ()

let report t ~json =
  let payload = Envelope.encode (Envelope.Report { slot = t.slot; json }) in
  try Sockio.write_all t.fd payload
  with Sockio.Closed | Unix.Unix_error _ -> (
    (* one recovery round for the final report; past that, best-effort *)
    try
      recover t;
      Sockio.write_all t.fd payload
    with Sockio.Closed | Sockio.Timeout | Unix.Unix_error _ | Protocol_error _ -> ())

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
