(** Committee-member side of the transport: a blocking socket client
    speaking the {!Envelope} protocol against a {!Daemon}.

    The client is driven synchronously from inside the protocol's
    commit path: the member that owns board frame [seq] calls {!post};
    everyone calls {!fetch} and blocks until the daemon's delivery
    for that sequence number arrives (deliveries come in strict [seq]
    order, so out-of-order frames are stashed and replayed).  A peer
    that the daemon declared down — or a round deadline expiring while
    we wait — surfaces as [`Down], which the caller maps onto the
    silent-fault path.

    {b Routing.}  With a routed [?topology], the client registers its
    interest set ([Subscribe]) right after every [Hello]/[Recover]
    handshake; the daemon then delivers only the frames of slots in
    {!Topology.full_sources} in full and everything else as a
    [`Summary (checksum, length)] digest record, both coalesced into
    [Deliver_batch] envelopes.  Without a topology (or with a
    broadcast one) the client never subscribes and gets the legacy
    full-frame [Deliver] stream.

    {b Reconnect.}  A connection that dies mid-run (daemon restart,
    injected fault) is re-established transparently: the client
    redials under the {!Transport_policy.reconnect_retry} budget,
    sends [Recover] with the next delivery it has not seen, absorbs
    the daemon's ordered catch-up replay, and re-posts any own frames
    the daemon never acknowledged.  Duplicate deliveries (chaos
    injection, replay overlap) are absorbed idempotently.  Only an
    exhausted retry budget surfaces as [`Down] — a timely recovery is
    pure latency. *)

type t

exception Protocol_error of string
(** The daemon broke the envelope protocol (bad message order,
    unexpected sequence number, shutdown mid-round). *)

val connect :
  ?deadline_ms:float ->
  ?policy:Transport_policy.t ->
  ?topology:Topology.t ->
  addr:Unix.sockaddr ->
  slot:int ->
  nslots:int ->
  seed:int ->
  unit ->
  t
(** Connects (with bounded retry-and-backoff, so racing the daemon's
    [listen] is safe), sends [Hello] (and, under a routed [topology],
    [Subscribe]) and blocks until [Start] — riding out a daemon
    restart in between via the recover path.  [deadline_ms] is the
    per-round receive deadline used by every subsequent blocking
    wait; defaults to [policy]'s [round_deadline_ms]. *)

val slot : t -> int
val own_posts : t -> int
(** Number of frames this client has posted so far (drives the
    deterministic crash drill). *)

val stats : t -> int * int
(** [(reconnects, caught_up)]: successful [Recover] handshakes, and
    deliveries caught up through them. *)

val post : t -> seq:int -> frame:string -> unit
(** Ship board frame [seq], owned by this slot, to the daemon.  The
    matching [Deliver] echo is consumed internally when it comes back;
    it is not returned by {!fetch}.  A connection lost mid-write
    triggers recovery (the frame is re-posted if the daemon never
    accepted it).
    @raise Sockio.Closed when the reconnect budget is exhausted. *)

val fetch :
  t -> seq:int -> owner:int -> [ `Frame of string | `Summary of int * int | `Down ]
(** Block until the daemon delivers frame [seq] (posted by slot
    [owner]) — in full ([`Frame]) or as a routed digest record
    ([`Summary (checksum, length)]) — or return [`Down] if that slot
    is known dead, went dead while we waited, or the round deadline
    expired.  A dropped connection is recovered in place; only an
    exhausted reconnect budget maps to [`Down]. *)

val report : t -> json:string -> unit
(** Send the final report.  Best-effort with one recovery round: a
    daemon that stays unreachable is ignored. *)

val close : t -> unit
