(** Committee-member side of the transport: a blocking socket client
    speaking the {!Envelope} protocol against a {!Daemon}.

    The client is driven synchronously from inside the protocol's
    commit path: the member that owns board frame [seq] calls {!post};
    everyone calls {!fetch} and blocks until the daemon's [Deliver]
    for that sequence number arrives (deliveries come in strict [seq]
    order, so out-of-order frames are stashed and replayed).  A peer
    that the daemon declared down — or a round deadline expiring while
    we wait — surfaces as [`Down], which the caller maps onto the
    silent-fault path. *)

type t

exception Protocol_error of string
(** The daemon broke the envelope protocol (bad message order,
    unexpected sequence number, shutdown mid-round). *)

val connect :
  ?deadline_ms:float ->
  addr:Unix.sockaddr ->
  slot:int ->
  nslots:int ->
  seed:int ->
  unit ->
  t
(** Connects (with bounded retry-and-backoff, so racing the daemon's
    [listen] is safe), sends [Hello] and blocks until [Start].
    [deadline_ms] is the per-round receive deadline used by every
    subsequent blocking wait; default 10s. *)

val slot : t -> int
val own_posts : t -> int
(** Number of frames this client has posted so far (drives the
    deterministic crash drill). *)

val post : t -> seq:int -> frame:string -> unit
(** Ship board frame [seq], owned by this slot, to the daemon.  The
    matching [Deliver] echo is consumed internally when it comes back;
    it is not returned by {!fetch}. *)

val fetch : t -> seq:int -> owner:int -> [ `Frame of string | `Down ]
(** Block until the daemon delivers frame [seq] (posted by slot
    [owner]), or return [`Down] if that slot is known dead, went dead
    while we waited, or the round deadline expired. *)

val report : t -> json:string -> unit
(** Send the final report.  Best-effort: a daemon that already went
    away is ignored. *)

val close : t -> unit
