module Board = Yoso_net.Board
module Meter = Yoso_net.Meter
module Role = Yoso_runtime.Role

type endpoint = [ `Unix_socket | `Tcp ]

type result = {
  reports : (int * string) list;
  down : int list;
  agree : bool;
  wall_ms : float;
  restarts : int;
  stats : Daemon.stats;
  conn_bytes : (string * (int * int)) list;
  children : (int * Unix.process_status) list;
}

let link_of_client ?crash_after ?topology ~nslots client =
  let me = Client.slot client in
  let owns (r : Role.id) = r.Role.index mod nslots = me in
  let routed =
    match topology with Some (t : Topology.t) -> t.Topology.routed | None -> false
  in
  {
    Board.owns;
    (* role-local execution: under a routed topology this process
       materializes only its own frames; everything else is a skeleton
       whose content (or digest) arrives through [recv] *)
    local = (fun r -> (not routed) || owns r);
    send =
      (fun ~seq ~phase:_ ~author:_ ~frame ->
        (match crash_after with
        | Some m when Client.own_posts client >= m ->
          (* the crash drill: vanish mid-round, right before our next
             owned post, so survivors must blame us for it *)
          Unix._exit 13
        | _ -> ());
        Client.post client ~seq ~frame);
    recv =
      (fun ~seq ~phase:_ ~author ->
        (Client.fetch client ~seq ~owner:(author.Role.index mod nslots)
          :> Board.delivery));
    stats = (fun () -> Client.stats client);
  }

let sock_counter = ref 0

let make_listener endpoint =
  match endpoint with
  | `Unix_socket ->
    incr sock_counter;
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "yoso-%d-%d.sock" (Unix.getpid ()) !sock_counter)
    in
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, Unix.ADDR_UNIX path, Some path)
  | `Tcp ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    Unix.listen fd 64;
    (fd, Unix.getsockname fd, None)

(* field-wise stats accumulation across daemon lives; [b] is the
   later life, whose journal size and chaos counters are already
   cumulative (the journal file grows across restarts and the Chaos.t
   is shared between them) *)
let add_stats a b =
  {
    Daemon.connections = a.Daemon.connections + b.Daemon.connections;
    frames_in = a.frames_in + b.frames_in;
    frames_out = a.frames_out + b.frames_out;
    digests_out = a.digests_out + b.digests_out;
    batches_out = a.batches_out + b.batches_out;
    suppressed_bytes = a.suppressed_bytes + b.suppressed_bytes;
    garbled_frames = a.garbled_frames + b.garbled_frames;
    bytes_in = a.bytes_in + b.bytes_in;
    bytes_out = a.bytes_out + b.bytes_out;
    peer_downs = a.peer_downs + b.peer_downs;
    reconnects = a.reconnects + b.reconnects;
    replayed_frames = a.replayed_frames + b.replayed_frames;
    recovered_frames = a.recovered_frames + b.recovered_frames;
    journal_bytes = b.journal_bytes;
    shards = b.shards;
    (* the restarted daemon re-chains the whole journal, so the last
       life's digest already covers every accepted post *)
    digest = b.digest;
    chaos_events = b.chaos_events;
    timed_out = a.timed_out || b.timed_out;
  }

let run ?(endpoint = `Unix_socket) ?config ?deadline_ms ?crash ?meter ?policy ?journal
    ?chaos ?topology ~nslots ~seed ~child () =
  if nslots < 1 then invalid_arg "Runner.run: nslots must be >= 1";
  (match topology with
  | Some (topo : Topology.t) ->
    if topo.Topology.nslots <> nslots then invalid_arg "Runner.run: topology nslots mismatch"
  | None -> ());
  let policy = Option.value policy ~default:Transport_policy.default in
  let deadline_ms =
    match deadline_ms with
    | Some d -> d
    | None -> policy.Transport_policy.round_deadline_ms
  in
  (match chaos with
  | Some ch when (Chaos.config ch).Chaos.kill_at <> [] && journal = None ->
    invalid_arg "Runner.run: chaos kill points need a journal to restart from"
  | _ -> ());
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let t0 = Unix.gettimeofday () in
  (* listen before forking: the backlog holds children that connect
     before the daemon's event loop starts accepting *)
  let listen, addr, unlink_path = make_listener endpoint in
  let spawn slot =
    match Unix.fork () with
    | 0 ->
      (* child: its whole life is connect -> replay protocol -> report *)
      let status =
        try
          Unix.close listen;
          let client =
            Client.connect ~deadline_ms ~policy ?topology ~addr ~slot ~nslots ~seed ()
          in
          let crash_after =
            match crash with Some (s, m) when s = slot -> Some m | _ -> None
          in
          let link = link_of_client ?crash_after ?topology ~nslots client in
          let json = child ~slot ~link in
          Client.report client ~json;
          Client.close client;
          0
        with e ->
          Printf.eprintf "[yoso-transport] slot %d: %s\n%!" slot (Printexc.to_string e);
          3
      in
      Unix._exit status
    | pid -> (slot, pid)
  in
  let pids = List.init nslots spawn in
  let finish () =
    let children =
      List.map
        (fun (slot, pid) ->
          let _, status = Unix.waitpid [] pid in
          (slot, status))
        pids
    in
    (try Unix.close listen with Unix.Unix_error _ -> ());
    (match unlink_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | None -> ());
    children
  in
  (* a chaos kill is a daemon death, not a run death: restart serving
     on the same listen fd (its backlog holds the reconnect storm) and
     recover the board from the journal *)
  let rec go crashed =
    match Daemon.serve ?config ?meter ?journal ?chaos ?topology ~listen ~nslots () with
    | d -> (d, crashed)
    | exception Daemon.Crashed st -> go (st :: crashed)
  in
  match go [] with
  | d, crashed ->
    let children = finish () in
    let agree =
      match d.Daemon.reports with
      | [] -> false
      | (_, first) :: rest -> List.for_all (fun (_, j) -> String.equal j first) rest
    in
    {
      reports = d.reports;
      down = d.down;
      agree;
      wall_ms = (Unix.gettimeofday () -. t0) *. 1000.;
      restarts = List.length crashed;
      stats = List.fold_left (fun acc s -> add_stats s acc) d.stats crashed;
      conn_bytes =
        (match meter with Some m -> Meter.connections m | None -> []);
      children;
    }
  | exception e ->
    (* daemon blew up: don't leak children *)
    List.iter (fun (_, pid) -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()) pids;
    ignore (finish ());
    raise e

let json_int_field json ~field =
  let needle = Printf.sprintf "\"%s\":" field in
  match String.index_opt json '{' with
  | None -> None
  | Some _ -> (
    let nlen = String.length needle in
    let jlen = String.length json in
    let rec find i =
      if i + nlen > jlen then None
      else if String.sub json i nlen = needle then Some (i + nlen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
      let i = ref start in
      while !i < jlen && json.[!i] = ' ' do incr i done;
      let stop = ref !i in
      if !stop < jlen && json.[!stop] = '-' then incr stop;
      while !stop < jlen && json.[!stop] >= '0' && json.[!stop] <= '9' do incr stop done;
      if !stop = !i then None else int_of_string_opt (String.sub json !i (!stop - !i)))
