(** EINTR-safe socket I/O primitives.

    Every loop in the transport is built on these two calls:
    {!read_exactly} keeps reading until it has the requested byte
    count (sockets deliver frames in arbitrary chunks — a frame split
    at any byte boundary must still assemble), {!write_all} keeps
    writing until the whole string is on the wire.  Both retry
    [EINTR] transparently, park on [select] for [EAGAIN], and enforce
    an optional absolute wall-clock deadline. *)

exception Timeout
(** The deadline passed before the operation completed. *)

exception Closed
(** The peer closed the connection ([read] returned 0, or the write
    side took [EPIPE]/[ECONNRESET]). *)

val read_exactly : ?deadline:float -> Unix.file_descr -> int -> string
(** [read_exactly fd n] returns exactly [n] bytes, looping over
    however many partial reads the kernel delivers.  [deadline] is an
    absolute [Unix.gettimeofday] instant.
    @raise Timeout if the deadline passes first.
    @raise Closed on EOF. *)

val write_all : ?deadline:float -> Unix.file_descr -> string -> unit
(** Writes the whole string, looping over partial writes.
    @raise Timeout if the deadline passes first.
    @raise Closed if the peer is gone. *)

val connect_with_retry :
  ?retry:Transport_policy.retry -> ?seed:int -> Unix.sockaddr -> Unix.file_descr
(** Creates a stream socket for the address family and connects,
    retrying transient failures ([ECONNREFUSED], [ENOENT],
    [EAGAIN], ...) under [retry] (default
    {!Transport_policy.connect_retry}): full-jittered exponential
    backoff seeded by [seed], bounded both by the attempt count and by
    the total elapsed budget — the loop gives up rather than overshoot
    [max_elapsed_ms].  Ignores [SIGPIPE] for the process as a side
    effect — transport code must see write failures as exceptions, not
    signals.
    @raise Unix.Unix_error when the last attempt within budget fails. *)

val deadline_after : float -> float
(** [deadline_after ms] is the absolute instant [ms] milliseconds from
    now. *)
