(** Write-ahead journal for the bulletin-board daemon.

    The board is the only durable artifact of a YOSO run, so the
    daemon appends every accepted frame to this log {e before}
    broadcasting it.  A restarted daemon replays the journal to
    rebuild its sequence counter, board contents and report table,
    then resumes serving; reconnecting clients catch up on the gap via
    the [Recover] handshake.

    Record layout:

    {v | body length (4B LE) | body | checksum (8B LE) | v}

    where [body] is a varint record kind followed by the kind's
    fields, and the checksum is {!Yoso_net.Wire.checksum} over the
    body.  {!replay} returns the longest intact prefix: a torn tail —
    the expected state after a crash mid-append — is detected by the
    length or checksum check and never yields a partial record.

    Appends go straight to the fd ([Unix.write], no userland
    buffering) and are fsynced in batches of [fsync_every]: an
    in-process restart therefore never loses an accepted record, and
    the power-loss window is bounded by the batch size. *)

type record =
  | Started of { nslots : int }  (** the run's [Start] was broadcast *)
  | Posted of { seq : int; slot : int; frame : string }
      (** board frame [seq], accepted from [slot] *)
  | Reported of { slot : int; json : string }  (** final report landed *)

val pp_record : Format.formatter -> record -> unit

val encode_record : record -> string
(** Exact on-disk bytes of one record (exposed for tests). *)

type t

val open_append : ?fsync_every:int -> path:string -> unit -> t
(** Opens (creating if missing) for append.  A torn tail left by a
    crash is truncated first, so new records always land after the
    last intact one (appends after garbage would be invisible to
    {!replay}).  [fsync_every] defaults to
    {!Transport_policy.default}'s batch size.
    @raise Invalid_argument if [fsync_every < 1]. *)

val append : t -> record -> unit
(** Appends one record; fsyncs when the batch counter fills. *)

val sync : t -> unit
(** Forces an fsync of any unsynced appends. *)

val close : t -> unit
(** Syncs and closes.  Idempotent. *)

val path : t -> string

val bytes : t -> int
(** Total file size in bytes (restored prefix + appends). *)

val appended : t -> int
(** Records appended through this handle. *)

val replay : string -> record list
(** Parses the journal at [path] and returns the longest intact prefix
    of records.  A missing file, a torn tail or a corrupted record
    ends the replay at the last complete record — a partial or
    checksum-failing record is never returned. *)

val intact_bytes : string -> int
(** Byte length of the longest intact prefix at [path] (0 for a
    missing file) — where {!replay} stopped parsing. *)
