(** Orchestrator: forks one OS process per committee slot, stands up
    the bulletin-board {!Daemon} in the parent, hands each child a
    {!Yoso_net.Board.link} wired to a {!Client}, and collects the
    final reports.

    The execution model without a topology is replicated determinism:
    every child runs the {e same} seeded protocol; the link decides,
    per board frame, whether this child physically ships the frame or
    blocks on the daemon's broadcast.  All children therefore produce
    byte-identical reports — [agree] is the cheap agreement oracle —
    and the transcript digest matches a plain in-process run with the
    same seeds.

    With a {e routed} {!Topology.t}, execution is {e role-local}:
    each child materializes only the frames of slots it owns,
    prepares everything else as zero-filled skeletons of identical
    wire weight, and receives non-owned content through the daemon's
    interest-routed delivery — full frames from its quorum sources,
    digest records (checksum + length) from everyone else.  The board
    digest chains the authoritative checksum of whatever crossed the
    wire, so reports still agree byte-for-byte and the fault-free
    digest still equals the sim digest at equal seeds. *)

module Board = Yoso_net.Board
module Meter = Yoso_net.Meter

type endpoint = [ `Unix_socket | `Tcp ]
(** [`Unix_socket] binds a fresh socket under the temp dir;
    [`Tcp] binds 127.0.0.1 on an ephemeral port. *)

type result = {
  reports : (int * string) list;  (** slot-sorted report JSON from each child *)
  down : int list;  (** slots that died before reporting *)
  agree : bool;  (** all collected reports byte-identical *)
  wall_ms : float;
  restarts : int;  (** daemon lives lost to chaos kill points *)
  stats : Daemon.stats;  (** summed field-wise across daemon lives *)
  conn_bytes : (string * (int * int)) list;
      (** per-connection (sent, received) daemon-side byte counts *)
  children : (int * Unix.process_status) list;  (** slot -> exit status *)
}

val link_of_client :
  ?crash_after:int -> ?topology:Topology.t -> nslots:int -> Client.t -> Board.link
(** The link a child plugs into its board: [owns] maps role index
    [mod nslots] onto this client's slot; [local] is [owns] under a
    routed [topology] (role-local execution) and constant-[true]
    otherwise (replicated execution); [send] posts owned frames;
    [recv] blocks on the daemon's delivery.  [crash_after m] makes
    the process die ([Unix._exit 13]) when it is about to post its
    [m+1]-th own frame — the deterministic mid-round crash drill. *)

val run :
  ?endpoint:endpoint ->
  ?config:Daemon.config ->
  ?deadline_ms:float ->
  ?crash:int * int ->
  ?meter:Meter.t ->
  ?policy:Transport_policy.t ->
  ?journal:string ->
  ?chaos:Chaos.t ->
  ?topology:Topology.t ->
  nslots:int ->
  seed:int ->
  child:(slot:int -> link:Board.link -> string) ->
  unit ->
  result
(** Runs one full multi-process committee execution.  [child] is
    executed in each forked process and returns its report JSON;
    [crash = (slot, m)] arms the crash drill on one slot.  The parent
    never runs [child]; it serves the board and reaps the children.
    Default endpoint is [`Unix_socket]; timing comes from [policy]
    (default {!Transport_policy.default}), with [deadline_ms]
    overriding the per-round receive deadline.

    [journal] enables the daemon's write-ahead journal at that path;
    [chaos] injects seeded socket faults.  When a chaos kill point
    fires the daemon is restarted in place on the same listen socket,
    recovering the board from the journal — [restarts] counts the
    lives lost; clients ride the restart out via their reconnect
    path.  [topology] switches on interest routing and role-local
    execution (when [routed]) and shards the daemon's bookkeeping
    and journal (when [shards > 1]).
    @raise Invalid_argument if [chaos] schedules kill points without
    a [journal]. *)

val json_int_field : string -> field:string -> int option
(** Tiny extractor for ["field": <int>] from the flat report JSON —
    enough to pull digests out of reports for equality checks without
    a JSON dependency. *)
