module Wire = Yoso_net.Wire

type record =
  | Started of { nslots : int }
  | Posted of { seq : int; slot : int; frame : string }
  | Reported of { slot : int; json : string }

let pp_record ppf = function
  | Started { nslots } -> Format.fprintf ppf "started{nslots=%d}" nslots
  | Posted { seq; slot; frame } ->
    Format.fprintf ppf "posted{seq=%d;slot=%d;%dB}" seq slot (String.length frame)
  | Reported { slot; json } ->
    Format.fprintf ppf "reported{slot=%d;%dB}" slot (String.length json)

(* record layout: | body length (4B LE) | body | checksum (8B LE) |
   body = varint kind, then the kind's fields.  The checksum is
   Wire.checksum over the body, so a torn or bit-flipped tail is
   detected and recovery stops at the last intact record. *)

let kind_of = function Started _ -> 1 | Posted _ -> 2 | Reported _ -> 3

let encode_record r =
  let body =
    let buf = Buffer.create 64 in
    Wire.put_varint buf (kind_of r);
    (match r with
    | Started { nslots } -> Wire.put_varint buf nslots
    | Posted { seq; slot; frame } ->
      Wire.put_varint buf seq;
      Wire.put_varint buf slot;
      Wire.put_bytes buf frame
    | Reported { slot; json } ->
      Wire.put_varint buf slot;
      Wire.put_bytes buf json);
    Buffer.contents buf
  in
  let blen = String.length body in
  let buf = Buffer.create (4 + blen + 8) in
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((blen lsr (8 * i)) land 0xff))
  done;
  Buffer.add_string buf body;
  let h = Wire.checksum body in
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((h lsr (8 * i)) land 0xff))
  done;
  Buffer.contents buf

let max_record_body () = !Wire.max_frame_len + 4096

let decode_body body =
  let d = { Wire.src = body; pos = 0 } in
  let r =
    match Wire.get_varint d with
    | 1 -> Started { nslots = Wire.get_varint d }
    | 2 ->
      let seq = Wire.get_varint d in
      let slot = Wire.get_varint d in
      let frame = Wire.get_bytes d in
      Posted { seq; slot; frame }
    | 3 ->
      let slot = Wire.get_varint d in
      let json = Wire.get_bytes d in
      Reported { slot; json }
    | k -> raise (Wire.Decode_error (Printf.sprintf "journal: unknown record kind %d" k))
  in
  if d.Wire.pos <> String.length body then
    raise (Wire.Decode_error "journal: trailing bytes in record body");
  r

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

(* Longest intact prefix: parsing stops at the first record whose
   length header, body or checksum is truncated or inconsistent — a
   torn tail is expected after a crash and never yields a partial
   record.  Returns the records and the byte offset where parsing
   stopped. *)
let scan path =
  let data = read_file path in
  let len = String.length data in
  let byte i = Char.code data.[i] in
  let rec go pos acc =
    if pos + 4 > len then (List.rev acc, pos)
    else
      let blen =
        byte pos lor (byte (pos + 1) lsl 8) lor (byte (pos + 2) lsl 16)
        lor (byte (pos + 3) lsl 24)
      in
      if blen < 0 || blen > max_record_body () then (List.rev acc, pos)
      else if pos + 4 + blen + 8 > len then (List.rev acc, pos)
      else
        let body = String.sub data (pos + 4) blen in
        let h = ref 0 in
        let toff = pos + 4 + blen in
        for i = 7 downto 0 do
          h := (!h lsl 8) lor byte (toff + i)
        done;
        if !h <> Wire.checksum body then (List.rev acc, pos)
        else
          match decode_body body with
          | r -> go (pos + 4 + blen + 8) (r :: acc)
          | exception Wire.Decode_error _ -> (List.rev acc, pos)
  in
  go 0 []

let replay path = fst (scan path)
let intact_bytes path = snd (scan path)

(* ------------------------------------------------------------------ *)
(* Appender                                                            *)
(* ------------------------------------------------------------------ *)

type t = {
  fd : Unix.file_descr;
  path : string;
  fsync_every : int;
  mutable unsynced : int;
  mutable bytes : int;  (* total file bytes, restored prefix included *)
  mutable appended : int;
  mutable closed : bool;
}

let open_append ?(fsync_every = Transport_policy.default.fsync_every) ~path () =
  if fsync_every < 1 then invalid_arg "Journal.open_append: fsync_every must be >= 1";
  (* a torn tail left by a crash must be cut before appending: new
     records written after garbage would be unreachable to replay,
     which stops at the first damaged record *)
  (match Unix.stat path with
  | { Unix.st_size; _ } ->
    let intact = intact_bytes path in
    if intact < st_size then Unix.truncate path intact
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
  let bytes = (Unix.fstat fd).Unix.st_size in
  { fd; path; fsync_every; unsynced = 0; bytes; appended = 0; closed = false }

let path t = t.path
let bytes t = t.bytes
let appended t = t.appended

let write_all fd s =
  let buf = Bytes.unsafe_of_string s in
  let n = Bytes.length buf in
  let rec go off =
    if off < n then
      match Unix.write fd buf off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let sync t =
  if (not t.closed) && t.unsynced > 0 then begin
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    t.unsynced <- 0
  end

let append t r =
  if t.closed then invalid_arg "Journal.append: journal is closed";
  let s = encode_record r in
  write_all t.fd s;
  t.bytes <- t.bytes + String.length s;
  t.appended <- t.appended + 1;
  t.unsynced <- t.unsynced + 1;
  if t.unsynced >= t.fsync_every then sync t

let close t =
  if not t.closed then begin
    sync t;
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

