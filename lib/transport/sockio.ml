exception Timeout
exception Closed

let deadline_after ms = Unix.gettimeofday () +. (ms /. 1000.)

(* Park until [fd] is ready in the given direction, honouring the
   absolute deadline.  EINTR during select is retried with the
   remaining budget, so a signal cannot extend the wait. *)
let rec wait ~dir ~deadline fd =
  let budget =
    match deadline with
    | None -> -1.
    | Some d ->
      let left = d -. Unix.gettimeofday () in
      if left <= 0. then raise Timeout else left
  in
  let rd, wr = match dir with `Read -> ([ fd ], []) | `Write -> ([], [ fd ]) in
  match Unix.select rd wr [] budget with
  | [], [], _ -> if deadline <> None then raise Timeout else wait ~dir ~deadline fd
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ~dir ~deadline fd

let read_exactly ?deadline fd n =
  if n < 0 then invalid_arg "Sockio.read_exactly: negative count";
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Bytes.unsafe_to_string buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> raise Closed
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        wait ~dir:`Read ~deadline fd;
        go off
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise Closed
  in
  (* even a blocking socket gets a select first when a deadline is set,
     so a silent peer cannot pin us in read(2) forever *)
  if deadline <> None && n > 0 then wait ~dir:`Read ~deadline fd;
  go 0

let write_all ?deadline fd s =
  let buf = Bytes.unsafe_of_string s in
  let n = Bytes.length buf in
  let rec go off =
    if off < n then
      match Unix.write fd buf off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        wait ~dir:`Write ~deadline fd;
        go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> raise Closed
  in
  go 0

let connect_with_retry ?(retry = Transport_policy.connect_retry) ?(seed = 0) addr =
  if retry.Transport_policy.attempts < 1 then
    invalid_arg "Sockio.connect_with_retry: attempts must be >= 1";
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> () (* no sigpipe on this platform *));
  let domain = Unix.domain_of_sockaddr addr in
  let t0 = Unix.gettimeofday () in
  let rec go attempt =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception
        (Unix.Unix_error
           ( ( Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EWOULDBLOCK
             | Unix.EINTR | Unix.ETIMEDOUT ),
             _,
             _ ) as e)
      when attempt < retry.Transport_policy.attempts ->
      Unix.close fd;
      let sleep = Transport_policy.backoff_ms retry ~seed ~attempt in
      (* the total elapsed cap dominates the attempt budget: doubling
         backoff must never overshoot the round deadline *)
      let elapsed = (Unix.gettimeofday () -. t0) *. 1000. in
      if elapsed +. sleep > retry.Transport_policy.max_elapsed_ms then raise e
      else begin
        Unix.sleepf (sleep /. 1000.);
        go (attempt + 1)
      end
    | exception e ->
      Unix.close fd;
      raise e
  in
  go 1
