module Splitmix = Yoso_hash.Splitmix

type action = Pass | Sever | Truncate of float | Duplicate | Delay of float

type config = {
  seed : int;
  kill_at : int list;
  sever_at : (int * int) list;
  sever_rate : float;
  trunc_rate : float;
  dup_rate : float;
  delay_rate : float;
  delay_ms : float;
}

let none =
  {
    seed = 1;
    kill_at = [];
    sever_at = [];
    sever_rate = 0.;
    trunc_rate = 0.;
    dup_rate = 0.;
    delay_rate = 0.;
    delay_ms = 20.;
  }

let active c =
  c.kill_at <> [] || c.sever_at <> []
  || c.sever_rate > 0. || c.trunc_rate > 0. || c.dup_rate > 0. || c.delay_rate > 0.

let validate c =
  let rate name r =
    if r < 0. || r > 1. then
      invalid_arg (Printf.sprintf "Chaos: %s must be in [0,1], got %g" name r)
  in
  rate "sever" c.sever_rate;
  rate "trunc" c.trunc_rate;
  rate "dup" c.dup_rate;
  rate "delay" c.delay_rate;
  if c.sever_rate +. c.trunc_rate +. c.dup_rate +. c.delay_rate > 1. then
    invalid_arg "Chaos: fault rates must sum to at most 1";
  if c.delay_ms < 0. then invalid_arg "Chaos: delay-ms must be >= 0";
  c

(* "sever=0.05,dup=0.02,delay=0.05,delay-ms=20,trunc=0.01,kill=40,kill=90,seed=7" *)
let parse spec =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let parts =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let cfg =
    List.fold_left
      (fun c part ->
        match String.index_opt part '=' with
        | None -> fail "Chaos.parse: expected key=value, got %S" part
        | Some i ->
          let key = String.sub part 0 i in
          let v = String.sub part (i + 1) (String.length part - i - 1) in
          let f () =
            match float_of_string_opt v with
            | Some f -> f
            | None -> fail "Chaos.parse: %s wants a number, got %S" key v
          in
          let n () =
            match int_of_string_opt v with
            | Some n -> n
            | None -> fail "Chaos.parse: %s wants an int, got %S" key v
          in
          (match key with
          | "seed" -> { c with seed = n () }
          | "kill" -> { c with kill_at = c.kill_at @ [ n () ] }
          | "sever" -> { c with sever_rate = f () }
          | "trunc" -> { c with trunc_rate = f () }
          | "dup" -> { c with dup_rate = f () }
          | "delay" -> { c with delay_rate = f () }
          | "delay-ms" -> { c with delay_ms = f () }
          | other ->
            fail
              "Chaos.parse: unknown key %S (seed, kill, sever, trunc, dup, delay, \
               delay-ms)"
              other))
      none parts
  in
  validate cfg

type t = { cfg : config; events : (string, int) Hashtbl.t }

let create cfg = { cfg = validate cfg; events = Hashtbl.create 8 }
let config t = t.cfg

let count t name =
  Hashtbl.replace t.events name (1 + Option.value ~default:0 (Hashtbl.find_opt t.events name))

let events t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.events [] |> List.sort compare

let kill_now t ~seq =
  if List.mem seq t.cfg.kill_at then begin
    count t "kill";
    true
  end
  else false

(* every decision is a stateless function of (seed, seq, slot): the
   same run replays the same faults regardless of select timing, and
   a restarted daemon does not re-draw history *)
let on_deliver t ~seq ~slot =
  if List.mem (seq, slot) t.cfg.sever_at then begin
    count t "sever";
    Sever
  end
  else begin
    let c = t.cfg in
    let rng =
      Splitmix.of_int (Splitmix.mix (Splitmix.mix c.seed 0xC4A05) (Splitmix.mix seq slot))
    in
    let u = Splitmix.float rng in
    let s = c.sever_rate in
    let st = s +. c.trunc_rate in
    let std = st +. c.dup_rate in
    let stdd = std +. c.delay_rate in
    if u < s then begin
      count t "sever";
      Sever
    end
    else if u < st then begin
      count t "truncate";
      Truncate (0.1 +. (0.8 *. Splitmix.float rng))
    end
    else if u < std then begin
      count t "duplicate";
      Duplicate
    end
    else if u < stdd then begin
      count t "delay";
      Delay c.delay_ms
    end
    else Pass
  end
