(** Shared timing policy for the socket transport.

    One place for every retry budget and deadline the transport uses:
    the client's first connect, its reconnect-after-drop budget, the
    per-round receive deadline, the daemon's reconnect grace window
    and watchdog, and the journal's fsync batching.  Daemon, client
    and runner all read the same record, so "how patient is the
    system" is one knob instead of five scattered constants.

    Backoff uses {e full jitter}: sleep is uniform in
    [\[0, min(cap, base * 2^(attempt-1)))], drawn statelessly from
    [(seed, attempt)] — deterministic under replay, decorrelated
    across peers — and the whole retry loop is additionally capped by
    a total elapsed budget so backoff can never overshoot a round
    deadline. *)

type retry = {
  attempts : int;  (** maximum tries *)
  base_ms : float;  (** first backoff step *)
  cap_ms : float;  (** per-sleep ceiling *)
  max_elapsed_ms : float;  (** total wall-clock budget for the loop *)
  jitter : bool;  (** full jitter on each sleep (off = deterministic ladder) *)
}

val connect_retry : retry
(** First connect: 10 tries, 20 ms base, 500 ms cap, 5 s budget. *)

val reconnect_retry : retry
(** Reconnect after a drop: 10 tries, 25 ms base, 400 ms cap, 3 s
    budget — a peer that cannot re-reach the board inside this budget
    gives up and takes the ordinary silent-fault path. *)

type t = {
  connect : retry;
  reconnect : retry;
  round_deadline_ms : float;  (** client blocking-receive deadline *)
  grace_ms : float;
      (** daemon: how long a dead connection's slot may stay silent
          before [Peer_down] is broadcast — the reconnect window *)
  watchdog_s : float;  (** daemon: whole-run watchdog *)
  fsync_every : int;  (** journal: records per fsync batch *)
}

val default : t

val backoff_ms : retry -> seed:int -> attempt:int -> float
(** Sleep (ms) before try [attempt+1] ([attempt >= 1]).  With jitter,
    uniform in [\[0, min(cap_ms, base_ms * 2^(attempt-1)))]; without,
    the capped exponential itself.
    @raise Invalid_argument if [attempt < 1]. *)

val pp_retry : Format.formatter -> retry -> unit
