(** SplitMix64 — fast, splittable, non-cryptographic PRNG.

    Used for workload generation and Monte-Carlo sampling where speed
    matters and cryptographic strength does not.  Deterministic given a
    seed, so every experiment in the benchmark harness is
    reproducible. *)

type t

val create : int64 -> t
val of_int : int -> t

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound > 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val split : t -> t
(** An independent stream (gamma-derived), leaving [t] usable. *)

val mix : int -> int -> int
(** [mix a b] is a stateless avalanche combine of two ints into a
    62-bit non-negative value.  Used to derive independent child seeds
    from a (seed, index) pair: unlike drawing from a shared stream,
    the result depends only on its inputs, so derived seeds are stable
    under any evaluation order. *)
