type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let of_int i = create (Int64.of_int i)

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* 62 bits so the value fits OCaml's 63-bit native int; modulo bias
     is negligible for the bounds we use (far below 2^32) *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let split t =
  let seed = next t in
  create (mix64 seed)

let mix a b =
  let z = Int64.add (Int64.mul (Int64.of_int a) golden_gamma) (Int64.of_int b) in
  let z = mix64 (Int64.add z golden_gamma) in
  Int64.to_int (Int64.shift_right_logical z 2)
