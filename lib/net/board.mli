(** The bulletin board as a network service.

    Wraps the abstract {!Yoso_runtime.Bulletin} so that every post is
    a real transmission: the message is encoded to a canonical
    {!Wire} frame, sent through the {!Sim} network, and — if it
    arrives — decoded and integrity-checked on the receiving side.
    Fault behaviours become genuine network events: a [Delayed] role
    is a frame that misses its round deadline, a corrupted payload is
    a frame that fails its checksum, and (under lossy models) an
    honest post can simply vanish.

    Under {!default_config} (ideal network) every post is [Delivered]
    unless forced late, so protocol behaviour — post counts, blame
    verdicts, element tallies — is identical to the unsimulated board;
    the network layer only *adds* the byte measurements. *)

module Bulletin = Yoso_runtime.Bulletin
module Cost = Yoso_runtime.Cost
module Role = Yoso_runtime.Role

type config = {
  model : Sim.model;
  round_ms : float;
  net_seed : int;
  sizing : Wire.sizing;
}

val default_config : config
(** {!Sim.ideal}, 100 ms rounds, seed 1, {!Wire.default_sizing}. *)

type outcome = Delivered | Late | Dropped | Garbled

val outcome_to_string : outcome -> string

(** {1 Transport link}

    A link plugs a genuine inter-process transport behind the board
    façade.  Every committee-member process replays the same
    deterministic commit sequence; the link makes every frame cross a
    real process boundary: the process that {e owns} the author sends
    the encoded frame to the board daemon, every other process blocks
    until the daemon routes it.  [seq] is the frame counter (the
    commit index), identical in all replicas; [phase] names the
    protocol phase the frame belongs to (for interest bookkeeping).

    [local] is the role-local execution switch: when it returns
    [false] for an author, this process prepares that author's frames
    as zero-filled {e skeletons} of identical wire weight (see
    {!Wire.skeleton_items_of_cost}) instead of materializing the true
    bytes — the content arrives through [recv], either in full
    ([`Frame]) or as the daemon's [`Summary (checksum, length)] digest
    record.  Owners must always be [local]; a legacy broadcast link
    returns [true] for everyone and behaves exactly as before.

    [recv] returning [`Down] means the owning process is gone (socket
    EOF or round-deadline timeout); the commit is treated exactly like
    a dropped frame, so silent peers flow into the fault-detection
    path unchanged.  A received frame that differs from the local
    replay — byte equality when the frame was materialized locally,
    wire-weight equality for skeletons — is treated like a frame that
    fails its integrity check ([Garbled]). *)
type delivery = [ `Frame of string | `Summary of int * int | `Down ]

type link = {
  owns : Role.id -> bool;
  local : Role.id -> bool;
  send : seq:int -> phase:string -> author:Role.id -> frame:string -> unit;
  recv : seq:int -> phase:string -> author:Role.id -> delivery;
  stats : unit -> int * int;
      (** [(reconnects, caught_up)]: connection recoveries this link's
          transport survived and deliveries replayed through them;
          [(0, 0)] for a transport that cannot drop connections *)
}

type transcript = { frames : int; frame_bytes : int; digest : int }
(** Rolling summary of every frame ever put on the wire (including
    dropped and garbled ones); two runs with equal seeds produce equal
    transcripts byte for byte. *)

type t

val create : ?config:config -> unit -> t

val set_link : t -> link option -> unit
(** Installs (or clears) the transport behind the façade.  With no
    link every exchange is local and behaviour is exactly the
    simulated board of PR 2. *)

val post :
  t ->
  author:Role.id ->
  phase:string ->
  step:string ->
  ?items:Wire.item list ->
  ?corrupt:bool ->
  ?force_late:bool ->
  cost:(Cost.kind * int) list ->
  unit ->
  outcome
(** Encode, transmit, deliver, decode.  [items] carry real element
    data (e.g. the online field payloads); any part of [cost] they do
    not cover is synthesized at the configured {!Wire.sizing} so the
    frame has the full wire weight of the post.  [corrupt] flips a
    byte in flight (the frame lands but fails verification);
    [force_late] stalls the sender past the round deadline.  Element
    counts are charged to the bulletin's {!Cost.t} exactly as before;
    measured bytes are charged alongside and broken down in the
    {!Meter}.

    Equivalent to {!prepare} (tagged by a per-round post counter)
    followed immediately by {!commit}. *)

(** {1 Split posting}

    A post factors into a pure, parallelizable half ({!prepare}:
    payload synthesis, frame encoding, checksum, receiver-side decode
    check) and a sequential half ({!commit}: transcript digest chain,
    cost metering, transmission, bulletin slot).  Committee fan-out
    prepares all members' frames concurrently, then commits them in
    index order, so the board observes the same sequence — and hashes
    to the same digest — as a fully sequential run. *)

type prepared
(** A frame ready to commit: encoded, checksummed, pre-decoded. *)

val prepare :
  t ->
  author:Role.id ->
  phase:string ->
  step:string ->
  ?items:Wire.item list ->
  ?corrupt:bool ->
  ?force_late:bool ->
  cost:(Cost.kind * int) list ->
  tag:int ->
  unit ->
  prepared
(** Pure given [(config, tag)]: safe to call from worker domains.
    [tag] seeds the synthesized blob bytes (via a stateless mix with
    the net seed) and must be unique per post within a round —
    committee fan-out uses the member index. *)

val commit : t -> prepared -> outcome
(** Mutates the board: digest chain, meters, network transmission,
    bulletin slot.  Must be called from one domain, in the intended
    board order. *)

val next_round : t -> unit

val bulletin : t -> string Bulletin.t
val sim : t -> Sim.t
val meter : t -> Meter.t
val config : t -> config
val cost : t -> Cost.t
val registry : t -> Role.Registry.t
val length : t -> int
val round : t -> int
val sim_stats : t -> Sim.stats
val transcript : t -> transcript
