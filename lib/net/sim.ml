module Splitmix = Yoso_hash.Splitmix

type model = {
  latency_ms : float;
  jitter_ms : float;
  bandwidth_mbps : float;
  drop : float;
}

let ideal = { latency_ms = 0.; jitter_ms = 0.; bandwidth_mbps = 0.; drop = 0. }
let lan = { latency_ms = 0.5; jitter_ms = 0.2; bandwidth_mbps = 1000.; drop = 0. }
let wan = { latency_ms = 50.; jitter_ms = 10.; bandwidth_mbps = 100.; drop = 0.001 }

type verdict = Delivered | Late | Dropped

(* binary min-heap of in-flight messages keyed on arrival time *)
module Heap = struct
  type t = { mutable a : (float * int) array; mutable len : int }

  let create () = { a = Array.make 64 (0., 0); len = 0 }
  let size h = h.len

  let push h x =
    if h.len = Array.length h.a then begin
      let a' = Array.make (2 * h.len) (0., 0) in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.a.(!i) <- x;
    while !i > 0 && fst h.a.((!i - 1) / 2) > fst h.a.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let min h = if h.len = 0 then None else Some h.a.(0)

  let pop h =
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.len && fst h.a.(l) < fst h.a.(!s) then s := l;
      if r < h.len && fst h.a.(r) < fst h.a.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        let tmp = h.a.(!s) in
        h.a.(!s) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !s
      end
    done
end

type stats = {
  rounds : int;
  sent : int;
  delivered : int;
  late : int;
  dropped : int;
  bytes_sent : int;
  bytes_delivered : int;
  elapsed_ms : float;
  max_in_flight : int;
}

type t = {
  model : model;
  round_ms : float;
  rng : Splitmix.t;
  queue : Heap.t;
  mutable now : float; (* start of the current round *)
  mutable rounds : int;
  mutable sent : int;
  mutable delivered : int;
  mutable late : int;
  mutable dropped : int;
  mutable bytes_sent : int;
  mutable bytes_delivered : int;
  mutable max_in_flight : int;
}

let create ?(model = ideal) ?(round_ms = 100.) ~seed () =
  if round_ms <= 0. then invalid_arg "Sim.create: round_ms must be positive";
  {
    model;
    round_ms;
    rng = Splitmix.of_int seed;
    queue = Heap.create ();
    now = 0.;
    rounds = 0;
    sent = 0;
    delivered = 0;
    late = 0;
    dropped = 0;
    bytes_sent = 0;
    bytes_delivered = 0;
    max_in_flight = 0;
  }

let now_ms t = t.now
let deadline_ms t = t.now +. t.round_ms

(* draws are gated on the parameter being active, so the ideal model
   consumes no randomness and a seed replays identically across
   configurations that share the active parameters *)
let transmit t ?(extra_delay_ms = 0.) ~bytes () =
  if bytes < 0 then invalid_arg "Sim.transmit: negative size";
  t.sent <- t.sent + 1;
  t.bytes_sent <- t.bytes_sent + bytes;
  let m = t.model in
  if m.drop > 0. && Splitmix.float t.rng < m.drop then begin
    t.dropped <- t.dropped + 1;
    (Dropped, infinity)
  end
  else begin
    let jitter = if m.jitter_ms > 0. then m.jitter_ms *. Splitmix.float t.rng else 0. in
    let serialization =
      if m.bandwidth_mbps > 0. then float_of_int bytes *. 8. /. (m.bandwidth_mbps *. 1000.)
      else 0.
    in
    let arrival = t.now +. m.latency_ms +. jitter +. serialization +. extra_delay_ms in
    Heap.push t.queue (arrival, bytes);
    if Heap.size t.queue > t.max_in_flight then t.max_in_flight <- Heap.size t.queue;
    let verdict =
      if arrival <= deadline_ms t then begin
        t.delivered <- t.delivered + 1;
        Delivered
      end
      else begin
        t.late <- t.late + 1;
        Late
      end
    in
    (verdict, arrival)
  end

let rec drain t =
  match Heap.min t.queue with
  | Some (arrival, bytes) when arrival <= t.now ->
    Heap.pop t.queue;
    t.bytes_delivered <- t.bytes_delivered + bytes;
    drain t
  | _ -> ()

let next_round t =
  t.rounds <- t.rounds + 1;
  t.now <- t.now +. t.round_ms;
  drain t

let in_flight t = Heap.size t.queue

let stats t =
  {
    rounds = t.rounds;
    sent = t.sent;
    delivered = t.delivered;
    late = t.late;
    dropped = t.dropped;
    bytes_sent = t.bytes_sent;
    bytes_delivered = t.bytes_delivered;
    elapsed_ms = t.now;
    max_in_flight = t.max_in_flight;
  }
