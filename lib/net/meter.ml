module Cost = Yoso_runtime.Cost

type t = {
  by_kind : (string * Cost.kind, int) Hashtbl.t; (* payload bytes *)
  by_step : (string * string, int) Hashtbl.t; (* frame bytes per (phase, step) *)
  by_role : (string, int) Hashtbl.t; (* frame bytes per role family *)
  framing : (string, int) Hashtbl.t; (* non-payload bytes per phase *)
  by_conn : (string, int * int) Hashtbl.t; (* (sent, received) per connection *)
  by_route : (string, int * int * int) Hashtbl.t;
      (* (full, digest, suppressed) delivery bytes per subscription *)
  by_refill : (string, int) Hashtbl.t;
      (* frame bytes per factory refill batch ("c3/layer2") *)
}

let create () =
  {
    by_kind = Hashtbl.create 16;
    by_step = Hashtbl.create 16;
    by_role = Hashtbl.create 16;
    framing = Hashtbl.create 8;
    by_conn = Hashtbl.create 8;
    by_route = Hashtbl.create 8;
    by_refill = Hashtbl.create 8;
  }

let add tbl key n = Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* committee names carry a uniqueness counter ("exec#3"); the family
   prefix groups all epochs of the same role *)
let role_family role =
  match String.index_opt role '#' with
  | Some i -> String.sub role 0 i
  | None -> role

let record t ~phase ~step ~role ~frame_bytes ~payload =
  let data = List.fold_left (fun acc (_, b) -> acc + b) 0 payload in
  if data > frame_bytes then invalid_arg "Meter.record: payload exceeds frame";
  List.iter (fun (kind, b) -> add t.by_kind (phase, kind) b) payload;
  add t.by_step (phase, step) frame_bytes;
  add t.by_role (role_family role) frame_bytes;
  add t.framing phase (frame_bytes - data)

let kind_bytes t ~phase kind = Option.value ~default:0 (Hashtbl.find_opt t.by_kind (phase, kind))

let data_bytes t ~phase =
  List.fold_left (fun acc k -> acc + kind_bytes t ~phase k) 0 Cost.all_kinds

let framing_bytes t ~phase = Option.value ~default:0 (Hashtbl.find_opt t.framing phase)
let phase_total t ~phase = data_bytes t ~phase + framing_bytes t ~phase

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let steps t ~phase =
  sorted_bindings t.by_step
  |> List.filter_map (fun ((p, s), b) -> if p = phase then Some (s, b) else None)

let roles t = sorted_bindings t.by_role

let phases t =
  let collect tbl key_phase acc =
    Hashtbl.fold
      (fun k _ acc ->
        let p = key_phase k in
        if List.mem p acc then acc else p :: acc)
      tbl acc
  in
  collect t.by_kind fst (collect t.framing Fun.id []) |> List.sort compare

let grand_total t = Hashtbl.fold (fun _ v acc -> acc + v) t.by_step 0

(* transport-level socket accounting: envelope bytes per connection,
   kept apart from the frame tables so phase/kind totals stay equal to
   an unsocketed run of the same seeds *)
let record_conn t ~conn ~sent ~received =
  if sent < 0 || received < 0 then invalid_arg "Meter.record_conn: negative byte count";
  let s0, r0 = Option.value ~default:(0, 0) (Hashtbl.find_opt t.by_conn conn) in
  Hashtbl.replace t.by_conn conn (s0 + sent, r0 + received)

let connections t = sorted_bindings t.by_conn

let conn_total t =
  Hashtbl.fold (fun _ (s, r) (ts, tr) -> (ts + s, tr + r)) t.by_conn (0, 0)

(* interest-routed delivery accounting, attributed per subscription:
   [full] is full-frame bytes actually delivered to the subscriber,
   [digest] the compact checksum-record bytes, and [suppressed] the
   full-frame bytes routing avoided sending (what a broadcast daemon
   would have shipped instead of each digest record) *)
let record_route t ~sub ~full ~digest ~suppressed =
  if full < 0 || digest < 0 || suppressed < 0 then
    invalid_arg "Meter.record_route: negative byte count";
  let f0, d0, s0 = Option.value ~default:(0, 0, 0) (Hashtbl.find_opt t.by_route sub) in
  Hashtbl.replace t.by_route sub (f0 + full, d0 + digest, s0 + suppressed)

let routes t = sorted_bindings t.by_route

let route_total t =
  Hashtbl.fold
    (fun _ (f, d, s) (tf, td, ts) -> (tf + f, td + d, ts + s))
    t.by_route (0, 0, 0)

(* fraction of the broadcast-equivalent full-frame volume that was
   actually shipped in full; 1.0 when nothing was suppressed (legacy
   broadcast, or no routed deliveries recorded at all) *)
let routing_ratio t =
  let full, _, suppressed = route_total t in
  if full + suppressed = 0 then 1.0
  else float_of_int full /. float_of_int (full + suppressed)

(* factory refill accounting, attributed per depot batch: like
   connection and routing bytes, refill bytes are an *attribution* of
   frames already metered through the phase tables — they never feed
   the phase/kind/role totals, so those stay equal to a one-shot run
   of the same seeds *)
let record_refill t ~batch ~bytes =
  if bytes < 0 then invalid_arg "Meter.record_refill: negative byte count";
  add t.by_refill batch bytes

let refills t = sorted_bindings t.by_refill
let refill_total t = Hashtbl.fold (fun _ b acc -> acc + b) t.by_refill 0

(* aggregate a per-circuit meter into a stream-level one: phase tables
   merge additively (the factory maps refill phases via its own Cost
   accounting); refill attributions merge keyed as given *)
let merge_into ~dst src =
  Hashtbl.iter (fun (p, k) b -> add dst.by_kind (p, k) b) src.by_kind;
  Hashtbl.iter (fun (p, s) b -> add dst.by_step (p, s) b) src.by_step;
  Hashtbl.iter (fun r b -> add dst.by_role r b) src.by_role;
  Hashtbl.iter (fun p b -> add dst.framing p b) src.framing;
  Hashtbl.iter
    (fun c (s, r) ->
      let s0, r0 = Option.value ~default:(0, 0) (Hashtbl.find_opt dst.by_conn c) in
      Hashtbl.replace dst.by_conn c (s0 + s, r0 + r))
    src.by_conn;
  Hashtbl.iter
    (fun sub (f, d, s) ->
      let f0, d0, s0 = Option.value ~default:(0, 0, 0) (Hashtbl.find_opt dst.by_route sub) in
      Hashtbl.replace dst.by_route sub (f0 + f, d0 + d, s0 + s))
    src.by_route;
  Hashtbl.iter (fun b n -> add dst.by_refill b n) src.by_refill

let pp ppf t =
  List.iter
    (fun phase ->
      Format.fprintf ppf "@[<h>%-10s" phase;
      List.iter
        (fun k ->
          let b = kind_bytes t ~phase k in
          if b > 0 then Format.fprintf ppf " %s=%dB" (Cost.kind_to_string k) b)
        Cost.all_kinds;
      Format.fprintf ppf " framing=%dB total=%dB@]@." (framing_bytes t ~phase)
        (phase_total t ~phase))
    (phases t);
  List.iter
    (fun (conn, (s, r)) ->
      Format.fprintf ppf "@[<h>conn %-12s sent=%dB received=%dB@]@." conn s r)
    (connections t);
  List.iter
    (fun (sub, (f, d, s)) ->
      Format.fprintf ppf "@[<h>sub  %-12s full=%dB digest=%dB suppressed=%dB@]@." sub f d s)
    (routes t);
  List.iter
    (fun (batch, b) -> Format.fprintf ppf "@[<h>refill %-12s bytes=%dB@]@." batch b)
    (refills t)
