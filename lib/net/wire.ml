module F = Yoso_field.Field.Fp
module B = Yoso_bigint.Bigint
module Cost = Yoso_runtime.Cost
module Splitmix = Yoso_hash.Splitmix

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Primitive encoders (into a Buffer)                                  *)
(* ------------------------------------------------------------------ *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

(* unsigned LEB128 *)
let put_varint buf v =
  if v < 0 then invalid_arg "Wire.put_varint: negative";
  let rec go v =
    if v < 0x80 then put_u8 buf v
    else begin
      put_u8 buf (0x80 lor (v land 0x7f));
      go (v lsr 7)
    end
  in
  go v

let put_fixed32 buf v =
  put_u8 buf v;
  put_u8 buf (v lsr 8);
  put_u8 buf (v lsr 16);
  put_u8 buf (v lsr 24)

let put_bytes buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_field buf (x : F.t) = put_fixed32 buf (F.to_int x)

(* sign byte: 0 zero, 1 positive, 2 negative; canonical big-endian
   magnitude (no leading zero byte) *)
let put_bigint buf b =
  let s = B.sign b in
  put_u8 buf (if s = 0 then 0 else if s > 0 then 1 else 2);
  if s <> 0 then put_bytes buf (B.to_bytes_be b)

(* ------------------------------------------------------------------ *)
(* Primitive decoders (over a string with a cursor)                    *)
(* ------------------------------------------------------------------ *)

type dec = { src : string; mutable pos : int }

let remaining d = String.length d.src - d.pos

let get_u8 d =
  if d.pos >= String.length d.src then fail "truncated (u8)";
  let c = Char.code d.src.[d.pos] in
  d.pos <- d.pos + 1;
  c

let get_varint d =
  let rec go shift acc nbytes =
    if shift > 49 then fail "varint too long";
    let b = get_u8 d in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then begin
      (* canonical: a multi-byte encoding must not end in a zero byte *)
      if nbytes > 0 && b = 0 then fail "non-canonical varint";
      acc
    end
    else go (shift + 7) acc (nbytes + 1)
  in
  go 0 0 0

let get_fixed32 d =
  let b0 = get_u8 d in
  let b1 = get_u8 d in
  let b2 = get_u8 d in
  let b3 = get_u8 d in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let get_bytes d =
  let len = get_varint d in
  if len > remaining d then fail "length prefix %d exceeds remaining %d" len (remaining d);
  let s = String.sub d.src d.pos len in
  d.pos <- d.pos + len;
  s

let get_field d =
  let v = get_fixed32 d in
  if v >= F.p then fail "field element %d out of range (p = %d)" v F.p;
  F.of_int v

let get_bigint d =
  match get_u8 d with
  | 0 -> B.zero
  | (1 | 2) as s ->
    let mag = get_bytes d in
    if String.length mag = 0 then fail "bigint: empty magnitude with nonzero sign";
    if mag.[0] = '\000' then fail "bigint: non-canonical leading zero byte";
    let v = B.of_bytes_be mag in
    if s = 2 then B.neg v else v
  | s -> fail "bigint: bad sign byte %d" s

let get_count d ~what ~max =
  let n = get_varint d in
  if n > max then fail "%s count %d exceeds limit %d" what n max;
  n

(* ------------------------------------------------------------------ *)
(* Bulletin message items                                              *)
(* ------------------------------------------------------------------ *)

type item =
  | Field_elements of F.t array
  | Packed_sharing of { degree : int; shares : F.t array }
  | Ciphertexts of string array
  | Proofs of string array
  | Partial_decs of string array
  | Public_keys of string array
  | Bigints of B.t array

type message = { step : string; items : item list }

let max_vec = 1 lsl 24

let item_tag = function
  | Field_elements _ -> 1
  | Packed_sharing _ -> 2
  | Ciphertexts _ -> 3
  | Proofs _ -> 4
  | Partial_decs _ -> 5
  | Public_keys _ -> 6
  | Bigints _ -> 7

let item_kind = function
  | Field_elements _ | Packed_sharing _ -> Cost.Field_element
  | Ciphertexts _ -> Cost.Ciphertext
  | Proofs _ -> Cost.Proof
  | Partial_decs _ -> Cost.Partial_decryption
  | Public_keys _ -> Cost.Key
  | Bigints _ -> Cost.Ciphertext

(* bytes of element *data* an item carries, excluding tags and length
   prefixes (those are accounted as framing overhead by the meter) *)
let item_payload_bytes = function
  | Field_elements v -> 4 * Array.length v
  | Packed_sharing { shares; _ } -> 4 * Array.length shares
  | Ciphertexts bs | Proofs bs | Partial_decs bs | Public_keys bs ->
    Array.fold_left (fun acc b -> acc + String.length b) 0 bs
  | Bigints bs ->
    Array.fold_left (fun acc b -> acc + String.length (B.to_bytes_be b)) 0 bs

let put_blob_array buf bs =
  put_varint buf (Array.length bs);
  Array.iter (put_bytes buf) bs

let get_blob_array d ~what =
  let n = get_count d ~what ~max:max_vec in
  Array.init n (fun _ -> get_bytes d)

let put_item buf it =
  put_u8 buf (item_tag it);
  match it with
  | Field_elements v ->
    put_varint buf (Array.length v);
    Array.iter (put_field buf) v
  | Packed_sharing { degree; shares } ->
    put_varint buf degree;
    put_varint buf (Array.length shares);
    Array.iter (put_field buf) shares
  | Ciphertexts bs | Proofs bs | Partial_decs bs | Public_keys bs -> put_blob_array buf bs
  | Bigints bs ->
    put_varint buf (Array.length bs);
    Array.iter (put_bigint buf) bs

let get_item d =
  match get_u8 d with
  | 1 ->
    let n = get_count d ~what:"field vector" ~max:max_vec in
    Field_elements (Array.init n (fun _ -> get_field d))
  | 2 ->
    let degree = get_varint d in
    let n = get_count d ~what:"sharing" ~max:max_vec in
    if degree >= n then fail "sharing degree %d not determined by %d shares" degree n;
    Packed_sharing { degree; shares = Array.init n (fun _ -> get_field d) }
  | 3 -> Ciphertexts (get_blob_array d ~what:"ciphertexts")
  | 4 -> Proofs (get_blob_array d ~what:"proofs")
  | 5 -> Partial_decs (get_blob_array d ~what:"partials")
  | 6 -> Public_keys (get_blob_array d ~what:"keys")
  | 7 ->
    let n = get_count d ~what:"bigints" ~max:max_vec in
    Bigints (Array.init n (fun _ -> get_bigint d))
  | t -> fail "unknown item tag %d" t

(* Message and frame encoding run under the Domain pool in Phase A
   (every committee member's frame is built there), and a fresh Buffer
   per call is pure allocation churn.  Each domain reuses one growable
   scratch buffer — domain-local, so no locking; [Buffer.contents]
   still copies out an immutable string.  Oversized buffers are
   released after use so one huge frame does not pin memory. *)
let scratch_key = Domain.DLS.new_key (fun () -> Buffer.create 4096)

let with_scratch f =
  let buf = Domain.DLS.get scratch_key in
  Buffer.clear buf;
  let out = f buf in
  if Buffer.length buf > 1 lsl 20 then Buffer.reset buf;
  out

let encode_message m =
  with_scratch (fun buf ->
      put_bytes buf m.step;
      put_varint buf (List.length m.items);
      List.iter (put_item buf) m.items;
      Buffer.contents buf)

let decode_message_at d =
  let step = get_bytes d in
  let n = get_count d ~what:"items" ~max:4096 in
  let items = List.init n (fun _ -> get_item d) in
  { step; items }

let decode_message s =
  let d = { src = s; pos = 0 } in
  let m = decode_message_at d in
  if d.pos <> String.length s then fail "trailing garbage (%d bytes)" (remaining d);
  m

(* ------------------------------------------------------------------ *)
(* Framing: magic, version, length, payload, checksum                  *)
(* ------------------------------------------------------------------ *)

(* Transport integrity checksum — 63-bit multiplicative hash, written
   as 8 little-endian bytes.  Detects corruption in flight; it is not
   a cryptographic MAC (authenticity comes from the NIZK layer). *)
let checksum s =
  let h = ref 0x1505 in
  String.iter (fun c -> h := ((!h * 31) + Char.code c) land max_int) s;
  !h

let put_checksum buf h =
  for i = 0 to 7 do
    put_u8 buf ((h lsr (8 * i)) land 0xff)
  done

let magic0 = 'Y'
let magic1 = 'W'
let version = 1

(* Decode-time cap on frame payloads.  A peer that declares a huge
   payload length must be rejected *before* the decoder commits to
   materializing it, otherwise a single malicious frame forces an
   unbounded allocation.  Mutable so transports (and tests) can tighten
   it; the default comfortably holds every frame the protocol emits. *)
let max_frame_len = ref (1 lsl 26)

let to_frame m =
  let payload = encode_message m in
  (* the scratch is free again: [encode_message] copied its result out *)
  with_scratch (fun buf ->
      Buffer.add_char buf magic0;
      Buffer.add_char buf magic1;
      put_u8 buf version;
      put_bytes buf payload;
      put_checksum buf (checksum payload);
      Buffer.contents buf)

let of_frame s =
  let d = { src = s; pos = 0 } in
  if remaining d < 3 then fail "truncated frame";
  if s.[0] <> magic0 || s.[1] <> magic1 then fail "bad magic";
  d.pos <- 2;
  let v = get_u8 d in
  if v <> version then fail "unsupported version %d" v;
  let len = get_varint d in
  if len > !max_frame_len then
    fail "frame payload %d exceeds max_frame_len %d" len !max_frame_len;
  if len > remaining d then fail "length prefix %d exceeds remaining %d" len (remaining d);
  let payload = String.sub d.src d.pos len in
  d.pos <- d.pos + len;
  if remaining d <> 8 then fail "bad frame trailer";
  let h = ref 0 in
  for i = 7 downto 0 do
    h := (!h lsl 8) lor Char.code s.[d.pos + i]
  done;
  if !h <> checksum payload then fail "checksum mismatch";
  decode_message payload

(* ------------------------------------------------------------------ *)
(* Wire-size model for ideal-functionality objects                     *)
(* ------------------------------------------------------------------ *)

type sizing = {
  ciphertext_bytes : int;
  proof_bytes : int;
  partial_bytes : int;
  key_bytes : int;
}

(* modeled on 2048-bit threshold Paillier (ciphertexts and partial
   decryptions live in Z_{N^2} = 4096 bits) with constant-size
   Groth-Maller-style proofs (256-bit tag, as Nizk.size_bits) *)
let default_sizing =
  { ciphertext_bytes = 512; proof_bytes = 32; partial_bytes = 512; key_bytes = 256 }

let random_blob rng len =
  let b = Bytes.create len in
  let full = len / 8 in
  for i = 0 to full - 1 do
    Bytes.set_int64_le b (8 * i) (Splitmix.next rng)
  done;
  for i = 8 * full to len - 1 do
    Bytes.set b i (Char.chr (Splitmix.int rng 256))
  done;
  Bytes.unsafe_to_string b

let blobs rng len n = Array.init n (fun _ -> random_blob rng len)

let items_of_cost sizing rng cost =
  List.filter_map
    (fun (kind, n) ->
      if n <= 0 then None
      else
        Some
          (match kind with
          | Cost.Field_element ->
            Field_elements (Array.init n (fun _ -> F.of_int (Splitmix.int rng F.p)))
          | Cost.Ciphertext -> Ciphertexts (blobs rng sizing.ciphertext_bytes n)
          | Cost.Proof -> Proofs (blobs rng sizing.proof_bytes n)
          | Cost.Partial_decryption -> Partial_decs (blobs rng sizing.partial_bytes n)
          | Cost.Key -> Public_keys (blobs rng sizing.key_bytes n)))
    cost

(* Same shape — identical item tallies, lengths and framing — with
   zero-filled blob bytes.  A role-local receiver only needs the wire
   weight of a frame it will never ship (content arrives routed, or as
   a checksum digest), so the per-byte RNG stream is skipped
   entirely. *)
let skeleton_items_of_cost sizing cost =
  let zeros len n = Array.make n (String.make len '\000') in
  List.filter_map
    (fun (kind, n) ->
      if n <= 0 then None
      else
        Some
          (match kind with
          | Cost.Field_element -> Field_elements (Array.make n (F.of_int 0))
          | Cost.Ciphertext -> Ciphertexts (zeros sizing.ciphertext_bytes n)
          | Cost.Proof -> Proofs (zeros sizing.proof_bytes n)
          | Cost.Partial_decryption -> Partial_decs (zeros sizing.partial_bytes n)
          | Cost.Key -> Public_keys (zeros sizing.key_bytes n)))
    cost

let summary m =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun it ->
      let k = item_kind it in
      let count =
        match it with
        | Field_elements v -> Array.length v
        | Packed_sharing { shares; _ } -> Array.length shares
        | Ciphertexts a | Proofs a | Partial_decs a | Public_keys a -> Array.length a
        | Bigints a -> Array.length a
      in
      Hashtbl.replace tally k (count + Option.value ~default:0 (Hashtbl.find_opt tally k)))
    m.items;
  Cost.(List.filter_map
          (fun k -> Option.map (fun n -> (k, n)) (Hashtbl.find_opt tally k))
          all_kinds)
