(** Deterministic discrete-event network simulator.

    The bulletin board in the YOSO model is a broadcast channel with
    round deadlines: a post either lands within the round it was sent
    in ([Delivered]), lands in a later round ([Late] — the sender is
    treated exactly like a fail-stop for that step), or never lands
    ([Dropped]).  Each transmission is delayed by a per-link model
    (fixed latency, uniform jitter, serialization at finite bandwidth)
    and optionally dropped by a seeded coin.  Everything is driven by
    a {!Yoso_hash.Splitmix} stream, so a run is replayable
    byte-for-byte from its seed. *)

type model = {
  latency_ms : float;  (** fixed one-way propagation delay *)
  jitter_ms : float;  (** uniform extra delay in [\[0, jitter_ms)] *)
  bandwidth_mbps : float;  (** link rate; [<= 0] means infinite *)
  drop : float;  (** independent loss probability per message *)
}

val ideal : model
(** Zero latency, infinite bandwidth, no loss — the abstract bulletin
    board.  Under this model every post is [Delivered] (unless forced
    late) and protocol behaviour is identical to running without a
    network. *)

val lan : model
val wan : model

type verdict = Delivered | Late | Dropped

type t

val create : ?model:model -> ?round_ms:float -> seed:int -> unit -> t
(** [round_ms] (default 100) is the synchronous round length: a
    message sent in a round is [Delivered] iff it arrives before the
    round's deadline. *)

val transmit : t -> ?extra_delay_ms:float -> bytes:int -> unit -> verdict * float
(** Send one message of [bytes] at the current simulated time; returns
    the verdict and the arrival time in ms ([infinity] if dropped).
    [extra_delay_ms] models a sender stalling past the deadline (the
    [Faults.Delayed] behaviour). *)

val next_round : t -> unit
(** Advance the clock to the next round boundary and drain every
    in-flight message that has arrived by then. *)

val now_ms : t -> float
val deadline_ms : t -> float
val in_flight : t -> int

type stats = {
  rounds : int;
  sent : int;
  delivered : int;  (** arrived within their sending round *)
  late : int;
  dropped : int;
  bytes_sent : int;
  bytes_delivered : int;  (** drained from the queue so far *)
  elapsed_ms : float;
  max_in_flight : int;
}

val stats : t -> stats
