module Bulletin = Yoso_runtime.Bulletin
module Cost = Yoso_runtime.Cost
module Role = Yoso_runtime.Role
module Splitmix = Yoso_hash.Splitmix

type config = {
  model : Sim.model;
  round_ms : float;
  net_seed : int;
  sizing : Wire.sizing;
}

let default_config =
  { model = Sim.ideal; round_ms = 100.; net_seed = 1; sizing = Wire.default_sizing }

type outcome = Delivered | Late | Dropped | Garbled

(* A transport link turns each committed frame into a genuine exchange
   between OS processes.  Every process replays the same deterministic
   post sequence; the link decides, per author, whether this process
   physically sends the frame, receives it in full, or receives only
   its routed (checksum, length) digest record.  [local] says whether
   this process must materialize the author's true frame bytes
   (owners always; everyone under legacy broadcast) or may prepare a
   zero-filled skeleton of the same wire weight (role-local
   execution). *)
type delivery = [ `Frame of string | `Summary of int * int | `Down ]

type link = {
  owns : Role.id -> bool;
  local : Role.id -> bool;
  send : seq:int -> phase:string -> author:Role.id -> frame:string -> unit;
  recv : seq:int -> phase:string -> author:Role.id -> delivery;
  stats : unit -> int * int;
      (* (reconnects, caught-up deliveries) survived so far; (0, 0)
         for a transport that cannot drop connections *)
}

let outcome_to_string = function
  | Delivered -> "delivered"
  | Late -> "late"
  | Dropped -> "dropped"
  | Garbled -> "garbled"

type transcript = { frames : int; frame_bytes : int; digest : int }

type t = {
  bulletin : string Bulletin.t;
  sim : Sim.t;
  meter : Meter.t;
  config : config;
  mutable frames : int;
  mutable frame_bytes : int;
  mutable digest : int;
  mutable round_posts : int;  (* sequential posts tagged within the round *)
  mutable link : link option;
}

let create ?(config = default_config) () =
  {
    bulletin = Bulletin.create ();
    sim = Sim.create ~model:config.model ~round_ms:config.round_ms ~seed:config.net_seed ();
    meter = Meter.create ();
    config;
    frames = 0;
    frame_bytes = 0;
    digest = 0x9e3779b9;
    round_posts = 0;
    link = None;
  }

let set_link t link = t.link <- link

let bulletin t = t.bulletin
let sim t = t.sim
let meter t = t.meter
let config t = t.config
let cost t = Bulletin.cost t.bulletin
let registry t = Bulletin.registry t.bulletin
let length t = Bulletin.length t.bulletin
let round t = Bulletin.round t.bulletin
let sim_stats t = Sim.stats t.sim
let transcript t = { frames = t.frames; frame_bytes = t.frame_bytes; digest = t.digest }

let next_round t =
  Bulletin.next_round t.bulletin;
  Sim.next_round t.sim;
  t.round_posts <- 0

let tally_payload items =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun it ->
      let k = Wire.item_kind it in
      let b = Wire.item_payload_bytes it in
      Hashtbl.replace tbl k (b + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    items;
  List.filter_map
    (fun k -> Option.map (fun b -> (k, b)) (Hashtbl.find_opt tbl k))
    Cost.all_kinds

let item_count items kind =
  List.fold_left
    (fun acc it ->
      if Wire.item_kind it <> kind then acc
      else
        acc
        +
        match it with
        | Wire.Field_elements v -> Array.length v
        | Wire.Packed_sharing { shares; _ } -> Array.length shares
        | Wire.Ciphertexts a | Wire.Proofs a | Wire.Partial_decs a | Wire.Public_keys a ->
          Array.length a
        | Wire.Bigints a -> Array.length a)
    0 items

(* flip one byte of the frame in flight; any single flip is caught by
   the magic / length / checksum checks in [Wire.of_frame] *)
let corrupt_frame frame =
  let b = Bytes.of_string frame in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Bytes.unsafe_to_string b

type prepared = {
  p_author : Role.id;
  p_phase : string;
  p_step : string;
  p_items : Wire.item list;
  p_frame : string;
  p_force_late : bool;
  p_cost : (Cost.kind * int) list;
  p_decodes : bool;  (* receiver-side decode + step check, precomputed *)
  p_local : bool;  (* true frame bytes; false = zero-filled skeleton *)
}

(* The pure half of a post: synthesize the missing wire weight, encode
   the frame, and pre-run the receiver's decode check.  Blob bytes come
   from an RNG derived statelessly from [(net_seed, tag)], so a frame's
   content depends only on its tag — never on how many frames other
   domains have prepared, which is what keeps the transcript digest
   identical at any domain count. *)
let prepare t ~author ~phase ~step ?(items = []) ?(corrupt = false) ?(force_late = false)
    ~cost ~tag () =
  let missing =
    List.filter_map
      (fun (kind, n) ->
        let m = n - item_count items kind in
        if m > 0 then Some (kind, m) else None)
      cost
  in
  (* role-local execution: a frame some other process ships — and
     whose content this process will receive routed (or as a checksum
     digest) — is prepared as a zero-filled skeleton of identical wire
     weight, skipping the per-byte blob stream entirely *)
  let local = match t.link with None -> true | Some l -> l.local author in
  let synthesized =
    if local then
      let blob_rng =
        Splitmix.of_int (Splitmix.mix (t.config.net_seed lxor 0x0b10b5) tag)
      in
      Wire.items_of_cost t.config.sizing blob_rng missing
    else Wire.skeleton_items_of_cost t.config.sizing missing
  in
  let items = items @ synthesized in
  let msg = { Wire.step; items } in
  let frame = Wire.to_frame msg in
  let frame = if corrupt then corrupt_frame frame else frame in
  let p_decodes =
    match Wire.of_frame frame with
    | exception Wire.Decode_error _ -> false
    | decoded -> decoded.Wire.step = step
  in
  {
    p_author = author;
    p_phase = phase;
    p_step = step;
    p_items = items;
    p_frame = frame;
    p_force_late = force_late;
    p_cost = cost;
    p_decodes;
    p_local = local;
  }

(* The sequential half: transcript digest, cost charging, transmission
   and bulletin slot — everything whose order is the board's order. *)
let commit t p =
  let { p_author = author; p_phase = phase; p_step = step; p_items = items; p_frame = frame;
        p_force_late = force_late; p_cost = cost; p_decodes; p_local; } = p in
  let frame_bytes = String.length frame in
  t.frames <- t.frames + 1;
  t.frame_bytes <- t.frame_bytes + frame_bytes;
  let payload = tally_payload items in
  let tally = Bulletin.cost t.bulletin in
  List.iter (fun (kind, b) -> Cost.charge_bytes tally ~phase kind b) payload;
  Meter.record t.meter ~phase ~step ~role:(Role.to_string author) ~frame_bytes ~payload;
  let extra_delay_ms = if force_late then 2. *. t.config.round_ms else 0. in
  let verdict, _arrival = Sim.transmit t.sim ~extra_delay_ms ~bytes:frame_bytes () in
  (* Transport exchange: under a link the frame crosses a real process
     boundary.  The owning process physically sends it; every other
     process blocks until the board daemon routes it — in full for
     members of the author's quorum, or as a (checksum, length) digest
     record for everyone else.  The sequence number is the frame
     counter, which advances identically in every replica, so all
     processes exchange the same frames in the same order. *)
  let exchange =
    match t.link with
    | None -> `Local
    | Some link ->
      let seq = t.frames - 1 in
      if link.owns author then begin
        link.send ~seq ~phase ~author ~frame;
        `Local
      end
      else
        (link.recv ~seq ~phase ~author
          :> [ `Local | `Frame of string | `Summary of int * int | `Down ])
  in
  (* Transcript digest: chain the authoritative checksum of what
     crossed the wire.  Locally materialized frames (sim runs, owned
     frames, legacy broadcast) contribute their own checksum exactly
     as before; a routed delivery contributes the checksum of the
     received bytes, and a digest record contributes the checksum the
     daemon computed on ingest — all of which equal the owner's true
     checksum, so every member (and the sim run at equal seeds) chains
     to the same digest.  A [`Down] exchange chains the local
     skeleton's checksum, which is seed-deterministic and therefore
     identical across all survivors.  [consistent] is the receiver's
     integrity oracle: byte equality when the frame was locally
     replayed in full, wire-weight (length) equality for role-local
     skeletons — content integrity then rests on the frame's own
     checksum, verified on daemon ingest and re-verified below. *)
  let csum, consistent =
    match exchange with
    | `Local | `Down -> (Wire.checksum frame, true)
    | `Frame f ->
      if p_local then (Wire.checksum f, String.equal f frame)
      else (Wire.checksum f, String.length f = frame_bytes)
    | `Summary (csum, len) -> (csum, len = frame_bytes)
  in
  t.digest <- ((t.digest * 1000003) + csum) land max_int;
  match exchange with
  | `Down ->
    (* the owning process vanished mid-round: nothing ever reached the
       board.  Observationally a fail-stop — same path as a Sim drop,
       so the verify/exclude/blame machinery handles it unchanged. *)
    Role.Registry.speak (Bulletin.registry t.bulletin) author;
    List.iter (fun (kind, n) -> Cost.charge tally ~phase kind n) cost;
    Dropped
  | `Local | `Frame _ | `Summary _ -> (
    match verdict with
    | Sim.Dropped ->
      (* the role spoke — its one shot is consumed and the bytes were
         sent — but nothing ever reaches the board *)
      Role.Registry.speak (Bulletin.registry t.bulletin) author;
      List.iter (fun (kind, n) -> Cost.charge tally ~phase kind n) cost;
      Dropped
    | Sim.Late ->
      Bulletin.post t.bulletin ~author ~phase ~cost (step ^ " [past round deadline]");
      Late
    | Sim.Delivered ->
      (* a frame that fails its integrity check (or decodes to another
         step) occupies its slot on the board but contributes nothing;
         verification will exclude the author *)
      Bulletin.post t.bulletin ~author ~phase ~cost step;
      if p_decodes && consistent then Delivered else Garbled)

(* post = prepare + commit with a tag drawn from the per-round post
   counter; single-threaded callers never see the split. *)
let post t ~author ~phase ~step ?(items = []) ?(corrupt = false) ?(force_late = false) ~cost ()
    =
  let tag = Splitmix.mix (Bulletin.round t.bulletin) t.round_posts in
  t.round_posts <- t.round_posts + 1;
  commit t (prepare t ~author ~phase ~step ~items ~corrupt ~force_late ~cost ~tag ())
