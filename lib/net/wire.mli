(** Canonical wire format for bulletin-board messages.

    Every object a role posts — field elements, packed sharings,
    ciphertexts, NIZK proofs, partial decryptions, public keys — has a
    length-prefixed binary encoding here, so the simulated network can
    charge *measured bytes* rather than abstract element counts.

    The format is canonical: a given message has exactly one valid
    encoding, and decoders reject non-canonical input (varints with
    redundant trailing bytes, field elements [>= p], bigint magnitudes
    with leading zero bytes, trailing garbage).  Ideal-functionality
    objects (ciphertexts, proofs, ...) have no concrete bit
    representation in this codebase, so they travel as opaque blobs at
    modeled sizes; see {!sizing}. *)

module F = Yoso_field.Field.Fp
module B = Yoso_bigint.Bigint
module Cost = Yoso_runtime.Cost
module Splitmix = Yoso_hash.Splitmix

exception Decode_error of string
(** Raised by every decoder on malformed, non-canonical, truncated or
    trailing-garbage input. *)

(** {1 Primitives} *)

val put_varint : Buffer.t -> int -> unit
(** Unsigned LEB128. *)

val put_u8 : Buffer.t -> int -> unit

val put_checksum : Buffer.t -> int -> unit
(** 8 bytes, little-endian — carries a full 63-bit {!checksum}, which
    exceeds the canonical varint range. *)

val put_fixed32 : Buffer.t -> int -> unit
(** 4 bytes, little-endian. *)

val put_bytes : Buffer.t -> string -> unit
(** Varint length prefix followed by the raw bytes. *)

val put_field : Buffer.t -> F.t -> unit
val put_bigint : Buffer.t -> B.t -> unit

type dec = { src : string; mutable pos : int }

val get_varint : dec -> int
val get_u8 : dec -> int
val get_fixed32 : dec -> int
val get_bytes : dec -> string
val get_field : dec -> F.t
val get_bigint : dec -> B.t

(** {1 Messages} *)

type item =
  | Field_elements of F.t array
  | Packed_sharing of { degree : int; shares : F.t array }
  | Ciphertexts of string array
  | Proofs of string array
  | Partial_decs of string array
  | Public_keys of string array
  | Bigints of B.t array

type message = { step : string; items : item list }

val item_kind : item -> Cost.kind

val item_payload_bytes : item -> int
(** Bytes of element *data* the item carries, excluding tags and
    length prefixes (those are accounted as framing overhead). *)

val encode_message : message -> string
val decode_message : string -> message

val summary : message -> (Cost.kind * int) list
(** Element tally of a message, in {!Cost.all_kinds} order. *)

(** {1 Framing} *)

val checksum : string -> int
(** 63-bit transport-integrity checksum (not a MAC — authenticity
    comes from the NIZK layer). *)

val to_frame : message -> string
(** [magic "YW"; version; length-prefixed payload; 8-byte checksum]. *)

val of_frame : string -> message
(** Verifies magic, version, framing and checksum before decoding.
    Frames whose declared payload length exceeds {!max_frame_len} are
    rejected before the payload is materialized. *)

val max_frame_len : int ref
(** Configurable cap on a frame's declared payload length (default
    64 MiB).  A malicious peer announcing an oversized frame is
    rejected with a structured {!Decode_error} instead of forcing an
    unbounded allocation; transports apply the same cap on ingest. *)

(** {1 Size model for ideal-functionality objects} *)

type sizing = {
  ciphertext_bytes : int;
  proof_bytes : int;
  partial_bytes : int;
  key_bytes : int;
}

val default_sizing : sizing
(** Modeled on 2048-bit threshold Paillier (ciphertexts and partial
    decryptions live in [Z_{N^2}], 512 bytes) with constant-size
    proofs (32 bytes) and 256-byte public keys. *)

val random_blob : Splitmix.t -> int -> string

val items_of_cost : sizing -> Splitmix.t -> (Cost.kind * int) list -> item list
(** Synthesize wire items at modeled sizes for an abstract element
    tally; used for objects whose ideal implementation has no bit
    representation. *)

val skeleton_items_of_cost : sizing -> (Cost.kind * int) list -> item list
(** Like {!items_of_cost} with zero-filled blob bytes: identical item
    tallies, payload lengths and framing, no RNG stream.  Role-local
    execution uses this for frames another process ships — the
    skeleton carries the exact wire {e weight} while the content (or
    its checksum) arrives over the transport. *)
