(** Byte-level communication accounting.

    Where {!Yoso_runtime.Cost} counts abstract elements (the paper's
    metric), the meter records *measured wire bytes*, split three
    ways: per (phase, element kind) for the payload data itself, per
    (phase, step) and per role family for whole frames, and per phase
    for framing overhead (tags, length prefixes, checksums — bytes on
    the wire that are not element data).  The headline scalability
    claim is about payload data, so keeping overhead in its own bucket
    lets the benchmark report both honestly. *)

module Cost = Yoso_runtime.Cost

type t

val create : unit -> t

val record :
  t ->
  phase:string ->
  step:string ->
  role:string ->
  frame_bytes:int ->
  payload:(Cost.kind * int) list ->
  unit
(** [payload] is the per-kind element-data byte tally of the frame;
    [frame_bytes - sum payload] is charged as framing overhead. *)

val role_family : string -> string
(** Strips the committee uniqueness counter: ["exec#3"] -> ["exec"]. *)

val record_conn : t -> conn:string -> sent:int -> received:int -> unit
(** Adds transport-level socket bytes (envelope bytes on a genuine
    connection) to the per-connection tally.  Kept in its own bucket:
    connection bytes never feed the phase/kind/role totals, so those
    stay equal to an unsocketed run of the same seeds. *)

val connections : t -> (string * (int * int)) list
(** Per-connection [(sent, received)] envelope bytes, sorted by
    connection name. *)

val conn_total : t -> int * int
(** Summed [(sent, received)] over every connection. *)

val record_route : t -> sub:string -> full:int -> digest:int -> suppressed:int -> unit
(** Adds interest-routed delivery bytes, attributed to one
    {e subscription} (a slot's registered interest set) rather than
    lumped into its connection row: [full] full-frame bytes delivered,
    [digest] compact checksum-record bytes delivered, [suppressed]
    full-frame bytes routing avoided (what a broadcast daemon would
    have shipped instead).  Like connection bytes, routing bytes never
    feed the phase/kind/role totals. *)

val routes : t -> (string * (int * int * int)) list
(** Per-subscription [(full, digest, suppressed)] bytes, sorted. *)

val route_total : t -> int * int * int
(** Summed [(full, digest, suppressed)] over every subscription. *)

val routing_ratio : t -> float
(** [full / (full + suppressed)] over all subscriptions — the fraction
    of the broadcast-equivalent volume actually shipped in full.
    [1.0] when nothing was suppressed. *)

val record_refill : t -> batch:string -> bytes:int -> unit
(** Adds factory refill bytes attributed to one depot batch (e.g.
    ["c3/layer2"]: circuit 3, layer-2 packed shares).  Like connection
    and routing bytes, refill attributions never feed the
    phase/kind/role totals — they re-attribute frames that were
    already metered — so per-circuit totals stay equal to a one-shot
    run of the same seeds. *)

val refills : t -> (string * int) list
(** Per-batch refill bytes, sorted by batch label. *)

val refill_total : t -> int
(** Summed refill bytes over every batch. *)

val merge_into : dst:t -> t -> unit
(** Adds every bucket of [src] into [dst] — the factory aggregates the
    per-circuit meters of a stream into one stream-level meter. *)

val kind_bytes : t -> phase:string -> Cost.kind -> int
val data_bytes : t -> phase:string -> int
val framing_bytes : t -> phase:string -> int
val phase_total : t -> phase:string -> int
val steps : t -> phase:string -> (string * int) list
val roles : t -> (string * int) list
val phases : t -> string list
val grand_total : t -> int
val pp : Format.formatter -> t -> unit
