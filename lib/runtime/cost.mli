(** Communication-cost accounting.

    The paper measures complexity in broadcast *elements* (field or
    ring elements; in YOSO one-to-one costs the same as one-to-all, so
    everything is a broadcast post).  Costs are tallied per phase
    ("setup" / "offline" / "online") and per element kind, so the
    benchmark harness can report exactly the quantities of Theorem 1:
    offline elements per gate and online elements per gate. *)

type kind =
  | Field_element     (** one plaintext ring element *)
  | Ciphertext        (** one TE or PKE ciphertext *)
  | Proof             (** one NIZK proof *)
  | Partial_decryption
  | Key               (** one public key *)

val kind_to_string : kind -> string
val all_kinds : kind list

type t

val create : unit -> t
val charge : t -> phase:string -> kind -> int -> unit

val charge_bytes : t -> phase:string -> kind -> int -> unit
(** Second accounting dimension: measured wire bytes.  Charged by the
    [yoso_net] transport when the bulletin board runs over a simulated
    network; element counts and byte counts live side by side so the
    paper's metric and the wire-level metric can be compared. *)

val count : t -> phase:string -> kind -> int
val bytes : t -> phase:string -> kind -> int

val elements : t -> phase:string -> int
(** Total elements charged in a phase, all kinds summed — the paper's
    headline metric. *)

val phase_bytes : t -> phase:string -> int
(** Total wire bytes charged in a phase, all kinds summed. *)

val grand_total : t -> int
val total_bytes : t -> int
val phases : t -> string list

val merge_into : ?map_phase:(string -> string) -> dst:t -> t -> unit
(** Adds both dimensions of [src] into [dst].  [map_phase] (default
    identity) renames phases on the way in — the offline factory uses
    it to aggregate the per-circuit ["offline"] charges of background
    refill runs under the ["factory"] phase, keeping refill traffic
    separable from one-shot offline traffic in merged reports. *)

val pp : Format.formatter -> t -> unit
