type kind = Field_element | Ciphertext | Proof | Partial_decryption | Key

let kind_to_string = function
  | Field_element -> "field"
  | Ciphertext -> "ciphertext"
  | Proof -> "proof"
  | Partial_decryption -> "partial-dec"
  | Key -> "key"

let all_kinds = [ Field_element; Ciphertext; Proof; Partial_decryption; Key ]

(* Two dimensions per (phase, kind): abstract element counts (the
   paper's metric) and measured wire bytes (charged by the transport
   layer when one is attached). *)
type t = {
  elems : (string * kind, int) Hashtbl.t;
  byte : (string * kind, int) Hashtbl.t;
}

let create () : t = { elems = Hashtbl.create 16; byte = Hashtbl.create 16 }

let add_to tbl key n = Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let charge t ~phase kind n =
  if n < 0 then invalid_arg "Cost.charge: negative amount";
  add_to t.elems (phase, kind) n

let charge_bytes t ~phase kind n =
  if n < 0 then invalid_arg "Cost.charge_bytes: negative amount";
  add_to t.byte (phase, kind) n

let count t ~phase kind = Option.value ~default:0 (Hashtbl.find_opt t.elems (phase, kind))
let bytes t ~phase kind = Option.value ~default:0 (Hashtbl.find_opt t.byte (phase, kind))

let elements t ~phase =
  List.fold_left (fun acc k -> acc + count t ~phase k) 0 all_kinds

let phase_bytes t ~phase =
  List.fold_left (fun acc k -> acc + bytes t ~phase k) 0 all_kinds

let grand_total t = Hashtbl.fold (fun _ v acc -> acc + v) t.elems 0
let total_bytes t = Hashtbl.fold (fun _ v acc -> acc + v) t.byte 0

let phases t =
  let collect tbl acc =
    Hashtbl.fold (fun (p, _) _ acc -> if List.mem p acc then acc else p :: acc) tbl acc
  in
  collect t.elems (collect t.byte []) |> List.sort compare

let merge_into ?(map_phase = Fun.id) ~dst src =
  Hashtbl.iter (fun (phase, kind) n -> charge dst ~phase:(map_phase phase) kind n) src.elems;
  Hashtbl.iter
    (fun (phase, kind) n -> charge_bytes dst ~phase:(map_phase phase) kind n)
    src.byte

let pp ppf t =
  List.iter
    (fun phase ->
      Format.fprintf ppf "@[<h>%-10s" phase;
      List.iter
        (fun k ->
          let c = count t ~phase k in
          if c > 0 then Format.fprintf ppf " %s=%d" (kind_to_string k) c)
        all_kinds;
      Format.fprintf ppf " total=%d" (elements t ~phase);
      let b = phase_bytes t ~phase in
      if b > 0 then Format.fprintf ppf " bytes=%d" b;
      Format.fprintf ppf "@]@.")
    (phases t)
