(** Deterministic, seedable fault plans for active-adversary
    execution.

    A {!plan} decides, per role per committee, {e how} a corrupted
    role misbehaves when its committee speaks: malicious roles draw an
    active fault (tampered shares, forged proofs, wrong-degree
    sharings, garbage ciphertexts), fail-stop roles either stay silent
    or post past the round deadline.  Assignments are pure functions
    of [(seed, committee name, role index)], so any execution — and
    any failure it produces — can be replayed exactly from the seed.

    The honest side records everything it detects in a {!log} (the
    blame list surfaced in [Protocol.report]) and signals an
    unrecoverable shortfall of verified contributions with the
    structured {!Protocol_failure} exception instead of a wrong output
    or an [Invalid_argument] escaping from deep inside
    reconstruction. *)

type kind =
  | Tamper_share  (** post corrupted share values / partial decryptions *)
  | Bad_proof  (** post well-formed data under a forged NIZK transcript *)
  | Wrong_degree  (** post shares drawn off a wrong-degree polynomial *)
  | Garbage_ciphertext  (** post an undecodable blob *)
  | Silent  (** fail-stop: post nothing at all *)
  | Delayed  (** post after the round deadline; verifiers ignore it *)

val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit

val active_kinds : kind list
(** The four tampering kinds — faults where the role actually posts
    corrupted content onto the bulletin board. *)

val is_active : kind -> bool
(** [true] for tampering kinds, [false] for [Silent]/[Delayed]. *)

type plan

val random : seed:int -> plan
(** Hash-based assignment: each malicious role independently draws one
    of {!active_kinds}, each fail-stop role draws [Silent] (2/3) or
    [Delayed] (1/3), keyed by [(seed, committee, index)]. *)

val always : kind -> plan
(** Every malicious role uses [kind] (fail-stop roles too, when [kind]
    is [Silent] or [Delayed]; otherwise they stay [Silent]). *)

val silent : plan
(** Malicious roles behave like crashed ones: they post nothing.  The
    pure-omission corruption model earlier revisions hard-coded. *)

val malicious_kind : plan -> committee:string -> index:int -> kind
val fail_stop_kind : plan -> committee:string -> index:int -> kind
(** Always [Silent] or [Delayed]. *)

(** {1 Blame log} *)

type blame = {
  role : Role.id;  (** who misbehaved *)
  kind : kind;  (** how *)
  phase : string;
  step : string;  (** which protocol step detected it *)
}

val pp_blame : Format.formatter -> blame -> unit

type log

val create_log : unit -> log
val record : log -> blame -> unit
val blames : log -> blame list
(** Detection order. *)

val faults_detected : log -> int
(** Every recorded deviation, including silent/delayed omissions. *)

val posts_rejected : log -> int
(** Posts that made it onto the board and were excluded by verifiers
    (active tampering plus delayed posts). *)

val summary : log -> (kind * int) list
(** Detection counts per kind, omitting zero rows. *)

val blame_summary : blame list -> (kind * int) list
(** {!summary} over an extracted blame list (e.g. the one a
    [Protocol.report] carries). *)

(** {1 Structured abort} *)

type failure = {
  f_phase : string;
  f_step : string;
  f_committee : string;
  surviving : int;  (** verified contributions that survived exclusion *)
  required : int;  (** threshold the step needed *)
}

exception Protocol_failure of failure
(** Raised by honest protocol code when, after detect-and-exclude, a
    committee step retains fewer verified contributions than its
    threshold.  Registered with [Printexc] for readable traces. *)

val failure_to_string : failure -> string
