module Sha256 = Yoso_hash.Sha256

type kind =
  | Tamper_share
  | Bad_proof
  | Wrong_degree
  | Garbage_ciphertext
  | Silent
  | Delayed

let kind_to_string = function
  | Tamper_share -> "tamper-share"
  | Bad_proof -> "bad-proof"
  | Wrong_degree -> "wrong-degree"
  | Garbage_ciphertext -> "garbage-ciphertext"
  | Silent -> "silent"
  | Delayed -> "delayed"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let active_kinds = [ Tamper_share; Bad_proof; Wrong_degree; Garbage_ciphertext ]
let is_active = function Silent | Delayed -> false | _ -> true

type plan =
  | Random of int
  | Always of kind

(* pure function of (seed, committee, index): first byte of a SHA-256
   digest, so replaying a seed replays every role's behaviour *)
let draw seed ~committee ~index ~salt bound =
  let digest =
    Sha256.digest_string (Printf.sprintf "fault/%d/%s/%d/%s" seed committee index salt)
  in
  Char.code digest.[0] mod bound

let random ~seed = Random seed
let always k = Always k
let silent = Always Silent

let malicious_kind plan ~committee ~index =
  match plan with
  | Always k -> k
  | Random seed ->
    List.nth active_kinds
      (draw seed ~committee ~index ~salt:"mal" (List.length active_kinds))

let fail_stop_kind plan ~committee ~index =
  match plan with
  | Always Delayed -> Delayed
  | Always _ -> Silent
  | Random seed -> if draw seed ~committee ~index ~salt:"fs" 3 = 0 then Delayed else Silent

type blame = { role : Role.id; kind : kind; phase : string; step : string }

let pp_blame ppf b =
  Format.fprintf ppf "%s: %s during %s/%s" (Role.to_string b.role) (kind_to_string b.kind)
    b.phase b.step

type log = { mutable entries : blame list (* reversed *); mutable rejected : int }

let create_log () = { entries = []; rejected = 0 }

let record log b =
  log.entries <- b :: log.entries;
  if is_active b.kind || b.kind = Delayed then log.rejected <- log.rejected + 1

let blames log = List.rev log.entries
let faults_detected log = List.length log.entries
let posts_rejected log = log.rejected

let blame_summary entries =
  let count k = List.length (List.filter (fun b -> b.kind = k) entries) in
  List.filter_map
    (fun k ->
      let c = count k in
      if c = 0 then None else Some (k, c))
    [ Tamper_share; Bad_proof; Wrong_degree; Garbage_ciphertext; Silent; Delayed ]

let summary log = blame_summary log.entries

type failure = {
  f_phase : string;
  f_step : string;
  f_committee : string;
  surviving : int;
  required : int;
}

exception Protocol_failure of failure

let failure_to_string f =
  Printf.sprintf
    "Protocol_failure(%s/%s in %s: %d verified contributions, need %d)" f.f_phase f.f_step
    f.f_committee f.surviving f.required

let () =
  Printexc.register_printer (function
    | Protocol_failure f -> Some (failure_to_string f)
    | _ -> None)
