type 'msg post = {
  seq : int;
  round : int;
  author : Role.id;
  phase : string;
  msg : 'msg;
}

type 'msg t = {
  mutable items : 'msg post list; (* reversed *)
  mutable ordered : 'msg post list option; (* cached List.rev items *)
  mutable count : int;
  mutable current_round : int;
  reg : Role.Registry.t;
  tally : Cost.t;
}

let create () =
  {
    items = [];
    ordered = None;
    count = 0;
    current_round = 0;
    reg = Role.Registry.create ();
    tally = Cost.create ();
  }

let registry t = t.reg
let cost t = t.tally
let round t = t.current_round
let next_round t = t.current_round <- t.current_round + 1

let post t ~author ~phase ~cost msg =
  Role.Registry.speak t.reg author;
  List.iter (fun (kind, n) -> Cost.charge t.tally ~phase kind n) cost;
  t.items <- { seq = t.count; round = t.current_round; author; phase; msg } :: t.items;
  t.ordered <- None;
  t.count <- t.count + 1

(* verify loops call [posts] repeatedly between writes; re-reversing the
   whole list each time was quadratic, so the forward order is cached
   and invalidated on write *)
let posts t =
  match t.ordered with
  | Some l -> l
  | None ->
    let l = List.rev t.items in
    t.ordered <- Some l;
    l
let posts_in_round t r = List.filter (fun p -> p.round = r) (posts t)
let posts_by t author = List.filter (fun p -> Role.compare p.author author = 0) (posts t)

let find_map t f =
  let rec go = function [] -> None | p :: rest -> (match f p with Some _ as r -> r | None -> go rest) in
  go (posts t)

let length t = t.count
