(** Paillier encryption (Damgard-Jurik s = 1 form), from scratch.

    The paper instantiates its linearly homomorphic threshold
    encryption by "Shamir sharing a Paillier decryption key" [19, 29];
    this module provides the base (non-threshold) scheme over our
    {!Yoso_bigint}: plaintext ring [Z_N], ciphertexts in [Z_{N^2}],
    [Enc(m; r) = (1 + N)^m * r^N mod N^2].

    {b Contexts.} All modular exponentiation goes through a
    {!Ctx.t}, which precomputes the Montgomery contexts for [N] and
    [N^2] and the fixed-base table for [g] once per key.  Protocol
    code should obtain one with {!context} (memoized per key record)
    or {!Ctx.create} and thread it; the bare-[public_key] entry
    points below remain as thin wrappers that look the context up. *)

module B = Yoso_bigint.Bigint

type public_key = {
  n : B.t;          (** RSA modulus [N = p*q] *)
  n2 : B.t;         (** [N^2] *)
  bits : int;       (** modulus size used at key generation *)
}

type secret_key = {
  pk : public_key;
  p : B.t;
  q : B.t;
  lambda : B.t;     (** [lcm(p-1, q-1)] *)
  mu : B.t;         (** [lambda^{-1} mod N] *)
}

type ciphertext = private { pk_n2 : B.t; c : B.t }

val keygen : ?bits:int -> rng:Random.State.t -> unit -> public_key * secret_key
(** Generates [bits/2]-bit primes [p, q] (default [bits = 128]; test
    scale, not production scale — documented in DESIGN.md).
    @raise Invalid_argument if [bits < 16]. *)

(** {1 Context API}

    The preferred interface: build once per key, reuse across
    operations. *)

module Ctx : sig
  type t

  val create : public_key -> t
  val public_key : t -> public_key

  val mont_n2 : t -> B.Mont.ctx
  (** The Montgomery context for [N^2] — the domain of ciphertext
      arithmetic; lets callers drive {!B.Multiexp} over it. *)

  val pow_n : t -> B.t -> B.t -> B.t
  (** Montgomery exponentiation mod [N].
      @raise Invalid_argument on negative exponent. *)

  val pow_n2 : t -> B.t -> B.t -> B.t
  (** Montgomery exponentiation mod [N^2].
      @raise Invalid_argument on negative exponent. *)

  val g_pow : t -> B.t -> B.t
  (** [(1 + N)^m mod N^2] via the closed form [1 + m*N]. *)

  val g_pow_table : t -> B.t -> B.t
  (** Same value via the fixed-base table — the path the
      Damgard-Jurik [s > 1] generalisation would need; equal to
      {!g_pow} for all inputs. *)

  val randomizer : t -> B.t -> B.t
  (** [r^N mod N^2], the randomizer path of encryption. *)

  val encrypt : t -> rng:Random.State.t -> B.t -> ciphertext
  val encrypt_with : t -> r:B.t -> B.t -> ciphertext
  (** @raise Invalid_argument if [r] is not a unit mod [N]. *)

  val decrypt : t -> secret_key -> ciphertext -> B.t
  (** @raise Invalid_argument if the ciphertext is under a key with a
      different modulus. *)

  val add : t -> ciphertext -> ciphertext -> ciphertext
  val scalar_mul : t -> B.t -> ciphertext -> ciphertext
  val linear_combination : t -> ciphertext list -> B.t list -> ciphertext
  (** @raise Invalid_argument on list length mismatch or foreign
      ciphertexts. *)

  val rerandomize : t -> rng:Random.State.t -> ciphertext -> ciphertext
  val of_raw : t -> B.t -> ciphertext

  val preload : t -> unit
  (** Force every lazily-grown table in the context (today: the
      fixed-base window table, which [fixed_powmod] extends in place —
      a write).  Call before sharing a context across a Domain pool so
      no worker first-touches the growth mid-chunk. *)
end

val context : public_key -> Ctx.t
(** Memoized {!Ctx.create}: contexts are cached by physical identity
    of the [public_key] record (a small LRU-ish list), so repeated
    calls with the same key record are cheap. *)

(** {1 Bare-key wrappers}

    Thin wrappers over the context API, each doing a [context] lookup
    per call. *)

val encrypt : public_key -> rng:Random.State.t -> B.t -> ciphertext
(** [encrypt pk ~rng m] for [m] reduced into [Z_N]. *)

val encrypt_with : public_key -> r:B.t -> B.t -> ciphertext
(** Deterministic variant with explicit randomness [r] coprime to [N]
    (used by sigma-protocol tests).
    @raise Invalid_argument if [r] is not a unit mod [N]. *)

val decrypt : secret_key -> ciphertext -> B.t
(** @raise Invalid_argument if the ciphertext is under a key with a
    different modulus. *)

val add : public_key -> ciphertext -> ciphertext -> ciphertext
(** Homomorphic addition of plaintexts.
    @raise Invalid_argument on a foreign ciphertext. *)

val scalar_mul : public_key -> B.t -> ciphertext -> ciphertext
(** Homomorphic multiplication of the plaintext by a known scalar.
    @raise Invalid_argument on a foreign ciphertext. *)

val linear_combination : public_key -> ciphertext list -> B.t list -> ciphertext
(** [TEval]: ciphertext of [sum_i coeff_i * m_i].
    @raise Invalid_argument on list length mismatch or foreign
    ciphertexts. *)

val rerandomize : public_key -> rng:Random.State.t -> ciphertext -> ciphertext
(** Fresh randomness, same plaintext.
    @raise Invalid_argument on a foreign ciphertext. *)

val raw : ciphertext -> B.t
(** The underlying [Z_{N^2}] element (for transcripts/hashing). *)

val of_raw : public_key -> B.t -> ciphertext
(** Inject a received value; reduced mod [N^2]. *)

val sample_unit : public_key -> rng:Random.State.t -> B.t
(** A uniform unit of [Z_N] (encryption randomness). *)

val g_pow : public_key -> B.t -> B.t
(** [(1 + N)^m mod N^2] via the closed form; context-free. *)

(** {1 Reference implementations}

    Naive square-and-multiply versions of the exponentiation-heavy
    operations, kept as the baseline side of the [bench time]
    naive-vs-Montgomery comparison and for equivalence tests. *)

module Reference : sig
  val encrypt_with : public_key -> r:B.t -> B.t -> ciphertext
  val decrypt : secret_key -> ciphertext -> B.t
  val scalar_mul : public_key -> B.t -> ciphertext -> ciphertext
end
