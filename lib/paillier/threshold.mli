(** Linearly homomorphic key-rerandomizable threshold encryption
    (Section 4.1 of the paper), instantiated with threshold Paillier
    in the style of Shoup / Damgard-Jurik-Nielsen.

    The decryption exponent [d] (CRT: [d = 0 mod lambda],
    [d = 1 mod N]) is Shamir-shared with a degree-[t] integer
    polynomial.  Partial decryptions are [c^(2*Delta*s_i)] with
    [Delta = n_parties!]; combining [t+1] of them with integral
    Lagrange weights [2*mu_i = 2*Delta*l_i(0)] yields
    [c^(4*Delta^2*D_e)] where [D_e] is the epoch-[e] effective secret.

    {b Key re-randomization} ([TKRes]/[TKRec]): each party re-shares
    [Delta * s_i] with a fresh degree-[t] integer polynomial whose
    blinding coefficients statistically hide the share; recipients
    combine sub-shares with the same integral weights.  Every epoch
    multiplies the effective secret by [2*Delta^2], which [TDec]
    compensates for via the epoch counter carried by shares and
    partials.  (Production systems bound the number of epochs; here
    shares grow by ~[2 log2 Delta + 1] bits per epoch, which is fine
    at test scale.)

    {b Contexts.} Like {!Paillier.Ctx}, a {!Ctx.t} carries the
    Montgomery contexts (via the underlying {!Paillier.Ctx.t}) plus
    caches for the [Delta]-scaled Lagrange combining weights (per
    partial subset) and the [theta^-1] epoch compensation scalars, so
    repeated combines over the same committee recompute nothing. *)

module B = Yoso_bigint.Bigint

type tpk = {
  pk : Paillier.public_key;
  n_parties : int;
  threshold : int;  (** [t]: polynomial degree; [t + 1] partials reconstruct *)
  delta : B.t;      (** [n_parties!] *)
}

type key_share = private {
  index : int;  (** 1-based party index *)
  epoch : int;
  value : B.t;  (** integer share, grows with epoch *)
}

type partial = private { p_index : int; p_epoch : int; d : B.t }

val keygen :
  ?bits:int ->
  n:int ->
  t:int ->
  rng:Random.State.t ->
  unit ->
  tpk * key_share array
(** [TKGen]: dealer-based setup.  @raise Invalid_argument unless
    [0 <= t < n]. *)

(** {1 Context API} *)

module Ctx : sig
  type t

  val create : tpk -> t
  val tpk : t -> tpk

  val paillier : t -> Paillier.Ctx.t
  (** The underlying Paillier context for [pk] (shared with
      {!Paillier.context}). *)

  val encrypt : t -> rng:Random.State.t -> B.t -> Paillier.ciphertext
  val eval : t -> Paillier.ciphertext list -> B.t list -> Paillier.ciphertext

  val partial_decrypt : t -> key_share -> Paillier.ciphertext -> partial
  (** [TPDec] via Montgomery exponentiation. *)

  val combine : t -> partial list -> B.t
  (** [TDec] with cached combining weights and [theta^-1].  The
      [prod d_i ^ (2 mu_i)] core runs as one {!B.Multiexp} batch over
      the Montgomery context for [N^2] (Straus for committee-sized
      batches, Pippenger beyond) instead of one powmod per partial.
      @raise Invalid_argument as {!val-combine}. *)

  val combine_powmods : t -> partial list -> B.t
  (** [TDec] on the pre-multi-exponentiation path: one independent
      Montgomery powmod per partial.  Same output as {!combine} on
      every input; kept as the measured baseline of [bench par]. *)

  val sim_partial_decrypt :
    t -> Paillier.ciphertext -> m:B.t -> honest:key_share list -> partial list

  val weights : t -> int list -> (int * B.t) list
  (** [(i, 2 * mu_i)] combining weights for a partial subset, cached
      per subset. *)

  val theta_inv : t -> int -> B.t
  (** [theta(epoch)^-1 mod N], cached per epoch. *)

  val preload : ?epochs:int list -> ?subsets:int list list -> t -> unit
  (** Force the context's lazy state now: the underlying
      {!Paillier.Ctx.preload}, plus the combining-weight cache for
      each of [subsets] and the theta-inverse cache for each of
      [epochs].  The caches are plain [Hashtbl]s — not safe for
      concurrent first writes — so a context shared across a Domain
      pool must be preloaded before the fan-out. *)
end

val context : tpk -> Ctx.t
(** Memoized {!Ctx.create}, keyed on physical identity of the [tpk]
    record. *)

(** {1 Bare-key wrappers} *)

val encrypt : tpk -> rng:Random.State.t -> B.t -> Paillier.ciphertext

val eval : tpk -> Paillier.ciphertext list -> B.t list -> Paillier.ciphertext
(** [TEval], delegating to {!Paillier.linear_combination}. *)

val partial_decrypt : tpk -> key_share -> Paillier.ciphertext -> partial
(** [TPDec]. *)

val combine : tpk -> partial list -> B.t
(** [TDec]: needs [>= t + 1] partials with distinct indices, all of
    the same epoch; extras ignored.  @raise Invalid_argument
    otherwise. *)

val reshare : tpk -> key_share -> rng:Random.State.t -> B.t array
(** [TKRes]: party [i]'s re-sharing messages; slot [j] (0-based) is
    the sub-share destined for party [j + 1]. *)

val recombine_share :
  tpk -> index:int -> epoch:int -> (int * B.t) list -> key_share
(** [TKRec]: party [index] combines sub-shares [(sender, subshare)]
    produced by {!reshare} on epoch-[e] shares into its epoch-[e+1]
    share; pass [~epoch:(e + 1)].

    {b All recipients must combine the same sender subset} (in
    practice: the broadcast-agreed set of senders whose proofs
    verified) — otherwise the new shares lie on different polynomials.
    Only the first [t + 1] distinct senders in the list are used, so
    passing the same ordered list everywhere suffices.
    @raise Invalid_argument with fewer than [t + 1] distinct senders. *)

val sim_partial_decrypt :
  tpk -> Paillier.ciphertext -> m:B.t -> honest:key_share list -> partial list
(** [SimTPDec]: given the honest parties' key shares and a target
    plaintext [m], produces partial decryptions for the honest parties
    such that {!combine} on them returns [m] — by re-basing the
    partials on the adjusted ciphertext [beta * (1+N)^(m - Dec(beta))],
    which is distributed identically to a fresh encryption of [m] with
    [beta]'s randomness component.  Needs [>= t + 1] honest shares.
    @raise Invalid_argument otherwise. *)

val theta : tpk -> int -> B.t
(** [theta_e = 4 Delta^2 (2 Delta^2)^e mod N]: the scalar a combined
    plaintext is implicitly multiplied by after epoch-[e]
    reconstruction (compensated inside {!val-combine}). *)

val mu_weight : B.t -> int list -> int -> B.t
(** [mu_weight delta subset i]: integral Lagrange-at-zero weight
    [Delta * l_i(0)].  @raise Failure if the weight is non-integral
    (can only happen if [delta] is not a multiple of [subset]'s
    denominators). *)

val share_index : key_share -> int
val share_epoch : key_share -> int
val unsafe_share : index:int -> epoch:int -> value:B.t -> key_share
(** Test/adversary constructor. *)

val unsafe_partial : index:int -> epoch:int -> d:B.t -> partial
(** Test/adversary constructor (e.g. a malicious role posting a junk
    partial decryption). *)

(** {1 Reference implementations}

    Naive square-and-multiply [TPDec]/[TDec], sharing their bodies
    with the context path (only the exponentiation backend differs);
    baseline side of [bench time]. *)

module Reference : sig
  val partial_decrypt : tpk -> key_share -> Paillier.ciphertext -> partial
  val combine : tpk -> partial list -> B.t
end
