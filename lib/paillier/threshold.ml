module B = Yoso_bigint.Bigint

type tpk = {
  pk : Paillier.public_key;
  n_parties : int;
  threshold : int;
  delta : B.t;
}

type key_share = { index : int; epoch : int; value : B.t }
type partial = { p_index : int; p_epoch : int; d : B.t }

let share_index s = s.index
let share_epoch s = s.epoch
let unsafe_share ~index ~epoch ~value = { index; epoch; value }
let unsafe_partial ~index ~epoch ~d = { p_index = index; p_epoch = epoch; d }

(* signed modular exponentiation over a given pow: negative exponents
   via inverse *)
let pow_signed ~pow b e m =
  if B.sign e >= 0 then pow b e m else pow (B.invmod b m) (B.neg e) m

(* integral Lagrange-at-zero weight: mu_i = Delta * prod_{j in s, j<>i} j / (j - i).
   Exact division is guaranteed because prod (j - i) divides Delta. *)
let mu_weight delta subset i =
  let num = ref delta and den = ref B.one in
  List.iter
    (fun j ->
      if j <> i then begin
        num := B.mul !num (B.of_int j);
        den := B.mul !den (B.of_int (j - i))
      end)
    subset;
  let q, r = B.divmod !num !den in
  if not (B.is_zero r) then failwith "Threshold.mu_weight: non-integral weight";
  q

let keygen ?(bits = 128) ~n ~t ~rng () =
  if t < 0 || t >= n then invalid_arg "Threshold.keygen: need 0 <= t < n";
  let pk, sk = Paillier.keygen ~bits ~rng () in
  let bigm = B.mul pk.Paillier.n sk.Paillier.lambda in
  (* d = 0 mod lambda, d = 1 mod N (CRT; gcd(lambda, N) = 1) *)
  let d =
    let lambda = sk.Paillier.lambda and nn = pk.Paillier.n in
    let inv = B.invmod lambda nn in
    B.erem (B.mul lambda inv) bigm
  in
  (* integer polynomial f(x) = d + sum a_l x^l, a_l in [0, M) *)
  let coeffs = Array.init t (fun _ -> B.random_below rng bigm) in
  let eval_f x =
    let xb = B.of_int x in
    let acc = ref B.zero in
    for l = t - 1 downto 0 do
      acc := B.mul (B.add !acc coeffs.(l)) xb
    done;
    B.add !acc d
  in
  let tpk = { pk; n_parties = n; threshold = t; delta = B.factorial n } in
  let shares = Array.init n (fun i -> { index = i + 1; epoch = 0; value = eval_f (i + 1) }) in
  (tpk, shares)

(* theta_e = 4 Delta^2 (2 Delta^2)^e mod N: the scalar the plaintext is
   multiplied by after epoch-e reconstruction *)
let theta tpk epoch =
  let n = tpk.pk.Paillier.n in
  let d2 = B.erem (B.mul tpk.delta tpk.delta) n in
  let base = B.erem (B.mul (B.of_int 4) d2) n in
  let per_epoch = B.erem (B.mul B.two d2) n in
  B.erem (B.mul base (B.powmod per_epoch (B.of_int epoch) n)) n

let dedup_partials parts =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun p ->
      if Hashtbl.mem seen p.p_index then false
      else begin
        Hashtbl.add seen p.p_index ();
        true
      end)
    parts

(* [TPDec] and [TDec] bodies, parameterized over the exponentiation
   backend so the context-accelerated path and the naive Reference
   path cannot drift apart.  [weights subset] must return the
   [2 * mu_i] combining weight for each index of [subset];
   [theta_inv epoch] the inverse of [theta] mod [N]. *)
let partial_decrypt_with ~pow tpk share ct =
  let e = B.mul B.two (B.mul tpk.delta share.value) in
  { p_index = share.index;
    p_epoch = share.epoch;
    d = pow_signed ~pow (Paillier.raw ct) e tpk.pk.Paillier.n2 }

(* the combination step factored over a product-of-powers kernel:
   [prodpow] receives the full [(partial, 2*mu_i)] batch and must
   return [prod d_i ^ w_i mod N^2] (negative weights included).  The
   multi-exponentiation path and the per-partial fold share everything
   else. *)
let combine_core ~prodpow ~weights ~theta_inv tpk parts =
  let parts = dedup_partials parts in
  let need = tpk.threshold + 1 in
  if List.length parts < need then
    invalid_arg
      (Printf.sprintf "Threshold.combine: %d partials, need %d" (List.length parts) need);
  let chosen = List.filteri (fun i _ -> i < need) parts in
  (match chosen with
  | [] -> ()
  | p0 :: rest ->
    if List.exists (fun p -> p.p_epoch <> p0.p_epoch) rest then
      invalid_arg "Threshold.combine: partials from different epochs");
  let epoch = (List.hd chosen).p_epoch in
  let subset = List.map (fun p -> p.p_index) chosen in
  let ws = weights subset in
  let pairs =
    Array.of_list (List.map (fun p -> (p.d, List.assoc p.p_index ws)) chosen)
  in
  let acc = prodpow pairs in
  (* acc = 1 + (m * theta_e mod N) * N *)
  let l = B.div (B.sub acc B.one) tpk.pk.Paillier.n in
  B.erem (B.mul l (theta_inv epoch)) tpk.pk.Paillier.n

let combine_with ~pow ~weights ~theta_inv tpk parts =
  let n2 = tpk.pk.Paillier.n2 in
  let prodpow pairs =
    Array.fold_left
      (fun acc (b, e) -> B.mulmod acc (pow_signed ~pow b e n2) n2)
      B.one pairs
  in
  combine_core ~prodpow ~weights ~theta_inv tpk parts

let default_weights tpk subset =
  List.map (fun i -> (i, B.mul B.two (mu_weight tpk.delta subset i))) subset

module Ctx = struct
  type t = {
    tpk : tpk;
    pctx : Paillier.Ctx.t;
    weight_cache : (int list, (int * B.t) list) Hashtbl.t;
    theta_inv_cache : (int, B.t) Hashtbl.t;
  }

  let create tpk =
    {
      tpk;
      pctx = Paillier.context tpk.pk;
      weight_cache = Hashtbl.create 4;
      theta_inv_cache = Hashtbl.create 4;
    }

  let tpk ctx = ctx.tpk
  let paillier ctx = ctx.pctx
  let pow ctx b e _m = Paillier.Ctx.pow_n2 ctx.pctx b e

  let weights ctx subset =
    match Hashtbl.find_opt ctx.weight_cache subset with
    | Some ws -> ws
    | None ->
      let ws = default_weights ctx.tpk subset in
      Hashtbl.replace ctx.weight_cache subset ws;
      ws

  let theta_inv ctx epoch =
    match Hashtbl.find_opt ctx.theta_inv_cache epoch with
    | Some v -> v
    | None ->
      let v = B.invmod (theta ctx.tpk epoch) ctx.tpk.pk.Paillier.n in
      Hashtbl.replace ctx.theta_inv_cache epoch v;
      v

  let encrypt ctx ~rng m = Paillier.Ctx.encrypt ctx.pctx ~rng m

  let eval ctx cts coeffs = Paillier.Ctx.linear_combination ctx.pctx cts coeffs

  let partial_decrypt ctx share ct =
    partial_decrypt_with ~pow:(pow ctx) ctx.tpk share ct

  (* Straus/Pippenger multi-exponentiation over the Montgomery context
     for N^2: one shared-window pass over all t+1 partials instead of
     t+1 independent powmods *)
  let combine ctx parts =
    let mont = Paillier.Ctx.mont_n2 ctx.pctx in
    combine_core
      ~prodpow:(fun pairs -> B.Multiexp.run mont pairs)
      ~weights:(weights ctx) ~theta_inv:(theta_inv ctx) ctx.tpk parts

  (* the pre-multiexp path — one Montgomery powmod per partial — kept
     callable so benchmarks can measure the speedup against it *)
  let combine_powmods ctx parts =
    combine_with ~pow:(pow ctx) ~weights:(weights ctx)
      ~theta_inv:(theta_inv ctx) ctx.tpk parts

  (* Force the lazy state a pooled fan-out would otherwise first-touch
     mid-chunk: the Paillier fixed-base table, the combining weights
     for [subsets], and the theta inverses for [epochs].  The two
     Hashtbl caches are not safe for concurrent writes, so shared
     contexts must be preloaded before the job. *)
  let preload ?(epochs = []) ?(subsets = []) ctx =
    Paillier.Ctx.preload ctx.pctx;
    List.iter (fun e -> ignore (theta_inv ctx e)) epochs;
    List.iter (fun s -> ignore (weights ctx s)) subsets

  let sim_partial_decrypt ctx ct ~m ~honest =
    if List.length honest < ctx.tpk.threshold + 1 then
      invalid_arg "Threshold.sim_partial_decrypt: not enough honest shares";
    (* decrypt beta using the honest shares themselves *)
    let m0 = combine ctx (List.map (fun s -> partial_decrypt ctx s ct) honest) in
    (* beta' = beta * (1+N)^(m - m0): same randomness component, target
       plaintext *)
    let n = ctx.tpk.pk.Paillier.n and n2 = ctx.tpk.pk.Paillier.n2 in
    let diff = B.erem (B.sub m m0) n in
    let adjust = B.erem (B.add B.one (B.mul diff n)) n2 in
    let ct' = Paillier.Ctx.of_raw ctx.pctx (B.mulmod (Paillier.raw ct) adjust n2) in
    List.map (fun s -> partial_decrypt ctx s ct') honest
end

(* memoized on the physical identity of the tpk record, like
   Paillier.context; mutated under a mutex for the same reason *)
let ctx_cache : (tpk * Ctx.t) list ref = ref []
let ctx_cache_cap = 8
let ctx_cache_lock = Mutex.create ()

let context tpk =
  let rec find = function
    | [] -> None
    | (k, c) :: tl -> if k == tpk then Some c else find tl
  in
  Mutex.lock ctx_cache_lock;
  let c =
    match find !ctx_cache with
    | Some c -> c
    | None ->
      let c = Ctx.create tpk in
      let keep = List.filteri (fun i _ -> i < ctx_cache_cap - 1) !ctx_cache in
      ctx_cache := (tpk, c) :: keep;
      c
  in
  Mutex.unlock ctx_cache_lock;
  c

let encrypt tpk ~rng m = Ctx.encrypt (context tpk) ~rng m
let eval tpk cts coeffs = Ctx.eval (context tpk) cts coeffs
let partial_decrypt tpk share ct = Ctx.partial_decrypt (context tpk) share ct
let combine tpk parts = Ctx.combine (context tpk) parts

let sim_partial_decrypt tpk ct ~m ~honest =
  Ctx.sim_partial_decrypt (context tpk) ct ~m ~honest

let reshare tpk share ~rng =
  let t = tpk.threshold in
  (* g(x) = Delta * s_i + sum_{l=1..t} a_l x^l with statistically
     blinding coefficients *)
  let bound =
    B.shift_left (B.add (B.abs share.value) (B.mul tpk.pk.Paillier.n tpk.pk.Paillier.n)) 64
  in
  let coeffs = Array.init t (fun _ -> B.random_below rng bound) in
  let base = B.mul tpk.delta share.value in
  Array.init tpk.n_parties (fun j ->
      let xb = B.of_int (j + 1) in
      let acc = ref B.zero in
      for l = t - 1 downto 0 do
        acc := B.mul (B.add !acc coeffs.(l)) xb
      done;
      B.add !acc base)

let recombine_share tpk ~index ~epoch subshares =
  let seen = Hashtbl.create 8 in
  let subshares =
    List.filter
      (fun (i, _) ->
        if Hashtbl.mem seen i then false
        else begin
          Hashtbl.add seen i ();
          true
        end)
      subshares
  in
  let need = tpk.threshold + 1 in
  if List.length subshares < need then
    invalid_arg
      (Printf.sprintf "Threshold.recombine_share: %d subshares, need %d"
         (List.length subshares) need);
  let chosen = List.filteri (fun i _ -> i < need) subshares in
  let subset = List.map fst chosen in
  let value =
    List.fold_left
      (fun acc (i, m) ->
        let w = B.mul B.two (mu_weight tpk.delta subset i) in
        B.add acc (B.mul w m))
      B.zero chosen
  in
  { index; epoch; value }

module Reference = struct
  let partial_decrypt tpk share ct =
    partial_decrypt_with ~pow:B.powmod_naive tpk share ct

  let combine tpk parts =
    combine_with ~pow:B.powmod_naive ~weights:(default_weights tpk)
      ~theta_inv:(fun epoch -> B.invmod (theta tpk epoch) tpk.pk.Paillier.n)
      tpk parts
end
