module B = Yoso_bigint.Bigint

type public_key = { n : B.t; n2 : B.t; bits : int }

type secret_key = {
  pk : public_key;
  p : B.t;
  q : B.t;
  lambda : B.t;
  mu : B.t;
}

type ciphertext = { pk_n2 : B.t; c : B.t }

let keygen ?(bits = 128) ~rng () =
  if bits < 16 then invalid_arg "Paillier.keygen: modulus too small";
  let half = bits / 2 in
  let rec gen () =
    let p = B.random_prime rng ~bits:half in
    let q = B.random_prime rng ~bits:half in
    if B.equal p q then gen () else (p, q)
  in
  let p, q = gen () in
  let n = B.mul p q in
  let n2 = B.mul n n in
  let p1 = B.sub p B.one and q1 = B.sub q B.one in
  let lambda = B.div (B.mul p1 q1) (B.gcd p1 q1) in
  (* with g = 1 + N:  L(g^lambda mod N^2) = lambda, so mu = lambda^-1 *)
  let mu = B.invmod lambda n in
  let pk = { n; n2; bits } in
  (pk, { pk; p; q; lambda; mu })

(* (1 + N)^m = 1 + m*N mod N^2 *)
let g_pow pk m =
  let m = B.erem m pk.n in
  B.erem (B.add B.one (B.mul m pk.n)) pk.n2

let sample_unit pk ~rng =
  let rec go () =
    let r = B.random_below rng pk.n in
    if B.is_zero r || not (B.is_one (B.gcd r pk.n)) then go () else r
  in
  go ()

(* L(x) = (x - 1) / N for x = 1 mod N *)
let l_function pk x = B.div (B.sub x B.one) pk.n

let check_same fn pk ct =
  if not (B.equal ct.pk_n2 pk.n2) then
    invalid_arg (fn ^ ": ciphertext under a different key")

module Ctx = struct
  type t = {
    pk : public_key;
    mont_n : B.Mont.ctx;
    mont_n2 : B.Mont.ctx;
    fb_g : B.Mont.fixed_base;
  }

  let create pk =
    let mont_n = B.Mont.create pk.n in
    let mont_n2 = B.Mont.create pk.n2 in
    let fb_g = B.Mont.fixed_base mont_n2 (B.add B.one pk.n) in
    { pk; mont_n; mont_n2; fb_g }

  let public_key ctx = ctx.pk
  let mont_n2 ctx = ctx.mont_n2
  let pow_n ctx b e = B.Mont.powmod ctx.mont_n b e
  let pow_n2 ctx b e = B.Mont.powmod ctx.mont_n2 b e

  (* the closed form 1 + m*N beats any exponentiation for s = 1 *)
  let g_pow ctx m = g_pow ctx.pk m

  (* table-driven g^m, kept for the Damgard-Jurik s > 1 generalisation
     where no closed form exists; tests pin it to the closed form *)
  let g_pow_table ctx m = B.Mont.fixed_powmod ctx.fb_g (B.erem m ctx.pk.n)

  let randomizer ctx r = pow_n2 ctx r ctx.pk.n

  let encrypt_with ctx ~r m =
    if not (B.is_one (B.gcd r ctx.pk.n)) then
      invalid_arg "Paillier.encrypt_with: randomness not a unit";
    let c = B.mulmod (g_pow ctx m) (randomizer ctx r) ctx.pk.n2 in
    { pk_n2 = ctx.pk.n2; c }

  let encrypt ctx ~rng m = encrypt_with ctx ~r:(sample_unit ctx.pk ~rng) m

  let decrypt ctx (sk : secret_key) ct =
    if not (B.equal ct.pk_n2 sk.pk.n2) then
      invalid_arg "Paillier.decrypt: ciphertext under a different key";
    let x = pow_n2 ctx ct.c sk.lambda in
    B.erem (B.mul (l_function sk.pk x) sk.mu) sk.pk.n

  let add ctx a b =
    check_same "Paillier.add" ctx.pk a;
    check_same "Paillier.add" ctx.pk b;
    { pk_n2 = ctx.pk.n2; c = B.mulmod a.c b.c ctx.pk.n2 }

  let scalar_mul ctx s ct =
    check_same "Paillier.scalar_mul" ctx.pk ct;
    { pk_n2 = ctx.pk.n2; c = pow_n2 ctx ct.c (B.erem s ctx.pk.n) }

  let linear_combination ctx cts coeffs =
    if List.length cts <> List.length coeffs then
      invalid_arg "Paillier.linear_combination: length mismatch";
    List.fold_left2
      (fun acc ct coeff -> add ctx acc (scalar_mul ctx coeff ct))
      { pk_n2 = ctx.pk.n2; c = B.one }
      cts coeffs

  let rerandomize ctx ~rng ct =
    check_same "Paillier.rerandomize" ctx.pk ct;
    let r = sample_unit ctx.pk ~rng in
    { pk_n2 = ctx.pk.n2; c = B.mulmod ct.c (randomizer ctx r) ctx.pk.n2 }

  let of_raw ctx v = { pk_n2 = ctx.pk.n2; c = B.erem v ctx.pk.n2 }

  (* Force every lazily-grown table in the context now.  The fixed-base
     window table extends itself inside [fixed_powmod] — a write — so a
     context shared across a Domain pool must be preloaded before the
     fan-out, not first-touched mid-chunk by whichever worker gets
     there first. *)
  let preload ctx = B.Mont.preload ctx.fb_g ~bits:(B.bit_length ctx.pk.n)
end

(* Contexts are memoized on the physical identity of the key record:
   protocol code builds one [public_key] per epoch and passes it
   around, so a handful of cache slots suffices and lookups are a
   short pointer scan.  The cache is mutated under a mutex so the
   convenience wrappers stay safe if two domains race to build the
   first context for a key (pooled code should still thread an
   explicit preloaded [Ctx.t] — see [Ctx.preload]). *)
let ctx_cache : (public_key * Ctx.t) list ref = ref []
let ctx_cache_cap = 8
let ctx_cache_lock = Mutex.create ()

let context pk =
  let rec find = function
    | [] -> None
    | (k, c) :: tl -> if k == pk then Some c else find tl
  in
  Mutex.lock ctx_cache_lock;
  let c =
    match find !ctx_cache with
    | Some c -> c
    | None ->
      let c = Ctx.create pk in
      let keep = List.filteri (fun i _ -> i < ctx_cache_cap - 1) !ctx_cache in
      ctx_cache := (pk, c) :: keep;
      c
  in
  Mutex.unlock ctx_cache_lock;
  c

let encrypt_with pk ~r m = Ctx.encrypt_with (context pk) ~r m
let encrypt pk ~rng m = Ctx.encrypt (context pk) ~rng m
let decrypt sk ct = Ctx.decrypt (context sk.pk) sk ct
let add pk a b = Ctx.add (context pk) a b
let scalar_mul pk s ct = Ctx.scalar_mul (context pk) s ct
let linear_combination pk cts coeffs = Ctx.linear_combination (context pk) cts coeffs
let rerandomize pk ~rng ct = Ctx.rerandomize (context pk) ~rng ct
let raw ct = ct.c
let of_raw pk v = { pk_n2 = pk.n2; c = B.erem v pk.n2 }

(* Deprecated positional-RNG aliases, one release *)
module Reference = struct
  let encrypt_with pk ~r m =
    if not (B.is_one (B.gcd r pk.n)) then
      invalid_arg "Paillier.encrypt_with: randomness not a unit";
    let c = B.mulmod (g_pow pk m) (B.powmod_naive r pk.n pk.n2) pk.n2 in
    { pk_n2 = pk.n2; c }

  let decrypt sk ct =
    if not (B.equal ct.pk_n2 sk.pk.n2) then
      invalid_arg "Paillier.decrypt: ciphertext under a different key";
    let x = B.powmod_naive ct.c sk.lambda sk.pk.n2 in
    B.erem (B.mul (l_function sk.pk x) sk.mu) sk.pk.n

  let scalar_mul pk s ct =
    check_same "Paillier.scalar_mul" pk ct;
    { pk_n2 = pk.n2; c = B.powmod_naive ct.c (B.erem s pk.n) pk.n2 }
end
