module F = Yoso_field.Field.Fp
module Splitmix = Yoso_hash.Splitmix

type tpk = { id : int; n : int; t : int }
type share = { key : int; index : int; epoch : int }
type 'a ct = { ct_key : int; value : 'a }
type 'a partial = { p_key : int; p_index : int; p_epoch : int; p_value : 'a }

(* atomic for the same reason as {!Ideal_pke.counter}: key generation
   happens concurrently across factory domains; ids need uniqueness
   only *)
let counter = Atomic.make 0

let keygen ~n ~t ~rng =
  if t < 0 || t >= n then invalid_arg "Ideal_te.keygen: need 0 <= t < n";
  ignore (Splitmix.next rng);
  let tpk = { id = Atomic.fetch_and_add counter 1 + 1; n; t } in
  (tpk, Array.init n (fun i -> { key = tpk.id; index = i + 1; epoch = 0 }))

let n_parties tpk = tpk.n
let threshold tpk = tpk.t
let share_index s = s.index
let share_epoch s = s.epoch

let encrypt tpk v = { ct_key = tpk.id; value = v }

let check_ct tpk c =
  if c.ct_key <> tpk.id then invalid_arg "Ideal_te: foreign ciphertext"

let eval tpk cts coeffs =
  if Array.length cts <> Array.length coeffs then
    invalid_arg "Ideal_te.eval: length mismatch";
  Array.iter (check_ct tpk) cts;
  let acc = ref F.zero in
  Array.iteri (fun i c -> acc := F.add !acc (F.mul coeffs.(i) c.value)) cts;
  { ct_key = tpk.id; value = !acc }

let add tpk a b =
  check_ct tpk a;
  check_ct tpk b;
  { ct_key = tpk.id; value = F.add a.value b.value }

let sub tpk a b =
  check_ct tpk a;
  check_ct tpk b;
  { ct_key = tpk.id; value = F.sub a.value b.value }

let scale tpk c a =
  check_ct tpk a;
  { ct_key = tpk.id; value = F.mul c a.value }

let add_plain tpk a v =
  check_ct tpk a;
  { ct_key = tpk.id; value = F.add a.value v }

let partial_decrypt tpk s c =
  check_ct tpk c;
  if s.key <> tpk.id then invalid_arg "Ideal_te.partial_decrypt: share of another key";
  { p_key = tpk.id; p_index = s.index; p_epoch = s.epoch; p_value = c.value }

let partial_index p = p.p_index

let combine tpk parts =
  let seen = Hashtbl.create 8 in
  let parts =
    List.filter
      (fun p ->
        if p.p_key <> tpk.id then invalid_arg "Ideal_te.combine: foreign partial";
        if Hashtbl.mem seen p.p_index then false
        else begin
          Hashtbl.add seen p.p_index ();
          true
        end)
      parts
  in
  let need = tpk.t + 1 in
  if List.length parts < need then
    invalid_arg
      (Printf.sprintf "Ideal_te.combine: %d partials, need %d" (List.length parts) need);
  let chosen = List.filteri (fun i _ -> i < need) parts in
  match chosen with
  | [] -> invalid_arg "Ideal_te.combine: empty"
  | p0 :: rest ->
    if List.exists (fun p -> p.p_epoch <> p0.p_epoch) rest then
      invalid_arg "Ideal_te.combine: partials from different epochs";
    if List.exists (fun p -> p.p_value <> p0.p_value) rest then
      invalid_arg "Ideal_te.combine: inconsistent partials";
    p0.p_value

type subshare = { s_key : int; sender : int; dest : int; s_epoch : int }

let reshare tpk s =
  if s.key <> tpk.id then invalid_arg "Ideal_te.reshare: share of another key";
  Array.init tpk.n (fun j ->
      { s_key = tpk.id; sender = s.index; dest = j + 1; s_epoch = s.epoch })

let subshare_sender ss = ss.sender

let recombine tpk ~index subs =
  let seen = Hashtbl.create 8 in
  let subs =
    List.filter
      (fun ss ->
        if ss.s_key <> tpk.id then invalid_arg "Ideal_te.recombine: foreign subshare";
        if ss.dest <> index then invalid_arg "Ideal_te.recombine: misaddressed subshare";
        if Hashtbl.mem seen ss.sender then false
        else begin
          Hashtbl.add seen ss.sender ();
          true
        end)
      subs
  in
  let need = tpk.t + 1 in
  if List.length subs < need then
    invalid_arg
      (Printf.sprintf "Ideal_te.recombine: %d subshares, need %d" (List.length subs) need);
  match subs with
  | [] -> assert false
  | s0 :: rest ->
    if List.exists (fun s -> s.s_epoch <> s0.s_epoch) rest then
      invalid_arg "Ideal_te.recombine: subshares from different epochs";
    { key = tpk.id; index; epoch = s0.s_epoch + 1 }

let reveal tpk c =
  check_ct tpk c;
  c.value

let junk_partial tpk ~index ~epoch v =
  { p_key = tpk.id; p_index = index; p_epoch = epoch; p_value = v }

let corrupt_partial p = { p with p_epoch = p.p_epoch + 1 }
