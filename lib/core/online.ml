module F = Yoso_field.Field.Fp
module PS = Yoso_shamir.Packed_shamir.Make (F)
module Pke = Ideal_pke
module Te = Ideal_te
module Circuit = Yoso_circuit.Circuit
module Layout = Yoso_circuit.Layout
module Bulletin = Yoso_runtime.Bulletin
module Committee = Yoso_runtime.Committee
module Cost = Yoso_runtime.Cost
module Role = Yoso_runtime.Role
module Faults = Yoso_runtime.Faults
module Ops = Committee_ops
module Board = Yoso_net.Board
module Wire = Yoso_net.Wire
module Pool = Yoso_parallel.Pool

type output = { client : int; wire : Circuit.wire; value : F.t }

let phase = "online"

let chunks size arr =
  let n = Array.length arr in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let len = min size (n - i) in
      go (i + len) (Array.sub arr i len :: acc)
    end
  in
  go 0 []

(* The online phase draws its preprocessing through an
   {!Offline.source}: each thunk is pulled exactly when the protocol
   needs that material — the final tsk holder first (future key
   distribution), then the input preps, then each mult layer's packed
   shares as its committee speaks, and the wire lambdas only at the
   output step.  Against a depot-backed source the draws block until
   the background producer has refilled the corresponding batch. *)
let run_from (ctx : Ops.ctx) (setup : Setup.t) (source : Offline.source) ~inputs =
  let te = setup.Setup.te in
  let p = ctx.Ops.params in
  let n = p.Params.n and k = p.Params.k in
  let gpc = p.Params.gates_per_committee in
  let layout = source.Offline.src_layout in
  let circuit = layout.Layout.circuit in
  let layers = source.Offline.src_layers in
  let ps = PS.make_params ~n ~k in
  let recon_degree = Params.reconstruction_threshold p - 1 in

  (* ---- role keys: layer committees are sampled now, and their
     role-assignment keys become known ------------------------------- *)
  let layer_committees = Array.init layers (fun _ -> Ops.fresh_committee ctx "On-L") in
  let role_keys =
    Array.init layers (fun _ -> Array.init n (fun _ -> Pke.gen ctx.Ops.rng))
  in

  (* ---- future key distribution ------------------------------------ *)
  let client_targets =
    List.map
      (fun (c, entry) ->
        let pk, _ = List.assoc c setup.Setup.client_keys in
        (pk, entry.Setup.kff_sk_ct))
      setup.Setup.kff_clients
  in
  let role_targets =
    List.concat
      (List.init layers (fun li ->
           List.init n (fun i ->
               (fst role_keys.(li).(i), setup.Setup.kff_roles.(li).(i).Setup.kff_sk_ct))))
  in
  let all_targets = Array.of_list (client_targets @ role_targets) in
  let holder = ref (source.Offline.src_final_holder ()) in
  let key_packages = Array.make (Array.length all_targets) None in
  let pos = ref 0 in
  List.iter
    (fun chunk ->
      let packages, next =
        Ops.reencrypt_batch ctx te !holder ~phase ~step:"future key distribution" chunk
      in
      Array.iteri (fun i pkg -> key_packages.(!pos + i) <- Some pkg) packages;
      pos := !pos + Array.length packages;
      holder := next)
    (chunks (max n gpc) all_targets);
  let num_clients = List.length client_targets in
  let client_kff_sk =
    List.mapi
      (fun idx (c, _) ->
        let _, sk = List.assoc c setup.Setup.client_keys in
        (c, Ops.open_reenc te sk (Option.get key_packages.(idx))))
      setup.Setup.kff_clients
  in
  let role_kff_sk li i =
    let idx = num_clients + (li * n) + i in
    let _, sk = role_keys.(li).(i) in
    Ops.open_reenc te sk (Option.get key_packages.(idx))
  in

  (* ---- mu bookkeeping --------------------------------------------- *)
  let mu = Array.make circuit.Circuit.wire_count None in
  let get_mu w =
    match mu.(w) with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Online: mu of wire %d not yet computed" w)
  in
  let propagate_additions () =
    Array.iter
      (function
        | Circuit.Add { a; b; out } -> (
          match (mu.(a), mu.(b)) with
          | Some va, Some vb -> mu.(out) <- Some (F.add va vb)
          | _ -> ())
        | Circuit.Input _ | Circuit.Mul _ | Circuit.Output _ -> ())
      circuit.Circuit.gates
  in

  (* ---- input step -------------------------------------------------- *)
  let client_input_cursor = Hashtbl.create 8 in
  List.iter
    (fun ip ->
      let c = ip.Offline.client in
      let kff_sk = List.assoc c client_kff_sk in
      let vec = inputs c in
      Array.iteri
        (fun j w ->
          let cursor = Option.value ~default:0 (Hashtbl.find_opt client_input_cursor c) in
          if cursor >= Array.length vec then
            invalid_arg (Printf.sprintf "Online: client %d input vector too short" c);
          let lambda = Ops.open_reenc te kff_sk ip.Offline.lambda_reencs.(j) in
          mu.(w) <- Some (F.sub vec.(cursor) lambda);
          Hashtbl.replace client_input_cursor c (cursor + 1))
        ip.Offline.wires)
    (source.Offline.src_input_preps ());
  (* one broadcast per client input role, carrying all its mu values —
     the real field elements go over the wire *)
  Board.next_round ctx.Ops.board;
  List.iter
    (fun c ->
      let wires = Circuit.input_wires_of_client circuit c in
      if wires <> [] then
        ignore
          (Board.post ctx.Ops.board
             ~author:(Role.id ~committee:(Printf.sprintf "Client%d-In" c) ~index:0)
             ~phase ~step:"input: publish mu = v - lambda"
             ~items:[ Wire.Field_elements (Array.of_list (List.map get_mu wires)) ]
             ~cost:[ (Cost.Field_element, List.length wires) ]
             ()))
    (Circuit.clients circuit);
  propagate_additions ();

  (* ---- multiplication layers --------------------------------------- *)
  for li = 0 to layers - 1 do
    let committee = layer_committees.(li) in
    let preps = Array.of_list (source.Offline.src_mult_preps li) in
    let nbatches = Array.length preps in
    if nbatches > 0 then begin
      (* public: degree-(k-1) sharings of the mu vectors of each batch *)
      let padded_mu f batch =
        let raw = Array.map f batch.Layout.mult_gates in
        Array.append raw (Array.make (k - Array.length raw) F.zero)
      in
      let pool = ctx.Ops.pool in
      let mu_alpha_sharing =
        Pool.map pool nbatches (fun bi ->
            PS.share_public ps (padded_mu (fun (a, _, _) -> get_mu a) preps.(bi).Offline.batch))
      in
      let mu_beta_sharing =
        Pool.map pool nbatches (fun bi ->
            PS.share_public ps (padded_mu (fun (_, b, _) -> get_mu b) preps.(bi).Offline.batch))
      in
      let step = "multiplication: publish mu-gamma shares" in
      let verified =
        Ops.contributions ctx committee ~phase ~step
          ~cost:[ (Cost.Field_element, nbatches) ]
          ~wire:(fun shares -> [ Wire.Field_elements shares ])
          ~required:(Params.reconstruction_threshold p)
          ~tamper:(fun rng kind i ->
            match kind with
            | Faults.Garbage_ciphertext -> None
            | Faults.Wrong_degree ->
              (* shares drawn off a maximal-degree junk polynomial: the
                 redundancy check over the surviving set would flag
                 exactly these if the forged proof slipped through *)
              Some
                (Array.map
                   (fun _ ->
                     let secrets = Array.init k (fun _ -> F.random rng) in
                     (PS.share ps ~degree:(n - 1) ~secrets ~rng).PS.shares.(i))
                   preps)
            | _ -> Some (Array.map (fun _ -> F.random rng) preps))
          (fun _rng i ->
            let kff_sk = role_kff_sk li i in
            Array.mapi
              (fun bi mp ->
                let open_share reencs = Ops.open_reenc te kff_sk reencs.(i) in
                let la = open_share mp.Offline.alpha_shares in
                let lb = open_share mp.Offline.beta_shares in
                let g = open_share mp.Offline.gamma_shares in
                let ma = (mu_alpha_sharing.(bi) : PS.sharing).PS.shares.(i) in
                let mb = (mu_beta_sharing.(bi) : PS.sharing).PS.shares.(i) in
                F.add (F.add (F.mul ma mb) (F.mul ma lb)) (F.add (F.mul mb la) g))
              preps)
      in
      Array.iteri
        (fun bi mp ->
          let pairs = List.map (fun (i, shares) -> (i, shares.(bi))) verified in
          (* error-detecting reconstruction over the surviving set:
             every share beyond the first degree+1 must lie on the
             interpolated polynomial *)
          let vec =
            match PS.reconstruct_checked ps ~degree:recon_degree pairs with
            | Ok vec -> vec
            | Error bad ->
              List.iter
                (fun i ->
                  Faults.record ctx.Ops.log
                    {
                      Faults.role = Committee.role committee i;
                      kind = Faults.Tamper_share;
                      phase;
                      step;
                    })
                bad;
              raise
                (Faults.Protocol_failure
                   {
                     Faults.f_phase = phase;
                     f_step = step ^ " (inconsistent surviving shares)";
                     f_committee = committee.Committee.name;
                     surviving = List.length pairs - List.length bad;
                     required = Params.reconstruction_threshold p;
                   })
          in
          Array.iteri
            (fun gi (_, _, out) -> mu.(out) <- Some vec.(gi))
            mp.Offline.batch.Layout.mult_gates)
        preps
    end;
    propagate_additions ()
  done;

  (* ---- output step -------------------------------------------------- *)
  let output_gates = Array.of_list circuit.Circuit.output_wires in
  let wire_lambda = source.Offline.src_wire_lambda () in
  let output_values =
    Array.map
      (fun (client, w) ->
        let pk, _ = List.assoc client setup.Setup.client_keys in
        (pk, wire_lambda.(w)))
      output_gates
  in
  let packages =
    if Array.length output_values = 0 then [||]
    else Ops.reencrypt_final ctx te !holder ~phase ~step:"output: re-encrypt lambdas to clients" output_values
  in
  Array.to_list
    (Array.mapi
       (fun idx (client, w) ->
         let _, sk = List.assoc client setup.Setup.client_keys in
         let lambda = Ops.open_reenc te sk packages.(idx) in
         { client; wire = w; value = F.add (get_mu w) lambda })
       output_gates)

let run ctx setup prep ~inputs = run_from ctx setup (Offline.source_of prep) ~inputs
