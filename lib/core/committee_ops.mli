(** Shared committee machinery: the [Decrypt] and [Re-encrypt]
    subprotocols (Protocols 1-2 of the paper) and the generic
    "every role contributes once, verification filters the malicious"
    pattern.

    Every operation creates real bulletin-board posts (speak-once
    enforced, costs charged) while the content flows functionally —
    the board is the audit trail, message contents are in-memory
    values (the standard protocol-simulator shortcut; see DESIGN.md).

    Corruption is executed, not assumed: malicious roles build
    genuinely corrupted payloads (junk partial decryptions, tampered
    shares, undecodable blobs) per the ctx's {!Yoso_runtime.Faults}
    plan and post them under forged NIZK transcripts; honest verifiers
    run {!Yoso_nizk.Ideal.verify} on every post, exclude what fails,
    record the blame, and abort with
    {!Yoso_runtime.Faults.Protocol_failure} if a step retains fewer
    verified contributions than its threshold.

    The threshold secret key travels down a chain of committees: each
    [decrypt_batch]/[reencrypt_batch] consumes the current holder
    committee (its roles speak once, posting partials, re-sharing
    messages and proofs) and hands the re-randomized key to a freshly
    sampled committee. *)

module F = Yoso_field.Field.Fp
module Pke = Ideal_pke
module Te = Ideal_te
module Committee = Yoso_runtime.Committee
module Cost = Yoso_runtime.Cost
module Faults = Yoso_runtime.Faults

type ctx = {
  board : Yoso_net.Board.t;
  rng : Yoso_hash.Splitmix.t;
  frng : Random.State.t;  (** field-element randomness *)
  pool : Yoso_parallel.Pool.t;  (** domain pool for committee fan-out *)
  params : Params.t;
  adversary : Params.adversary;
  plan : Faults.plan;  (** how corrupted roles misbehave *)
  log : Faults.log;  (** blame list accumulated by verifiers *)
  mutable committee_counter : int;
}

val create_ctx :
  ?plan:Faults.plan ->
  ?validate:bool ->
  ?pool:Yoso_parallel.Pool.t ->
  board:Yoso_net.Board.t ->
  params:Params.t ->
  adversary:Params.adversary ->
  seed:int ->
  unit ->
  ctx
(** [plan] defaults to [Faults.random ~seed].  [validate] (default
    [true]) runs {!Params.validate_adversary}; chaos harnesses pass
    [false] to execute beyond-bound adversaries and observe the
    structured runtime abort instead.  [pool] (default
    {!Yoso_parallel.Pool.sequential}) runs per-member work of every
    committee step across its domains; results are identical at any
    pool size. *)

val fresh_committee : ctx -> string -> Committee.t
(** Samples a committee with the ctx's adversary structure; names are
    suffixed with a running counter. *)

val contributions :
  ?tamper:(Random.State.t -> Faults.kind -> int -> 'a option) ->
  ?wire:('a -> Yoso_net.Wire.item list) ->
  ?required:int ->
  ctx ->
  Committee.t ->
  phase:string ->
  step:string ->
  cost:(Cost.kind * int) list ->
  (Random.State.t -> int -> 'a) ->
  (int * 'a) list
(** [contributions ctx committee ~phase ~step ~cost f]: every speaking
    role posts once ([cost] plus one proof each).  Honest roles post
    [f rng i] with a valid proof.  Malicious roles post real
    corruption: [tamper rng kind i] builds the payload they put on the
    board ([None] models an undecodable blob — on the wire, a frame
    that fails its integrity check; without [tamper] every active
    fault degrades to one), always under a forged proof — verification
    rejects it and the blame log gains an entry.  Fail-stop roles stay
    silent or post past the round deadline per the fault plan.

    Member payloads are built concurrently on the ctx pool; the [rng]
    handed to [f]/[tamper] is derived per index from one draw on the
    shared stream, so payloads (and hence transcripts) are independent
    of scheduling and domain count.  [f] and [tamper] must draw all
    their randomness from that [rng] and must not touch shared mutable
    state.

    Every post is a real transmission through the ctx's
    {!Yoso_net.Board}: the step opens a fresh network round, [wire]
    maps a payload to the wire items carrying its element data, and
    the rest of [cost] is synthesized at modeled sizes so each frame
    has the full byte weight of the post.  Under non-ideal network
    models an honest post can arrive late or not at all; the role is
    then excluded exactly like a fail-stop.
    Returns the verified [(index, payload)] list.
    @raise Faults.Protocol_failure if fewer than [required] (default
    [1]) contributions survive verification. *)

(** {1 The tsk chain} *)

type holder
(** A committee currently holding the shares of [tsk]. *)

val initial_holder : ctx -> Te.tpk -> name:string -> Te.share array -> holder
val holder_committee : holder -> Committee.t

val decrypt_batch :
  ctx -> Te.tpk -> holder -> phase:string -> step:string -> F.t Te.ct array ->
  F.t array * holder
(** [Decrypt] (Protocol 2), batched: each speaking holder role posts
    one broadcast containing its partial decryption of every
    ciphertext, its [n] re-sharing messages for the next committee,
    and one proof.  Malicious holders post junk partial decryptions
    (correct epoch, wrong values) or garbage; verification excludes
    them before [TDec].  Returns the decrypted values and the next
    holder.
    @raise Faults.Protocol_failure with fewer than [t + 1] verified
    contributions. *)

type 'a reenc
(** A value re-encrypted towards one recipient: the on-board partial
    encryptions, openable only with the matching secret key. *)

val reenc_target : 'a reenc -> Pke.pk

val reencrypt_batch :
  ctx -> Te.tpk -> holder -> phase:string -> step:string ->
  (Pke.pk * 'a Te.ct) array ->
  'a reenc array * holder
(** [Re-encrypt] (Protocol 1), batched over many [(recipient, ct)]
    values: each speaking holder role posts one broadcast with, per
    value, its partial decryption encrypted under the recipient key,
    plus its re-sharing messages and one proof.
    @raise Faults.Protocol_failure with fewer than [t + 1] verified
    contributions. *)

val reencrypt_packed :
  ctx -> Te.tpk -> holder -> phase:string -> step:string ->
  (Pke.pk * 'a Te.ct) array ->
  'a reenc array * holder
(** Ciphertext-level batched [Re-encrypt]: values sharing a recipient
    travel as one bundled ciphertext per speaking holder, so the post
    is charged [distinct targets + n] ciphertexts instead of
    [len + n] — the factory's amortization of the tsk-chain
    re-encryptions to KFF.  Functionally identical to
    {!reencrypt_batch} (same packages, same key handoff); only the
    wire accounting differs, so it changes the transcript and is
    opt-in via {!Offline.opts}. *)

val reencrypt_final :
  ctx -> Te.tpk -> holder -> phase:string -> step:string ->
  (Pke.pk * 'a Te.ct) array ->
  'a reenc array
(** [Re-encrypt*] (online output step): same, but the holder does not
    re-share [tsk] — the chain ends. *)

val open_reenc : Te.tpk -> Pke.sk -> 'a reenc -> 'a
(** Recipient side: decrypt the partial encryptions with the matching
    secret key and run [TDec] on [t + 1] of them.
    @raise Invalid_argument on a wrong key or too few partials. *)
