module F = Yoso_field.Field.Fp
module Pke = Ideal_pke
module Te = Ideal_te
module Bulletin = Yoso_runtime.Bulletin
module Committee = Yoso_runtime.Committee
module Cost = Yoso_runtime.Cost
module Faults = Yoso_runtime.Faults
module Role = Yoso_runtime.Role
module Splitmix = Yoso_hash.Splitmix
module Nizk = Yoso_nizk.Ideal
module Board = Yoso_net.Board
module Wire = Yoso_net.Wire
module Pool = Yoso_parallel.Pool

type ctx = {
  board : Board.t;
  rng : Splitmix.t;
  frng : Random.State.t;
  pool : Pool.t;
  params : Params.t;
  adversary : Params.adversary;
  plan : Faults.plan;
  log : Faults.log;
  mutable committee_counter : int;
}

let create_ctx ?plan ?(validate = true) ?(pool = Pool.sequential) ~board ~params ~adversary
    ~seed () =
  if validate then Params.validate_adversary params adversary;
  {
    board;
    rng = Splitmix.of_int seed;
    frng = Random.State.make [| seed lxor 0x5EED |];
    pool;
    params;
    adversary;
    plan = (match plan with Some p -> p | None -> Faults.random ~seed);
    log = Faults.create_log ();
    committee_counter = 0;
  }

let fresh_committee ctx prefix =
  ctx.committee_counter <- ctx.committee_counter + 1;
  let name = Printf.sprintf "%s#%d" prefix ctx.committee_counter in
  Committee.sample ~name ~n:ctx.params.Params.n
    ~malicious:ctx.adversary.Params.malicious ~passive:ctx.adversary.Params.passive
    ~fail_stop:ctx.adversary.Params.fail_stop ctx.rng

(* Every speaking role posts once; the post's content is verified
   before it contributes.  Honest (and passive) roles prove their
   witness; malicious roles genuinely build a corrupted payload per
   the ctx fault plan and post it under a forged transcript (the ideal
   NIZK is sound, so a false statement can never carry a verifying
   proof); fail-stop roles stay silent or post past the deadline.
   Detected deviations are recorded in the blame log; if fewer than
   [required] contributions survive exclusion, the step aborts with
   the structured [Faults.Protocol_failure].

   Every post travels through the simulated network: [wire] maps a
   payload to its real wire items (online field data); everything the
   declared cost covers beyond that is synthesized at modeled sizes,
   so the frame carries the full byte weight of the post.  Under the
   ideal network model every frame is Delivered and the outcomes below
   collapse to the abstract bulletin-board behaviour.

   The fan-out runs in two phases.  Phase A — per-member payload
   construction and frame encoding — is pure given the member index
   (fault-plan lookups are hash-based, payload randomness comes from a
   per-index derived RNG, blob bytes from the tag-derived stream) and
   runs under the ctx's domain pool.  Phase B walks members in index
   order on the calling domain, committing frames to the board and
   running verification, so board order, digest chain, blame log and
   the returned list are identical at every domain count. *)

(* what member [i] intends to put on the wire, computed in Phase A *)
type 'a intent =
  | Contribute of 'a * Board.prepared  (* honest/passive, or Bad_proof *)
  | Tampered of Faults.kind * 'a option * Board.prepared
  | Delayed_post of Faults.kind * Board.prepared  (* posts past the deadline *)
  | Stays_silent of Faults.kind

let contributions ?tamper ?wire ?(required = 1) ctx committee ~phase ~step ~cost f =
  Board.next_round ctx.board;
  let proofed_cost = (Cost.Proof, 1) :: cost in
  let relation = "contribution:" ^ step in
  let name = committee.Committee.name in
  let items_of payload = match wire with Some w -> w payload | None -> [] in
  let round = Board.round ctx.board in
  (* one draw from the shared stream, before the fan-out; every member
     derives its own RNG from (step_seed, index) *)
  let step_seed = Random.State.bits ctx.frng in
  (* Phase A: build every member's payload and frame in parallel.
     The cost hint tells the pool where the crypto is: honest, passive
     and most malicious members run the full payload builder plus
     frame synthesis, fail-stop members only look up their fault kind
     and (at most) synthesize a frame.  Weighted chunking keeps a
     committee with clustered fail-stops from serializing the heavy
     tail behind one domain.  The hint is pure (status and plan
     lookups are hash-based), so chunk boundaries — and a fortiori the
     transcript — are identical at every domain count. *)
  let phase_a_cost i =
    match Committee.status committee i with
    | Committee.Honest | Committee.Passive | Committee.Malicious -> 8
    | Committee.Fail_stop -> 1
  in
  let intents =
    Pool.map ~cost:phase_a_cost ctx.pool committee.Committee.size (fun i ->
        let author = Committee.role committee i in
        let rng = Pool.derive_rng ~seed:step_seed i in
        let prep ?items ?corrupt ?force_late () =
          Board.prepare ctx.board ~author ~phase ~step ?items ?corrupt ?force_late
            ~cost:proofed_cost ~tag:(Splitmix.mix round i) ()
        in
        match Committee.status committee i with
        | Committee.Honest | Committee.Passive ->
          let payload = f rng i in
          Contribute (payload, prep ~items:(items_of payload) ())
        | Committee.Fail_stop -> (
          match Faults.fail_stop_kind ctx.plan ~committee:name ~index:i with
          | Faults.Delayed -> Delayed_post (Faults.Delayed, prep ~force_late:true ())
          | _ -> Stays_silent Faults.Silent)
        | Committee.Malicious -> (
          match Faults.malicious_kind ctx.plan ~committee:name ~index:i with
          | Faults.Silent -> Stays_silent Faults.Silent
          | Faults.Delayed -> Delayed_post (Faults.Delayed, prep ~force_late:true ())
          | Faults.Bad_proof ->
            (* correct data, equivocated proof *)
            let payload = f rng i in
            Tampered (Faults.Bad_proof, Some payload, prep ~items:(items_of payload) ())
          | active -> (
            (* build the corrupted payload the role actually posts *)
            let payload = match tamper with Some t -> t rng active i | None -> None in
            match payload with
            | None ->
              (* undecodable blob: a frame corrupted in the sender's
                 hand, caught by the receiver's integrity check *)
              Tampered (active, None, prep ~corrupt:true ())
            | Some p -> Tampered (active, payload, prep ~items:(items_of p) ()))))
  in
  (* Phase B: commit to the board and verify, in index order *)
  let out = ref [] in
  Array.iteri
    (fun i intent ->
      let author = Committee.role committee i in
      let statement = Role.to_string author in
      let blame kind = Faults.record ctx.log { Faults.role = author; kind; phase; step } in
      match intent with
      | Contribute (payload, p) -> (
        match Board.commit ctx.board p with
        | Board.Delivered ->
          let proof = Nizk.prove ~relation ~statement ~witness_ok:true in
          if Nizk.verify ~relation ~statement proof then out := (i, payload) :: !out
          else assert false (* ideal NIZK is complete *)
        (* an honest frame the network delays or loses is observationally
           a fail-stop: the step excludes the role *)
        | Board.Late -> blame Faults.Delayed
        | Board.Dropped -> blame Faults.Silent
        | Board.Garbled -> blame Faults.Tamper_share (* unreachable: honest encode *))
      | Stays_silent kind -> blame kind
      | Delayed_post (kind, p) ->
        ignore (Board.commit ctx.board p);
        blame kind
      | Tampered (kind, payload, p) ->
        let outcome = Board.commit ctx.board p in
        let proof = Nizk.forge ~relation ~statement in
        let accepted =
          match (payload, outcome) with
          | None, _ -> false (* rejected at parse time *)
          | Some _, (Board.Late | Board.Dropped | Board.Garbled) -> false
          | Some _, Board.Delivered -> Nizk.verify ~relation ~statement proof
        in
        if accepted then out := (i, Option.get payload) :: !out else blame kind)
    intents;
  let out = List.rev !out in
  let surviving = List.length out in
  if surviving < required then
    raise
      (Faults.Protocol_failure
         { Faults.f_phase = phase; f_step = step; f_committee = name; surviving; required });
  out

(* ------------------------------------------------------------------ *)
(* tsk chain                                                            *)
(* ------------------------------------------------------------------ *)

type holder = { committee : Committee.t; shares : Te.share option array; prefix : string }

let holder_committee h = h.committee

let initial_holder ctx _te ~name shares =
  let committee = fresh_committee ctx name in
  if Array.length shares <> ctx.params.Params.n then
    invalid_arg "Committee_ops.initial_holder: share count <> n";
  { committee; shares = Array.map Option.some shares; prefix = name }

let member_share holder i =
  match holder.shares.(i) with
  | Some s -> s
  | None -> failwith "Committee_ops: holder member without a tsk share"

(* hand the re-randomized key to a fresh committee *)
let pass_key ctx te next_prefix verified =
  let next = fresh_committee ctx next_prefix in
  let shares =
    Array.init ctx.params.Params.n (fun j ->
        let subs = List.map (fun (_, reshares) -> reshares.(j)) verified in
        Some (Te.recombine te ~index:(j + 1) subs))
  in
  { committee = next; shares; prefix = next_prefix }

(* junk partial decryptions under the holder's true epoch: syntactically
   valid, wrong values — exactly what combine would choke on if the
   forged proof were not caught first *)
let tampered_partials te holder cts rng i =
  let share = member_share holder i in
  let epoch = Te.share_epoch share in
  Array.map (fun _ -> Te.junk_partial te ~index:(i + 1) ~epoch (F.random rng)) cts

let decrypt_batch ctx te holder ~phase ~step cts =
  let n = ctx.params.Params.n in
  let cost = [ (Cost.Partial_decryption, Array.length cts); (Cost.Ciphertext, n) ] in
  let tamper rng kind i =
    match kind with
    | Faults.Garbage_ciphertext -> None
    | _ ->
      (* corrupted partials; reshares kept honest so the tampering is
         only caught by transcript verification, not by accident *)
      Some (tampered_partials te holder cts rng i, Te.reshare te (member_share holder i))
  in
  let verified =
    contributions ~tamper
      ~required:(Te.threshold te + 1)
      ctx holder.committee ~phase ~step ~cost
      (fun _rng i ->
        let share = member_share holder i in
        let partials = Array.map (Te.partial_decrypt te share) cts in
        let reshares = Te.reshare te share in
        (partials, reshares))
  in
  let varr = Array.of_list verified in
  let values =
    Pool.map ctx.pool (Array.length cts) (fun c ->
        Te.combine te
          (Array.to_list (Array.map (fun (_, (partials, _)) -> partials.(c)) varr)))
  in
  let next = pass_key ctx te holder.prefix (List.map (fun (i, (_, r)) -> (i, r)) verified) in
  (values, next)

type 'a reenc = { senders : int list; target : Pke.pk; guarded : 'a Pke.enc }

let reenc_target r = r.target

let open_reenc te sk r =
  let distinct = List.sort_uniq compare r.senders in
  if List.length distinct < Te.threshold te + 1 then
    invalid_arg "Committee_ops.open_reenc: not enough partial encryptions";
  Pke.dec sk r.guarded

let reencrypt_generic ?cost ctx te holder ~phase ~step ~reshare values =
  let n = ctx.params.Params.n in
  let cost =
    match cost with
    | Some c -> c
    | None ->
      if reshare then [ (Cost.Ciphertext, Array.length values + n) ]
      else [ (Cost.Ciphertext, Array.length values) ]
  in
  let tamper _rng kind i =
    match kind with
    | Faults.Garbage_ciphertext -> None
    | _ ->
      (* payloads are polymorphic (KFF keys travel here), so junk field
         elements cannot be fabricated; instead misreport by rotating
         the partials across the batch (each slot carries the partial
         of a *different* ciphertext), or desynchronize the epoch when
         the batch has a single value *)
      let share = member_share holder i in
      let honest = Array.map (fun (_, ct) -> Te.partial_decrypt te share ct) values in
      let len = Array.length honest in
      let partials =
        if len > 1 then Array.init len (fun v -> honest.((v + 1) mod len))
        else Array.map Te.corrupt_partial honest
      in
      Some (partials, if reshare then Some (Te.reshare te share) else None)
  in
  let verified =
    contributions ~tamper
      ~required:(Te.threshold te + 1)
      ctx holder.committee ~phase ~step ~cost
      (fun _rng i ->
        let share = member_share holder i in
        let partials = Array.map (fun (_, ct) -> Te.partial_decrypt te share ct) values in
        let reshares = if reshare then Some (Te.reshare te share) else None in
        (partials, reshares))
  in
  let senders = List.map fst verified in
  let varr = Array.of_list verified in
  let packages =
    Pool.map ctx.pool (Array.length values) (fun v ->
        let target, _ = values.(v) in
        let value =
          Te.combine te
            (Array.to_list (Array.map (fun (_, (partials, _)) -> partials.(v)) varr))
        in
        { senders; target; guarded = Pke.enc target value })
  in
  (packages, verified)

let reshares_of (i, (_, r)) =
  match r with Some arr -> (i, arr) | None -> assert false

let reencrypt_batch ctx te holder ~phase ~step values =
  let packages, verified =
    reencrypt_generic ctx te holder ~phase ~step ~reshare:true values
  in
  let next = pass_key ctx te holder.prefix (List.map reshares_of verified) in
  (packages, next)

(* ciphertext-level batching: every value destined for one recipient
   travels inside ONE bundled ciphertext per speaking holder (the
   recipient unpacks the bundle locally), so a member's post carries
   [distinct targets + n] ciphertexts instead of [len + n].  The
   in-memory packages stay per-value — only the wire accounting (and
   hence bytes/gate) amortizes. *)
let reencrypt_packed ctx te holder ~phase ~step values =
  let n = ctx.params.Params.n in
  let targets = Hashtbl.create 16 in
  Array.iter (fun (pk, _) -> Hashtbl.replace targets pk ()) values;
  let cost = [ (Cost.Ciphertext, Hashtbl.length targets + n) ] in
  let packages, verified =
    reencrypt_generic ~cost ctx te holder ~phase ~step ~reshare:true values
  in
  let next = pass_key ctx te holder.prefix (List.map reshares_of verified) in
  (packages, next)

let reencrypt_final ctx te holder ~phase ~step values =
  let packages, _ = reencrypt_generic ctx te holder ~phase ~step ~reshare:false values in
  packages
