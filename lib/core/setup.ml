module F = Yoso_field.Field.Fp
module Pke = Ideal_pke
module Te = Ideal_te
module Board = Yoso_net.Board
module Cost = Yoso_runtime.Cost
module Role = Yoso_runtime.Role

type kff_entry = { kff_pk : Pke.pk; kff_sk_ct : Pke.sk Te.ct }

type t = {
  params : Params.t;
  te : Te.tpk;
  initial_tsk : Te.share array;
  kff_clients : (int * kff_entry) list;
  kff_roles : kff_entry array array;
  client_keys : (int * (Pke.pk * Pke.sk)) list;
}

let run ~board ~params ~layers ~clients ~rng =
  let te, initial_tsk = Te.keygen ~n:params.Params.n ~t:params.Params.t ~rng in
  let fresh_kff () =
    let pk, sk = Pke.gen rng in
    { kff_pk = pk; kff_sk_ct = Te.encrypt te sk }
  in
  let kff_clients = List.map (fun c -> (c, fresh_kff ())) clients in
  let kff_roles =
    Array.init layers (fun _ -> Array.init params.Params.n (fun _ -> fresh_kff ()))
  in
  let client_keys = List.map (fun c -> (c, Pke.gen rng)) clients in
  let kff_count = List.length kff_clients + (layers * params.Params.n) in
  ignore
    (Board.post board
       ~author:(Role.id ~committee:"Setup" ~index:0)
       ~phase:"setup" ~step:"setup: tpk, KFF public keys, KFF secret keys under tpk"
       ~cost:
         [
           (Cost.Key, 1 + kff_count + List.length client_keys);
           (Cost.Ciphertext, kff_count);
         ]
       ());
  { params; te; initial_tsk; kff_clients; kff_roles; client_keys }
