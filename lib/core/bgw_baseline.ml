module F = Yoso_field.Field.Fp
module PS = Yoso_shamir.Packed_shamir.Make (F)
module Lagrange = Yoso_field.Lagrange.Make (F)
module Circuit = Yoso_circuit.Circuit
module Eval = Yoso_circuit.Circuit.Eval (Yoso_field.Field.Fp)
module Bulletin = Yoso_runtime.Bulletin
module Committee = Yoso_runtime.Committee
module Cost = Yoso_runtime.Cost
module Role = Yoso_runtime.Role

type report = {
  outputs : (int * Circuit.wire * F.t) list;
  online_elements : int;
  input_elements : int;
  posts : int;
  num_mult : int;
}

let online_per_gate r = float_of_int r.online_elements /. float_of_int (max 1 r.num_mult)

(* wire depths, as in Layout *)
let wire_depths (c : Circuit.t) =
  let depths = Array.make c.Circuit.wire_count 0 in
  Array.iter
    (fun g ->
      match g with
      | Circuit.Input { wire; _ } -> depths.(wire) <- 0
      | Circuit.Add { a; b; out } -> depths.(out) <- max depths.(a) depths.(b)
      | Circuit.Mul { a; b; out } -> depths.(out) <- 1 + max depths.(a) depths.(b)
      | Circuit.Output _ -> ())
    c.Circuit.gates;
  depths

let execute ~n ~t ?(seed = 0xB6) ~circuit ~inputs () =
  if t < 0 || 2 * t + 1 > n then
    invalid_arg "Bgw_baseline: need 0 <= t < n/2";
  let board : string Bulletin.t = Bulletin.create () in
  let st = Random.State.make [| seed |] in
  let ps = PS.make_params ~n ~k:1 in
  let depths = wire_depths circuit in
  let total_rounds =
    Array.fold_left
      (fun acc g -> match g with Circuit.Mul { out; _ } -> max acc depths.(out) | _ -> acc)
      0 circuit.Circuit.gates
  in
  (* round at which each wire is last consumed (see mli) *)
  let last_use = Array.make circuit.Circuit.wire_count (-1) in
  let touch w r = if r > last_use.(w) then last_use.(w) <- r in
  Array.iter
    (fun g ->
      match g with
      | Circuit.Input _ -> ()
      | Circuit.Add { a; b; out } ->
        touch a depths.(out);
        touch b depths.(out)
      | Circuit.Mul { a; b; out } ->
        touch a (depths.(out) - 1);
        touch b (depths.(out) - 1)
      | Circuit.Output { wire; _ } -> touch wire total_rounds)
    circuit.Circuit.gates;

  (* current committee's degree-t sharings of the defined wires *)
  let shares : PS.sharing option array = Array.make circuit.Circuit.wire_count None in
  let get w =
    match shares.(w) with
    | Some s -> s
    | None -> failwith "Bgw_baseline: wire share missing"
  in

  (* ---- input sharing ------------------------------------------------ *)
  let cursor = Hashtbl.create 8 in
  Array.iter
    (fun g ->
      match g with
      | Circuit.Input { client; wire } ->
        let i = Option.value ~default:0 (Hashtbl.find_opt cursor client) in
        Hashtbl.replace cursor client (i + 1);
        shares.(wire) <- Some (PS.share ps ~degree:t ~secrets:[| (inputs client).(i) |] ~rng:st)
      | Circuit.Add _ | Circuit.Mul _ | Circuit.Output _ -> ())
    circuit.Circuit.gates;
  List.iter
    (fun client ->
      let wires = Circuit.input_wires_of_client circuit client in
      if wires <> [] then
        Bulletin.post board
          ~author:(Role.id ~committee:(Printf.sprintf "BgwClient%d" client) ~index:0)
          ~phase:"input"
          ~cost:[ (Cost.Ciphertext, n * List.length wires) ]
          "bgw input sharing")
    (Circuit.clients circuit);

  (* resharing weights: t+1 senders for carried wires, 2t+1 for
     degree-2t products (GRR reduction) *)
  let weights count =
    let points = Array.init count (fun i -> PS.share_point ps i) in
    Lagrange.coeffs_at ~points ~target:F.zero
  in
  let w_carry = weights (t + 1) in
  let w_reduce = weights ((2 * t) + 1) in

  (* re-share a list of (wire, member-shares, senders-needed) through a
     fresh committee round and install the reduced sharings *)
  let committee_counter = ref 0 in
  let reshare_round round payload =
    incr committee_counter;
    let name = Printf.sprintf "Bgw-R%d#%d" round !committee_counter in
    let committee = Committee.honest_all ~name ~n in
    (* each member speaks once, re-sharing its share of every value *)
    let sub = Hashtbl.create 64 in
    List.iter
      (fun (w, sharing, _) ->
        let polys =
          Array.init n (fun i ->
              PS.share ps ~degree:t ~secrets:[| (sharing : PS.sharing).PS.shares.(i) |] ~rng:st)
        in
        Hashtbl.add sub w polys)
      payload;
    for i = 0 to n - 1 do
      Bulletin.post board ~author:(Committee.role committee i) ~phase:"online"
        ~cost:[ (Cost.Ciphertext, n * List.length payload) ]
        "bgw reshare"
    done;
    List.iter
      (fun (w, _, senders) ->
        let polys = Hashtbl.find sub w in
        let weights = if senders = t + 1 then w_carry else w_reduce in
        let new_shares =
          Array.init n (fun j ->
              let acc = ref F.zero in
              for i = 0 to senders - 1 do
                acc := F.add !acc (F.mul weights.(i) (polys.(i) : PS.sharing).PS.shares.(j))
              done;
              !acc)
        in
        shares.(w) <- Some (PS.make_sharing ~degree:t ~shares:new_shares))
      payload
  in

  (* additions executable at a given round *)
  let run_adds round =
    Array.iter
      (fun g ->
        match g with
        | Circuit.Add { a; b; out } ->
          if depths.(out) = round && shares.(out) = None then
            shares.(out) <- Some (PS.add ps (get a) (get b))
        | Circuit.Input _ | Circuit.Mul _ | Circuit.Output _ -> ())
      circuit.Circuit.gates
  in
  run_adds 0;

  (* ---- rounds -------------------------------------------------------- *)
  for r = 0 to total_rounds - 1 do
    (* products of layer r+1, degree 2t, computed by committee r *)
    let products =
      Array.to_list circuit.Circuit.gates
      |> List.filter_map (fun g ->
             match g with
             | Circuit.Mul { a; b; out } when depths.(out) = r + 1 ->
               Some (out, PS.mul ps (get a) (get b), (2 * t) + 1)
             | Circuit.Mul _ | Circuit.Input _ | Circuit.Add _ | Circuit.Output _ -> None)
    in
    (* wires still needed strictly after this round *)
    let carried = ref [] in
    Array.iteri
      (fun w s ->
        match s with
        | Some sharing when last_use.(w) > r -> carried := (w, sharing, t + 1) :: !carried
        | Some _ | None -> ())
      shares;
    reshare_round r (products @ !carried);
    run_adds (r + 1)
  done;

  (* ---- output -------------------------------------------------------- *)
  let output_gates = Array.of_list circuit.Circuit.output_wires in
  if Array.length output_gates > 0 then begin
    incr committee_counter;
    let name = Printf.sprintf "Bgw-Out#%d" !committee_counter in
    let committee = Committee.honest_all ~name ~n in
    for i = 0 to n - 1 do
      Bulletin.post board ~author:(Committee.role committee i) ~phase:"online"
        ~cost:[ (Cost.Field_element, Array.length output_gates) ]
        "bgw output shares"
    done
  end;
  let outputs =
    Array.to_list
      (Array.map
         (fun (client, w) ->
           let sharing = get w in
           let pairs = List.init (t + 1) (fun i -> (i, (sharing : PS.sharing).PS.shares.(i))) in
           (client, w, (PS.reconstruct ps ~degree:t pairs).(0)))
         output_gates)
  in
  let cost = Bulletin.cost board in
  {
    outputs;
    online_elements = Cost.elements cost ~phase:"online";
    input_elements = Cost.elements cost ~phase:"input";
    posts = Bulletin.length board;
    num_mult = Circuit.num_mul circuit;
  }

let check report circuit ~inputs =
  let plain = Eval.run circuit ~inputs in
  List.length plain = List.length report.outputs
  && List.for_all2
       (fun (c, v) (c', _, v') -> c = c' && F.equal v v')
       plain report.outputs
