module F = Yoso_field.Field.Fp
module Circuit = Yoso_circuit.Circuit
module Layout = Yoso_circuit.Layout
module Eval = Yoso_circuit.Circuit.Eval (Yoso_field.Field.Fp)
module Cost = Yoso_runtime.Cost
module Splitmix = Yoso_hash.Splitmix
module Faults = Yoso_runtime.Faults
module Board = Yoso_net.Board
module Meter = Yoso_net.Meter
module Sim = Yoso_net.Sim
module Ops = Committee_ops

type report = {
  outputs : Online.output list;
  setup_elements : int;
  offline_elements : int;
  online_elements : int;
  setup_bytes : int;
  offline_bytes : int;
  online_bytes : int;
  online_field_bytes : int;
  posts : int;
  committees : int;
  num_gates : int;
  num_mult : int;
  faults_detected : int;
  posts_rejected : int;
  blames : Faults.blame list;
  net : Sim.stats;
  transcript : Board.transcript;
  meter : Meter.t;
  transport : string;
  reconnects : int;
  replays : int;
  phase_ms : (string * float) list;
}

let offline_per_gate r = float_of_int r.offline_elements /. float_of_int (max 1 r.num_mult)
let online_per_gate r = float_of_int r.online_elements /. float_of_int (max 1 r.num_mult)

let offline_bytes_per_gate r =
  float_of_int r.offline_bytes /. float_of_int (max 1 r.num_mult)

let online_bytes_per_gate r = float_of_int r.online_bytes /. float_of_int (max 1 r.num_mult)

let online_field_bytes_per_gate r =
  float_of_int r.online_field_bytes /. float_of_int (max 1 r.num_mult)

type exec_config = {
  adversary : Params.adversary;
  plan : Faults.plan option;
  validate : bool;
  seed : int;
  domains : int;
  offline : Offline.opts;
}

type net_config = {
  board : Board.config;
  transport : string;
  link : Board.link option;
}

type recovery_config = {
  journal : string option;
  chaos : string option;
}

type config = {
  exec : exec_config;
  net : net_config;
  recovery : recovery_config;
}

let config ?(adversary = Params.no_adversary) ?plan ?(validate = true) ?(seed = 0xC0FFEE)
    ?(domains = 1) ?(offline = Offline.default_opts) ?(board = Board.default_config)
    ?(transport = "sim") ?link ?journal ?chaos () =
  {
    exec = { adversary; plan; validate; seed; domains; offline };
    net = { board; transport; link };
    recovery = { journal; chaos };
  }

let default_config = config ()

module Legacy = struct
  type flat_config = {
    adversary : Params.adversary;
    plan : Faults.plan option;
    validate : bool;
    seed : int;
    net : Board.config;
    domains : int;
    transport : string;
    link : Board.link option;
  }

  let default_flat =
    {
      adversary = Params.no_adversary;
      plan = None;
      validate = true;
      seed = 0xC0FFEE;
      net = Board.default_config;
      domains = 1;
      transport = "sim";
      link = None;
    }

  let of_flat { adversary; plan; validate; seed; net; domains; transport; link } =
    config ~adversary ?plan ~validate ~seed ~domains ~board:net ~transport ?link ()
end

(* ------------------------------------------------------------------ *)
(* Produce/consume session halves                                       *)
(* ------------------------------------------------------------------ *)

(* A session is one circuit's run split open: [open_session] builds
   the board, pool, committee ctx and setup (posting the setup frame);
   the produce half ([produce], or [Offline.start] + [prepare_batch]
   driven by the factory's background producer) runs preprocessing on
   it; [consume] runs the online phase against an {!Offline.source}
   and assembles the report.  [execute] is open + produce + consume in
   one call; the factory hands sessions across domains between the
   halves. *)
type session = {
  s_params : Params.t;
  s_config : config;
  s_circuit : Circuit.t;
  s_board : Board.t;
  s_pool : Yoso_parallel.Pool.t;
  s_ctx : Ops.ctx;
  s_layout : Layout.t;
  s_setup : Setup.t;
  s_setup_ms : float;
  mutable s_offline_ms : float;
}

let open_session ~params ?(config = default_config) ~circuit () =
  let { adversary; plan; validate; seed; domains; offline = _ } = config.exec in
  let { board = net; transport = _; link } = config.net in
  let board = Board.create ~config:net () in
  Board.set_link board link;
  let pool = Yoso_parallel.Pool.create ~domains in
  let ctx = Ops.create_ctx ?plan ~validate ~pool ~board ~params ~adversary ~seed () in
  let layout = Layout.make circuit ~k:params.Params.k in
  let layers = Array.length layout.Layout.mult_layers in
  let t0 = Unix.gettimeofday () in
  let setup =
    Setup.run ~board ~params ~layers ~clients:(Circuit.clients circuit)
      ~rng:(Splitmix.of_int (seed lxor 0x5E7))
  in
  let t1 = Unix.gettimeofday () in
  {
    s_params = params;
    s_config = config;
    s_circuit = circuit;
    s_board = board;
    s_pool = pool;
    s_ctx = ctx;
    s_layout = layout;
    s_setup = setup;
    s_setup_ms = (t1 -. t0) *. 1000.;
    s_offline_ms = 0.;
  }

let close_session s = Yoso_parallel.Pool.shutdown s.s_pool
let session_board s = s.s_board
let session_layout s = s.s_layout
let record_offline_ms s ms = s.s_offline_ms <- s.s_offline_ms +. ms

let produce s =
  let t0 = Unix.gettimeofday () in
  let prep = Offline.run ~opts:s.s_config.exec.offline s.s_ctx s.s_setup s.s_layout in
  s.s_offline_ms <- s.s_offline_ms +. ((Unix.gettimeofday () -. t0) *. 1000.);
  prep

let start_stream s = Offline.start ~opts:s.s_config.exec.offline s.s_ctx s.s_setup s.s_layout

let consume s source ~inputs =
  let board = s.s_board and ctx = s.s_ctx and circuit = s.s_circuit in
  let link = s.s_config.net.link and transport = s.s_config.net.transport in
  let t2 = Unix.gettimeofday () in
  let outputs = Online.run_from ctx s.s_setup source ~inputs in
  let t3 = Unix.gettimeofday () in
  let cost = Board.cost board in
  let meter = Board.meter board in
  {
    outputs;
    setup_elements = Cost.elements cost ~phase:"setup";
    offline_elements = Cost.elements cost ~phase:"offline";
    online_elements = Cost.elements cost ~phase:"online";
    setup_bytes = Meter.phase_total meter ~phase:"setup";
    offline_bytes = Meter.phase_total meter ~phase:"offline";
    online_bytes = Meter.phase_total meter ~phase:"online";
    online_field_bytes = Meter.kind_bytes meter ~phase:"online" Cost.Field_element;
    posts = Board.length board;
    committees = ctx.Ops.committee_counter;
    num_gates = Circuit.size circuit;
    num_mult = Circuit.num_mul circuit;
    faults_detected = Faults.faults_detected ctx.Ops.log;
    posts_rejected = Faults.posts_rejected ctx.Ops.log;
    blames = Faults.blames ctx.Ops.log;
    net = Board.sim_stats board;
    transcript = Board.transcript board;
    meter;
    transport;
    reconnects = (match link with Some l -> fst (l.Board.stats ()) | None -> 0);
    replays = (match link with Some l -> snd (l.Board.stats ()) | None -> 0);
    phase_ms =
      [
        ("setup", s.s_setup_ms);
        ("offline", s.s_offline_ms);
        ("online", (t3 -. t2) *. 1000.);
      ];
  }

let execute ~params ?(config = default_config) ~circuit ~inputs () =
  let s = open_session ~params ~config ~circuit () in
  Fun.protect
    ~finally:(fun () -> close_session s)
    (fun () ->
      let prep = produce s in
      consume s (Offline.source_of prep) ~inputs)

module Report = struct
  type options = {
    timings : bool;
    transport_stats : bool;
    extra : (string * string) list;
  }

  let default = { timings = false; transport_stats = false; extra = [] }
end

(* hand-rolled JSON: values are ints, floats and plain ASCII strings.
   [timings] is opt-in because wall-clock fields would break the
   byte-equality oracles (cross-domain and cross-process reports must
   be identical); [transport_stats] is opt-in for the same reason —
   under chaos, different slots survive different reconnect counts,
   and the agreement check must still compare equal. *)
let report_json ?(options = Report.default) r =
  let { Report.timings; transport_stats; extra } = options in
  let b = Buffer.create 1024 in
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char b ',' in
  let field name pp v =
    sep ();
    Buffer.add_string b (Printf.sprintf "%S:" name);
    pp v
  in
  let int name v = field name (fun v -> Buffer.add_string b (string_of_int v)) v in
  let flt name v = field name (fun v -> Buffer.add_string b (Printf.sprintf "%.4f" v)) v in
  let str name v = field name (fun v -> Buffer.add_string b (Printf.sprintf "%S" v)) v in
  Buffer.add_char b '{';
  int "num_gates" r.num_gates;
  int "num_mult" r.num_mult;
  int "posts" r.posts;
  int "committees" r.committees;
  int "setup_elements" r.setup_elements;
  int "offline_elements" r.offline_elements;
  int "online_elements" r.online_elements;
  flt "offline_per_gate" (offline_per_gate r);
  flt "online_per_gate" (online_per_gate r);
  int "setup_bytes" r.setup_bytes;
  int "offline_bytes" r.offline_bytes;
  int "online_bytes" r.online_bytes;
  int "online_field_bytes" r.online_field_bytes;
  flt "offline_bytes_per_gate" (offline_bytes_per_gate r);
  flt "online_bytes_per_gate" (online_bytes_per_gate r);
  flt "online_field_bytes_per_gate" (online_field_bytes_per_gate r);
  int "faults_detected" r.faults_detected;
  int "posts_rejected" r.posts_rejected;
  str "transport" r.transport;
  if transport_stats then begin
    int "reconnects" r.reconnects;
    int "replays" r.replays
  end;
  if timings then begin
    sep ();
    Buffer.add_string b "\"phase_ms\":{";
    first := true;
    List.iter (fun (phase, ms) -> flt phase ms) r.phase_ms;
    Buffer.add_char b '}';
    first := false
  end;
  sep ();
  Buffer.add_string b "\"net\":{";
  first := true;
  int "rounds" r.net.Sim.rounds;
  int "sent" r.net.Sim.sent;
  int "delivered" r.net.Sim.delivered;
  int "late" r.net.Sim.late;
  int "dropped" r.net.Sim.dropped;
  int "bytes_sent" r.net.Sim.bytes_sent;
  int "bytes_delivered" r.net.Sim.bytes_delivered;
  flt "elapsed_ms" r.net.Sim.elapsed_ms;
  int "max_in_flight" r.net.Sim.max_in_flight;
  Buffer.add_string b "},";
  first := true;
  Buffer.add_string b "\"transcript\":{";
  int "frames" r.transcript.Board.frames;
  int "frame_bytes" r.transcript.Board.frame_bytes;
  int "digest" r.transcript.Board.digest;
  Buffer.add_string b "},";
  first := true;
  Buffer.add_string b "\"outputs\":[";
  List.iteri
    (fun i out ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"client\":%d,\"wire\":%d,\"value\":%d}" out.Online.client
           out.Online.wire
           (F.to_int out.Online.value)))
    r.outputs;
  Buffer.add_string b "],";
  first := true;
  Buffer.add_string b "\"blames\":[";
  List.iteri
    (fun i bl ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '{';
      first := true;
      str "role" (Yoso_runtime.Role.to_string bl.Faults.role);
      str "kind" (Faults.kind_to_string bl.Faults.kind);
      str "phase" bl.Faults.phase;
      str "step" bl.Faults.step;
      Buffer.add_char b '}')
    r.blames;
  Buffer.add_string b "]";
  List.iter
    (fun (name, json) -> Buffer.add_string b (Printf.sprintf ",%S:%s" name json))
    extra;
  Buffer.add_char b '}';
  Buffer.contents b

let report_json_flags ?(timings = false) ?(transport_stats = false) ?(extra = []) r =
  report_json ~options:{ Report.timings; transport_stats; extra } r

let expected circuit ~inputs = Eval.run circuit ~inputs

let check report circuit ~inputs =
  let plain = expected circuit ~inputs in
  List.length plain = List.length report.outputs
  && List.for_all2
       (fun (c, v) out ->
         c = out.Online.client
         && F.equal v out.Online.value)
       plain report.outputs
