module F = Yoso_field.Field.Fp
module Circuit = Yoso_circuit.Circuit
module Layout = Yoso_circuit.Layout
module Eval = Yoso_circuit.Circuit.Eval (Yoso_field.Field.Fp)
module Bulletin = Yoso_runtime.Bulletin
module Cost = Yoso_runtime.Cost
module Splitmix = Yoso_hash.Splitmix
module Faults = Yoso_runtime.Faults
module Ops = Committee_ops

type report = {
  outputs : Online.output list;
  setup_elements : int;
  offline_elements : int;
  online_elements : int;
  posts : int;
  committees : int;
  num_gates : int;
  num_mult : int;
  faults_detected : int;
  posts_rejected : int;
  blames : Faults.blame list;
}

let offline_per_gate r = float_of_int r.offline_elements /. float_of_int (max 1 r.num_mult)
let online_per_gate r = float_of_int r.online_elements /. float_of_int (max 1 r.num_mult)

let execute ~params ?(adversary = Params.no_adversary) ?plan ?(validate = true)
    ?(seed = 0xC0FFEE) ~circuit ~inputs () =
  let board : string Bulletin.t = Bulletin.create () in
  let ctx = Ops.create_ctx ?plan ~validate ~board ~params ~adversary ~seed () in
  let layout = Layout.make circuit ~k:params.Params.k in
  let layers = Array.length layout.Layout.mult_layers in
  let setup =
    Setup.run ~board ~params ~layers ~clients:(Circuit.clients circuit)
      (Splitmix.of_int (seed lxor 0x5E7))
  in
  let prep = Offline.run ctx setup layout in
  let outputs = Online.run ctx setup prep ~inputs in
  let cost = Bulletin.cost board in
  {
    outputs;
    setup_elements = Cost.elements cost ~phase:"setup";
    offline_elements = Cost.elements cost ~phase:"offline";
    online_elements = Cost.elements cost ~phase:"online";
    posts = Bulletin.length board;
    committees = ctx.Ops.committee_counter;
    num_gates = Circuit.size circuit;
    num_mult = Circuit.num_mul circuit;
    faults_detected = Faults.faults_detected ctx.Ops.log;
    posts_rejected = Faults.posts_rejected ctx.Ops.log;
    blames = Faults.blames ctx.Ops.log;
  }

let expected circuit ~inputs = Eval.run circuit ~inputs

let check report circuit ~inputs =
  let plain = expected circuit ~inputs in
  List.length plain = List.length report.outputs
  && List.for_all2
       (fun (c, v) out ->
         c = out.Online.client
         && F.equal v out.Online.value)
       plain report.outputs
