(** [Pi_YOSO-Setup] (Protocol, Section 5.1).

    The trusted setup: generates the threshold key pair (giving [tpk]
    to everyone and [tsk] shares to the first tsk-holder committee),
    and the *keys for future* — one PKE key pair per online-phase
    role and per client, with the public part published and the
    secret part encrypted under [tpk] (Figure 1's key-usage plan).
    The NIZK CRS is implicit in the ideal proof system. *)

module F = Yoso_field.Field.Fp
module Pke = Ideal_pke
module Te = Ideal_te

type kff_entry = { kff_pk : Pke.pk; kff_sk_ct : Pke.sk Te.ct }

type t = {
  params : Params.t;
  te : Te.tpk;
  initial_tsk : Te.share array;
  kff_clients : (int * kff_entry) list;
  kff_roles : kff_entry array array;
      (** [kff_roles.(l - 1).(i)]: KFF of role [i] of the online
          committee evaluating multiplicative layer [l]. *)
  client_keys : (int * (Pke.pk * Pke.sk)) list;
      (** clients' long-term keys (input/output roles are known
          machines in YOSO). *)
}

val run :
  board:Yoso_net.Board.t ->
  params:Params.t ->
  layers:int ->
  clients:int list ->
  rng:Yoso_hash.Splitmix.t ->
  t
(** Posts the published material (public keys and KFF ciphertexts) as
    the dealer role, charging phase ["setup"]. *)
