(** End-to-end driver: setup -> offline -> online on one circuit.

    Wires the phases together over a fresh bulletin board, executes
    the full YOSO MPC protocol, and returns the outputs together with
    the communication-cost breakdown the benchmarks report. *)

module F = Yoso_field.Field.Fp
module Circuit = Yoso_circuit.Circuit

type report = {
  outputs : Online.output list;
  setup_elements : int;
  offline_elements : int;
  online_elements : int;
  setup_bytes : int;     (** measured wire bytes, frames included *)
  offline_bytes : int;
  online_bytes : int;
  online_field_bytes : int;
      (** online field-element *data* bytes — the paper's O(1)-per-gate
          quantity, measured on the wire *)
  posts : int;           (** total bulletin-board posts (speak-once events) *)
  committees : int;      (** committees consumed *)
  num_gates : int;
  num_mult : int;
  faults_detected : int;
      (** every deviation honest verifiers caught: rejected tampered
          posts plus silent/delayed roles *)
  posts_rejected : int;  (** posts excluded after verification failed *)
  blames : Yoso_runtime.Faults.blame list;
      (** who misbehaved, how, and at which step it was detected *)
  net : Yoso_net.Sim.stats;        (** simulated-network counters *)
  transcript : Yoso_net.Board.transcript;
      (** rolling digest of every frame on the wire; equal seeds give
          equal transcripts *)
  meter : Yoso_net.Meter.t;        (** full byte breakdown *)
  transport : string;  (** which transport carried the frames: ["sim"], ["unix"], ["tcp"] *)
  reconnects : int;
      (** connection recoveries this member's transport link survived
          (0 without a link, or for a link that cannot drop) *)
  replays : int;  (** deliveries caught up through those recoveries *)
  phase_ms : (string * float) list;
      (** wall-clock per phase ([setup]/[offline]/[online]); excluded
          from {!report_json} unless [timings] is set, since wall time
          is not deterministic *)
}

val offline_per_gate : report -> float
val online_per_gate : report -> float
val offline_bytes_per_gate : report -> float
val online_bytes_per_gate : report -> float
val online_field_bytes_per_gate : report -> float

(** {1 Configuration}

    Execution knobs, grouped by concern into nested sub-records.
    Build one with the smart constructor {!config} — positional
    record updates on the flat layout are gone; the deprecated
    {!Legacy} shim bridges old call sites for one release. *)

type exec_config = {
  adversary : Params.adversary;
  plan : Yoso_runtime.Faults.plan option;
      (** [None] means [Faults.random ~seed] *)
  validate : bool;
  seed : int;
  domains : int;
      (** worker domains for committee fan-out (see
          {!Yoso_parallel.Pool}); outputs, blames and the transcript
          digest are identical at every value *)
  offline : Offline.opts;
      (** amortization switches for the preprocessing half (triple
          audits, packed re-encryptions); default
          {!Offline.default_opts}.  Non-default opts change the
          transcript, so digest-equality comparisons must use the same
          opts on both sides. *)
}
(** What runs: adversary structure, fault plan, seeds and the
    domain count driving committee fan-out. *)

type net_config = {
  board : Yoso_net.Board.config;
  transport : string;
      (** label recorded in the report; the sim path uses ["sim"], the
          socket runner sets ["unix"]/["tcp"] *)
  link : Yoso_net.Board.link option;
      (** [Some link] makes every committed frame cross a real process
          boundary (see {!Yoso_net.Board.link}); [None] keeps the
          exchange in-process.  Verdicts and the transcript are
          identical either way — the link only adds the physical
          carrier and its failure modes *)
}
(** How frames travel: the simulated-network model and, optionally,
    the physical transport link behind the board façade. *)

type recovery_config = {
  journal : string option;
      (** write-ahead journal path for the transport daemon; [None]
          disables crash recovery *)
  chaos : string option;
      (** socket-fault spec in {!Yoso_transport.Chaos.parse} syntax *)
}
(** Crash-recovery plumbing.  [execute] itself ignores this record —
    it configures the transport daemon, which lives a process above —
    but carrying it in the one config keeps CLI/bench call sites to a
    single value. *)

type config = {
  exec : exec_config;
  net : net_config;
  recovery : recovery_config;
}

val config :
  ?adversary:Params.adversary ->
  ?plan:Yoso_runtime.Faults.plan ->
  ?validate:bool ->
  ?seed:int ->
  ?domains:int ->
  ?offline:Offline.opts ->
  ?board:Yoso_net.Board.config ->
  ?transport:string ->
  ?link:Yoso_net.Board.link ->
  ?journal:string ->
  ?chaos:string ->
  unit ->
  config
(** Smart constructor; every omitted knob takes the
    {!default_config} value. *)

val default_config : config
(** No adversary, random fault plan from the seed, validation on,
    seed [0xC0FFEE], ideal network, 1 domain, sim transport, no
    link, no journal, no chaos. *)

(** Compatibility shim for the pre-nesting flat configuration record.
    New code builds a {!config} with the smart constructor. *)
module Legacy : sig
  type flat_config = {
    adversary : Params.adversary;
    plan : Yoso_runtime.Faults.plan option;
    validate : bool;
    seed : int;
    net : Yoso_net.Board.config;
    domains : int;
    transport : string;
    link : Yoso_net.Board.link option;
  }

  val default_flat : flat_config
  [@@deprecated "use Protocol.config (the smart constructor) instead"]

  val of_flat : flat_config -> config
  [@@deprecated "use Protocol.config (the smart constructor) instead"]
end

(** {1 Produce/consume session halves}

    One circuit's run split open, so preprocessing and consumption can
    live on different domains: the offline factory's background
    producer opens a session and drives {!start_stream} /
    {!Offline.prepare_batch}, pushing batches into a depot; the
    consumer later runs {!consume} on the same session against a
    depot-backed {!Offline.source}.  {!execute} is
    open + produce + consume in one call — both paths commit the same
    frames in the same order, so their transcripts are
    byte-identical at equal seeds. *)

type session

val open_session :
  params:Params.t -> ?config:config -> circuit:Circuit.t -> unit -> session
(** Builds the board, domain pool, committee ctx and layout, and runs
    setup (posting its frame).  The caller must {!close_session} (or
    finish with {!consume} and then close) to release the pool. *)

val produce : session -> Offline.t
(** The one-shot produce half: full preprocessing under the session
    config's [offline] opts. *)

val start_stream : session -> Offline.stream_state
(** The streaming produce half: an {!Offline} stepper over this
    session (same opts), for batch-at-a-time refills. *)

val consume : session -> Offline.source -> inputs:(int -> F.t array) -> report
(** The consume half: runs the online phase drawing from [source] and
    assembles the report from the session's board. *)

val close_session : session -> unit
(** Shuts the session's domain pool down.  Idempotent-unsafe: call
    exactly once, after the last session operation. *)

val session_board : session -> Yoso_net.Board.t
(** The session's bulletin board — the factory reads its meter between
    {!Offline.prepare_batch} calls to attribute refill bytes, and its
    cost/transcript when aggregating a stream report. *)

val session_layout : session -> Yoso_circuit.Layout.t
(** The packing layout [open_session] computed for the circuit. *)

val record_offline_ms : session -> float -> unit
(** Adds producer-side wall time to the session's offline phase
    timing, for producers that drive {!start_stream} themselves rather
    than calling {!produce}. *)

val execute :
  params:Params.t ->
  ?config:config ->
  circuit:Circuit.t ->
  inputs:(int -> F.t array) ->
  unit ->
  report
(** Runs setup -> offline -> online under [config] (default
    {!default_config}): adversary structure and fault plan (default
    [Faults.random ~seed]).  [config.validate] (default [true])
    rejects beyond-bound adversaries up front with
    [Invalid_argument]; with [validate = false] the protocol executes
    anyway and aborts at run time with the structured
    {!Yoso_runtime.Faults.Protocol_failure} once a committee step
    retains too few verified contributions — never a wrong output. *)

(** Opt-in switches for {!report_json}, consolidated into one
    record. *)
module Report : sig
  type options = {
    timings : bool;  (** emit the per-phase wall-clock object ["phase_ms"] *)
    transport_stats : bool;  (** emit ["reconnects"]/["replays"] *)
    extra : (string * string) list;
        (** caller-supplied [(name, raw_json)] fields appended to the
            object — used by the CLI to attach compiler pass
            statistics; callers on the byte-equality paths must pass
            deterministic values *)
  }

  val default : options
  (** Everything off: equal-seed reports stay byte-identical — under
      chaos, different slots survive different reconnect counts, and
      the cross-process agreement oracle compares reports byte for
      byte. *)
end

val report_json : ?options:Report.options -> report -> string
(** The report as a single JSON object (counts, per-gate metrics, byte
    totals, network stats, transcript digest, outputs, blames,
    transport kind).  [options] (default {!Report.default}) switches
    on the non-deterministic extras. *)

val report_json_flags :
  ?timings:bool -> ?transport_stats:bool -> ?extra:(string * string) list -> report -> string
[@@deprecated "use report_json ?options with a Report.options record"]

val expected : Circuit.t -> inputs:(int -> F.t array) -> (int * F.t) list
(** Plain (in-the-clear) evaluation, for cross-checking. *)

val check : report -> Circuit.t -> inputs:(int -> F.t array) -> bool
(** Whether the protocol outputs match the plain evaluation. *)
