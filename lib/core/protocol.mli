(** End-to-end driver: setup -> offline -> online on one circuit.

    Wires the phases together over a fresh bulletin board, executes
    the full YOSO MPC protocol, and returns the outputs together with
    the communication-cost breakdown the benchmarks report. *)

module F = Yoso_field.Field.Fp
module Circuit = Yoso_circuit.Circuit

type report = {
  outputs : Online.output list;
  setup_elements : int;
  offline_elements : int;
  online_elements : int;
  setup_bytes : int;     (** measured wire bytes, frames included *)
  offline_bytes : int;
  online_bytes : int;
  online_field_bytes : int;
      (** online field-element *data* bytes — the paper's O(1)-per-gate
          quantity, measured on the wire *)
  posts : int;           (** total bulletin-board posts (speak-once events) *)
  committees : int;      (** committees consumed *)
  num_gates : int;
  num_mult : int;
  faults_detected : int;
      (** every deviation honest verifiers caught: rejected tampered
          posts plus silent/delayed roles *)
  posts_rejected : int;  (** posts excluded after verification failed *)
  blames : Yoso_runtime.Faults.blame list;
      (** who misbehaved, how, and at which step it was detected *)
  net : Yoso_net.Sim.stats;        (** simulated-network counters *)
  transcript : Yoso_net.Board.transcript;
      (** rolling digest of every frame on the wire; equal seeds give
          equal transcripts *)
  meter : Yoso_net.Meter.t;        (** full byte breakdown *)
  transport : string;  (** which transport carried the frames: ["sim"], ["unix"], ["tcp"] *)
  reconnects : int;
      (** connection recoveries this member's transport link survived
          (0 without a link, or for a link that cannot drop) *)
  replays : int;  (** deliveries caught up through those recoveries *)
  phase_ms : (string * float) list;
      (** wall-clock per phase ([setup]/[offline]/[online]); excluded
          from {!report_json} unless [timings] is set, since wall time
          is not deterministic *)
}

val offline_per_gate : report -> float
val online_per_gate : report -> float
val offline_bytes_per_gate : report -> float
val online_bytes_per_gate : report -> float
val online_field_bytes_per_gate : report -> float

type config = {
  adversary : Params.adversary;
  plan : Yoso_runtime.Faults.plan option;
      (** [None] means [Faults.random ~seed] *)
  validate : bool;
  seed : int;
  net : Yoso_net.Board.config;
  domains : int;
      (** worker domains for committee fan-out (see
          {!Yoso_parallel.Pool}); outputs, blames and the transcript
          digest are identical at every value *)
  transport : string;
      (** label recorded in the report; the sim path uses ["sim"], the
          socket runner sets ["unix"]/["tcp"] *)
  link : Yoso_net.Board.link option;
      (** [Some link] makes every committed frame cross a real process
          boundary (see {!Yoso_net.Board.link}); [None] keeps the
          exchange in-process.  Verdicts and the transcript are
          identical either way — the link only adds the physical
          carrier and its failure modes *)
}
(** Execution knobs, grouped.  Build one with record update on
    {!default_config}:
    [{ Protocol.default_config with seed = 42; net }]. *)

val default_config : config
(** No adversary, random fault plan from the seed, validation on,
    seed [0xC0FFEE], ideal network, 1 domain, sim transport, no
    link. *)

val execute :
  params:Params.t ->
  ?config:config ->
  circuit:Circuit.t ->
  inputs:(int -> F.t array) ->
  unit ->
  report
(** Runs setup -> offline -> online under [config] (default
    {!default_config}): adversary structure and fault plan (default
    [Faults.random ~seed]).  [config.validate] (default [true])
    rejects beyond-bound adversaries up front with
    [Invalid_argument]; with [validate = false] the protocol executes
    anyway and aborts at run time with the structured
    {!Yoso_runtime.Faults.Protocol_failure} once a committee step
    retains too few verified contributions — never a wrong output. *)

val report_json :
  ?timings:bool -> ?transport_stats:bool -> ?extra:(string * string) list -> report -> string
(** The report as a single JSON object (counts, per-gate metrics, byte
    totals, network stats, transcript digest, outputs, blames,
    transport kind).  [timings] (default [false]) additionally emits
    the per-phase wall-clock object ["phase_ms"]; [transport_stats]
    (default [false]) emits ["reconnects"]/["replays"].  Both are off
    by default so equal-seed reports stay byte-identical — under
    chaos, different slots survive different reconnect counts, and the
    cross-process agreement oracle compares reports byte for byte.
    [extra] appends caller-supplied [(name, raw_json)] fields — used
    by the CLI to attach compiler pass statistics; callers on the
    byte-equality paths must pass deterministic values. *)

val expected : Circuit.t -> inputs:(int -> F.t array) -> (int * F.t) list
(** Plain (in-the-clear) evaluation, for cross-checking. *)

val check : report -> Circuit.t -> inputs:(int -> F.t array) -> bool
(** Whether the protocol outputs match the plain evaluation. *)
