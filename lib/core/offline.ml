module F = Yoso_field.Field.Fp
module Te = Ideal_te
module Lagrange = Yoso_field.Lagrange.Make (F)
module Layout = Yoso_circuit.Layout
module Circuit = Yoso_circuit.Circuit
module Cost = Yoso_runtime.Cost
module Role = Yoso_runtime.Role
module Ops = Committee_ops
module Board = Yoso_net.Board
module Pool = Yoso_parallel.Pool
module Feldman = Yoso_shamir.Feldman

type input_prep = {
  client : int;
  wires : Circuit.wire array;
  lambda_reencs : F.t Committee_ops.reenc array;
}

type mult_prep = {
  batch : Layout.mult_batch;
  alpha_shares : F.t Committee_ops.reenc array;
  beta_shares : F.t Committee_ops.reenc array;
  gamma_shares : F.t Committee_ops.reenc array;
}

type t = {
  layout : Layout.t;
  wire_lambda : F.t Te.ct array;
  input_preps : input_prep list;
  mult_preps : mult_prep list array;
  final_holder : Committee_ops.holder;
}

type opts = {
  audit_triples : bool;
  audit_verify : [ `Each | `Batched ];
  audit_tamper : int list;
  packed_reenc : bool;
}

let default_opts =
  { audit_triples = false; audit_verify = `Batched; audit_tamper = []; packed_reenc = false }

type item =
  | Lambdas of F.t Te.ct array
  | Inputs of input_prep list
  | Layer of int * mult_prep list
  | Holder of Committee_ops.holder

let item_kind = function
  | Lambdas _ -> "lambdas"
  | Inputs _ -> "inputs"
  | Layer (li, _) -> Printf.sprintf "layer%d" li
  | Holder _ -> "holder"

let item_units layout = function
  | Lambdas a -> max 1 (Array.length a)
  | Inputs preps ->
    max 1 (List.fold_left (fun acc ip -> acc + Array.length ip.wires) 0 preps)
  | Layer (_, preps) ->
    max 1 (layout.Layout.k * List.length preps)
  | Holder _ -> 1

module Faults = Yoso_runtime.Faults

let phase = "offline"

(* corrupted payload for additive-contribution steps: ciphertexts of
   junk the role never proved knowledge of (Garbage_ciphertext posts
   an undecodable blob instead) *)
let junk_cts te rng kind build =
  match kind with Faults.Garbage_ciphertext -> None | _ -> Some (build te rng)

(* sum verified members' ciphertext contributions, column by column *)
let sum_contributions te verified column =
  match verified with
  | [] -> failwith "Offline: no verified contributions"
  | (_, first) :: rest ->
    List.fold_left (fun acc (_, cts) -> Te.add te acc (column cts)) (column first) rest

let chunks size arr =
  let n = Array.length arr in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let len = min size (n - i) in
      go (i + len) (Array.sub arr i len :: acc)
    end
  in
  go 0 []

(* gate-index ranges [(lo, len); ...] covering [0, m) in chunks *)
let ranges size m =
  let rec go lo acc =
    if lo >= m then List.rev acc else go (lo + size) ((lo, min size (m - lo)) :: acc)
  in
  go 0 []

(* The offline protocol as an incremental stream: [start] builds a
   stepper whose stages emit typed preprocessing items in a fixed
   order — wire lambdas, input preps, one item per mult layer, then
   the final tsk holder — with exactly the board posts (same order,
   same costs) the one-shot [run] would make.  Draining every batch
   and [assemble]-ing is byte-identical to the pre-split path at equal
   seeds; the factory instead pushes each batch into its depot as it
   becomes ready. *)
type stream_state = {
  st_layout : Layout.t;
  mutable st_stages : (unit -> item list) list;
  mutable st_ready : item list;
}

let audit_committee = "Off-Audit"

(* batch product-proof audit of the freshly summed triples: one
   aggregated post per gate chunk carrying the triple commitments and
   Chaum-Pedersen proofs the producing committees would jointly
   publish (statements are computed via the simulator shortcut,
   {!Ideal_te.reveal}).  Verification strategy is a local choice —
   [`Batched] RLC-aggregates the whole chunk into three multiexps,
   [`Each] runs the definitional per-proof check — and does not touch
   the transcript, so streamed and one-shot runs stay digest-equal
   regardless of how the verifier is configured. *)
let audit_triples (ctx : Ops.ctx) te opts ~gpc ~c_x ~c_y ~c_z =
  let m = Array.length c_x in
  List.iter
    (fun (lo, len) ->
      Board.next_round ctx.Ops.board;
      let prng = Pool.derive_rng ~seed:(Random.State.bits ctx.Ops.frng) lo in
      let step = "beaver: batch product-proof audit" in
      let batch =
        Array.init len (fun i ->
            let g = lo + i in
            let x = Te.reveal te c_x.(g)
            and y = Te.reveal te c_y.(g)
            and z = Te.reveal te c_z.(g) in
            let st, pf = Feldman.Product.prove ~rng:prng ~x ~y ~z in
            if List.mem g opts.audit_tamper then (Feldman.Product.tamper_z st F.one, pf)
            else (st, pf))
      in
      ignore
        (Board.post ctx.Ops.board
           ~author:(Role.id ~committee:audit_committee ~index:(lo / gpc))
           ~phase ~step
           ~cost:[ (Cost.Proof, len); (Cost.Key, 3 * len) ]
           ());
      let ok =
        match opts.audit_verify with
        | `Each -> Array.for_all (fun (st, pf) -> Feldman.Product.verify st pf) batch
        | `Batched -> Feldman.Product.verify_batch batch
      in
      if not ok then begin
        let bad = Feldman.Product.attribute batch in
        List.iter
          (fun i ->
            Faults.record ctx.Ops.log
              {
                Faults.role = Role.id ~committee:audit_committee ~index:(lo / gpc);
                kind = Faults.Tamper_share;
                phase;
                step = Printf.sprintf "%s (gate %d)" step (lo + i);
              })
          bad;
        raise
          (Faults.Protocol_failure
             {
               Faults.f_phase = phase;
               f_step = step;
               f_committee = audit_committee;
               surviving = len - List.length bad;
               required = len;
             })
      end)
    (ranges gpc m)

let start ?(opts = default_opts) (ctx : Ops.ctx) (setup : Setup.t) layout =
  let te = setup.Setup.te in
  let p = ctx.Ops.params in
  let n = p.Params.n and t = p.Params.t and k = p.Params.k in
  let gpc = p.Params.gates_per_committee in
  let circuit = layout.Layout.circuit in
  let zero_ct = Te.encrypt te F.zero in
  let pool = ctx.Ops.pool in

  (* ---- enumerate multiplication gates (traversal order) ---------- *)
  let mult_gates =
    Array.of_seq
      (Seq.filter_map
         (function
           | Circuit.Mul { a; b; out } -> Some (a, b, out)
           | Circuit.Input _ | Circuit.Add _ | Circuit.Output _ -> None)
         (Array.to_seq circuit.Circuit.gates))
  in
  let m = Array.length mult_gates in
  let gate_index = Hashtbl.create (max 16 m) in
  Array.iteri (fun g (_, _, out) -> Hashtbl.add gate_index out g) mult_gates;

  (* cross-stage state, filled as stages run *)
  let c_x = ref [||] and c_y = ref [||] and c_z = ref [||] in
  let wire_lambda = Array.make circuit.Circuit.wire_count zero_ct in
  let gamma_ct = ref [||] in
  let holder = ref None in
  let the_holder () =
    match !holder with Some h -> h | None -> failwith "Offline: tsk holder not yet created"
  in
  let packed_of_batch = ref (fun _ -> failwith "Offline: packing stage not yet run") in

  (* ---- stage 1: Beaver triples + random wire values -------------- *)
  let lambda_stage () =
    (* Step 1: Beaver triples (Protocol 3) *)
    let b1 = Ops.fresh_committee ctx "Off-B1" in
    let xs =
      Ops.contributions ctx b1 ~phase ~step:"beaver: first-committee shares"
        ~cost:[ (Cost.Ciphertext, m) ]
        ~tamper:(fun rng kind _ ->
          junk_cts te rng kind (fun te rng ->
              Array.init m (fun _ -> Te.encrypt te (F.random rng))))
        (fun rng _ -> Array.init m (fun _ -> Te.encrypt te (F.random rng)))
    in
    c_x := Pool.map pool m (fun g -> sum_contributions te xs (fun cts -> cts.(g)));
    let cx = !c_x in
    let b2 = Ops.fresh_committee ctx "Off-B2" in
    let yzs =
      Ops.contributions ctx b2 ~phase ~step:"beaver: second-committee shares and products"
        ~cost:[ (Cost.Ciphertext, 2 * m) ]
        ~tamper:(fun rng kind _ ->
          (* inconsistent product: z contribution uses a different y than
             the posted encryption — accepting it would break the triple *)
          junk_cts te rng kind (fun te rng ->
              Array.init m (fun g ->
                  (Te.encrypt te (F.random rng), Te.scale te (F.random rng) cx.(g)))))
        (fun rng _ ->
          Array.init m (fun g ->
              let y = F.random rng in
              (Te.encrypt te y, Te.scale te y cx.(g))))
    in
    c_y := Pool.map pool m (fun g -> sum_contributions te yzs (fun cts -> fst cts.(g)));
    c_z := Pool.map pool m (fun g -> sum_contributions te yzs (fun cts -> snd cts.(g)));
    if opts.audit_triples && m > 0 then
      audit_triples ctx te opts ~gpc ~c_x:!c_x ~c_y:!c_y ~c_z:!c_z;

    (* Step 2: random wire values *)
    let random_wires =
      Array.of_seq
        (Seq.filter_map
           (function
             | Circuit.Input { wire; _ } -> Some wire
             | Circuit.Mul { out; _ } -> Some out
             | Circuit.Add _ | Circuit.Output _ -> None)
           (Array.to_seq circuit.Circuit.gates))
    in
    let r_committee = Ops.fresh_committee ctx "Off-R" in
    let lambda_contribs =
      Ops.contributions ctx r_committee ~phase ~step:"random wire values"
        ~cost:[ (Cost.Ciphertext, Array.length random_wires) ]
        ~tamper:(fun rng kind _ ->
          junk_cts te rng kind (fun te rng ->
              Array.map (fun _ -> Te.encrypt te (F.random rng)) random_wires))
        (fun rng _ -> Array.map (fun _ -> Te.encrypt te (F.random rng)) random_wires)
    in
    Array.iteri
      (fun idx w ->
        wire_lambda.(w) <- sum_contributions te lambda_contribs (fun cts -> cts.(idx)))
      random_wires;
    (* addition wires homomorphically, in topological order *)
    Array.iter
      (function
        | Circuit.Add { a; b; out } ->
          wire_lambda.(out) <- Te.add te wire_lambda.(a) wire_lambda.(b)
        | Circuit.Input _ | Circuit.Mul _ | Circuit.Output _ -> ())
      circuit.Circuit.gates;
    [ Lambdas wire_lambda ]
  in

  (* ---- stage 2: dependent values, packing, input re-encryption ---- *)
  let input_stage () =
    (* Step 3: masked openings eps = lambda_a + x, delta = lambda_b + y *)
    let cx = !c_x and cy = !c_y and cz = !c_z in
    let masked =
      Pool.map pool (2 * m) (fun i ->
          let g = i / 2 in
          let a, b, _ = mult_gates.(g) in
          if i mod 2 = 0 then Te.add te wire_lambda.(a) cx.(g)
          else Te.add te wire_lambda.(b) cy.(g))
    in
    let h = ref (Ops.initial_holder ctx te ~name:"Off-D" setup.Setup.initial_tsk) in
    let opened = Array.make (2 * m) F.zero in
    let pos = ref 0 in
    List.iter
      (fun chunk ->
        let values, next =
          Ops.decrypt_batch ctx te !h ~phase ~step:"open masked beaver values" chunk
        in
        Array.blit values 0 opened !pos (Array.length values);
        pos := !pos + Array.length values;
        h := next)
      (chunks (2 * gpc) masked);
    (* Gamma_g = lambda_a * lambda_b - lambda_out, homomorphically *)
    gamma_ct :=
      Pool.map pool m (fun g ->
          let _, b, out = mult_gates.(g) in
          let eps = opened.(2 * g) and delta = opened.((2 * g) + 1) in
          Te.eval te
            [| wire_lambda.(b); cx.(g); cz.(g); wire_lambda.(out) |]
            [| eps; F.neg delta; F.one; F.neg F.one |]);
    let gamma = !gamma_ct in

    (* Step 4: pack values for multiplication gates.
       anchor points: secret slots 0, -1, ..., -(k-1), then 1..t *)
    let sources =
      Array.append
        (Array.init k (fun j -> F.of_int (-j)))
        (Array.init t (fun j -> F.of_int (j + 1)))
    in
    let targets = Array.init n (fun i -> F.of_int (i + 1)) in
    let pack_matrix = Lagrange.basis_matrix ~sources ~targets in
    let all_batches =
      Array.of_list
        (List.concat (Array.to_list (Array.map (fun l -> l) layout.Layout.mult_layers)))
    in
    (* helper randoms: 3 packed vectors per batch, t helpers each *)
    let helpers = Hashtbl.create 64 in
    let batches_per_committee = max 1 (gpc / max 1 k) in
    List.iter
      (fun batch_chunk ->
        let committee = Ops.fresh_committee ctx "Off-P" in
        let contribs =
          Ops.contributions ctx committee ~phase ~step:"packing helper randoms"
            ~cost:[ (Cost.Ciphertext, 3 * t * Array.length batch_chunk) ]
            ~tamper:(fun rng kind _ ->
              junk_cts te rng kind (fun te rng ->
                  Array.map
                    (fun _ ->
                      Array.init 3 (fun _ ->
                          Array.init t (fun _ -> Te.encrypt te (F.random rng))))
                    batch_chunk))
            (fun rng _ ->
              Array.map
                (fun _ ->
                  Array.init 3 (fun _ ->
                      Array.init t (fun _ -> Te.encrypt te (F.random rng))))
                batch_chunk)
        in
        Array.iteri
          (fun bi batch ->
            let help =
              Array.init 3 (fun v ->
                  Array.init t (fun j ->
                      sum_contributions te contribs (fun cts -> cts.(bi).(v).(j))))
            in
            Hashtbl.add helpers batch help)
          batch_chunk)
      (chunks batches_per_committee all_batches);
    (* homomorphic Lagrange evaluation: n encrypted packed shares per vector *)
    let pack cts help =
      let anchors = Array.append cts help in
      Pool.map pool n (fun i -> Te.eval te anchors pack_matrix.(i))
    in
    let padded f batch =
      let raw = Array.map f batch.Layout.mult_gates in
      if Array.length raw > k then invalid_arg "Offline: batch longer than k";
      Array.append raw (Array.make (k - Array.length raw) zero_ct)
    in
    (packed_of_batch :=
       fun batch ->
         let help = Hashtbl.find helpers batch in
         let alpha = pack (padded (fun (a, _, _) -> wire_lambda.(a)) batch) help.(0) in
         let beta = pack (padded (fun (_, b, _) -> wire_lambda.(b)) batch) help.(1) in
         let gamma =
           pack (padded (fun (_, _, out) -> gamma.(Hashtbl.find gate_index out)) batch)
             help.(2)
         in
         (alpha, beta, gamma));

    (* Step 5: re-encrypt input-wire lambdas to client KFFs *)
    let input_batches = Array.of_list layout.Layout.input_batches in
    let input_values =
      Array.concat
        (List.map
           (fun (client, wires) ->
             let entry = List.assoc client setup.Setup.kff_clients in
             Array.map (fun w -> (entry.Setup.kff_pk, wire_lambda.(w))) wires)
           (Array.to_list input_batches))
    in
    let input_reencs = Array.make (Array.length input_values) None in
    let pos = ref 0 in
    let reenc_chunks =
      (* ciphertext-level batching bundles every value sharing a client
         KFF into one ciphertext per speaking holder, so the whole
         input step fits one committee round *)
      if opts.packed_reenc then
        if Array.length input_values = 0 then [] else [ input_values ]
      else chunks gpc input_values
    in
    List.iter
      (fun chunk ->
        let packages, next =
          (if opts.packed_reenc then Ops.reencrypt_packed else Ops.reencrypt_batch)
            ctx te !h ~phase ~step:"re-encrypt input lambdas to KFF" chunk
        in
        Array.iteri (fun i pkg -> input_reencs.(!pos + i) <- Some pkg) packages;
        pos := !pos + Array.length packages;
        h := next)
      reenc_chunks;
    holder := Some !h;
    let input_preps =
      let cursor = ref 0 in
      List.map
        (fun (client, wires) ->
          let lambda_reencs =
            Array.map
              (fun _ ->
                let r = Option.get input_reencs.(!cursor) in
                incr cursor;
                r)
              wires
          in
          { client; wires; lambda_reencs })
        (Array.to_list input_batches)
    in
    [ Inputs input_preps ]
  in

  (* ---- stage 3 (per mult layer): re-encrypt packed shares --------- *)
  let layer_stage li () =
    let batches = layout.Layout.mult_layers.(li) in
    let kffs = setup.Setup.kff_roles.(li) in
    let h = ref (the_holder ()) in
    let preps =
      if opts.packed_reenc then begin
        (* one bundled committee round per layer: alpha/beta/gamma of
           every batch re-encrypted together, one ciphertext per role
           KFF on the wire *)
        let packed = List.map !packed_of_batch batches in
        let values vec = Array.mapi (fun i ct -> (kffs.(i).Setup.kff_pk, ct)) vec in
        let all =
          Array.concat
            (List.concat_map
               (fun (alpha, beta, gamma) -> [ values alpha; values beta; values gamma ])
               packed)
        in
        let preps =
          if Array.length all = 0 then []
          else begin
            let packages, next =
              Ops.reencrypt_packed ctx te !h ~phase
                ~step:"re-encrypt packed shares to KFF" all
            in
            h := next;
            List.mapi
              (fun bi batch ->
                let slice v = Array.sub packages ((3 * bi * n) + (v * n)) n in
                {
                  batch;
                  alpha_shares = slice 0;
                  beta_shares = slice 1;
                  gamma_shares = slice 2;
                })
              batches
          end
        in
        preps
      end
      else
        List.map
          (fun batch ->
            let alpha, beta, gamma = !packed_of_batch batch in
            let values vec = Array.mapi (fun i ct -> (kffs.(i).Setup.kff_pk, ct)) vec in
            let reenc vec =
              let out = ref [||] in
              (* shares of one vector fit in one committee round when
                 n <= gates_per_committee; chunk otherwise *)
              List.iter
                (fun chunk ->
                  let packages, next =
                    Ops.reencrypt_batch ctx te !h ~phase
                      ~step:"re-encrypt packed shares to KFF" chunk
                  in
                  out := Array.append !out packages;
                  h := next)
                (chunks (max n gpc) (values vec));
              !out
            in
            {
              batch;
              alpha_shares = reenc alpha;
              beta_shares = reenc beta;
              gamma_shares = reenc gamma;
            })
          batches
    in
    holder := Some !h;
    [ Layer (li, preps) ]
  in

  let holder_stage () = [ Holder (the_holder ()) ] in

  {
    st_layout = layout;
    st_stages =
      (lambda_stage :: input_stage
       :: List.init (Array.length layout.Layout.mult_layers) layer_stage)
      @ [ holder_stage ];
    st_ready = [];
  }

let rec prepare_batch st =
  match st.st_ready with
  | item :: rest ->
    st.st_ready <- rest;
    Some item
  | [] -> (
    match st.st_stages with
    | [] -> None
    | stage :: rest ->
      st.st_stages <- rest;
      st.st_ready <- stage ();
      prepare_batch st)

let assemble layout items =
  let miss what = failwith (Printf.sprintf "Offline.assemble: missing %s" what) in
  let wire_lambda = ref None in
  let inputs = ref None in
  let holder = ref None in
  let layers = Array.make (Array.length layout.Layout.mult_layers) None in
  List.iter
    (function
      | Lambdas a -> wire_lambda := Some a
      | Inputs l -> inputs := Some l
      | Layer (li, preps) -> layers.(li) <- Some preps
      | Holder h -> holder := Some h)
    items;
  {
    layout;
    wire_lambda = (match !wire_lambda with Some a -> a | None -> miss "wire lambdas");
    input_preps = (match !inputs with Some l -> l | None -> miss "input preps");
    mult_preps =
      Array.mapi
        (fun li o ->
          match o with Some preps -> preps | None -> miss (Printf.sprintf "layer %d" li))
        layers;
    final_holder = (match !holder with Some h -> h | None -> miss "final holder");
  }

let run ?opts (ctx : Ops.ctx) (setup : Setup.t) layout =
  let st = start ?opts ctx setup layout in
  let rec drain acc =
    match prepare_batch st with None -> List.rev acc | Some item -> drain (item :: acc)
  in
  assemble layout (drain [])

type source = {
  src_layout : Layout.t;
  src_layers : int;
  src_wire_lambda : unit -> F.t Te.ct array;
  src_input_preps : unit -> input_prep list;
  src_mult_preps : int -> mult_prep list;
  src_final_holder : unit -> Committee_ops.holder;
}

let source_of prep =
  {
    src_layout = prep.layout;
    src_layers = Array.length prep.mult_preps;
    src_wire_lambda = (fun () -> prep.wire_lambda);
    src_input_preps = (fun () -> prep.input_preps);
    src_mult_preps = (fun li -> prep.mult_preps.(li));
    src_final_holder = (fun () -> prep.final_holder);
  }
