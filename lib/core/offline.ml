module F = Yoso_field.Field.Fp
module Te = Ideal_te
module Lagrange = Yoso_field.Lagrange.Make (F)
module Layout = Yoso_circuit.Layout
module Circuit = Yoso_circuit.Circuit
module Cost = Yoso_runtime.Cost
module Ops = Committee_ops
module Pool = Yoso_parallel.Pool

type input_prep = {
  client : int;
  wires : Circuit.wire array;
  lambda_reencs : F.t Committee_ops.reenc array;
}

type mult_prep = {
  batch : Layout.mult_batch;
  alpha_shares : F.t Committee_ops.reenc array;
  beta_shares : F.t Committee_ops.reenc array;
  gamma_shares : F.t Committee_ops.reenc array;
}

type t = {
  layout : Layout.t;
  wire_lambda : F.t Te.ct array;
  input_preps : input_prep list;
  mult_preps : mult_prep list array;
  final_holder : Committee_ops.holder;
}

module Faults = Yoso_runtime.Faults

let phase = "offline"

(* corrupted payload for additive-contribution steps: ciphertexts of
   junk the role never proved knowledge of (Garbage_ciphertext posts
   an undecodable blob instead) *)
let junk_cts te rng kind build =
  match kind with Faults.Garbage_ciphertext -> None | _ -> Some (build te rng)

(* sum verified members' ciphertext contributions, column by column *)
let sum_contributions te verified column =
  match verified with
  | [] -> failwith "Offline: no verified contributions"
  | (_, first) :: rest ->
    List.fold_left (fun acc (_, cts) -> Te.add te acc (column cts)) (column first) rest

let chunks size arr =
  let n = Array.length arr in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let len = min size (n - i) in
      go (i + len) (Array.sub arr i len :: acc)
    end
  in
  go 0 []

let run (ctx : Ops.ctx) (setup : Setup.t) layout =
  let te = setup.Setup.te in
  let p = ctx.Ops.params in
  let n = p.Params.n and t = p.Params.t and k = p.Params.k in
  let gpc = p.Params.gates_per_committee in
  let circuit = layout.Layout.circuit in
  let zero_ct = Te.encrypt te F.zero in

  (* ---- enumerate multiplication gates (traversal order) ---------- *)
  let mult_gates =
    Array.of_seq
      (Seq.filter_map
         (function
           | Circuit.Mul { a; b; out } -> Some (a, b, out)
           | Circuit.Input _ | Circuit.Add _ | Circuit.Output _ -> None)
         (Array.to_seq circuit.Circuit.gates))
  in
  let m = Array.length mult_gates in
  let gate_index = Hashtbl.create (max 16 m) in
  Array.iteri (fun g (_, _, out) -> Hashtbl.add gate_index out g) mult_gates;

  (* ---- Step 1: Beaver triples (Protocol 3) ----------------------- *)
  let b1 = Ops.fresh_committee ctx "Off-B1" in
  let xs =
    Ops.contributions ctx b1 ~phase ~step:"beaver: first-committee shares"
      ~cost:[ (Cost.Ciphertext, m) ]
      ~tamper:(fun rng kind _ ->
        junk_cts te rng kind (fun te rng ->
            Array.init m (fun _ -> Te.encrypt te (F.random rng))))
      (fun rng _ -> Array.init m (fun _ -> Te.encrypt te (F.random rng)))
  in
  let pool = ctx.Ops.pool in
  let c_x = Pool.map pool m (fun g -> sum_contributions te xs (fun cts -> cts.(g))) in
  let b2 = Ops.fresh_committee ctx "Off-B2" in
  let yzs =
    Ops.contributions ctx b2 ~phase ~step:"beaver: second-committee shares and products"
      ~cost:[ (Cost.Ciphertext, 2 * m) ]
      ~tamper:(fun rng kind _ ->
        (* inconsistent product: z contribution uses a different y than
           the posted encryption — accepting it would break the triple *)
        junk_cts te rng kind (fun te rng ->
            Array.init m (fun g ->
                (Te.encrypt te (F.random rng), Te.scale te (F.random rng) c_x.(g)))))
      (fun rng _ ->
        Array.init m (fun g ->
            let y = F.random rng in
            (Te.encrypt te y, Te.scale te y c_x.(g))))
  in
  let c_y = Pool.map pool m (fun g -> sum_contributions te yzs (fun cts -> fst cts.(g))) in
  let c_z = Pool.map pool m (fun g -> sum_contributions te yzs (fun cts -> snd cts.(g))) in

  (* ---- Step 2: random wire values -------------------------------- *)
  let random_wires =
    Array.of_seq
      (Seq.filter_map
         (function
           | Circuit.Input { wire; _ } -> Some wire
           | Circuit.Mul { out; _ } -> Some out
           | Circuit.Add _ | Circuit.Output _ -> None)
         (Array.to_seq circuit.Circuit.gates))
  in
  let r_committee = Ops.fresh_committee ctx "Off-R" in
  let lambda_contribs =
    Ops.contributions ctx r_committee ~phase ~step:"random wire values"
      ~cost:[ (Cost.Ciphertext, Array.length random_wires) ]
      ~tamper:(fun rng kind _ ->
        junk_cts te rng kind (fun te rng ->
            Array.map (fun _ -> Te.encrypt te (F.random rng)) random_wires))
      (fun rng _ -> Array.map (fun _ -> Te.encrypt te (F.random rng)) random_wires)
  in
  let wire_lambda = Array.make circuit.Circuit.wire_count zero_ct in
  Array.iteri
    (fun idx w ->
      wire_lambda.(w) <- sum_contributions te lambda_contribs (fun cts -> cts.(idx)))
    random_wires;

  (* ---- Step 3: dependent wire values ------------------------------ *)
  (* addition wires homomorphically, in topological order *)
  Array.iter
    (function
      | Circuit.Add { a; b; out } -> wire_lambda.(out) <- Te.add te wire_lambda.(a) wire_lambda.(b)
      | Circuit.Input _ | Circuit.Mul _ | Circuit.Output _ -> ())
    circuit.Circuit.gates;
  (* masked openings eps = lambda_a + x, delta = lambda_b + y *)
  let masked =
    Pool.map pool (2 * m) (fun i ->
        let g = i / 2 in
        let a, b, _ = mult_gates.(g) in
        if i mod 2 = 0 then Te.add te wire_lambda.(a) c_x.(g)
        else Te.add te wire_lambda.(b) c_y.(g))
  in
  let holder = ref (Ops.initial_holder ctx te ~name:"Off-D" setup.Setup.initial_tsk) in
  let opened = Array.make (2 * m) F.zero in
  let pos = ref 0 in
  List.iter
    (fun chunk ->
      let values, next =
        Ops.decrypt_batch ctx te !holder ~phase ~step:"open masked beaver values" chunk
      in
      Array.blit values 0 opened !pos (Array.length values);
      pos := !pos + Array.length values;
      holder := next)
    (chunks (2 * gpc) masked);
  (* Gamma_g = lambda_a * lambda_b - lambda_out, homomorphically *)
  let gamma_ct =
    Pool.map pool m (fun g ->
        let _, b, out = mult_gates.(g) in
        let eps = opened.(2 * g) and delta = opened.((2 * g) + 1) in
        Te.eval te
          [| wire_lambda.(b); c_x.(g); c_z.(g); wire_lambda.(out) |]
          [| eps; F.neg delta; F.one; F.neg F.one |])
  in

  (* ---- Step 4: pack values for multiplication gates --------------- *)
  (* anchor points: secret slots 0, -1, ..., -(k-1), then 1..t *)
  let sources =
    Array.append
      (Array.init k (fun j -> F.of_int (-j)))
      (Array.init t (fun j -> F.of_int (j + 1)))
  in
  let targets = Array.init n (fun i -> F.of_int (i + 1)) in
  let pack_matrix = Lagrange.basis_matrix ~sources ~targets in
  let all_batches =
    Array.of_list
      (List.concat (Array.to_list (Array.map (fun l -> l) layout.Layout.mult_layers)))
  in
  (* helper randoms: 3 packed vectors per batch, t helpers each *)
  let helpers = Hashtbl.create 64 in
  let batches_per_committee = max 1 (gpc / max 1 k) in
  List.iter
    (fun batch_chunk ->
      let committee = Ops.fresh_committee ctx "Off-P" in
      let contribs =
        Ops.contributions ctx committee ~phase ~step:"packing helper randoms"
          ~cost:[ (Cost.Ciphertext, 3 * t * Array.length batch_chunk) ]
          ~tamper:(fun rng kind _ ->
            junk_cts te rng kind (fun te rng ->
                Array.map
                  (fun _ ->
                    Array.init 3 (fun _ ->
                        Array.init t (fun _ -> Te.encrypt te (F.random rng))))
                  batch_chunk))
          (fun rng _ ->
            Array.map
              (fun _ ->
                Array.init 3 (fun _ -> Array.init t (fun _ -> Te.encrypt te (F.random rng))))
              batch_chunk)
      in
      Array.iteri
        (fun bi batch ->
          let help =
            Array.init 3 (fun v ->
                Array.init t (fun j ->
                    sum_contributions te contribs (fun cts -> cts.(bi).(v).(j))))
          in
          Hashtbl.add helpers batch help)
        batch_chunk)
    (chunks batches_per_committee all_batches);
  (* homomorphic Lagrange evaluation: n encrypted packed shares per vector *)
  let pack cts help =
    let anchors = Array.append cts help in
    Pool.map pool n (fun i -> Te.eval te anchors pack_matrix.(i))
  in
  let padded f batch =
    let raw = Array.map f batch.Layout.mult_gates in
    if Array.length raw > k then invalid_arg "Offline: batch longer than k";
    Array.append raw (Array.make (k - Array.length raw) zero_ct)
  in
  let packed_of_batch batch =
    let help = Hashtbl.find helpers batch in
    let alpha = pack (padded (fun (a, _, _) -> wire_lambda.(a)) batch) help.(0) in
    let beta = pack (padded (fun (_, b, _) -> wire_lambda.(b)) batch) help.(1) in
    let gamma =
      pack (padded (fun (_, _, out) -> gamma_ct.(Hashtbl.find gate_index out)) batch) help.(2)
    in
    (alpha, beta, gamma)
  in

  (* ---- Step 5: re-encrypt input-wire lambdas to client KFFs ------- *)
  let input_batches = Array.of_list layout.Layout.input_batches in
  let input_values =
    Array.concat
      (List.map
         (fun (client, wires) ->
           let entry = List.assoc client setup.Setup.kff_clients in
           Array.map (fun w -> (entry.Setup.kff_pk, wire_lambda.(w))) wires)
         (Array.to_list input_batches))
  in
  let input_reencs = Array.make (Array.length input_values) None in
  let pos = ref 0 in
  List.iter
    (fun chunk ->
      let packages, next =
        Ops.reencrypt_batch ctx te !holder ~phase ~step:"re-encrypt input lambdas to KFF"
          chunk
      in
      Array.iteri (fun i pkg -> input_reencs.(!pos + i) <- Some pkg) packages;
      pos := !pos + Array.length packages;
      holder := next)
    (chunks gpc input_values);
  let input_preps =
    let cursor = ref 0 in
    List.map
      (fun (client, wires) ->
        let lambda_reencs =
          Array.map
            (fun _ ->
              let r = Option.get input_reencs.(!cursor) in
              incr cursor;
              r)
            wires
        in
        { client; wires; lambda_reencs })
      (Array.to_list input_batches)
  in

  (* ---- Step 6: re-encrypt packed shares to online-role KFFs ------- *)
  let mult_preps = Array.make (Array.length layout.Layout.mult_layers) [] in
  Array.iteri
    (fun li batches ->
      let kffs = setup.Setup.kff_roles.(li) in
      let preps =
        List.map
          (fun batch ->
            let alpha, beta, gamma = packed_of_batch batch in
            let values vec =
              Array.mapi (fun i ct -> (kffs.(i).Setup.kff_pk, ct)) vec
            in
            let reenc vec =
              let out = ref [||] in
              (* shares of one vector fit in one committee round when
                 n <= gates_per_committee; chunk otherwise *)
              List.iter
                (fun chunk ->
                  let packages, next =
                    Ops.reencrypt_batch ctx te !holder ~phase
                      ~step:"re-encrypt packed shares to KFF" chunk
                  in
                  out := Array.append !out packages;
                  holder := next)
                (chunks (max n gpc) (values vec));
              !out
            in
            {
              batch;
              alpha_shares = reenc alpha;
              beta_shares = reenc beta;
              gamma_shares = reenc gamma;
            })
          batches
      in
      mult_preps.(li) <- preps)
    layout.Layout.mult_layers;

  { layout; wire_lambda; input_preps; mult_preps; final_holder = !holder }
