module F = Yoso_field.Field.Fp
module Te = Ideal_te
module Circuit = Yoso_circuit.Circuit
module Eval = Yoso_circuit.Circuit.Eval (Yoso_field.Field.Fp)
module Bulletin = Yoso_runtime.Bulletin
module Cost = Yoso_runtime.Cost
module Role = Yoso_runtime.Role
module Splitmix = Yoso_hash.Splitmix
module Ops = Committee_ops

type report = {
  outputs : (int * Circuit.wire * F.t) list;
  offline_elements : int;
  online_elements : int;
  posts : int;
  num_mult : int;
}

let online_per_gate r = float_of_int r.online_elements /. float_of_int (max 1 r.num_mult)
let offline_per_gate r = float_of_int r.offline_elements /. float_of_int (max 1 r.num_mult)

let chunks size lst =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 lst

let execute ~params ?(adversary = Params.no_adversary) ?(seed = 0xCD7) ~circuit ~inputs () =
  let board = Yoso_net.Board.create () in
  let ctx = Ops.create_ctx ~board ~params ~adversary ~seed () in
  let gpc = params.Params.gates_per_committee in
  let te, tsk = Te.keygen ~n:params.Params.n ~t:params.Params.t ~rng:(Splitmix.of_int seed) in
  let m = Circuit.num_mul circuit in

  (* ---- offline: Beaver triples (Protocol 3) ----------------------- *)
  let b1 = Ops.fresh_committee ctx "Cdn-B1" in
  let xs =
    Ops.contributions ctx b1 ~phase:"offline" ~step:"beaver a"
      ~cost:[ (Cost.Ciphertext, m) ]
      (fun rng _ -> Array.init m (fun _ -> Te.encrypt te (F.random rng)))
  in
  let sum_col verified col =
    match verified with
    | [] -> failwith "Cdn_baseline: no verified contributions"
    | (_, first) :: rest ->
      List.fold_left (fun acc (_, cts) -> Te.add te acc (col cts)) (col first) rest
  in
  let c_a = Array.init m (fun g -> sum_col xs (fun cts -> cts.(g))) in
  let b2 = Ops.fresh_committee ctx "Cdn-B2" in
  let yz =
    Ops.contributions ctx b2 ~phase:"offline" ~step:"beaver b, c"
      ~cost:[ (Cost.Ciphertext, 2 * m) ]
      (fun rng _ ->
        Array.init m (fun g ->
            let y = F.random rng in
            (Te.encrypt te y, Te.scale te y c_a.(g))))
  in
  let c_b = Array.init m (fun g -> sum_col yz (fun cts -> fst cts.(g))) in
  let c_c = Array.init m (fun g -> sum_col yz (fun cts -> snd cts.(g))) in

  (* ---- online: gate-by-gate on ciphertexts ------------------------ *)
  (* inputs: each client broadcasts an encryption of each input value *)
  let wire_ct : F.t Te.ct option array = Array.make circuit.Circuit.wire_count None in
  let cursor = Hashtbl.create 8 in
  List.iter
    (fun client ->
      let wires = Circuit.input_wires_of_client circuit client in
      if wires <> [] then
        ignore
          (Yoso_net.Board.post board
             ~author:(Role.id ~committee:(Printf.sprintf "CdnClient%d-In" client) ~index:0)
             ~phase:"online" ~step:"input: encrypted values"
             ~cost:
               [ (Cost.Ciphertext, List.length wires); (Cost.Proof, List.length wires) ]
             ()))
    (Circuit.clients circuit);
  Array.iter
    (function
      | Circuit.Input { client; wire } ->
        let i = Option.value ~default:0 (Hashtbl.find_opt cursor client) in
        let vec = inputs client in
        if i >= Array.length vec then invalid_arg "Cdn_baseline: input vector too short";
        wire_ct.(wire) <- Some (Te.encrypt te vec.(i));
        Hashtbl.replace cursor client (i + 1)
      | Circuit.Add _ | Circuit.Mul _ | Circuit.Output _ -> ())
    circuit.Circuit.gates;
  let get w =
    match wire_ct.(w) with
    | Some c -> c
    | None -> failwith "Cdn_baseline: wire not yet evaluated"
  in
  (* walk gates; additions local, multiplications gathered into
     per-committee batches that respect topological order *)
  let holder = ref (Ops.initial_holder ctx te ~name:"Cdn-D" tsk) in
  let triple_cursor = ref 0 in
  let pending : (int * Circuit.wire * F.t Te.ct * F.t Te.ct) list ref = ref [] in
  (* (triple index, out, c_alpha, c_beta) buffered until either the
     batch is full or a dependent gate needs the result *)
  let flush () =
    List.iter
      (fun batch ->
        let masked =
          Array.concat
            (List.map
               (fun (g, _, ca, cb) ->
                 [| Te.add te ca c_a.(g); Te.add te cb c_b.(g) |])
               batch)
        in
        let values, next =
          Ops.decrypt_batch ctx te !holder ~phase:"online" ~step:"beaver opening" masked
        in
        holder := next;
        List.iteri
          (fun i (g, out, _, cb) ->
            let eps = values.(2 * i) and delta = values.((2 * i) + 1) in
            let c_out =
              Te.eval te [| cb; c_a.(g); c_c.(g) |] [| eps; F.neg delta; F.one |]
            in
            wire_ct.(out) <- Some c_out)
          batch)
      (chunks gpc (List.rev !pending));
    pending := []
  in
  let needs w = List.exists (fun (_, out, _, _) -> out = w) !pending in
  Array.iter
    (function
      | Circuit.Input _ -> ()
      | Circuit.Add { a; b; out } ->
        if needs a || needs b then flush ();
        wire_ct.(out) <- Some (Te.add te (get a) (get b))
      | Circuit.Mul { a; b; out } ->
        if needs a || needs b then flush ();
        let g = !triple_cursor in
        incr triple_cursor;
        pending := (g, out, get a, get b) :: !pending
      | Circuit.Output { wire; _ } -> if needs wire then flush ())
    circuit.Circuit.gates;
  flush ();

  (* ---- output: Re-encrypt* the encrypted results to clients ------- *)
  let rng = Splitmix.of_int (seed lxor 0xFACE) in
  let client_keys =
    List.map (fun c -> (c, Ideal_pke.gen rng)) (Circuit.clients circuit)
  in
  let output_gates = Array.of_list circuit.Circuit.output_wires in
  let values =
    Array.map
      (fun (client, w) ->
        let pk, _ = List.assoc client client_keys in
        (pk, get w))
      output_gates
  in
  let packages =
    if Array.length values = 0 then [||]
    else
      Ops.reencrypt_final ctx te !holder ~phase:"online" ~step:"output re-encryption"
        values
  in
  let outputs =
    Array.to_list
      (Array.mapi
         (fun i (client, w) ->
           let _, sk = List.assoc client client_keys in
           (client, w, Ops.open_reenc te sk packages.(i)))
         output_gates)
  in
  let cost = Yoso_net.Board.cost board in
  {
    outputs;
    offline_elements = Cost.elements cost ~phase:"offline";
    online_elements = Cost.elements cost ~phase:"online";
    posts = Yoso_net.Board.length board;
    num_mult = m;
  }

let check report circuit ~inputs =
  let plain = Eval.run circuit ~inputs in
  List.length plain = List.length report.outputs
  && List.for_all2
       (fun (c, v) (c', _, v') -> c = c' && F.equal v v')
       plain report.outputs
