(** [Pi_YOSO-Online] (Protocol 5).

    Consumes the preprocessing of {!Offline} once inputs are known:

    + {b Future key distribution} — the tsk-holder committee
      re-encrypts every KFF secret key to the now-known YOSO
      role-assignment keys (and client long-term keys); the key then
      passes to the output committee and is never needed again.
    + {b Input} — each client opens its [lambda]s with its KFF key and
      broadcasts [mu = v - lambda] per input wire.
    + {b Addition} — [mu]s add locally; no communication.
    + {b Multiplication} — per batch of [k] gates, each role of the
      layer committee opens its packed shares of [lambda_alpha],
      [lambda_beta], [Gamma] and broadcasts the single field element
      [mu_i = mu_alpha_i mu_beta_i + mu_alpha_i lambda_beta_i +
      mu_beta_i lambda_alpha_i + Gamma_i] with a proof; anyone
      reconstructs [mu_gamma] from [t + 2(k-1) + 1] verified shares —
      guaranteed output delivery by proof filtering.
    + {b Output} — [Re-encrypt*] sends [lambda] of each output wire to
      its client, who computes [v = mu + lambda].

    Total communication: [O(1)] elements per gate amortised
    (Theorem 1). *)

module F = Yoso_field.Field.Fp
module Circuit = Yoso_circuit.Circuit

type output = { client : int; wire : Circuit.wire; value : F.t }

val run_from :
  Committee_ops.ctx ->
  Setup.t ->
  Offline.source ->
  inputs:(int -> F.t array) ->
  output list
(** Draws preprocessing through the source's thunks exactly when the
    protocol needs each piece: final holder first (future key
    distribution), then input preps, then each layer's packed shares,
    then the wire lambdas at the output step.  Against a depot-backed
    source each draw blocks until the producer has refilled that
    batch. *)

val run :
  Committee_ops.ctx ->
  Setup.t ->
  Offline.t ->
  inputs:(int -> F.t array) ->
  output list
(** [run_from] over {!Offline.source_of}.  [inputs client] is the
    client's input vector, consumed in circuit input-gate order.
    Returns one entry per output gate, in gate order.  @raise Failure
    if reconstruction lacks shares (cannot happen under a
    {!Params.validate_adversary}-accepted adversary). *)
