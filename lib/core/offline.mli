(** [Pi_YOSO-Offline] (Protocol 4).

    Circuit-dependent preprocessing, executed by a chain of offline
    committees over the bulletin board:

    + {b Beaver triples} — committees [Off-B1]/[Off-B2] jointly
      produce an encrypted triple [(c^x, c^y, c^z)] per multiplication
      gate (Protocol 3).
    + {b Random wire values} — committee [Off-R] contributes random
      [lambda] summands for every input-gate and mult-gate output
      wire; addition wires get [lambda]s homomorphically.
    + {b Dependent wire values} — for each mult gate, the tsk-holder
      chain decrypts [epsilon = lambda_alpha + x] and
      [delta = lambda_beta + y] (batched, [2 * gates_per_committee]
      per committee) and everyone computes the encryption of
      [Gamma = lambda_alpha * lambda_beta - lambda_gamma].
    + {b Packing} — committees [Off-P] contribute the [t] helper
      randoms per packed vector; everyone homomorphically evaluates
      the Lagrange map that turns [k] wire ciphertexts + [t] helpers
      into [n] encrypted packed shares (degree [t + k - 1]).
    + {b Re-encryption to the future} — the tsk chain re-encrypts
      input-wire [lambda]s to client KFFs and packed shares to the
      KFFs of the online roles that will consume them.

    Total communication: [O(n)] ring elements per gate (Theorem 1). *)

module F = Yoso_field.Field.Fp
module Te = Ideal_te
module Layout = Yoso_circuit.Layout
module Circuit = Yoso_circuit.Circuit

type input_prep = {
  client : int;
  wires : Circuit.wire array;
  lambda_reencs : F.t Committee_ops.reenc array;  (** per wire, under the client's KFF *)
}

type mult_prep = {
  batch : Layout.mult_batch;
  alpha_shares : F.t Committee_ops.reenc array;  (** packed share of [lambda_alpha] for role [i] *)
  beta_shares : F.t Committee_ops.reenc array;
  gamma_shares : F.t Committee_ops.reenc array;  (** packed share of [Gamma_gamma] *)
}

type t = {
  layout : Layout.t;
  wire_lambda : F.t Te.ct array;  (** [c^lambda] per wire (output step needs these) *)
  input_preps : input_prep list;
  mult_preps : mult_prep list array;  (** index [l - 1] = preps of layer [l] *)
  final_holder : Committee_ops.holder;
      (** the committee holding tsk at the end of preprocessing; the
          online phase consumes it for future-key distribution *)
}

(** {1 Amortization options}

    Both amortizations change what goes on the board (extra audit
    posts, bundled re-encryption rounds), hence the transcript — they
    default off so the one-shot path stays byte-identical to the
    pre-split protocol.  Streamed runs and their one-shot comparison
    runs must enable the same opts for digest equality to hold. *)
type opts = {
  audit_triples : bool;
      (** post one aggregated {!Yoso_shamir.Feldman.Product} proof
          batch per triple chunk and verify it; a bad triple aborts
          with {!Yoso_runtime.Faults.Protocol_failure} after exact
          attribution *)
  audit_verify : [ `Each | `Batched ];
      (** verifier strategy: definitional per-proof checks or
          random-linear-combination aggregation.  Local choice — does
          not touch the transcript. *)
  audit_tamper : int list;
      (** adversary/test hook: gate indices whose audited [z]
          commitment is shifted by [h] before verification *)
  packed_reenc : bool;
      (** ciphertext-level batching of the tsk-chain re-encryptions to
          KFF ({!Committee_ops.reencrypt_packed}): posts are charged
          [distinct targets + n] ciphertexts instead of [len + n] *)
}

val default_opts : opts
(** Everything off, [audit_verify = `Batched]. *)

(** {1 Streaming producer interface}

    The offline protocol as an incremental stream of typed
    preprocessing batches — what the factory's producer pushes into
    its depot.  Items arrive in a fixed order (wire lambdas, input
    preps, one item per mult layer, the final tsk holder), with
    exactly the board posts of the one-shot path. *)
type item =
  | Lambdas of F.t Te.ct array
  | Inputs of input_prep list
  | Layer of int * mult_prep list
  | Holder of Committee_ops.holder

val item_kind : item -> string
(** Depot key: ["lambdas"], ["inputs"], ["layer<i>"], ["holder"]. *)

val item_units : Layout.t -> item -> int
(** Depot occupancy weight in gate-equivalents (at least 1). *)

type stream_state

val start : ?opts:opts -> Committee_ops.ctx -> Setup.t -> Layout.t -> stream_state
(** Builds the stepper; no committee runs until {!prepare_batch}. *)

val prepare_batch : stream_state -> item option
(** Runs the next production stage (posting its committees) and
    returns the next ready item; [None] once every batch is out. *)

val assemble : Layout.t -> item list -> t
(** Reassembles a drained stream into the one-shot preprocessing
    value.  @raise Failure if an item kind is missing. *)

val run : ?opts:opts -> Committee_ops.ctx -> Setup.t -> Layout.t -> t
(** {!start} + drain + {!assemble}: the one-shot path is a degenerate
    single-stream run, byte-identical in transcript to the pre-split
    implementation at equal seeds (with default [opts]). *)

(** {1 Consumption source}

    {!Online} draws material through a [source] — thunks rather than a
    record of arrays — so a depot-backed stream (blocking draws) and a
    fully materialized {!t} ({!source_of}) are interchangeable. *)
type source = {
  src_layout : Layout.t;
  src_layers : int;
  src_wire_lambda : unit -> F.t Te.ct array;
  src_input_preps : unit -> input_prep list;
  src_mult_preps : int -> mult_prep list;
  src_final_holder : unit -> Committee_ops.holder;
}

val source_of : t -> source
