module Splitmix = Yoso_hash.Splitmix

type pk = int
type sk = { id : int }

(* atomic: the factory's background producer generates keys for the
   next circuit while the consumer's online phase generates role keys
   for the current one; ids only need process-uniqueness, never
   determinism, so contention order is irrelevant *)
let counter = Atomic.make 0

let gen rng =
  (* the rng parameter keeps the signature honest (a real scheme
     samples keys); ids are process-unique *)
  ignore (Splitmix.next rng);
  let id = Atomic.fetch_and_add counter 1 + 1 in
  (id, { id })

let pk_of sk = sk.id
let pk_id pk = pk

type 'a enc = { key : int; payload : 'a }

let enc pk payload = { key = pk; payload }

let dec sk c =
  if c.key <> sk.id then invalid_arg "Ideal_pke.dec: wrong key";
  c.payload

let dec_opt sk c = if c.key <> sk.id then None else Some c.payload
