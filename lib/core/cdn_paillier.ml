module B = Yoso_bigint.Bigint
module P = Yoso_paillier.Paillier
module T = Yoso_paillier.Threshold
module Sigma = Yoso_nizk.Sigma
module Ideal = Yoso_nizk.Ideal
module Circuit = Yoso_circuit.Circuit

type report = {
  outputs : (int * Circuit.wire * B.t) list;
  modulus : B.t;
  rejected_contributions : int;
}

let sample_unit st n =
  let rec go () =
    let r = B.random_below st n in
    if B.is_zero r || not (B.is_one (B.gcd r n)) then go () else r
  in
  go ()

let expected ~modulus circuit ~inputs =
  let values = Array.make circuit.Circuit.wire_count B.zero in
  let cursor = Hashtbl.create 8 in
  let out = ref [] in
  Array.iter
    (fun g ->
      match g with
      | Circuit.Input { client; wire } ->
        let i = Option.value ~default:0 (Hashtbl.find_opt cursor client) in
        values.(wire) <- B.erem (inputs client).(i) modulus;
        Hashtbl.replace cursor client (i + 1)
      | Circuit.Add { a; b; out } -> values.(out) <- B.addmod values.(a) values.(b) modulus
      | Circuit.Mul { a; b; out } -> values.(out) <- B.mulmod values.(a) values.(b) modulus
      | Circuit.Output { client; wire } -> out := (client, values.(wire)) :: !out)
    circuit.Circuit.gates;
  List.rev !out

let execute ~n ~t ?(bits = 96) ?(malicious = []) ?(seed = 0xBEEF) ~circuit ~inputs () =
  let st = Random.State.make [| seed |] in
  let tpk, shares = T.keygen ~bits ~n ~t ~rng:st () in
  (* contexts are built once here and threaded through every
     committee: all Z_{N^2} exponentiation below is Montgomery, and
     combine's Lagrange weights are cached across openings *)
  let tctx = T.context tpk in
  let pctx = T.Ctx.paillier tctx in
  (* force the lazy tables up front (fixed-base windows, weight/theta
     caches grow on demand otherwise) — the committee loops below hit
     them from a steady state *)
  T.Ctx.preload tctx;
  let pk = tpk.T.pk in
  let modulus = pk.P.n in
  let rejected = ref 0 in
  let is_malicious i = List.mem i malicious in
  let m = Circuit.num_mul circuit in

  (* ---- Beaver triples with real sigma proofs (Protocol 3) --------- *)
  let first_committee g =
    (* per gate: each member contributes an encrypted random summand
       with a proof of plaintext knowledge *)
    ignore g;
    let contribs =
      List.init n (fun i ->
          let a = B.random_below st modulus in
          let r = sample_unit st modulus in
          let c = P.Ctx.encrypt_with pctx ~r a in
          let proof =
            if is_malicious i then
              (* lie about the plaintext: proof will not verify *)
              Sigma.Plaintext_knowledge.prove pk ~rng:st ~m:(B.add a B.one) ~r ~c
            else Sigma.Plaintext_knowledge.prove pk ~rng:st ~m:a ~r ~c
          in
          (c, proof))
    in
    let verified =
      List.filter
        (fun (c, proof) ->
          let ok = Sigma.Plaintext_knowledge.verify pk ~c proof in
          if not ok then incr rejected;
          ok)
        contribs
    in
    match verified with
    | [] -> failwith "Cdn_paillier: all first-committee contributions rejected"
    | (c0, _) :: rest -> List.fold_left (fun acc (c, _) -> P.Ctx.add pctx acc c) c0 rest
  in
  let second_committee c_a =
    let contribs =
      List.init n (fun i ->
          let b = B.random_below st modulus in
          let r = sample_unit st modulus in
          let c_b = P.Ctx.encrypt_with pctx ~r b in
          let c_c =
            if is_malicious i then P.Ctx.encrypt pctx ~rng:st (B.of_int 1337)
            else P.Ctx.scalar_mul pctx b c_a
          in
          let proof = Sigma.Multiplication.prove pk ~rng:st ~b ~r ~c_a ~c_b ~c_c in
          (c_b, c_c, proof))
    in
    let verified =
      List.filter
        (fun (c_b, c_c, proof) ->
          let ok = Sigma.Multiplication.verify pk ~c_a ~c_b ~c_c proof in
          if not ok then incr rejected;
          ok)
        contribs
    in
    match verified with
    | [] -> failwith "Cdn_paillier: all second-committee contributions rejected"
    | (b0, c0, _) :: rest ->
      List.fold_left
        (fun (accb, accc) (cb, cc, _) ->
          (P.Ctx.add pctx accb cb, P.Ctx.add pctx accc cc))
        (b0, c0) rest
  in
  let triples =
    Array.init m (fun g ->
        let c_a = first_committee g in
        let c_b, c_c = second_committee c_a in
        (c_a, c_b, c_c))
  in

  (* ---- threshold opening with the real scheme ---------------------- *)
  let shares = ref shares in
  let opened_count = ref 0 in
  let open_ct ct =
    (* partial-decryption correctness is attested with the ideal NIZK
       (no sigma protocol without extra setup); honest partials only *)
    let parts =
      List.init (t + 1) (fun i ->
          let d = T.Ctx.partial_decrypt tctx !shares.(i) ct in
          let proof =
            Ideal.prove ~relation:"tpdec" ~statement:(string_of_int i) ~witness_ok:true
          in
          assert (Ideal.verify ~relation:"tpdec" ~statement:(string_of_int i) proof);
          d)
    in
    incr opened_count;
    T.Ctx.combine tctx parts
  in
  (* exercise TKRes/TKRec once mid-protocol: refresh every share *)
  let maybe_refresh () =
    if !opened_count = max 1 m then begin
      let msgs = Array.map (fun s -> T.reshare tpk s ~rng:st) !shares in
      let epoch = T.share_epoch !shares.(0) + 1 in
      shares :=
        Array.init n (fun j ->
            T.recombine_share tpk ~index:(j + 1) ~epoch
              (List.init n (fun i -> (i + 1, msgs.(i).(j)))))
    end
  in

  (* ---- gate-by-gate evaluation over Z_N ---------------------------- *)
  let wire_ct = Array.make circuit.Circuit.wire_count None in
  let get w =
    match wire_ct.(w) with
    | Some c -> c
    | None -> failwith "Cdn_paillier: wire not evaluated"
  in
  let cursor = Hashtbl.create 8 in
  let triple_cursor = ref 0 in
  let outputs = ref [] in
  Array.iter
    (fun g ->
      match g with
      | Circuit.Input { client; wire } ->
        let i = Option.value ~default:0 (Hashtbl.find_opt cursor client) in
        let v = B.erem (inputs client).(i) modulus in
        Hashtbl.replace cursor client (i + 1);
        let r = sample_unit st modulus in
        let c = P.Ctx.encrypt_with pctx ~r v in
        let proof = Sigma.Plaintext_knowledge.prove pk ~rng:st ~m:v ~r ~c in
        if not (Sigma.Plaintext_knowledge.verify pk ~c proof) then
          failwith "Cdn_paillier: honest input proof failed";
        wire_ct.(wire) <- Some c
      | Circuit.Add { a; b; out } ->
        wire_ct.(out) <- Some (P.Ctx.add pctx (get a) (get b))
      | Circuit.Mul { a; b; out } ->
        let c_a, c_b, c_c = triples.(!triple_cursor) in
        incr triple_cursor;
        let eps = open_ct (P.Ctx.add pctx (get a) c_a) in
        let delta = open_ct (P.Ctx.add pctx (get b) c_b) in
        maybe_refresh ();
        let c_out =
          P.Ctx.linear_combination pctx
            [ get b; c_a; c_c ]
            [ eps; B.erem (B.neg delta) modulus; B.one ]
        in
        wire_ct.(out) <- Some c_out
      | Circuit.Output { client; wire } ->
        outputs := (client, wire, open_ct (get wire)) :: !outputs)
    circuit.Circuit.gates;
  { outputs = List.rev !outputs; modulus; rejected_contributions = !rejected }

let check report circuit ~inputs =
  let plain = expected ~modulus:report.modulus circuit ~inputs in
  List.length plain = List.length report.outputs
  && List.for_all2
       (fun (c, v) (c', _, v') -> c = c' && B.equal v v')
       plain report.outputs
