(** YOSO distributed randomness generation.

    The specialised MPC functionality studied by the
    worst-case-corruption YOSO line the paper surveys ([39, 38, 37]):
    two committees produce a public uniformly random field element.

    Round 1 — each role of the *dealing* committee samples a
    contribution and posts a Feldman-verifiable degree-[t] dealing of
    it for the reveal committee (commitment + [n] encrypted shares).
    Dealings that fail public verification are excluded; at least one
    honest contribution makes the aggregate unpredictable.

    Round 2 — each role of the *reveal* committee posts the sum of its
    received shares over the qualified dealer set.  Every posted sum
    is checked against the aggregated Feldman commitments — a
    malicious revealer is caught by real group arithmetic, not by an
    idealised proof — and [t + 1] valid sums reconstruct the output.

    Speak-once, broadcast costs and corruption sampling all go through
    the standard runtime. *)

module F = Yoso_field.Field.Fp

type outcome = {
  value : F.t;                  (** the public random output *)
  qualified_dealers : int;      (** dealings that verified *)
  rejected_dealers : int;
  rejected_reveals : int;       (** reveal shares caught by the commitment check *)
  posts : int;
  elements : int;               (** broadcast elements charged *)
}

val run :
  n:int ->
  t:int ->
  ?malicious_dealers:int list ->
  ?malicious_revealers:int list ->
  ?seed:int ->
  ?pool:Yoso_parallel.Pool.t ->
  unit ->
  outcome
(** [pool] (default sequential) fans the public dealing verification
    out across domains; the outcome is identical at any pool size.
    @raise Invalid_argument unless [0 <= t < n] and at least [t + 1]
    honest roles remain in each committee. *)

val honest_reference : n:int -> t:int -> ?seed:int -> unit -> F.t
(** The value an all-honest run with the same seed produces.  Because
    honest contributions depend only on [(seed, dealer)], corrupting
    *revealers* cannot change the output at all, and corrupting a
    dealer can only remove its own contribution (no adaptive bias) —
    both checked in the test suite. *)
