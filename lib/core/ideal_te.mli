(** Ideal linearly homomorphic key-rerandomizable threshold encryption
    over [F_p].

    Interface-identical to the paper's TE abstraction (Section 4.1)
    and to the real {!Yoso_paillier.Threshold} instantiation, but
    cheap enough to execute committees of hundreds or thousands of
    roles — all communication-complexity experiments run over this
    module (DESIGN.md substitution table).

    Semantics enforced operationally:
    - a ciphertext's plaintext is only released by {!combine} given
      partial decryptions from [>= t + 1] *distinct* current-epoch key
      shares;
    - key shares are unforgeable capabilities tied to the key pair;
    - {!reshare}/{!recombine} implement [TKRes]/[TKRec]: sub-shares
      from [t + 1] distinct senders of epoch [e] yield an epoch-[e+1]
      share, and old-epoch partials no longer combine with new ones;
    - {!eval} is the linear homomorphism [TEval] (field payloads
      only).

    Payloads are polymorphic for key transport (KFF secret keys travel
    under [tpk]); homomorphic evaluation is restricted to
    [F.t ct]. *)

module F = Yoso_field.Field.Fp

type tpk
type share
type 'a ct
type 'a partial

val keygen : n:int -> t:int -> rng:Yoso_hash.Splitmix.t -> tpk * share array
(** @raise Invalid_argument unless [0 <= t < n]. *)

val n_parties : tpk -> int
val threshold : tpk -> int

val share_index : share -> int
(** 1-based. *)

val share_epoch : share -> int

val encrypt : tpk -> 'a -> 'a ct

val eval : tpk -> F.t ct array -> F.t array -> F.t ct
(** [TEval]: ciphertext of [sum_i coeffs.(i) * m_i].
    @raise Invalid_argument on length mismatch or foreign
    ciphertexts. *)

val add : tpk -> F.t ct -> F.t ct -> F.t ct
val sub : tpk -> F.t ct -> F.t ct -> F.t ct
val scale : tpk -> F.t -> F.t ct -> F.t ct
val add_plain : tpk -> F.t ct -> F.t -> F.t ct

val partial_decrypt : tpk -> share -> 'a ct -> 'a partial
(** [TPDec].  @raise Invalid_argument on a foreign ciphertext or a
    share of a different key. *)

val partial_index : 'a partial -> int

val combine : tpk -> 'a partial list -> 'a
(** [TDec].  @raise Invalid_argument with fewer than [t + 1] distinct
    same-epoch partials, or on inconsistent partials (which cannot
    arise from honest {!partial_decrypt} outputs — malicious roles are
    filtered by proof verification before this point). *)

type subshare

val reshare : tpk -> share -> subshare array
(** [TKRes]: slot [j] (0-based) is destined for party [j + 1] of the
    next committee. *)

val subshare_sender : subshare -> int

val recombine : tpk -> index:int -> subshare list -> share
(** [TKRec]: needs sub-shares addressed to [index] from [>= t + 1]
    distinct senders, all of one epoch; produces the next-epoch
    share.  As with the real scheme, all recipients must use the same
    sender subset; passing identically ordered lists suffices.
    @raise Invalid_argument otherwise. *)

val reveal : tpk -> 'a ct -> 'a
(** Simulator-side extraction (the standard protocol-simulator
    shortcut; see {!Committee_ops}): the plaintext without any
    decryption quorum.  Used where the honest producing committees
    would jointly derive a public function of their plaintexts — e.g.
    the factory's triple-audit commitments — which the simulation
    computes directly instead of running another decrypt chain.  Never
    a substitute for {!combine} on the protocol path.
    @raise Invalid_argument on a foreign ciphertext. *)

val junk_partial : tpk -> index:int -> epoch:int -> 'a -> 'a partial
(** Adversary/test constructor: a syntactically valid partial carrying
    a wrong value. *)

val corrupt_partial : 'a partial -> 'a partial
(** Adversary/test constructor for polymorphic payloads: the honest
    value under a desynchronized epoch — {!combine} rejects it when
    mixed with current-epoch partials. *)
