module F = Yoso_field.Field.Fp
module Feldman = Yoso_shamir.Feldman
module Bulletin = Yoso_runtime.Bulletin
module Committee = Yoso_runtime.Committee
module Cost = Yoso_runtime.Cost
module Role = Yoso_runtime.Role
module Pool = Yoso_parallel.Pool

type outcome = {
  value : F.t;
  qualified_dealers : int;
  rejected_dealers : int;
  rejected_reveals : int;
  posts : int;
  elements : int;
}

let run ~n ~t ?(malicious_dealers = []) ?(malicious_revealers = []) ?(seed = 0xABCD)
    ?(pool = Pool.sequential) () =
  if t < 0 || t >= n then invalid_arg "Randgen.run: need 0 <= t < n";
  if List.length malicious_dealers > n - t - 1 || List.length malicious_revealers > n - t - 1
  then invalid_arg "Randgen.run: too many malicious roles";
  let board : string Bulletin.t = Bulletin.create () in
  let dealers = Committee.honest_all ~name:"Rand-Deal" ~n in
  let revealers = Committee.honest_all ~name:"Rand-Reveal" ~n in

  (* round 1: verifiable dealings; dealer i's contribution depends only
     on (seed, i), so corruption elsewhere cannot retroactively change
     honest contributions *)
  let dealings =
    Array.init n (fun i ->
        let st = Random.State.make [| seed; i |] in
        let secret = F.random st in
        let d = Feldman.deal ~t ~n ~secret ~rng:st in
        let d =
          if List.mem i malicious_dealers then begin
            (* corrupt one share: public verification must catch it *)
            let shares = Array.copy d.Feldman.shares in
            shares.(0) <- F.add shares.(0) F.one;
            { d with Feldman.shares }
          end
          else d
        in
        Bulletin.post board ~author:(Committee.role dealers i) ~phase:"randgen"
          ~cost:[ (Cost.Key, t + 1) (* commitment *); (Cost.Ciphertext, n) ]
          "randgen dealing";
        d)
  in
  (* public verification is embarrassingly parallel: every dealing is
     checked independently against read-only group state *)
  Feldman.prepare ();
  let verdicts = Pool.map pool n (fun i -> Feldman.verify_dealing ~n dealings.(i)) in
  let qualified = List.filter (fun i -> verdicts.(i)) (List.init n (fun i -> i)) in
  let rejected_dealers = n - List.length qualified in

  (* aggregate commitments of the qualified set, coefficient-wise *)
  let agg_commitment =
    Array.init (t + 1) (fun j ->
        List.fold_left
          (fun acc i -> Feldman.mul_commitments acc dealings.(i).Feldman.commitment.(j))
          (match qualified with
          | i0 :: _ -> dealings.(i0).Feldman.commitment.(j)
          | [] -> invalid_arg "Randgen.run: no qualified dealers")
          (List.tl qualified))
  in

  (* round 2: reveal sum-shares, publicly checked against the
     aggregated commitment *)
  let reveals =
    List.filter_map
      (fun j ->
        let honest_sum =
          List.fold_left (fun acc i -> F.add acc dealings.(i).Feldman.shares.(j)) F.zero
            qualified
        in
        let posted =
          if List.mem j malicious_revealers then F.add honest_sum (F.of_int 42)
          else honest_sum
        in
        Bulletin.post board ~author:(Committee.role revealers j) ~phase:"randgen"
          ~cost:[ (Cost.Field_element, 1) ]
          "randgen reveal";
        if Feldman.verify_share agg_commitment ~index:j ~share:posted then Some (j, posted)
        else None)
      (List.init n (fun j -> j))
  in
  let rejected_reveals = n - List.length reveals in
  if List.length reveals < t + 1 then failwith "Randgen.run: not enough valid reveals";
  let value = Feldman.reconstruct ~t reveals in
  {
    value;
    qualified_dealers = List.length qualified;
    rejected_dealers;
    rejected_reveals;
    posts = Bulletin.length board;
    elements = Cost.elements (Bulletin.cost board) ~phase:"randgen";
  }

let honest_reference ~n ~t ?(seed = 0xABCD) () = (run ~n ~t ~seed ()).value
