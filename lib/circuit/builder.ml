type t = {
  mutable gates : Circuit.gate list; (* reversed *)
  mutable next_wire : int;
  mutable built : bool;
  consts : (int * int, Circuit.wire) Hashtbl.t; (* (client, value) -> wire *)
  mutable const_order : (int * int) list; (* reversed first-use order *)
}

let create () =
  {
    gates = [];
    next_wire = 0;
    built = false;
    consts = Hashtbl.create 8;
    const_order = [];
  }

let check_usable b = if b.built then invalid_arg "Builder: already built"

let fresh b =
  let w = b.next_wire in
  b.next_wire <- w + 1;
  w

let push b g = b.gates <- g :: b.gates

let input b ~client =
  check_usable b;
  let wire = fresh b in
  push b (Circuit.Input { client; wire });
  wire

let add b a b' =
  check_usable b;
  let out = fresh b in
  push b (Circuit.Add { a; b = b'; out });
  out

let mul b a b' =
  check_usable b;
  let out = fresh b in
  push b (Circuit.Mul { a; b = b'; out });
  out

(* Circuits have no constant gates: a constant is an ordinary input of
   a designated constants client, materialized once per distinct
   (client, value) pair at first use. *)
let constant_wire b ?(client = 0) v =
  check_usable b;
  match Hashtbl.find_opt b.consts (client, v) with
  | Some w -> w
  | None ->
    let w = input b ~client in
    Hashtbl.add b.consts (client, v) w;
    b.const_order <- (client, v) :: b.const_order;
    w

let constants b = List.rev b.const_order

let sub b ?(const_client = 0) a b' =
  add b a (mul b (constant_wire b ~client:const_client (-1)) b')

let sub_via_mul b ~minus_one_wire a b' = add b a (mul b minus_one_wire b')

let output b ~client wire =
  check_usable b;
  push b (Circuit.Output { client; wire })

let rec reduce_tree b op = function
  | [] -> invalid_arg "Builder: empty wire list"
  | [ w ] -> w
  | ws ->
    (* combine adjacent pairs to keep the tree balanced *)
    let rec pairs = function
      | [] -> []
      | [ w ] -> [ w ]
      | w1 :: w2 :: rest -> op b w1 w2 :: pairs rest
    in
    reduce_tree b op (pairs ws)

let sum b ws = reduce_tree b add ws
let product b ws = reduce_tree b mul ws

let dot b xs ys =
  if List.length xs <> List.length ys then invalid_arg "Builder.dot: length mismatch";
  sum b (List.map2 (mul b) xs ys)

let build b =
  check_usable b;
  b.built <- true;
  Circuit.of_gates (Array.of_list (List.rev b.gates))
