module Splitmix = Yoso_hash.Splitmix

let wide_mul ~width ~depth ~clients =
  if width < 1 || depth < 1 || clients < 1 then
    invalid_arg "Generators.wide_mul: parameters must be positive";
  let b = Builder.create () in
  let left = Array.init width (fun i -> Builder.input b ~client:(2 * i mod clients)) in
  let right = Array.init width (fun i -> Builder.input b ~client:(((2 * i) + 1) mod clients)) in
  let layer = ref (Array.map2 (fun l r -> Builder.mul b l r) left right) in
  for _ = 2 to depth do
    let prev = !layer in
    layer :=
      Array.init width (fun i -> Builder.mul b prev.(i) prev.((i + 1) mod width))
  done;
  Array.iter (fun w -> Builder.output b ~client:0 w) !layer;
  Builder.build b

let wide_mul_reduced ~width ~depth ~clients =
  if width < 1 || depth < 1 || clients < 1 then
    invalid_arg "Generators.wide_mul_reduced: parameters must be positive";
  let b = Builder.create () in
  let left = Array.init width (fun i -> Builder.input b ~client:(2 * i mod clients)) in
  let right = Array.init width (fun i -> Builder.input b ~client:(((2 * i) + 1) mod clients)) in
  let layer = ref (Array.map2 (fun l r -> Builder.mul b l r) left right) in
  for _ = 2 to depth do
    let prev = !layer in
    layer :=
      Array.init width (fun i -> Builder.mul b prev.(i) prev.((i + 1) mod width))
  done;
  Builder.output b ~client:0 (Builder.sum b (Array.to_list !layer));
  Builder.build b

let dot_product ~len =
  if len < 1 then invalid_arg "Generators.dot_product: len must be positive";
  let b = Builder.create () in
  let xs = List.init len (fun _ -> Builder.input b ~client:0) in
  let ys = List.init len (fun _ -> Builder.input b ~client:1) in
  let d = Builder.dot b xs ys in
  Builder.output b ~client:0 d;
  Builder.output b ~client:1 d;
  Builder.build b

let poly_eval ~degree =
  if degree < 1 then invalid_arg "Generators.poly_eval: degree must be positive";
  let b = Builder.create () in
  let coeffs = Array.init (degree + 1) (fun _ -> Builder.input b ~client:0) in
  let x = Builder.input b ~client:1 in
  (* Horner from the top coefficient *)
  let acc = ref coeffs.(degree) in
  for i = degree - 1 downto 0 do
    acc := Builder.add b (Builder.mul b !acc x) coeffs.(i)
  done;
  Builder.output b ~client:1 !acc;
  Builder.build b

let variance_numerator ~parties =
  if parties < 2 then invalid_arg "Generators.variance_numerator: need >= 2 parties";
  let b = Builder.create () in
  let xs = List.init parties (fun i -> Builder.input b ~client:i) in
  let sum = Builder.sum b xs in
  let sum_sq = Builder.sum b (List.map (fun x -> Builder.mul b x x) xs) in
  (* constants enter as inputs of the constants client (client 0, which
     therefore supplies [x_0; parties; -1] in that order); the MPC
     protocol treats them as ordinary inputs *)
  let lhs = Builder.mul b (Builder.constant_wire b parties) sum_sq in
  let result = Builder.sub b lhs (Builder.mul b sum sum) in
  List.iteri (fun i _ -> Builder.output b ~client:i result) xs;
  Builder.build b

let matrix_vector ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.matrix_vector: bad dims";
  let b = Builder.create () in
  let m = Array.init rows (fun _ -> List.init cols (fun _ -> Builder.input b ~client:0)) in
  let v = List.init cols (fun _ -> Builder.input b ~client:1) in
  Array.iter (fun row -> Builder.output b ~client:1 (Builder.dot b row v)) m;
  Builder.build b

let random_dag ~gates ~clients ~mul_fraction ~seed =
  if gates < 1 || clients < 1 then invalid_arg "Generators.random_dag: bad params";
  if mul_fraction < 0.0 || mul_fraction > 1.0 then
    invalid_arg "Generators.random_dag: mul_fraction out of [0,1]";
  let rng = Splitmix.of_int seed in
  let b = Builder.create () in
  let wires = ref [] in
  let push w = wires := w :: !wires in
  for c = 0 to clients - 1 do
    push (Builder.input b ~client:c);
    push (Builder.input b ~client:c)
  done;
  let pool = ref (Array.of_list !wires) in
  for _ = 1 to gates do
    let arr = !pool in
    let a = arr.(Splitmix.int rng (Array.length arr)) in
    let b' = arr.(Splitmix.int rng (Array.length arr)) in
    let w =
      if Splitmix.float rng < mul_fraction then Builder.mul b a b'
      else Builder.add b a b'
    in
    pool := Array.append arr [| w |]
  done;
  let arr = !pool in
  for c = 0 to clients - 1 do
    Builder.output b ~client:c arr.(Array.length arr - 1 - c)
  done;
  Builder.build b
